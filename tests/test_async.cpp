// Differential tests for the nonblocking layer (Context::isend/irecv +
// CommHandle) and the Overlap::kOn split-phase paths built on it.  The
// contract under test is the one docs/machine-model.md states: overlapping
// communication with compute changes *when* wire time is paid, never *what*
// is computed or sent — so every kOn path must produce byte-identical
// solutions, identical per-tag message ledgers, and (being built from the
// same deterministic completion algebra) traces that are bit-identical
// across host worker counts and all three link-contention tiers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>  // hardware_concurrency: host-side harness knob only
#include <vector>

#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/trace.hpp"
#include "runtime/dist_array.hpp"
#include "runtime/doall.hpp"
#include "solvers/adi.hpp"
#include "solvers/mg2.hpp"
#include "solvers/mg3.hpp"

namespace kali {
namespace {

MachineConfig make_config(LinkContention lc, int workers) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 30.0;
  cfg.link_contention = lc;
  cfg.sim_workers = workers;
  return cfg;
}

constexpr LinkContention kTiers[] = {LinkContention::kNone,
                                     LinkContention::kPorts,
                                     LinkContention::kStoreForward};

const char* tier_name(LinkContention lc) {
  switch (lc) {
    case LinkContention::kNone:
      return "none";
    case LinkContention::kPorts:
      return "ports";
    case LinkContention::kStoreForward:
      return "store-forward";
  }
  return "?";
}

std::vector<int> worker_counts() {
  const unsigned hw = std::thread::hardware_concurrency();
  return {1, 4, hw == 0 ? 2 : static_cast<int>(hw)};
}

struct RunResult {
  std::vector<double> values;  // all ranks' owned values, rank-major
  MachineStats stats;
  std::string trace;
};

/// Run `prog(ctx, overlap, out)` on `nprocs` ranks; out collects this
/// rank's result values (each rank writes its own slot — no host race).
template <class Prog>
RunResult run_case(int nprocs, LinkContention lc, int workers, Overlap ov,
                   Prog&& prog) {
  Machine m(nprocs, make_config(lc, workers));
  MessageTrace trace(m.size());
  m.attach_message_trace(&trace);
  std::vector<std::vector<double>> per_rank(
      static_cast<std::size_t>(nprocs));
  m.run([&](Context& ctx) {
    prog(ctx, ov, per_rank[static_cast<std::size_t>(ctx.rank())]);
  });
  RunResult r;
  for (const auto& v : per_rank) {
    r.values.insert(r.values.end(), v.begin(), v.end());
  }
  r.stats = m.stats();
  std::ostringstream os;
  trace.write(os);
  r.trace = os.str();
  return r;
}

void expect_values_byte_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.values.size(), b.values.size());
  ASSERT_FALSE(a.values.empty());
  EXPECT_EQ(0, std::memcmp(a.values.data(), b.values.data(),
                           a.values.size() * sizeof(double)));
  // On mismatch, pinpoint the first diverging value for the log.
  for (std::size_t k = 0; k < a.values.size(); ++k) {
    ASSERT_EQ(a.values[k], b.values[k]) << "first divergence at index " << k;
  }
}

/// The message ledgers must match exactly: overlapping moves wire time, not
/// messages.  (Clocks — wait_time, overlap counters — legitimately move.)
void expect_ledgers_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.stats.per_proc.size(), b.stats.per_proc.size());
  for (std::size_t i = 0; i < a.stats.per_proc.size(); ++i) {
    SCOPED_TRACE("rank " + std::to_string(i));
    const ProcCounters& pa = a.stats.per_proc[i];
    const ProcCounters& pb = b.stats.per_proc[i];
    EXPECT_EQ(pa.msgs_sent, pb.msgs_sent);
    EXPECT_EQ(pa.bytes_sent, pb.bytes_sent);
    EXPECT_EQ(pa.msgs_recv, pb.msgs_recv);
    EXPECT_EQ(pa.bytes_recv, pb.bytes_recv);
    EXPECT_EQ(pa.sent_by_tag, pb.sent_by_tag);
    EXPECT_EQ(pa.recv_by_tag, pb.recv_by_tag);
    EXPECT_EQ(pa.self_msgs_by_tag, pb.self_msgs_by_tag);
  }
  EXPECT_TRUE(a.stats.unmatched_by_tag().empty());
  EXPECT_TRUE(b.stats.unmatched_by_tag().empty());
}

/// The full differential matrix for one workload: for every contention
/// tier, the kOn run must match the blocking oracle's solution bytes and
/// ledgers, and kOn traces/ledgers must be bit-identical across host
/// worker counts.
template <class Prog>
void run_differential_matrix(int nprocs, Prog&& prog,
                             bool expect_overlap = true) {
  for (LinkContention lc : kTiers) {
    SCOPED_TRACE(std::string("tier=") + tier_name(lc));
    const RunResult oracle = run_case(nprocs, lc, 1, Overlap::kOff, prog);
    EXPECT_EQ(oracle.stats.overlap_wire_time(), 0.0);
    RunResult first_on;
    bool have_first = false;
    for (int workers : worker_counts()) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      RunResult on = run_case(nprocs, lc, workers, Overlap::kOn, prog);
      expect_values_byte_identical(on, oracle);
      expect_ledgers_identical(on, oracle);
      if (expect_overlap) {
        EXPECT_GT(on.stats.overlap_wire_time(), 0.0);
      }
      if (!have_first) {
        first_on = std::move(on);
        have_first = true;
      } else {
        EXPECT_EQ(on.trace, first_on.trace);
        expect_ledgers_identical(on, first_on);
      }
    }
  }
}

// --- workloads -------------------------------------------------------------

/// Raw split-phase halo: a 5-point stencil over a (block, block) array,
/// interior ring between post and wait, boundary ring after.
void halo_prog(Context& ctx, Overlap ov, std::vector<double>& out) {
  const int n = 24;
  ProcView pv = ProcView::grid2(2, 2);
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 u(ctx, pv, {n, n}, dists, {1, 1});
  D2 r(ctx, pv, {n, n}, dists);
  u.fill([&](std::array<int, 2> g) {
    return 0.25 * g[0] + std::sin(0.3 * g[1]);
  });
  auto body = [&](int i, int j) {
    r(i, j) = 4.0 * u.at_halo({i, j}) - u.at_halo({i - 1, j}) -
              u.at_halo({i + 1, j}) - u.at_halo({i, j - 1}) -
              u.at_halo({i, j + 1});
  };
  if (ov == Overlap::kOn) {
    auto ex = u.exchange_halo_begin();
    doall2_ring(u, Range{0, n - 1}, Range{0, n - 1}, 1, Ring::kInterior, body,
                6.0);
    ex.finish();
    doall2_ring(u, Range{0, n - 1}, Range{0, n - 1}, 1, Ring::kBoundary, body,
                6.0);
  } else {
    u.exchange_halo();
    doall2(r, Range{0, n - 1}, Range{0, n - 1}, body, 6.0);
  }
  r.for_each_owned([&](std::array<int, 2> g) { out.push_back(r.at(g)); });
}

/// mg2 V-cycles: split-phase zebra sweeps and residuals, pipelined fused
/// restriction, overlapped interpolation remap.
void mg2_prog(Context& ctx, Overlap ov, std::vector<double>& out) {
  const int nx = 32, ny = 32;
  ProcView pv = ProcView::grid1(ctx.nprocs());
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
  D2 u(ctx, pv, {nx + 1, ny + 1}, dists, {0, 1});
  D2 f(ctx, pv, {nx + 1, ny + 1}, dists);
  Op2 op;
  op.axx = op.ayy = 1.0;
  op.sigma = 0.0;
  op.hx = 1.0 / nx;
  op.hy = 1.0 / ny;
  f.fill([&](std::array<int, 2> g) {
    return rhs2(op, g[0] * op.hx, g[1] * op.hy);
  });
  Mg2Options opts;
  opts.overlap = ov;
  for (int cyc = 0; cyc < 3; ++cyc) {
    mg2_cycle(op, u, f, opts);
  }
  u.for_each_owned([&](std::array<int, 2> g) { out.push_back(u.at(g)); });
}

/// ADI in transpose mode: split-phase residual plus three overlapped
/// redistributions per iteration.
void adi_prog(Context& ctx, Overlap ov, std::vector<double>& out) {
  const int n = 32;
  ProcView pv = ProcView::grid2(2, 2);
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 u(ctx, pv, {n, n}, dists, {1, 1});
  D2 f(ctx, pv, {n, n}, dists);
  Op2 op;
  op.axx = op.ayy = 1.0;
  op.sigma = 0.0;
  op.hx = op.hy = 1.0 / (n + 1);
  const double h = 1.0 / (n + 1);
  f.fill([&](std::array<int, 2> g) {
    return rhs2(op, (g[0] + 1) * h, (g[1] + 1) * h);
  });
  AdiOptions opts;
  opts.op = op;
  opts.tau = adi_default_tau(op, n);
  opts.transpose = true;
  opts.overlap = ov;
  for (int it = 0; it < 3; ++it) {
    adi_iterate(opts, u, f);
  }
  u.for_each_owned([&](std::array<int, 2> g) { out.push_back(u.at(g)); });
}

/// mg3 V-cycles (with the inner plane solver overlapped too): 3-D
/// split-phase residuals, pipelined z-level remaps, plus everything the
/// mg2 plane solves exercise.
void mg3_prog(Context& ctx, Overlap ov, std::vector<double>& out) {
  const int nx = 8, ny = 8, nz = 8;
  ProcView pv = ProcView::grid2(2, 2);
  using D3 = DistArray3<double>;
  const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                 DimDist::block_dist()};
  D3 u(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists, {0, 1, 1});
  D3 f(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists);
  Op3 op;
  op.axx = op.ayy = op.azz = 1.0;
  op.sigma = 0.0;
  op.hx = 1.0 / nx;
  op.hy = 1.0 / ny;
  op.hz = 1.0 / nz;
  f.fill([&](std::array<int, 3> g) {
    return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
  });
  Mg3Options opts;
  opts.overlap = ov;
  opts.plane_mg2.overlap = ov;
  for (int cyc = 0; cyc < 2; ++cyc) {
    mg3_cycle(op, u, f, opts);
  }
  u.for_each_owned([&](std::array<int, 3> g) { out.push_back(u.at(g)); });
}

// --- the differential matrix ----------------------------------------------

TEST(AsyncDifferential, SplitPhaseHaloMatchesBlocking) {
  run_differential_matrix(4, halo_prog);
}

TEST(AsyncDifferential, Mg2OverlapMatchesBlocking) {
  run_differential_matrix(4, mg2_prog);
}

TEST(AsyncDifferential, AdiTransposeOverlapMatchesBlocking) {
  run_differential_matrix(4, adi_prog);
}

TEST(AsyncDifferential, Mg3OverlapMatchesBlocking) {
  run_differential_matrix(4, mg3_prog);
}

// --- handle semantics ------------------------------------------------------

TEST(AsyncHandles, IsendHandleIsBornComplete) {
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      CommHandle h = ctx.isend<int>(1, /*tag=*/9, 42);
      EXPECT_TRUE(h.done());
      EXPECT_TRUE(h.test());  // and test() on a complete handle stays true
    } else {
      EXPECT_EQ(ctx.recv<int>(0, 9), 42);
    }
  });
}

TEST(AsyncHandles, DefaultHandleIsComplete) {
  Machine m(1, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    CommHandle h;
    EXPECT_TRUE(h.done());
    ctx.wait(h);  // no-op, no throw
    EXPECT_TRUE(ctx.test(h));
  });
}

TEST(AsyncHandles, IrecvWaitRoundtrip) {
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<double>(1, 11, 2.5);
    } else {
      double x = 0.0;
      CommHandle h = ctx.irecv<double>(0, 11, x);
      ctx.wait(h);
      EXPECT_TRUE(h.done());
      EXPECT_EQ(x, 2.5);
    }
  });
}

TEST(AsyncHandles, TestIsFalseWhileSenderProvablyIdle) {
  // Rank 0 sends only after receiving rank 1's trigger, so rank 1's first
  // test() observes a provably-empty lane — deterministically false under
  // any host interleaving.
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      (void)ctx.recv<int>(1, 13);
      ctx.send<int>(1, 14, 7);
    } else {
      int got = 0;
      CommHandle h = ctx.irecv<int>(0, 14, got);
      EXPECT_FALSE(ctx.test(h));  // trigger not yet sent: lane empty
      ctx.send<int>(0, 13, 1);
      ctx.wait(h);
      EXPECT_EQ(got, 7);
    }
  });
}

TEST(AsyncHandles, WaitAllCompletesOutOfOrderPosts) {
  // Two tags posted in the opposite order they were sent; wait_all takes
  // the union and the deterministic completion algebra sorts it out.
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 21, 100);
      ctx.send<int>(1, 22, 200);
    } else {
      int a = 0, b = 0;
      std::vector<CommHandle> hs;
      hs.push_back(ctx.irecv<int>(0, 22, b));
      hs.push_back(ctx.irecv<int>(0, 21, a));
      ctx.wait_all(std::span<CommHandle>(hs));
      EXPECT_EQ(a, 100);
      EXPECT_EQ(b, 200);
    }
  });
}

TEST(AsyncHandles, LaneFifoPairsPostsWithMatchesInOrder) {
  // Three posts on one (src, tag) lane pair with the three sends in FIFO
  // order; waiting the *last* handle completes its lane predecessors too.
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int k = 0; k < 3; ++k) {
        ctx.send<int>(1, 31, 10 + k);
      }
    } else {
      int v0 = 0, v1 = 0, v2 = 0;
      CommHandle h0 = ctx.irecv<int>(0, 31, v0);
      CommHandle h1 = ctx.irecv<int>(0, 31, v1);
      CommHandle h2 = ctx.irecv<int>(0, 31, v2);
      ctx.wait(h2);
      EXPECT_TRUE(h0.done());
      EXPECT_TRUE(h1.done());
      EXPECT_EQ(v0, 10);
      EXPECT_EQ(v1, 11);
      EXPECT_EQ(v2, 12);
    }
  });
}

TEST(AsyncHandles, OverlapLedgerSeesHiddenWireTime) {
  // A receiver that computes through the in-flight window records both the
  // window and the hidden portion; an idle receiver records window only.
  Machine m(2, make_config(LinkContention::kNone, 1));
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> payload(256, 1.0);
      ctx.send_span<double>(1, 41, payload);
    } else {
      std::vector<double> buf(256);
      CommHandle h = ctx.irecv_into<double>(0, 41, buf);
      ctx.compute(1e6);  // plenty of work: the whole window is hidden
      ctx.wait(h);
    }
  });
  const MachineStats s = m.stats();
  EXPECT_GT(s.overlap_wire_time(), 0.0);
  EXPECT_GT(s.overlap_hidden_time(), 0.0);
  EXPECT_EQ(s.overlap_ratio(), 1.0);  // compute covered the whole window
}

}  // namespace
}  // namespace kali

#include "machine/topology.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(Topology, CompleteIsOneHop) {
  EXPECT_EQ(hop_count(Topology::kComplete, 8, 0, 7), 1);
  EXPECT_EQ(hop_count(Topology::kComplete, 8, 3, 3), 0);
}

TEST(Topology, DiameterIsMaxPairwiseHopCount) {
  for (Topology t : {Topology::kComplete, Topology::kRing, Topology::kMesh2D,
                     Topology::kHypercube}) {
    for (int p : {1, 2, 3, 4, 6, 8, 9, 16}) {
      int widest = 0;
      for (int a = 0; a < p; ++a) {
        for (int b = 0; b < p; ++b) {
          widest = std::max(widest, hop_count(t, p, a, b));
        }
      }
      EXPECT_EQ(diameter(t, p), widest)
          << "topology " << static_cast<int>(t) << " p=" << p;
    }
  }
}

TEST(Topology, RingUsesCyclicDistance) {
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 1), 1);
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 7), 1);  // wraps
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 4), 4);
  EXPECT_EQ(hop_count(Topology::kRing, 8, 2, 6), 4);
}

TEST(Topology, HypercubeUsesHammingDistance) {
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 0, 7), 3);  // 000 vs 111
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 5, 6), 2);  // 101 vs 110
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 4, 4), 0);
}

TEST(Topology, MeshFactorizationIsNearSquare) {
  EXPECT_EQ(mesh_rows(16), 4);
  EXPECT_EQ(mesh_rows(12), 3);
  EXPECT_EQ(mesh_rows(1), 1);
}

TEST(Topology, MeshManhattanDistance) {
  // 16 procs -> 4x4 mesh; rank = 4*row + col.
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 0, 5), 2);   // (0,0)->(1,1)
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 0, 15), 6);  // (0,0)->(3,3)
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 3, 3), 0);
}

TEST(Topology, SymmetricAndZeroOnDiagonal) {
  for (auto topo : {Topology::kComplete, Topology::kRing, Topology::kMesh2D,
                    Topology::kHypercube}) {
    for (int a = 0; a < 12; ++a) {
      EXPECT_EQ(hop_count(topo, 12, a, a), 0);
      for (int b = 0; b < 12; ++b) {
        EXPECT_EQ(hop_count(topo, 12, a, b), hop_count(topo, 12, b, a));
      }
    }
  }
}

TEST(Topology, OutOfRangeRankThrows) {
  EXPECT_THROW(hop_count(Topology::kRing, 4, 0, 4), Error);
  EXPECT_THROW(hop_count(Topology::kRing, 4, -1, 0), Error);
}

}  // namespace
}  // namespace kali

#include "machine/topology.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(Topology, CompleteIsOneHop) {
  EXPECT_EQ(hop_count(Topology::kComplete, 8, 0, 7), 1);
  EXPECT_EQ(hop_count(Topology::kComplete, 8, 3, 3), 0);
}

TEST(Topology, DiameterIsMaxPairwiseHopCount) {
  for (Topology t : {Topology::kComplete, Topology::kRing, Topology::kMesh2D,
                     Topology::kHypercube}) {
    for (int p : {1, 2, 3, 4, 6, 8, 9, 16}) {
      int widest = 0;
      for (int a = 0; a < p; ++a) {
        for (int b = 0; b < p; ++b) {
          widest = std::max(widest, hop_count(t, p, a, b));
        }
      }
      EXPECT_EQ(diameter(t, p), widest)
          << "topology " << static_cast<int>(t) << " p=" << p;
    }
  }
}

TEST(Topology, RingUsesCyclicDistance) {
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 1), 1);
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 7), 1);  // wraps
  EXPECT_EQ(hop_count(Topology::kRing, 8, 0, 4), 4);
  EXPECT_EQ(hop_count(Topology::kRing, 8, 2, 6), 4);
}

TEST(Topology, HypercubeUsesHammingDistance) {
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 0, 7), 3);  // 000 vs 111
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 5, 6), 2);  // 101 vs 110
  EXPECT_EQ(hop_count(Topology::kHypercube, 8, 4, 4), 0);
}

TEST(Topology, MeshFactorizationIsNearSquare) {
  EXPECT_EQ(mesh_rows(16), 4);
  EXPECT_EQ(mesh_rows(12), 3);
  EXPECT_EQ(mesh_rows(1), 1);
}

TEST(Topology, MeshManhattanDistance) {
  // 16 procs -> 4x4 mesh; rank = 4*row + col.
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 0, 5), 2);   // (0,0)->(1,1)
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 0, 15), 6);  // (0,0)->(3,3)
  EXPECT_EQ(hop_count(Topology::kMesh2D, 16, 3, 3), 0);
}

TEST(Topology, SymmetricAndZeroOnDiagonal) {
  for (auto topo : {Topology::kComplete, Topology::kRing, Topology::kMesh2D,
                    Topology::kHypercube}) {
    for (int a = 0; a < 12; ++a) {
      EXPECT_EQ(hop_count(topo, 12, a, a), 0);
      for (int b = 0; b < 12; ++b) {
        EXPECT_EQ(hop_count(topo, 12, a, b), hop_count(topo, 12, b, a));
      }
    }
  }
}

TEST(Topology, OutOfRangeRankThrows) {
  EXPECT_THROW(hop_count(Topology::kRing, 4, 0, 4), Error);
  EXPECT_THROW(hop_count(Topology::kRing, 4, -1, 0), Error);
  EXPECT_THROW(route(Topology::kRing, 4, 0, 4), Error);
  EXPECT_THROW(route(Topology::kRing, 4, -1, 0), Error);
}

TEST(Topology, MeshCoordIsExactInverse) {
  // mesh_rows always divides nprocs, so every rank has a unique in-range
  // coordinate: the old "fold ranks beyond rows*cols onto the last row"
  // path was dead code.
  for (int p : {1, 2, 3, 4, 6, 8, 9, 12, 15, 16}) {
    const int rows = mesh_rows(p);
    const int cols = p / rows;
    ASSERT_EQ(rows * cols, p);
    for (int r = 0; r < p; ++r) {
      const auto [row, col] = mesh_coord(p, r);
      EXPECT_GE(row, 0);
      EXPECT_LT(row, rows);
      EXPECT_GE(col, 0);
      EXPECT_LT(col, cols);
      EXPECT_EQ(row * cols + col, r);
    }
  }
}

TEST(Topology, RouteLengthMatchesHopCount) {
  // route() is the path the store-and-forward model charges, so its length
  // must agree with the hop metric for every pair, and every step must be
  // a single hop.  (Incomplete hypercubes are excluded from the step check:
  // their routes legitimately pass through absent node labels.)
  for (Topology t : {Topology::kComplete, Topology::kRing, Topology::kMesh2D,
                     Topology::kHypercube}) {
    for (int p : {1, 2, 3, 4, 6, 8, 9, 16}) {
      const bool pow2 = (p & (p - 1)) == 0;
      if (t == Topology::kHypercube && !pow2) {
        continue;
      }
      for (int a = 0; a < p; ++a) {
        for (int b = 0; b < p; ++b) {
          const std::vector<int> path = route(t, p, a, b);
          ASSERT_EQ(static_cast<int>(path.size()), hop_count(t, p, a, b) + 1)
              << "topology " << static_cast<int>(t) << " p=" << p;
          EXPECT_EQ(path.front(), a);
          EXPECT_EQ(path.back(), b);
          if (a != b) {
            EXPECT_EQ(first_hop(t, p, a, b), path[1]);
          }
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            EXPECT_EQ(hop_count(t, p, path[i], path[i + 1]), 1);
          }
        }
      }
    }
  }
}

TEST(Topology, IncompleteHypercubeRoutesThroughLabelLattice) {
  // Hamming hop counts for non-power-of-two sizes imply routes through
  // labels that name no processor; the path length must still match.
  const int p = 6;
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      const std::vector<int> path = route(Topology::kHypercube, p, a, b);
      EXPECT_EQ(static_cast<int>(path.size()),
                hop_count(Topology::kHypercube, p, a, b) + 1);
    }
  }
  // 5 (101) -> 2 (010): LSB-first bit fixing passes through 4 (100) and
  // 6 (110); 6 is not a processor but still identifies real links.
  const std::vector<int> path = route(Topology::kHypercube, p, 5, 2);
  EXPECT_EQ(path, (std::vector<int>{5, 4, 6, 2}));
}

TEST(Topology, MeshRoutesColumnFirst) {
  // X-Y (dimension-ordered) routing on the 4x4 mesh: (1,3) -> (0,0) walks
  // its row to column 0, then the column — rank ids 7, 6, 5, 4, 0.
  EXPECT_EQ(route(Topology::kMesh2D, 16, 7, 0),
            (std::vector<int>{7, 6, 5, 4, 0}));
}

TEST(Topology, RingRouteTakesShorterArcClockwiseOnTie) {
  EXPECT_EQ(route(Topology::kRing, 8, 0, 2), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(route(Topology::kRing, 8, 0, 6), (std::vector<int>{0, 7, 6}));
  // Tie at p/2 breaks clockwise (increasing ranks).
  EXPECT_EQ(route(Topology::kRing, 8, 6, 2),
            (std::vector<int>{6, 7, 0, 1, 2}));
}

TEST(Topology, EdgeIdIsInjective) {
  EXPECT_NE(edge_id(0, 1), edge_id(1, 0));
  EXPECT_NE(edge_id(2, 3), edge_id(3, 2));
  EXPECT_EQ(edge_id(5, 7), edge_id(5, 7));
}

}  // namespace
}  // namespace kali

#include "machine/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "support/check.hpp"

namespace kali {
namespace {

Message make(int src, int tag, std::initializer_list<int> words = {}) {
  Message m;
  m.src = src;
  m.tag = tag;
  for (int w : words) {
    for (std::size_t i = 0; i < sizeof(int); ++i) {
      m.payload.push_back(static_cast<std::byte>((w >> (8 * i)) & 0xff));
    }
  }
  return m;
}

TEST(Mailbox, DeliversMatchingMessage) {
  Mailbox mb;
  mb.push(make(3, 42));
  Message m = mb.recv(3, 42, 1.0);
  EXPECT_EQ(m.src, 3);
  EXPECT_EQ(m.tag, 42);
}

TEST(Mailbox, MatchesOnSourceAndTag) {
  Mailbox mb;
  mb.push(make(1, 10));
  mb.push(make(2, 10));
  mb.push(make(1, 20));
  EXPECT_EQ(mb.recv(2, 10, 1.0).src, 2);
  EXPECT_EQ(mb.recv(1, 20, 1.0).tag, 20);
  EXPECT_EQ(mb.recv(1, 10, 1.0).src, 1);
  EXPECT_EQ(mb.pending(), 0u);
}

TEST(Mailbox, AnySourceMatchesFirstArrival) {
  Mailbox mb;
  mb.push(make(5, 7));
  mb.push(make(6, 7));
  EXPECT_EQ(mb.recv(kAnySource, 7, 1.0).src, 5);
  EXPECT_EQ(mb.recv(kAnySource, 7, 1.0).src, 6);
}

TEST(Mailbox, FifoPerSourceAndTag) {
  Mailbox mb;
  mb.push(make(1, 5, {100}));
  mb.push(make(1, 5, {200}));
  Message a = mb.recv(1, 5, 1.0);
  Message b = mb.recv(1, 5, 1.0);
  EXPECT_EQ(static_cast<int>(a.payload[0]), 100);
  EXPECT_EQ(static_cast<int>(b.payload[0]), 200);
}

TEST(Mailbox, TimeoutThrows) {
  Mailbox mb;
  EXPECT_THROW(mb.recv(0, 0, 0.05), Error);
}

TEST(Mailbox, BlockingRecvWakesOnPush) {
  Mailbox mb;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(make(9, 1));
  });
  Message m = mb.recv(9, 1, 5.0);
  EXPECT_EQ(m.src, 9);
  producer.join();
}

TEST(Mailbox, AbortWakesWaiters) {
  Mailbox mb;
  std::thread aborter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.abort();
  });
  EXPECT_THROW(mb.recv(0, 0, 5.0), Error);
  aborter.join();
}

TEST(Mailbox, ProbeSeesQueuedMessage) {
  Mailbox mb;
  EXPECT_FALSE(mb.probe(1, 2));
  mb.push(make(1, 2));
  EXPECT_TRUE(mb.probe(1, 2));
  EXPECT_TRUE(mb.probe(kAnySource, 2));
  EXPECT_FALSE(mb.probe(1, 3));
}

}  // namespace
}  // namespace kali

// Death/regression tests for the KALI_CHECK_INVARIANTS build mode: each
// machine-layer invariant must actually fire on the violation it guards
// against, and must stay silent on legal programs.  Built without
// -DKALI_CHECK_INVARIANTS=ON the checks compile to no-ops, so every death
// test skips itself (the regression tests still run).
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/message.hpp"
#include "machine/processor.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

#if defined(KALI_CHECK_INVARIANTS)
constexpr bool kInvariantsOn = true;
#else
constexpr bool kInvariantsOn = false;
#endif

#define SKIP_WITHOUT_INVARIANTS()                                   \
  do {                                                              \
    if (!kInvariantsOn) {                                           \
      GTEST_SKIP() << "built without -DKALI_CHECK_INVARIANTS=ON";   \
    }                                                               \
  } while (0)

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

Group whole_machine(Context& ctx) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  for (int r = 0; r < ctx.nprocs(); ++r) {
    ranks[static_cast<std::size_t>(r)] = r;
  }
  return Group(ranks, ctx.rank());
}

// --- clock monotonicity ----------------------------------------------------

TEST(Invariants, ProcessorClockMayNotMoveBackwards) {
  SKIP_WITHOUT_INVARIANTS();
  Processor p(0);
  p.set_clock(5.0);
  p.set_clock(5.0);  // equal is legal (zero-cost events)
  EXPECT_THROW(p.set_clock(4.0), Error);
}

TEST(Invariants, PortClocksMayNotMoveBackwards) {
  SKIP_WITHOUT_INVARIANTS();
  Processor p(0);
  p.set_out_link_free(3.0);
  EXPECT_THROW(p.set_out_link_free(2.0), Error);
  p.set_in_link_free(3.0);
  EXPECT_THROW(p.set_in_link_free(2.0), Error);
}

TEST(Invariants, PortClocksResetLegallyAtBarriers) {
  // clear_link_state (the sync_clocks barrier) is the sanctioned reset:
  // it bypasses the monotonicity guard by design.
  Processor p(0);
  p.set_out_link_free(3.0);
  p.set_in_link_free(3.0);
  p.clear_link_state();
  EXPECT_EQ(p.out_link_free(), 0.0);
  EXPECT_EQ(p.in_link_free(), 0.0);
  p.set_out_link_free(1.0);  // and the guard re-arms from zero
}

// --- edge ledger key discipline --------------------------------------------

TEST(Invariants, EdgeLedgerRejectsDuplicateKeys) {
  SKIP_WITHOUT_INVARIANTS();
  Processor p(0);
  p.reserve_edge(/*edge=*/7, /*send_time=*/1.0, /*src=*/2, /*seq=*/5,
                 /*t_in=*/1.0, /*wire=*/0.5);
  // Distinct keys on the same edge are fine, in any component.
  p.reserve_edge(7, 1.0, 2, 6, 1.5, 0.5);
  p.reserve_edge(7, 1.0, 3, 5, 1.5, 0.5);
  p.reserve_edge(7, 2.0, 2, 5, 2.0, 0.5);
  // Re-reserving an identical (send_time, src, seq) key is a resolved-twice
  // message: the serialization total order would no longer be total.
  EXPECT_THROW(p.reserve_edge(7, 1.0, 2, 5, 3.0, 0.5), Error);
  // The same key on a *different* edge is a different resource: legal.
  p.reserve_edge(8, 1.0, 2, 5, 1.0, 0.5);
}

// --- tag-band registration at send -----------------------------------------

TEST(Invariants, SendRejectsUnregisteredRuntimeBandTag) {
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
                 if (ctx.rank() == 0) {
                   // Inside the runtime band but in no registered slot.
                   ctx.send(1, kRuntimeTagBase + 999, 42);
                 }
               }),
               Error);
}

TEST(Invariants, SendRejectsUnregisteredCollectiveBandTag) {
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
                 if (ctx.rank() == 0) {
                   // The collectives band registers base+1..base+7 only.
                   ctx.send(1, kCollectiveTagBase + 100, 42);
                 }
               }),
               Error);
}

TEST(Invariants, SendAcceptsRegisteredTagsInEveryBand) {
  // Regression guard in both build modes: legal traffic never trips the
  // tag check.  One tag per band: user, runtime, kernel.
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    for (int tag : {42, kTagHaloBase + 2, kTagRedistData, kTagTriBase + 4}) {
      if (ctx.rank() == 0) {
        ctx.send(1, tag, tag);
      } else {
        EXPECT_EQ(ctx.recv<int>(0, tag), tag);
      }
    }
  });
}

// --- sync_clocks straddle detection ----------------------------------------

TEST(Invariants, RecvRejectsMessageStraddlingSyncClocks) {
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  try {
    m.run([&](Context& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, /*tag=*/5, 1.0);  // stamped with epoch 0
      } else {
        // Cross the barrier on the receiver alone (the epoch bump
        // sync_clocks performs after its own leak check has passed — a
        // full sync_clocks would trip that leak check first): the pending
        // message now straddles it.
        ctx.proc().bump_barrier_epoch();
        (void)ctx.recv<double>(0, 5);
      }
    });
    FAIL() << "straddling recv did not throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("straddles"), std::string::npos)
        << e.what();
  }
}

// --- message-leak accounting -----------------------------------------------

TEST(Invariants, SyncClocksRejectsLeakedMessage) {
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  try {
    m.run([&](Context& ctx) {
      Group g = whole_machine(ctx);
      if (ctx.rank() == 0) {
        ctx.send(1, /*tag=*/5, 1.0);  // nobody ever receives this
      }
      // The machine-spanning barrier proves the phase's traffic has fully
      // arrived; rank 1's still-queued message is a leak.
      sync_clocks(ctx, g);
    });
    FAIL() << "leaked message did not throw at sync_clocks";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("leak at sync_clocks"), std::string::npos) << what;
    EXPECT_NE(what.find("tag 5"), std::string::npos) << what;
    EXPECT_NE(what.find("0 -> 1"), std::string::npos) << what;
  }
}

TEST(Invariants, SubgroupSyncClocksSkipsLeakCheck) {
  SKIP_WITHOUT_INVARIANTS();
  // Rank 2 (outside the subgroup) has already delivered tag 5 to rank 0
  // when ranks {0, 1} align clocks — the tag-6 handshake orders that, since
  // pushes from one sender are FIFO.  A subgroup barrier proves nothing
  // about rank 2's traffic, so the leak check must stay quiet; the late
  // recv then trips the (orthogonal) straddle invariant, which is the
  // error this test expects to see *instead* of a leak report.
  Machine m(3, quiet_config());
  try {
    m.run([&](Context& ctx) {
      if (ctx.rank() == 2) {
        ctx.send(0, /*tag=*/5, 1.0);
        ctx.send(0, /*tag=*/6, 2.0);
      }
      if (ctx.rank() == 0) {
        (void)ctx.recv<double>(2, 6);
      }
      if (ctx.rank() != 2) {
        Group g({0, 1}, ctx.rank());
        sync_clocks(ctx, g);
      }
      if (ctx.rank() == 0) {
        (void)ctx.recv<double>(2, 5);
      }
    });
    FAIL() << "expected the straddle invariant to fire";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("leak"), std::string::npos) << what;
    EXPECT_NE(what.find("straddles"), std::string::npos) << what;
  }
}

TEST(Invariants, TeardownRejectsLeakedMessage) {
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  try {
    m.run([&](Context& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, /*tag=*/5, 1.0);  // sent, never received, no barrier
      }
    });
    FAIL() << "leaked message did not throw at teardown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("leak at machine teardown"), std::string::npos)
        << what;
    EXPECT_NE(what.find("tag 5"), std::string::npos) << what;
  }
}

TEST(Invariants, BalancedTrafficPassesBothLeakChecks) {
  // Regression guard in both build modes: matched send/recv traffic stays
  // silent through sync_clocks and teardown, and the per-tag ledgers
  // balance exactly.
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 3.0);
    } else {
      EXPECT_EQ(ctx.recv<double>(0, 5), 3.0);
    }
    sync_clocks(ctx, g);
  });
  EXPECT_TRUE(m.stats().unmatched_by_tag().empty());
}

TEST(Invariants, DroppedIrecvHandleDiagnosedAtReturn) {
  // An irecv whose handle is dropped without wait() is a leak even when the
  // matching message eventually arrives: the destination span may dangle
  // and the completion algebra never ran.  The invariant names the pending
  // operation when the rank program returns.
  SKIP_WITHOUT_INVARIANTS();
  Machine m(2, quiet_config());
  try {
    m.run([&](Context& ctx) {
      if (ctx.rank() == 0) {
        ctx.send(1, /*tag=*/5, 3.0);
      } else {
        double got = 0.0;
        CommHandle h = ctx.irecv<double>(0, 5, got);
        (void)h;  // dropped: never waited
      }
    });
    ADD_FAILURE() << "leaked handle not diagnosed";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nonblocking operation never completed"),
              std::string::npos)
        << what;
    EXPECT_NE(what.find("tag=5"), std::string::npos) << what;
  }
}

TEST(Invariants, WaitedHandlePassesTheLeakCheck) {
  // Regression guard in both build modes: a properly waited irecv leaves no
  // pending-operation residue for the teardown check to trip on.
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 3.0);
    } else {
      double got = 0.0;
      CommHandle h = ctx.irecv<double>(0, 5, got);
      ctx.wait(h);
      EXPECT_EQ(got, 3.0);
    }
  });
  EXPECT_TRUE(m.stats().unmatched_by_tag().empty());
}

TEST(Invariants, BarrierSeparatedPhasesPassTheStraddleCheck) {
  // Regression guard: a well-phased program (all traffic quiesced before
  // each sync_clocks, fresh traffic after) is legal in both build modes.
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    for (int phase = 0; phase < 3; ++phase) {
      if (ctx.rank() == 0) {
        ctx.send(1, /*tag=*/5, static_cast<double>(phase));
      } else {
        EXPECT_EQ(ctx.recv<double>(0, 5), static_cast<double>(phase));
      }
      sync_clocks(ctx, g);
    }
    const double sum = allreduce_sum(ctx, g, 1.0);
    EXPECT_EQ(sum, 2.0);
  });
}

}  // namespace
}  // namespace kali

// Structural verification of the paper's Figures 1, 2 and 4: the two-sided
// block elimination leaves boundary rows coupled to each other and to the
// outside, and interior rows depending only on the block boundary values.
#include "kernels/reduce_block.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "kernels/thomas.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

struct System {
  std::vector<double> b, a, c, f, x;
};

// Random diagonally dominant global system of size n with exact solution.
System random_system(std::uint64_t seed, int n) {
  Rng rng(seed);
  System s;
  const auto un = static_cast<std::size_t>(n);
  s.b.assign(un, 0.0);
  s.a.assign(un, 0.0);
  s.c.assign(un, 0.0);
  s.f.assign(un, 0.0);
  s.x.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    s.b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    s.a[i] = std::abs(s.b[i]) + std::abs(s.c[i]) + rng.uniform(1.0, 2.0);
    s.f[i] = rng.uniform(-10, 10);
  }
  thomas_solve(s.b, s.a, s.c, s.f, s.x);
  return s;
}

class ReduceBlockP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ReduceBlockP, ReducedEquationsHoldForExactSolution) {
  const auto [n, lo, m] = GetParam();
  System s = random_system(42u + static_cast<std::uint64_t>(n * 100 + lo), n);

  // Extract the block rows [lo, lo+m) and reduce them.
  std::vector<double> b(s.b.begin() + lo, s.b.begin() + lo + m);
  std::vector<double> a(s.a.begin() + lo, s.a.begin() + lo + m);
  std::vector<double> c(s.c.begin() + lo, s.c.begin() + lo + m);
  std::vector<double> f(s.f.begin() + lo, s.f.begin() + lo + m);
  reduce_block(b, a, c, f);

  const auto um = static_cast<std::size_t>(m);
  const double x0 = s.x[static_cast<std::size_t>(lo)];
  const double xm1 = s.x[static_cast<std::size_t>(lo + m - 1)];
  const double xleft = lo > 0 ? s.x[static_cast<std::size_t>(lo - 1)] : 0.0;
  const double xright =
      lo + m < n ? s.x[static_cast<std::size_t>(lo + m)] : 0.0;

  // Figure 1/2: boundary row equations couple (left, x0, xm1) and
  // (x0, xm1, right) respectively.
  EXPECT_NEAR(b[0] * xleft + a[0] * x0 + c[0] * xm1, f[0], 1e-9);
  EXPECT_NEAR(b[um - 1] * x0 + a[um - 1] * xm1 + c[um - 1] * xright,
              f[um - 1], 1e-9);

  // Interior rows: b -> x0 coupling, c -> xm1 coupling.
  for (std::size_t j = 1; j + 1 < um; ++j) {
    EXPECT_NEAR(b[j] * x0 + a[j] * s.x[static_cast<std::size_t>(lo) + j] +
                    c[j] * xm1,
                f[j], 1e-9)
        << "row " << j;
  }

  // Figure 4: back substitution reproduces the exact interior values.
  std::vector<double> xs(um);
  back_substitute_block(b, a, c, f, x0, xm1, xs);
  for (std::size_t j = 0; j < um; ++j) {
    EXPECT_NEAR(xs[j], s.x[static_cast<std::size_t>(lo) + j], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Blocks, ReduceBlockP,
    ::testing::Values(std::tuple{16, 4, 4},    // interior block
                      std::tuple{16, 0, 4},    // leftmost block
                      std::tuple{16, 12, 4},   // rightmost block
                      std::tuple{16, 6, 2},    // minimal block (m = 2)
                      std::tuple{16, 5, 3},    // m = 3 (one interior row)
                      std::tuple{64, 24, 16},  // larger block
                      std::tuple{8, 0, 8}));   // whole system as one block

TEST(ReduceBlock, PairsFormReducedTridiagonalSystem) {
  // Figure 1's key claim: the 2p boundary rows, in order
  // l_0, u_0, l_1, u_1, ..., form a tridiagonal system whose solution
  // matches the original system's values at those rows.
  const int n = 32, p = 4, mb = n / p;
  System s = random_system(77, n);

  std::vector<double> rb, ra, rc, rf;  // reduced system of size 2p
  for (int q = 0; q < p; ++q) {
    const int lo = q * mb;
    std::vector<double> b(s.b.begin() + lo, s.b.begin() + lo + mb);
    std::vector<double> a(s.a.begin() + lo, s.a.begin() + lo + mb);
    std::vector<double> c(s.c.begin() + lo, s.c.begin() + lo + mb);
    std::vector<double> f(s.f.begin() + lo, s.f.begin() + lo + mb);
    reduce_block(b, a, c, f);
    const auto um = static_cast<std::size_t>(mb);
    rb.push_back(b[0]);
    ra.push_back(a[0]);
    rc.push_back(c[0]);
    rf.push_back(f[0]);
    rb.push_back(b[um - 1]);
    ra.push_back(a[um - 1]);
    rc.push_back(c[um - 1]);
    rf.push_back(f[um - 1]);
  }
  std::vector<double> rx(static_cast<std::size_t>(2 * p));
  thomas_solve(rb, ra, rc, rf, rx);
  for (int q = 0; q < p; ++q) {
    EXPECT_NEAR(rx[static_cast<std::size_t>(2 * q)],
                s.x[static_cast<std::size_t>(q * mb)], 1e-9);
    EXPECT_NEAR(rx[static_cast<std::size_t>(2 * q + 1)],
                s.x[static_cast<std::size_t>(q * mb + mb - 1)], 1e-9);
  }
}

TEST(ReduceBlock, TooSmallBlockThrows) {
  std::vector<double> one(1, 1.0);
  EXPECT_THROW(reduce_block(one, one, one, one), Error);
}

}  // namespace
}  // namespace kali

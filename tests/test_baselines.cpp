#include "kernels/baselines.hpp"

#include <gtest/gtest.h>

#include "kernels/thomas.hpp"
#include "machine/context.hpp"
#include "machine/measure.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

struct System {
  std::vector<double> b, a, c, f, x;
};

System random_system(std::uint64_t seed, int n) {
  Rng rng(seed);
  System s;
  const auto un = static_cast<std::size_t>(n);
  s.b.assign(un, 0.0);
  s.a.assign(un, 0.0);
  s.c.assign(un, 0.0);
  s.f.assign(un, 0.0);
  s.x.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    s.b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    s.a[i] = std::abs(s.b[i]) + std::abs(s.c[i]) + rng.uniform(1.0, 2.0);
    s.f[i] = rng.uniform(-10, 10);
  }
  thomas_solve(s.b, s.a, s.c, s.f, s.x);
  return s;
}

using Solver = void (*)(const DistArray1<double>&, const DistArray1<double>&,
                        const DistArray1<double>&, const DistArray1<double>&,
                        DistArray1<double>&);

class BaselineP
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 public:
  static Solver solver(int which) {
    switch (which) {
      case 0:
        return &gather_thomas;
      case 1:
        return &pipelined_thomas;
      default:
        return &cyclic_reduction;
    }
  }
};

TEST_P(BaselineP, MatchesSequentialThomas) {
  const auto [which, p, n] = GetParam();
  System s = random_system(31u + static_cast<std::uint64_t>(which * 100 + p), n);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    solver(which)(b, a, c, f, x);
    x.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_NEAR(x.at(g), s.x[static_cast<std::size_t>(g[0])], 1e-8)
          << "row " << g[0];
    });
  });
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaselineP,
    ::testing::Combine(::testing::Values(0, 1, 2),   // solver
                       ::testing::Values(1, 2, 4),   // p (3 also legal but slow)
                       ::testing::Values(16, 37, 64)));  // n

TEST(Baselines, NonPowerOfTwoProcessorCountsWork) {
  // Unlike the substructured tri, the baselines have no 2^k restriction.
  System s = random_system(3, 30);
  Machine m(3, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<double> b(ctx, pv, {30}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {30}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {30}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {30}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {30}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    pipelined_thomas(b, a, c, f, x);
    cyclic_reduction(b, a, c, f, x);
    x.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_NEAR(x.at(g), s.x[static_cast<std::size_t>(g[0])], 1e-8);
    });
  });
}

TEST(Baselines, CyclicReductionCommunicatesMoreThanPipelined) {
  // PCR's log2(n) all-active steps move far more messages than the chained
  // elimination — the communication-complexity contrast of paper ref [5].
  const int p = 8, n = 256;
  System s = random_system(17, n);
  auto msgs = [&](Solver solver) {
    Machine m(p, quiet_config());
    std::uint64_t count = 0;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
      b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
      a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
      c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
      f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
      PhaseTimer timer(ctx, pv.group(ctx.rank()));
      solver(b, a, c, f, x);
      const PhaseStats ps = timer.finish();
      if (ctx.rank() == 0) {
        count = ps.msgs;
      }
    });
    return count;
  };
  EXPECT_GT(msgs(&cyclic_reduction), msgs(&pipelined_thomas));
}

}  // namespace
}  // namespace kali

#include "kernels/mtri.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/thomas.hpp"
#include "kernels/tri.hpp"
#include "machine/context.hpp"
#include "machine/measure.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

// Per-system coefficients derived deterministically from (j, i).
double coef_b(int j, int i) { return i == 0 ? 0.0 : -0.4 - 0.01 * ((i + j) % 7); }
double coef_c(int j, int i, int n) {
  return i == n - 1 ? 0.0 : -0.5 - 0.01 * ((i * 3 + j) % 5);
}
double coef_a(int j, int i, int n) {
  return 2.0 + std::abs(coef_b(j, i)) + std::abs(coef_c(j, i, n)) +
         0.02 * (j % 3);
}
double coef_f(int j, int i) { return std::sin(0.1 * i + 0.7 * j); }

std::vector<double> reference_solution(int j, int n) {
  const auto un = static_cast<std::size_t>(n);
  std::vector<double> b(un), a(un), c(un), f(un), x(un);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    b[u] = coef_b(j, i);
    a[u] = coef_a(j, i, n);
    c[u] = coef_c(j, i, n);
    f[u] = coef_f(j, i);
  }
  thomas_solve(b, a, c, f, x);
  return x;
}

class MtriP : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MtriP, MatchesPerSystemThomas) {
  const auto [p, nsys, n] = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 B(ctx, pv, {nsys, n}, dists), A(ctx, pv, {nsys, n}, dists);
    D2 C(ctx, pv, {nsys, n}, dists), F(ctx, pv, {nsys, n}, dists);
    D2 X(ctx, pv, {nsys, n}, dists);
    B.fill([&](std::array<int, 2> g) { return coef_b(g[0], g[1]); });
    A.fill([&](std::array<int, 2> g) { return coef_a(g[0], g[1], n); });
    C.fill([&](std::array<int, 2> g) { return coef_c(g[0], g[1], n); });
    F.fill([&](std::array<int, 2> g) { return coef_f(g[0], g[1]); });
    mtri(B, A, C, F, X, /*system_dim=*/0);
    for (int j = 0; j < nsys; ++j) {
      auto ref = reference_solution(j, n);
      auto xj = X.fix(0, j);
      xj.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_NEAR(xj.at(g), ref[static_cast<std::size_t>(g[0])], 1e-9)
            << "system " << j << " row " << g[0];
      });
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, MtriP,
                         ::testing::Values(std::tuple{1, 3, 16},
                                           std::tuple{2, 4, 16},
                                           std::tuple{4, 1, 32},
                                           std::tuple{4, 8, 32},
                                           std::tuple{8, 16, 64},
                                           std::tuple{8, 5, 64}));

TEST(Mtri, SystemsAlongDim1) {
  // Systems stacked along dim 1 (the paper's mtriyc orientation).
  const int p = 4, nsys = 6, n = 32;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::star()};
    D2 F(ctx, pv, {n, nsys}, dists), X(ctx, pv, {n, nsys}, dists);
    F.fill([&](std::array<int, 2> g) { return coef_f(g[1], g[0]); });
    mtri_const(-1.0, 4.0, -1.0, F, X, /*system_dim=*/1);
    // Reference per system.
    for (int j = 0; j < nsys; ++j) {
      const auto un = static_cast<std::size_t>(n);
      std::vector<double> f(un), ref(un);
      for (int i = 0; i < n; ++i) {
        f[static_cast<std::size_t>(i)] = coef_f(j, i);
      }
      thomas_solve_const(-1.0, 4.0, -1.0, f, ref);
      auto xj = X.fix(1, j);
      xj.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_NEAR(xj.at(g), ref[static_cast<std::size_t>(g[0])], 1e-9);
      });
    }
  });
}

TEST(Mtri, PipelineBeatsSerialTriCalls) {
  // The Listing 6 claim: pipelining the m solves keeps processors busy and
  // reduces the simulated makespan versus m sequential tri calls.
  const int p = 8, nsys = 16, n = 128;
  auto run = [&](bool pipelined) {
    Machine m(p, quiet_config());
    double makespan = 0.0;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      using D2 = DistArray2<double>;
      const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
      D2 F(ctx, pv, {nsys, n}, dists), X(ctx, pv, {nsys, n}, dists);
      F.fill([&](std::array<int, 2> g) { return coef_f(g[0], g[1]); });
      PhaseTimer timer(ctx, pv.group(ctx.rank()));
      if (pipelined) {
        mtri_const(-1.0, 4.0, -1.0, F, X, 0);
      } else {
        for (int j = 0; j < nsys; ++j) {
          auto fj = F.fix(0, j);
          auto xj = X.fix(0, j);
          tric(-1.0, 4.0, -1.0, fj, xj);
        }
      }
      const double t = timer.finish().makespan;
      if (ctx.rank() == 0) {
        makespan = t;
      }
    });
    return makespan;
  };
  const double serial = run(false);
  const double piped = run(true);
  EXPECT_LT(piped, serial);
}

TEST(Mtri, SteadyStateKeepsEveryProcessorActive) {
  // Figure 5's point: with systems staggered one step apart, interior
  // global steps have all p processors active.
  const int p = 8, nsys = 10, n = 64;
  ActivityTrace trace(mtri_trace_steps(nsys, p), p);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 F(ctx, pv, {nsys, n}, dists), X(ctx, pv, {nsys, n}, dists);
    F.fill([&](std::array<int, 2> g) { return coef_f(g[0], g[1]); });
    MtriOptions opts;
    opts.trace = &trace;
    mtri_const(-1.0, 4.0, -1.0, F, X, 0, opts);
  });
  const int depth = mtri_trace_steps(1, p);  // 2k+1
  for (int t = depth - 1; t < nsys; ++t) {
    EXPECT_EQ(trace.active_count(t), p) << "step " << t;
  }
}

TEST(Mtri, TraceStepsFormula) {
  EXPECT_EQ(mtri_trace_steps(1, 1), 1);
  EXPECT_EQ(mtri_trace_steps(4, 1), 4);
  EXPECT_EQ(mtri_trace_steps(1, 8), 7);   // depth 2k+1 = 7
  EXPECT_EQ(mtri_trace_steps(10, 8), 16);  // m + depth - 1
}

TEST(Mtri, RejectsDistributedSystemDim) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::star()};
    D2 F(ctx, pv, {16, 8}, dists), X(ctx, pv, {16, 8}, dists);
    mtri_const(-1, 4, -1, F, X, /*system_dim=*/0);  // dim 0 is distributed
  }),
               Error);
}

}  // namespace
}  // namespace kali

#include "machine/trace.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(ActivityTrace, MarksAndCounts) {
  ActivityTrace tr(3, 4);
  tr.mark(0, 0, 'R');
  tr.mark(0, 2, 'R');
  tr.mark(1, 1, 'S');
  EXPECT_EQ(tr.active_count(0), 2);
  EXPECT_EQ(tr.active_count(1), 1);
  EXPECT_EQ(tr.active_count(2), 0);
  EXPECT_EQ(tr.at(0, 0), 'R');
  EXPECT_EQ(tr.at(0, 1), '.');
}

TEST(ActivityTrace, RenderContainsAllRows) {
  ActivityTrace tr(2, 3);
  tr.mark(0, 0, 'x');
  const std::string s = tr.render({"phase A", "phase B"});
  EXPECT_NE(s.find("phase A"), std::string::npos);
  EXPECT_NE(s.find("phase B"), std::string::npos);
  EXPECT_NE(s.find('x'), std::string::npos);
}

TEST(ActivityTrace, OutOfRangeThrows) {
  ActivityTrace tr(2, 2);
  EXPECT_THROW(tr.mark(2, 0, 'a'), Error);
  EXPECT_THROW(tr.mark(0, 2, 'a'), Error);
  EXPECT_THROW((void)tr.at(-1, 0), Error);
}

}  // namespace
}  // namespace kali

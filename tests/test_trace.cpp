#include "machine/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

TEST(ActivityTrace, MarksAndCounts) {
  ActivityTrace tr(3, 4);
  tr.mark(0, 0, 'R');
  tr.mark(0, 2, 'R');
  tr.mark(1, 1, 'S');
  EXPECT_EQ(tr.active_count(0), 2);
  EXPECT_EQ(tr.active_count(1), 1);
  EXPECT_EQ(tr.active_count(2), 0);
  EXPECT_EQ(tr.at(0, 0), 'R');
  EXPECT_EQ(tr.at(0, 1), '.');
}

TEST(ActivityTrace, RenderContainsAllRows) {
  ActivityTrace tr(2, 3);
  tr.mark(0, 0, 'x');
  const std::string s = tr.render({"phase A", "phase B"});
  EXPECT_NE(s.find("phase A"), std::string::npos);
  EXPECT_NE(s.find("phase B"), std::string::npos);
  EXPECT_NE(s.find('x'), std::string::npos);
}

TEST(ActivityTrace, OutOfRangeThrows) {
  ActivityTrace tr(2, 2);
  EXPECT_THROW(tr.mark(2, 0, 'a'), Error);
  EXPECT_THROW(tr.mark(0, 2, 'a'), Error);
  EXPECT_THROW((void)tr.at(-1, 0), Error);
}

TEST(MessageTrace, RecordsPerRankInProgramOrder) {
  MessageTrace tr(3);
  tr.record_send(0, 1, 5, /*seq=*/0, /*bytes=*/8, /*epoch=*/0);
  tr.record_send(0, 2, 5, 1, 8, 0);
  tr.record_recv(1, 0, 5, 0, 8, 0);
  EXPECT_EQ(tr.nprocs(), 3);
  EXPECT_EQ(tr.total_events(), 3u);
  ASSERT_EQ(tr.events(0).size(), 2u);
  EXPECT_EQ(tr.events(0)[0].kind, 'S');
  EXPECT_EQ(tr.events(0)[0].peer, 1);
  EXPECT_EQ(tr.events(0)[1].peer, 2);
  ASSERT_EQ(tr.events(1).size(), 1u);
  EXPECT_EQ(tr.events(1)[0].kind, 'R');
  EXPECT_EQ(tr.events(1)[0].peer, 0);
  EXPECT_TRUE(tr.events(2).empty());
  tr.clear();
  EXPECT_EQ(tr.total_events(), 0u);
}

TEST(MessageTrace, WriteEmitsVerifierFormat) {
  MessageTrace tr(2);
  tr.record_send(0, 1, 5, 0, 16, 0);
  tr.record_recv(1, 0, 5, 0, 16, 0);
  std::ostringstream os;
  tr.write(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("kali-trace 1 2\n", 0), 0u) << text;
  EXPECT_NE(text.find("S 0 1 5 0 16 0\n"), std::string::npos) << text;
  EXPECT_NE(text.find("R 1 0 5 0 16 0\n"), std::string::npos) << text;
}

TEST(MessageTrace, MachineRunRecordsMatchedTraffic) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  Machine m(2, cfg);
  MessageTrace tr(2);
  m.attach_message_trace(&tr);
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 42);
    } else {
      EXPECT_EQ(ctx.recv<int>(0, 5), 42);
    }
  });
  ASSERT_EQ(tr.events(0).size(), 1u);
  ASSERT_EQ(tr.events(1).size(), 1u);
  EXPECT_EQ(tr.events(0)[0].kind, 'S');
  EXPECT_EQ(tr.events(1)[0].kind, 'R');
  EXPECT_EQ(tr.events(0)[0].tag, 5);
  EXPECT_EQ(tr.events(0)[0].seq, tr.events(1)[0].seq);
  EXPECT_EQ(tr.events(0)[0].bytes, tr.events(1)[0].bytes);
  EXPECT_EQ(tr.events(0)[0].epoch, tr.events(1)[0].epoch);
  // The per-tag ledgers agree with the trace.
  EXPECT_EQ(m.stats().sent_msgs(5), 1u);
  EXPECT_EQ(m.stats().recv_msgs(5), 1u);
  EXPECT_TRUE(m.stats().unmatched_by_tag().empty());
}

TEST(MessageTrace, LedgersCountPerTagAcrossRanks) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  Machine m(4, cfg);
  m.run([](Context& ctx) {
    // Ring: everyone sends 2 messages on tag 5 and 1 on tag 6.
    const int right = (ctx.rank() + 1) % 4;
    const int left = (ctx.rank() + 3) % 4;
    ctx.send(right, 5, ctx.rank());
    ctx.send(right, 5, ctx.rank() + 10);
    ctx.send(right, 6, ctx.rank() + 20);
    EXPECT_EQ(ctx.recv<int>(left, 5), left);
    EXPECT_EQ(ctx.recv<int>(left, 5), left + 10);
    EXPECT_EQ(ctx.recv<int>(left, 6), left + 20);
  });
  const MachineStats st = m.stats();
  EXPECT_EQ(st.sent_msgs(5), 8u);
  EXPECT_EQ(st.recv_msgs(5), 8u);
  EXPECT_EQ(st.sent_msgs(6), 4u);
  EXPECT_EQ(st.recv_msgs(6), 4u);
  EXPECT_EQ(st.sent_msgs(7), 0u);
  EXPECT_TRUE(st.unmatched_by_tag().empty());
}

TEST(MessageTrace, UnmatchedByTagFlagsTheLeakedTagOnly) {
  // Inspects the ledgers of a run that leaks by construction — only
  // possible in a release build, where the teardown check is off.
#if defined(KALI_CHECK_INVARIANTS)
  GTEST_SKIP() << "teardown leak check (correctly) rejects this program";
#else
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  Machine m(2, cfg);
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 1);  // matched below
      ctx.send(1, /*tag=*/6, 2);  // leaked
    } else {
      EXPECT_EQ(ctx.recv<int>(0, 5), 1);
    }
  });
  const auto unmatched = m.stats().unmatched_by_tag();
  ASSERT_EQ(unmatched.size(), 1u);
  EXPECT_EQ(unmatched.begin()->first, 6);
  EXPECT_EQ(unmatched.begin()->second, 1);
#endif
}

}  // namespace
}  // namespace kali

// E1's correctness backbone: the three Jacobi variants (Listings 1-3) must
// produce identical iterates, and the KF1 version must match the hand
// message-passing version in communication structure.
#include "solvers/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/collectives.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

double rhs_fn(int i, int j) {
  return 0.001 * std::sin(0.7 * i + 0.3 * j);
}

std::vector<double> run_seq(int n, int iters) {
  Machine m(1, quiet_config());
  std::vector<double> out;
  m.run([&](Context& ctx) { out = jacobi_seq(ctx, n, rhs_fn, iters); });
  return out;
}

class JacobiP : public ::testing::TestWithParam<int> {};

TEST_P(JacobiP, MessagePassingMatchesSequential) {
  const int p = GetParam();
  const int n = 16, iters = 7;
  auto ref = run_seq(n, iters);
  Machine m(p * p, quiet_config());
  std::vector<double> mp;
  m.run([&](Context& ctx) {
    auto out = jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
    if (ctx.rank() == 0) {
      mp = out;
    }
  });
  ASSERT_EQ(mp.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(mp[k], ref[k], 1e-13);
  }
}

TEST_P(JacobiP, Kf1MatchesSequential) {
  const int p = GetParam();
  const int n = 16, iters = 7;
  auto ref = run_seq(n, iters);
  Machine m(p * p, quiet_config());
  std::vector<double> kf1;
  m.run([&](Context& ctx) {
    auto out = jacobi_kf1(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
    if (ctx.rank() == 0) {
      kf1 = out;
    }
  });
  ASSERT_EQ(kf1.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(kf1[k], ref[k], 1e-13);
  }
}

INSTANTIATE_TEST_SUITE_P(GridSizes, JacobiP, ::testing::Values(1, 2, 4));

TEST(Jacobi, Kf1AndMpSendTheSameMessageCount) {
  // The compiler-generated communication (halo exchange) must match the
  // hand-coded guarded sends structurally: 4 edges per processor per
  // iteration, minus physical boundaries.
  const int p = 2, n = 16, iters = 3;
  auto run_and_count = [&](bool kf1) {
    Machine m(p * p, quiet_config());
    m.run([&](Context& ctx) {
      // Count only the iteration traffic, not the final gather.
      if (kf1) {
        (void)jacobi_kf1(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
      } else {
        (void)jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
      }
    });
    return m.stats().totals().msgs_sent;
  };
  // 2x2 grid: each processor has 2 neighbours -> 8 edge messages per
  // iteration + the final collection through the gather tree, where every
  // non-root member forwards one counts message and one payload message.
  const auto expected = static_cast<std::uint64_t>(8 * iters + 2 * (p * p - 1));
  EXPECT_EQ(run_and_count(false), expected);
  EXPECT_EQ(run_and_count(true), expected);
}

TEST(Jacobi, Kf1SimulatedTimeWithinTenPercentOfHandMp) {
  // Paper §6: "there would be no difference between the execution time of
  // algorithms expressed in KF1, and those expressed in a message passing
  // language".  The runtime adds only the ghost-frame copy overhead.
  const int p = 2, n = 64, iters = 10;
  auto sim_time = [&](bool kf1) {
    Machine m(p * p, quiet_config());
    m.run([&](Context& ctx) {
      if (kf1) {
        (void)jacobi_kf1(ctx, ProcView::grid2(p, p), n, rhs_fn, iters,
                         /*collect=*/false);
      } else {
        (void)jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters,
                        /*collect=*/false);
      }
    });
    return m.stats().max_clock();
  };
  const double t_mp = sim_time(false);
  const double t_kf1 = sim_time(true);
  EXPECT_LT(std::abs(t_kf1 - t_mp) / t_mp, 0.10);
}

TEST(Jacobi, ParallelSpeedupInSimulatedTime) {
  // Iteration speedup, like the 10%-equivalence test above: collection is
  // excluded because jacobi_seq never pays it, and the gather tree now
  // models result collection at honest aggregate bandwidth (a 64x64 field
  // funneling into one node costs real wire time on 2.5 MB/s links).
  const int n = 64, iters = 5;
  auto sim_time = [&](int p) {
    Machine m(p * p, quiet_config());
    m.run([&](Context& ctx) {
      if (p == 1) {
        (void)jacobi_seq(ctx, n, rhs_fn, iters);
      } else {
        (void)jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters,
                        /*collect=*/false);
      }
    });
    return m.stats().max_clock();
  };
  const double t1 = sim_time(1);
  const double t4 = sim_time(4);  // 16 processors
  EXPECT_LT(t4, t1 / 4.0);  // well above 4x on 16 procs at this size
}

TEST(Jacobi, RejectsIndivisibleSize) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    (void)jacobi_mp(ctx, ProcView::grid2(2, 2), 15, rhs_fn, 1);
  }),
               Error);
}

}  // namespace
}  // namespace kali

#include "kernels/spline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/context.hpp"
#include "runtime/io.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

TEST(Spline, InterpolatesKnotsExactly) {
  std::vector<double> y{1.0, -2.0, 0.5, 4.0, 3.0, -1.0};
  auto m = spline_moments(y, 0.5);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(spline_eval(y, m, 2.0, 0.5, 2.0 + 0.5 * static_cast<double>(i)),
                y[i], 1e-12);
  }
}

TEST(Spline, ReproducesLinearFunctionsExactly) {
  const int n = 9;
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = 3.0 * i - 2.0;
  }
  auto m = spline_moments(y, 1.0);
  for (double v : m) {
    EXPECT_NEAR(v, 0.0, 1e-12);  // linear data has zero curvature
  }
  for (double x = 0.0; x <= 8.0; x += 0.37) {
    EXPECT_NEAR(spline_eval(y, m, 0.0, 1.0, x), 3.0 * x - 2.0, 1e-10);
  }
}

TEST(Spline, ApproximatesSmoothFunction) {
  // Natural spline converges O(h^2) near the ends, better inside; with 33
  // knots on [0, pi] a mid-interval error well below 1e-3 is expected.
  const int n = 33;
  const double h = std::numbers::pi / (n - 1);
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = std::sin(h * i);
  }
  auto m = spline_moments(y, h);
  double max_err = 0.0;
  for (double x = 0.8; x <= 2.3; x += 0.01) {
    max_err = std::max(max_err, std::abs(spline_eval(y, m, 0.0, h, x) - std::sin(x)));
  }
  EXPECT_LT(max_err, 1e-4);
}

TEST(Spline, MomentsSatisfyNaturalBoundary) {
  std::vector<double> y{0.0, 1.0, 4.0, 9.0, 16.0, 25.0, 36.0};
  auto m = spline_moments(y, 1.0);
  EXPECT_DOUBLE_EQ(m.front(), 0.0);
  EXPECT_DOUBLE_EQ(m.back(), 0.0);
}

class SplineDistP : public ::testing::TestWithParam<int> {};

TEST_P(SplineDistP, DistributedFitMatchesSequential) {
  const int p = GetParam();
  const int n = 64;
  const double h = 0.25;
  std::vector<double> y(n);
  for (int i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = std::cos(0.3 * i) + 0.01 * i * i;
  }
  auto ref = spline_moments(y, h);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> yd(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> md(ctx, pv, {n}, {DimDist::block_dist()});
    yd.fill([&](std::array<int, 1> g) { return y[static_cast<std::size_t>(g[0])]; });
    spline_fit(yd, h, md);
    md.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_NEAR(md.at(g), ref[static_cast<std::size_t>(g[0])], 1e-9);
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, SplineDistP, ::testing::Values(1, 2, 4, 8));

TEST(Spline, EvalClampsOutsideKnotRange) {
  // Queries beyond the knot span extrapolate with the edge cubic segment
  // (continuous; no out-of-range access).
  std::vector<double> y{0.0, 1.0, 2.0, 3.0};
  auto m = spline_moments(y, 1.0);  // linear data: exact line
  EXPECT_NEAR(spline_eval(y, m, 0.0, 1.0, -0.5), -0.5, 1e-12);
  EXPECT_NEAR(spline_eval(y, m, 0.0, 1.0, 3.5), 3.5, 1e-12);
}

TEST(Spline, TooFewKnotsThrows) {
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)spline_moments(y, 1.0), Error);
}

}  // namespace
}  // namespace kali

#include "solvers/adi_var.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "machine/context.hpp"
#include "solvers/model.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 30.0;
  return cfg;
}

// Manufactured problem: u* = sin(pi x) sin(pi y) under
// a(x,y) u_xx + b(x,y) u_yy + c(x,y) u = F with smooth positive a, b.
double coef_a(double x, double /*y*/) { return 1.0 + 0.5 * x; }
double coef_b(double /*x*/, double y) { return 1.0 + 0.25 * y * y; }
double coef_c(double x, double y) { return -0.5 * (x + y); }

double exact_u(double x, double y) { return exact2(x, y); }

double rhs_f(double x, double y) {
  const double pi = std::numbers::pi;
  const double u = exact_u(x, y);
  const double uxx = -pi * pi * u;
  const double uyy = -pi * pi * u;
  return coef_a(x, y) * uxx + coef_b(x, y) * uyy + coef_c(x, y) * u;
}

struct Setup {
  DistArray2<double> u;
  DistArray2<double> f;
};

Setup make_problem(Context& ctx, const ProcView& pv, int n) {
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 u(ctx, pv, {n, n}, dists, {1, 1});
  D2 f(ctx, pv, {n, n}, dists);
  const double h = 1.0 / (n + 1);
  f.fill([&](std::array<int, 2> g) {
    return rhs_f((g[0] + 1) * h, (g[1] + 1) * h);
  });
  return {std::move(u), std::move(f)};
}

AdiVarOptions options(int n, bool pipelined) {
  AdiVarOptions opts;
  opts.a = &coef_a;
  opts.b = &coef_b;
  opts.c = &coef_c;
  opts.hx = opts.hy = 1.0 / (n + 1);
  opts.pipelined = pipelined;
  return opts;
}

class AdiVarP : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AdiVarP, ConvergesOnVariableCoefficients) {
  const auto [px, py, pipelined] = GetParam();
  const int n = 32;
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    auto [u, f] = make_problem(ctx, pv, n);
    AdiVarOptions opts = options(n, pipelined);
    AdiVarWorkspace ws(opts, u);
    AdiVarOptions tuned = opts;
    tuned.tau = adi_var_default_tau(ws);
    AdiVarWorkspace ws2(tuned, u);
    const double r0 = adi_var_residual_norm(ws2, u, f);
    for (int it = 0; it < 60; ++it) {
      adi_var_iterate(ws2, u, f);
    }
    EXPECT_LT(adi_var_residual_norm(ws2, u, f), 1e-3 * r0);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, AdiVarP,
                         ::testing::Values(std::tuple{1, 1, false},
                                           std::tuple{2, 2, false},
                                           std::tuple{2, 2, true},
                                           std::tuple{4, 2, false}));

TEST(AdiVar, SolutionMatchesManufactured) {
  const int n = 32, px = 2, py = 2;
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    auto [u, f] = make_problem(ctx, pv, n);
    AdiVarOptions opts = options(n, false);
    AdiVarWorkspace ws0(opts, u);
    opts.tau = adi_var_default_tau(ws0);
    AdiVarWorkspace ws(opts, u);
    for (int it = 0; it < 150; ++it) {
      adi_var_iterate(ws, u, f);
    }
    const double h = 1.0 / (n + 1);
    double max_err = 0.0;
    u.for_each_owned([&](std::array<int, 2> g) {
      max_err = std::max(max_err, std::abs(u.at(g) - exact_u((g[0] + 1) * h,
                                                             (g[1] + 1) * h)));
    });
    EXPECT_LT(max_err, 1e-2);  // discretization-level accuracy
  });
}

TEST(AdiVar, PipelinedMatchesPlainNumerically) {
  const int n = 16, px = 2, py = 2, iters = 6;
  auto run = [&](bool pipelined) {
    Machine m(px * py, quiet_config());
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(px, py);
      auto [u, f] = make_problem(ctx, pv, n);
      AdiVarOptions opts = options(n, pipelined);
      opts.tau = 0.01;
      AdiVarWorkspace ws(opts, u);
      for (int it = 0; it < iters; ++it) {
        adi_var_iterate(ws, u, f);
      }
      if (ctx.rank() == 0) {
        u.for_each_owned([&](std::array<int, 2> g) { probe.push_back(u.at(g)); });
      }
    });
    return probe;
  };
  auto a = run(false);
  auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12);
  }
}

TEST(AdiVar, ConstantCoefficientsReduceToPlainAdi) {
  // With a = b = 1, c = 0 the variable-coefficient path must agree with
  // the constant-coefficient operator's residual definition.
  const int n = 16;
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    auto [u, f] = make_problem(ctx, pv, n);
    u.fill([](std::array<int, 2> g) { return 0.01 * g[0] + 0.02 * g[1]; });
    AdiVarOptions opts;
    opts.a = [](double, double) { return 1.0; };
    opts.b = [](double, double) { return 1.0; };
    opts.c = [](double, double) { return 0.0; };
    opts.hx = opts.hy = 1.0 / (n + 1);
    AdiVarWorkspace ws(opts, u);
    Op2 op;
    op.hx = op.hy = 1.0 / (n + 1);
    // Residuals must agree exactly (same stencil, same data).
    const double rv = adi_var_residual_norm(ws, u, f);
    auto uin = u.copy_in();
    const double cx = op.cx(), cy = op.cy(), dg = op.diag();
    double local = 0.0;
    doall2(u, Range{0, n - 1}, Range{0, n - 1}, [&](int i, int j) {
      const double lu = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                        cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                        dg * uin.at_halo({i, j});
      const double res = f(i, j) - lu;
      local += res * res;
    });
    Group g = u.group();
    const double rc = std::sqrt(allreduce_sum(ctx, g, local));
    EXPECT_NEAR(rv, rc, 1e-9 * std::max(1.0, rc));
  });
}

}  // namespace
}  // namespace kali

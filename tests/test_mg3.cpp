#include "solvers/mg3.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/context.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 60.0;
  return cfg;
}

Op3 model_op(int nx, int ny, int nz) {
  Op3 op;
  op.axx = op.ayy = op.azz = 1.0;
  op.sigma = 0.0;
  op.hx = 1.0 / nx;
  op.hy = 1.0 / ny;
  op.hz = 1.0 / nz;
  return op;
}

struct Setup {
  DistArray3<double> u;
  DistArray3<double> f;
};

Setup make_problem(Context& ctx, const ProcView& pv, const Op3& op, int nx,
                   int ny, int nz) {
  using D3 = DistArray3<double>;
  const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                 DimDist::block_dist()};
  D3 u(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists, {0, 1, 1});
  D3 f(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists);
  f.fill([&](std::array<int, 3> g) {
    return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
  });
  return {std::move(u), std::move(f)};
}

TEST(Mg3, ZebraPlaneSweepNearlySolvesItsColour) {
  // A zebra half-sweep approximately solves the plane equations of its
  // colour: the residual restricted to even planes must collapse, even
  // though the global L2 residual may transiently grow (the z-oscillatory
  // error it removes is exactly what the coarse grid cannot see).
  const int n = 8;
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    Op3 op = model_op(n, n, n);
    auto [u, f] = make_problem(ctx, pv, op, n, n, n);
    auto plane_residual = [&](int first) {
      auto uin = u.copy_in();
      const double cx = op.cx(), cy = op.cy(), cz = op.cz(), dg = op.diag();
      double local = 0.0;
      doall3(u, Range{1, n - 1}, Range{1, n - 1}, Range{first, n - 1, 2},
             [&](int i, int j, int k) {
               const double au =
                   cx * (uin.at_halo({i - 1, j, k}) + uin.at_halo({i + 1, j, k})) +
                   cy * (uin.at_halo({i, j - 1, k}) + uin.at_halo({i, j + 1, k})) +
                   cz * (uin.at_halo({i, j, k - 1}) + uin.at_halo({i, j, k + 1})) +
                   dg * uin.at_halo({i, j, k});
               const double res = f(i, j, k) - au;
               local += res * res;
             });
      Group g = u.group();
      return std::sqrt(allreduce_sum(ctx, g, local));
    };
    const double even_before = plane_residual(2);
    Mg3Options opts;
    opts.plane_cycles = 3;  // near-exact plane solves for this mechanism test
    mg3_zebra_sweep(op, u, f, 0, opts);
    EXPECT_LT(plane_residual(2), 0.05 * even_before);
  });
}

class Mg3P : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Mg3P, VCyclesConverge) {
  const auto [px, py, n] = GetParam();
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op3 op = model_op(n, n, n);
    auto [u, f] = make_problem(ctx, pv, op, n, n, n);
    const double r0 = mg3_residual_norm(op, u, f);
    double r = r0;
    double worst = 0.0;
    for (int cyc = 0; cyc < 5; ++cyc) {
      mg3_cycle(op, u, f);
      const double rn = mg3_residual_norm(op, u, f);
      worst = std::max(worst, rn / r);
      r = rn;
    }
    EXPECT_LT(r, 1e-4 * r0);
    EXPECT_LT(worst, 0.5);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, Mg3P,
                         ::testing::Values(std::tuple{1, 1, 8},
                                           std::tuple{2, 2, 8},
                                           std::tuple{2, 2, 16},
                                           std::tuple{4, 2, 16}));

TEST(Mg3, SolutionMatchesManufactured) {
  const int n = 16;
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    Op3 op = model_op(n, n, n);
    auto [u, f] = make_problem(ctx, pv, op, n, n, n);
    for (int cyc = 0; cyc < 8; ++cyc) {
      mg3_cycle(op, u, f);
    }
    double max_err = 0.0;
    u.for_each_owned([&](std::array<int, 3> g) {
      max_err = std::max(max_err,
                         std::abs(u.at(g) - exact3(g[0] * op.hx, g[1] * op.hy,
                                                   g[2] * op.hz)));
    });
    EXPECT_LT(max_err, 2e-2);  // 5e-3-ish discretization error at n=16
  });
}

TEST(Mg3, AnisotropicZDominantConverges) {
  // Semi-coarsening in z plus plane relaxation is designed for exactly
  // this: strong coupling inside planes handled by mg2, z handled by the
  // grid hierarchy.
  const int n = 8;
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    Op3 op = model_op(n, n, n);
    op.azz = 10.0;  // z-dominant anisotropy
    auto [u, f] = make_problem(ctx, pv, op, n, n, n);
    const double r0 = mg3_residual_norm(op, u, f);
    for (int cyc = 0; cyc < 5; ++cyc) {
      mg3_cycle(op, u, f);
    }
    EXPECT_LT(mg3_residual_norm(op, u, f), 1e-3 * r0);
  });
}

TEST(Mg3, FusedLevelSwitchBitIdenticalWithFewerMessages) {
  // The batched z-level switch (one scheduled redistribution instead of a
  // remap round plus a halo round) must reproduce the separate rounds bit
  // for bit while cutting the cycle's message count.  The inner mg2 plane
  // solver batches its own y-level switches through the same option.
  const int n = 8, p = 4;
  auto run = [&](bool fused) {
    Machine m(p, quiet_config());
    std::vector<std::vector<double>> sol(static_cast<std::size_t>(p));
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(2, 2);
      Op3 op = model_op(n, n, n);
      auto [u, f] = make_problem(ctx, pv, op, n, n, n);
      Mg3Options opts;
      opts.fused_level_remap = fused;
      opts.plane_mg2.fused_level_remap = fused;
      for (int cyc = 0; cyc < 2; ++cyc) {
        mg3_cycle(op, u, f, opts);
      }
      u.for_each_owned([&](std::array<int, 3> g) {
        sol[static_cast<std::size_t>(ctx.rank())].push_back(u.at(g));
      });
    });
    return std::pair{sol, m.stats().totals().msgs_sent};
  };
  const auto [sol_sep, msgs_sep] = run(false);
  const auto [sol_fused, msgs_fused] = run(true);
  EXPECT_EQ(sol_fused, sol_sep);    // bit-identical solutions
  EXPECT_LT(msgs_fused, msgs_sep);  // batched switches send fewer messages
}

TEST(Mg3, PlaneSolvesRunOnPlaneOwnersOnly) {
  // The composition claim of §5: u(*, *, k) inherits procs(*, kp); the
  // relaxation of plane k must not involve other processor columns'
  // message counters at all when there is a single column... instead we
  // check work distribution: with 1x2 columns, each column only relaxes
  // its own planes (flops split roughly in half).
  const int n = 8;
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(1, 2);
    Op3 op = model_op(n, n, n);
    auto [u, f] = make_problem(ctx, pv, op, n, n, n);
    Mg3Options opts;
    mg3_zebra_sweep(op, u, f, 0, opts);
  });
  const auto s = m.stats();
  const double f0 = s.per_proc[0].flops;
  const double f1 = s.per_proc[1].flops;
  EXPECT_GT(f0, 0.0);
  EXPECT_GT(f1, 0.0);
  // Column 0 owns even planes {2, 4} and column 1 owns {6} at n = 8, so
  // the work ratio tracks plane ownership (about 2:1), not worse.
  EXPECT_LT(std::abs(f0 - f1) / std::max(f0, f1), 0.65);
}

}  // namespace
}  // namespace kali

// Dedicated coverage for 3-D doall strip-mining and 3-D distributed-array
// mechanics (previously exercised only indirectly through mg3).
#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "machine/context.hpp"
#include "runtime/doall.hpp"
#include "runtime/io.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag3(int i, int j, int k) { return 10000.0 * i + 100.0 * j + k; }

using D3 = DistArray3<double>;
const typename D3::Dists kDists{DimDist::star(), DimDist::block_dist(),
                                DimDist::block_dist()};

TEST(Doall3, CoversRangeProductExactlyOnce) {
  Machine m(4, quiet_config());
  std::mutex mu;
  std::multiset<std::tuple<int, int, int>> exec;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    D3 a(ctx, pv, {4, 8, 8}, kDists);
    doall3(a, Range{1, 2}, Range{0, 7}, Range{2, 6, 2}, [&](int i, int j, int k) {
      EXPECT_TRUE(a.owns({i, j, k}));
      std::lock_guard<std::mutex> lk(mu);
      exec.insert({i, j, k});
    });
  });
  EXPECT_EQ(exec.size(), 2u * 8u * 3u);
  for (int i = 1; i <= 2; ++i) {
    for (int j = 0; j <= 7; ++j) {
      for (int k = 2; k <= 6; k += 2) {
        EXPECT_EQ(exec.count({i, j, k}), 1u);
      }
    }
  }
}

TEST(Doall3, ChargesPerExecutedInvocation) {
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(1, 2);
    D3 a(ctx, pv, {2, 4, 8}, kDists);
    doall3(a, Range{0, 1}, Range{0, 3}, Range{0, 7}, [](int, int, int) {}, 3.0);
  });
  EXPECT_DOUBLE_EQ(m.stats().totals().flops, 3.0 * 2 * 4 * 8);
}

TEST(Doall3, HaloExchange3DFacesValid) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    D3 a(ctx, pv, {3, 8, 8}, kDists, {0, 1, 1});
    a.fill([](std::array<int, 3> g) { return tag3(g[0], g[1], g[2]); });
    a.exchange_halo();
    const int jlo = a.own_lower(1), jhi = a.own_upper(1);
    const int klo = a.own_lower(2), khi = a.own_upper(2);
    for (int i = 0; i < 3; ++i) {
      for (int j = jlo; j <= jhi; ++j) {
        if (klo > 0) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, j, klo - 1}), tag3(i, j, klo - 1));
        }
        if (khi < 7) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, j, khi + 1}), tag3(i, j, khi + 1));
        }
      }
      for (int k = klo; k <= khi; ++k) {
        if (jlo > 0) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, jlo - 1, k}), tag3(i, jlo - 1, k));
        }
        if (jhi < 7) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, jhi + 1, k}), tag3(i, jhi + 1, k));
        }
      }
    }
  });
}

TEST(Doall3, CloneOfPlaneSliceIsIndependent) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    D3 a(ctx, pv, {3, 8, 8}, kDists, {0, 1, 0});
    a.fill([](std::array<int, 3> g) { return tag3(g[0], g[1], g[2]); });
    auto plane = a.fix(2, 5);
    if (plane.participating()) {
      auto copy = plane.clone();
      plane.for_each_owned([&](std::array<int, 2> g) {
        plane.at(g) = -1.0;  // mutate original through the slice
      });
      copy.for_each_owned([&](std::array<int, 2> g) {
        EXPECT_DOUBLE_EQ(copy.at(g), tag3(g[0], g[1], 5));
      });
    }
  });
}

TEST(Doall3, GatherGlobal3D) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    D3 a(ctx, pv, {2, 4, 4}, kDists);
    a.fill([](std::array<int, 3> g) { return tag3(g[0], g[1], g[2]); });
    auto full = gather_global(a);
    if (ctx.rank() == 0) {
      ASSERT_EQ(full.size(), 32u);
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 4; ++j) {
          for (int k = 0; k < 4; ++k) {
            EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>((i * 4 + j) * 4 + k)],
                             tag3(i, j, k));
          }
        }
      }
    }
  });
}

TEST(Doall3, BodyExceptionPropagatesAndAbortsRun) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    D3 a(ctx, pv, {2, 4, 4}, kDists);
    doall3(a, Range{0, 1}, Range{0, 3}, Range{0, 3}, [&](int, int j, int) {
      if (j == a.own_lower(1) && ctx.rank() == 0) {
        throw Error("injected failure inside doall body");
      }
    });
    // Peers proceed to a collective that would deadlock without abort.
    Group g = pv.group(ctx.rank());
    barrier(ctx, g);
  }),
               Error);
}

}  // namespace
}  // namespace kali

#include "runtime/inspector.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "machine/context.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

TEST(Inspector, GathersRemoteValues) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {16}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 3.0 * g[0]; });
    // Everyone wants the reversed array section of its own block.
    std::vector<int> wants;
    for (int l = 0; l < 4; ++l) {
      wants.push_back(15 - (a.own_lower(0) + l));
    }
    auto plan = GatherPlan::build(a, wants);
    auto vals = plan.execute(a);
    ASSERT_EQ(vals.size(), wants.size());
    for (std::size_t k = 0; k < wants.size(); ++k) {
      EXPECT_DOUBLE_EQ(vals[k], 3.0 * wants[k]);
    }
  });
}

TEST(Inspector, SelfGatherUsesNoMessages) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
    // Everyone asks only for its own elements.
    std::vector<int> wants;
    for (int g = a.own_lower(0); g <= a.own_upper(0); ++g) {
      wants.push_back(g);
    }
    auto plan = GatherPlan::build(a, wants);
    auto vals = plan.execute(a);
    for (std::size_t k = 0; k < wants.size(); ++k) {
      EXPECT_DOUBLE_EQ(vals[k], 1.0 * wants[k]);
    }
    EXPECT_EQ(plan.send_volume(), 0u);
  });
  // Every request list was empty, so the presence matrix told both sides of
  // each pair to skip it outright: the per-tag ledgers must show zero
  // inspector traffic (the only messages sent are the presence all_gather's
  // collective-band ones).
  EXPECT_EQ(m.stats().sent_msgs(kTagInspReq), 0u);
  EXPECT_EQ(m.stats().sent_msgs(kTagInspData), 0u);
  EXPECT_TRUE(m.stats().unmatched_by_tag().empty());
}

TEST(Inspector, EmptyPairsAreSkippedNotSentEmpty) {
  // 3 ranks; every rank requests only from its right neighbour (mod 3), so
  // of the 6 ordered remote pairs only 3 carry traffic.  The skip must
  // drop exactly the empty pairs' request and data messages — proven by
  // the per-tag send ledgers — while the fetched values stay correct.
  Machine m(3, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<double> a(ctx, pv, {12}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 7.0 * g[0]; });
    const int right = (ctx.rank() + 1) % 3;
    std::vector<int> wants;
    for (int l = 0; l < 4; ++l) {
      wants.push_back(4 * right + l);  // right neighbour's whole block
    }
    auto plan = GatherPlan::build(a, wants);
    auto vals = plan.execute(a);
    for (std::size_t k = 0; k < wants.size(); ++k) {
      EXPECT_DOUBLE_EQ(vals[k], 7.0 * wants[k]);
    }
  });
  // One request and one data message per active ordered pair; the 3 empty
  // pairs send nothing at all.
  EXPECT_EQ(m.stats().sent_msgs(kTagInspReq), 3u);
  EXPECT_EQ(m.stats().sent_msgs(kTagInspData), 3u);
  EXPECT_EQ(m.stats().recv_msgs(kTagInspReq), 3u);
  EXPECT_EQ(m.stats().recv_msgs(kTagInspData), 3u);
  EXPECT_TRUE(m.stats().unmatched_by_tag().empty());
}

TEST(Inspector, PlanIsReusableAcrossValueChanges) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
    std::vector<int> wants{0, 7, 3, 4};
    auto plan = GatherPlan::build(a, wants);
    auto v1 = plan.execute(a);
    a.fill([](std::array<int, 1> g) { return -2.0 * g[0]; });
    auto v2 = plan.execute(a);  // executor replays without re-inspecting
    for (std::size_t k = 0; k < wants.size(); ++k) {
      EXPECT_DOUBLE_EQ(v1[k], 1.0 * wants[k]);
      EXPECT_DOUBLE_EQ(v2[k], -2.0 * wants[k]);
    }
  });
}

TEST(Inspector, DuplicateAndPermutedWantsHandled) {
  Machine m(3, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<int> a(ctx, pv, {9}, {DimDist::cyclic()});
    a.fill([](std::array<int, 1> g) { return 100 + g[0]; });
    Rng rng(7 + static_cast<std::uint64_t>(ctx.rank()));
    std::vector<int> wants;
    for (int k = 0; k < 20; ++k) {
      wants.push_back(rng.uniform_int(0, 8));
    }
    auto plan = GatherPlan::build(a, wants);
    auto vals = plan.execute(a);
    for (std::size_t k = 0; k < wants.size(); ++k) {
      EXPECT_EQ(vals[k], 100 + wants[k]);
    }
  });
}

TEST(Inspector, OutOfRangeWantThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    std::vector<int> wants{8};
    (void)GatherPlan::build(a, wants);
  }),
               Error);
}

}  // namespace
}  // namespace kali

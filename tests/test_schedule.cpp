// The schedule generator must produce perfect matchings: per round every
// member exchanges with at most one partner (involution), and across
// rounds every ordered pair appears exactly once — the property that keeps
// links conflict-free under MachineConfig::link_contention.
#include "machine/schedule.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(Schedule, PerfectMatchingsEveryRoundP2to9) {
  for (int n = 2; n <= 9; ++n) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const CommSchedule s(n);
    std::set<std::pair<int, int>> covered;
    for (int r = 0; r < s.rounds(); ++r) {
      for (int i = 0; i < n; ++i) {
        const int p = s.partner(r, i);
        ASSERT_GE(p, 0);
        ASSERT_LT(p, n);
        // Involution: my partner's partner is me — each member sends and
        // receives at most once per round.
        EXPECT_EQ(s.partner(r, p), i);
        if (p != i) {
          EXPECT_TRUE(covered.insert({i, p}).second)
              << "pair (" << i << "," << p << ") repeated in round " << r;
        }
      }
    }
    // Every ordered pair exactly once.
    EXPECT_EQ(covered.size(),
              static_cast<std::size_t>(n) * static_cast<std::size_t>(n - 1));
  }
}

TEST(Schedule, RoundOfInvertsPartner) {
  for (int n = 2; n <= 9; ++n) {
    const CommSchedule s(n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) {
          continue;
        }
        const int r = s.round_of(i, j);
        ASSERT_GE(r, 0);
        ASSERT_LT(r, s.rounds());
        EXPECT_EQ(s.partner(r, i), j);
        EXPECT_EQ(s.round_of(j, i), r);  // symmetric: both agree on timing
      }
    }
  }
}

TEST(Schedule, PowerOfTwoUsesMinimalRounds) {
  EXPECT_EQ(CommSchedule(2).rounds(), 1);
  EXPECT_EQ(CommSchedule(4).rounds(), 3);
  EXPECT_EQ(CommSchedule(8).rounds(), 7);
  // Latin-square fallback: one extra round, some members idle per round.
  EXPECT_EQ(CommSchedule(3).rounds(), 3);
  EXPECT_EQ(CommSchedule(6).rounds(), 6);
  EXPECT_EQ(CommSchedule(1).rounds(), 0);
}

TEST(Schedule, RoundOrderIsPermutationOfPeers) {
  for (int n = 2; n <= 9; ++n) {
    const CommSchedule s(n);
    for (int i = 0; i < n; ++i) {
      std::vector<int> peers = round_order(s, i);
      EXPECT_EQ(peers.size(), static_cast<std::size_t>(n - 1));
      std::vector<int> sorted = peers;
      std::sort(sorted.begin(), sorted.end());
      for (int j = 0, k = 0; j < n; ++j) {
        if (j != i) {
          EXPECT_EQ(sorted[static_cast<std::size_t>(k++)], j);
        }
      }
      // Round order is strictly increasing in round number.
      for (std::size_t k = 1; k < peers.size(); ++k) {
        EXPECT_LT(s.round_of(i, peers[k - 1]), s.round_of(i, peers[k]));
      }
    }
  }
}

TEST(Schedule, TraceShowsMatchingsPerRound) {
  const CommSchedule s(5);  // odd: one member idles per latin-square round
  ActivityTrace t;
  schedule_trace(s, t);
  EXPECT_EQ(t.nsteps(), s.rounds());
  EXPECT_EQ(t.nprocs(), 5);
  for (int r = 0; r < t.nsteps(); ++r) {
    EXPECT_EQ(t.count(r, 'x'), 4);  // two pairs exchange, one member idles
  }
  const CommSchedule s8(8);
  schedule_trace(s8, t);
  for (int r = 0; r < t.nsteps(); ++r) {
    EXPECT_EQ(t.count(r, 'x'), 8);  // pairwise exchange: nobody idles
  }
}

TEST(Schedule, RoundSortOrdersMessagesByRound) {
  // Communicator {10, 11, 12, 13}: member indices 0..3; self rank 10.
  const std::vector<int> members{10, 11, 12, 13};
  std::vector<std::pair<int, char>> msgs{{13, 'c'}, {11, 'a'}, {12, 'b'}};
  detail::round_sort(msgs, members, /*self_rank=*/10,
                     IssueOrder::kRoundSchedule);
  // XOR schedule from member 0: round 0 -> 1 (rank 11), round 1 -> 2
  // (rank 12), round 2 -> 3 (rank 13).
  EXPECT_EQ(msgs[0].first, 11);
  EXPECT_EQ(msgs[1].first, 12);
  EXPECT_EQ(msgs[2].first, 13);

  std::vector<std::pair<int, char>> naive{{13, 'c'}, {11, 'a'}, {12, 'b'}};
  detail::round_sort(naive, members, 10, IssueOrder::kPeerOrder);
  EXPECT_EQ(naive[0].first, 13);  // peer order: untouched
}

TEST(Schedule, LockstepRoundsVisitsEveryTransferInRoundOrder) {
  // lockstep_rounds must hand every out entry to send_one and every in
  // entry to recv_one exactly once, with send-before-recv within a round
  // and rounds in schedule order — for both the XOR (pow2) and the
  // latin-square constructions.
  for (int n : {4, 5, 8}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    std::vector<int> members(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      members[static_cast<std::size_t>(i)] = 10 * i;  // sparse machine ranks
    }
    const int self = 0;  // member index 0
    std::vector<std::pair<int, int>> out;
    std::vector<std::pair<int, int>> in;
    for (int i = 1; i < n; ++i) {
      out.emplace_back(10 * i, i);
      in.emplace_back(10 * i, -i);
    }
    std::vector<std::pair<char, int>> events;
    detail::lockstep_rounds(
        members, self, out, in,
        [&](int rank, int) { events.emplace_back('s', rank); },
        [&](int rank, int) { events.emplace_back('r', rank); });
    ASSERT_EQ(events.size(), 2 * out.size());
    const CommSchedule sched(n);
    const std::vector<int> order = round_order(sched, 0);
    for (std::size_t k = 0; k < order.size(); ++k) {
      // Each round: send to the partner, then receive from it.
      EXPECT_EQ(events[2 * k], (std::pair<char, int>{'s', 10 * order[k]}));
      EXPECT_EQ(events[2 * k + 1], (std::pair<char, int>{'r', 10 * order[k]}));
    }
  }
}

TEST(Schedule, MemberIndexRejectsNonMembers) {
  const std::vector<int> members{2, 4, 6};
  EXPECT_EQ(detail::member_index(members, 4), 1);
  EXPECT_THROW((void)detail::member_index(members, 5), Error);
}

TEST(Schedule, UnionMembersSortsAndDedupes) {
  const std::vector<int> u = detail::union_members({3, 1, 2}, {2, 5});
  EXPECT_EQ(u, (std::vector<int>{1, 2, 3, 5}));
}

}  // namespace
}  // namespace kali

#include <gtest/gtest.h>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace kali {
namespace {

TEST(Check, ThrowsWithMessageAndLocation) {
  try {
    KALI_CHECK(false, "details here");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("details here"), std::string::npos);
    EXPECT_NE(what.find("test_support.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
    const int k = r.uniform_int(-2, 2);
    EXPECT_GE(k, -2);
    EXPECT_LE(k, 2);
  }
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "20000"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("20000"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Format, TimeUnits) {
  EXPECT_EQ(fmt_time(1.5), "1.500 s");
  EXPECT_EQ(fmt_time(0.0025), "2.500 ms");
  EXPECT_EQ(fmt_time(42e-6), "42.0 us");
}

}  // namespace
}  // namespace kali

// The performance predictor must (a) track the simulator within a modest
// factor and (b) rank alternative configurations in the same order — the
// property that makes it usable as the paper's §2 tuning tool.
#include "metrics/predictor.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "kernels/tri.hpp"
#include "machine/context.hpp"
#include "machine/measure.hpp"
#include "runtime/redistribute.hpp"
#include "solvers/jacobi.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

double sim_tri(int n, int p) {
  Machine m(p, quiet_config());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    f.fill([](std::array<int, 1> g) { return 1.0 + 0.1 * g[0]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    tric(-1.0, 4.0, -1.0, f, x);
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

double sim_jacobi(int n, int p_side) {
  Machine m(p_side * p_side, quiet_config());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(p_side, p_side);
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    (void)jacobi_kf1(ctx, pv, n, [](int, int) { return 0.0; }, 4,
                     /*collect=*/false);
    const double t = timer.finish().makespan / 4.0;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

TEST(Predictor, MessageTimeMatchesCostModel) {
  MachineConfig cfg = quiet_config();
  Predictor pr(cfg, 2);
  Machine m(2, cfg);
  m.run([&](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> v(100, 1.0);
      ctx.send_span<double>(1, 1, v);
    } else {
      (void)ctx.recv_vec<double>(0, 1);
      // rank 1's clock is exactly the delivery time of one 800-byte
      // message over 1 hop.
      EXPECT_NEAR(ctx.clock(), pr.message(800.0, 1), 1e-12);
    }
  });
}

class PredictTriP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PredictTriP, WithinThirtyPercentOfSimulation) {
  const auto [n, p] = GetParam();
  Predictor pr(quiet_config(), p);
  const double pred = pr.tri_solve(n, p);
  const double sim = sim_tri(n, p);
  EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
      << "pred=" << pred << " sim=" << sim;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PredictTriP,
                         ::testing::Values(std::tuple{1024, 4},
                                           std::tuple{4096, 8},
                                           std::tuple{4096, 16},
                                           std::tuple{16384, 16}));

TEST(Predictor, JacobiWithinThirtyPercent) {
  for (int p : {2, 4}) {
    Predictor pr(quiet_config(), p * p);
    const double pred = pr.jacobi_iteration(64, p);
    const double sim = sim_jacobi(64, p);
    EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
        << "p=" << p << " pred=" << pred << " sim=" << sim;
  }
}

TEST(Predictor, RanksProcessorGridShapesLikeSimulation) {
  // The E8 ablation, decided from the closed form alone: square beats
  // both degenerate shapes for ADI.
  Predictor pr(quiet_config(), 16);
  const double square = pr.adi_iteration(64, 4, 4, false);
  const double wide = pr.adi_iteration(64, 16, 1, false);
  const double tall = pr.adi_iteration(64, 1, 16, false);
  EXPECT_LT(square, wide);
  EXPECT_LT(square, tall);
}

TEST(Predictor, PipeliningPredictedFaster) {
  Predictor pr(quiet_config(), 16);
  EXPECT_LT(pr.adi_iteration(64, 4, 4, true), pr.adi_iteration(64, 4, 4, false));
  EXPECT_LT(pr.mtri_solve(16, 1024, 8), 16.0 * pr.tri_solve(1024, 8));
}

TEST(Predictor, ScalesWithProblemSize) {
  Predictor pr(quiet_config(), 8);
  EXPECT_GT(pr.tri_solve(8192, 8), pr.tri_solve(1024, 8));
  EXPECT_GT(pr.jacobi_iteration(128, 2), pr.jacobi_iteration(32, 2));
}

TEST(Predictor, NonPowerOfTwoProcsThrows) {
  Predictor pr(quiet_config(), 6);
  EXPECT_THROW((void)pr.tri_solve(128, 6), Error);
}

// Simulated makespan of the fft2-style transpose redistribution (every
// rank pair exchanges one slab) on p ranks, n x n doubles.
double sim_transpose(int n, int p, LinkContention contention,
                     IssueOrder order) {
  MachineConfig cfg = quiet_config();
  cfg.link_contention = contention;
  Machine m(p, cfg);
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray2<double> rows(ctx, pv, {n, n},
                            {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> cols(ctx, pv, {n, n},
                            {DimDist::star(), DimDist::block_dist()});
    rows.fill([](std::array<int, 2> g) { return 1.0 * g[0] + g[1]; });
    redistribute(ctx, rows, cols, order);
  });
  return m.stats().max_clock();
}

TEST(Predictor, ScheduledAllToAllTracksSimulator) {
  // Validate the contention-aware closed form against the simulator for
  // the transpose shape, with and without link contention.  The estimate
  // covers wire + overheads; pack/unpack compute (two flops per element)
  // is added here, as the header prescribes.
  const int n = 256, p = 8;
  MachineConfig cfg = quiet_config();
  Predictor pr(cfg, p);
  const double slab_bytes = 8.0 * (n / p) * (n / p);
  const double packing =
      2.0 * (n / p) * static_cast<double>(n) * cfg.flop_time;
  for (LinkContention contention :
       {LinkContention::kNone, LinkContention::kPorts}) {
    SCOPED_TRACE(contention == LinkContention::kPorts ? "contention"
                                                      : "no contention");
    const double pred = pr.all_to_all(p, slab_bytes, contention) + packing;
    const double sim =
        sim_transpose(n, p, contention, IssueOrder::kRoundSchedule);
    EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
        << "pred=" << pred << " sim=" << sim;
  }
}

TEST(Predictor, NaiveAllToAllTracksSimulatorUnderContention) {
  const int n = 256, p = 8;
  MachineConfig cfg = quiet_config();
  Predictor pr(cfg, p);
  const double slab_bytes = 8.0 * (n / p) * (n / p);
  const double packing =
      2.0 * (n / p) * static_cast<double>(n) * cfg.flop_time;
  const double pred = pr.all_to_all_naive(p, slab_bytes) + packing;
  const double sim =
      sim_transpose(n, p, LinkContention::kPorts, IssueOrder::kPeerOrder);
  EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
      << "pred=" << pred << " sim=" << sim;
}

TEST(Predictor, MessageStoreForwardMatchesCostModel) {
  // Uncontended store-and-forward delivery is exact: wire once per hop.
  MachineConfig cfg = quiet_config();
  cfg.topology = Topology::kRing;
  cfg.link_contention = LinkContention::kStoreForward;
  Predictor pr(cfg, 6);
  Machine m(6, cfg);
  m.run([&](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> v(100, 1.0);
      ctx.send_span<double>(3, 1, v);
    } else if (ctx.rank() == 3) {
      (void)ctx.recv_vec<double>(0, 1);
      // Three ring hops, 800 bytes: three wire terms, two per_hop terms.
      EXPECT_NEAR(ctx.clock(), pr.message_store_forward(800.0, 3), 1e-12);
      EXPECT_GT(pr.message_store_forward(800.0, 3), pr.message(800.0, 3));
    }
  });
}

// Simulated makespan of the transpose under store-and-forward contention
// on an explicit topology (the SF sweep runs on meshes as well as the
// default hypercube).
double sim_transpose_topo(int n, int p, Topology topo, IssueOrder order) {
  MachineConfig cfg = quiet_config();
  cfg.topology = topo;
  cfg.link_contention = LinkContention::kStoreForward;
  Machine m(p, cfg);
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray2<double> rows(ctx, pv, {n, n},
                            {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> cols(ctx, pv, {n, n},
                            {DimDist::star(), DimDist::block_dist()});
    rows.fill([](std::array<int, 2> g) { return 1.0 * g[0] + g[1]; });
    redistribute(ctx, rows, cols, order);
  });
  return m.stats().max_clock();
}

TEST(Predictor, StoreForwardAllToAllTracksSimulator) {
  // The store-and-forward closed forms (busiest injection edge vs busiest
  // funnel edge, computed from route()) must track the per-edge simulator
  // within 30% for both issue orders, on the hypercube and on the mesh.
  const int n = 256;
  for (auto [topo, p] : {std::pair{Topology::kHypercube, 8},
                         std::pair{Topology::kMesh2D, 16}}) {
    SCOPED_TRACE(topo == Topology::kMesh2D ? "mesh" : "hypercube");
    MachineConfig cfg = quiet_config();
    cfg.topology = topo;
    Predictor pr(cfg, p);
    const double slab_bytes = 8.0 * (n / p) * (n / p);
    const double packing =
        2.0 * (n / p) * static_cast<double>(n) * cfg.flop_time;
    const double pred_sched =
        pr.all_to_all(p, slab_bytes, LinkContention::kStoreForward) + packing;
    const double sim_sched =
        sim_transpose_topo(n, p, topo, IssueOrder::kRoundSchedule);
    EXPECT_LT(std::abs(pred_sched - sim_sched) / sim_sched, 0.30)
        << "pred=" << pred_sched << " sim=" << sim_sched;
    const double pred_naive =
        pr.all_to_all_naive(p, slab_bytes, LinkContention::kStoreForward) +
        packing;
    const double sim_naive =
        sim_transpose_topo(n, p, topo, IssueOrder::kPeerOrder);
    EXPECT_LT(std::abs(pred_naive - sim_naive) / sim_naive, 0.30)
        << "pred=" << pred_naive << " sim=" << sim_naive;
    // The tuning answer must rank the same way as the simulator: round
    // order no worse than naive under store-and-forward.
    EXPECT_LT(pred_sched, pred_naive);
    EXPECT_LE(sim_sched, sim_naive);
  }
}

TEST(Predictor, LockstepAllToAllTracksSimulator) {
  // The lockstep pacing model (every round's latency exposed, hop terms
  // summed exactly from the topology) must track the simulator within 30%
  // in all three contention tiers.
  const int n = 256, p = 8;
  MachineConfig cfg = quiet_config();
  Predictor pr(cfg, p);
  const double slab_bytes = 8.0 * (n / p) * (n / p);
  const double packing =
      2.0 * (n / p) * static_cast<double>(n) * cfg.flop_time;
  for (LinkContention tier :
       {LinkContention::kNone, LinkContention::kPorts,
        LinkContention::kStoreForward}) {
    SCOPED_TRACE(static_cast<int>(tier));
    const double pred = pr.all_to_all_lockstep(p, slab_bytes, tier) + packing;
    const double sim = tier == LinkContention::kStoreForward
                           ? sim_transpose_topo(n, p, Topology::kHypercube,
                                                IssueOrder::kLockstep)
                           : sim_transpose(n, p, tier, IssueOrder::kLockstep);
    EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
        << "pred=" << pred << " sim=" << sim;
  }
  // And it must expose lockstep's per-round latency cost in the
  // latency-dominated regime (small messages) — the price of the mailbox
  // bound, which wire-dominated exchanges amortize away.
  EXPECT_GT(pr.all_to_all_lockstep(p, 8.0, LinkContention::kPorts),
            pr.all_to_all(p, 8.0, LinkContention::kPorts));
}

// Simulated makespan of the scheduled all_gather collective: p ranks each
// contribute `count` doubles over the whole machine.
double sim_all_gather(int count, int p, LinkContention contention,
                      Topology topo) {
  MachineConfig cfg = quiet_config();
  cfg.link_contention = contention;
  cfg.topology = topo;
  Machine m(p, cfg);
  m.run([&](Context& ctx) {
    std::vector<int> ranks(static_cast<std::size_t>(p));
    std::iota(ranks.begin(), ranks.end(), 0);
    Group g(std::move(ranks), ctx.rank());
    std::vector<double> mine(static_cast<std::size_t>(count),
                             1.0 * ctx.rank());
    (void)all_gather(ctx, g, std::span<const double>(mine));
  });
  return m.stats().max_clock();
}

TEST(Predictor, AllGatherTracksSimulatorInAllTiers) {
  // The all_gather closed forms (wire-identical to the scheduled
  // transpose) must track the collective's simulated makespan within 30%
  // in every contention tier.  The concatenation compute (one op per
  // gathered element on every member) is added here, as the header
  // prescribes.
  const int count = 8192, p = 8;
  MachineConfig cfg = quiet_config();
  Predictor pr(cfg, p);
  const double bytes = 8.0 * count;
  const double merge = static_cast<double>(p) * count * cfg.flop_time;
  for (LinkContention tier :
       {LinkContention::kNone, LinkContention::kPorts,
        LinkContention::kStoreForward}) {
    SCOPED_TRACE(static_cast<int>(tier));
    const double pred = pr.all_gather(p, bytes, tier) + merge;
    const double sim = sim_all_gather(count, p, tier, Topology::kHypercube);
    EXPECT_LT(std::abs(pred - sim) / sim, 0.30)
        << "pred=" << pred << " sim=" << sim;
  }
}

TEST(Predictor, RanksScheduleAgainstNaiveLikeSimulation) {
  // The tuning question the predictor must answer: under contention the
  // round schedule beats naive issue order, and by roughly the simulated
  // margin; without contention the schedule is free.
  const int n = 256, p = 8;
  Predictor pr(quiet_config(), p);
  const double slab_bytes = 8.0 * (n / p) * (n / p);
  const double pred_sched = pr.all_to_all(p, slab_bytes, LinkContention::kPorts);
  const double pred_naive = pr.all_to_all_naive(p, slab_bytes);
  EXPECT_LT(pred_sched, pred_naive);
  const double sim_sched =
      sim_transpose(n, p, LinkContention::kPorts, IssueOrder::kRoundSchedule);
  const double sim_naive =
      sim_transpose(n, p, LinkContention::kPorts, IssueOrder::kPeerOrder);
  EXPECT_LT(sim_sched, sim_naive);
  // Predicted and simulated speedups agree within a third.
  const double pred_ratio = pred_naive / pred_sched;
  const double sim_ratio = sim_naive / sim_sched;
  EXPECT_LT(std::abs(pred_ratio - sim_ratio) / sim_ratio, 0.35)
      << "pred_ratio=" << pred_ratio << " sim_ratio=" << sim_ratio;
}

}  // namespace
}  // namespace kali

#include "kernels/fft.hpp"

#include <gtest/gtest.h>

#include <numbers>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

using cd = std::complex<double>;

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<cd> v(8, cd(0, 0));
  v[0] = cd(1, 0);
  fft_inplace(v);
  for (const auto& z : v) {
    EXPECT_NEAR(z.real(), 1.0, 1e-12);
    EXPECT_NEAR(z.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const int n = 64, tone = 5;
  std::vector<cd> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double ang = 2.0 * std::numbers::pi * tone * i / n;
    v[static_cast<std::size_t>(i)] = cd(std::cos(ang), std::sin(ang));
  }
  fft_inplace(v);
  for (int k = 0; k < n; ++k) {
    const double mag = std::abs(v[static_cast<std::size_t>(k)]);
    if (k == tone) {
      EXPECT_NEAR(mag, static_cast<double>(n), 1e-9);
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-9);
    }
  }
}

class FftP : public ::testing::TestWithParam<int> {};

TEST_P(FftP, RoundTripRecoversInput) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<cd> v(static_cast<std::size_t>(n)), orig;
  for (auto& z : v) {
    z = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
  }
  orig = v;
  fft_inplace(v, false);
  fft_inplace(v, true);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(v[i].real(), orig[i].real(), 1e-10);
    EXPECT_NEAR(v[i].imag(), orig[i].imag(), 1e-10);
  }
}

TEST_P(FftP, ParsevalHolds) {
  const int n = GetParam();
  Rng rng(99 + static_cast<std::uint64_t>(n));
  std::vector<cd> v(static_cast<std::size_t>(n));
  double time_energy = 0.0;
  for (auto& z : v) {
    z = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(z);
  }
  fft_inplace(v);
  double freq_energy = 0.0;
  for (const auto& z : v) {
    freq_energy += std::norm(z);
  }
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftP, ::testing::Values(1, 2, 4, 8, 32, 256, 1024));

TEST(Fft, NonPowerOfTwoThrows) {
  std::vector<cd> v(6);
  EXPECT_THROW(fft_inplace(v), Error);
}

TEST(Fft, FlopModelGrowsAsNLogN) {
  EXPECT_DOUBLE_EQ(fft_flops(1), 0.0);
  EXPECT_DOUBLE_EQ(fft_flops(8), kFftFlopsFactor * 8 * 3);
  EXPECT_GT(fft_flops(1024), 10.0 * fft_flops(64));
}

}  // namespace
}  // namespace kali

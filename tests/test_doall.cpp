#include "runtime/doall.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <set>

#include "machine/context.hpp"
#include "runtime/io.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag(int i, int j) { return 10.0 * i + j; }

TEST(Doall, CoversRangeExactlyOnce1D) {
  Machine m(4, quiet_config());
  std::mutex mu;
  std::multiset<int> executed;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {19}, {DimDist::block_dist()});
    doall(a, Range{2, 17}, [&](int i) {
      std::lock_guard<std::mutex> lk(mu);
      executed.insert(i);
    });
  });
  ASSERT_EQ(executed.size(), 16u);
  for (int i = 2; i <= 17; ++i) {
    EXPECT_EQ(executed.count(i), 1u) << i;
  }
}

TEST(Doall, NonPositiveStrideFailsLoudlyEverywhere) {
  // Range::contains and the doall strip-miners share one validation point:
  // a non-positive step throws from both instead of silently returning
  // false from one and throwing from the other.
  EXPECT_THROW(((void)Range{0, 10, 0}.contains(3)), Error);
  EXPECT_THROW(((void)Range{0, 10, -2}.contains(0)), Error);
  const DimMap map(DimDist::block_dist(), 8, 2);
  EXPECT_THROW((void)detail::owned_in_range(map, 0, Range{0, 7, 0}), Error);
  EXPECT_THROW((void)detail::owned_in_range(map, 0, Range{0, 7, -1}), Error);
  // ... even for ranges that would otherwise be empty.
  EXPECT_THROW((void)detail::owned_in_range(map, 0, Range{5, 2, 0}), Error);
  // Valid strides keep working.
  EXPECT_TRUE((Range{0, 10, 2}.contains(4)));
  EXPECT_FALSE((Range{0, 10, 2}.contains(5)));
  EXPECT_FALSE((Range{0, 10, 2}.contains(11)));
}

TEST(Doall, RespectsStride) {
  // The zebra loops: doall k = 2, nz-2, 2.
  Machine m(2, quiet_config());
  std::mutex mu;
  std::multiset<int> executed;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {16}, {DimDist::block_dist()});
    doall(a, Range{2, 14, 2}, [&](int i) {
      std::lock_guard<std::mutex> lk(mu);
      executed.insert(i);
    });
  });
  ASSERT_EQ(executed.size(), 7u);
  for (int i = 2; i <= 14; i += 2) {
    EXPECT_EQ(executed.count(i), 1u);
  }
}

TEST(Doall, InvocationRunsOnOwner) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {16}, {DimDist::block_dist()});
    doall(a, Range{0, 15}, [&](int i) { EXPECT_TRUE(a.owns({i})); });
  });
}

TEST(Doall, CyclicStripMining) {
  Machine m(3, quiet_config());
  std::mutex mu;
  std::multiset<int> executed;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<double> a(ctx, pv, {10}, {DimDist::cyclic()});
    doall(a, Range{1, 8}, [&](int i) {
      EXPECT_TRUE(a.owns({i}));
      std::lock_guard<std::mutex> lk(mu);
      executed.insert(i);
    });
  });
  EXPECT_EQ(executed.size(), 8u);
}

TEST(Doall, BlockCyclicStripMining) {
  Machine m(3, quiet_config());
  std::mutex mu;
  std::multiset<int> executed;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<double> a(ctx, pv, {20}, {DimDist::block_cyclic(2)});
    doall(a, Range{3, 18}, [&](int i) {
      EXPECT_TRUE(a.owns({i}));
      std::lock_guard<std::mutex> lk(mu);
      executed.insert(i);
    });
  });
  ASSERT_EQ(executed.size(), 16u);
  for (int i = 3; i <= 18; ++i) {
    EXPECT_EQ(executed.count(i), 1u) << i;
  }
}

TEST(Doall, JacobiUpdateMatchesSequential) {
  // The Listing 3 doall: updates use copy-in values, not freshly written.
  constexpr int n = 8;
  Machine m(4, quiet_config());
  std::vector<double> parallel_result;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> x(ctx, pv, {n + 1, n + 1},
                         {DimDist::block_dist(), DimDist::block_dist()},
                         {1, 1});
    x.fill([](std::array<int, 2> g) { return tag(g[0], g[1]); });
    auto in = x.copy_in();
    doall2(x, Range{1, n - 1}, Range{1, n - 1},
           [&](int i, int j) {
             x(i, j) = 0.25 * (in.at_halo({i + 1, j}) + in.at_halo({i - 1, j}) +
                               in.at_halo({i, j + 1}) + in.at_halo({i, j - 1}));
           },
           4.0);
    auto full = gather_global(x);
    if (ctx.rank() == 0) {
      parallel_result = full;
    }
  });
  // Sequential reference.
  std::vector<double> ref(static_cast<std::size_t>((n + 1) * (n + 1)));
  auto refat = [&](int i, int j) -> double& {
    return ref[static_cast<std::size_t>(i * (n + 1) + j)];
  };
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      refat(i, j) = tag(i, j);
    }
  }
  std::vector<double> old = ref;
  auto oldat = [&](int i, int j) {
    return old[static_cast<std::size_t>(i * (n + 1) + j)];
  };
  for (int i = 1; i < n; ++i) {
    for (int j = 1; j < n; ++j) {
      refat(i, j) = 0.25 * (oldat(i + 1, j) + oldat(i - 1, j) +
                            oldat(i, j + 1) + oldat(i, j - 1));
    }
  }
  ASSERT_EQ(parallel_result.size(), ref.size());
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_NEAR(parallel_result[k], ref[k], 1e-13);
  }
}

TEST(Doall, SliceOwnerExecutesOnWholeProcessorRow) {
  // Listing 7: doall i ... on owner(r(i, *)) — every processor in the
  // owning row executes invocation i.
  Machine m(4, quiet_config());
  std::mutex mu;
  std::multiset<std::pair<int, int>> exec;  // (i, rank)
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> r(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    doall_slice_owner(r, 0, Range{0, 7}, [&](int i) {
      std::lock_guard<std::mutex> lk(mu);
      exec.insert({i, ctx.rank()});
    });
  });
  // Each of 8 rows must be executed by exactly the 2 processors of its row.
  EXPECT_EQ(exec.size(), 16u);
  for (int i = 0; i < 8; ++i) {
    const int prow = i / 4;
    for (int pcol = 0; pcol < 2; ++pcol) {
      EXPECT_EQ(exec.count({i, prow * 2 + pcol}), 1u) << "i=" << i;
    }
  }
}

TEST(Doall, ProcsLoopRunsOncePerMember) {
  Machine m(4, quiet_config());
  std::mutex mu;
  std::multiset<int> ips;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    doall_procs(ctx, pv, [&](int ip) {
      EXPECT_EQ(pv.rank_of1(ip), ctx.rank());
      std::lock_guard<std::mutex> lk(mu);
      ips.insert(ip);
    });
  });
  EXPECT_EQ(ips.size(), 4u);
}

TEST(Doall, ProcsLoopSkipsNonMembers) {
  Machine m(4, quiet_config());
  std::mutex mu;
  int count = 0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(2, /*base=*/1);  // ranks 1, 2 only
    doall_procs(ctx, pv, [&](int) {
      std::lock_guard<std::mutex> lk(mu);
      ++count;
    });
  });
  EXPECT_EQ(count, 2);
}

TEST(Doall, SumReductionReplicatesResult) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2>) { return 1.0; });
    const double s =
        doall2_sum(a, Range{0, 7}, Range{0, 7}, [&](int i, int j) { return a(i, j); });
    EXPECT_DOUBLE_EQ(s, 64.0);  // every member sees the replicated scalar
  });
}

TEST(Doall, ChargesModeledFlops) {
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    doall(a, Range{0, 7}, [](int) {}, 5.0);
  });
  // 8 invocations x 5 flops split across processors.
  EXPECT_DOUBLE_EQ(m.stats().totals().flops, 40.0);
}

TEST(Doall, EmptyRangeExecutesNothing) {
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    doall(a, Range{5, 4}, [](int) { FAIL() << "must not run"; });
  });
}

}  // namespace
}  // namespace kali

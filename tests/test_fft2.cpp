#include "kernels/fft2.hpp"

#include "kernels/fft.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "machine/context.hpp"
#include "runtime/io.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

struct Layouts {
  DistArray2<Complex> rows;
  DistArray2<Complex> cols;
};

Layouts make(Context& ctx, const ProcView& pv, int n) {
  using DC = DistArray2<Complex>;
  DC rows(ctx, pv, {n, n}, {DimDist::block_dist(), DimDist::star()});
  DC cols(ctx, pv, {n, n}, {DimDist::star(), DimDist::block_dist()});
  return {std::move(rows), std::move(cols)};
}

class Fft2P : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Fft2P, RoundTripRecoversInput) {
  const auto [p, n] = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    auto [rows, cols] = make(ctx, pv, n);
    Rng rng(42);
    std::vector<double> ref(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
    for (auto& v : ref) {
      v = rng.uniform(-1, 1);
    }
    rows.fill([&](std::array<int, 2> g) {
      return Complex(ref[static_cast<std::size_t>(g[0] * n + g[1])], 0.0);
    });
    fft2_forward(ctx, rows, cols);
    fft2_inverse(ctx, cols, rows);
    rows.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_NEAR(rows.at(g).real(),
                  ref[static_cast<std::size_t>(g[0] * n + g[1])], 1e-10);
      EXPECT_NEAR(rows.at(g).imag(), 0.0, 1e-10);
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, Fft2P,
                         ::testing::Values(std::tuple{1, 8}, std::tuple{2, 16},
                                           std::tuple{4, 16},
                                           std::tuple{4, 32}));

TEST(Fft2, PlaneWaveConcentratesInOneBin) {
  const int p = 4, n = 16, fx = 3, fy = 5;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    auto [rows, cols] = make(ctx, pv, n);
    rows.fill([&](std::array<int, 2> g) {
      const double ang =
          2.0 * std::numbers::pi * (fx * g[0] + fy * g[1]) / n;
      return Complex(std::cos(ang), std::sin(ang));
    });
    fft2_forward(ctx, rows, cols);
    cols.for_each_owned([&](std::array<int, 2> g) {
      const double mag = std::abs(cols.at(g));
      if (g[0] == fx && g[1] == fy) {
        EXPECT_NEAR(mag, static_cast<double>(n) * n, 1e-8);
      } else {
        EXPECT_NEAR(mag, 0.0, 1e-8);
      }
    });
  });
}

TEST(Fft2, MatchesSequentialTransform) {
  const int p = 2, n = 8;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    auto [rows, cols] = make(ctx, pv, n);
    rows.fill([&](std::array<int, 2> g) {
      return Complex(0.1 * g[0] - 0.2 * g[1], 0.05 * g[0] * g[1]);
    });
    // Sequential reference: row FFTs then column FFTs on a local copy.
    std::vector<Complex> ref(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        ref[static_cast<std::size_t>(i * n + j)] =
            Complex(0.1 * i - 0.2 * j, 0.05 * i * j);
      }
    }
    for (int i = 0; i < n; ++i) {
      fft_inplace(std::span<Complex>(ref.data() + i * n, static_cast<std::size_t>(n)));
    }
    std::vector<Complex> col(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      for (int i = 0; i < n; ++i) {
        col[static_cast<std::size_t>(i)] = ref[static_cast<std::size_t>(i * n + j)];
      }
      fft_inplace(col);
      for (int i = 0; i < n; ++i) {
        ref[static_cast<std::size_t>(i * n + j)] = col[static_cast<std::size_t>(i)];
      }
    }
    fft2_forward(ctx, rows, cols);
    cols.for_each_owned([&](std::array<int, 2> g) {
      const Complex expect = ref[static_cast<std::size_t>(g[0] * n + g[1])];
      EXPECT_NEAR(cols.at(g).real(), expect.real(), 1e-9);
      EXPECT_NEAR(cols.at(g).imag(), expect.imag(), 1e-9);
    });
  });
}

TEST(Fft2, BitIdenticalUnderEveryContentionTier) {
  // The contention models change clocks only: the distributed FFT's
  // transpose moves the same payloads in the same per-pair order, so the
  // spectrum is bit-identical with ports or store-and-forward queueing on.
  const int p = 4, n = 16;
  auto run = [&](LinkContention mode) {
    MachineConfig cfg = quiet_config();
    cfg.topology = Topology::kMesh2D;
    cfg.link_contention = mode;
    Machine m(p, cfg);
    std::vector<Complex> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      auto [rows, cols] = make(ctx, pv, n);
      rows.fill([&](std::array<int, 2> g) {
        return Complex(0.3 * g[0] + 0.1 * g[1], 0.02 * g[0] * g[1]);
      });
      fft2_forward(ctx, rows, cols);
      if (ctx.rank() == 1) {
        cols.for_each_owned(
            [&](std::array<int, 2> g) { probe.push_back(cols.at(g)); });
      }
    });
    return std::pair{probe, m.stats().max_clock()};
  };
  const auto [base, clock_off] = run(LinkContention::kNone);
  ASSERT_FALSE(base.empty());
  for (LinkContention mode :
       {LinkContention::kPorts, LinkContention::kStoreForward}) {
    const auto [got, clock_on] = run(mode);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t k = 0; k < base.size(); ++k) {
      EXPECT_EQ(got[k].real(), base[k].real());  // bit-identical
      EXPECT_EQ(got[k].imag(), base[k].imag());
    }
    EXPECT_GE(clock_on, clock_off);
  }
}

TEST(Fft2, RejectsDistributedTransformDim) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<Complex> a(ctx, pv, {8, 8},
                          {DimDist::block_dist(), DimDist::star()});
    fft_lines(a, 0, false);  // dim 0 is distributed
  }),
               Error);
}

}  // namespace
}  // namespace kali

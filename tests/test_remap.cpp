#include "runtime/remap.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "machine/context.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag2(int i, int j) { return 100.0 * i + j; }

TEST(Remap, InjectEvenIndicesToCoarse) {
  // Restriction-style: coarse[K] = fine[2K], misaligned block boundaries.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> fine(ctx, pv, {17}, {DimDist::block_dist()});
    DistArray1<double> coarse(ctx, pv, {9}, {DimDist::block_dist()});
    fine.fill([](std::array<int, 1> g) { return 10.0 * g[0]; });
    copy_strided_dim(ctx, fine, coarse, 0, /*s_stride=*/2, /*s_off=*/0,
                     /*d_stride=*/1, /*d_off=*/0, 9);
    coarse.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(coarse.at(g), 20.0 * g[0]);
    });
  });
}

TEST(Remap, SpreadCoarseToEvenFine) {
  // Interpolation-style: fine[2K] = coarse[K]; odd entries untouched.
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> coarse(ctx, pv, {5}, {DimDist::block_dist()});
    DistArray1<double> fine(ctx, pv, {9}, {DimDist::block_dist()});
    coarse.fill([](std::array<int, 1> g) { return 3.0 * g[0] + 1.0; });
    fine.fill_value(-1.0);
    copy_strided_dim(ctx, coarse, fine, 0, 1, 0, 2, 0, 5);
    fine.for_each_owned([&](std::array<int, 1> g) {
      if (g[0] % 2 == 0) {
        EXPECT_DOUBLE_EQ(fine.at(g), 3.0 * (g[0] / 2) + 1.0);
      } else {
        EXPECT_DOUBLE_EQ(fine.at(g), -1.0);
      }
    });
  });
}

TEST(Remap, OffsetsAndCount) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> src(ctx, pv, {12}, {DimDist::block_dist()});
    DistArray1<double> dst(ctx, pv, {12}, {DimDist::block_dist()});
    src.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
    dst.fill_value(0.0);
    // dst[3t + 1] = src[2t + 2] for t = 0..2.
    copy_strided_dim(ctx, src, dst, 0, 2, 2, 3, 1, 3);
    dst.for_each_owned([&](std::array<int, 1> g) {
      const int i = g[0];
      if (i == 1 || i == 4 || i == 7) {
        EXPECT_DOUBLE_EQ(dst.at(g), 2.0 * ((i - 1) / 3) + 2.0);
      } else {
        EXPECT_DOUBLE_EQ(dst.at(g), 0.0);
      }
    });
  });
}

TEST(Remap, MultidimensionalIdentityOffDim) {
  // 2-D: coarsen dim 1, dim 0 carried through unchanged.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 fine(ctx, pv, {5, 17}, dists);
    D2 coarse(ctx, pv, {5, 9}, dists);
    fine.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    copy_strided_dim(ctx, fine, coarse, 1, 2, 0, 1, 0, 9);
    coarse.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(coarse.at(g), tag2(g[0], 2 * g[1]));
    });
  });
}

TEST(Remap, CrossDistributionTransfer) {
  // Source distributed over the full view, destination over a single
  // processor sub-view (the multigrid agglomeration pattern).
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    ProcView pv1 = ProcView::grid1(1, pv.rank_of1(0));
    DistArray1<double> src(ctx, pv, {16}, {DimDist::block_dist()});
    DistArray1<double> dst(ctx, pv1, {16}, {DimDist::block_dist()});
    src.fill([](std::array<int, 1> g) { return 5.0 * g[0]; });
    copy_strided_dim(ctx, src, dst, 0, 1, 0, 1, 0, 16);
    if (dst.participating()) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_DOUBLE_EQ(dst(i), 5.0 * i);
      }
    }
  });
}

TEST(Remap, PropertyBoxPathMatchesBinnedOracle1D) {
  // Differential test: the box fast path must reproduce the owner-binning
  // oracle element for element across strides, offsets, and rank counts
  // (misaligned blocks, blocks skipped entirely by wide strides, ...).
  struct Shape {
    int s_stride, s_off, d_stride, d_off, count, ns, nd;
  };
  const std::vector<Shape> shapes = {
      {2, 0, 1, 0, 9, 17, 9},    // restriction
      {1, 0, 2, 0, 5, 5, 9},     // interpolation
      {2, 2, 3, 1, 3, 12, 12},   // offsets
      {3, 1, 4, 2, 4, 14, 17},   // wide strides skip whole blocks
      {1, 0, 1, 0, 13, 13, 13},  // aligned identity
      {5, 0, 1, 3, 3, 11, 7},    // stride larger than most blocks
  };
  for (int p : {2, 3, 4, 5}) {
    for (std::size_t si = 0; si < shapes.size(); ++si) {
      const Shape& s = shapes[si];
      SCOPED_TRACE("p=" + std::to_string(p) + " shape=" + std::to_string(si));
      Machine m(p, quiet_config());
      m.run([&](Context& ctx) {
        ProcView pv = ProcView::grid1(p);
        DistArray1<double> src(ctx, pv, {s.ns}, {DimDist::block_dist()});
        DistArray1<double> fast(ctx, pv, {s.nd}, {DimDist::block_dist()});
        DistArray1<double> oracle(ctx, pv, {s.nd}, {DimDist::block_dist()});
        src.fill([](std::array<int, 1> g) { return 7.0 * g[0] + 0.5; });
        fast.fill_value(-9.0);
        oracle.fill_value(-9.0);
        copy_strided_dim(ctx, src, fast, 0, s.s_stride, s.s_off, s.d_stride,
                         s.d_off, s.count);
        copy_strided_dim_binned(ctx, src, oracle, 0, s.s_stride, s.s_off,
                                s.d_stride, s.d_off, s.count);
        fast.for_each_owned([&](std::array<int, 1> g) {
          EXPECT_DOUBLE_EQ(fast.at(g), oracle.at(g)) << "index " << g[0];
        });
      });
      EXPECT_EQ(m.stats().self_msgs(kTagRemap), 0u);
    }
  }
}

TEST(Remap, PropertyBoxPathMatchesBinnedOracle2D) {
  // 2-D with the strided dim distributed, star, or block on either side —
  // including layouts where the strided dim is the distributed one.
  struct Layout {
    std::string name;
    DistArray2<double>::Dists dists;
  };
  const std::vector<Layout> layouts = {
      {"star_block", {DimDist::star(), DimDist::block_dist()}},
      {"block_star", {DimDist::block_dist(), DimDist::star()}},
  };
  for (const auto& sl : layouts) {
    for (const auto& dl : layouts) {
      SCOPED_TRACE(sl.name + " -> " + dl.name);
      Machine m(4, quiet_config());
      m.run([&](Context& ctx) {
        ProcView pv = ProcView::grid1(4);
        DistArray2<double> src(ctx, pv, {5, 17}, sl.dists);
        DistArray2<double> fast(ctx, pv, {5, 9}, dl.dists);
        DistArray2<double> oracle(ctx, pv, {5, 9}, dl.dists);
        src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
        fast.fill_value(-1.0);
        oracle.fill_value(-1.0);
        copy_strided_dim(ctx, src, fast, 1, 2, 0, 1, 0, 9);
        copy_strided_dim_binned(ctx, src, oracle, 1, 2, 0, 1, 0, 9);
        fast.for_each_owned([&](std::array<int, 2> g) {
          EXPECT_DOUBLE_EQ(fast.at(g), oracle.at(g));
          EXPECT_DOUBLE_EQ(fast.at(g), tag2(g[0], 2 * g[1]));
        });
      });
      EXPECT_EQ(m.stats().self_msgs(kTagRemap), 0u);
    }
  }
}

TEST(Remap, CyclicLayoutsFallBackToBinning) {
  // Any cyclic dim routes through the binning path; results must still be
  // exact and free of self-messages.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> src(ctx, pv, {21}, {DimDist::cyclic()});
    DistArray1<double> dst(ctx, pv, {11}, {DimDist::block_dist()});
    src.fill([](std::array<int, 1> g) { return 2.0 * g[0]; });
    copy_strided_dim(ctx, src, dst, 0, 2, 0, 1, 0, 11);
    dst.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(dst.at(g), 4.0 * g[0]);
    });
  });
  EXPECT_EQ(m.stats().self_msgs(kTagRemap), 0u);
}

TEST(Remap, AlignedIdentityCopySendsNoMessages) {
  // Identical layout, stride 1, offset 0: every element's source and
  // destination owner coincide — the whole copy must stay off the network.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> src(ctx, pv, {16}, {DimDist::block_dist()});
    DistArray1<double> dst(ctx, pv, {16}, {DimDist::block_dist()});
    src.fill([](std::array<int, 1> g) { return 3.0 * g[0]; });
    copy_strided_dim(ctx, src, dst, 0, 1, 0, 1, 0, 16);
    dst.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(dst.at(g), 3.0 * g[0]);
    });
  });
  EXPECT_EQ(m.stats().totals().msgs_sent, 0u);
}

TEST(Remap, ScheduledAndPeerOrderProduceIdenticalContents) {
  for (int p : {3, 4, 5}) {
    SCOPED_TRACE("p=" + std::to_string(p));
    Machine m(p, quiet_config());
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> src(ctx, pv, {23}, {DimDist::block_dist()});
      DistArray1<double> sched(ctx, pv, {23}, {DimDist::block_dist()});
      DistArray1<double> naive(ctx, pv, {23}, {DimDist::block_dist()});
      src.fill([](std::array<int, 1> g) { return 1.5 * g[0]; });
      sched.fill_value(0.0);
      naive.fill_value(0.0);
      copy_strided_dim(ctx, src, sched, 0, 2, 1, 2, 0, 11,
                       IssueOrder::kRoundSchedule);
      copy_strided_dim(ctx, src, naive, 0, 2, 1, 2, 0, 11,
                       IssueOrder::kPeerOrder);
      sched.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_DOUBLE_EQ(sched.at(g), naive.at(g));
      });
    });
  }
}

TEST(Remap, LockstepMatchesScheduledOnBothPaths) {
  // Lockstep rounds must reproduce the scheduled results exactly on the
  // box fast path and the cyclic (binned) fallback, with bounded mailbox
  // depth.
  const int p = 8;
  auto run = [&](IssueOrder order, bool cyclic) {
    Machine m(p, quiet_config());
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> fine(ctx, pv, {65},
                              {cyclic ? DimDist::cyclic()
                                      : DimDist::block_dist()});
      DistArray1<double> coarse(ctx, pv, {33}, {DimDist::block_dist()});
      fine.fill([](std::array<int, 1> g) { return 3.0 * g[0] + 1.0; });
      copy_strided_dim(ctx, fine, coarse, 0, /*s_stride=*/2, /*s_off=*/0,
                       /*d_stride=*/1, /*d_off=*/0, 33, order);
      if (ctx.rank() == 1) {
        coarse.for_each_owned(
            [&](std::array<int, 1> g) { probe.push_back(coarse.at(g)); });
      }
    });
    return std::pair{probe, m.stats()};
  };
  for (bool cyclic : {false, true}) {
    SCOPED_TRACE(cyclic ? "binned path" : "box path");
    const auto [sched, st_sched] = run(IssueOrder::kRoundSchedule, cyclic);
    const auto [lock, st_lock] = run(IssueOrder::kLockstep, cyclic);
    EXPECT_EQ(sched, lock);
    EXPECT_EQ(st_sched.totals().msgs_sent, st_lock.totals().msgs_sent);
    EXPECT_EQ(st_sched.totals().bytes_sent, st_lock.totals().bytes_sent);
    EXPECT_LE(st_lock.max_mailbox_depth(), 4u);
  }
}

TEST(Remap, HaloFusedMatchesSeparateRemapPlusExchange) {
  // The batched level switch: copy_strided_dim_halo on a fresh destination
  // must leave the *entire slab* (owned + ghost margins) bit-identical to
  // the separate copy_strided_dim + exchange_halo rounds, while sending
  // strictly fewer messages.  Both mg directions, several rank counts.
  struct Shape {
    int s_stride, d_stride, count, ns, nd;
  };
  const std::vector<Shape> shapes = {
      {1, 2, 13, 13, 25},  // interpolation: fine[2K] = coarse[K]
      {2, 1, 13, 25, 13},  // restriction onto a halo'd coarse array
  };
  for (int p : {2, 3, 4}) {
    for (std::size_t si = 0; si < shapes.size(); ++si) {
      const Shape& s = shapes[si];
      SCOPED_TRACE("p=" + std::to_string(p) + " shape=" + std::to_string(si));
      auto run = [&](bool fused) {
        Machine m(p, quiet_config());
        std::vector<std::vector<double>> slabs(static_cast<std::size_t>(p));
        m.run([&](Context& ctx) {
          ProcView pv = ProcView::grid1(p);
          using D2 = DistArray2<double>;
          const typename D2::Dists dists{DimDist::star(),
                                         DimDist::block_dist()};
          D2 src(ctx, pv, {5, s.ns}, dists);
          D2 dst(ctx, pv, {5, s.nd}, dists, {0, 1});
          src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
          if (fused) {
            copy_strided_dim_halo(ctx, src, dst, 1, s.s_stride, 0,
                                  s.d_stride, 0, s.count);
          } else {
            copy_strided_dim(ctx, src, dst, 1, s.s_stride, 0, s.d_stride, 0,
                             s.count);
            dst.exchange_halo();
          }
          auto& slab = slabs[static_cast<std::size_t>(ctx.rank())];
          for (int i = 0; i < 5; ++i) {
            for (int j = dst.own_lower(1) - 1; j <= dst.own_upper(1) + 1;
                 ++j) {
              if (j >= 0 && j < s.nd) {
                slab.push_back(dst.at_halo({i, j}));
              }
            }
          }
        });
        return std::pair{slabs, m.stats().totals().msgs_sent};
      };
      const auto [slab_sep, msgs_sep] = run(false);
      const auto [slab_fused, msgs_fused] = run(true);
      EXPECT_EQ(slab_fused, slab_sep);  // bit-identical, ghosts included
      // Fusing never costs messages; when the remap itself communicates
      // (the interpolation direction: misaligned fine blocks), folding the
      // halo round in is a strict saving.
      EXPECT_LE(msgs_fused, msgs_sep);
      if (si == 0) {
        EXPECT_LT(msgs_fused, msgs_sep);
      }
      Machine m(p, quiet_config());  // and no self messages on the tag
      m.run([&](Context& ctx) {
        ProcView pv = ProcView::grid1(p);
        using D2 = DistArray2<double>;
        const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
        D2 src(ctx, pv, {5, s.ns}, dists);
        D2 dst(ctx, pv, {5, s.nd}, dists, {0, 1});
        src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
        copy_strided_dim_halo(ctx, src, dst, 1, s.s_stride, 0, s.d_stride, 0,
                              s.count);
      });
      EXPECT_EQ(m.stats().self_msgs(kTagRemap), 0u);
    }
  }
}

TEST(Remap, HaloFusedIssueOrdersAgree) {
  const int p = 4;
  auto run = [&](IssueOrder order) {
    Machine m(p, quiet_config());
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      using D2 = DistArray2<double>;
      const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
      D2 src(ctx, pv, {3, 9}, dists);
      D2 dst(ctx, pv, {3, 17}, dists, {0, 1});
      src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      copy_strided_dim_halo(ctx, src, dst, 1, 1, 0, 2, 0, 9, order);
      if (ctx.rank() == 2) {
        for (int i = 0; i < 3; ++i) {
          for (int j = dst.own_lower(1) - 1; j <= dst.own_upper(1) + 1; ++j) {
            probe.push_back(dst.at_halo({i, j}));
          }
        }
      }
    });
    return probe;
  };
  const auto sched = run(IssueOrder::kRoundSchedule);
  EXPECT_EQ(run(IssueOrder::kPeerOrder), sched);
  EXPECT_EQ(run(IssueOrder::kLockstep), sched);
}

TEST(Remap, HaloFusedCyclicLayoutThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::cyclic()});
    DistArray1<double> b(ctx, pv, {8}, {DimDist::block_dist()});
    copy_strided_dim_halo(ctx, a, b, 0, 1, 0, 1, 0, 8);
  }),
               Error);
}

TEST(Remap, ZeroStrideThrows) {
  // Both entry points validate arguments — the binned oracle included.
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {8}, {DimDist::block_dist()});
    copy_strided_dim(ctx, a, b, 0, 0, 0, 1, 0, 4);
  }),
               Error);
  Machine m2(2, quiet_config());
  EXPECT_THROW(m2.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {8}, {DimDist::block_dist()});
    copy_strided_dim_binned(ctx, a, b, 0, 0, 0, 1, 0, 4);
  }),
               Error);
}

TEST(Remap, ExtentMismatchOffDimThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 a(ctx, pv, {4, 8}, dists);
    D2 b(ctx, pv, {5, 8}, dists);  // off-dim extent differs
    copy_strided_dim(ctx, a, b, 1, 1, 0, 1, 0, 8);
  }),
               Error);
}

TEST(Remap, RangeOverflowThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {8}, {DimDist::block_dist()});
    copy_strided_dim(ctx, a, b, 0, 2, 0, 1, 0, 5);  // src needs index 8
  }),
               Error);
}

}  // namespace
}  // namespace kali

// Differential tests for the cooperative fiber scheduler (machine/
// scheduler.hpp): the simulated results of a run — clocks, counters, and
// the message trace — must be bit-identical whatever host worker count the
// fibers are multiplexed onto.  Only Mailbox::max_pending (mailbox_peaks)
// may vary, being an explicitly host-interleaving-dependent high-water mark.
#include "machine/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>  // hardware_concurrency: host-side harness knob only
#include <vector>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/trace.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

Group whole_machine(Context& ctx) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Group(std::move(ranks), ctx.rank());
}

/// A communication-heavy SPMD workload exercising every yield point: ring
/// shifts (parked recvs), rank-skewed compute (fibers park in different
/// orders under different worker counts), an all_gather (collective tree +
/// dense paths), a mid-phase ledger compaction (quiesce), and a sync_clocks
/// barrier, under store-and-forward contention.
void workload(Context& ctx) {
  const int p = ctx.nprocs();
  const int me = ctx.rank();
  const int next = (me + 1) % p;
  const int prev = (me + p - 1) % p;
  Group g = whole_machine(ctx);
  double acc = 0.0;
  for (int iter = 0; iter < 6; ++iter) {
    ctx.compute(100.0 * (1 + (me + iter) % 5));  // skewed progress
    std::vector<double> payload(16, static_cast<double>(me * 100 + iter));
    ctx.send_span<double>(next, 7, payload);
    const auto got = ctx.recv_vec<double>(prev, 7);
    acc += got.at(0);
    if (iter == 3) {
      compact_edge_ledgers(ctx);  // machine-global quiesce, zero model cost
    }
  }
  const auto all = all_gather(ctx, g, std::span<const double>(&acc, 1));
  KALI_CHECK(static_cast<int>(all.size()) == p, "bad all_gather size");
  sync_clocks(ctx, g);
  ctx.send<double>(next, 8, all[static_cast<std::size_t>(me)]);
  (void)ctx.recv<double>(prev, 8);
}

struct RunResult {
  MachineStats stats;
  std::string trace;
};

RunResult run_workload(int workers) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  cfg.link_contention = LinkContention::kStoreForward;
  cfg.topology = Topology::kHypercube;
  cfg.sim_workers = workers;
  Machine m(8, cfg);
  MessageTrace trace(m.size());
  m.attach_message_trace(&trace);
  m.run(workload);
  std::ostringstream os;
  trace.write(os);
  return {m.stats(), os.str()};
}

void expect_counters_identical(const ProcCounters& a, const ProcCounters& b,
                               int rank) {
  SCOPED_TRACE("rank " + std::to_string(rank));
  EXPECT_EQ(a.msgs_sent, b.msgs_sent);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.msgs_recv, b.msgs_recv);
  EXPECT_EQ(a.bytes_recv, b.bytes_recv);
  EXPECT_EQ(a.flops, b.flops);  // EQ, not NEAR: bit-identical is the contract
  EXPECT_EQ(a.compute_time, b.compute_time);
  EXPECT_EQ(a.overhead_time, b.overhead_time);
  EXPECT_EQ(a.wait_time, b.wait_time);
  EXPECT_EQ(a.link_wait_time, b.link_wait_time);
  EXPECT_EQ(a.edge_wait_time, b.edge_wait_time);
  EXPECT_EQ(a.contended_msgs, b.contended_msgs);
  EXPECT_EQ(a.sent_by_tag, b.sent_by_tag);
  EXPECT_EQ(a.recv_by_tag, b.recv_by_tag);
  EXPECT_EQ(a.self_msgs_by_tag, b.self_msgs_by_tag);
  EXPECT_EQ(a.edge_msgs, b.edge_msgs);
  EXPECT_EQ(a.overlap_wire_time, b.overlap_wire_time);
  EXPECT_EQ(a.overlap_hidden_time, b.overlap_hidden_time);
}

TEST(FiberScheduler, ResultsBitIdenticalAcrossWorkerCounts) {
  const RunResult base = run_workload(1);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<int> counts{4, hw == 0 ? 2 : static_cast<int>(hw)};
  for (const int workers : counts) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const RunResult r = run_workload(workers);
    ASSERT_EQ(r.stats.clocks.size(), base.stats.clocks.size());
    for (std::size_t i = 0; i < base.stats.clocks.size(); ++i) {
      EXPECT_EQ(r.stats.clocks[i], base.stats.clocks[i]) << "rank " << i;
    }
    for (std::size_t i = 0; i < base.stats.per_proc.size(); ++i) {
      expect_counters_identical(r.stats.per_proc[i], base.stats.per_proc[i],
                                static_cast<int>(i));
    }
    // The serialized message trace is byte-identical: per-rank program
    // order is a pure function of the program, not of host scheduling.
    EXPECT_EQ(r.trace, base.trace);
  }
}

TEST(FiberScheduler, RepeatedRunsIdenticalAtFixedWorkerCount) {
  const RunResult a = run_workload(4);
  const RunResult b = run_workload(4);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.stats.clocks, b.stats.clocks);
}

TEST(FiberScheduler, ManyMoreFibersThanWorkersCompletes) {
  // The point of the refactor: P far beyond any sane host thread count.
  MachineConfig cfg;
  cfg.recv_timeout_wall = 60.0;
  cfg.sim_workers = 4;
  cfg.fiber_stack_bytes = 128 * 1024;
  Machine m(512, cfg);
  m.run([](Context& ctx) {
    const int p = ctx.nprocs();
    const int next = (ctx.rank() + 1) % p;
    const int prev = (ctx.rank() + p - 1) % p;
    ctx.send<int>(next, 7, ctx.rank());
    EXPECT_EQ(ctx.recv<int>(prev, 7), prev);
  });
  EXPECT_EQ(m.stats().totals().msgs_sent, 512u);
}

TEST(FiberScheduler, DeadlockDetectorFiresBeforeWallClockFallback) {
  // A fiber parked forever must be diagnosed by the wait-for-graph
  // detector the moment the graph closes — not by the wall-clock sweep,
  // whose deadline is set far beyond what this test would tolerate.
  for (const int workers : {1, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    MachineConfig cfg;
    cfg.recv_timeout_wall = 3600.0;  // fallback would hang the suite
    cfg.sim_workers = workers;
    Machine m(4, cfg);
    try {
      m.run([](Context& ctx) {
        // Everyone waits on a message nobody ever sends.
        (void)ctx.recv<int>((ctx.rank() + 1) % ctx.nprocs(), 5);
      });
      FAIL() << "deadlock not detected";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("STUCK"), std::string::npos)
          << e.what();
    }
  }
}

std::atomic<long> g_fake_ticks{0};

/// Monotone fake clock (MachineConfig::sim_clock): each observation
/// advances fake time, so the quiesce-park deadline below passes after a
/// handful of scheduler sweep polls instead of 0.3 real seconds.
double fake_clock() {
  return 0.01 * static_cast<double>(g_fake_ticks.fetch_add(1));
}

TEST(FiberScheduler, QuiesceMismatchDiagnosedNotHung) {
  // One rank skips the collective quiesce: the arrived ranks' park times
  // out with a collective-mismatch diagnostic instead of hanging.  The
  // timeout runs on the injected fake clock — no real waiting.
  g_fake_ticks.store(0);
  MachineConfig cfg;
  cfg.recv_timeout_wall = 0.3;     // fake seconds
  cfg.deadlock_detection = false;  // the graph can't see quiesce parks
  cfg.sim_workers = 2;
  cfg.sim_clock = fake_clock;
  Machine m(2, cfg);
  try {
    m.run([](Context& ctx) {
      if (ctx.rank() == 0) {
        compact_edge_ledgers(ctx);
      }
    });
    FAIL() << "quiesce mismatch not diagnosed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("quiesce"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace kali

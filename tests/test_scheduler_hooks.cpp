// Scheduler seams introduced for the interleaving explorer: the dispatch
// hook (MachineConfig::sim_hook), the injectable wall clock (sim_clock),
// and the fiber-stack canary.  Plus the scheduler edge cases those seams
// make cheap to pin down: more workers than ranks, single-worker quiesce,
// park/wake under adversarial dispatch orderings, and the stack-overflow
// diagnostics (guard-page fault for small populations, canary abort for
// guardless large ones).
#include "machine/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/fiber.hpp"
#include "machine/machine.hpp"
#include "machine/trace.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

// --- dispatch hooks ---------------------------------------------------------

/// LIFO: always dispatch the most recently readied fiber — the exact
/// inversion of the scheduler's FIFO default.
class LifoHook final : public SchedulerHook {
 public:
  std::size_t pick_next(const std::vector<int>& ready) override {
    ++calls;
    return ready.size() - 1;
  }
  std::atomic<std::size_t> calls{0};
};

/// Rotating: walk the ready queue with a striding cursor, so consecutive
/// dispatches jump around the queue instead of draining one end.
class RotatingHook final : public SchedulerHook {
 public:
  std::size_t pick_next(const std::vector<int>& ready) override {
    return (calls++ * 7 + 3) % ready.size();
  }
  std::atomic<std::size_t> calls{0};
};

// --- a park-heavy workload --------------------------------------------------

/// Ring shifts (parked recvs) + skewed compute + a mid-phase quiesce: every
/// park/wake path, under whatever dispatch order the hook imposes.
void workload(Context& ctx) {
  const int p = ctx.nprocs();
  const int me = ctx.rank();
  const int next = (me + 1) % p;
  const int prev = (me + p - 1) % p;
  double acc = 0.0;
  for (int iter = 0; iter < 4; ++iter) {
    ctx.compute(100.0 * (1 + (me + iter) % 3));
    ctx.send<double>(next, 7, static_cast<double>(me * 10 + iter));
    acc += ctx.recv<double>(prev, 7);
    if (iter == 2) {
      compact_edge_ledgers(ctx);
    }
  }
  ctx.send<double>(next, 8, acc);
  (void)ctx.recv<double>(prev, 8);
}

struct RunResult {
  MachineStats stats;
  std::string trace;
};

RunResult run_workload(int nprocs, int workers, SchedulerHook* hook) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  cfg.link_contention = LinkContention::kStoreForward;
  cfg.topology = Topology::kRing;
  cfg.sim_workers = workers;
  cfg.sim_hook = hook;
  Machine m(nprocs, cfg);
  MessageTrace trace(m.size());
  m.attach_message_trace(&trace);
  m.run(workload);
  std::ostringstream os;
  trace.write(os);
  return {m.stats(), os.str()};
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.stats.clocks, b.stats.clocks);
  EXPECT_EQ(a.trace, b.trace);
  ASSERT_EQ(a.stats.per_proc.size(), b.stats.per_proc.size());
  for (std::size_t i = 0; i < a.stats.per_proc.size(); ++i) {
    EXPECT_EQ(a.stats.per_proc[i].wait_time, b.stats.per_proc[i].wait_time)
        << "rank " << i;
    EXPECT_EQ(a.stats.per_proc[i].edge_wait_time,
              b.stats.per_proc[i].edge_wait_time)
        << "rank " << i;
  }
}

TEST(SchedulerHooks, AdversarialDispatchOrdersPreserveResults) {
  const RunResult fifo = run_workload(4, 1, nullptr);
  LifoHook lifo;
  expect_identical(fifo, run_workload(4, 1, &lifo));
  EXPECT_GT(lifo.calls.load(), 0u) << "hook never consulted";
  RotatingHook rot;
  expect_identical(fifo, run_workload(4, 1, &rot));
  // Adversarial dispatch under contention for the worker pool, too.
  LifoHook lifo4;
  expect_identical(fifo, run_workload(4, 4, &lifo4));
}

TEST(SchedulerHooks, MoreWorkersThanRanksBitIdentical) {
  // Workers beyond the rank count spin down gracefully and change nothing.
  const RunResult base = run_workload(3, 1, nullptr);
  expect_identical(base, run_workload(3, 8, nullptr));
}

TEST(SchedulerHooks, SingleWorkerQuiesce) {
  // The rendezvous must work when one worker hosts every fiber: the last
  // arriver runs the callback on the only worker while all peers are
  // parked on it.  (workload() quiesces mid-phase.)
  const RunResult one = run_workload(4, 1, nullptr);
  EXPECT_EQ(one.stats.totals().msgs_sent, 4u * 5u);
  // And a quiesce entered simultaneously-ish by every rank with zero
  // pending messages — nothing to wake anyone but the release path.
  MachineConfig cfg;
  cfg.sim_workers = 1;
  Machine m(4, cfg);
  m.run([](Context& ctx) { compact_edge_ledgers(ctx); });
}

// --- injectable wall clock --------------------------------------------------

std::atomic<long> g_fake_ticks{0};

/// Monotone fake clock: every observation advances time 10 fake
/// milliseconds, so any park deadline passes after a bounded number of
/// sweep polls — no real seconds are ever slept.
double fake_clock() {
  return 0.01 * static_cast<double>(g_fake_ticks.fetch_add(1));
}

TEST(SchedulerHooks, FakeClockDrivesRecvTimeout) {
  g_fake_ticks.store(0);
  MachineConfig cfg;
  cfg.recv_timeout_wall = 0.5;     // fake seconds, not real ones
  cfg.deadlock_detection = false;  // force the timeout path
  cfg.sim_workers = 2;
  cfg.sim_clock = fake_clock;
  Machine m(2, cfg);
  try {
    m.run([](Context& ctx) {
      if (ctx.rank() == 0) {
        (void)ctx.recv<int>(1, 5);  // never sent
      }
    });
    FAIL() << "recv did not time out";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("recv timed out"),
              std::string::npos)
        << e.what();
  }
}

// --- stack canary and overflow diagnostics ----------------------------------

TEST(SchedulerHooks, StackCanaryMechanics) {
  FiberStackArena arena(4, 64 * 1024);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(arena.canary_ok(i)) << "stack " << i;
  }
  std::memset(arena.stack_bottom(2), 0, 16);  // simulate an overflow
  EXPECT_FALSE(arena.canary_ok(2));
  EXPECT_TRUE(arena.canary_ok(1));
  EXPECT_TRUE(arena.canary_ok(3));
}

#if !defined(KALI_FIBER_ASAN) && !defined(KALI_FIBER_TSAN)

/// One oversized frame: the write sweep runs straight through the canary
/// at the bottom of a 64 KiB stack (and beyond).  noinline + volatile so
/// the frame really exists at -O2.
__attribute__((noinline)) void smash_stack() {
  volatile char buf[96 * 1024];
  for (std::size_t i = 0; i < sizeof(buf); ++i) {  // every byte: the 8-byte
    buf[i] = 'X';                                  // canary cannot be missed
  }
}

TEST(SchedulerHooksDeathTest, GuardPageTrapsOverflowInSmallPopulations) {
  // Populations <= kGuardMaxStacks get a PROT_NONE page under each stack:
  // the overflow faults at the moment of the scribble.  Sanitizer builds
  // are excluded above (ASan/TSan intercept the fault their own way).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MachineConfig cfg;
  cfg.sim_workers = 1;
  cfg.fiber_stack_bytes = 64 * 1024;
  EXPECT_DEATH(
      {
        Machine m(2, cfg);
        m.run([](Context& ctx) {
          if (ctx.rank() == 1) {
            smash_stack();
          }
        });
      },
      ".*");
}

TEST(SchedulerHooks, GuardlessCanaryTurnsOverflowIntoDiagnosedAbort) {
  // Above kGuardMaxStacks the guards are dropped (VMA budget): an
  // overflow scribbles the neighbouring stack instead of faulting.  The
  // canary check at the overflower's next switch-out turns that into a
  // diagnosed abort.  Single worker + last rank overflowing last keeps
  // the scribbled neighbour's fiber finished (and its stack dead) before
  // the scribble lands.
  MachineConfig cfg;
  cfg.sim_workers = 1;
  cfg.fiber_stack_bytes = 64 * 1024;
  cfg.deadlock_detection = false;
  Machine m(FiberStackArena::kGuardMaxStacks + 1, cfg);
  try {
    m.run([](Context& ctx) {
      if (ctx.rank() == ctx.nprocs() - 1) {
        smash_stack();
      }
    });
    FAIL() << "overflow not diagnosed";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("stack overflow"), std::string::npos)
        << e.what();
  }
}

#endif  // !KALI_FIBER_ASAN && !KALI_FIBER_TSAN

}  // namespace
}  // namespace kali

#include "machine/machine.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

TEST(Machine, RunsProgramOnEveryProcessor) {
  Machine m(4, quiet_config());
  std::vector<int> hits(4, 0);
  m.run([&](Context& ctx) { hits[static_cast<std::size_t>(ctx.rank())] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 4);
}

TEST(Machine, PingPongTransfersData) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 7, 12345);
      EXPECT_EQ(ctx.recv<int>(1, 8), 54321);
    } else {
      EXPECT_EQ(ctx.recv<int>(0, 7), 12345);
      ctx.send<int>(0, 8, 54321);
    }
  });
}

TEST(Machine, SpanRoundTrip) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    std::vector<double> v{1.0, 2.5, -3.0};
    if (ctx.rank() == 0) {
      ctx.send_span<double>(1, 1, v);
    } else {
      auto got = ctx.recv_vec<double>(0, 1);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_DOUBLE_EQ(got[1], 2.5);
    }
  });
}

TEST(Machine, ComputeAdvancesClockDeterministically) {
  Machine m(1, quiet_config());
  m.run([](Context& ctx) { ctx.compute(1000.0); });
  const double expected = 1000.0 * m.config().flop_time;
  EXPECT_DOUBLE_EQ(m.stats().clocks[0], expected);
  EXPECT_DOUBLE_EQ(m.stats().per_proc[0].flops, 1000.0);
}

TEST(Machine, RecvClockRespectsCausality) {
  // Receiver is "early": its clock must jump to send_time + wire + bytes.
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.compute(1.0e6);  // sender is busy 0.1 s first
      ctx.send<int>(1, 1, 1);
    } else {
      (void)ctx.recv<int>(0, 1);
    }
  });
  const auto& cfg = m.config();
  const double send_clock = 1.0e6 * cfg.flop_time + cfg.send_overhead;
  const double arrival = send_clock + m.wire_latency(0, 1) +
                         static_cast<double>(sizeof(int)) * cfg.byte_time;
  EXPECT_NEAR(m.stats().clocks[1], arrival + cfg.recv_overhead, 1e-12);
  EXPECT_NEAR(m.stats().per_proc[1].wait_time, arrival, 1e-12);
}

TEST(Machine, LateReceiverDoesNotWait) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 1, 1);
    } else {
      ctx.compute(1.0e7);  // receiver busy 1 s; message long arrived
      (void)ctx.recv<int>(0, 1);
    }
  });
  EXPECT_NEAR(m.stats().per_proc[1].wait_time, 0.0, 1e-12);
}

TEST(Machine, SimulatedTimeIsReproducible) {
  auto run_once = [] {
    Machine m(4, quiet_config());
    m.run([](Context& ctx) {
      // Ring shift: deterministic communication pattern.
      const int next = (ctx.rank() + 1) % ctx.nprocs();
      const int prev = (ctx.rank() + ctx.nprocs() - 1) % ctx.nprocs();
      ctx.compute(100.0 * (ctx.rank() + 1));
      ctx.send<int>(next, 3, ctx.rank());
      (void)ctx.recv<int>(prev, 3);
    });
    return m.stats().max_clock();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Machine, CountsMessagesAndBytes) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      std::vector<double> v(10, 1.0);
      ctx.send_span<double>(1, 1, v);
    } else {
      (void)ctx.recv_vec<double>(0, 1);
    }
  });
  auto s = m.stats();
  EXPECT_EQ(s.per_proc[0].msgs_sent, 1u);
  EXPECT_EQ(s.per_proc[0].bytes_sent, 80u);
  EXPECT_EQ(s.per_proc[1].msgs_recv, 1u);
  EXPECT_EQ(s.per_proc[1].bytes_recv, 80u);
}

TEST(Machine, ExceptionInOneProcessorAbortsRun) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      throw Error("boom");
    }
    // Peer would deadlock forever without the abort broadcast.
    (void)ctx.recv<int>(0, 99);
  }),
               Error);
}

TEST(Machine, ResetStatsClearsClocksAndCounters) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) { ctx.compute(10.0); });
  m.reset_stats();
  EXPECT_DOUBLE_EQ(m.stats().max_clock(), 0.0);
  EXPECT_DOUBLE_EQ(m.stats().totals().flops, 0.0);
}

TEST(Machine, TypedRecvSizeMismatchThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 1, 5);
    } else {
      (void)ctx.recv<double>(0, 1);  // wrong size
    }
  }),
               Error);
}

TEST(MachineStats, UtilizationIsBoundedByOne) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) { ctx.compute(1000.0 * (1 + ctx.rank())); });
  const double u = m.stats().compute_utilization();
  EXPECT_GT(u, 0.0);
  EXPECT_LE(u, 1.0);
  // Slowest proc does 4000 flops; average is 2500 -> utilization 0.625.
  EXPECT_NEAR(u, 2500.0 / 4000.0, 1e-12);
}

TEST(Machine, WireLatencyGrowsWithHops) {
  MachineConfig cfg;
  cfg.topology = Topology::kHypercube;
  Machine m(8, cfg);
  // 0 -> 1: one hop; 0 -> 7: three hops (two extra per_hop terms).
  EXPECT_DOUBLE_EQ(m.wire_latency(0, 1), cfg.latency);
  EXPECT_DOUBLE_EQ(m.wire_latency(0, 7), cfg.latency + 2.0 * cfg.per_hop);
  EXPECT_GT(m.wire_latency(0, 7), m.wire_latency(0, 1));
}

TEST(Machine, HopsAffectSimulatedTime) {
  auto one_message_time = [](int dst) {
    MachineConfig cfg;
    cfg.topology = Topology::kHypercube;
    Machine m(8, cfg);
    m.run([&](Context& ctx) {
      if (ctx.rank() == 0) {
        ctx.send<int>(dst, 1, 7);
      } else if (ctx.rank() == dst) {
        (void)ctx.recv<int>(0, 1);
      }
    });
    return m.stats().clocks[static_cast<std::size_t>(dst)];
  };
  EXPECT_GT(one_message_time(7), one_message_time(1));
}

TEST(Machine, AnySourceReceivesFromEither) {
  Machine m(3, MachineConfig{});
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      int got = ctx.recv<int>(kAnySource, 9) + ctx.recv<int>(kAnySource, 9);
      EXPECT_EQ(got, 30);  // 10 + 20 in either order
    } else {
      ctx.send<int>(0, 9, 10 * ctx.rank());
    }
  });
}

TEST(Machine, ChargeSecondsAdvancesClockWithoutFlops) {
  Machine m(1, MachineConfig{});
  m.run([](Context& ctx) { ctx.charge_seconds(0.25); });
  EXPECT_DOUBLE_EQ(m.stats().max_clock(), 0.25);
  EXPECT_DOUBLE_EQ(m.stats().totals().flops, 0.0);
  EXPECT_DOUBLE_EQ(m.stats().totals().compute_time, 0.25);
}

TEST(Machine, RingTopologyChargesCyclicDistance) {
  MachineConfig cfg;
  cfg.topology = Topology::kRing;
  Machine m(8, cfg);
  EXPECT_DOUBLE_EQ(m.wire_latency(0, 4), cfg.latency + 3.0 * cfg.per_hop);
  EXPECT_DOUBLE_EQ(m.wire_latency(0, 7), cfg.latency);  // wraps around
}

TEST(Machine, SelfMessagesAreCountedByTag) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(0, 42, 7);  // self round-trip: legal but counted
      EXPECT_EQ(ctx.recv<int>(0, 42), 7);
    }
  });
  EXPECT_EQ(m.stats().self_msgs(42), 1u);
  EXPECT_EQ(m.stats().self_msgs(43), 0u);
  EXPECT_EQ(m.stats().self_msgs_total(), 1u);
}

TEST(Machine, ContentionSerializesEjectionLink) {
  // Two senders, one receiver, both messages timestamped ~t=0.  Without
  // contention the wire transfers overlap; with it the second message
  // queues behind the first on the receiver's ejection link for its full
  // byte time.
  constexpr int kBytes = 1000 * 8;
  auto run = [](bool contention) {
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.topology = Topology::kComplete;
    cfg.link_contention =
        contention ? LinkContention::kPorts : LinkContention::kNone;
    Machine m(3, cfg);
    m.run([](Context& ctx) {
      std::vector<double> v(1000, 1.0);
      if (ctx.rank() > 0) {
        ctx.send_span<double>(0, 1, v);
      } else {
        (void)ctx.recv_vec<double>(1, 1);
        (void)ctx.recv_vec<double>(2, 1);
      }
    });
    return m;
  };

  MachineConfig cfg;
  const Machine& off = run(false);
  const Machine& on = run(true);
  const double wire = kBytes * cfg.byte_time;
  // Receiver finish times: overlapped transfers pay one wire time and both
  // recv overheads; serialized transfers pay two wire times, with the
  // second recv's overhead the only one still visible past the drain.
  const double base = cfg.send_overhead + cfg.latency;
  EXPECT_NEAR(off.stats().clocks[0], base + wire + 2.0 * cfg.recv_overhead,
              1e-9);
  EXPECT_NEAR(on.stats().clocks[0], base + 2.0 * wire + cfg.recv_overhead,
              1e-9);
  EXPECT_DOUBLE_EQ(off.stats().link_wait_time(), 0.0);
  EXPECT_NEAR(on.stats().link_wait_time(), wire, 1e-9);
  EXPECT_EQ(on.stats().contended_msgs(), 1u);
}

TEST(Machine, ContentionSerializesInjectionLink) {
  // One sender, two receivers: the second message cannot enter the network
  // until the first clears the sender's injection link.
  auto send_times = [](bool contention) {
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.topology = Topology::kComplete;
    cfg.link_contention =
        contention ? LinkContention::kPorts : LinkContention::kNone;
    Machine m(3, cfg);
    m.run([](Context& ctx) {
      std::vector<double> v(500, 2.0);
      if (ctx.rank() == 0) {
        ctx.send_span<double>(1, 1, v);
        ctx.send_span<double>(2, 1, v);
      } else {
        (void)ctx.recv_vec<double>(0, 1);
      }
    });
    return std::pair{m.stats().clocks[1], m.stats().clocks[2]};
  };
  MachineConfig cfg;
  const double wire = 500 * 8 * cfg.byte_time;
  const auto [r1_off, r2_off] = send_times(false);
  const auto [r1_on, r2_on] = send_times(true);
  // Without contention the two deliveries differ only by one send
  // overhead; with it the second also waits out the first's wire time.
  EXPECT_NEAR(r2_off - r1_off, cfg.send_overhead, 1e-9);
  EXPECT_NEAR(r2_on - r1_on, wire, 1e-9);
  EXPECT_GT(r2_on, r2_off);
  EXPECT_NEAR(r1_on, r1_off, 1e-12);  // first message pays nothing
}

TEST(Machine, ContentionOffMatchesLegacyCostModel) {
  // LinkContention::kNone must reproduce the original arrival formula
  // exactly — clocks included, not just results.
  auto makespan = [](bool contention) {
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.link_contention =
        contention ? LinkContention::kPorts : LinkContention::kNone;
    Machine m(4, cfg);
    m.run([](Context& ctx) {
      const int next = (ctx.rank() + 1) % 4;
      const int prev = (ctx.rank() + 3) % 4;
      std::vector<double> v(64, 1.0);
      ctx.send_span<double>(next, 5, v);
      (void)ctx.recv_vec<double>(prev, 5);
    });
    return m.stats().max_clock();
  };
  // A ring shift is already contention-free (one message per port), so the
  // clocks agree to the last bit.
  EXPECT_DOUBLE_EQ(makespan(false), makespan(true));
}

TEST(Machine, ResetStatsClearsLinkClocks) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  cfg.link_contention = LinkContention::kPorts;
  Machine m(2, cfg);
  m.run([](Context& ctx) {
    std::vector<double> v(100, 1.0);
    if (ctx.rank() == 0) {
      ctx.send_span<double>(1, 1, v);
      ctx.send_span<double>(1, 2, v);
    } else {
      (void)ctx.recv_vec<double>(0, 1);
      (void)ctx.recv_vec<double>(0, 2);
    }
  });
  EXPECT_GT(m.stats().contended_msgs(), 0u);
  m.reset_stats();
  EXPECT_EQ(m.stats().contended_msgs(), 0u);
  EXPECT_DOUBLE_EQ(m.stats().link_wait_time(), 0.0);
  // Port clocks restart at zero: a fresh run sees no leftover busy time.
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 1, 1);
    } else {
      (void)ctx.recv<int>(0, 1);
    }
  });
  EXPECT_EQ(m.stats().contended_msgs(), 0u);
}

TEST(Machine, StoreForwardChargesWirePerHop) {
  // Ring 0 -> 2 is two hops: under store-and-forward the payload is stored
  // and re-transmitted at node 1, so the wire term doubles (plus one
  // per_hop forwarding latency) — exact clock algebra, no contention.
  constexpr int kDoubles = 500;
  auto clock_of = [](LinkContention mode) {
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.topology = Topology::kRing;
    cfg.link_contention = mode;
    Machine m(4, cfg);
    m.run([](Context& ctx) {
      std::vector<double> v(kDoubles, 1.0);
      if (ctx.rank() == 0) {
        ctx.send_span<double>(2, 1, v);
      } else if (ctx.rank() == 2) {
        (void)ctx.recv_vec<double>(0, 1);
      }
    });
    return m.stats().clocks[2];
  };
  MachineConfig cfg;
  const double wire = kDoubles * 8 * cfg.byte_time;
  const double base = cfg.send_overhead + cfg.latency + cfg.per_hop;
  EXPECT_NEAR(clock_of(LinkContention::kNone),
              base + wire + cfg.recv_overhead, 1e-12);
  EXPECT_NEAR(clock_of(LinkContention::kStoreForward),
              base + 2.0 * wire + cfg.recv_overhead, 1e-12);
}

TEST(Machine, StoreForwardSerializesSharedInteriorEdge) {
  // Hypercube senders 5 (101) and 6 (110) both route to 0 through the
  // final edge 4 -> 0; the receiver's ledger serializes them in
  // (send_time, src, seq) order, so the second pays one full wire time of
  // edge wait.
  constexpr int kDoubles = 1000;
  auto run = [](LinkContention mode) {
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.topology = Topology::kHypercube;
    cfg.link_contention = mode;
    Machine m(8, cfg);
    m.run([](Context& ctx) {
      std::vector<double> v(kDoubles, 2.0);
      if (ctx.rank() == 5 || ctx.rank() == 6) {
        ctx.send_span<double>(0, 1, v);
      } else if (ctx.rank() == 0) {
        (void)ctx.recv_vec<double>(5, 1);
        (void)ctx.recv_vec<double>(6, 1);
      }
    });
    return m.stats();
  };
  MachineConfig cfg;
  const double wire = kDoubles * 8 * cfg.byte_time;
  const MachineStats off = run(LinkContention::kNone);
  const MachineStats on = run(LinkContention::kStoreForward);
  EXPECT_DOUBLE_EQ(off.edge_wait_time(), 0.0);
  EXPECT_EQ(off.max_edge_load(), 0u);
  EXPECT_NEAR(on.edge_wait_time(), wire, 1e-9);
  EXPECT_EQ(on.contended_msgs(), 1u);
  // Edge 4 -> 0 carried both messages; every other edge carried one.
  EXPECT_EQ(on.max_edge_load(), 2u);
  // Receiver clock: both are 2-hop messages entering at send_overhead;
  // the queued one drains a third wire time after the first's arrival,
  // hiding all but the final recv overhead.
  const double arrival1 = cfg.send_overhead + cfg.latency + cfg.per_hop +
                          2.0 * wire;
  EXPECT_NEAR(on.clocks[0], arrival1 + wire + cfg.recv_overhead, 1e-9);
}

TEST(Machine, StoreForwardSelfSendStaysSoftware) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  cfg.link_contention = LinkContention::kStoreForward;
  Machine m(2, cfg);
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send<int>(0, 7, 11);
      EXPECT_EQ(ctx.recv<int>(0, 7), 11);
    }
  });
  // No edges were touched: a self-send never enters the network.
  EXPECT_EQ(m.stats().max_edge_load(), 0u);
  EXPECT_DOUBLE_EQ(m.stats().edge_wait_time(), 0.0);
  const double expected = cfg.send_overhead + cfg.latency +
                          sizeof(int) * cfg.byte_time + cfg.recv_overhead;
  EXPECT_NEAR(m.stats().clocks[0], expected, 1e-12);
}

TEST(Machine, ResetStatsClearsEdgeState) {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  cfg.topology = Topology::kHypercube;
  cfg.link_contention = LinkContention::kStoreForward;
  Machine m(8, cfg);
  auto traffic = [](Context& ctx) {
    std::vector<double> v(500, 1.0);
    if (ctx.rank() == 5 || ctx.rank() == 6) {
      ctx.send_span<double>(0, 1, v);
    } else if (ctx.rank() == 0) {
      (void)ctx.recv_vec<double>(5, 1);
      (void)ctx.recv_vec<double>(6, 1);
    }
  };
  m.run(traffic);
  EXPECT_GT(m.stats().edge_wait_time(), 0.0);
  m.reset_stats();
  EXPECT_DOUBLE_EQ(m.stats().edge_wait_time(), 0.0);
  EXPECT_EQ(m.stats().max_edge_load(), 0u);
  // Fresh run: identical contention as from a cold start, nothing leaks.
  m.run(traffic);
  const double wire = 500 * 8 * MachineConfig{}.byte_time;
  EXPECT_NEAR(m.stats().edge_wait_time(), wire, 1e-9);
}

TEST(Machine, MailboxPeakDepthIsTracked) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      for (int k = 0; k < 5; ++k) {
        ctx.send<int>(1, 1, k);
      }
      ctx.send<int>(1, 2, 99);  // barrier-ish: receiver drains after
    } else {
      (void)ctx.recv<int>(0, 2);
      for (int k = 0; k < 5; ++k) {
        EXPECT_EQ(ctx.recv<int>(0, 1), k);
      }
    }
  });
  // All five tag-1 sends plus the tag-2 send were queued before the first
  // receive completed.
  EXPECT_GE(m.stats().max_mailbox_depth(), 5u);
  m.reset_stats();
  EXPECT_EQ(m.stats().max_mailbox_depth(), 0u);
}

TEST(Machine, CausalityNoArrivalBeforeSendPlusWire) {
  // Random traffic pattern; every receiver's clock after a recv must be at
  // least the matching send time plus the wire terms.
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  Machine m(4, cfg);
  m.run([&](Context& ctx) {
    const int me = ctx.rank();
    const int next = (me + 1) % 4;
    const int prev = (me + 3) % 4;
    for (int round = 0; round < 5; ++round) {
      ctx.compute(100.0 * ((me * 7 + round * 3) % 5));
      ctx.send<double>(next, 40 + round, ctx.clock());
      const double send_time = ctx.recv<double>(prev, 40 + round);
      const double min_arrival =
          send_time + ctx.machine().wire_latency(prev, me) +
          static_cast<double>(sizeof(double)) * cfg.byte_time;
      EXPECT_GE(ctx.clock(), min_arrival + cfg.recv_overhead - 1e-12);
    }
  });
}

}  // namespace
}  // namespace kali

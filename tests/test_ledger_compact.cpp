// Regression tests for store-and-forward edge-ledger compaction
// (EdgeLedger / Processor::compact_edge_ledgers / compact_edge_ledgers(ctx)):
// a long unbarriered phase must no longer grow ledgers O(messages), and
// compaction must be invisible in model time — bit-identical clocks.
#include <gtest/gtest.h>

#include <cstddef>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

constexpr int kIters = 200;
constexpr int kCompactEvery = 10;

MachineConfig sf_ring_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  cfg.link_contention = LinkContention::kStoreForward;
  cfg.topology = Topology::kRing;
  return cfg;
}

/// One long phase with no sync_clocks: every rank exchanges with its ring
/// antipode (2 hops on a 4-ring, so every receive resolves an interior edge
/// into the receiver's ledger) and advances its clock every iteration —
/// compaction's floor is the minimum clock, so an idle rank would pin it.
void antipode_phase(Context& ctx, bool compact) {
  const int partner = (ctx.rank() + 2) % ctx.nprocs();
  for (int iter = 0; iter < kIters; ++iter) {
    ctx.charge_seconds(1.0e-4);
    ctx.send<int>(partner, 7, iter);
    KALI_CHECK(ctx.recv<int>(partner, 7) == iter, "bad payload");
    if (compact && (iter + 1) % kCompactEvery == 0) {
      compact_edge_ledgers(ctx);
    }
  }
}

std::size_t total_ledger_entries(Machine& m) {
  std::size_t n = 0;
  for (int r = 0; r < m.size(); ++r) {
    n += m.proc(r).edge_ledger_entries();
  }
  return n;
}

TEST(LedgerCompact, UnbarrieredPhaseNoLongerGrowsLedgersWithMessageCount) {
  Machine plain(4, sf_ring_config());
  plain.run([](Context& ctx) { antipode_phase(ctx, /*compact=*/false); });
  // Uncompacted baseline: one interior-edge reservation per receive sticks
  // around for the whole phase.
  EXPECT_GE(total_ledger_entries(plain), static_cast<std::size_t>(4 * kIters));

  Machine compacted(4, sf_ring_config());
  compacted.run([](Context& ctx) { antipode_phase(ctx, /*compact=*/true); });
  // Compacted: bounded by the compaction cadence, independent of kIters.
  EXPECT_LE(total_ledger_entries(compacted),
            static_cast<std::size_t>(4 * 2 * kCompactEvery));

  // Zero model cost: clocks, waits, and message counts are bit-identical.
  const MachineStats a = plain.stats();
  const MachineStats b = compacted.stats();
  EXPECT_EQ(a.clocks, b.clocks);
  for (std::size_t i = 0; i < a.per_proc.size(); ++i) {
    EXPECT_EQ(a.per_proc[i].edge_wait_time, b.per_proc[i].edge_wait_time);
    EXPECT_EQ(a.per_proc[i].contended_msgs, b.per_proc[i].contended_msgs);
    EXPECT_EQ(a.per_proc[i].msgs_sent, b.per_proc[i].msgs_sent);
  }
}

TEST(LedgerCompact, CompactionFloorSurvivesQueuedMessages) {
  // A message sent before the quiesce but received after it must still
  // reserve its edges: the floor counts queued send_times, not just clocks.
  MachineConfig cfg = sf_ring_config();
  Machine m(4, cfg);
  m.run([](Context& ctx) {
    const int partner = (ctx.rank() + 2) % ctx.nprocs();
    // Everyone sends first, then compacts with all messages still queued,
    // then receives.  The receives' reservations are keyed by pre-quiesce
    // send_times, which must therefore stay at or above the floor.
    for (int iter = 0; iter < 5; ++iter) {
      ctx.charge_seconds(1.0e-4);
      ctx.send<int>(partner, 7, iter);
    }
    compact_edge_ledgers(ctx);
    for (int iter = 0; iter < 5; ++iter) {
      KALI_CHECK(ctx.recv<int>(partner, 7) == iter, "bad payload");
    }
  });
  EXPECT_EQ(m.stats().totals().msgs_recv, 20u);
}

TEST(LedgerCompact, SyncClocksStillClearsEverything) {
  // The barrier path is the stronger reset: floors and collapsed scalars
  // go too, so post-barrier phases start from a clean slate.
  Machine m(4, sf_ring_config());
  m.run([](Context& ctx) {
    antipode_phase(ctx, /*compact=*/true);
    std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
    for (int i = 0; i < ctx.nprocs(); ++i) {
      ranks[static_cast<std::size_t>(i)] = i;
    }
    sync_clocks(ctx, Group(std::move(ranks), ctx.rank()));
  });
  EXPECT_EQ(total_ledger_entries(m), 0u);
}

}  // namespace
}  // namespace kali

#include "machine/measure.hpp"

#include <gtest/gtest.h>

#include "machine/context.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

Group whole(Context& ctx) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  for (int i = 0; i < ctx.nprocs(); ++i) {
    ranks[static_cast<std::size_t>(i)] = i;
  }
  return Group(std::move(ranks), ctx.rank());
}

TEST(PhaseTimer, MeasuresComputeMakespan) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ctx.compute(500.0 * (ctx.rank() + 1));  // pre-phase skew
    PhaseTimer timer(ctx, whole(ctx));
    ctx.compute(1000.0);  // the phase: equal work
    PhaseStats s = timer.finish();
    EXPECT_NEAR(s.makespan, 1000.0 * ctx.config().flop_time, 1e-12);
    EXPECT_DOUBLE_EQ(s.flops, 4000.0);
    EXPECT_EQ(s.msgs, 0u);
  });
}

TEST(PhaseTimer, MakespanIsSlowestMember) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    PhaseTimer timer(ctx, whole(ctx));
    ctx.compute(100.0 * (ctx.rank() + 1));  // rank 3 does 400
    PhaseStats s = timer.finish();
    EXPECT_NEAR(s.makespan, 400.0 * ctx.config().flop_time, 1e-12);
    EXPECT_NEAR(s.utilization(4), 1000.0 / (4.0 * 400.0), 1e-9);
  });
}

TEST(PhaseTimer, CountsOnlyPhaseTraffic) {
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    // Pre-phase message (must not be counted).
    if (ctx.rank() == 0) {
      ctx.send<int>(1, 5, 1);
    } else {
      (void)ctx.recv<int>(0, 5);
    }
    PhaseTimer timer(ctx, whole(ctx));
    if (ctx.rank() == 0) {
      std::vector<double> v(10, 1.0);
      ctx.send_span<double>(1, 6, v);
    } else {
      (void)ctx.recv_vec<double>(0, 6);
    }
    PhaseStats s = timer.finish();
    EXPECT_EQ(s.msgs, 1u);
    EXPECT_EQ(s.bytes, 80u);
  });
}

TEST(PhaseTimer, NestedPhasesCompose) {
  Machine m(2, quiet_config());
  m.run([&](Context& ctx) {
    PhaseTimer outer(ctx, whole(ctx));
    double inner_total = 0.0;
    for (int k = 0; k < 3; ++k) {
      PhaseTimer inner(ctx, whole(ctx));
      ctx.compute(100.0);
      inner_total += inner.finish().makespan;
    }
    const double outer_time = outer.finish().makespan;
    // Outer covers the inner phases plus the (excluded-from-inner)
    // measurement collectives — so it is at least the sum of inners.
    EXPECT_GE(outer_time, inner_total - 1e-12);
  });
}

TEST(SyncClocks, AlignsExactly) {
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ctx.compute(250.0 * ctx.rank());
    const double t = sync_clocks(ctx, whole(ctx));
    EXPECT_DOUBLE_EQ(t, 750.0 * ctx.config().flop_time);
    EXPECT_DOUBLE_EQ(ctx.clock(), t);
  });
}

}  // namespace
}  // namespace kali

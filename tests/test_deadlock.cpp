// Wait-for-graph deadlock detection (machine/deadlock.hpp): a blocked recv
// publishes its wait edge, and the instant no rank (nor queued message) can
// satisfy a waiter the run aborts with a full per-rank diagnostic — instead
// of hanging until the wall-clock recv timeout, which stays as a fallback
// for the open-ended stalls the graph check cannot prove dead.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "machine/context.hpp"
#include "machine/machine.hpp"
#include "machine/message.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;  // far fallback; detection must beat it
  return cfg;
}

std::string run_expecting_error(Machine& m,
                                const std::function<void(Context&)>& prog) {
  try {
    m.run(prog);
  } catch (const Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "program completed without the expected Error";
  return {};
}

TEST(Deadlock, TwoRankCycleDetectedInstantly) {
  Machine m(2, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    // 0 waits on 1 and 1 waits on 0; neither ever sends.
    (void)ctx.recv<int>(1 - ctx.rank(), /*tag=*/5);
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  EXPECT_NE(what.find("STUCK"), std::string::npos) << what;
}

TEST(Deadlock, FourRankCycleNamesEveryBlockedRank) {
  Machine m(4, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    (void)ctx.recv<int>((ctx.rank() + 1) % 4, /*tag=*/5);
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  // The dump names every blocked rank with its expected (src, tag).
  for (int r = 0; r < 4; ++r) {
    const std::string line = "rank " + std::to_string(r) +
                             ": STUCK in recv(src=" +
                             std::to_string((r + 1) % 4) + ", tag=5";
    EXPECT_NE(what.find(line), std::string::npos) << what;
  }
}

TEST(Deadlock, TagMismatchCaughtWhenSenderRetires) {
  Machine m(2, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 42);  // wrong tag, then rank 0 finishes
    } else {
      (void)ctx.recv<int>(0, /*tag=*/6);  // waits forever on tag 6
    }
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  EXPECT_NE(what.find("recv(src=0, tag=6"), std::string::npos) << what;
  // The dump shows the mismatched message still queued in the mailbox.
  EXPECT_NE(what.find("tag 5"), std::string::npos) << what;
}

TEST(Deadlock, PartialGroupStallDetectedWhileOthersWork) {
  Machine m(4, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    if (ctx.rank() < 2) {
      // Ranks 0 and 1 are healthy: a clean exchange, then done.
      ctx.send(1 - ctx.rank(), /*tag=*/7, ctx.rank());
      (void)ctx.recv<int>(1 - ctx.rank(), /*tag=*/7);
    } else {
      // Ranks 2 and 3 deadlock on each other.
      (void)ctx.recv<int>(ctx.rank() == 2 ? 3 : 2, /*tag=*/5);
    }
  });
  EXPECT_NE(what.find("rank 2: STUCK in recv(src=3, tag=5"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("rank 3: STUCK in recv(src=2, tag=5"),
            std::string::npos)
      << what;
}

TEST(Deadlock, AnySourceStallDetectedWhenNoSenderRemains) {
  Machine m(4, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    // Everyone waits on "anyone" — nobody will ever send.
    (void)ctx.recv<int>(kAnySource, /*tag=*/5);
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  EXPECT_NE(what.find("recv(src=any, tag=5"), std::string::npos) << what;
}

TEST(Deadlock, QueuedMatchKeepsWaiterAliveWhenSenderRetires) {
  // A sender that has already pushed the match may finish while the
  // receiver is still blocked: the waiter is live (its pop succeeds), and
  // mark_done must not flag it.
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.send(1, /*tag=*/5, 99);
    } else {
      EXPECT_EQ(ctx.recv<int>(0, /*tag=*/5), 99);
    }
  });
}

TEST(Deadlock, WaitOnNeverSentIrecvDiagnosedByGraph) {
  // A nonblocking receive whose message is never sent deadlocks at the
  // wait(), not at the post: CommHandle::wait publishes the same wait-for
  // edge a blocking recv does, so the graph check diagnoses it instantly
  // (recv_timeout_wall stays a far fallback that must not be what fires).
  Machine m(2, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    if (ctx.rank() == 0) {
      int got = 0;
      CommHandle h = ctx.irecv<int>(1, /*tag=*/5, got);
      ctx.wait(h);  // rank 1 returns without sending: provably dead
    }
    // rank 1 returns immediately.
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  EXPECT_NE(what.find("STUCK in recv(src=1, tag=5"), std::string::npos)
      << what;
  EXPECT_EQ(what.find("timed out"), std::string::npos) << what;
}

TEST(Deadlock, WaitAllCycleDiagnosedByGraph) {
  // Both ranks post irecvs for each other and wait before either sends —
  // the async version of the classic two-rank cycle.
  Machine m(2, quiet_config());
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    int got = 0;
    CommHandle h = ctx.irecv<int>(1 - ctx.rank(), /*tag=*/6, got);
    ctx.wait(h);
    ctx.send<int>(1 - ctx.rank(), /*tag=*/6, 1);  // too late, never reached
  });
  EXPECT_NE(what.find("wait-for-graph"), std::string::npos) << what;
  EXPECT_NE(what.find("STUCK"), std::string::npos) << what;
}

TEST(Deadlock, DisabledDetectionFallsBackToWallClockTimeout) {
  MachineConfig cfg;
  cfg.deadlock_detection = false;
  cfg.recv_timeout_wall = 0.2;  // keep the test fast
  Machine m(2, cfg);
  const std::string what = run_expecting_error(m, [](Context& ctx) {
    (void)ctx.recv<int>(1 - ctx.rank(), /*tag=*/5);
  });
  EXPECT_NE(what.find("timed out"), std::string::npos) << what;
  EXPECT_NE(what.find("detection is disabled"), std::string::npos) << what;
}

}  // namespace
}  // namespace kali

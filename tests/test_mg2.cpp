#include "solvers/mg2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/context.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 30.0;
  return cfg;
}

Op2 model_op(int nx, int ny, double sigma = 0.0) {
  Op2 op;
  op.axx = op.ayy = 1.0;
  op.sigma = sigma;
  op.hx = 1.0 / nx;
  op.hy = 1.0 / ny;
  return op;
}

struct Setup {
  DistArray2<double> u;
  DistArray2<double> f;
};

Setup make_problem(Context& ctx, const ProcView& pv, const Op2& op, int nx,
                   int ny) {
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
  D2 u(ctx, pv, {nx + 1, ny + 1}, dists, {0, 1});
  D2 f(ctx, pv, {nx + 1, ny + 1}, dists);
  f.fill([&](std::array<int, 2> g) {
    return rhs2(op, g[0] * op.hx, g[1] * op.hy);
  });
  return {std::move(u), std::move(f)};
}

TEST(Mg2, ZebraSweepReducesError) {
  // Zebra line relaxation is a convergent iteration: the error against the
  // (multigrid-converged) discrete solution shrinks with every pair of
  // half-sweeps.  (The L2 *residual* may transiently rise: zebra removes
  // y-oscillatory error, reshaping the residual for the coarse grid.)
  const int nx = 16, ny = 16, p = 2;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny);
    auto [ustar, f] = make_problem(ctx, pv, op, nx, ny);
    for (int cyc = 0; cyc < 12; ++cyc) {
      mg2_cycle(op, ustar, f);  // discrete reference solution
    }
    auto [u, f2] = make_problem(ctx, pv, op, nx, ny);
    auto err = [&]() {
      double local = 0.0;
      doall2(u, Range{1, nx - 1}, Range{1, ny - 1}, [&](int i, int j) {
        const double e = u(i, j) - ustar(i, j);
        local += e * e;
      });
      Group g = u.group();
      return std::sqrt(allreduce_sum(ctx, g, local));
    };
    double prev = err();
    for (int sweep = 0; sweep < 3; ++sweep) {
      mg2_zebra_sweep(op, u, f2, 0);
      mg2_zebra_sweep(op, u, f2, 1);
      const double now = err();
      EXPECT_LT(now, prev) << "sweep " << sweep;
      prev = now;
    }
  });
}

TEST(Mg2, ZebraLinesSolveExactlyOnTheirColour) {
  // After an even half-sweep, every even interior line satisfies its line
  // equation exactly (that is what a zebra line solve means).
  const int nx = 8, ny = 8, p = 2;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny);
    auto [u, f] = make_problem(ctx, pv, op, nx, ny);
    mg2_zebra_sweep(op, u, f, 0);
    auto uin = u.copy_in();
    const double cx = op.cx(), cy = op.cy(), dg = op.diag();
    u.for_each_owned([&](std::array<int, 2> g) {
      const int i = g[0], j = g[1];
      if (i < 1 || i > nx - 1 || j < 2 || j > ny - 2 || j % 2 != 0) {
        return;
      }
      const double au = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                        cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                        dg * uin.at_halo({i, j});
      EXPECT_NEAR(au, f(i, j), 1e-10) << i << "," << j;
    });
  });
}

class Mg2P : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Mg2P, VCyclesConvergeFast) {
  const auto [p, nx, ny] = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny);
    auto [u, f] = make_problem(ctx, pv, op, nx, ny);
    const double r0 = mg2_residual_norm(op, u, f);
    double r = r0;
    double worst_factor = 0.0;  // asymptotic: the first cycle is excluded
    for (int cyc = 0; cyc < 6; ++cyc) {
      mg2_cycle(op, u, f);
      const double rn = mg2_residual_norm(op, u, f);
      if (cyc > 0) {
        worst_factor = std::max(worst_factor, rn / r);
      }
      r = rn;
    }
    EXPECT_LT(r, 1e-6 * r0);
    EXPECT_LT(worst_factor, 0.6);  // genuine multigrid-grade convergence
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, Mg2P,
                         ::testing::Values(std::tuple{1, 16, 16},
                                           std::tuple{2, 16, 16},
                                           std::tuple{4, 16, 32},
                                           std::tuple{4, 32, 32},
                                           std::tuple{8, 32, 64}));

TEST(Mg2, SolutionMatchesManufactured) {
  const int nx = 32, ny = 32, p = 4;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny);
    auto [u, f] = make_problem(ctx, pv, op, nx, ny);
    for (int cyc = 0; cyc < 10; ++cyc) {
      mg2_cycle(op, u, f);
    }
    double max_err = 0.0;
    u.for_each_owned([&](std::array<int, 2> g) {
      max_err = std::max(
          max_err, std::abs(u.at(g) - exact2(g[0] * op.hx, g[1] * op.hy)));
    });
    EXPECT_LT(max_err, 5e-3);  // discretization-level accuracy
  });
}

TEST(Mg2, HelmholtzShiftConverges) {
  // The shifted plane operator mg3 hands to mg2 (sigma < 0).
  const int nx = 16, ny = 16, p = 2;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny, /*sigma=*/-200.0);
    auto [u, f] = make_problem(ctx, pv, op, nx, ny);
    const double r0 = mg2_residual_norm(op, u, f);
    for (int cyc = 0; cyc < 8; ++cyc) {
      mg2_cycle(op, u, f);
    }
    EXPECT_LT(mg2_residual_norm(op, u, f), 1e-6 * r0);
  });
}

TEST(Mg2, FusedLevelSwitchBitIdenticalWithFewerMessages) {
  // The batched level switch (one scheduled redistribution per switch,
  // copy_strided_dim_halo) must reproduce the separate remap + halo rounds
  // bit for bit while cutting the cycle's message count.
  const int nx = 32, ny = 32, p = 4;
  auto run = [&](bool fused) {
    Machine m(p, quiet_config());
    std::vector<std::vector<double>> sol(static_cast<std::size_t>(p));
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      Op2 op = model_op(nx, ny);
      auto [u, f] = make_problem(ctx, pv, op, nx, ny);
      Mg2Options opts;
      opts.fused_level_remap = fused;
      for (int cyc = 0; cyc < 3; ++cyc) {
        mg2_cycle(op, u, f, opts);
      }
      u.for_each_owned([&](std::array<int, 2> g) {
        sol[static_cast<std::size_t>(ctx.rank())].push_back(u.at(g));
      });
    });
    return std::pair{sol, m.stats().totals().msgs_sent};
  };
  const auto [sol_sep, msgs_sep] = run(false);
  const auto [sol_fused, msgs_fused] = run(true);
  EXPECT_EQ(sol_fused, sol_sep);     // bit-identical solutions
  EXPECT_LT(msgs_fused, msgs_sep);   // batched switches send fewer messages
}

TEST(Mg2, LockstepLevelSwitchesConverge) {
  // ROADMAP follow-up: level switches driven through IssueOrder::kLockstep
  // (bounded mailbox depth) must converge identically.
  const int nx = 16, ny = 16, p = 2;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Op2 op = model_op(nx, ny);
    auto [u, f] = make_problem(ctx, pv, op, nx, ny);
    Mg2Options opts;
    opts.remap_order = IssueOrder::kLockstep;
    const double r0 = mg2_residual_norm(op, u, f);
    for (int cyc = 0; cyc < 6; ++cyc) {
      mg2_cycle(op, u, f, opts);
    }
    EXPECT_LT(mg2_residual_norm(op, u, f), 1e-6 * r0);
  });
}

TEST(Mg2, CoarsenableGuardsDegenerateBlocks) {
  EXPECT_FALSE(detail::coarsenable(9, 4));  // ceil-blocks 3,3,3,0: one idle
  EXPECT_FALSE(detail::coarsenable(9, 8));
  EXPECT_TRUE(detail::coarsenable(9, 2));  // 5, 4
  EXPECT_TRUE(detail::coarsenable(8, 4));  // 2, 2, 2, 2
  EXPECT_TRUE(detail::coarsenable(4, 4));
  EXPECT_TRUE(detail::coarsenable(17, 4));  // 5, 5, 5, 2
}

}  // namespace
}  // namespace kali

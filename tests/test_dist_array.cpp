#include "runtime/dist_array.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "machine/context.hpp"
#include "runtime/io.hpp"
#include "support/check.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag2(int i, int j) { return 100.0 * i + j; }
double tag3(int i, int j, int k) { return 10000.0 * i + 100.0 * j + k; }

TEST(DistArray, Block1DOwnershipAndAccess) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {16}, {DimDist::block_dist()});
    EXPECT_TRUE(a.participating());
    EXPECT_EQ(a.local_count(0), 4);
    EXPECT_EQ(a.own_lower(0), ctx.rank() * 4);
    EXPECT_EQ(a.own_upper(0), ctx.rank() * 4 + 3);
    for (int g = a.own_lower(0); g <= a.own_upper(0); ++g) {
      a(g) = 2.0 * g;
    }
    EXPECT_TRUE(a.owns({a.own_lower(0)}));
    EXPECT_FALSE(a.owns({(a.own_lower(0) + 4) % 16}));
    EXPECT_DOUBLE_EQ(a(a.own_upper(0)), 2.0 * a.own_upper(0));
  });
}

TEST(DistArray, NonOwnedAccessThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    const int foreign = ctx.rank() == 0 ? 7 : 0;
    a(foreign) = 1.0;  // not owned: must throw
  }),
               Error);
}

TEST(DistArray, DistributedDimsMustMatchViewRank) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    // Only one distributed dim over a 2-D view: illegal (paper rule).
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::star()});
  }),
               Error);
}

TEST(DistArray, StarDimReplicatesExtent) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<double> a(ctx, pv, {3, 8},
                         {DimDist::star(), DimDist::block_dist()});
    EXPECT_EQ(a.local_count(0), 3);  // whole star extent everywhere
    EXPECT_EQ(a.local_count(1), 4);
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    for (int i = 0; i < 3; ++i) {
      for (int j = a.own_lower(1); j <= a.own_upper(1); ++j) {
        EXPECT_DOUBLE_EQ(a(i, j), tag2(i, j));
      }
    }
  });
}

TEST(DistArray, FillAndGatherGlobalRoundTrip) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {6, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    auto full = gather_global(a);
    if (ctx.rank() == 0) {
      ASSERT_EQ(full.size(), 48u);
      for (int i = 0; i < 6; ++i) {
        for (int j = 0; j < 8; ++j) {
          EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(i * 8 + j)], tag2(i, j));
        }
      }
    } else {
      EXPECT_TRUE(full.empty());
    }
  });
}

TEST(DistArray, GatherAllReplicatesEverywhere) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {12}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 2.5 * g[0]; });
    auto full = gather_all(a);
    ASSERT_EQ(full.size(), 12u);  // every member, not just the root
    for (int g = 0; g < 12; ++g) {
      EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(g)], 2.5 * g);
    }
  });
}

TEST(DistArray, BlockCyclic2DRoundTrip) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {10, 12},
                         {DimDist::block_cyclic(3), DimDist::cyclic()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    auto full = gather_global(a);
    if (ctx.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        for (int j = 0; j < 12; ++j) {
          EXPECT_DOUBLE_EQ(full[static_cast<std::size_t>(i * 12 + j)],
                           tag2(i, j));
        }
      }
    }
  });
}

TEST(DistArray, CyclicDistributionGather) {
  Machine m(3, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<int> a(ctx, pv, {10}, {DimDist::cyclic()});
    a.fill([](std::array<int, 1> g) { return 7 * g[0]; });
    auto full = gather_global(a);
    if (ctx.rank() == 0) {
      for (int g = 0; g < 10; ++g) {
        EXPECT_EQ(full[static_cast<std::size_t>(g)], 7 * g);
      }
    }
  });
}

TEST(DistArray, HaloExchange1D) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {16}, {DimDist::block_dist()}, {2});
    a.fill([](std::array<int, 1> g) { return 3.0 * g[0]; });
    a.exchange_halo();
    const int lo = a.own_lower(0);
    const int hi = a.own_upper(0);
    if (lo > 0) {
      EXPECT_DOUBLE_EQ(a.at_halo({lo - 1}), 3.0 * (lo - 1));
      EXPECT_DOUBLE_EQ(a.at_halo({lo - 2}), 3.0 * (lo - 2));
    }
    if (hi < 15) {
      EXPECT_DOUBLE_EQ(a.at_halo({hi + 1}), 3.0 * (hi + 1));
      EXPECT_DOUBLE_EQ(a.at_halo({hi + 2}), 3.0 * (hi + 2));
    }
  });
}

TEST(DistArray, HaloExchange2DIncludesCorners) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()},
                         {1, 1});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    a.exchange_halo(HaloCorners::kYes);
    // Every interior ghost (including diagonal corners) must be valid.
    const int ilo = a.own_lower(0), ihi = a.own_upper(0);
    const int jlo = a.own_lower(1), jhi = a.own_upper(1);
    for (int i = std::max(0, ilo - 1); i <= std::min(7, ihi + 1); ++i) {
      for (int j = std::max(0, jlo - 1); j <= std::min(7, jhi + 1); ++j) {
        EXPECT_DOUBLE_EQ(a.at_halo({i, j}), tag2(i, j)) << i << "," << j;
      }
    }
  });
}

TEST(DistArray, HaloExchangeStarModeFillsEdgesInOneRound) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()},
                         {1, 1});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    a.exchange_halo();  // HaloCorners::kNo
    // Face ghosts (sharing a row or column with the slab) must be valid.
    const int ilo = a.own_lower(0), ihi = a.own_upper(0);
    const int jlo = a.own_lower(1), jhi = a.own_upper(1);
    for (int j = jlo; j <= jhi; ++j) {
      if (ilo > 0) {
        EXPECT_DOUBLE_EQ(a.at_halo({ilo - 1, j}), tag2(ilo - 1, j));
      }
      if (ihi < 7) {
        EXPECT_DOUBLE_EQ(a.at_halo({ihi + 1, j}), tag2(ihi + 1, j));
      }
    }
    for (int i = ilo; i <= ihi; ++i) {
      if (jlo > 0) {
        EXPECT_DOUBLE_EQ(a.at_halo({i, jlo - 1}), tag2(i, jlo - 1));
      }
      if (jhi < 7) {
        EXPECT_DOUBLE_EQ(a.at_halo({i, jhi + 1}), tag2(i, jhi + 1));
      }
    }
  });
  // One latency round: every processor sends its 2 faces (interior 2x2
  // grid corner -> 2 neighbours each).
  EXPECT_EQ(m.stats().totals().msgs_sent, 8u);
}

// Frame sentinel: a value unique per (writing rank, global position), so
// tests can tell *whose* boundary frame a corner-mode exchange propagated.
double frame_val(int rank, int i, int j) {
  return 90000.0 + 1000.0 * rank + 20.0 * (i + 2) + (j + 2);
}

TEST(DistArray, CornerHaloMatchesDirectionOracle) {
  // 3x3 grid, mixed halo widths, uneven blocks, frame sentinels.  After
  // the single scheduled corner exchange, every margin cell must hold what
  // the direction algebra prescribes: the owner's value for in-domain
  // ghosts (diagonals included), the source rank's frame sentinel where
  // the direction leaves the domain, and this rank's own untouched
  // sentinel where no source exists — exactly what the old serialized
  // per-dim wide rounds produced.
  const int n0 = 13, n1 = 11;
  Machine m(9, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(3, 3);
    DistArray2<double> a(ctx, pv, {n0, n1},
                         {DimDist::block_dist(), DimDist::block_dist()},
                         {2, 1});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    const int ilo = a.own_lower(0), ihi = a.own_upper(0);
    const int jlo = a.own_lower(1), jhi = a.own_upper(1);
    for (int i = ilo - 2; i <= ihi + 2; ++i) {
      for (int j = jlo - 1; j <= jhi + 1; ++j) {
        if (i < 0 || i >= n0 || j < 0 || j >= n1) {
          a.frame({i, j}) = frame_val(ctx.rank(), i, j);
        }
      }
    }
    a.exchange_halo(HaloCorners::kYes);
    const auto coord = *pv.coord_of(ctx.rank());
    for (int i = ilo - 2; i <= ihi + 2; ++i) {
      for (int j = jlo - 1; j <= jhi + 1; ++j) {
        const int di = i < ilo ? -1 : (i > ihi ? 1 : 0);
        const int dj = j < jlo ? -1 : (j > jhi ? 1 : 0);
        if (di == 0 && dj == 0) {
          continue;  // owned
        }
        auto qc = coord;
        bool any_e = false;
        if (di != 0 && coord[0] + di >= 0 && coord[0] + di < 3) {
          qc[0] += di;
          any_e = true;
        }
        if (dj != 0 && coord[1] + dj >= 0 && coord[1] + dj < 3) {
          qc[1] += dj;
          any_e = true;
        }
        const bool in_domain = i >= 0 && i < n0 && j >= 0 && j < n1;
        double expect;
        if (!any_e) {
          expect = frame_val(ctx.rank(), i, j);  // pure frame: untouched
        } else if (in_domain) {
          expect = tag2(i, j);  // the diagonal/face owner's value
        } else {
          expect = frame_val(pv.rank_of(qc), i, j);  // source's frame
        }
        EXPECT_DOUBLE_EQ(a.at_halo({i, j}), expect) << i << "," << j;
      }
    }
  });
}

TEST(DistArray, CornerHalo3DDiagonalGhostsValid) {
  // The mg3 shape: (*, block, block) over a 2-D grid, halo on both
  // distributed dims.  All in-domain ghosts — edges and corners across the
  // two distributed dims, star dim replicated — must be valid after one
  // scheduled exchange.
  const int n = 8;
  Machine m(4, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray3<double> a(
        ctx, pv, {3, n, n},
        {DimDist::star(), DimDist::block_dist(), DimDist::block_dist()},
        {0, 1, 1});
    a.fill([](std::array<int, 3> g) { return tag3(g[0], g[1], g[2]); });
    a.exchange_halo(HaloCorners::kYes);
    const int jlo = a.own_lower(1), jhi = a.own_upper(1);
    const int klo = a.own_lower(2), khi = a.own_upper(2);
    for (int i = 0; i < 3; ++i) {
      for (int j = std::max(0, jlo - 1); j <= std::min(n - 1, jhi + 1); ++j) {
        for (int k = std::max(0, klo - 1); k <= std::min(n - 1, khi + 1); ++k) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, j, k}), tag3(i, j, k))
              << i << "," << j << "," << k;
        }
      }
    }
  });
}

TEST(DistArray, CornerHaloNoSelfMessagesAnyOrder) {
  for (IssueOrder order : {IssueOrder::kRoundSchedule, IssueOrder::kPeerOrder,
                           IssueOrder::kLockstep}) {
    SCOPED_TRACE(static_cast<int>(order));
    Machine m(9, quiet_config());
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(3, 3);
      DistArray2<double> a(ctx, pv, {12, 12},
                           {DimDist::block_dist(), DimDist::block_dist()},
                           {1, 1});
      a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      a.exchange_halo(HaloCorners::kYes, order);
      const int ilo = a.own_lower(0), ihi = a.own_upper(0);
      const int jlo = a.own_lower(1), jhi = a.own_upper(1);
      for (int i = std::max(0, ilo - 1); i <= std::min(11, ihi + 1); ++i) {
        for (int j = std::max(0, jlo - 1); j <= std::min(11, jhi + 1); ++j) {
          EXPECT_DOUBLE_EQ(a.at_halo({i, j}), tag2(i, j)) << i << "," << j;
        }
      }
    });
    const MachineStats st = m.stats();
    for (int t = 0; t < 12; ++t) {
      EXPECT_EQ(st.self_msgs(kTagHaloBase + t), 0u);
    }
    for (int t = 0; t < 27; ++t) {
      EXPECT_EQ(st.self_msgs(kTagHaloCornerBase + t), 0u);
    }
    EXPECT_EQ(st.self_msgs(kTagHaloCornerPack), 0u);
    EXPECT_EQ(st.self_msgs_total(), 0u);
  }
}

TEST(DistArray, CornerHaloCoalescedMatchesPerDirectionOracle) {
  // The coalesced wire (one kTagHaloCornerPack message per peer) must
  // produce bit-identical cell contents to the per-direction oracle wire
  // (one kTagHaloCornerBase+code message per piece) on the hardest corner
  // scenario we have: 3x3 grid, mixed halo widths, uneven blocks, frame
  // sentinels — while sending strictly fewer messages.
  const int n0 = 13, n1 = 11;
  auto run_once = [&](HaloWire wire) {
    Machine m(9, quiet_config());
    std::vector<std::vector<double>> slabs(9);
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(3, 3);
      DistArray2<double> a(ctx, pv, {n0, n1},
                           {DimDist::block_dist(), DimDist::block_dist()},
                           {2, 1});
      a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      const int ilo = a.own_lower(0), ihi = a.own_upper(0);
      const int jlo = a.own_lower(1), jhi = a.own_upper(1);
      for (int i = ilo - 2; i <= ihi + 2; ++i) {
        for (int j = jlo - 1; j <= jhi + 1; ++j) {
          if (i < 0 || i >= n0 || j < 0 || j >= n1) {
            a.frame({i, j}) = frame_val(ctx.rank(), i, j);
          }
        }
      }
      a.exchange_halo(HaloCorners::kYes, IssueOrder::kRoundSchedule, wire);
      auto& s = slabs[static_cast<std::size_t>(ctx.rank())];
      for (int i = ilo - 2; i <= ihi + 2; ++i) {
        for (int j = jlo - 1; j <= jhi + 1; ++j) {
          s.push_back(a.at_halo({i, j}));
        }
      }
    });
    return std::pair{m.stats(), slabs};
  };
  const auto [stats_c, slabs_c] = run_once(HaloWire::kCoalesced);
  const auto [stats_d, slabs_d] = run_once(HaloWire::kPerDirection);
  EXPECT_EQ(slabs_c, slabs_d);  // bit-identical, margins included

  // Wire shape: each mode uses only its own tag space, both ledgers
  // balance, and coalescing strictly reduces the message count.
  std::uint64_t dir_msgs = 0;
  std::uint64_t dir_msgs_in_coalesced = 0;
  for (int t = 0; t < 9; ++t) {  // 3^2 direction codes
    dir_msgs += stats_d.sent_msgs(kTagHaloCornerBase + t);
    dir_msgs_in_coalesced += stats_c.sent_msgs(kTagHaloCornerBase + t);
  }
  EXPECT_EQ(stats_d.sent_msgs(kTagHaloCornerPack), 0u);
  EXPECT_EQ(dir_msgs_in_coalesced, 0u);
  // One message per ordered pair of king-adjacent grid neighbours (the
  // pure-E full-delta piece guarantees every such pair communicates):
  // 4 corners x 3 + 4 edges x 5 + 1 center x 8 = 40 on a 3x3 grid.
  EXPECT_EQ(stats_c.sent_msgs(kTagHaloCornerPack), 40u);
  EXPECT_GT(dir_msgs, stats_c.sent_msgs(kTagHaloCornerPack));
  EXPECT_TRUE(stats_c.unmatched_by_tag().empty());
  EXPECT_TRUE(stats_d.unmatched_by_tag().empty());
}

TEST(DistArray, CornerHaloBitIdenticalUnderStoreForwardContention) {
  // Repeated 16-thread contended runs must produce bit-identical clocks
  // and bit-identical cell contents (the scheduled exchange inherits the
  // machine model's determinism design).
  auto run_once = [&]() {
    MachineConfig cfg = quiet_config();
    cfg.topology = Topology::kMesh2D;
    cfg.link_contention = LinkContention::kStoreForward;
    Machine m(16, cfg);
    std::vector<std::vector<double>> slabs(16);
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(4, 4);
      DistArray2<double> a(ctx, pv, {32, 32},
                           {DimDist::block_dist(), DimDist::block_dist()},
                           {1, 1});
      a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      a.exchange_halo(HaloCorners::kYes);
      auto& s = slabs[static_cast<std::size_t>(ctx.rank())];
      for (int i = a.own_lower(0) - 1; i <= a.own_upper(0) + 1; ++i) {
        for (int j = a.own_lower(1) - 1; j <= a.own_upper(1) + 1; ++j) {
          s.push_back(a.at_halo({i, j}));
        }
      }
    });
    return std::pair{m.stats().clocks, slabs};
  };
  const auto [clocks0, slabs0] = run_once();
  for (int rep = 0; rep < 3; ++rep) {
    const auto [clocks, slabs] = run_once();
    EXPECT_EQ(clocks, clocks0) << "rep " << rep;  // exact, not approximate
    EXPECT_EQ(slabs, slabs0) << "rep " << rep;
  }
}

TEST(DistArray, CopyInSnapshotsOldValues) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()}, {1});
    a.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
    auto old = a.copy_in();
    // Mutate the original; the snapshot must be unaffected (copy-in).
    a.fill([](std::array<int, 1>) { return -1.0; });
    for (int g = old.own_lower(0); g <= old.own_upper(0); ++g) {
      EXPECT_DOUBLE_EQ(old(g), 1.0 * g);
    }
    // Snapshot's halo carries the *old* neighbour values.
    if (ctx.rank() == 1) {
      EXPECT_DOUBLE_EQ(old.at_halo({3}), 3.0);
    }
  });
}

TEST(DistArray, FixDistributedDimSlicesViewToOwners) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 6},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    // Row 5 lives on processor row 1 (blocks of 4): procs (1,0) and (1,1).
    auto row = a.fix(0, 5);
    EXPECT_EQ(row.view().ndims(), 1);
    EXPECT_EQ(row.view().extent(0), 2);
    const bool should_own = pv.coord_of(ctx.rank()).value()[0] == 1;
    EXPECT_EQ(row.participating(), should_own);
    if (should_own) {
      for (int j = row.own_lower(0); j <= row.own_upper(0); ++j) {
        EXPECT_DOUBLE_EQ(row(j), tag2(5, j));
      }
      // Writes through the slice hit the parent storage.
      row(row.own_lower(0)) = -7.0;
      EXPECT_DOUBLE_EQ(a(5, row.own_lower(0)), -7.0);
    }
  });
}

TEST(DistArray, FixStarDimKeepsWholeView) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<double> a(ctx, pv, {5, 8},
                         {DimDist::star(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    auto line = a.fix(0, 3);  // u(3, *): still distributed over both procs
    EXPECT_TRUE(line.participating());
    EXPECT_EQ(line.view().count(), 2);
    for (int j = line.own_lower(0); j <= line.own_upper(0); ++j) {
      EXPECT_DOUBLE_EQ(line(j), tag2(3, j));
    }
  });
}

TEST(DistArray, Fix3DPlaneMatchesPaperMg3Slicing) {
  // u(0:nx, 0:ny, 0:nz) dist (*, block, block) over procs(px, py);
  // u(*, *, k) must be a 2-D array dist (*, block) over procs(*, kp).
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray3<double> u(
        ctx, pv, {4, 8, 8},
        {DimDist::star(), DimDist::block_dist(), DimDist::block_dist()});
    u.fill([](std::array<int, 3> g) { return tag3(g[0], g[1], g[2]); });
    const int k = 6;  // owner column: 6/4 = 1
    auto plane = u.fix(2, k);
    EXPECT_EQ(plane.view().ndims(), 1);
    EXPECT_EQ(plane.view().extent(0), 2);
    const bool in_col = pv.coord_of(ctx.rank()).value()[1] == 1;
    EXPECT_EQ(plane.participating(), in_col);
    if (in_col) {
      EXPECT_EQ(plane.dist_kind(0), DistKind::kStar);
      EXPECT_EQ(plane.dist_kind(1), DistKind::kBlock);
      for (int i = 0; i < 4; ++i) {
        for (int j = plane.own_lower(1); j <= plane.own_upper(1); ++j) {
          EXPECT_DOUBLE_EQ(plane(i, j), tag3(i, j, k));
        }
      }
      // Further fixing a line: u(*, j, k) is owned by a single processor.
      auto line = plane.fix(1, 1);
      EXPECT_EQ(line.view().count(), 1);
      if (line.participating()) {
        EXPECT_DOUBLE_EQ(line(2), tag3(2, 1, k));
      }
    }
  });
}

TEST(DistArray, LocalizeBlockRangeBecomesStar) {
  // Listing 8: v(lo:hi, *) where lo:hi is one processor row's block.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> v(ctx, pv, {8, 6},
                         {DimDist::block_dist(), DimDist::block_dist()});
    v.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    auto mine = v.localize(0, 4, 4);  // rows 4..7 = proc row 1's block
    const bool in_row = pv.coord_of(ctx.rank()).value()[0] == 1;
    EXPECT_EQ(mine.participating(), in_row);
    EXPECT_EQ(mine.extent(0), 4);
    EXPECT_EQ(mine.dist_kind(0), DistKind::kStar);
    if (in_row) {
      EXPECT_EQ(mine.view().count(), 2);
      // Global index 0 of the localized dim = old global 4.
      for (int j = mine.own_lower(1); j <= mine.own_upper(1); ++j) {
        EXPECT_DOUBLE_EQ(mine(0, j), tag2(4, j));
        EXPECT_DOUBLE_EQ(mine(3, j), tag2(7, j));
      }
    }
  });
}

TEST(DistArray, LocalizeAcrossOwnersThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    (void)a.localize(0, 2, 4);  // spans both owners
  }),
               Error);
}

TEST(DistArray, StridedLocalSpanOfRowSlice) {
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<double> a(ctx, pv, {4, 8},
                         {DimDist::star(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    auto row = a.fix(0, 2);  // 1-D, block over 2 procs, strided in parent
    auto s = row.local_strided();
    ASSERT_EQ(s.n, 4);
    for (int l = 0; l < s.n; ++l) {
      EXPECT_DOUBLE_EQ(s[l], tag2(2, row.own_lower(0) + l));
    }
    s[0] = -9.0;
    EXPECT_DOUBLE_EQ(a(2, row.own_lower(0)), -9.0);
  });
}

TEST(DistArray, HaloRequiresBlockDim) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::cyclic()}, {1});
  }),
               Error);
}

TEST(DistArray, BoundaryFrameReadsZeroAndIsWritable) {
  // Listing 2 semantics: the ghost frame extends past the global domain at
  // physical boundaries, carrying Dirichlet data (zero by default).
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()}, {1});
    a.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
    a.exchange_halo();
    if (ctx.rank() == 0) {
      EXPECT_DOUBLE_EQ(a.at_halo({-1}), 0.0);  // frame cell, untouched
      a.frame({-1}) = 7.5;                     // impose a boundary value
      EXPECT_DOUBLE_EQ(a.at_halo({-1}), 7.5);
    } else {
      EXPECT_DOUBLE_EQ(a.at_halo({8}), 0.0);
    }
    // Beyond the frame is still an error.
    EXPECT_THROW((void)a.at_halo({ctx.rank() == 0 ? -2 : 9}), Error);
  });
}

}  // namespace
}  // namespace kali

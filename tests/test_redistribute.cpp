#include "runtime/redistribute.hpp"

#include <gtest/gtest.h>

#include "machine/context.hpp"
#include "runtime/io.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag2(int i, int j) { return 100.0 * i + j; }

TEST(Redistribute, BlockToCyclic1D) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> src(ctx, pv, {16}, {DimDist::block_dist()});
    DistArray1<double> dst(ctx, pv, {16}, {DimDist::cyclic()});
    src.fill([](std::array<int, 1> g) { return 5.0 * g[0]; });
    redistribute(ctx, src, dst);
    dst.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(dst.at(g), 5.0 * g[0]);
    });
  });
}

TEST(Redistribute, TransposeDistribution2D) {
  // (block, *) -> (*, block): the transpose communication of a distributed
  // 2-D FFT or of switching ADI sweep direction.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray2<double> rows(ctx, pv, {8, 8},
                            {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> cols(ctx, pv, {8, 8},
                            {DimDist::star(), DimDist::block_dist()});
    rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, rows, cols);
    cols.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(cols.at(g), tag2(g[0], g[1]));
    });
  });
}

TEST(Redistribute, DifferentGridShapes) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    DistArray2<double> a(ctx, ProcView::grid2(2, 2), {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> b(ctx, ProcView::grid2(4, 1), {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, a, b);
    b.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(b.at(g), tag2(g[0], g[1]));
    });
  });
}

TEST(Redistribute, RoundTripPreservesContents) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {13}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {13}, {DimDist::block_cyclic(2)});
    DistArray1<double> c(ctx, pv, {13}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 7.0 * g[0] + 1.0; });
    redistribute(ctx, a, b);
    redistribute(ctx, b, c);
    c.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(c.at(g), 7.0 * g[0] + 1.0);
    });
  });
}

TEST(Redistribute, ReplicatesIntoStarDims) {
  // dst (*, block): every processor must receive the rows it replicates.
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<double> src(ctx, pv, {4, 4},
                           {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> dst(ctx, pv, {4, 4},
                           {DimDist::star(), DimDist::block_dist()});
    src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, src, dst);
    for (int i = 0; i < 4; ++i) {
      for (int j = dst.own_lower(1); j <= dst.own_upper(1); ++j) {
        EXPECT_DOUBLE_EQ(dst(i, j), tag2(i, j));
      }
    }
  });
}

TEST(Redistribute, ExtentMismatchThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {9}, {DimDist::block_dist()});
    redistribute(ctx, a, b);
  }),
               Error);
}

}  // namespace
}  // namespace kali

#include "runtime/redistribute.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "machine/context.hpp"
#include "runtime/io.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

double tag2(int i, int j) { return 100.0 * i + j; }

TEST(Redistribute, BlockToCyclic1D) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> src(ctx, pv, {16}, {DimDist::block_dist()});
    DistArray1<double> dst(ctx, pv, {16}, {DimDist::cyclic()});
    src.fill([](std::array<int, 1> g) { return 5.0 * g[0]; });
    redistribute(ctx, src, dst);
    dst.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(dst.at(g), 5.0 * g[0]);
    });
  });
}

TEST(Redistribute, TransposeDistribution2D) {
  // (block, *) -> (*, block): the transpose communication of a distributed
  // 2-D FFT or of switching ADI sweep direction.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray2<double> rows(ctx, pv, {8, 8},
                            {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> cols(ctx, pv, {8, 8},
                            {DimDist::star(), DimDist::block_dist()});
    rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, rows, cols);
    cols.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(cols.at(g), tag2(g[0], g[1]));
    });
  });
}

TEST(Redistribute, DifferentGridShapes) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    DistArray2<double> a(ctx, ProcView::grid2(2, 2), {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> b(ctx, ProcView::grid2(4, 1), {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, a, b);
    b.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(b.at(g), tag2(g[0], g[1]));
    });
  });
}

TEST(Redistribute, RoundTripPreservesContents) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {13}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {13}, {DimDist::block_cyclic(2)});
    DistArray1<double> c(ctx, pv, {13}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 7.0 * g[0] + 1.0; });
    redistribute(ctx, a, b);
    redistribute(ctx, b, c);
    c.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(c.at(g), 7.0 * g[0] + 1.0);
    });
  });
}

TEST(Redistribute, ReplicatesIntoStarDims) {
  // dst (*, block): every processor must receive the rows it replicates.
  Machine m(2, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray2<double> src(ctx, pv, {4, 4},
                           {DimDist::block_dist(), DimDist::star()});
    DistArray2<double> dst(ctx, pv, {4, 4},
                           {DimDist::star(), DimDist::block_dist()});
    src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, src, dst);
    for (int i = 0; i < 4; ++i) {
      for (int j = dst.own_lower(1); j <= dst.own_upper(1); ++j) {
        EXPECT_DOUBLE_EQ(dst(i, j), tag2(i, j));
      }
    }
  });
}

TEST(Redistribute, CyclicBlockCyclicRoundTrip) {
  // General (owner-binning) path in both directions, odd extent so counts
  // differ across ranks.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {19}, {DimDist::cyclic()});
    DistArray1<double> b(ctx, pv, {19}, {DimDist::block_cyclic(3)});
    DistArray1<double> c(ctx, pv, {19}, {DimDist::cyclic()});
    a.fill([](std::array<int, 1> g) { return 3.0 * g[0] - 1.0; });
    redistribute(ctx, a, b);
    b.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(b.at(g), 3.0 * g[0] - 1.0);
    });
    redistribute(ctx, b, c);
    c.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(c.at(g), 3.0 * g[0] - 1.0);
    });
  });
}

TEST(Redistribute, StarFanOutFromBlockGrid) {
  // (block, block) on a 2x2 grid -> (block, *) on a 1-D view: every dst
  // rank's replicated row span is assembled from two source quadrants.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    DistArray2<double> src(ctx, ProcView::grid2(2, 2), {8, 8},
                           {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> dst(ctx, ProcView::grid1(4), {8, 8},
                           {DimDist::block_dist(), DimDist::star()});
    src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, src, dst);
    for (int i = dst.own_lower(0); i <= dst.own_upper(0); ++i) {
      for (int j = 0; j < 8; ++j) {
        EXPECT_DOUBLE_EQ(dst(i, j), tag2(i, j));
      }
    }
  });
}

TEST(Redistribute, DisjointSrcDstViews) {
  // Producer/consumer hand-off: src lives on ranks {0, 1}, dst on {2, 3}.
  // Exercises both the box path and the general path across disjoint views.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView spv = ProcView::grid1(2, /*base=*/0);
    ProcView dpv = ProcView::grid1(2, /*base=*/2);
    {
      DistArray1<double> a(ctx, spv, {10}, {DimDist::block_dist()});
      DistArray1<double> b(ctx, dpv, {10}, {DimDist::block_dist()});
      a.fill([](std::array<int, 1> g) { return 2.0 * g[0]; });
      redistribute(ctx, a, b);
      b.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_DOUBLE_EQ(b.at(g), 2.0 * g[0]);
      });
    }
    {
      DistArray1<double> a(ctx, spv, {10}, {DimDist::block_dist()});
      DistArray1<double> b(ctx, dpv, {10}, {DimDist::cyclic()});
      a.fill([](std::array<int, 1> g) { return 2.0 * g[0] + 1.0; });
      redistribute(ctx, a, b);
      b.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_DOUBLE_EQ(b.at(g), 2.0 * g[0] + 1.0);
      });
    }
  });
}

TEST(Redistribute, OvershootRanksOwnNothing) {
  // extent < nprocs: with block ceil-division, rank 3 owns zero elements on
  // both sides; it must neither send nor be expected to send.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {3}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {3}, {DimDist::cyclic()});
    DistArray1<double> c(ctx, pv, {3}, {DimDist::block_dist()});
    a.fill([](std::array<int, 1> g) { return 9.0 * g[0]; });
    redistribute(ctx, a, b);
    redistribute(ctx, b, c);
    c.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_DOUBLE_EQ(c.at(g), 9.0 * g[0]);
    });
  });
}

TEST(Redistribute, BoxPathSendsOnlyIntersectingPairs) {
  // Identity redistribution between identical (block, block) layouts: the
  // only intersecting pair per rank is itself, and self-overlaps are local
  // copies — zero messages, where the reference path still floods all 12
  // non-self pairs (its own self round-trips are also eliminated).
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> b(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute(ctx, a, b);
    b.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(b.at(g), tag2(g[0], g[1]));
    });
  });
  EXPECT_EQ(m.stats().totals().msgs_sent, 0u);

  Machine ref(4, quiet_config());
  ref.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> a(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> b(ctx, pv, {8, 8},
                         {DimDist::block_dist(), DimDist::block_dist()});
    a.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
    redistribute_reference(ctx, a, b);
    b.for_each_owned([&](std::array<int, 2> g) {
      EXPECT_DOUBLE_EQ(b.at(g), tag2(g[0], g[1]));
    });
  });
  EXPECT_EQ(ref.stats().totals().msgs_sent, 12u);
}

TEST(Redistribute, NoSelfMessagesOnAnyPath) {
  // The headline bugfix: no path may push a rank's self-overlap through
  // the mailbox — box, general (binning), and reference alike.
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    {  // box path, transpose: self slab on the diagonal
      DistArray2<double> rows(ctx, pv, {8, 8},
                              {DimDist::block_dist(), DimDist::star()});
      DistArray2<double> cols(ctx, pv, {8, 8},
                              {DimDist::star(), DimDist::block_dist()});
      rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      redistribute(ctx, rows, cols);
    }
    {  // general path: every rank keeps some elements
      DistArray1<double> a(ctx, pv, {32}, {DimDist::block_dist()});
      DistArray1<double> b(ctx, pv, {32}, {DimDist::block_cyclic(2)});
      a.fill([](std::array<int, 1> g) { return 1.0 * g[0]; });
      redistribute(ctx, a, b);
      DistArray1<double> c(ctx, pv, {32}, {DimDist::cyclic()});
      redistribute_reference(ctx, b, c);
    }
  });
  EXPECT_EQ(m.stats().self_msgs(kTagRedistData), 0u);
  EXPECT_EQ(m.stats().self_msgs_total(), 0u);
}

TEST(Redistribute, ScheduledAndPeerOrderProduceIdenticalContents) {
  // The round schedule only permutes issue order; array contents must be
  // exactly what naive peer order produces, on both protocol paths.
  struct Case {
    std::string name;
    DimDist sd, dd;
  };
  const std::vector<Case> cases = {
      {"box", DimDist::block_dist(), DimDist::block_dist()},
      {"general", DimDist::cyclic(), DimDist::block_cyclic(3)},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    for (int p : {3, 4, 5, 8}) {
      SCOPED_TRACE("p=" + std::to_string(p));
      Machine m(p, quiet_config());
      m.run([&](Context& ctx) {
        ProcView pv = ProcView::grid1(p);
        DistArray1<double> src(ctx, pv, {29}, {c.sd});
        DistArray1<double> sched(ctx, pv, {29}, {c.dd});
        DistArray1<double> naive(ctx, pv, {29}, {c.dd});
        src.fill([](std::array<int, 1> g) { return 0.25 * g[0] - 2.0; });
        redistribute(ctx, src, sched, IssueOrder::kRoundSchedule);
        redistribute(ctx, src, naive, IssueOrder::kPeerOrder);
        sched.for_each_owned([&](std::array<int, 1> g) {
          EXPECT_DOUBLE_EQ(sched.at(g), naive.at(g));
          EXPECT_DOUBLE_EQ(sched.at(g), 0.25 * g[0] - 2.0);
        });
      });
    }
  }
}

TEST(Redistribute, ContentionOnlyChangesClocks) {
  // Same transpose with link contention off and on: identical contents,
  // message counts, and wire bytes — only clocks (and the link-wait
  // counters) move, and never backwards.
  auto run_transpose = [](bool contention, IssueOrder order) {
    MachineConfig cfg = quiet_config();
    cfg.link_contention =
        contention ? LinkContention::kPorts : LinkContention::kNone;
    Machine m(8, cfg);
    std::vector<double> gathered;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(8);
      DistArray2<double> rows(ctx, pv, {16, 16},
                              {DimDist::block_dist(), DimDist::star()});
      DistArray2<double> cols(ctx, pv, {16, 16},
                              {DimDist::star(), DimDist::block_dist()});
      rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      redistribute(ctx, rows, cols, order);
      if (ctx.rank() == 0) {
        for (int i = 0; i < 16; ++i) {
          for (int j = cols.own_lower(1); j <= cols.own_upper(1); ++j) {
            gathered.push_back(cols(i, j));
          }
        }
      }
    });
    return std::make_tuple(gathered, m.stats());
  };

  const auto [vals_off, st_off] = run_transpose(false, IssueOrder::kRoundSchedule);
  const auto [vals_on, st_on] = run_transpose(true, IssueOrder::kRoundSchedule);
  EXPECT_EQ(vals_off, vals_on);  // bit-identical results
  EXPECT_EQ(st_off.totals().msgs_sent, st_on.totals().msgs_sent);
  EXPECT_EQ(st_off.totals().bytes_sent, st_on.totals().bytes_sent);
  EXPECT_DOUBLE_EQ(st_off.link_wait_time(), 0.0);
  EXPECT_EQ(st_off.contended_msgs(), 0u);
  EXPECT_GE(st_on.max_clock(), st_off.max_clock());

  // Under contention the round schedule must not lose to naive issue
  // order on the modeled clock.
  const auto [vals_naive, st_naive] = run_transpose(true, IssueOrder::kPeerOrder);
  EXPECT_EQ(vals_naive, vals_on);
  EXPECT_LE(st_on.max_clock(), st_naive.max_clock());
  EXPECT_GT(st_naive.contended_msgs(), 0u);
}

TEST(Redistribute, PropertyMatchesReferenceAcrossDistributions1D) {
  // Differential test: for every (src kind, dst kind) pair, the analytic
  // protocol must reproduce the reference all-pairs path element for
  // element (and both must equal the fill).
  const std::vector<std::pair<std::string, DimDist>> kinds = {
      {"block", DimDist::block_dist()},
      {"cyclic", DimDist::cyclic()},
      {"bc2", DimDist::block_cyclic(2)},
      {"bc3", DimDist::block_cyclic(3)},
  };
  for (const auto& [sname, sk] : kinds) {
    for (const auto& [dname, dk] : kinds) {
      SCOPED_TRACE(sname + " -> " + dname);
      Machine m(4, quiet_config());
      m.run([sk = sk, dk = dk](Context& ctx) {
        ProcView pv = ProcView::grid1(4);
        DistArray1<double> src(ctx, pv, {23}, {sk});
        DistArray1<double> fast(ctx, pv, {23}, {dk});
        DistArray1<double> ref(ctx, pv, {23}, {dk});
        src.fill([](std::array<int, 1> g) { return 0.5 * g[0] * g[0] - 3.0; });
        redistribute(ctx, src, fast);
        redistribute_reference(ctx, src, ref);
        fast.for_each_owned([&](std::array<int, 1> g) {
          EXPECT_DOUBLE_EQ(fast.at(g), ref.at(g));
          EXPECT_DOUBLE_EQ(fast.at(g), 0.5 * g[0] * g[0] - 3.0);
        });
      });
    }
  }
}

TEST(Redistribute, PropertyBoxPathMatchesReference2D) {
  // Differential test over box-eligible 2-D layouts, including transposes
  // and grid reshapes; every combination takes the slab fast path.
  struct Layout {
    std::string name;
    ProcView pv;
    DistArray2<double>::Dists dists;
  };
  const std::vector<Layout> layouts = {
      {"rows", ProcView::grid1(4), {DimDist::block_dist(), DimDist::star()}},
      {"cols", ProcView::grid1(4), {DimDist::star(), DimDist::block_dist()}},
      {"grid22", ProcView::grid2(2, 2),
       {DimDist::block_dist(), DimDist::block_dist()}},
      {"grid41", ProcView::grid2(4, 1),
       {DimDist::block_dist(), DimDist::block_dist()}},
  };
  for (const auto& s : layouts) {
    for (const auto& d : layouts) {
      SCOPED_TRACE(s.name + " -> " + d.name);
      Machine m(4, quiet_config());
      m.run([&](Context& ctx) {
        DistArray2<double> src(ctx, s.pv, {9, 7}, s.dists);
        DistArray2<double> fast(ctx, d.pv, {9, 7}, d.dists);
        DistArray2<double> ref(ctx, d.pv, {9, 7}, d.dists);
        src.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
        redistribute(ctx, src, fast);
        redistribute_reference(ctx, src, ref);
        fast.for_each_owned([&](std::array<int, 2> g) {
          EXPECT_DOUBLE_EQ(fast.at(g), ref.at(g));
          EXPECT_DOUBLE_EQ(fast.at(g), tag2(g[0], g[1]));
        });
      });
    }
  }
}

TEST(Redistribute, StoreForwardDeterministicAcrossRuns) {
  // The hard requirement of the store-and-forward model: with 16 threads
  // racing, repeated runs of the same contended redistribution must
  // produce bit-identical per-rank clocks and wait counters — contention
  // resolution never depends on host scheduling.
  auto run_once = [] {
    MachineConfig cfg = quiet_config();
    cfg.topology = Topology::kMesh2D;
    cfg.link_contention = LinkContention::kStoreForward;
    Machine m(16, cfg);
    m.run([](Context& ctx) {
      ProcView pv = ProcView::grid1(16);
      DistArray2<double> rows(ctx, pv, {32, 32},
                              {DimDist::block_dist(), DimDist::star()});
      DistArray2<double> cols(ctx, pv, {32, 32},
                              {DimDist::star(), DimDist::block_dist()});
      rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      redistribute(ctx, rows, cols);
    });
    const MachineStats st = m.stats();
    std::vector<double> per_rank = st.clocks;
    for (const auto& c : st.per_proc) {
      per_rank.push_back(c.link_wait_time);
      per_rank.push_back(c.edge_wait_time);
      per_rank.push_back(static_cast<double>(c.contended_msgs));
    }
    per_rank.push_back(static_cast<double>(st.max_edge_load()));
    return per_rank;
  };
  const std::vector<double> first = run_once();
  // The run is genuinely contended, so the equality below exercises the
  // queueing path, not a trivial all-zeros comparison.
  double waits = 0.0;
  for (std::size_t k = 16; k + 1 < first.size(); k += 3) {
    waits += first[k + 1];
  }
  EXPECT_GT(waits, 0.0);
  for (int rep = 0; rep < 4; ++rep) {
    EXPECT_EQ(run_once(), first) << "rep " << rep;  // bit-identical
  }
}

TEST(Redistribute, LockstepMatchesScheduledAndBoundsMailbox) {
  // Lockstep round execution moves the same slabs as the scheduled order
  // (identical results on both the box and the general path) while a
  // member never runs more than a round or two ahead — so peak mailbox
  // depth stays O(1) instead of the O(P) posted slabs the one-shot issue
  // orders allow.
  const int p = 8;
  auto run_box = [&](IssueOrder order) {
    Machine m(p, quiet_config());
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray2<double> rows(ctx, pv, {16, 16},
                              {DimDist::block_dist(), DimDist::star()});
      DistArray2<double> cols(ctx, pv, {16, 16},
                              {DimDist::star(), DimDist::block_dist()});
      rows.fill([](std::array<int, 2> g) { return tag2(g[0], g[1]); });
      redistribute(ctx, rows, cols, order);
      if (ctx.rank() == 0) {
        cols.for_each_owned(
            [&](std::array<int, 2> g) { probe.push_back(cols.at(g)); });
      }
    });
    return std::pair{probe, m.stats()};
  };
  const auto [sched, st_sched] = run_box(IssueOrder::kRoundSchedule);
  const auto [lock, st_lock] = run_box(IssueOrder::kLockstep);
  EXPECT_EQ(sched, lock);
  EXPECT_EQ(st_sched.totals().msgs_sent, st_lock.totals().msgs_sent);
  EXPECT_EQ(st_sched.totals().bytes_sent, st_lock.totals().bytes_sent);
  // One partner slab per round, plus bounded lookahead from partners that
  // finished their round early — never the full p - 1 fan-in.
  EXPECT_LE(st_lock.max_mailbox_depth(), 4u);

  auto run_general = [&](IssueOrder order) {
    Machine m(p, quiet_config());
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> src(ctx, pv, {61}, {DimDist::cyclic()});
      DistArray1<double> dst(ctx, pv, {61}, {DimDist::block_cyclic(3)});
      src.fill([](std::array<int, 1> g) { return 0.5 * g[0] - 7.0; });
      redistribute(ctx, src, dst, order);
      if (ctx.rank() == 2) {
        dst.for_each_owned(
            [&](std::array<int, 1> g) { probe.push_back(dst.at(g)); });
      }
    });
    return std::pair{probe, m.stats()};
  };
  const auto [gsched, gst_sched] = run_general(IssueOrder::kRoundSchedule);
  const auto [glock, gst_lock] = run_general(IssueOrder::kLockstep);
  EXPECT_EQ(gsched, glock);
  EXPECT_EQ(gst_sched.totals().msgs_sent, gst_lock.totals().msgs_sent);
  EXPECT_LE(gst_lock.max_mailbox_depth(), 4u);
}

TEST(Redistribute, ExtentMismatchThrows) {
  Machine m(2, quiet_config());
  EXPECT_THROW(m.run([](Context& ctx) {
    ProcView pv = ProcView::grid1(2);
    DistArray1<double> a(ctx, pv, {8}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {9}, {DimDist::block_dist()});
    redistribute(ctx, a, b);
  }),
               Error);
}

}  // namespace
}  // namespace kali

#include "runtime/distribution.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(DimMap, BlockMatchesPaperLowerUpper) {
  // Paper: processor i (1-based) owns rows (i-1)n/p+1 .. in/p; 0-based:
  // c*n/p .. (c+1)*n/p - 1 when p divides n.
  DimMap m(DimDist::block_dist(), 16, 4);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(m.block_lower(c), c * 4);
    EXPECT_EQ(m.block_upper(c), c * 4 + 3);
    EXPECT_EQ(m.count(c), 4);
  }
  EXPECT_EQ(m.owner(0), 0);
  EXPECT_EQ(m.owner(15), 3);
  EXPECT_EQ(m.local(9), 1);
}

TEST(DimMap, BlockNonDividingExtent) {
  DimMap m(DimDist::block_dist(), 10, 4);  // blocks of ceil(10/4)=3
  EXPECT_EQ(m.count(0), 3);
  EXPECT_EQ(m.count(1), 3);
  EXPECT_EQ(m.count(2), 3);
  EXPECT_EQ(m.count(3), 1);
  int total = 0;
  for (int c = 0; c < 4; ++c) {
    total += m.count(c);
  }
  EXPECT_EQ(total, 10);
}

TEST(DimMap, CyclicRoundRobin) {
  DimMap m(DimDist::cyclic(), 10, 3);
  EXPECT_EQ(m.owner(0), 0);
  EXPECT_EQ(m.owner(1), 1);
  EXPECT_EQ(m.owner(2), 2);
  EXPECT_EQ(m.owner(3), 0);
  EXPECT_EQ(m.local(7), 2);  // 7 = 2*3 + 1 -> local 2 on proc 1
  EXPECT_EQ(m.count(0), 4);
  EXPECT_EQ(m.count(1), 3);
  EXPECT_EQ(m.count(2), 3);
}

TEST(DimMap, StarOwnsEverythingOnCoordZero) {
  DimMap m(DimDist::star(), 7, 1);
  for (int g = 0; g < 7; ++g) {
    EXPECT_EQ(m.owner(g), 0);
    EXPECT_EQ(m.local(g), g);
  }
  EXPECT_EQ(m.count(0), 7);
}

struct MapCase {
  DimDist dist;
  int extent;
  int nprocs;
};

class DimMapP : public ::testing::TestWithParam<std::tuple<int, int, int>> {
 protected:
  static DimMap make(const std::tuple<int, int, int>& t) {
    const auto [kind, extent, nprocs] = t;
    switch (kind) {
      case 0:
        return DimMap(DimDist::block_dist(), extent, nprocs);
      case 1:
        return DimMap(DimDist::cyclic(), extent, nprocs);
      default:
        return DimMap(DimDist::block_cyclic(3), extent, nprocs);
    }
  }
};

TEST_P(DimMapP, GlobalLocalRoundTrip) {
  DimMap m = make(GetParam());
  for (int g = 0; g < m.extent(); ++g) {
    const int c = m.owner(g);
    const int l = m.local(g);
    EXPECT_GE(c, 0);
    EXPECT_LT(c, m.nprocs());
    EXPECT_GE(l, 0);
    EXPECT_LT(l, m.count(c));
    EXPECT_EQ(m.global(c, l), g);
  }
}

TEST_P(DimMapP, CountsPartitionExtent) {
  DimMap m = make(GetParam());
  int total = 0;
  for (int c = 0; c < m.nprocs(); ++c) {
    total += m.count(c);
  }
  EXPECT_EQ(total, m.extent());
}

TEST_P(DimMapP, OwnedIndicesAreExactlyOwned) {
  DimMap m = make(GetParam());
  std::vector<bool> seen(static_cast<std::size_t>(m.extent()), false);
  for (int c = 0; c < m.nprocs(); ++c) {
    for (int g : m.owned_indices(c)) {
      EXPECT_EQ(m.owner(g), c);
      EXPECT_FALSE(seen[static_cast<std::size_t>(g)]) << "duplicate " << g;
      seen[static_cast<std::size_t>(g)] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DimMapP,
    ::testing::Combine(::testing::Values(0, 1, 2),          // kind
                       ::testing::Values(1, 7, 16, 33, 64),  // extent
                       ::testing::Values(1, 2, 3, 4, 8)));   // nprocs

TEST(DimMap, SingleOwnerRange) {
  DimMap b(DimDist::block_dist(), 16, 4);
  EXPECT_TRUE(b.single_owner_range(4, 7));
  EXPECT_FALSE(b.single_owner_range(3, 4));
  DimMap c(DimDist::cyclic(), 16, 4);
  EXPECT_TRUE(c.single_owner_range(5, 5));
  EXPECT_FALSE(c.single_owner_range(5, 6));
}

TEST(DimMap, LowerOnNonBlockThrows) {
  DimMap c(DimDist::cyclic(), 16, 4);
  EXPECT_THROW((void)c.block_lower(0), Error);
}

TEST(DimMap, OutOfRangeThrows) {
  DimMap m(DimDist::block_dist(), 8, 2);
  EXPECT_THROW((void)m.owner(8), Error);
  EXPECT_THROW((void)m.owner(-1), Error);
  EXPECT_THROW((void)m.global(0, 4), Error);
  EXPECT_THROW((void)m.count(2), Error);
}

}  // namespace
}  // namespace kali

#include "solvers/adi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "machine/context.hpp"
#include "machine/measure.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 30.0;
  return cfg;
}

struct Setup {
  DistArray2<double> u;
  DistArray2<double> f;
};

Setup make_problem(Context& ctx, const ProcView& pv, const Op2& op, int n) {
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 u(ctx, pv, {n, n}, dists, {1, 1});
  D2 f(ctx, pv, {n, n}, dists);
  const double h = 1.0 / (n + 1);
  f.fill([&](std::array<int, 2> g) {
    return rhs2(op, (g[0] + 1) * h, (g[1] + 1) * h);
  });
  return {std::move(u), std::move(f)};
}

Op2 model_op(int n) {
  Op2 op;
  op.axx = 1.0;
  op.ayy = 1.0;
  op.sigma = 0.0;
  op.hx = op.hy = 1.0 / (n + 1);
  return op;
}

class AdiP : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(AdiP, ResidualDropsMonotonicallyAndSubstantially) {
  const auto [px, py, pipelined] = GetParam();
  const int n = 32;
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op = model_op(n);
    auto [u, f] = make_problem(ctx, pv, op, n);
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    opts.pipelined = pipelined;
    double prev = adi_residual_norm(op, u, f);
    const double initial = prev;
    for (int sweep = 0; sweep < 5; ++sweep) {
      for (int it = 0; it < 10; ++it) {
        adi_iterate(opts, u, f);
      }
      const double now = adi_residual_norm(op, u, f);
      EXPECT_LT(now, prev) << "sweep " << sweep;
      prev = now;
    }
    EXPECT_LT(prev, 1e-2 * initial);
  });
}

INSTANTIATE_TEST_SUITE_P(Grids, AdiP,
                         ::testing::Values(std::tuple{1, 1, false},
                                           std::tuple{2, 2, false},
                                           std::tuple{4, 2, false},
                                           std::tuple{2, 2, true},
                                           std::tuple{4, 4, true}));

TEST(Adi, PipelinedMatchesPlainNumerically) {
  // Listing 7 and Listing 8 perform the same arithmetic per system; only
  // the schedule differs, so iterates agree to machine precision.
  const int n = 32, px = 2, py = 2, iters = 8;
  auto run = [&](bool pipelined) {
    Machine m(px * py, quiet_config());
    std::vector<double> probe;  // one processor's values
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(px, py);
      Op2 op = model_op(n);
      auto [u, f] = make_problem(ctx, pv, op, n);
      AdiOptions opts;
      opts.op = op;
      opts.tau = adi_default_tau(op, n);
      opts.pipelined = pipelined;
      for (int it = 0; it < iters; ++it) {
        adi_iterate(opts, u, f);
      }
      if (ctx.rank() == 0) {
        u.for_each_owned([&](std::array<int, 2> g) { probe.push_back(u.at(g)); });
      }
    });
    return probe;
  };
  auto a = run(false);
  auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-12);
  }
}

TEST(Adi, TransposeMatchesPlainNumerically) {
  // The transpose variant solves the same tridiagonal systems, just with a
  // local Thomas sweep after a redistribution instead of a distributed
  // substructured solve — iterates agree to solver roundoff.
  const int n = 32, px = 2, py = 2, iters = 8;
  auto run = [&](bool transpose) {
    Machine m(px * py, quiet_config());
    std::vector<double> probe;  // one processor's values
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(px, py);
      Op2 op = model_op(n);
      auto [u, f] = make_problem(ctx, pv, op, n);
      AdiOptions opts;
      opts.op = op;
      opts.tau = adi_default_tau(op, n);
      opts.transpose = transpose;
      for (int it = 0; it < iters; ++it) {
        adi_iterate(opts, u, f);
      }
      if (ctx.rank() == 0) {
        u.for_each_owned([&](std::array<int, 2> g) { probe.push_back(u.at(g)); });
      }
    });
    return probe;
  };
  auto a = run(false);
  auto b = run(true);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b[k], 1e-9);
  }
}

TEST(Adi, TransposeConverges) {
  // Residual contraction with the redistribution-based direction switch,
  // on a non-square grid to exercise uneven slab intersections.
  const int n = 24, px = 4, py = 2;
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op = model_op(n);
    auto [u, f] = make_problem(ctx, pv, op, n);
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    opts.transpose = true;
    const double initial = adi_residual_norm(op, u, f);
    for (int it = 0; it < 30; ++it) {
      adi_iterate(opts, u, f);
    }
    EXPECT_LT(adi_residual_norm(op, u, f), 1e-2 * initial);
  });
}

TEST(Adi, ConvergesToManufacturedSolution) {
  const int n = 32, px = 2, py = 2;
  Machine m(px * py, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op = model_op(n);
    auto [u, f] = make_problem(ctx, pv, op, n);
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    adi_solve(opts, u, f, 120);
    // Compare against the exact continuum solution: discretization error
    // of the 5-point scheme at this resolution is ~ h^2 ~ 1e-3.
    const double h = 1.0 / (n + 1);
    double max_err = 0.0;
    u.for_each_owned([&](std::array<int, 2> g) {
      const double e = std::abs(u.at(g) - exact2((g[0] + 1) * h, (g[1] + 1) * h));
      max_err = std::max(max_err, e);
    });
    EXPECT_LT(max_err, 5e-3);
  });
}

TEST(Adi, PipelinedIsFasterInSimulatedTime) {
  // Paper §4: "One can get better speed-ups with the pipelined version."
  const int n = 64, px = 4, py = 4, iters = 4;
  auto sim_time = [&](bool pipelined) {
    Machine m(px * py, quiet_config());
    double makespan = 0.0;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(px, py);
      Op2 op = model_op(n);
      auto [u, f] = make_problem(ctx, pv, op, n);
      AdiOptions opts;
      opts.op = op;
      opts.tau = adi_default_tau(op, n);
      opts.pipelined = pipelined;
      PhaseTimer timer(ctx, pv.group(ctx.rank()));
      for (int it = 0; it < iters; ++it) {
        adi_iterate(opts, u, f);
      }
      const double t = timer.finish().makespan;
      if (ctx.rank() == 0) {
        makespan = t;
      }
    });
    return makespan;
  };
  EXPECT_LT(sim_time(true), sim_time(false));
}

TEST(Adi, TransposeBitIdenticalUnderLinkContention) {
  // Link contention reorders nothing and drops nothing: the transpose
  // solver's iterates are bit-identical in every contention tier — ports
  // and store-and-forward alike — only the simulated clocks move.  Also
  // the headline PR 3 bugfix end to end: the three redistributions per
  // iteration must generate zero self-messages.
  const int n = 16, px = 2, py = 2, iters = 4;
  auto run = [&](LinkContention contention) {
    MachineConfig cfg = quiet_config();
    cfg.link_contention = contention;
    Machine m(px * py, cfg);
    std::vector<double> probe;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid2(px, py);
      Op2 op = model_op(n);
      auto [u, f] = make_problem(ctx, pv, op, n);
      AdiOptions opts;
      opts.op = op;
      opts.tau = adi_default_tau(op, n);
      opts.transpose = true;
      for (int it = 0; it < iters; ++it) {
        adi_iterate(opts, u, f);
      }
      if (ctx.rank() == 0) {
        u.for_each_owned([&](std::array<int, 2> g) { probe.push_back(u.at(g)); });
      }
    });
    EXPECT_EQ(m.stats().self_msgs(kTagRedistData), 0u);
    EXPECT_EQ(m.stats().self_msgs_total(), 0u);
    return std::pair{probe, m.stats().max_clock()};
  };
  const auto [a, clock_off] = run(LinkContention::kNone);
  for (LinkContention mode :
       {LinkContention::kPorts, LinkContention::kStoreForward}) {
    const auto [b, clock_on] = run(mode);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_FALSE(a.empty());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k], b[k]);  // bit-identical, not just close
    }
    EXPECT_GE(clock_on, clock_off);
  }
}

TEST(Adi, RequiresHalo) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 u(ctx, pv, {16, 16}, dists);  // no halo
    D2 f(ctx, pv, {16, 16}, dists);
    AdiOptions opts;
    adi_iterate(opts, u, f);
  }),
               Error);
}

}  // namespace
}  // namespace kali

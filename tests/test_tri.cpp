#include "kernels/tri.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/thomas.hpp"
#include "machine/context.hpp"
#include "machine/measure.hpp"
#include "runtime/io.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

struct System {
  std::vector<double> b, a, c, f, x;
};

System random_system(std::uint64_t seed, int n) {
  Rng rng(seed);
  System s;
  const auto un = static_cast<std::size_t>(n);
  s.b.assign(un, 0.0);
  s.a.assign(un, 0.0);
  s.c.assign(un, 0.0);
  s.f.assign(un, 0.0);
  s.x.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    s.b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    s.a[i] = std::abs(s.b[i]) + std::abs(s.c[i]) + rng.uniform(1.0, 2.0);
    s.f[i] = rng.uniform(-10, 10);
  }
  thomas_solve(s.b, s.a, s.c, s.f, s.x);
  return s;
}

class TriP : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TriP, MatchesSequentialThomas) {
  const auto [p, n] = GetParam();
  System s = random_system(1000u + static_cast<std::uint64_t>(p * 7 + n), n);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    tri(b, a, c, f, x);
    x.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_NEAR(x.at(g), s.x[static_cast<std::size_t>(g[0])], 1e-9)
          << "row " << g[0];
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriP,
                         ::testing::Values(std::tuple{1, 16}, std::tuple{2, 16},
                                           std::tuple{4, 16}, std::tuple{4, 64},
                                           std::tuple{8, 64}, std::tuple{8, 256},
                                           std::tuple{16, 256},
                                           std::tuple{16, 64}));

TEST(Tri, ConstCoefficientVariantMatchesGeneral) {
  const int p = 4, n = 32;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x1(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x2(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill_value(-1.0);
    a.fill_value(4.0);
    c.fill_value(-1.0);
    f.fill([](std::array<int, 1> g) { return std::sin(0.3 * g[0]); });
    tri(b, a, c, f, x1);
    tric(-1.0, 4.0, -1.0, f, x2);
    x1.for_each_owned([&](std::array<int, 1> g) {
      EXPECT_NEAR(x1.at(g), x2.at(g), 1e-12);
    });
  });
}

TEST(Tri, WorksOnViewSlice) {
  // A tridiagonal solve on a row of a 2-D array over a processor-row slice:
  // the composition used by ADI (Listing 7).
  const int p = 4, n = 16;
  Machine m(p, quiet_config());
  System s = random_system(5, n);
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(2, 2);
    DistArray2<double> F(ctx, pv, {8, n},
                         {DimDist::block_dist(), DimDist::block_dist()});
    DistArray2<double> X(ctx, pv, {8, n},
                         {DimDist::block_dist(), DimDist::block_dist()});
    F.fill([&](std::array<int, 2> g) {
      return g[0] == 5 ? s.f[static_cast<std::size_t>(g[1])] : 0.0;
    });
    auto frow = F.fix(0, 5);
    auto xrow = X.fix(0, 5);
    if (frow.participating()) {
      // Build coefficient arrays over the row's own 1-D view.
      DistArray1<double> b(ctx, frow.view(), {n}, {DimDist::block_dist()});
      DistArray1<double> a(ctx, frow.view(), {n}, {DimDist::block_dist()});
      DistArray1<double> c(ctx, frow.view(), {n}, {DimDist::block_dist()});
      b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
      a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
      c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
      tri(b, a, c, frow, xrow);
      xrow.for_each_owned([&](std::array<int, 1> g) {
        EXPECT_NEAR(xrow.at(g), s.x[static_cast<std::size_t>(g[0])], 1e-9);
      });
    }
  });
}

TEST(Tri, ActivityTraceMatchesFigure3) {
  // Reduction halves the active processors each step; substitution doubles
  // them (paper Figure 3).
  const int p = 8, n = 64;
  System s = random_system(11, n);
  Machine m(p, quiet_config());
  ActivityTrace trace(tri_trace_steps(p), p);
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    TriOptions opts;
    opts.trace = &trace;
    tri(b, a, c, f, x, opts);
  });
  // p = 8, k = 3: steps actives = 8, 4, 2, 1, 2, 4, 8.
  ASSERT_EQ(trace.nsteps(), 7);
  const int expected[] = {8, 4, 2, 1, 2, 4, 8};
  for (int sstep = 0; sstep < 7; ++sstep) {
    EXPECT_EQ(trace.active_count(sstep), expected[sstep]) << "step " << sstep;
  }
  EXPECT_EQ(trace.count(0, 'R'), 8);
  EXPECT_EQ(trace.count(3, 'T'), 1);
  EXPECT_EQ(trace.count(6, 'B'), 8);
}

TEST(Tri, SimulatedTimeBeatsGatherForLargeN) {
  // The whole point of the substructured algorithm: on a high-latency
  // machine it beats shipping the system to one node.  (Checked in the E10
  // bench too; here only the direction of the inequality.)
  const int p = 8, n = 4096;
  System s = random_system(2, n);
  auto run = [&](bool substructured) {
    Machine m(p, quiet_config());
    double makespan = 0.0;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
      b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
      a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
      c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
      f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
      PhaseTimer timer(ctx, pv.group(ctx.rank()));  // ignore setup
      if (substructured) {
        tri(b, a, c, f, x);
      } else {
        // Sequential solve on processor 0 after an explicit gather.
        auto bb = gather_global(b);
        auto aa = gather_global(a);
        auto cc = gather_global(c);
        auto ff = gather_global(f);
        if (ctx.rank() == 0) {
          std::vector<double> sol(static_cast<std::size_t>(n));
          thomas_solve(bb, aa, cc, ff, sol);
          ctx.compute(kThomasFlopsPerRow * n);
        }
      }
      const double t = timer.finish().makespan;
      if (ctx.rank() == 0) {
        makespan = t;
      }
    });
    return makespan;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(Tri, SimulatedTimeIsBitReproducible) {
  // Determinism must survive the full stack: threads race on the host, but
  // the modeled schedule may not.
  const int p = 8, n = 512;
  System s = random_system(21, n);
  auto once = [&]() {
    Machine m(p, quiet_config());
    double makespan = 0.0;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
      b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
      a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
      c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
      f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
      PhaseTimer timer(ctx, pv.group(ctx.rank()));
      tri(b, a, c, f, x);
      const double t = timer.finish().makespan;
      if (ctx.rank() == 0) {
        makespan = t;
      }
    });
    return makespan;
  };
  const double t1 = once();
  const double t2 = once();
  const double t3 = once();
  EXPECT_DOUBLE_EQ(t1, t2);
  EXPECT_DOUBLE_EQ(t2, t3);
}

TEST(Tri, RejectsNonPowerOfTwoViews) {
  Machine m(3, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(3);
    DistArray1<double> a(ctx, pv, {12}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {12}, {DimDist::block_dist()});
    a.fill_value(4.0);
    tri(a, a, a, a, x);
  }),
               Error);
}

TEST(Tri, RejectsTooFewRowsPerProcessor) {
  Machine m(4, quiet_config());
  EXPECT_THROW(m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(4);
    DistArray1<double> a(ctx, pv, {5}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {5}, {DimDist::block_dist()});
    a.fill_value(4.0);
    tri(a, a, a, a, x);  // last processor holds < 2 rows
  }),
               Error);
}

}  // namespace
}  // namespace kali

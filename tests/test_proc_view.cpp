#include "runtime/proc_view.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(ProcView, Grid1Basics) {
  ProcView v = ProcView::grid1(4);
  EXPECT_EQ(v.ndims(), 1);
  EXPECT_EQ(v.extent(0), 4);
  EXPECT_EQ(v.count(), 4);
  EXPECT_EQ(v.rank_of1(2), 2);
  EXPECT_TRUE(v.contains(3));
  EXPECT_FALSE(v.contains(4));
}

TEST(ProcView, Grid2RowMajor) {
  ProcView v = ProcView::grid2(2, 3);
  EXPECT_EQ(v.count(), 6);
  EXPECT_EQ(v.rank_of2(0, 0), 0);
  EXPECT_EQ(v.rank_of2(0, 2), 2);
  EXPECT_EQ(v.rank_of2(1, 0), 3);
  EXPECT_EQ(v.rank_of2(1, 2), 5);
  auto c = v.coord_of(4);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], 1);
  EXPECT_EQ((*c)[1], 1);
}

TEST(ProcView, Grid3Coordinates) {
  ProcView v = ProcView::grid3(2, 2, 2);
  EXPECT_EQ(v.count(), 8);
  EXPECT_EQ(v.rank_of({1, 1, 1}), 7);
  EXPECT_EQ(v.rank_of({1, 0, 1}), 5);
  auto c = v.coord_of(6);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], 1);
  EXPECT_EQ((*c)[1], 1);
  EXPECT_EQ((*c)[2], 0);
}

TEST(ProcView, FixRowProducesRowSlice) {
  // procs(ip, *): fix dim 0.
  ProcView v = ProcView::grid2(3, 4);
  ProcView row = v.fix(0, 1);
  EXPECT_EQ(row.ndims(), 1);
  EXPECT_EQ(row.extent(0), 4);
  EXPECT_EQ(row.ranks(), (std::vector<int>{4, 5, 6, 7}));
}

TEST(ProcView, FixColumnProducesStridedSlice) {
  // procs(*, jp): fix dim 1.
  ProcView v = ProcView::grid2(3, 4);
  ProcView col = v.fix(1, 2);
  EXPECT_EQ(col.ndims(), 1);
  EXPECT_EQ(col.extent(0), 3);
  EXPECT_EQ(col.ranks(), (std::vector<int>{2, 6, 10}));
  EXPECT_TRUE(col.contains(6));
  EXPECT_FALSE(col.contains(5));
  auto c = col.coord_of(10);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ((*c)[0], 2);
}

TEST(ProcView, SubRange) {
  ProcView v = ProcView::grid1(8);
  ProcView s = v.sub(0, 2, 3);
  EXPECT_EQ(s.ranks(), (std::vector<int>{2, 3, 4}));
  EXPECT_THROW((void)v.sub(0, 6, 3), Error);
}

TEST(ProcView, LinearIndexMatchesRanksOrder) {
  ProcView v = ProcView::grid2(2, 3);
  auto rks = v.ranks();
  for (std::size_t i = 0; i < rks.size(); ++i) {
    EXPECT_EQ(v.linear_index_of(rks[i]), static_cast<int>(i));
  }
}

TEST(ProcView, NestedSlicingComposes) {
  // 3-D grid; fix z then y: must land on the expected machine ranks.
  ProcView v = ProcView::grid3(2, 3, 4);
  ProcView plane = v.fix(2, 1);  // (x, y) with z=1
  EXPECT_EQ(plane.ndims(), 2);
  EXPECT_EQ(plane.rank_of2(1, 2), v.rank_of({1, 2, 1}));
  ProcView line = plane.fix(1, 0);  // x with y=0, z=1
  EXPECT_EQ(line.ndims(), 1);
  EXPECT_EQ(line.rank_of1(1), v.rank_of({1, 0, 1}));
}

TEST(ProcView, CoordRoundTripOnSlices) {
  ProcView v = ProcView::grid3(2, 3, 2).fix(1, 2);
  for (int r : v.ranks()) {
    auto c = v.coord_of(r);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(v.rank_of(*c), r);
  }
}

TEST(ProcView, FixOutOfRangeThrows) {
  ProcView v = ProcView::grid2(2, 2);
  EXPECT_THROW((void)v.fix(0, 2), Error);
  EXPECT_THROW((void)v.fix(2, 0), Error);
}

TEST(ProcView, EmptyViewContainsNothing) {
  ProcView v;
  EXPECT_EQ(v.ndims(), 0);
  EXPECT_EQ(v.count(), 0);
  EXPECT_FALSE(v.contains(0));
}

TEST(ProcView, EqualityComparesShape) {
  EXPECT_EQ(ProcView::grid2(2, 3), ProcView::grid2(2, 3));
  EXPECT_FALSE(ProcView::grid2(2, 3) == ProcView::grid2(3, 2));
  EXPECT_FALSE(ProcView::grid1(4) == ProcView::grid1(4, 1));
}

}  // namespace
}  // namespace kali

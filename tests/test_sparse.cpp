#include "solvers/sparse.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "machine/context.hpp"
#include "machine/measure.hpp"
#include "runtime/io.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 20.0;
  return cfg;
}

/// Random sparse matrix (diagonally dominant) as dense reference + row fn.
struct RandomMatrix {
  int n;
  std::vector<double> dense;  // row-major

  explicit RandomMatrix(int size, std::uint64_t seed) : n(size) {
    dense.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n), 0.0);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      double offsum = 0.0;
      const int nnz = rng.uniform_int(1, 4);
      for (int k = 0; k < nnz; ++k) {
        const int j = rng.uniform_int(0, n - 1);
        if (j == i) {
          continue;
        }
        const double v = rng.uniform(-1.0, 1.0);
        dense[static_cast<std::size_t>(i * n + j)] = v;
      }
      for (int j = 0; j < n; ++j) {
        if (j != i) {
          offsum += std::abs(dense[static_cast<std::size_t>(i * n + j)]);
        }
      }
      dense[static_cast<std::size_t>(i * n + i)] = offsum + 1.5;
    }
  }

  [[nodiscard]] SparseRowFn row_fn() const {
    return [this](int i) {
      std::vector<std::pair<int, double>> out;
      for (int j = 0; j < n; ++j) {
        const double v = dense[static_cast<std::size_t>(i * n + j)];
        if (v != 0.0) {
          out.emplace_back(j, v);
        }
      }
      return out;
    };
  }
};

/// Randomly permuted 5-point Laplacian: SPD with a genuinely irregular
/// column pattern once the grid numbering is scrambled.
struct PermutedLaplacian {
  int side;
  int n;
  std::vector<int> perm;   // grid index -> equation index
  std::vector<int> inv;

  explicit PermutedLaplacian(int grid_side, std::uint64_t seed)
      : side(grid_side), n(grid_side * grid_side),
        perm(static_cast<std::size_t>(n)), inv(static_cast<std::size_t>(n)) {
    std::iota(perm.begin(), perm.end(), 0);
    Rng rng(seed);
    for (int i = n - 1; i > 0; --i) {  // Fisher-Yates shuffle
      const int j = rng.uniform_int(0, i);
      std::swap(perm[static_cast<std::size_t>(i)], perm[static_cast<std::size_t>(j)]);
    }
    for (int i = 0; i < n; ++i) {
      inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
    }
  }

  [[nodiscard]] SparseRowFn row_fn() const {
    return [this](int row) {
      const int gi = inv[static_cast<std::size_t>(row)];  // grid cell
      const int x = gi % side, y = gi / side;
      std::vector<std::pair<int, double>> out;
      out.emplace_back(row, 4.0);
      auto add = [&](int xx, int yy) {
        if (xx >= 0 && xx < side && yy >= 0 && yy < side) {
          out.emplace_back(perm[static_cast<std::size_t>(yy * side + xx)], -1.0);
        }
      };
      add(x - 1, y);
      add(x + 1, y);
      add(x, y - 1);
      add(x, y + 1);
      return out;
    };
  }
};

class SparseP : public ::testing::TestWithParam<int> {};

TEST_P(SparseP, MultiplyMatchesDenseReference) {
  const int p = GetParam();
  const int n = 24;
  RandomMatrix mat(n, 99);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> y(ctx, pv, {n}, {DimDist::block_dist()});
    x.fill([](std::array<int, 1> g) { return std::sin(0.9 * g[0]) + 0.2; });
    DistCsrMatrix A(x, mat.row_fn());
    A.multiply(x, y);
    auto xfull = gather_all(x);
    y.for_each_owned([&](std::array<int, 1> g) {
      double expect = 0.0;
      for (int j = 0; j < n; ++j) {
        expect += mat.dense[static_cast<std::size_t>(g[0] * n + j)] *
                  xfull[static_cast<std::size_t>(j)];
      }
      EXPECT_NEAR(y.at(g), expect, 1e-12) << "row " << g[0];
    });
  });
}

INSTANTIATE_TEST_SUITE_P(Procs, SparseP, ::testing::Values(1, 2, 3, 4));

TEST(Sparse, JacobiReducesResidual) {
  const int p = 4, n = 32;
  RandomMatrix mat(n, 5);
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([](std::array<int, 1> g) { return 1.0 + 0.1 * g[0]; });
    DistCsrMatrix A(x, mat.row_fn());
    const double r0 = sparse_jacobi(A, b, x, 0);
    const double r1 = sparse_jacobi(A, b, x, 40);
    EXPECT_LT(r1, 1e-4 * r0);  // dominant matrix: Jacobi converges well
  });
}

TEST(Sparse, CgSolvesPermutedLaplacian) {
  const int p = 4, side = 8;
  PermutedLaplacian lap(side, 7);
  const int n = lap.n;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) {
      return std::cos(0.3 * lap.inv[static_cast<std::size_t>(g[0])]);
    });
    DistCsrMatrix A(x, lap.row_fn());
    const int iters = sparse_cg(A, b, x, 1e-10, 500);
    EXPECT_GT(iters, 0);
    EXPECT_LT(iters, 200);
    // Verify the residual directly.
    DistArray1<double> ax = x.clone();
    A.multiply(x, ax);
    double local = 0.0;
    ax.for_each_owned([&](std::array<int, 1> g) {
      const double r = b.at(g) - ax.at(g);
      local += r * r;
    });
    Group grp = x.group();
    EXPECT_LT(std::sqrt(allreduce_sum(ctx, grp, local)), 1e-8);
  });
}

TEST(Sparse, SolutionIndependentOfProcessorCount) {
  const int side = 6;
  PermutedLaplacian lap(side, 11);
  const int n = lap.n;
  auto solve = [&](int p) {
    Machine m(p, quiet_config());
    std::vector<double> out;
    m.run([&](Context& ctx) {
      ProcView pv = ProcView::grid1(p);
      DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
      DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
      b.fill([](std::array<int, 1> g) { return 1.0 + g[0] % 3; });
      DistCsrMatrix A(x, lap.row_fn());
      (void)sparse_cg(A, b, x, 1e-12, 500);
      auto full = gather_global(x);
      if (ctx.rank() == 0) {
        out = full;
      }
    });
    return out;
  };
  auto a = solve(1);
  auto b2 = solve(4);
  ASSERT_EQ(a.size(), b2.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_NEAR(a[k], b2[k], 1e-8);
  }
}

TEST(Sparse, ScheduleIsReusedAcrossMultiplies) {
  // Inspector once, executor many times: iteration 2..k must send exactly
  // the same (data-only) traffic as iteration 1, with no schedule messages.
  const int p = 4, side = 8;
  PermutedLaplacian lap(side, 3);
  const int n = lap.n;
  Machine m(p, quiet_config());
  std::uint64_t first = 0, second = 0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> y(ctx, pv, {n}, {DimDist::block_dist()});
    x.fill([](std::array<int, 1> g) { return 0.5 * g[0]; });
    DistCsrMatrix A(x, lap.row_fn());
    Group g = pv.group(ctx.rank());
    PhaseTimer t1(ctx, g);
    A.multiply(x, y);
    const auto s1 = t1.finish();
    PhaseTimer t2(ctx, g);
    A.multiply(x, y);
    const auto s2 = t2.finish();
    if (ctx.rank() == 0) {
      first = s1.msgs;
      second = s2.msgs;
    }
  });
  EXPECT_EQ(first, second);
  EXPECT_GT(first, 0u);
}

}  // namespace
}  // namespace kali

#include "metrics/loc_counter.hpp"

#include <gtest/gtest.h>

#include "support/check.hpp"

namespace kali {
namespace {

TEST(LocCounter, ClassifiesLines) {
  const std::string src =
      "// header comment\n"
      "\n"
      "int main() {\n"
      "  int x = 1;  // trailing comment still code\n"
      "  /* block\n"
      "     comment */\n"
      "  return x; /* inline */\n"
      "}\n";
  LocStats s = count_loc_text(src);
  EXPECT_EQ(s.total, 8);
  EXPECT_EQ(s.code, 4);     // main, x, return, closing brace
  EXPECT_EQ(s.comment, 3);  // header + 2 block lines
  EXPECT_EQ(s.blank, 1);
}

TEST(LocCounter, BlockCommentSpanningCodeLine) {
  const std::string src =
      "int a; /* start\n"
      "still comment\n"
      "end */ int b;\n";
  LocStats s = count_loc_text(src);
  EXPECT_EQ(s.code, 2);     // first and last lines contain code
  EXPECT_EQ(s.comment, 1);  // middle line
}

TEST(LocCounter, EmptyText) {
  LocStats s = count_loc_text("");
  EXPECT_EQ(s.total, 0);
  EXPECT_EQ(s.code, 0);
}

TEST(LocCounter, MissingFileThrows) {
  EXPECT_THROW((void)count_loc_file("/nonexistent/path.cpp"), Error);
}

TEST(LocCounter, CountsOwnSources) {
  // The bench binaries rely on counting the shipped solver sources.
  LocStats s = count_loc_file(std::string(KALITP_SOURCE_DIR) +
                              "/src/solvers/jacobi_kf1.cpp");
  EXPECT_GT(s.code, 10);
  EXPECT_GT(s.comment, 0);
}

}  // namespace
}  // namespace kali

#include "machine/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "machine/context.hpp"
#include "runtime/proc_view.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

Group whole_machine(Context& ctx) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Group(std::move(ranks), ctx.rank());
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BroadcastReachesAllMembers) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<double> data(5, ctx.rank() == 2 % p ? 3.5 : 0.0);
    broadcast(ctx, g, 2 % p, std::span<double>(data));
    for (double v : data) {
      EXPECT_DOUBLE_EQ(v, 3.5);
    }
  });
}

TEST_P(CollectivesP, AllreduceSumMatchesClosedForm) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    const int total = allreduce_sum(ctx, whole_machine(ctx), ctx.rank() + 1);
    EXPECT_EQ(total, p * (p + 1) / 2);
  });
}

TEST_P(CollectivesP, AllreduceMax) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    const double v = allreduce_max(ctx, whole_machine(ctx),
                                   static_cast<double>(ctx.rank()));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(p - 1));
  });
}

TEST_P(CollectivesP, ReduceOnlyRootHoldsResult) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<int> data{ctx.rank(), 1};
    reduce(ctx, g, 0, std::span<int>(data), [](int a, int b) { return a + b; });
    if (g.index() == 0) {
      EXPECT_EQ(data[0], p * (p - 1) / 2);
      EXPECT_EQ(data[1], p);
    }
  });
}

TEST_P(CollectivesP, GatherConcatenatesInGroupOrder) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    // Member i contributes i+1 copies of its rank.
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    auto all = gather(ctx, g, 0, std::span<const int>(mine));
    if (g.index() == 0) {
      std::vector<int> expect;
      for (int i = 0; i < p; ++i) {
        expect.insert(expect.end(), static_cast<std::size_t>(i + 1), i);
      }
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesP, AllGatherConcatenatesEverywhere) {
  const int p = GetParam();
  MachineConfig cfg = quiet_config();
  cfg.allgather_tree_max_bytes = 0;  // pin the dense pairwise algorithm
  Machine m(p, cfg);
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    // Member i contributes i+1 copies of its rank — variable lengths, no
    // counts on the wire.
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    auto all = all_gather(ctx, g, std::span<const int>(mine));
    std::vector<int> expect;
    for (int i = 0; i < p; ++i) {
      expect.insert(expect.end(), static_cast<std::size_t>(i + 1), i);
    }
    EXPECT_EQ(all, expect);  // every member, not just a root
  });
  // A dense pairwise exchange: p(p-1) messages, none of them self-sends.
  EXPECT_EQ(m.stats().totals().msgs_sent,
            static_cast<std::uint64_t>(p) * static_cast<std::uint64_t>(p - 1));
  EXPECT_EQ(m.stats().self_msgs_total(), 0u);
}

TEST(Collectives, AllGatherIssueOrdersAgree) {
  // Round schedule, naive peer order, and lockstep move the same payloads:
  // identical results (only clocks may differ under contention).
  for (IssueOrder order : {IssueOrder::kRoundSchedule, IssueOrder::kPeerOrder,
                           IssueOrder::kLockstep}) {
    SCOPED_TRACE(static_cast<int>(order));
    MachineConfig cfg = quiet_config();
    cfg.link_contention = LinkContention::kPorts;
    cfg.allgather_tree_max_bytes = 0;  // the orders govern the dense path
    Machine m(6, cfg);
    m.run([&](Context& ctx) {
      Group g = whole_machine(ctx);
      std::vector<double> mine(3, 1.5 * ctx.rank());
      auto all = all_gather(ctx, g, std::span<const double>(mine), order);
      ASSERT_EQ(all.size(), 18u);
      for (int i = 0; i < 6; ++i) {
        for (int k = 0; k < 3; ++k) {
          EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(3 * i + k)], 1.5 * i);
        }
      }
    });
  }
}

TEST(Collectives, AllGatherOverStridedColumnViews) {
  // Independent all_gathers on the strided column slices of a 2-D grid,
  // running concurrently (the schedule communicator is the sorted member
  // set, not a dense rank prefix).
  Machine m(6, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(3, 2);  // columns {0,2,4} and {1,3,5}
    const auto coord = *pv.coord_of(ctx.rank());
    Group g = pv.fix(1, coord[1]).group(ctx.rank());
    std::vector<int> mine{ctx.rank()};
    auto all = all_gather(ctx, g, std::span<const int>(mine));
    // Column jp holds ranks jp, jp+2, jp+4 in group order.
    EXPECT_EQ(all, (std::vector<int>{coord[1], coord[1] + 2, coord[1] + 4}));
  });
}

TEST(Collectives, HybridAllGatherTreeMatchesDenseForTinyPayloads) {
  // Below the crossover the hybrid rides the gather+broadcast tree:
  // identical concatenation with O(p) messages instead of the dense
  // exchange's p(p-1), and correspondingly less aggregate send/recv
  // overhead burned across the machine.  (The dense path keeps the
  // better *makespan* in this model — its single overlapped latency
  // beats the tree's chained levels — the tree trades critical path
  // for quadratically less network load.)
  const int p = 8;
  auto run = [&](std::size_t cutoff, std::uint64_t* msgs, double* overhead) {
    MachineConfig cfg = quiet_config();
    cfg.allgather_tree_max_bytes = cutoff;
    Machine m(p, cfg);
    std::vector<int> result;
    m.run([&](Context& ctx) {
      Group g = whole_machine(ctx);
      // Variable lengths to exercise the tree's count plumbing.
      std::vector<int> mine(static_cast<std::size_t>(ctx.rank() % 3 + 1),
                            ctx.rank());
      auto all = all_gather(ctx, g, std::span<const int>(mine));
      if (ctx.rank() == 0) {
        result = all;
      }
    });
    *msgs = m.stats().totals().msgs_sent;
    *overhead = m.stats().totals().overhead_time;
    EXPECT_EQ(m.stats().self_msgs_total(), 0u);
    return result;
  };
  std::uint64_t tree_msgs = 0, dense_msgs = 0;
  double tree_overhead = 0, dense_overhead = 0;
  const auto tree = run(1024, &tree_msgs, &tree_overhead);
  const auto dense = run(0, &dense_msgs, &dense_overhead);
  EXPECT_EQ(tree, dense);  // same concatenation, whichever algorithm
  EXPECT_LT(tree_msgs, dense_msgs);
  EXPECT_LT(tree_overhead, dense_overhead);
}

TEST(Collectives, HybridAllGatherKeepsDensePathForLargePayloads) {
  // Above the crossover the dense pairwise exchange must run: p(p-1)
  // payload messages, plus the size-agreement allreduce's 2(p-1) scalars.
  const int p = 8;
  MachineConfig cfg = quiet_config();  // default crossover (1024 bytes)
  Machine m(p, cfg);
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<double> mine(300, 1.0 * ctx.rank());  // 2400 B > crossover
    auto all = all_gather(ctx, g, std::span<const double>(mine));
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p) * 300);
    for (int i = 0; i < p; ++i) {
      EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i) * 300], 1.0 * i);
    }
  });
  const auto expected = static_cast<std::uint64_t>(p) *
                            static_cast<std::uint64_t>(p - 1) +
                        2u * static_cast<std::uint64_t>(p - 1);
  EXPECT_EQ(m.stats().totals().msgs_sent, expected);
  EXPECT_EQ(m.stats().self_msgs_total(), 0u);
}

TEST_P(CollectivesP, BarrierCompletes) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    for (int round = 0; round < 3; ++round) {
      barrier(ctx, g);
    }
  });
  SUCCEED();
}

TEST_P(CollectivesP, SyncClocksAlignsToMax) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ctx.compute(1000.0 * (ctx.rank() + 1));
    const double t = sync_clocks(ctx, whole_machine(ctx));
    EXPECT_DOUBLE_EQ(t, ctx.clock());
  });
  // After sync, no processor's clock may be below the pre-sync max.
  const double pre_max = 1000.0 * p * m.config().flop_time;
  for (double c : m.stats().clocks) {
    EXPECT_GE(c, pre_max);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, SubgroupDoesNotDisturbOutsiders) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() < 2) {
      Group g({0, 1}, ctx.rank());
      EXPECT_EQ(allreduce_sum(ctx, g, 10), 20);
    }
    // Ranks 2,3 do nothing; run must still terminate cleanly.
  });
}

TEST(Collectives, WorkOverStridedColumnViews) {
  // The ADI/mg3 pattern: independent collectives on the strided column
  // slices procs(*, jp) of a 2-D grid, running concurrently.
  Machine m(6, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(3, 2);  // columns {0,2,4} and {1,3,5}
    const auto coord = *pv.coord_of(ctx.rank());
    ProcView col = pv.fix(1, coord[1]);
    Group g = col.group(ctx.rank());
    EXPECT_EQ(g.size(), 3);
    const int sum = allreduce_sum(ctx, g, ctx.rank());
    // Column jp holds ranks jp, jp+2, jp+4.
    EXPECT_EQ(sum, 3 * coord[1] + 6);
    std::vector<double> data{static_cast<double>(ctx.rank())};
    broadcast(ctx, g, 0, std::span<double>(data));
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(coord[1]));
  });
}

TEST(Collectives, NonMemberConstructionThrows) {
  EXPECT_THROW(Group({0, 1}, 5), Error);
}

TEST(Collectives, GatherWorksForEveryRoot) {
  const int p = 7;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    for (int root = 0; root < p; ++root) {
      std::vector<int> mine(static_cast<std::size_t>(ctx.rank() % 3),
                            10 * ctx.rank());
      auto all = gather(ctx, g, root, std::span<const int>(mine));
      if (g.index() == root) {
        std::vector<int> expect;
        for (int i = 0; i < p; ++i) {
          expect.insert(expect.end(), static_cast<std::size_t>(i % 3), 10 * i);
        }
        EXPECT_EQ(all, expect);
      } else {
        EXPECT_TRUE(all.empty());
      }
    }
  });
}

TEST(Collectives, GatherDrainsChildrenThroughTree) {
  // The root must not pay P - 1 serial receives: contributions aggregate
  // up the binary tree, every non-root member forwarding exactly one
  // counts message and one payload message, so the root receives at most
  // two message pairs however large the group.
  const int p = 16;
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<double> mine(4, 1.0 * ctx.rank());
    (void)gather(ctx, g, 0, std::span<const double>(mine));
  });
  const MachineStats st = m.stats();
  EXPECT_EQ(st.per_proc[0].msgs_recv, 4u);  // 2 children x (counts + data)
  EXPECT_EQ(st.totals().msgs_sent, static_cast<std::uint64_t>(2 * (p - 1)));
}

TEST(Collectives, SyncClocksDoesNotLeakLinkStateAcrossPhases) {
  // The regression the barrier fix pins down: a contended phase *before*
  // sync_clocks (and the barrier's own traffic) must not change what a
  // measured phase after it reports — under the port model and the
  // store-and-forward model alike.
  for (LinkContention mode :
       {LinkContention::kPorts, LinkContention::kStoreForward}) {
    SCOPED_TRACE(static_cast<int>(mode));
    auto measured_phase = [&](bool noisy_prelude) {
      MachineConfig cfg;
      cfg.recv_timeout_wall = 10.0;
      cfg.topology = Topology::kHypercube;
      cfg.link_contention = mode;
      Machine m(8, cfg);
      std::vector<double> waits(8, 0.0);
      std::vector<double> spans(8, 0.0);
      m.run([&](Context& ctx) {
        Group g = whole_machine(ctx);
        std::vector<double> v(2000, 1.0);
        auto hot_exchange = [&] {
          // Everyone floods rank 0 — heavy port and edge queueing.
          if (ctx.rank() != 0) {
            ctx.send_span<double>(0, 5, v);
          } else {
            for (int s = 1; s < ctx.nprocs(); ++s) {
              (void)ctx.recv_vec<double>(s, 5);
            }
          }
        };
        if (noisy_prelude) {
          hot_exchange();
        }
        const double aligned = sync_clocks(ctx, g);
        const ProcCounters before = ctx.proc().counters();
        hot_exchange();
        const auto r = static_cast<std::size_t>(ctx.rank());
        waits[r] = (ctx.proc().counters().link_wait_time -
                    before.link_wait_time) +
                   (ctx.proc().counters().edge_wait_time -
                    before.edge_wait_time);
        spans[r] = ctx.clock() - aligned;
      });
      return std::pair{waits, spans};
    };
    const auto [w_clean, s_clean] = measured_phase(false);
    const auto [w_noisy, s_noisy] = measured_phase(true);
    for (std::size_t r = 0; r < w_clean.size(); ++r) {
      EXPECT_NEAR(w_noisy[r], w_clean[r], 1e-9) << "rank " << r;
      EXPECT_NEAR(s_noisy[r], s_clean[r], 1e-9) << "rank " << r;
    }
    // The phase itself is genuinely contended — the equality above is not
    // comparing zeros.
    double total = 0.0;
    for (double w : w_clean) {
      total += w;
    }
    EXPECT_GT(total, 0.0);
  }
}

TEST(Collectives, SyncClocksChargesNoPhantomWaitToStraddlingMessages) {
  // A message sent before the barrier and received after it crosses an
  // otherwise idle link: resetting the port clocks at the barrier must not
  // manufacture queueing against it.
#if defined(KALI_CHECK_INVARIANTS)
  GTEST_SKIP() << "straddling sync_clocks is rejected under "
                  "KALI_CHECK_INVARIANTS (see test_invariants.cpp); this "
                  "test pins the release-mode cost accounting";
#endif
  for (LinkContention mode :
       {LinkContention::kPorts, LinkContention::kStoreForward}) {
    SCOPED_TRACE(static_cast<int>(mode));
    MachineConfig cfg;
    cfg.recv_timeout_wall = 10.0;
    cfg.link_contention = mode;
    Machine m(4, cfg);
    m.run([](Context& ctx) {
      Group g = whole_machine(ctx);
      if (ctx.rank() == 3) {
        ctx.send<int>(2, 5, 42);   // in flight across the barrier
        ctx.compute(1.0e6);        // push the aligned clock far past it
      }
      sync_clocks(ctx, g);
      if (ctx.rank() == 2) {
        EXPECT_EQ(ctx.recv<int>(3, 5), 42);
      }
    });
    EXPECT_EQ(m.stats().contended_msgs(), 0u);
    EXPECT_DOUBLE_EQ(m.stats().link_wait_time(), 0.0);
    EXPECT_DOUBLE_EQ(m.stats().edge_wait_time(), 0.0);
  }
}

TEST(Collectives, DisjointSubgroupsRunConcurrently) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    const bool low = ctx.rank() < 2;
    Group g(low ? std::vector<int>{0, 1} : std::vector<int>{2, 3}, ctx.rank());
    const int sum = allreduce_sum(ctx, g, ctx.rank());
    EXPECT_EQ(sum, low ? 1 : 5);
  });
}

}  // namespace
}  // namespace kali

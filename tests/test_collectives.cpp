#include "machine/collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "machine/context.hpp"
#include "runtime/proc_view.hpp"

namespace kali {
namespace {

MachineConfig quiet_config() {
  MachineConfig cfg;
  cfg.recv_timeout_wall = 10.0;
  return cfg;
}

Group whole_machine(Context& ctx) {
  std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Group(std::move(ranks), ctx.rank());
}

class CollectivesP : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesP, BroadcastReachesAllMembers) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<double> data(5, ctx.rank() == 2 % p ? 3.5 : 0.0);
    broadcast(ctx, g, 2 % p, std::span<double>(data));
    for (double v : data) {
      EXPECT_DOUBLE_EQ(v, 3.5);
    }
  });
}

TEST_P(CollectivesP, AllreduceSumMatchesClosedForm) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    const int total = allreduce_sum(ctx, whole_machine(ctx), ctx.rank() + 1);
    EXPECT_EQ(total, p * (p + 1) / 2);
  });
}

TEST_P(CollectivesP, AllreduceMax) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    const double v = allreduce_max(ctx, whole_machine(ctx),
                                   static_cast<double>(ctx.rank()));
    EXPECT_DOUBLE_EQ(v, static_cast<double>(p - 1));
  });
}

TEST_P(CollectivesP, ReduceOnlyRootHoldsResult) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    std::vector<int> data{ctx.rank(), 1};
    reduce(ctx, g, 0, std::span<int>(data), [](int a, int b) { return a + b; });
    if (g.index() == 0) {
      EXPECT_EQ(data[0], p * (p - 1) / 2);
      EXPECT_EQ(data[1], p);
    }
  });
}

TEST_P(CollectivesP, GatherConcatenatesInGroupOrder) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    // Member i contributes i+1 copies of its rank.
    std::vector<int> mine(static_cast<std::size_t>(ctx.rank() + 1), ctx.rank());
    auto all = gather(ctx, g, 0, std::span<const int>(mine));
    if (g.index() == 0) {
      std::vector<int> expect;
      for (int i = 0; i < p; ++i) {
        expect.insert(expect.end(), static_cast<std::size_t>(i + 1), i);
      }
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CollectivesP, BarrierCompletes) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    Group g = whole_machine(ctx);
    for (int round = 0; round < 3; ++round) {
      barrier(ctx, g);
    }
  });
  SUCCEED();
}

TEST_P(CollectivesP, SyncClocksAlignsToMax) {
  const int p = GetParam();
  Machine m(p, quiet_config());
  m.run([&](Context& ctx) {
    ctx.compute(1000.0 * (ctx.rank() + 1));
    const double t = sync_clocks(ctx, whole_machine(ctx));
    EXPECT_DOUBLE_EQ(t, ctx.clock());
  });
  // After sync, no processor's clock may be below the pre-sync max.
  const double pre_max = 1000.0 * p * m.config().flop_time;
  for (double c : m.stats().clocks) {
    EXPECT_GE(c, pre_max);
  }
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectivesP,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST(Collectives, SubgroupDoesNotDisturbOutsiders) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    if (ctx.rank() < 2) {
      Group g({0, 1}, ctx.rank());
      EXPECT_EQ(allreduce_sum(ctx, g, 10), 20);
    }
    // Ranks 2,3 do nothing; run must still terminate cleanly.
  });
}

TEST(Collectives, WorkOverStridedColumnViews) {
  // The ADI/mg3 pattern: independent collectives on the strided column
  // slices procs(*, jp) of a 2-D grid, running concurrently.
  Machine m(6, quiet_config());
  m.run([](Context& ctx) {
    ProcView pv = ProcView::grid2(3, 2);  // columns {0,2,4} and {1,3,5}
    const auto coord = *pv.coord_of(ctx.rank());
    ProcView col = pv.fix(1, coord[1]);
    Group g = col.group(ctx.rank());
    EXPECT_EQ(g.size(), 3);
    const int sum = allreduce_sum(ctx, g, ctx.rank());
    // Column jp holds ranks jp, jp+2, jp+4.
    EXPECT_EQ(sum, 3 * coord[1] + 6);
    std::vector<double> data{static_cast<double>(ctx.rank())};
    broadcast(ctx, g, 0, std::span<double>(data));
    EXPECT_DOUBLE_EQ(data[0], static_cast<double>(coord[1]));
  });
}

TEST(Collectives, NonMemberConstructionThrows) {
  EXPECT_THROW(Group({0, 1}, 5), Error);
}

TEST(Collectives, DisjointSubgroupsRunConcurrently) {
  Machine m(4, quiet_config());
  m.run([](Context& ctx) {
    const bool low = ctx.rank() < 2;
    Group g(low ? std::vector<int>{0, 1} : std::vector<int>{2, 3}, ctx.rank());
    const int sum = allreduce_sum(ctx, g, ctx.rank());
    EXPECT_EQ(sum, low ? 1 : 5);
  });
}

}  // namespace
}  // namespace kali

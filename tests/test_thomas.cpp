#include "kernels/thomas.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

// Dense residual check: ||A x - f||_inf.
double residual_inf(std::span<const double> b, std::span<const double> a,
                    std::span<const double> c, std::span<const double> f,
                    std::span<const double> x) {
  const std::size_t n = a.size();
  double r = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = a[i] * x[i];
    if (i > 0) {
      ax += b[i] * x[i - 1];
    }
    if (i + 1 < n) {
      ax += c[i] * x[i + 1];
    }
    r = std::max(r, std::abs(ax - f[i]));
  }
  return r;
}

void random_dominant_system(Rng& rng, std::size_t n, std::vector<double>& b,
                            std::vector<double>& a, std::vector<double>& c,
                            std::vector<double>& f) {
  b.assign(n, 0.0);
  a.assign(n, 0.0);
  c.assign(n, 0.0);
  f.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = i == 0 ? 0.0 : rng.uniform(-1.0, 1.0);
    c[i] = i + 1 == n ? 0.0 : rng.uniform(-1.0, 1.0);
    a[i] = std::abs(b[i]) + std::abs(c[i]) + rng.uniform(1.0, 2.0);
    f[i] = rng.uniform(-10.0, 10.0);
  }
}

TEST(Thomas, SolvesIdentity) {
  std::vector<double> b{0, 0, 0}, a{1, 1, 1}, c{0, 0, 0}, f{3, -1, 2}, x(3);
  thomas_solve(b, a, c, f, x);
  EXPECT_DOUBLE_EQ(x[0], 3.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_DOUBLE_EQ(x[2], 2.0);
}

TEST(Thomas, SolvesKnownLaplacianSystem) {
  // -x_{i-1} + 2 x_i - x_{i+1} = h^2, Dirichlet -> parabola.
  const int n = 15;
  std::vector<double> b(n, -1.0), a(n, 2.0), c(n, -1.0), f(n, 1.0), x(n);
  thomas_solve(b, a, c, f, x);
  // Exact solution of the discrete problem: x_i = (i+1)(n-i)/2.
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], 0.5 * (i + 1) * (n - i), 1e-10);
  }
}

class ThomasP : public ::testing::TestWithParam<int> {};

TEST_P(ThomasP, RandomDominantSystemsHaveTinyResidual) {
  const auto n = static_cast<std::size_t>(GetParam());
  Rng rng(1234 + n);
  for (int rep = 0; rep < 5; ++rep) {
    std::vector<double> b, a, c, f, x(n);
    random_dominant_system(rng, n, b, a, c, f);
    thomas_solve(b, a, c, f, x);
    EXPECT_LT(residual_inf(b, a, c, f, x), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThomasP, ::testing::Values(1, 2, 3, 5, 16, 64, 257));

TEST(Thomas, ConstCoefficientMatchesGeneral) {
  const std::size_t n = 20;
  std::vector<double> f(n), x1(n), x2(n);
  Rng rng(9);
  for (auto& v : f) {
    v = rng.uniform(-1, 1);
  }
  thomas_solve_const(-1.0, 4.0, -1.0, f, x1);
  std::vector<double> b(n, -1.0), a(n, 4.0), c(n, -1.0);
  thomas_solve(b, a, c, f, x2);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(x1[i], x2[i]);
  }
}

TEST(Thomas, StridedVariantMatchesContiguous) {
  const int n = 10;
  std::vector<double> packed(static_cast<std::size_t>(3 * n));
  Rng rng(5);
  std::vector<double> b(n), a(n), c(n), f(n), x(n);
  for (int i = 0; i < n; ++i) {
    const auto u = static_cast<std::size_t>(i);
    b[u] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    c[u] = i == n - 1 ? 0.0 : rng.uniform(-1, 1);
    a[u] = 3.0 + std::abs(b[u]) + std::abs(c[u]);
    f[u] = rng.uniform(-5, 5);
    packed[static_cast<std::size_t>(3 * i)] = f[u];
  }
  thomas_solve(b, a, c, f, x);
  std::vector<double> xs(static_cast<std::size_t>(3 * n));
  thomas_solve_strided({b.data(), 1, n}, {a.data(), 1, n}, {c.data(), 1, n},
                       {packed.data(), 3, n}, {xs.data(), 3, n});
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xs[static_cast<std::size_t>(3 * i)],
                x[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Thomas, SizeMismatchThrows) {
  std::vector<double> b(3), a(4), c(4), f(4), x(4);
  EXPECT_THROW(thomas_solve(b, a, c, f, x), Error);
}

TEST(Thomas, ZeroPivotThrows) {
  std::vector<double> b{0, 1}, a{0, 1}, c{1, 0}, f{1, 1}, x(2);
  EXPECT_THROW(thomas_solve(b, a, c, f, x), Error);
}

}  // namespace
}  // namespace kali

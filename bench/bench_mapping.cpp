// E3 — Figure 5: mapping of the data-flow graph onto the processor array.
//
// Renders the step-by-processor activity matrix of the substructured solver
// under the fold/unshuffle mapping: one tridiagonal solve (the Figure 5
// shape), then a pipelined multi-system run showing how the mapping keeps
// processors busy when systems are staggered (the reason the paper gives
// for choosing it).
//
// Legend:  R local reduction   r 4-row merge   T root Thomas solve
//          b substitution      B local substitution   . idle
#include <iostream>

#include "bench_common.hpp"
#include "kernels/mtri.hpp"
#include "kernels/tri.hpp"

namespace kali {
namespace {

void single_system(int p, int n) {
  ActivityTrace trace(tri_trace_steps(p), p);
  Machine m(p, bench::config_1989());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    f.fill([](std::array<int, 1> g) { return 1.0 + 0.01 * g[0]; });
    TriOptions opts;
    opts.trace = &trace;
    tric(-1.0, 4.0, -1.0, f, x, opts);
  });
  std::vector<std::string> labels;
  const int k = (trace.nsteps() - 1) / 2;
  for (int q = 0; q < trace.nsteps(); ++q) {
    if (q == 0) {
      labels.push_back("reduce local");
    } else if (q < k) {
      labels.push_back("merge lvl " + std::to_string(q + 1));
    } else if (q == k) {
      labels.push_back("thomas root");
    } else if (q < 2 * k) {
      labels.push_back("subst lvl " + std::to_string(2 * k - q + 1));
    } else {
      labels.push_back("subst local");
    }
  }
  std::cout << trace.render(labels) << "\n";
}

void pipelined_systems(int p, int nsys, int n) {
  ActivityTrace trace(mtri_trace_steps(nsys, p), p);
  Machine m(p, bench::config_1989());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 F(ctx, pv, {nsys, n}, dists), X(ctx, pv, {nsys, n}, dists);
    F.fill([](std::array<int, 2> g) { return 1.0 + 0.01 * g[1] + 0.1 * g[0]; });
    MtriOptions opts;
    opts.trace = &trace;
    mtri_const(-1.0, 4.0, -1.0, F, X, 0, opts);
  });
  std::vector<std::string> labels;
  for (int q = 0; q < trace.nsteps(); ++q) {
    labels.push_back("global step " + std::to_string(q));
  }
  std::cout << trace.render(labels) << "\n";
  Table t({"global step", "active procs"});
  for (int q = 0; q < trace.nsteps(); ++q) {
    t.add_row({std::to_string(q), std::to_string(trace.active_count(q))});
  }
  t.print(std::cout);
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E3", "Shuffle/unshuffle mapping of the data-flow graph",
                "Figure 5 (and its pipelined use, Listing 6)");

  std::cout << "--- single solve, p = 8 (Figure 5 proper) ---\n";
  single_system(8, 256);

  std::cout << "--- pipelined, 6 systems, p = 8: the idle triangle fills ---\n";
  pipelined_systems(8, 6, 256);

  std::cout << "\npaper claim: this mapping \"is advantageous when there are\n"
            << "multiple tridiagonal systems to be solved\" — with systems\n"
            << "staggered one step apart, nearly every processor is busy at\n"
            << "every interior step (compare the single-solve triangle).\n";
  return 0;
}

// E12 (extension) — §6: "more complex problems, such as those involving
// adaptive or irregular grids and general sparse matrices.  We are
// addressing these issues in the Kali project as well" (refs [2], [17]).
//
// Measures the inspector/executor economics on a randomly renumbered
// 2-D Laplacian (an irregular column pattern by construction):
//   (a) inspector amortization: assembly+schedule cost vs per-multiply cost;
//   (b) locality sensitivity: natural vs scrambled numbering under the same
//       code — the data-distribution story of the paper carried to
//       irregular problems.
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "solvers/sparse.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

struct Numbering {
  int side;
  int n;
  std::vector<int> perm, inv;

  Numbering(int grid_side, bool scrambled) : side(grid_side), n(side * side) {
    perm.resize(static_cast<std::size_t>(n));
    inv.resize(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    if (scrambled) {
      Rng rng(17);
      for (int i = n - 1; i > 0; --i) {
        const int j = rng.uniform_int(0, i);
        std::swap(perm[static_cast<std::size_t>(i)],
                  perm[static_cast<std::size_t>(j)]);
      }
    }
    for (int i = 0; i < n; ++i) {
      inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
    }
  }

  [[nodiscard]] SparseRowFn row_fn() const {
    return [this](int row) {
      const int gi = inv[static_cast<std::size_t>(row)];
      const int x = gi % side, y = gi / side;
      std::vector<std::pair<int, double>> out;
      out.emplace_back(row, 4.0);
      auto add = [&](int xx, int yy) {
        if (xx >= 0 && xx < side && yy >= 0 && yy < side) {
          out.emplace_back(perm[static_cast<std::size_t>(yy * side + xx)], -1.0);
        }
      };
      add(x - 1, y);
      add(x + 1, y);
      add(x, y - 1);
      add(x, y + 1);
      return out;
    };
  }
};

struct Outcome {
  double build_time;
  double multiply_time;
  std::uint64_t multiply_msgs;
  std::uint64_t multiply_bytes;
  int cg_iters;
  double cg_time;
};

Outcome run(int p, int side, bool scrambled) {
  Numbering num(side, scrambled);
  const int n = num.n;
  Machine m(p, bench::config_1989());
  Outcome out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    Group g = pv.group(ctx.rank());
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> y(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([](std::array<int, 1> gi) { return 1.0 + gi[0] % 5; });

    PhaseTimer tb(ctx, g);
    DistCsrMatrix A(x, num.row_fn());
    const double build = tb.finish().makespan;

    x.fill([](std::array<int, 1> gi) { return 0.1 * gi[0]; });
    PhaseTimer tm(ctx, g);
    A.multiply(x, y);
    const PhaseStats sm = tm.finish();

    x.fill_value(0.0);
    PhaseTimer tc(ctx, g);
    const int iters = sparse_cg(A, b, x, 1e-8, 1000);
    const double cg_time = tc.finish().makespan;

    if (ctx.rank() == 0) {
      out.build_time = build;
      out.multiply_time = sm.makespan;
      out.multiply_msgs = sm.msgs;
      out.multiply_bytes = sm.bytes;
      out.cg_iters = iters;
      out.cg_time = cg_time;
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E12", "Irregular sparse matrices via inspector/executor",
                "section 6 future work (Kali refs [2], [17])");

  Table t({"numbering", "p", "inspector+assembly", "one multiply",
           "msgs/multiply", "bytes/multiply", "CG iters", "CG time"});
  const int side = 24;  // 576 unknowns
  for (bool scrambled : {false, true}) {
    for (int p : {2, 4, 8}) {
      const Outcome o = run(p, side, scrambled);
      t.add_row({scrambled ? "scrambled" : "natural", std::to_string(p),
                 fmt_time(o.build_time), fmt_time(o.multiply_time),
                 std::to_string(o.multiply_msgs),
                 std::to_string(o.multiply_bytes), std::to_string(o.cg_iters),
                 fmt_time(o.cg_time)});
    }
  }
  t.print(std::cout);
  std::cout
      << "\nshape check: the inspector pays once (column ~ a few multiplies)\n"
      << "and every CG iteration replays the schedule; scrambling the\n"
      << "numbering multiplies the gather volume — the locality story that\n"
      << "motivates distribution control, now for irregular problems.\n";
  return 0;
}

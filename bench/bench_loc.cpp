// E7 — the §6 claim: "The message passing version of a program is often
// five to ten times longer than the sequential version."
//
// Measures our own three Jacobi variants exactly as the claim is phrased:
// code lines (blanks and comments excluded).  The KF1 version is the
// paper's remedy — it should sit near the sequential length.
#include <iostream>

#include "bench_common.hpp"
#include "metrics/loc_counter.hpp"

int main() {
  using namespace kali;
  bench::header("E7", "Source length: sequential vs KF1 vs message passing",
                "section 6 code-length claim");

  const std::string root = KALITP_SOURCE_DIR;
  struct Entry {
    const char* label;
    const char* path;
  };
  const Entry entries[] = {
      {"jacobi sequential (Listing 1)", "/src/solvers/jacobi_seq.cpp"},
      {"jacobi KF1 (Listing 3)", "/src/solvers/jacobi_kf1.cpp"},
      {"jacobi message passing (Listing 2)", "/src/solvers/jacobi_mp.cpp"},
  };

  const LocStats seq = count_loc_file(root + entries[0].path);
  Table t({"variant", "code lines", "comment", "blank", "vs sequential"});
  for (const auto& e : entries) {
    const LocStats s = count_loc_file(root + e.path);
    t.add_row({e.label, std::to_string(s.code), std::to_string(s.comment),
               std::to_string(s.blank),
               fmt(static_cast<double>(s.code) / seq.code, 2)});
  }
  t.print(std::cout);

  // The same comparison for the tridiagonal kernel: sequential Thomas vs
  // the full distributed substructured solver (the machinery a programmer
  // would otherwise write by hand).
  const LocStats thomas = count_loc_file(root + "/src/kernels/thomas.cpp");
  const LocStats tri = count_loc_file(root + "/src/kernels/tri.cpp");
  const LocStats pipe = count_loc_file(root + "/src/kernels/tri_pipeline.cpp");
  Table t2({"kernel", "code lines", "vs sequential"});
  t2.add_row({"Thomas (sequential)", std::to_string(thomas.code), "1.00"});
  t2.add_row({"substructured tri + pipeline (hand-parallel equivalent)",
              std::to_string(tri.code + pipe.code),
              fmt(static_cast<double>(tri.code + pipe.code) / thomas.code, 2)});
  t2.print(std::cout);

  std::cout << "\npaper band: message passing is 5-10x the sequential length\n"
            << "for whole programs; our node-program translation of Listing 2\n"
            << "shows the same direction (the KF1 version stays near 1x), and\n"
            << "the kernel comparison shows where the factor comes from: the\n"
            << "tree communication a KF1 user never writes.\n";
  return 0;
}

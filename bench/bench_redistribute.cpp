// E10 — redistribution engine: analytic slab intersection vs the original
// all-pairs {index, value} packet protocol, plus the link-contention sweeps:
// round-structured schedule vs naive per-peer issue order.
//
// Measures, on the modeled 1989 machine, the message count, wire bytes, and
// simulated makespan of redistribute() against redistribute_reference() for
// transpose-style and reshape-style redistributions (the communication of
// the distributed FFT and the ADI direction switch) plus a general-path
// cyclic case.  Each case is then re-run under contention, once issuing
// through the round schedule and once in naive peer order — the
// modeled-time gap is what the schedule buys on serialized links.  Two
// contention sweeps are recorded: the single-port model
// (LinkContention::kPorts, hypercube) and the per-hop store-and-forward
// model (LinkContention::kStoreForward) on a 2-D mesh, where naive issue
// order oversubscribes the bisection edges toward each destination in turn
// and the per-edge queueing shows up as edge_wait_seconds / max_edge_load.
// `--json` emits the same numbers as a JSON document — the format consumed
// by the BENCH_*.json perf-trajectory files and the CI Release perf job.
//
// Element type is float: the reference packet {int64 idx, float val} pads
// to 16 bytes, so the raw-value slab protocol moves 4x fewer wire bytes.
#include <cstdint>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/redistribute.hpp"

namespace kali {
namespace {

struct RunStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  double link_wait = 0.0;
  double edge_wait = 0.0;
  std::uint64_t max_edge_load = 0;
  std::uint64_t self_msgs = 0;
};

enum class Proto { kFast, kReference };

struct RunMode {
  Proto proto = Proto::kFast;
  LinkContention contention = LinkContention::kNone;
  IssueOrder order = IssueOrder::kRoundSchedule;
  Topology topology = Topology::kHypercube;
};

struct CaseResult {
  std::string name;
  std::string path;  // "box" or "general"
  int nprocs = 0;
  std::vector<int> extents;
  RunStats fast;      // no contention, round schedule
  RunStats ref;       // no contention, reference protocol
  RunStats sched;     // port contention, round schedule
  RunStats naive;     // port contention, naive peer order
  RunStats sf_sched;  // store-and-forward on a mesh, round schedule
  RunStats sf_naive;  // store-and-forward on a mesh, naive peer order
};

using Dists1 = DistArray1<float>::Dists;
using Dists2 = DistArray2<float>::Dists;

RunStats measure(Machine& m) {
  const MachineStats st = m.stats();
  const ProcCounters tot = st.totals();
  return {tot.msgs_sent,        tot.bytes_sent,     st.max_clock(),
          st.link_wait_time(),  st.edge_wait_time(), st.max_edge_load(),
          st.self_msgs_total()};
}

MachineConfig config_for(const RunMode& mode) {
  MachineConfig cfg = bench::config_1989();
  cfg.link_contention = mode.contention;
  cfg.topology = mode.topology;
  return cfg;
}

RunStats run2(int nprocs, int n, const ProcView& spv, Dists2 sd,
              const ProcView& dpv, Dists2 dd, const RunMode& mode) {
  Machine m(nprocs, config_for(mode));
  m.run([&](Context& ctx) {
    DistArray2<float> src(ctx, spv, {n, n}, sd);
    DistArray2<float> dst(ctx, dpv, {n, n}, dd);
    src.fill([n](std::array<int, 2> g) {
      return static_cast<float>(g[0] * n + g[1]);
    });
    if (mode.proto == Proto::kReference) {
      redistribute_reference(ctx, src, dst);
    } else {
      redistribute(ctx, src, dst, mode.order);
    }
  });
  return measure(m);
}

RunStats run1(int nprocs, int n, Dists1 sd, Dists1 dd, const RunMode& mode) {
  Machine m(nprocs, config_for(mode));
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(nprocs);
    DistArray1<float> src(ctx, pv, {n}, sd);
    DistArray1<float> dst(ctx, pv, {n}, dd);
    src.fill([](std::array<int, 1> g) { return static_cast<float>(g[0]); });
    if (mode.proto == Proto::kReference) {
      redistribute_reference(ctx, src, dst);
    } else {
      redistribute(ctx, src, dst, mode.order);
    }
  });
  return measure(m);
}

double ratio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

// ---------------------------------------------------------------------------
// Halo / all-gather sweep: the two exchanges PR 5 routed through the round
// schedule — corner-mode halo exchange (diagonal peers, one scheduled round
// trip) and the collectives layer's all_gather — measured scheduled vs
// naive issue order under both contention tiers.
// ---------------------------------------------------------------------------

/// One exchange measured under kPorts (hypercube) and kStoreForward (mesh),
/// each scheduled vs naive issue order.
struct SweepResult {
  RunStats sched;
  RunStats naive;
  RunStats sf_sched;
  RunStats sf_naive;
};

RunStats run_halo(int nprocs, int n, const RunMode& mode) {
  int side = 1;
  while ((side + 1) * (side + 1) <= nprocs) {
    ++side;
  }
  KALI_CHECK(side * side == nprocs, "halo sweep needs a square rank count");
  Machine m(nprocs, config_for(mode));
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(side, side);
    DistArray2<float> a(ctx, pv, {n, n},
                        {DimDist::block_dist(), DimDist::block_dist()},
                        {1, 1});
    a.fill([n](std::array<int, 2> g) {
      return static_cast<float>(g[0] * n + g[1]);
    });
    a.exchange_halo(HaloCorners::kYes, mode.order);
  });
  return measure(m);
}

RunStats run_all_gather(int nprocs, int count, const RunMode& mode) {
  MachineConfig cfg = config_for(mode);
  // This sweep compares issue orders of the dense pairwise exchange; pin
  // the dense path (and skip its size-agreement round) so the hybrid's
  // tiny-payload tree never swaps the algorithm under the measurement.
  cfg.allgather_tree_max_bytes = 0;
  Machine m(nprocs, cfg);
  m.run([&](Context& ctx) {
    std::vector<int> ranks(static_cast<std::size_t>(nprocs));
    std::iota(ranks.begin(), ranks.end(), 0);
    Group g(std::move(ranks), ctx.rank());
    std::vector<float> mine(static_cast<std::size_t>(count),
                            static_cast<float>(ctx.rank()));
    (void)all_gather(ctx, g, std::span<const float>(mine), mode.order);
  });
  return measure(m);
}

template <class RunFn>
SweepResult sweep(RunFn run_fn) {
  SweepResult r;
  r.sched = run_fn(RunMode{Proto::kFast, LinkContention::kPorts,
                           IssueOrder::kRoundSchedule, Topology::kHypercube});
  r.naive = run_fn(RunMode{Proto::kFast, LinkContention::kPorts,
                           IssueOrder::kPeerOrder, Topology::kHypercube});
  r.sf_sched =
      run_fn(RunMode{Proto::kFast, LinkContention::kStoreForward,
                     IssueOrder::kRoundSchedule, Topology::kMesh2D});
  r.sf_naive = run_fn(RunMode{Proto::kFast, LinkContention::kStoreForward,
                              IssueOrder::kPeerOrder, Topology::kMesh2D});
  return r;
}


void print_run(std::ostream& os, const char* key, const RunStats& r,
               const char* indent) {
  os << indent << "\"" << key << "\": {\"msgs\": " << r.msgs
     << ", \"wire_bytes\": " << r.bytes << ", \"modeled_seconds\": " << r.seconds
     << ", \"link_wait_seconds\": " << r.link_wait
     << ", \"edge_wait_seconds\": " << r.edge_wait
     << ", \"max_edge_load\": " << r.max_edge_load
     << ", \"self_msgs\": " << r.self_msgs << "}";
}

void print_sweep(std::ostream& os, const SweepResult& r) {
  os << "      \"ports\": {\n";
  print_run(os, "scheduled", r.sched, "       ");
  os << ",\n";
  print_run(os, "naive_order", r.naive, "       ");
  os << ",\n       \"schedule_speedup\": "
     << ratio(r.naive.seconds, r.sched.seconds) << "\n      },\n"
     << "      \"store_forward\": {\"topology\": \"mesh2d\",\n";
  print_run(os, "scheduled", r.sf_sched, "       ");
  os << ",\n";
  print_run(os, "naive_order", r.sf_naive, "       ");
  os << ",\n       \"schedule_speedup\": "
     << ratio(r.sf_naive.seconds, r.sf_sched.seconds) << "\n      }";
}

void print_json(const std::vector<CaseResult>& results,
                const SweepResult& halo, const SweepResult& ag, int p, int n,
                int ag_elems, std::ostream& os) {
  os << "{\n"
     << "  \"bench\": \"bench_redistribute\",\n"
     << "  \"machine_model\": \"1989-hypercube (10 MFLOPS, ~100us latency, "
        "2.5 MB/s links)\",\n"
     << "  \"elem_bytes\": 4,\n"
     << "  \"reference\": \"all-pairs {int64 idx, float val} packet flood\",\n"
     << "  \"contention_models\": \"ports = single-port injection/ejection "
        "links on the hypercube; store_forward = per-edge store-and-forward "
        "queueing on a 2-D mesh (LinkContention)\",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& c = results[i];
    os << "    {\"name\": \"" << c.name << "\", \"path\": \"" << c.path
       << "\", \"nprocs\": " << c.nprocs << ", \"extents\": [";
    for (std::size_t d = 0; d < c.extents.size(); ++d) {
      os << (d ? ", " : "") << c.extents[d];
    }
    os << "],\n";
    print_run(os, "redistribute", c.fast, "     ");
    os << ",\n";
    print_run(os, "reference_idxval", c.ref, "     ");
    os << ",\n"
       << "     \"msg_ratio\": "
       << ratio(static_cast<double>(c.ref.msgs), static_cast<double>(c.fast.msgs))
       << ", \"byte_ratio\": "
       << ratio(static_cast<double>(c.ref.bytes), static_cast<double>(c.fast.bytes))
       << ", \"time_ratio\": " << ratio(c.ref.seconds, c.fast.seconds) << ",\n"
       << "     \"contention\": {\n";
    print_run(os, "scheduled", c.sched, "      ");
    os << ",\n";
    print_run(os, "naive_order", c.naive, "      ");
    os << ",\n"
       << "      \"schedule_speedup\": " << ratio(c.naive.seconds, c.sched.seconds)
       << ", \"contention_slowdown\": " << ratio(c.sched.seconds, c.fast.seconds)
       << "\n     },\n"
       << "     \"store_forward\": {\"topology\": \"mesh2d\",\n";
    print_run(os, "scheduled", c.sf_sched, "      ");
    os << ",\n";
    print_run(os, "naive_order", c.sf_naive, "      ");
    os << ",\n"
       << "      \"schedule_speedup\": "
       << ratio(c.sf_naive.seconds, c.sf_sched.seconds)
       << "\n     }}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"halo_allgather\": {\n"
     << "    \"halo_corner\": {\"nprocs\": " << p << ", \"extents\": [" << n
     << ", " << n
     << "], \"halo\": 1, \"mode\": \"HaloCorners::kYes (single scheduled "
        "exchange, diagonal peers)\",\n";
  print_sweep(os, halo);
  os << "\n    },\n"
     << "    \"all_gather\": {\"nprocs\": " << p
     << ", \"elems_per_rank\": " << ag_elems
     << ", \"mode\": \"collectives all_gather (dense pairwise rounds)\",\n";
  print_sweep(os, ag);
  os << "\n    }\n  }\n}\n";
}

}  // namespace
}  // namespace kali

int main(int argc, char** argv) {
  using namespace kali;
  const bool json = argc > 1 && std::string(argv[1]) == "--json";

  const int p = 16;
  const int n = 1024;
  std::vector<CaseResult> results;

  const RunMode kFast{Proto::kFast, LinkContention::kNone,
                      IssueOrder::kRoundSchedule, Topology::kHypercube};
  const RunMode kRef{Proto::kReference, LinkContention::kNone,
                     IssueOrder::kRoundSchedule, Topology::kHypercube};
  const RunMode kSched{Proto::kFast, LinkContention::kPorts,
                       IssueOrder::kRoundSchedule, Topology::kHypercube};
  const RunMode kNaive{Proto::kFast, LinkContention::kPorts,
                       IssueOrder::kPeerOrder, Topology::kHypercube};
  // Store-and-forward sweep on the 2-D mesh, where X-Y routing funnels
  // whole waves of naive-order messages through single bisection edges.
  const RunMode kSfSched{Proto::kFast, LinkContention::kStoreForward,
                         IssueOrder::kRoundSchedule, Topology::kMesh2D};
  const RunMode kSfNaive{Proto::kFast, LinkContention::kStoreForward,
                         IssueOrder::kPeerOrder, Topology::kMesh2D};

  {
    // The fft2 transpose: (block, *) -> (*, block).  Every off-diagonal
    // rank pair intersects in a 64x64 slab; the diagonal is a local copy.
    CaseResult c;
    c.name = "transpose_rows_to_cols";
    c.path = "box";
    c.nprocs = p;
    c.extents = {n, n};
    const Dists2 rows{DimDist::block_dist(), DimDist::star()};
    const Dists2 cols{DimDist::star(), DimDist::block_dist()};
    const ProcView pv = ProcView::grid1(p);
    c.fast = run2(p, n, pv, rows, pv, cols, kFast);
    c.ref = run2(p, n, pv, rows, pv, cols, kRef);
    c.sched = run2(p, n, pv, rows, pv, cols, kSched);
    c.naive = run2(p, n, pv, rows, pv, cols, kNaive);
    c.sf_sched = run2(p, n, pv, rows, pv, cols, kSfSched);
    c.sf_naive = run2(p, n, pv, rows, pv, cols, kSfNaive);
    results.push_back(c);
  }
  {
    // Grid reshape (block, block) 4x4 -> 16x1: only 4 destination slabs
    // overlap each source quadrant, so the message flood shrinks 4x too.
    CaseResult c;
    c.name = "grid_reshape_4x4_to_16x1";
    c.path = "box";
    c.nprocs = p;
    c.extents = {n, n};
    const Dists2 bb{DimDist::block_dist(), DimDist::block_dist()};
    const ProcView spv = ProcView::grid2(4, 4);
    const ProcView dpv = ProcView::grid2(16, 1);
    c.fast = run2(p, n, spv, bb, dpv, bb, kFast);
    c.ref = run2(p, n, spv, bb, dpv, bb, kRef);
    c.sched = run2(p, n, spv, bb, dpv, bb, kSched);
    c.naive = run2(p, n, spv, bb, dpv, bb, kNaive);
    c.sf_sched = run2(p, n, spv, bb, dpv, bb, kSfSched);
    c.sf_naive = run2(p, n, spv, bb, dpv, bb, kSfNaive);
    results.push_back(c);
  }
  {
    // Identity layout: the degenerate best case — every rank's slab is its
    // own, so the fast path sends nothing at all, while the reference
    // still floods the 240 non-self pairs.
    CaseResult c;
    c.name = "identity_4x4";
    c.path = "box";
    c.nprocs = p;
    c.extents = {n, n};
    const Dists2 bb{DimDist::block_dist(), DimDist::block_dist()};
    const ProcView pv = ProcView::grid2(4, 4);
    c.fast = run2(p, n, pv, bb, pv, bb, kFast);
    c.ref = run2(p, n, pv, bb, pv, bb, kRef);
    c.sched = run2(p, n, pv, bb, pv, bb, kSched);
    c.naive = run2(p, n, pv, bb, pv, bb, kNaive);
    c.sf_sched = run2(p, n, pv, bb, pv, bb, kSfSched);
    c.sf_naive = run2(p, n, pv, bb, pv, bb, kSfNaive);
    results.push_back(c);
  }
  {
    // General path: cyclic -> block-cyclic falls back to per-dim owner
    // binning (O(n + peers) instead of the reference's O(n * P) scan).
    CaseResult c;
    c.name = "cyclic_to_block_cyclic4_1d";
    c.path = "general";
    c.nprocs = p;
    c.extents = {n * n};
    const Dists1 sd{DimDist::cyclic()};
    const Dists1 dd{DimDist::block_cyclic(4)};
    c.fast = run1(p, n * n, sd, dd, kFast);
    c.ref = run1(p, n * n, sd, dd, kRef);
    c.sched = run1(p, n * n, sd, dd, kSched);
    c.naive = run1(p, n * n, sd, dd, kNaive);
    c.sf_sched = run1(p, n * n, sd, dd, kSfSched);
    c.sf_naive = run1(p, n * n, sd, dd, kSfNaive);
    results.push_back(c);
  }

  // Halo / all-gather sweep: the exchanges routed through the round
  // schedule in PR 5, same two contention tiers as the cases above.  The
  // all_gather contribution matches the transpose's per-rank slab volume.
  const int ag_elems = n * n / p;
  const SweepResult halo =
      sweep([&](const RunMode& mode) { return run_halo(p, n, mode); });
  const SweepResult ag = sweep(
      [&](const RunMode& mode) { return run_all_gather(p, ag_elems, mode); });

  if (json) {
    print_json(results, halo, ag, p, n, ag_elems, std::cout);
    return 0;
  }

  bench::header("E10", "Redistribution: slab intersection vs all-pairs packets",
                "redistribute() communication engine + link-contention sweep");
  Table t({"case", "path", "msgs new/ref", "wire bytes new/ref",
           "modeled s new/ref", "byte ratio", "time ratio"});
  for (const CaseResult& c : results) {
    t.add_row({c.name, c.path,
               std::to_string(c.fast.msgs) + " / " + std::to_string(c.ref.msgs),
               std::to_string(c.fast.bytes) + " / " + std::to_string(c.ref.bytes),
               fmt(c.fast.seconds) + " / " + fmt(c.ref.seconds),
               fmt(ratio(static_cast<double>(c.ref.bytes),
                         static_cast<double>(c.fast.bytes)),
                   2),
               fmt(ratio(c.ref.seconds, c.fast.seconds), 2)});
  }
  t.print(std::cout);

  std::cout << "\nlink contention enabled (single-port links):\n\n";
  Table tc({"case", "scheduled s", "naive-order s", "schedule speedup",
            "link wait sched/naive", "self msgs"});
  for (const CaseResult& c : results) {
    tc.add_row({c.name, fmt(c.sched.seconds), fmt(c.naive.seconds),
                fmt(ratio(c.naive.seconds, c.sched.seconds), 2),
                fmt(c.sched.link_wait) + " / " + fmt(c.naive.link_wait),
                std::to_string(c.sched.self_msgs)});
  }
  tc.print(std::cout);

  std::cout << "\nstore-and-forward on a 2-D mesh (per-edge queueing):\n\n";
  Table ts({"case", "scheduled s", "naive-order s", "schedule speedup",
            "edge wait sched/naive", "max edge load sched/naive"});
  for (const CaseResult& c : results) {
    ts.add_row({c.name, fmt(c.sf_sched.seconds), fmt(c.sf_naive.seconds),
                fmt(ratio(c.sf_naive.seconds, c.sf_sched.seconds), 2),
                fmt(c.sf_sched.edge_wait) + " / " + fmt(c.sf_naive.edge_wait),
                std::to_string(c.sf_sched.max_edge_load) + " / " +
                    std::to_string(c.sf_naive.max_edge_load)});
  }
  ts.print(std::cout);
  std::cout << "\ncorner-mode halo exchange and all_gather (scheduled vs "
               "naive issue order):\n\n";
  Table th({"exchange", "tier", "scheduled s", "naive-order s",
            "schedule speedup", "self msgs"});
  auto sweep_rows = [&](const char* name, const SweepResult& r) {
    th.add_row({name, "ports", fmt(r.sched.seconds), fmt(r.naive.seconds),
                fmt(ratio(r.naive.seconds, r.sched.seconds), 2),
                std::to_string(r.sched.self_msgs)});
    th.add_row({name, "store-forward", fmt(r.sf_sched.seconds),
                fmt(r.sf_naive.seconds),
                fmt(ratio(r.sf_naive.seconds, r.sf_sched.seconds), 2),
                std::to_string(r.sf_sched.self_msgs)});
  };
  sweep_rows(("halo corners " + std::to_string(n) + "^2/" + std::to_string(p))
                 .c_str(),
             halo);
  sweep_rows(("all_gather " + std::to_string(ag_elems) + "/" +
              std::to_string(p))
                 .c_str(),
             ag);
  th.print(std::cout);

  std::cout << "\nthe slab protocol must send no empty and no self messages\n"
            << "and, for the float transpose, move >= 4x fewer wire bytes\n"
            << "than the reference's padded {int64, float} packets; under\n"
            << "link contention the round-structured schedule must beat\n"
            << "naive per-peer issue order on modeled time.\n";
  return 0;
}

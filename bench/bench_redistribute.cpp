// E10 — redistribution engine: analytic slab intersection vs the original
// all-pairs {index, value} packet protocol.
//
// Measures, on the modeled 1989 machine, the message count, wire bytes, and
// simulated makespan of redistribute() against redistribute_reference() for
// transpose-style and reshape-style redistributions (the communication of
// the distributed FFT and the ADI direction switch) plus a general-path
// cyclic case.  `--json` emits the same numbers as a JSON document — the
// format consumed by the BENCH_*.json perf-trajectory files and the CI
// Release perf job.
//
// Element type is float: the reference packet {int64 idx, float val} pads
// to 16 bytes, so the raw-value slab protocol moves 4x fewer wire bytes.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "runtime/redistribute.hpp"

namespace kali {
namespace {

struct RunStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

struct CaseResult {
  std::string name;
  std::string path;  // "box" or "general"
  int nprocs = 0;
  std::vector<int> extents;
  RunStats fast;
  RunStats ref;
};

using Dists1 = DistArray1<float>::Dists;
using Dists2 = DistArray2<float>::Dists;

RunStats measure(Machine& m) {
  const MachineStats st = m.stats();
  const ProcCounters tot = st.totals();
  return {tot.msgs_sent, tot.bytes_sent, st.max_clock()};
}

RunStats run2(int nprocs, int n, const ProcView& spv, Dists2 sd,
              const ProcView& dpv, Dists2 dd, bool reference) {
  Machine m(nprocs, bench::config_1989());
  m.run([&](Context& ctx) {
    DistArray2<float> src(ctx, spv, {n, n}, sd);
    DistArray2<float> dst(ctx, dpv, {n, n}, dd);
    src.fill([n](std::array<int, 2> g) {
      return static_cast<float>(g[0] * n + g[1]);
    });
    if (reference) {
      redistribute_reference(ctx, src, dst);
    } else {
      redistribute(ctx, src, dst);
    }
  });
  return measure(m);
}

RunStats run1(int nprocs, int n, Dists1 sd, Dists1 dd, bool reference) {
  Machine m(nprocs, bench::config_1989());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(nprocs);
    DistArray1<float> src(ctx, pv, {n}, sd);
    DistArray1<float> dst(ctx, pv, {n}, dd);
    src.fill([](std::array<int, 1> g) { return static_cast<float>(g[0]); });
    if (reference) {
      redistribute_reference(ctx, src, dst);
    } else {
      redistribute(ctx, src, dst);
    }
  });
  return measure(m);
}

double ratio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

void print_json(const std::vector<CaseResult>& results, std::ostream& os) {
  os << "{\n"
     << "  \"bench\": \"bench_redistribute\",\n"
     << "  \"machine_model\": \"1989-hypercube (10 MFLOPS, ~100us latency, "
        "2.5 MB/s links)\",\n"
     << "  \"elem_bytes\": 4,\n"
     << "  \"reference\": \"all-pairs {int64 idx, float val} packet flood\",\n"
     << "  \"cases\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const CaseResult& c = results[i];
    os << "    {\"name\": \"" << c.name << "\", \"path\": \"" << c.path
       << "\", \"nprocs\": " << c.nprocs << ", \"extents\": [";
    for (std::size_t d = 0; d < c.extents.size(); ++d) {
      os << (d ? ", " : "") << c.extents[d];
    }
    os << "],\n"
       << "     \"redistribute\": {\"msgs\": " << c.fast.msgs
       << ", \"wire_bytes\": " << c.fast.bytes
       << ", \"modeled_seconds\": " << c.fast.seconds << "},\n"
       << "     \"reference_idxval\": {\"msgs\": " << c.ref.msgs
       << ", \"wire_bytes\": " << c.ref.bytes
       << ", \"modeled_seconds\": " << c.ref.seconds << "},\n"
       << "     \"msg_ratio\": "
       << ratio(static_cast<double>(c.ref.msgs), static_cast<double>(c.fast.msgs))
       << ", \"byte_ratio\": "
       << ratio(static_cast<double>(c.ref.bytes), static_cast<double>(c.fast.bytes))
       << ", \"time_ratio\": " << ratio(c.ref.seconds, c.fast.seconds) << "}"
       << (i + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace kali

int main(int argc, char** argv) {
  using namespace kali;
  const bool json = argc > 1 && std::string(argv[1]) == "--json";

  const int p = 16;
  const int n = 1024;
  std::vector<CaseResult> results;

  {
    // The fft2 transpose: (block, *) -> (*, block).  Every rank pair
    // genuinely intersects in a 64x64 slab, so the win is pure wire bytes.
    CaseResult c{"transpose_rows_to_cols", "box", p, {n, n}, {}, {}};
    const Dists2 rows{DimDist::block_dist(), DimDist::star()};
    const Dists2 cols{DimDist::star(), DimDist::block_dist()};
    c.fast = run2(p, n, ProcView::grid1(p), rows, ProcView::grid1(p), cols, false);
    c.ref = run2(p, n, ProcView::grid1(p), rows, ProcView::grid1(p), cols, true);
    results.push_back(c);
  }
  {
    // Grid reshape (block, block) 4x4 -> 16x1: only 4 destination slabs
    // overlap each source quadrant, so the message flood shrinks 4x too.
    CaseResult c{"grid_reshape_4x4_to_16x1", "box", p, {n, n}, {}, {}};
    const Dists2 bb{DimDist::block_dist(), DimDist::block_dist()};
    c.fast = run2(p, n, ProcView::grid2(4, 4), bb, ProcView::grid2(16, 1), bb, false);
    c.ref = run2(p, n, ProcView::grid2(4, 4), bb, ProcView::grid2(16, 1), bb, true);
    results.push_back(c);
  }
  {
    // Identity layout: the degenerate best case — every rank talks only to
    // itself, while the reference still floods all 256 pairs.
    CaseResult c{"identity_4x4", "box", p, {n, n}, {}, {}};
    const Dists2 bb{DimDist::block_dist(), DimDist::block_dist()};
    c.fast = run2(p, n, ProcView::grid2(4, 4), bb, ProcView::grid2(4, 4), bb, false);
    c.ref = run2(p, n, ProcView::grid2(4, 4), bb, ProcView::grid2(4, 4), bb, true);
    results.push_back(c);
  }
  {
    // General path: cyclic -> block-cyclic falls back to per-dim owner
    // binning (O(n + peers) instead of the reference's O(n * P) scan).
    CaseResult c{"cyclic_to_block_cyclic4_1d", "general", p, {n * n}, {}, {}};
    c.fast = run1(p, n * n, {DimDist::cyclic()}, {DimDist::block_cyclic(4)}, false);
    c.ref = run1(p, n * n, {DimDist::cyclic()}, {DimDist::block_cyclic(4)}, true);
    results.push_back(c);
  }

  if (json) {
    print_json(results, std::cout);
    return 0;
  }

  bench::header("E10", "Redistribution: slab intersection vs all-pairs packets",
                "redistribute() communication engine");
  Table t({"case", "path", "msgs new/ref", "wire bytes new/ref",
           "modeled s new/ref", "byte ratio", "time ratio"});
  for (const CaseResult& c : results) {
    t.add_row({c.name, c.path,
               std::to_string(c.fast.msgs) + " / " + std::to_string(c.ref.msgs),
               std::to_string(c.fast.bytes) + " / " + std::to_string(c.ref.bytes),
               fmt(c.fast.seconds) + " / " + fmt(c.ref.seconds),
               fmt(ratio(static_cast<double>(c.ref.bytes),
                         static_cast<double>(c.fast.bytes)),
                   2),
               fmt(ratio(c.ref.seconds, c.fast.seconds), 2)});
  }
  t.print(std::cout);
  std::cout << "\nthe slab protocol must send no empty messages and, for the\n"
            << "float transpose, move >= 4x fewer wire bytes than the\n"
            << "reference's padded {int64, float} packets.\n";
  return 0;
}

// E5 — Listings 7-8: ADI iteration, plain vs pipelined.
//
// Per-iteration simulated time and utilization across grid and processor
// sizes, plus a convergence check that both variants solve the model
// problem (paper §4: "One can get better speed-ups with the pipelined
// version").
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "solvers/adi.hpp"

namespace kali {
namespace {

struct Outcome {
  double time_per_iter;
  double utilization;
  double final_residual;
};

Outcome run(int px, int py, int n, bool pipelined, int iters) {
  Machine m(px * py, bench::config_1989());
  Outcome out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op;
    op.hx = op.hy = 1.0 / (n + 1);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 u(ctx, pv, {n, n}, dists, {1, 1});
    D2 f(ctx, pv, {n, n}, dists);
    f.fill([&](std::array<int, 2> g) {
      return rhs2(op, (g[0] + 1) * op.hx, (g[1] + 1) * op.hy);
    });
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    opts.pipelined = pipelined;
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int it = 0; it < iters; ++it) {
      adi_iterate(opts, u, f);
    }
    PhaseStats stats = timer.finish();
    const double r = adi_residual_norm(op, u, f);
    if (ctx.rank() == 0) {
      out = {stats.makespan / iters, stats.utilization(px * py), r};
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E5", "ADI: plain (Listing 7) vs pipelined (Listing 8)",
                "section 4");

  const int iters = 10;
  Table t({"grid", "procs", "variant", "sim time/iter", "util",
           "residual after 10", "pipelined speedup"});
  for (int n : {32, 64, 128}) {
    for (auto [px, py] : {std::pair{2, 2}, std::pair{4, 4}}) {
      if (n / px < 2 || n / py < 2) {
        continue;
      }
      const Outcome plain = run(px, py, n, false, iters);
      const Outcome piped = run(px, py, n, true, iters);
      const std::string grid = std::to_string(n) + "x" + std::to_string(n);
      const std::string procs = std::to_string(px) + "x" + std::to_string(py);
      t.add_row({grid, procs, "adi (tric)", fmt_time(plain.time_per_iter),
                 fmt(plain.utilization, 2), fmt_sci(plain.final_residual),
                 "1.00"});
      t.add_row({grid, procs, "madi (mtri)", fmt_time(piped.time_per_iter),
                 fmt(piped.utilization, 2), fmt_sci(piped.final_residual),
                 fmt(plain.time_per_iter / piped.time_per_iter, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nshape check: identical residuals (same arithmetic); the\n"
            << "pipelined variant is faster, most visibly when each processor\n"
            << "row/column owns many lines (large n / small p).\n";
  return 0;
}

// E11 (extension) — §2: "We plan to address this issue by providing
// performance estimation tools, which will indicate which parts of a
// program will compile into efficient executable code, and which will not."
//
// The Kali project's promised tool, built and validated: closed-form
// predictions for each primitive are compared against the simulator.  A
// programmer could rank candidate distributions from the predictions alone
// — the ranking column shows that the predicted ordering matches the
// simulated one for the E8 ablation case.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "metrics/predictor.hpp"
#include "solvers/adi.hpp"
#include "solvers/jacobi.hpp"
#include "kernels/tri.hpp"
#include "kernels/mtri.hpp"

namespace kali {
namespace {

double sim_jacobi(int n, int p_side) {
  Machine m(std::max(1, p_side * p_side), bench::config_1989());
  double out = 0.0;
  const int iters = 5;
  m.run([&](Context& ctx) {
    if (p_side <= 1) {
      PhaseTimer timer(ctx, Group({0}, 0));
      (void)jacobi_seq(ctx, n, [](int, int) { return 0.0; }, iters);
      out = timer.finish().makespan / iters;
      return;
    }
    ProcView pv = ProcView::grid2(p_side, p_side);
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    (void)jacobi_kf1(ctx, pv, n, [](int, int) { return 0.0; }, iters,
                     /*collect=*/false);
    const double t = timer.finish().makespan / iters;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

double sim_tri(int n, int p) {
  Machine m(p, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    f.fill([](std::array<int, 1> g) { return 1.0 + 0.1 * g[0]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    tric(-1.0, 4.0, -1.0, f, x);
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

double sim_mtri(int nsys, int n, int p) {
  Machine m(p, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 F(ctx, pv, {nsys, n}, dists), X(ctx, pv, {nsys, n}, dists);
    F.fill([](std::array<int, 2> g) { return 1.0 + 0.01 * g[1] + g[0]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    mtri_const(-1.0, 4.0, -1.0, F, X, 0);
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

double sim_adi(int n, int px, int py, bool pipelined) {
  Machine m(px * py, bench::config_1989());
  double out = 0.0;
  const int iters = 3;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op;
    op.hx = op.hy = 1.0 / (n + 1);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 u(ctx, pv, {n, n}, dists, {1, 1});
    D2 f(ctx, pv, {n, n}, dists);
    f.fill([](std::array<int, 2>) { return 1.0; });
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    opts.pipelined = pipelined;
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int it = 0; it < iters; ++it) {
      adi_iterate(opts, u, f);
    }
    const double t = timer.finish().makespan / iters;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

std::string ratio(double pred, double sim) { return fmt(pred / sim, 2); }

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E11", "Performance estimation tool (extension)",
                "section 2: promised Kali performance predictor");

  const MachineConfig cfg = bench::config_1989();

  Table t({"primitive", "configuration", "predicted", "simulated",
           "pred/sim"});
  {
    Predictor pr(cfg, 16);
    for (int p : {2, 4, 8}) {
      const double pred = pr.jacobi_iteration(64, p);
      const double sim = sim_jacobi(64, p);
      t.add_row({"jacobi iteration", "64^2, " + std::to_string(p * p) + " procs",
                 fmt_time(pred), fmt_time(sim), ratio(pred, sim)});
    }
  }
  for (auto [n, p] : {std::pair{4096, 8}, std::pair{4096, 16},
                      std::pair{16384, 16}}) {
    Predictor pr(cfg, p);
    const double pred = pr.tri_solve(n, p);
    const double sim = sim_tri(n, p);
    t.add_row({"tri solve",
               "n=" + std::to_string(n) + ", p=" + std::to_string(p),
               fmt_time(pred), fmt_time(sim), ratio(pred, sim)});
  }
  {
    Predictor pr(cfg, 8);
    const double pred = pr.mtri_solve(16, 1024, 8);
    const double sim = sim_mtri(16, 1024, 8);
    t.add_row({"mtri (16 systems)", "n=1024, p=8", fmt_time(pred),
               fmt_time(sim), ratio(pred, sim)});
  }
  t.print(std::cout);

  // The predictor's job in the paper: choose the distribution *before*
  // running.  Rank the E8 ADI candidates by prediction and by simulation.
  std::cout << "\ndistribution ranking for ADI 64^2 on 16 processors:\n";
  Table t2({"processor array", "predicted/iter", "simulated/iter"});
  struct Cand {
    int px, py;
  };
  for (Cand cand : {Cand{4, 4}, Cand{16, 1}, Cand{1, 16}}) {
    Predictor pr(cfg, 16);
    const double pred = pr.adi_iteration(64, cand.px, cand.py, false);
    const double sim = sim_adi(64, cand.px, cand.py, false);
    t2.add_row({"procs(" + std::to_string(cand.px) + ", " +
                    std::to_string(cand.py) + ")",
                fmt_time(pred), fmt_time(sim)});
  }
  t2.print(std::cout);
  std::cout << "\nthe predicted ordering matches the simulated one: the tool\n"
            << "answers the paper's question (\"which parts of a program will\n"
            << "compile into efficient executable code\") without a run.\n";
  return 0;
}

// E10 — §3: "There are a wide variety of parallel tridiagonal algorithms
// in the literature" (ref [8], Johnsson; ref [5], Gannon & Van Rosendale on
// communication complexity).
//
// Compares the paper's substructured algorithm against three classical
// alternatives over (n, p) and over the machine's latency, exposing the
// crossovers that motivated the design.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "kernels/baselines.hpp"
#include "kernels/tri.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

struct System {
  std::vector<double> b, a, c, f;
};

System random_system(int n) {
  Rng rng(7);
  System s;
  const auto un = static_cast<std::size_t>(n);
  s.b.assign(un, 0.0);
  s.a.assign(un, 0.0);
  s.c.assign(un, 0.0);
  s.f.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    s.b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    s.a[i] = std::abs(s.b[i]) + std::abs(s.c[i]) + rng.uniform(1.0, 2.0);
    s.f[i] = rng.uniform(-10, 10);
  }
  return s;
}

double run(const System& s, int n, int p, int which, const MachineConfig& cfg) {
  Machine m(p, cfg);
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    switch (which) {
      case 0:
        tri(b, a, c, f, x);
        break;
      case 1:
        gather_thomas(b, a, c, f, x);
        break;
      case 2:
        pipelined_thomas(b, a, c, f, x);
        break;
      default:
        cyclic_reduction(b, a, c, f, x);
    }
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E10", "Parallel tridiagonal algorithm comparison",
                "section 3 (refs [5], [8]): algorithm/communication tradeoffs");

  const char* names[] = {"substructured (paper)", "gather + Thomas",
                         "chained Thomas", "cyclic reduction"};
  for (const auto& [label, cfg] :
       {std::pair{std::string("1989 machine (alpha = 80 us)"),
                  bench::config_1989()},
        std::pair{std::string("low-latency machine (alpha = 10 us)"),
                  bench::config_low_latency()}}) {
    std::cout << "--- " << label << " ---\n";
    Table t({"n", "p", names[0], names[1], names[2], names[3], "winner"});
    for (int n : {256, 4096}) {
      for (int p : {4, 16}) {
        System s = random_system(n);
        double best = 1e300;
        int best_i = 0;
        std::vector<std::string> row{std::to_string(n), std::to_string(p)};
        for (int w = 0; w < 4; ++w) {
          const double tt = run(s, n, p, w, cfg);
          row.push_back(fmt_time(tt));
          if (tt < best) {
            best = tt;
            best_i = w;
          }
        }
        row.push_back(names[best_i]);
        t.add_row(row);
      }
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "shape check: the substructured algorithm wins at scale on the\n"
            << "high-latency machine (O(log p) message rounds); gather+Thomas\n"
            << "is competitive only for small n*p; cyclic reduction pays\n"
            << "log2(n) all-active communication rounds.\n";
  return 0;
}

// E1 — Listings 1-3 and the §6 claim "there would be no difference between
// the execution time of algorithms expressed in KF1, and those expressed
// in a message passing language".
//
// Runs the three Jacobi variants on identical problems and reports
// simulated time per iteration, message counts, and the KF1/hand-coded
// overhead ratio, plus a numerical-equality check.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "solvers/jacobi.hpp"

namespace kali {
namespace {

double rhs_fn(int i, int j) { return 0.001 * std::sin(0.7 * i + 0.3 * j); }

struct Result {
  double sim_time = 0.0;
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
};

Result run_variant(int variant, int p, int n, int iters) {
  const int nprocs = variant == 0 ? 1 : p * p;
  Machine m(nprocs, bench::config_1989());
  m.run([&](Context& ctx) {
    switch (variant) {
      case 0:
        (void)jacobi_seq(ctx, n, rhs_fn, iters);
        break;
      case 1:
        (void)jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters,
                        /*collect=*/false);
        break;
      default:
        (void)jacobi_kf1(ctx, ProcView::grid2(p, p), n, rhs_fn, iters,
                         /*collect=*/false);
    }
  });
  auto s = m.stats();
  return {s.max_clock() / iters,
          s.totals().msgs_sent / static_cast<std::uint64_t>(iters),
          s.totals().bytes_sent / static_cast<std::uint64_t>(iters)};
}

double max_difference(int p, int n, int iters) {
  std::vector<double> ref, mp, kf1;
  {
    Machine m(1, bench::config_1989());
    m.run([&](Context& ctx) { ref = jacobi_seq(ctx, n, rhs_fn, iters); });
  }
  {
    Machine m(p * p, bench::config_1989());
    m.run([&](Context& ctx) {
      auto out = jacobi_mp(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
      if (ctx.rank() == 0) {
        mp = out;
      }
    });
  }
  {
    Machine m(p * p, bench::config_1989());
    m.run([&](Context& ctx) {
      auto out = jacobi_kf1(ctx, ProcView::grid2(p, p), n, rhs_fn, iters);
      if (ctx.rank() == 0) {
        kf1 = out;
      }
    });
  }
  double d = 0.0;
  for (std::size_t k = 0; k < ref.size(); ++k) {
    d = std::max(d, std::abs(ref[k] - mp[k]));
    d = std::max(d, std::abs(ref[k] - kf1[k]));
  }
  return d;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E1", "Jacobi three ways",
                "Listings 1-3; section 6 execution-time-parity claim");

  const int n = 64, iters = 10;
  Table t({"variant", "procs", "sim time/iter", "msgs/iter", "bytes/iter",
           "speedup vs seq", "vs hand-MP"});
  const Result seq = run_variant(0, 1, n, iters);
  t.add_row({"sequential (Listing 1)", "1", fmt_time(seq.sim_time), "0", "0",
             "1.00", "-"});
  for (int p : {2, 4, 8}) {
    const Result mp = run_variant(1, p, n, iters);
    const Result kf1 = run_variant(2, p, n, iters);
    t.add_row({"message passing (Listing 2)", std::to_string(p * p),
               fmt_time(mp.sim_time), std::to_string(mp.msgs),
               std::to_string(mp.bytes), fmt(seq.sim_time / mp.sim_time, 2),
               "1.000"});
    t.add_row({"KF1 constructs (Listing 3)", std::to_string(p * p),
               fmt_time(kf1.sim_time), std::to_string(kf1.msgs),
               std::to_string(kf1.bytes), fmt(seq.sim_time / kf1.sim_time, 2),
               fmt(kf1.sim_time / mp.sim_time, 3)});
  }
  t.print(std::cout);

  std::cout << "\nnumerical agreement (max |diff| across variants, p=4, 7 iters): "
            << fmt_sci(max_difference(4, 64, 7)) << "\n"
            << "paper claim: KF1 == hand message passing in execution time; \n"
            << "measured: the 'vs hand-MP' column (copy-in frame overhead only).\n";
  return 0;
}

// E2 — §3 and Figures 1-3: the substructured parallel tridiagonal solver.
//
// Reports: (a) the Figure 3 data-flow profile — active processors per step
// halve through the reduction phase and double through substitution;
// (b) simulated-time scaling of `tri` over processor counts against the
// one-processor Thomas solve, at several system sizes.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "kernels/thomas.hpp"
#include "kernels/tri.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

struct System {
  std::vector<double> b, a, c, f;
};

System random_system(int n) {
  Rng rng(2026);
  System s;
  const auto un = static_cast<std::size_t>(n);
  s.b.assign(un, 0.0);
  s.a.assign(un, 0.0);
  s.c.assign(un, 0.0);
  s.f.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    s.b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    s.c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    s.a[i] = std::abs(s.b[i]) + std::abs(s.c[i]) + rng.uniform(1.0, 2.0);
    s.f[i] = rng.uniform(-10, 10);
  }
  return s;
}

double solve_time(const System& s, int n, int p, ActivityTrace* trace) {
  Machine m(p, bench::config_1989());
  double makespan = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> b(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> a(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> c(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    b.fill([&](std::array<int, 1> g) { return s.b[static_cast<std::size_t>(g[0])]; });
    a.fill([&](std::array<int, 1> g) { return s.a[static_cast<std::size_t>(g[0])]; });
    c.fill([&](std::array<int, 1> g) { return s.c[static_cast<std::size_t>(g[0])]; });
    f.fill([&](std::array<int, 1> g) { return s.f[static_cast<std::size_t>(g[0])]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    TriOptions opts;
    opts.trace = trace;
    tri(b, a, c, f, x, opts);
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      makespan = t;
    }
  });
  return makespan;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E2", "Substructured tridiagonal solver",
                "section 3, Figures 1-3 (Listing 4-5)");

  // --- Figure 3: active processors per step, p = 8 ------------------------
  {
    const int p = 8, n = 512;
    ActivityTrace trace(tri_trace_steps(p), p);
    System s = random_system(n);
    (void)solve_time(s, n, p, &trace);
    Table t({"step", "phase", "active procs"});
    const char* phases[] = {"local reduction", "merge (4-row reduce)",
                            "root Thomas solve", "substitution",
                            "local substitution"};
    for (int q = 0; q < trace.nsteps(); ++q) {
      const int k = (trace.nsteps() - 1) / 2;
      const char* ph = q == 0              ? phases[0]
                       : q < k             ? phases[1]
                       : q == k            ? phases[2]
                       : q < 2 * k         ? phases[3]
                                           : phases[4];
      t.add_row({std::to_string(q), ph, std::to_string(trace.active_count(q))});
    }
    t.print(std::cout);
    std::cout << "paper Figure 3: counts p, p/2, ..., 1, ..., p/2, p.\n\n";
  }

  // --- scaling table -------------------------------------------------------
  Table t({"n", "p", "sim time", "speedup", "efficiency"});
  for (int n : {512, 4096, 16384}) {
    System s = random_system(n);
    const double t1 = solve_time(s, n, 1, nullptr);
    for (int p : {1, 2, 4, 8, 16, 32, 64}) {
      if (n / p < 2) {
        continue;
      }
      const double tp = solve_time(s, n, p, nullptr);
      t.add_row({std::to_string(n), std::to_string(p), fmt_time(tp),
                 fmt(t1 / tp, 2), fmt(t1 / tp / p, 2)});
    }
  }
  t.print(std::cout);
  std::cout << "\nshape check: speedup grows with p until the log2(p) tree\n"
            << "phases dominate; larger n pushes the saturation point out.\n";
  return 0;
}

// E6 — Listings 9-11: three-dimensional multigrid with zebra plane
// relaxation and z-semicoarsening.
//
// Reports per-cycle residual reduction (the paper gives no numbers; we
// record genuine multigrid-grade factors), simulated time per cycle, and
// the zebra/coarse-grid cost split, across processor-grid shapes.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "solvers/mg3.hpp"

namespace kali {
namespace {

struct Outcome {
  std::vector<double> residuals;  // r0, r1, ...
  double time_per_cycle;
  double zebra_time_per_cycle;  // zebra sweeps only (measured separately)
  double utilization;
};

Outcome run(int px, int py, int n, int cycles) {
  Outcome out;
  Machine m(px * py, bench::config_1989());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op3 op;
    op.hx = op.hy = op.hz = 1.0 / n;
    using D3 = DistArray3<double>;
    const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                   DimDist::block_dist()};
    D3 u(ctx, pv, {n + 1, n + 1, n + 1}, dists, {0, 1, 1});
    D3 f(ctx, pv, {n + 1, n + 1, n + 1}, dists);
    f.fill([&](std::array<int, 3> g) {
      return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
    });
    std::vector<double> res;
    res.push_back(mg3_residual_norm(op, u, f));
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int c = 0; c < cycles; ++c) {
      mg3_cycle(op, u, f);
    }
    PhaseStats stats = timer.finish();
    if (ctx.rank() == 0) {
      out.time_per_cycle = stats.makespan / cycles;
      out.utilization = stats.utilization(px * py);
    }
    // Residual history (untimed): rerun on a fresh problem.
    D3 u2(ctx, pv, {n + 1, n + 1, n + 1}, dists, {0, 1, 1});
    res.clear();
    res.push_back(mg3_residual_norm(op, u2, f));
    for (int c = 0; c < cycles; ++c) {
      mg3_cycle(op, u2, f);
      res.push_back(mg3_residual_norm(op, u2, f));
    }
    if (ctx.rank() == 0) {
      out.residuals = res;
    }
  });

  // Zebra-only timing on a fresh problem (the relaxation share of a cycle).
  Machine m2(px * py, bench::config_1989());
  m2.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op3 op;
    op.hx = op.hy = op.hz = 1.0 / n;
    using D3 = DistArray3<double>;
    const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                   DimDist::block_dist()};
    D3 u(ctx, pv, {n + 1, n + 1, n + 1}, dists, {0, 1, 1});
    D3 f(ctx, pv, {n + 1, n + 1, n + 1}, dists);
    f.fill([&](std::array<int, 3> g) {
      return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
    });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    Mg3Options opts;
    mg3_zebra_sweep(op, u, f, 0, opts);
    mg3_zebra_sweep(op, u, f, 1, opts);
    if (opts.post_zebra) {  // a full cycle runs zebra twice
      mg3_zebra_sweep(op, u, f, 0, opts);
      mg3_zebra_sweep(op, u, f, 1, opts);
    }
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out.zebra_time_per_cycle = t;
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E6", "3-D semicoarsened multigrid, zebra plane relaxation",
                "Listings 9-11");

  const int cycles = 4;
  Table t({"grid", "procs", "time/cycle", "zebra share", "util",
           "residual factors per cycle"});
  for (int n : {16, 32}) {
    for (auto [px, py] : {std::pair{1, 1}, std::pair{2, 2}, std::pair{4, 2}}) {
      Outcome o = run(px, py, n, cycles);
      std::string factors;
      for (std::size_t c = 1; c < o.residuals.size(); ++c) {
        factors += fmt(o.residuals[c] / o.residuals[c - 1], 3) + " ";
      }
      t.add_row({std::to_string(n) + "^3",
                 std::to_string(px) + "x" + std::to_string(py),
                 fmt_time(o.time_per_cycle),
                 fmt(o.zebra_time_per_cycle / o.time_per_cycle, 2),
                 fmt(o.utilization, 2), factors});
    }
  }
  t.print(std::cout);
  std::cout << "\nshape check: residual factors well below 1 and roughly\n"
            << "grid-size independent (the multigrid property); the plane\n"
            << "relaxation (inner mg2 solves) dominates the cycle cost.\n";
  return 0;
}

// Wall-clock microbenchmarks of the sequential kernels (google-benchmark).
//
// These measure the real host, not the simulated machine: they exist to
// keep the sequential building blocks honest (the cost model charges flops;
// these verify the kernels are not accidentally quadratic).
#include <benchmark/benchmark.h>

#include <complex>
#include <vector>

#include "kernels/fft.hpp"
#include "kernels/reduce_block.hpp"
#include "kernels/spline.hpp"
#include "kernels/thomas.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

void make_system(int n, std::vector<double>& b, std::vector<double>& a,
                 std::vector<double>& c, std::vector<double>& f) {
  Rng rng(5);
  const auto un = static_cast<std::size_t>(n);
  b.assign(un, 0.0);
  a.assign(un, 0.0);
  c.assign(un, 0.0);
  f.assign(un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    b[i] = i == 0 ? 0.0 : rng.uniform(-1, 1);
    c[i] = i + 1 == un ? 0.0 : rng.uniform(-1, 1);
    a[i] = std::abs(b[i]) + std::abs(c[i]) + rng.uniform(1.0, 2.0);
    f[i] = rng.uniform(-10, 10);
  }
}

void BM_Thomas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> b, a, c, f, x(static_cast<std::size_t>(n));
  make_system(n, b, a, c, f);
  for (auto _ : state) {
    thomas_solve(b, a, c, f, x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Thomas)->Arg(256)->Arg(4096)->Arg(65536);

void BM_ReduceBlock(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> b, a, c, f;
  for (auto _ : state) {
    state.PauseTiming();
    make_system(n, b, a, c, f);
    state.ResumeTiming();
    reduce_block(b, a, c, f);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceBlock)->Arg(256)->Arg(4096);

void BM_Fft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<std::complex<double>> v(static_cast<std::size_t>(n));
  for (auto& z : v) {
    z = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  }
  for (auto _ : state) {
    fft_inplace(v, false);
    fft_inplace(v, true);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384);

void BM_SplineMoments(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    y[static_cast<std::size_t>(i)] = std::sin(0.05 * i);
  }
  for (auto _ : state) {
    auto mts = spline_moments(y, 0.1);
    benchmark::DoNotOptimize(mts.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SplineMoments)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace kali

BENCHMARK_MAIN();

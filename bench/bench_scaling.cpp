// E12 — scaling sweeps on the fiber-scheduled machine: P = 1024..65536
// simulated ranks, the population the thread-per-rank Machine::run could
// never host.  Three communication patterns, each validated against the
// Predictor's closed forms (metrics/predictor.hpp) at LinkContention::kNone,
// the tier where the forms are exact or tightly bounded:
//
//  * pencil transpose — dense pairwise lockstep exchange inside sqrt(P)
//    rank groups (the fft2/ADI direction-switch shape at scale).  Lockstep
//    keeps in-flight mailbox memory O(1) per pair, which is what makes a
//    16.7M-message exchange at P=65536 simulable at all; the simulated
//    makespan must match Predictor::all_to_all_lockstep to the bit-level
//    tolerance of the clock algebra.
//
//  * corner halo — 8-neighbor halo exchange on a sqrt(P) x sqrt(P)
//    processor mesh (DistArray2 exchange_halo, HaloCorners::kYes), the
//    PR-5 scheduled exchange; message count must match the closed form.
//
//  * all_gather (hybrid tree path) — tiny contributions inside sqrt(P)
//    groups ride the binary gather+broadcast tree: O(P) messages machine
//    wide versus the dense exchange's P(sqrt(P)-1), at a bounded
//    constant-factor makespan premium over the dense closed form
//    Predictor::all_gather (serialized per-level latency is the price of
//    the message-count win).
//
//  * split-phase halo — face-mode exchange_halo_begin with the interior
//    5-point stencil computed between post and wait (Overlap::kOn), gated
//    bit-identical against its blocking oracle and required to hide a
//    nonzero fraction of in-flight wire time (overlap_ratio > 0) at every
//    point, including the P=1024 CI smoke step.
//
// `--smoke` runs P=1024 only (the CI scaling-smoke step); `--json` emits
// the BENCH_scaling.json document (docs/benchmarks.md).
#include <cstdint>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "machine/collectives.hpp"
#include "machine/schedule.hpp"
#include "metrics/predictor.hpp"
#include "runtime/dist_array.hpp"
#include "runtime/doall.hpp"

namespace kali {
namespace {

struct RunStats {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  /// Hidden / total in-flight wire time (MachineStats::overlap_ratio):
  /// zero for every blocking pattern, positive only where nonblocking
  /// completions hid wire time behind compute.
  double overlap_ratio = 0.0;
};

RunStats measure(Machine& m) {
  const MachineStats st = m.stats();
  const ProcCounters tot = st.totals();
  return {tot.msgs_sent, tot.bytes_sent, st.max_clock(), st.overlap_ratio()};
}

MachineConfig scaling_config() {
  MachineConfig cfg = bench::config_1989();
  cfg.topology = Topology::kHypercube;
  cfg.link_contention = LinkContention::kNone;  // the Predictor-exact tier
  // Harness tuning for huge P: the wait-for-graph detector costs a global
  // registry touch per blocking recv — pure overhead on a correct bench —
  // and recv timeouts only ever fire on a full scheduler stall anyway.
  cfg.deadlock_detection = false;
  return cfg;
}

/// Largest power of two whose square divides p (p is 4^k here, so just
/// sqrt): the group side for the pencil sweeps.
int group_side(int p) {
  int g = 1;
  while (g * g < p) {
    g *= 2;
  }
  KALI_CHECK(g * g == p, "scaling sweep needs P = 4^k");
  return g;
}

// --- pencil transpose: lockstep pairwise exchange inside sqrt(P) groups --

constexpr int kSlabDoubles = 32;  // 256 B per pair: memory-safe at 16.7M msgs

RunStats run_transpose(int nprocs) {
  Machine m(nprocs, scaling_config());
  m.run([&](Context& ctx) {
    const int g = group_side(ctx.nprocs());
    const int lane = ctx.rank() % g;
    const int base = ctx.rank() - lane;
    const CommSchedule sched(g);
    std::vector<double> slab(static_cast<std::size_t>(kSlabDoubles),
                             static_cast<double>(ctx.rank()));
    for (int r = 0; r < sched.rounds(); ++r) {
      const int p = sched.partner(r, lane);
      if (p == lane) {
        continue;
      }
      // Lockstep: send to the round partner, then drain its message before
      // advancing — in-flight stays at one slab per pair, whatever P is.
      ctx.send_span<double>(base + p, 7, std::span<const double>(slab));
      const auto got = ctx.recv_vec<double>(base + p, 7);
      KALI_CHECK(got.size() == slab.size(), "bad slab");
    }
  });
  return measure(m);
}

/// The exact closed form for one group (groups are independent and, on a
/// hypercube, cost-identical: lane distances inside a group do not depend
/// on the group's base rank).
double predicted_transpose(int nprocs) {
  const int g = group_side(nprocs);
  MachineConfig cfg = scaling_config();
  return Predictor(cfg, g).all_to_all_lockstep(
      g, static_cast<double>(kSlabDoubles * sizeof(double)),
      LinkContention::kNone);
}

// --- corner halo: 8-neighbor exchange on a sqrt(P) x sqrt(P) mesh --------

RunStats run_corner_halo(int nprocs) {
  const int side = group_side(nprocs);
  const int n = 4 * side;  // 4x4 interior points per rank
  Machine m(nprocs, scaling_config());
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(side, side);
    DistArray2<double> a(ctx, pv, {n, n},
                         {DimDist::block_dist(), DimDist::block_dist()},
                         {1, 1});
    a.fill([n](std::array<int, 2> c) {
      return static_cast<double>(c[0] * n + c[1]);
    });
    a.exchange_halo(HaloCorners::kYes);
  });
  return measure(m);
}

/// Ordered neighbor pairs of a side x side grid: faces + diagonals.
std::uint64_t expected_halo_msgs(int nprocs) {
  const std::uint64_t s = static_cast<std::uint64_t>(group_side(nprocs));
  return 2 * (s - 1) * s      // x faces
         + 2 * s * (s - 1)    // y faces
         + 4 * (s - 1) * (s - 1);  // diagonals
}

// --- split-phase halo: face exchange overlapped with the interior stencil

/// Face-mode halo + 5-point stencil, Overlap::kOn running the exchange
/// split-phase (exchange_halo_begin, interior ring, finish, boundary ring)
/// and Overlap::kOff the blocking oracle.  `digests` gets one FNV-1a hash
/// of each rank's result bits, so run_point can gate bit-identity between
/// the two forms without shipping the full fields around.
RunStats run_overlap_halo(int nprocs, Overlap overlap,
                          std::vector<std::uint64_t>* digests) {
  const int side = group_side(nprocs);
  const int n = 4 * side;  // 4x4 interior points per rank
  Machine m(nprocs, scaling_config());
  std::vector<std::uint64_t> local(static_cast<std::size_t>(nprocs));
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(side, side);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(),
                                   DimDist::block_dist()};
    D2 a(ctx, pv, {n, n}, dists, {1, 1});
    D2 r(ctx, pv, {n, n}, dists);
    a.fill([n](std::array<int, 2> c) {
      return static_cast<double>(c[0] * n + c[1]);
    });
    auto body = [&](int i, int j) {
      r(i, j) = 4.0 * a.at_halo({i, j}) - a.at_halo({i - 1, j}) -
                a.at_halo({i + 1, j}) - a.at_halo({i, j - 1}) -
                a.at_halo({i, j + 1});
    };
    if (overlap == Overlap::kOn) {
      auto ex = a.exchange_halo_begin();
      doall2_ring(a, Range{0, n - 1}, Range{0, n - 1}, 1, Ring::kInterior,
                  body, 6.0);
      ex.finish();
      doall2_ring(a, Range{0, n - 1}, Range{0, n - 1}, 1, Ring::kBoundary,
                  body, 6.0);
    } else {
      a.exchange_halo();
      doall2(r, Range{0, n - 1}, Range{0, n - 1}, body, 6.0);
    }
    std::uint64_t h = 1469598103934665603ull;  // FNV-1a over result bits
    r.for_each_owned([&](std::array<int, 2> g) {
      std::uint64_t bits = 0;
      const double v = r.at(g);
      std::memcpy(&bits, &v, sizeof(bits));
      h = (h ^ bits) * 1099511628211ull;
    });
    local[static_cast<std::size_t>(ctx.rank())] = h;
  });
  *digests = std::move(local);
  return measure(m);
}

// --- all_gather, hybrid tree path inside sqrt(P) groups ------------------

RunStats run_all_gather_tree(int nprocs) {
  Machine m(nprocs, scaling_config());
  m.run([&](Context& ctx) {
    const int g = group_side(ctx.nprocs());
    const int base = ctx.rank() - ctx.rank() % g;
    std::vector<int> ranks(static_cast<std::size_t>(g));
    std::iota(ranks.begin(), ranks.end(), base);
    Group grp(std::move(ranks), ctx.rank());
    const double mine = static_cast<double>(ctx.rank());
    // 8-byte contribution: far under allgather_tree_max_bytes, so the
    // hybrid rides the gather+broadcast tree — O(g) messages per group.
    const auto all = all_gather(ctx, grp, std::span<const double>(&mine, 1));
    KALI_CHECK(static_cast<int>(all.size()) == g, "bad all_gather");
  });
  return measure(m);
}

// ---------------------------------------------------------------------------

struct SweepPoint {
  int nprocs = 0;
  RunStats transpose;
  double transpose_predicted = 0.0;
  RunStats halo;
  std::uint64_t halo_expected_msgs = 0;
  RunStats ag_tree;
  std::uint64_t ag_dense_msgs = 0;
  double ag_dense_predicted = 0.0;
  RunStats overlap_halo;           ///< split-phase (Overlap::kOn)
  RunStats overlap_halo_blocking;  ///< the blocking oracle (Overlap::kOff)
};

SweepPoint run_point(int nprocs) {
  SweepPoint pt;
  pt.nprocs = nprocs;
  pt.transpose = run_transpose(nprocs);
  pt.transpose_predicted = predicted_transpose(nprocs);
  pt.halo = run_corner_halo(nprocs);
  pt.halo_expected_msgs = expected_halo_msgs(nprocs);
  pt.ag_tree = run_all_gather_tree(nprocs);
  const int g = group_side(nprocs);
  pt.ag_dense_msgs = static_cast<std::uint64_t>(nprocs) *
                     static_cast<std::uint64_t>(g - 1);
  pt.ag_dense_predicted =
      Predictor(scaling_config(), g)
          .all_gather(g, 8.0, LinkContention::kNone);

  // Validation gates (the bench fails loudly rather than record garbage).
  const double tr = pt.transpose.seconds / pt.transpose_predicted;
  KALI_CHECK(tr > 1.0 - 1e-9 && tr < 1.0 + 1e-9,
             "transpose makespan diverged from the lockstep closed form");
  KALI_CHECK(pt.halo.msgs == pt.halo_expected_msgs,
             "corner-halo message count diverged from the closed form");
  KALI_CHECK(pt.ag_tree.msgs <= std::uint64_t{8} * static_cast<std::uint64_t>(nprocs),
             "tree all_gather lost its O(P) message bound");
  // The tree path's contract (collectives.hpp): an O(P) message count —
  // the dense exchange's quadratic count is what melts the network at
  // these populations — bought with a bounded constant-factor makespan
  // premium over the dense closed form (the tree pays per-level latency
  // serially; the pipelined dense exchange amortizes it).  Sweep-observed
  // premium is ~2-3x; gate at 5x so a regression to a serialized or
  // quadratic tree still fails loudly.
  KALI_CHECK(pt.ag_tree.seconds < 5.0 * pt.ag_dense_predicted,
             "tree all_gather makespan premium exceeded 5x the dense "
             "closed form");

  // Split-phase halo: the overlapped run must be bit-identical to the
  // blocking oracle (per-rank digests), must actually hide wire time
  // (overlap_ratio > 0 — the CI smoke step's assertion at P=1024), and
  // must never be slower: the interior stencil rides inside the wire
  // window, so the kOn makespan is bounded by the kOff one.
  std::vector<std::uint64_t> dig_on;
  std::vector<std::uint64_t> dig_off;
  pt.overlap_halo = run_overlap_halo(nprocs, Overlap::kOn, &dig_on);
  pt.overlap_halo_blocking =
      run_overlap_halo(nprocs, Overlap::kOff, &dig_off);
  KALI_CHECK(dig_on == dig_off,
             "split-phase halo diverged from the blocking oracle");
  KALI_CHECK(pt.overlap_halo.overlap_ratio > 0.0,
             "split-phase halo hid no wire time (overlap_ratio == 0)");
  KALI_CHECK(pt.overlap_halo_blocking.overlap_ratio == 0.0,
             "blocking halo recorded overlap it cannot have");
  KALI_CHECK(pt.overlap_halo.seconds <=
                 pt.overlap_halo_blocking.seconds * (1.0 + 1e-9),
             "split-phase halo ran slower than the blocking oracle");
  return pt;
}

double ratio(double a, double b) { return b > 0.0 ? a / b : 0.0; }

void print_run(std::ostream& os, const char* key, const RunStats& r,
               const char* indent) {
  os << indent << "\"" << key << "\": {\"msgs\": " << r.msgs
     << ", \"wire_bytes\": " << r.bytes
     << ", \"modeled_seconds\": " << r.seconds
     << ", \"overlap_ratio\": " << r.overlap_ratio << "}";
}

void print_json(const std::vector<SweepPoint>& sweep, std::ostream& os) {
  os << "{\n"
     << "  \"bench\": \"bench_scaling\",\n"
     << "  \"machine_model\": \"1989-hypercube (10 MFLOPS, ~100us latency, "
        "2.5 MB/s links)\",\n"
     << "  \"contention\": \"none (the Predictor-exact alpha/beta tier)\",\n"
     << "  \"execution\": \"cooperative fiber scheduler, one fiber per "
        "rank (machine/scheduler.hpp)\",\n"
     << "  \"patterns\": {\n"
     << "    \"transpose\": \"lockstep pairwise exchange in sqrt(P) groups, "
        "256 B per ordered pair; predicted_seconds is "
        "Predictor::all_to_all_lockstep\",\n"
     << "    \"corner_halo\": \"8-neighbor halo on a sqrt(P)^2 mesh, 4x4 "
        "interior per rank, HaloCorners::kYes; expected_msgs is the "
        "grid closed form\",\n"
     << "    \"all_gather_tree\": \"8 B contributions in sqrt(P) groups on "
        "the hybrid's tree path; dense_* are the pairwise-exchange "
        "equivalents it replaces\",\n"
     << "    \"overlap_halo\": \"face-mode split-phase halo "
        "(exchange_halo_begin) with the interior 5-point stencil between "
        "post and wait; overlap_ratio is hidden/total in-flight wire time "
        "and the _blocking run is the bit-identical oracle\"\n"
     << "  },\n"
     << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& pt = sweep[i];
    os << "    {\"nprocs\": " << pt.nprocs << ",\n";
    print_run(os, "transpose", pt.transpose, "     ");
    os << ",\n     \"transpose_predicted_seconds\": " << pt.transpose_predicted
       << ", \"transpose_sim_over_predicted\": "
       << ratio(pt.transpose.seconds, pt.transpose_predicted) << ",\n";
    print_run(os, "corner_halo", pt.halo, "     ");
    os << ",\n     \"corner_halo_expected_msgs\": " << pt.halo_expected_msgs
       << ",\n";
    print_run(os, "all_gather_tree", pt.ag_tree, "     ");
    os << ",\n     \"all_gather_dense_msgs\": " << pt.ag_dense_msgs
       << ", \"all_gather_dense_predicted_seconds\": " << pt.ag_dense_predicted
       << ", \"tree_msg_saving\": "
       << ratio(static_cast<double>(pt.ag_dense_msgs),
                static_cast<double>(pt.ag_tree.msgs))
       << ",\n";
    print_run(os, "overlap_halo", pt.overlap_halo, "     ");
    os << ",\n";
    print_run(os, "overlap_halo_blocking", pt.overlap_halo_blocking, "     ");
    os << ",\n     \"overlap_halo_speedup\": "
       << ratio(pt.overlap_halo_blocking.seconds, pt.overlap_halo.seconds)
       << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace
}  // namespace kali

int main(int argc, char** argv) {
  using namespace kali;
  bool json = false;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::cerr << "usage: bench_scaling [--smoke] [--json]\n";
      return 2;
    }
  }

  std::vector<int> populations{1024};
  if (!smoke) {
    populations = {1024, 4096, 16384, 65536};
  }
  std::vector<SweepPoint> sweep;
  sweep.reserve(populations.size());
  for (const int p : populations) {
    sweep.push_back(run_point(p));
  }

  if (json) {
    print_json(sweep, std::cout);
    return 0;
  }

  bench::header("E12", "Scaling sweeps on the fiber-scheduled machine",
                "P = 1k..64k rank populations; Predictor closed-form "
                "validation at every point");
  Table t({"P", "transpose msgs", "transpose s (sim/pred)", "halo msgs",
           "halo s", "ag tree msgs (dense)", "ag s (dense pred)",
           "overlap ratio (speedup)"});
  for (const SweepPoint& pt : sweep) {
    t.add_row({std::to_string(pt.nprocs), std::to_string(pt.transpose.msgs),
               fmt(pt.transpose.seconds) + " (" +
                   fmt(ratio(pt.transpose.seconds, pt.transpose_predicted), 6) +
                   ")",
               std::to_string(pt.halo.msgs), fmt(pt.halo.seconds),
               std::to_string(pt.ag_tree.msgs) + " (" +
                   std::to_string(pt.ag_dense_msgs) + ")",
               fmt(pt.ag_tree.seconds) + " (" + fmt(pt.ag_dense_predicted) +
                   ")",
               fmt(pt.overlap_halo.overlap_ratio) + " (" +
                   fmt(ratio(pt.overlap_halo_blocking.seconds,
                             pt.overlap_halo.seconds),
                       6) +
                   ")"});
  }
  t.print(std::cout);
  std::cout << "\nevery point is gate-checked: the transpose makespan must "
               "match the lockstep\nclosed form, the halo message count its "
               "grid formula, the tree all_gather\nmust stay O(P) messages "
               "within 5x of the dense closed form's makespan, and\nthe "
               "split-phase halo must be bit-identical to its blocking "
               "oracle while\nhiding a nonzero fraction of wire time.\n";
  return 0;
}

// E8 — §2/§5: "a variety of distribution patterns can be tried by simple
// modifications of this program" / the discussion of alternative
// distributions for the 3-D arrays in mg3.
//
// The same ADI code runs under three distribution declarations (the only
// change is the DimDist line — the paper's point), and mg3 runs under
// three processor-grid shapes; the tables show which wins where.
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "solvers/adi.hpp"
#include "solvers/mg3.hpp"

namespace kali {
namespace {

double adi_time(int px, int py, int n, int iters) {
  Machine m(px * py, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op2 op;
    op.hx = op.hy = 1.0 / (n + 1);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 u(ctx, pv, {n, n}, dists, {1, 1});
    D2 f(ctx, pv, {n, n}, dists);
    f.fill([&](std::array<int, 2> g) {
      return rhs2(op, (g[0] + 1) * op.hx, (g[1] + 1) * op.hy);
    });
    AdiOptions opts;
    opts.op = op;
    opts.tau = adi_default_tau(op, n);
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int it = 0; it < iters; ++it) {
      adi_iterate(opts, u, f);
    }
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t / iters;
    }
  });
  return out;
}

double mg3_time(int px, int py, int n, int cycles) {
  Machine m(px * py, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op3 op;
    op.hx = op.hy = op.hz = 1.0 / n;
    using D3 = DistArray3<double>;
    const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                   DimDist::block_dist()};
    D3 u(ctx, pv, {n + 1, n + 1, n + 1}, dists, {0, 1, 1});
    D3 f(ctx, pv, {n + 1, n + 1, n + 1}, dists);
    f.fill([&](std::array<int, 3> g) {
      return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
    });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int c = 0; c < cycles; ++c) {
      mg3_cycle(op, u, f);
    }
    const double t = timer.finish().makespan;
    if (ctx.rank() == 0) {
      out = t / cycles;
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E8", "Distribution retuning by declaration change",
                "sections 2 and 5 (tuning discussion)");

  // --- ADI under three processor-array shapes (same total processors) -----
  const int n = 64, iters = 6;
  Table t({"ADI 64x64 on 16 procs", "processor array", "sim time/iter"});
  t.add_row({"dist (block, block)", "procs(4, 4)", fmt_time(adi_time(4, 4, n, iters))});
  t.add_row({"dist (block, block)", "procs(16, 1)", fmt_time(adi_time(16, 1, n, iters))});
  t.add_row({"dist (block, block)", "procs(1, 16)", fmt_time(adi_time(1, 16, n, iters))});
  t.print(std::cout);
  std::cout << "with procs(16,1) the y-direction solves are local (fast) but\n"
            << "the x-direction solves pay the full tree depth, and vice\n"
            << "versa; the square grid balances the two sweeps.\n\n";

  // --- mg3 under three shapes ------------------------------------------------
  const int n3 = 16, cycles = 2;
  Table t2({"mg3 16^3 on 4 procs", "processor array", "sim time/cycle"});
  t2.add_row({"dist (*, block, block)", "procs(2, 2)", fmt_time(mg3_time(2, 2, n3, cycles))});
  t2.add_row({"dist (*, block, block)", "procs(4, 1)", fmt_time(mg3_time(4, 1, n3, cycles))});
  t2.add_row({"dist (*, block, block)", "procs(1, 4)", fmt_time(mg3_time(1, 4, n3, cycles))});
  t2.print(std::cout);
  std::cout << "procs(4,1) keeps whole planes on processor subsets (parallel\n"
            << "plane solves, serial z); procs(1,4) parallelizes across planes\n"
            << "but each plane solve is sequential — the paper's mg3/mg2\n"
            << "dimensionality discussion, reproduced by changing one line.\n";
  return 0;
}

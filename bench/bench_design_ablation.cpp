// E13 (extension) — ablations of this reproduction's own design choices
// (DESIGN.md section 4), so the costs of each mechanism are on the record:
//
//  (a) halo exchange mode: one-round star-stencil faces (default) vs the
//      corner-filling scheduled exchange with diagonal peers
//      (HaloCorners::kYes);
//  (b) mg3 cycle shape: V(1,0) as in Listing 9 vs the W(1,1) default
//      (gamma = 2 + post-smoothing) — convergence per simulated second;
//  (c) inspector schedule reuse vs re-inspecting every sparse multiply.
#include <iostream>
#include <numeric>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "runtime/inspector.hpp"
#include "solvers/mg3.hpp"
#include "support/rng.hpp"

namespace kali {
namespace {

// ---------- (a) halo mode ----------
double halo_time(int p_side, int n, HaloCorners mode, int rounds) {
  Machine m(p_side * p_side, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(p_side, p_side);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 a(ctx, pv, {n, n}, dists, {1, 1});
    a.fill([](std::array<int, 2> g) { return 1.0 * g[0] + g[1]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int r = 0; r < rounds; ++r) {
      a.exchange_halo(mode);
    }
    const double t = timer.finish().makespan / rounds;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

// ---------- (b) mg3 cycle shape ----------
struct CycleOutcome {
  double factor;          // geometric-mean residual factor per cycle
  double time_per_cycle;  // simulated
};

CycleOutcome mg3_shape(int gamma, bool post, int plane_cycles) {
  const int n = 16, px = 2, py = 2, cycles = 3;
  Machine m(px * py, bench::config_1989());
  CycleOutcome out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(px, py);
    Op3 op;
    op.hx = op.hy = op.hz = 1.0 / n;
    using D3 = DistArray3<double>;
    const typename D3::Dists dists{DimDist::star(), DimDist::block_dist(),
                                   DimDist::block_dist()};
    D3 u(ctx, pv, {n + 1, n + 1, n + 1}, dists, {0, 1, 1});
    D3 f(ctx, pv, {n + 1, n + 1, n + 1}, dists);
    f.fill([&](std::array<int, 3> g) {
      return rhs3(op, g[0] * op.hx, g[1] * op.hy, g[2] * op.hz);
    });
    Mg3Options opts;
    opts.gamma = gamma;
    opts.post_zebra = post;
    opts.plane_cycles = plane_cycles;
    const double r0 = mg3_residual_norm(op, u, f);
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    for (int c = 0; c < cycles; ++c) {
      mg3_cycle(op, u, f, opts);
    }
    const double t = timer.finish().makespan / cycles;
    const double r = mg3_residual_norm(op, u, f);
    if (ctx.rank() == 0) {
      out.factor = std::pow(r / r0, 1.0 / cycles);
      out.time_per_cycle = t;
    }
  });
  return out;
}

// ---------- (c) inspector reuse ----------
struct SparsePattern {
  int n;
  std::vector<int> cols;  // per owned element, a pseudo-random read target
};

double gather_loop(int p, int n, int iters, bool reuse) {
  Machine m(p, bench::config_1989());
  double out = 0.0;
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    x.fill([](std::array<int, 1> g) { return 0.25 * g[0]; });
    Rng rng(11 + static_cast<std::uint64_t>(ctx.rank()));
    std::vector<int> wants;
    for (int l = 0; l < x.local_count(0) * 4; ++l) {
      wants.push_back(rng.uniform_int(0, n - 1));
    }
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    if (reuse) {
      GatherPlan plan = GatherPlan::build(x, wants);
      for (int it = 0; it < iters; ++it) {
        auto v = plan.execute(x);
        ctx.compute(static_cast<double>(v.size()));
      }
    } else {
      for (int it = 0; it < iters; ++it) {
        GatherPlan plan = GatherPlan::build(x, wants);  // re-inspect
        auto v = plan.execute(x);
        ctx.compute(static_cast<double>(v.size()));
      }
    }
    const double t = timer.finish().makespan / iters;
    if (ctx.rank() == 0) {
      out = t;
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E13", "Design-choice ablations of this reproduction",
                "DESIGN.md section 4 mechanisms");

  {
    Table t({"halo mode", "grid", "procs", "sim time/exchange"});
    for (int p : {2, 4}) {
      t.add_row({"star faces, one round (default)", "64^2",
                 std::to_string(p * p),
                 fmt_time(halo_time(p, 64, HaloCorners::kNo, 5))});
      t.add_row({"corner-filling scheduled exchange", "64^2",
                 std::to_string(p * p),
                 fmt_time(halo_time(p, 64, HaloCorners::kYes, 5))});
    }
    t.print(std::cout);
    std::cout << "the corner mode pays diagonal-peer messages on top of the faces\n"
              << "— only worth it for 9-point-style stencils (none in this paper).\n\n";
  }
  {
    Table t({"mg3 cycle shape", "residual factor/cycle", "sim time/cycle",
             "time to 1e-6 (est)"});
    struct Shape {
      const char* name;
      int gamma;
      bool post;
      int planes;
    };
    for (Shape s : {Shape{"V(1,0), 1 plane cycle (Listing 9 literal)", 1, false, 1},
                    Shape{"V(1,1), 1 plane cycle (default)", 1, true, 1},
                    Shape{"W(1,0), 2 plane cycles", 2, false, 2},
                    Shape{"W(1,1), 2 plane cycles", 2, true, 2}}) {
      const CycleOutcome o = mg3_shape(s.gamma, s.post, s.planes);
      const double cycles_needed = std::log(1e-6) / std::log(o.factor);
      t.add_row({s.name, fmt(o.factor, 3), fmt_time(o.time_per_cycle),
                 fmt_time(cycles_needed * o.time_per_cycle)});
    }
    t.print(std::cout);
    std::cout << "the literal Listing 9 cycle (no post-smoothing) converges\n"
              << "but slowly with approximate plane solves; adding the\n"
              << "post-sweep — V(1,1) — is the cheapest path to 1e-6 and is\n"
              << "the library default (this table chose it).\n\n";
  }
  {
    Table t({"gather schedule", "p", "sim time/iteration"});
    for (int p : {4, 8}) {
      t.add_row({"inspector once, executor each iter (reuse)",
                 std::to_string(p), fmt_time(gather_loop(p, 4096, 8, true))});
      t.add_row({"re-inspect every iteration", std::to_string(p),
                 fmt_time(gather_loop(p, 4096, 8, false))});
    }
    t.print(std::cout);
    std::cout << "schedule reuse removes the index exchange from the loop —\n"
              << "the PARTI/Kali amortization (paper ref [17]).\n";
  }
  return 0;
}

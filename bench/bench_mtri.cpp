// E4 — Listing 6 and the §3 claim that pipelining multiple tridiagonal
// solves "keeps more of the processors busy".
//
// Sweeps the number of systems m and compares: m serial calls to `tri`
// versus one pipelined `mtri` call — simulated time, compute utilization,
// and the speedup of pipelining.
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "kernels/mtri.hpp"
#include "kernels/tri.hpp"

namespace kali {
namespace {

struct Outcome {
  double sim_time;
  double utilization;
};

Outcome run(int p, int nsys, int n, bool pipelined) {
  Machine m(p, bench::config_1989());
  Outcome out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
    D2 F(ctx, pv, {nsys, n}, dists), X(ctx, pv, {nsys, n}, dists);
    F.fill([](std::array<int, 2> g) {
      return 1.0 + 0.01 * g[1] + 0.37 * g[0];
    });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    if (pipelined) {
      mtri_const(-1.0, 4.0, -1.0, F, X, 0);
    } else {
      for (int j = 0; j < nsys; ++j) {
        auto fj = F.fix(0, j);
        auto xj = X.fix(0, j);
        tric(-1.0, 4.0, -1.0, fj, xj);
      }
    }
    PhaseStats stats = timer.finish();
    if (ctx.rank() == 0) {
      out = {stats.makespan, stats.utilization(p)};
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E4", "Pipelined multi-system tridiagonal solver",
                "Listing 6; section 3 processor-utilization claim");

  const int p = 8, n = 1024;
  Table t({"m systems", "serial tri time", "util", "pipelined mtri time",
           "util", "pipelining speedup"});
  for (int nsys : {1, 2, 4, 8, 16, 32}) {
    const Outcome serial = run(p, nsys, n, false);
    const Outcome piped = run(p, nsys, n, true);
    t.add_row({std::to_string(nsys), fmt_time(serial.sim_time),
               fmt(serial.utilization, 2), fmt_time(piped.sim_time),
               fmt(piped.utilization, 2),
               fmt(serial.sim_time / piped.sim_time, 2)});
  }
  t.print(std::cout);
  std::cout
      << "\nshape check: speedup ~1 at m = 1 (identical algorithm) and grows\n"
      << "with m as tree phases of consecutive systems overlap; utilization\n"
      << "of the pipelined solver approaches the stage-1 bound.\n";
  return 0;
}

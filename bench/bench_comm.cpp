// E9 — §2: "the compiler produces the low-level details of the message
// passing code ... and can then generate efficient message passing code".
//
// Verifies that the runtime-generated communication matches closed-form
// expectations: message counts and payload bytes for the halo exchange,
// the substructured solver, and an ADI iteration.
#include <iostream>

#include "bench_common.hpp"
#include "machine/measure.hpp"
#include "kernels/tri.hpp"
#include "solvers/adi.hpp"

namespace kali {
namespace {

struct Traffic {
  std::uint64_t msgs;
  std::uint64_t bytes;
};

Traffic halo_traffic(int p_side, int n) {
  Machine m(p_side * p_side, bench::config_1989());
  Traffic out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid2(p_side, p_side);
    using D2 = DistArray2<double>;
    const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
    D2 a(ctx, pv, {n, n}, dists, {1, 1});
    a.fill([](std::array<int, 2> g) { return 1.0 * g[0] + g[1]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    a.exchange_halo();
    PhaseStats s = timer.finish();
    if (ctx.rank() == 0) {
      out = {s.msgs, s.bytes};
    }
  });
  return out;
}

Traffic tri_traffic(int p, int n) {
  Machine m(p, bench::config_1989());
  Traffic out{};
  m.run([&](Context& ctx) {
    ProcView pv = ProcView::grid1(p);
    DistArray1<double> f(ctx, pv, {n}, {DimDist::block_dist()});
    DistArray1<double> x(ctx, pv, {n}, {DimDist::block_dist()});
    f.fill([](std::array<int, 1> g) { return 1.0 + g[0]; });
    PhaseTimer timer(ctx, pv.group(ctx.rank()));
    tric(-1.0, 4.0, -1.0, f, x);
    PhaseStats s = timer.finish();
    if (ctx.rank() == 0) {
      out = {s.msgs, s.bytes};
    }
  });
  return out;
}

}  // namespace
}  // namespace kali

int main() {
  using namespace kali;
  bench::header("E9", "Generated communication vs closed form",
                "section 2 implicit-communication discussion");

  Table t({"operation", "measured msgs", "expected msgs", "measured bytes",
           "expected bytes"});

  {
    // Halo exchange on a p x p grid: interior edges = 2 * p * (p-1); two
    // messages per edge; n/p doubles each.
    for (int p : {2, 4}) {
      const int n = 64;
      const Traffic tr = halo_traffic(p, n);
      const std::uint64_t edges = static_cast<std::uint64_t>(2 * p * (p - 1));
      const std::uint64_t msgs = 2 * edges;
      const std::uint64_t bytes = msgs * static_cast<std::uint64_t>(n / p) * 8;
      t.add_row({"halo exchange " + std::to_string(p) + "x" + std::to_string(p),
                 std::to_string(tr.msgs), std::to_string(msgs),
                 std::to_string(tr.bytes), std::to_string(bytes)});
    }
  }
  {
    // Substructured tri on p procs: p-1 boundary-pair messages up the fold
    // (8 doubles each) and p-1 solution pairs down (2 doubles each).
    for (int p : {4, 8, 16}) {
      const Traffic tr = tri_traffic(p, 64 * p);
      const std::uint64_t msgs = static_cast<std::uint64_t>(2 * (p - 1));
      const std::uint64_t bytes =
          static_cast<std::uint64_t>(p - 1) * (8 + 2) * 8;
      t.add_row({"tri solve p=" + std::to_string(p), std::to_string(tr.msgs),
                 std::to_string(msgs), std::to_string(tr.bytes),
                 std::to_string(bytes)});
    }
  }
  t.print(std::cout);
  std::cout << "\nevery row must match exactly: the runtime sends precisely\n"
            << "the messages the hand-derived communication pattern calls for.\n";
  return 0;
}

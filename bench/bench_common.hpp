// Shared configuration for the benchmark harness.
//
// Every bench reports *simulated* time from the machine's cost model
// (deterministic, host-independent); wall-clock time of the simulation
// itself is irrelevant and not reported.  The default parameters model a
// 1989 hypercube-class node: 10 MFLOPS, ~100 us effective message latency,
// 2.5 MB/s links (see machine/config.hpp).
#pragma once

#include <iostream>
#include <string>

#include "machine/context.hpp"
#include "support/table.hpp"

namespace kali::bench {

inline MachineConfig config_1989() {
  MachineConfig cfg;  // defaults are the 1989 machine
  cfg.recv_timeout_wall = 120.0;
  return cfg;
}

/// A low-latency variant (balanced machine), for sensitivity sweeps.
inline MachineConfig config_low_latency() {
  MachineConfig cfg = config_1989();
  cfg.latency = 10.0e-6;
  cfg.per_hop = 1.0e-6;
  cfg.byte_time = 0.05e-6;
  return cfg;
}

inline void header(const std::string& id, const std::string& title,
                   const std::string& artifact) {
  std::cout << "\n=== " << id << ": " << title << "\n"
            << "    reproduces: " << artifact << "\n\n";
}

}  // namespace kali::bench

# An ipost whose handle is dropped without a wait: the in-flight window
# never closes, so no downstream event can be ordered after the buffer
# fill.  The runtime diagnoses the live run at rank return under
# KALI_CHECK_INVARIANTS ("nonblocking operation never completed");
# offline, the analyzer flags the log's unmatched ipost.
# HB-EXPECT: dangling-edge
kali-hb 1 2
send 0 0 1 0
w 0 1 mbox:1
ipost 1 0 3
recv 1 1 0 0
w 1 2 mbox:1

# Rank 1 pokes rank 0's clock with no ordering edge: both a sharding
# violation (foreign-access) and a write/write determinism race
# (unordered-write) -- the final clock depends on host scheduling.
# HB-EXPECT: foreign-access
# HB-EXPECT: unordered-write
kali-hb 1 2
w 0 0 clock:0
w 0 1 ctr:0
w 1 0 clock:0
w 1 1 clock:1

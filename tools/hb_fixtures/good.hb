# A clean exchange-then-quiesce run at P=2: rank 0 sends to rank 1
# (which parks and is woken by the push), both advance their own
# clock/counters, then a quiesce whose leader (rank 0) reads every
# rank's clock and mailbox and rewrites every ledger inside the
# qrun..qrel window.  Must analyze clean.
kali-hb 1 2
send 0 0 1 0
w 0 1 mbox:1
wake 0 2 1 1
w 0 3 clock:0
w 0 4 ctr:0
qenter 0 5 0
qrun 0 6 0
r 0 7 clock:0
r 0 8 clock:1
r 0 9 mbox:0
r 0 10 mbox:1
w 0 11 ledger:0
w 0 12 ledger:1
qrel 0 13 0
qleave 0 14 0
park 1 0 1
woken 1 1 1
recv 1 2 0 0
w 1 3 mbox:1
w 1 4 clock:1
w 1 5 ctr:1
qenter 1 6 0
qleave 1 7 0

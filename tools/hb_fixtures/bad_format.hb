# An event line with an unknown kind: the parser must reject it.
# HB-EXPECT: hb-format
kali-hb 1 2
send 0 0 1 0
frobnicate 0 1 7

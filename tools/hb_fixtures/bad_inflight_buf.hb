# Rank 0 posts an irecv and later completes it — the completion algebra
# fills the destination buffer (w buf:0) just before icomp.  Meanwhile a
# quiesce critical section on rank 1 (say, a ledger compaction scanning
# live buffers) reads that buffer.  Rank 0's qenter precedes the buffer
# fill in its program order, so the quiesce edge orders only the *post*
# before rank 1's read: the read races the in-flight fill, and whether it
# observes pre- or post-completion bytes depends on host scheduling.
# HB-EXPECT: unordered-read-write
kali-hb 1 2
ipost 0 0 7
qenter 0 1 0
w 0 2 buf:0
icomp 0 3 7
qenter 1 0 0
qrun 1 1 0
r 1 2 buf:0
qrel 1 3 0
qleave 1 4 0

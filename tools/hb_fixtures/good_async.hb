# A clean nonblocking roundtrip at P=2: rank 1 posts an irecv, rank 0's
# send lands in the mailbox, rank 1 computes through the window, then
# waits — the completion fills the buffer (w buf:1) before icomp, and
# the subsequent read of the buffer is program-ordered after the fill.
# Must analyze clean.
kali-hb 1 2
send 0 0 1 0
w 0 1 mbox:1
ipost 1 0 5
w 1 1 ctr:1
recv 1 2 0 0
w 1 3 mbox:1
w 1 4 buf:1
icomp 1 5 5
r 1 6 buf:1

# Rank 1 resumes from a park nothing woke: the woken event has no
# matching wake producer, so the resume is not justified by any
# synchronization edge.
# HB-EXPECT: dangling-edge
kali-hb 1 2
send 0 0 1 0
w 0 1 mbox:1
w 0 2 clock:0
park 1 0 1
woken 1 1 1
recv 1 2 0 0
w 1 3 mbox:1
w 1 4 clock:1

# Rank 1 peeks at its own mailbox while rank 0's push races in.
# Mailbox write/write commutes by design (insert order only feeds the
# nondeterministic mailbox_peaks diagnostic), but a racing *read*
# observes a nondeterministic queue state.
# HB-EXPECT: unordered-read-write
kali-hb 1 2
send 0 0 1 0
w 0 1 mbox:1
r 1 0 mbox:1

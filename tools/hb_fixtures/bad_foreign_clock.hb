# Rank 1 reads rank 0's clock outside any quiesce.  The read happens to
# be ordered (it follows the recv of rank 0's message, sent after the
# write), so no unordered-* rule fires -- rank-sharding is violated even
# when the access is ordered, and foreign-access alone must catch it.
# HB-EXPECT: foreign-access
kali-hb 1 2
w 0 0 clock:0
send 0 1 1 0
w 0 2 mbox:1
recv 1 0 0 0
w 1 1 mbox:1
r 1 2 clock:0
w 1 3 clock:1

// Systematic scheduler-interleaving explorer: the mechanized form of the
// runtime's determinism contract (scheduler.hpp).
//
// The contract says results — clocks, counters, message traces — are
// bit-identical for ANY host interleaving, because all simulated state is
// rank-sharded and every cross-rank effect flows through an ordered
// synchronization event.  Ordinary test runs only ever witness the
// interleavings the host happens to produce; this tool instead *drives*
// the dispatch decisions through a SchedulerHook (MachineConfig::sim_hook)
// and enumerates every reachable dispatch sequence of a set of small
// communication programs (P <= 4) on a single worker, asserting a
// bit-identical result digest (hexfloat clocks + counters + serialized
// message trace) across all of them.
//
// Enumeration is depth-first over choice prefixes: run once picking ready
// index 0 everywhere, then for every step where more than one fiber was
// runnable, branch into each alternative by replaying the executed choice
// prefix and deviating at that step.  Sleep sets [Godefroid] prune
// schedules that only permute dispatches of ranks with no static
// communication dependence (rank-level dependence: message peers, or
// everything when the program quiesces) — the DPOR-style reduction that
// keeps the ring program's schedule count tractable without losing
// coverage of any conflicting pair's orderings.
//
// --seed-bug plants a determinism race (rank 1 pokes rank 0's simulated
// clock behind the model's back) and inverts the assertion: the explorer
// must find schedules with divergent digests, and the happens-before log
// of the run (--hb FILE, analyzed by tools/check_hb.py) must flag the
// poke as an unordered foreign write.  scripts/check_hb.sh wires both
// into CI; the explore_smoke ctest entry runs `--smoke`.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/hb.hpp"
#include "machine/scheduler.hpp"
#include "machine/trace.hpp"

namespace {

using namespace kali;

// --- replay hook -----------------------------------------------------------

/// Replays a fixed choice prefix, then falls back to FIFO (index 0), and
/// records every dispatch decision: the enabled set (ready ranks) and the
/// index chosen.  Single-worker runs only — one decision stream.
class ReplayHook final : public SchedulerHook {
 public:
  struct Step {
    std::vector<int> enabled;  ///< runnable ranks, FIFO order
    std::size_t chosen = 0;    ///< index dispatched
  };

  void arm(std::vector<std::size_t> prefix) {
    prefix_ = std::move(prefix);
    steps_.clear();
    infidelity_ = false;
  }

  std::size_t pick_next(const std::vector<int>& ready) override {
    std::size_t pick = 0;
    if (steps_.size() < prefix_.size()) {
      pick = prefix_[steps_.size()];
      if (pick >= ready.size()) {
        // A faithful replay re-encounters the same enabled sets; running
        // off the end means the execution diverged from the parent run.
        infidelity_ = true;
        pick = 0;
      }
    }
    steps_.push_back(Step{ready, pick});
    return pick;
  }

  [[nodiscard]] const std::vector<Step>& steps() const { return steps_; }
  [[nodiscard]] bool infidelity() const { return infidelity_; }

 private:
  std::vector<std::size_t> prefix_;
  std::vector<Step> steps_;
  bool infidelity_ = false;
};

// --- result digest ---------------------------------------------------------

/// Everything the determinism contract promises, serialized exactly.
/// Doubles print as hexfloat so bit-level drift can't hide in rounding;
/// mailbox_peaks is deliberately excluded (documented host-interleaving
/// diagnostic, stats.hpp).
std::string digest_of(const MachineStats& st, const MessageTrace& trace) {
  std::ostringstream os;
  os << std::hexfloat;
  for (double c : st.clocks) {
    os << "clock " << c << '\n';
  }
  int rank = 0;
  for (const ProcCounters& pc : st.per_proc) {
    os << "ctr " << rank++ << ' ' << pc.msgs_sent << ' ' << pc.bytes_sent
       << ' ' << pc.msgs_recv << ' ' << pc.bytes_recv << ' ' << pc.flops
       << ' ' << pc.compute_time << ' ' << pc.overhead_time << ' '
       << pc.wait_time << ' ' << pc.link_wait_time << ' '
       << pc.edge_wait_time << ' ' << pc.contended_msgs << '\n';
    for (const auto& [tag, n] : pc.sent_by_tag) {
      os << "  sent " << tag << ' ' << n << '\n';
    }
    for (const auto& [tag, n] : pc.recv_by_tag) {
      os << "  recv " << tag << ' ' << n << '\n';
    }
    for (const auto& [edge, n] : pc.edge_msgs) {
      os << "  edge " << edge << ' ' << n << '\n';
    }
  }
  trace.write(os);
  return os.str();
}

// --- micro-programs --------------------------------------------------------

struct Program {
  std::string name;
  int nprocs = 2;
  MachineConfig cfg;  ///< sim_workers/sim_hook overwritten by the runner
  std::function<void(Context&)> body;
  /// Static rank-level dependence for sleep-set pruning: communicating
  /// pairs, or all-dependent when the program quiesces (edge-ledger
  /// compaction reads and rewrites every rank's state).
  bool all_dependent = false;
  std::vector<std::pair<int, int>> peers;
};

constexpr int kTagA = 1;  // user band: free-form (message.hpp)
constexpr int kTagB = 2;

std::vector<Program> make_programs() {
  std::vector<Program> out;

  {
    Program p;
    p.name = "pairwise-exchange";
    p.nprocs = 2;
    p.peers = {{0, 1}};
    p.body = [](Context& ctx) {
      const int other = 1 - ctx.rank();
      ctx.compute(500.0 * (ctx.rank() + 1));
      ctx.send(other, kTagA, ctx.clock());
      const double peer_clock = ctx.recv<double>(other, kTagA);
      ctx.compute(100.0 + peer_clock);
    };
    out.push_back(std::move(p));
  }

  {
    Program p;
    p.name = "ring-halo";
    p.nprocs = 4;
    p.cfg.topology = Topology::kRing;
    p.cfg.link_contention = LinkContention::kPorts;
    p.peers = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    p.body = [](Context& ctx) {
      const int n = ctx.nprocs();
      const int left = (ctx.rank() + n - 1) % n;
      const int right = (ctx.rank() + 1) % n;
      ctx.compute(200.0 * (ctx.rank() + 1));
      ctx.send(right, kTagA, static_cast<double>(ctx.rank()));
      ctx.send(left, kTagB, static_cast<double>(ctx.rank()) + 0.5);
      const double from_left = ctx.recv<double>(left, kTagA);
      const double from_right = ctx.recv<double>(right, kTagB);
      ctx.compute(10.0 * (from_left + from_right));
    };
    out.push_back(std::move(p));
  }

  {
    Program p;
    p.name = "tree-all-gather";
    p.nprocs = 4;
    // The small payload stays under allgather_tree_max_bytes, so this
    // rides the binary-tree gather+broadcast path (collectives.hpp); the
    // size-agreement allreduce uses the same tree edges.
    p.peers = {{0, 1}, {0, 2}, {1, 3}};
    p.body = [](Context& ctx) {
      std::vector<int> ranks(static_cast<std::size_t>(ctx.nprocs()));
      for (int i = 0; i < ctx.nprocs(); ++i) {
        ranks[static_cast<std::size_t>(i)] = i;
      }
      Group g(ranks, ctx.rank());
      ctx.compute(50.0 * (ctx.rank() + 1));
      const double mine = ctx.clock();
      std::vector<double> all =
          all_gather(ctx, g, std::span<const double>(&mine, 1));
      double sum = 0.0;
      for (double v : all) {
        sum += v;
      }
      ctx.compute(sum);
    };
    out.push_back(std::move(p));
  }

  {
    Program p;
    p.name = "quiesce-compact";
    p.nprocs = 3;
    p.cfg.topology = Topology::kRing;
    p.cfg.link_contention = LinkContention::kStoreForward;
    p.all_dependent = true;  // quiesce rendezvous couples every rank
    p.body = [](Context& ctx) {
      const int n = ctx.nprocs();
      const int right = (ctx.rank() + 1) % n;
      const int left = (ctx.rank() + n - 1) % n;
      ctx.send(right, kTagA, static_cast<double>(ctx.rank()));
      (void)ctx.recv<double>(left, kTagA);
      compact_edge_ledgers(ctx);  // machine-global quiesce
      ctx.send(left, kTagB, ctx.clock());
      (void)ctx.recv<double>(right, kTagB);
    };
    out.push_back(std::move(p));
  }

  return out;
}

/// The seeded determinism race: rank 1 rewrites rank 0's simulated clock
/// behind the model's back — exactly the class of bug the rank-sharding
/// contract (and the shared-state lint rule) exists to prevent.  Whether
/// the poke lands before or after rank 0's send depends on dispatch
/// order, so digests diverge; and the poke's happens-before record (a
/// manual HbLog::write, standing in for what instrumented runtime code
/// would emit) is unordered against rank 0's own clock writes in every
/// schedule, so tools/check_hb.py flags it too.
Program make_seed_bug_program() {
  Program p;
  p.name = "seed-bug";
  p.nprocs = 2;
  p.all_dependent = true;  // the race is invisible to static peer analysis
  p.body = [](Context& ctx) {
    if (ctx.rank() == 0) {
      ctx.compute(1000.0);
      ctx.send(1, kTagA, ctx.clock());
    } else {
      Machine& m = ctx.machine();
      m.proc(0).realign_clock(0.5);  // the bug: non-owner clock write
      if (HbLog* hb = m.hb_log()) {
        hb->write(1, HbObj::kClock, 0);
      }
      (void)ctx.recv<double>(0, kTagA);
    }
  };
  return p;
}

// --- exploration -----------------------------------------------------------

struct RunResult {
  std::vector<ReplayHook::Step> steps;
  std::string digest;
};

RunResult run_once(const Program& p, const std::vector<std::size_t>& prefix,
                   HbLog* hb) {
  ReplayHook hook;
  hook.arm(prefix);
  MachineConfig cfg = p.cfg;
  cfg.sim_workers = 1;  // one decision stream: the hook sees every dispatch
  cfg.sim_hook = &hook;
  Machine machine(p.nprocs, cfg);
  MessageTrace trace(p.nprocs);
  machine.attach_message_trace(&trace);
  if (hb != nullptr) {
    hb->clear();
    machine.attach_hb_log(hb);
  }
  machine.run(p.body);
  if (hook.infidelity()) {
    throw Error("explore: replay diverged from parent run on program '" +
                p.name + "' — the scheduler is not deterministic");
  }
  return RunResult{hook.steps(), digest_of(machine.stats(), trace)};
}

bool ranks_dependent(const Program& p, int a, int b) {
  if (p.all_dependent || a == b) {
    return true;
  }
  for (const auto& [x, y] : p.peers) {
    if ((x == a && y == b) || (x == b && y == a)) {
      return true;
    }
  }
  return false;
}

struct ExploreOutcome {
  std::size_t schedules = 0;   ///< executions performed
  std::size_t divergent = 0;   ///< executions whose digest != baseline
  std::size_t max_steps = 0;   ///< longest dispatch sequence seen
  bool capped = false;         ///< stopped at the schedule budget
  std::string baseline;        ///< digest of the FIFO run
  std::string divergent_example;  ///< first divergent digest (diagnostics)
};

void explore(const Program& p, const std::vector<std::size_t>& prefix,
             const std::set<int>& sleep, bool prune, std::size_t max_schedules,
             ExploreOutcome& out) {
  if (out.schedules >= max_schedules) {
    out.capped = true;
    return;
  }
  RunResult res = run_once(p, prefix, nullptr);
  ++out.schedules;
  out.max_steps = std::max(out.max_steps, res.steps.size());
  if (out.baseline.empty()) {
    out.baseline = res.digest;
  } else if (res.digest != out.baseline) {
    ++out.divergent;
    if (out.divergent_example.empty()) {
      out.divergent_example = res.digest;
    }
  }

  // Walk the executed schedule forward from the first free position,
  // branching into every alternative dispatch.  `live` is the sleep set
  // at the current position; an alternative in it would only commute with
  // dispatches already explored from an earlier sibling subtree.
  std::set<int> live = sleep;
  std::vector<std::size_t> child;
  child.reserve(res.steps.size() + 1);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    child.push_back(res.steps[i].chosen);
  }
  for (std::size_t pos = prefix.size(); pos < res.steps.size(); ++pos) {
    const ReplayHook::Step& st = res.steps[pos];
    const int chosen_rank = st.enabled[st.chosen];
    std::set<int> siblings = live;
    siblings.insert(chosen_rank);  // the default continuation explores it
    for (std::size_t alt = 0; alt < st.enabled.size(); ++alt) {
      if (alt == st.chosen) {
        continue;
      }
      const int y = st.enabled[alt];
      if (prune && live.count(y) != 0) {
        continue;  // commutes with an already-explored sibling subtree
      }
      std::set<int> child_sleep;
      if (prune) {
        for (int u : siblings) {
          if (u != y && !ranks_dependent(p, u, y)) {
            child_sleep.insert(u);
          }
        }
      }
      child.push_back(alt);
      explore(p, child, child_sleep, prune, max_schedules, out);
      child.pop_back();
      if (out.capped) {
        return;
      }
      siblings.insert(y);
    }
    // Advance along the default path: dependent dispatches wake sleepers.
    if (prune) {
      std::set<int> next;
      for (int u : live) {
        if (!ranks_dependent(p, u, chosen_rank)) {
          next.insert(u);
        }
      }
      live = std::move(next);
    }
    child.push_back(st.chosen);
  }
}

// --- driver ----------------------------------------------------------------

int usage() {
  std::cerr
      << "usage: explore_scheduler [options]\n"
         "  --smoke             bounded pass (schedule cap is a soft stop)\n"
         "  --max-schedules N   per-program schedule budget (default 20000;\n"
         "                      exceeding it fails unless --smoke)\n"
         "  --program NAME      run one program (repeatable); default all\n"
         "  --no-prune          disable sleep-set pruning\n"
         "  --seed-bug          run the seeded determinism race instead and\n"
         "                      REQUIRE divergent digests\n"
         "  --hb FILE           write the FIFO run's happens-before log\n"
         "  --list              list programs and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool prune = true;
  bool seed_bug = false;
  std::size_t max_schedules = 20000;
  std::string hb_path;
  std::set<std::string> only;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      max_schedules = std::min<std::size_t>(max_schedules, 64);
    } else if (arg == "--no-prune") {
      prune = false;
    } else if (arg == "--seed-bug") {
      seed_bug = true;
    } else if (arg == "--max-schedules" && i + 1 < argc) {
      max_schedules = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--program" && i + 1 < argc) {
      only.insert(argv[++i]);
    } else if (arg == "--hb" && i + 1 < argc) {
      hb_path = argv[++i];
    } else if (arg == "--list") {
      for (const Program& p : make_programs()) {
        std::cout << p.name << '\n';
      }
      std::cout << make_seed_bug_program().name << '\n';
      return 0;
    } else {
      return usage();
    }
  }

  std::vector<Program> programs;
  if (seed_bug) {
    programs.push_back(make_seed_bug_program());
    prune = false;  // the race is exactly what static dependence can't see
  } else {
    for (Program& p : make_programs()) {
      if (only.empty() || only.count(p.name) != 0) {
        programs.push_back(std::move(p));
      }
    }
    if (programs.empty()) {
      std::cerr << "explore_scheduler: no such program\n";
      return usage();
    }
  }

  bool failed = false;
  bool hb_written = false;
  for (const Program& p : programs) {
    // The FIFO run doubles as the happens-before specimen for --hb.
    if (!hb_path.empty() && !hb_written) {
      HbLog hb(p.nprocs);
      (void)run_once(p, {}, &hb);
      std::ofstream os(hb_path);
      if (!os) {
        std::cerr << "explore_scheduler: cannot open " << hb_path << '\n';
        return 2;
      }
      hb.write_log(os);
      hb_written = true;
    }

    ExploreOutcome out;
    try {
      explore(p, {}, {}, prune, max_schedules, out);
    } catch (const std::exception& e) {
      std::cerr << p.name << ": exploration aborted: " << e.what() << '\n';
      failed = true;
      continue;
    }

    std::cout << p.name << ": " << out.schedules << " schedules (longest "
              << out.max_steps << " dispatches, prune="
              << (prune ? "on" : "off") << ")";
    if (out.capped) {
      std::cout << " [capped at " << max_schedules << "]";
    }
    std::cout << ": " << (out.divergent == 0 ? "all digests identical"
                                             : "DIGESTS DIVERGE")
              << (out.divergent != 0
                      ? " (" + std::to_string(out.divergent) + " of " +
                            std::to_string(out.schedules) + ")"
                      : "")
              << '\n';

    if (seed_bug) {
      if (out.divergent == 0) {
        std::cerr << p.name
                  << ": FAIL: the seeded race produced no divergent "
                     "schedule — the explorer lost its teeth\n";
        failed = true;
      }
    } else {
      if (out.divergent != 0) {
        std::cerr << p.name << ": FAIL: determinism contract violated\n";
        failed = true;
      }
      if (out.capped && !smoke) {
        std::cerr << p.name
                  << ": FAIL: schedule budget exhausted before full "
                     "coverage; raise --max-schedules\n";
        failed = true;
      }
    }
  }
  return failed ? 1 : 0;
}

#!/usr/bin/env python3
"""Offline happens-before determinism analyzer for kali HB logs.

The runtime's determinism contract (docs/machine-model.md, "Execution
model") promises bit-identical clocks, counters, and traces across host
interleavings because all simulated state is rank-sharded and every
cross-rank effect flows through a synchronization event whose order the
*model* fixes (a mailbox push matched by a recv, a park released by a
wake, a quiesce rendezvous).  ThreadSanitizer cannot check that promise:
a mutex orders two accesses physically without fixing their logical
order, so a determinism race -- results that depend on which fiber the
host happened to run first -- is invisible to it.

This tool replays a `kali-hb` event log (machine/hb.hpp HbLog), rebuilds
the happens-before partial order with vector clocks, and flags
conflicting accesses to shared simulator state that the partial order
does not cover.

Event grammar (one event per line, after a `kali-hb 1 <nprocs>` header;
<actor> is a rank or -1 for the scheduler's machine context, <aseq> is
the actor-local sequence number, dense from 0 per actor):

    send   <actor> <aseq> <dst> <mseq>
    recv   <actor> <aseq> <src> <mseq>
    park   <actor> <aseq> <parkseq>
    wake   <actor> <aseq> <target> <parkseq>
    woken  <actor> <aseq> <parkseq>
    qenter <actor> <aseq> <gen>
    qrun   <actor> <aseq> <gen>
    qrel   <actor> <aseq> <gen>
    qleave <actor> <aseq> <gen>
    ipost  <actor> <aseq> <opid>
    icomp  <actor> <aseq> <opid>
    r      <actor> <aseq> <obj>:<owner>
    w      <actor> <aseq> <obj>:<owner>

with <obj> one of clock, link, ledger, ctr, epoch, mbox, buf.

Happens-before edges:
  - program order within each actor (aseq ascending);
  - send (src, mseq) -> recv (src, mseq) on the receiver;
  - wake (target, parkseq) -> woken (target, parkseq) on the target;
  - every qenter(gen) -> the qrun(gen) (the quiesce leader saw every
    peer suspended before running the critical section);
  - qrel(gen) -> every qleave(gen) (peers resume only after release);
  - ipost (actor, opid) -> icomp (actor, opid): a nonblocking
    operation's in-flight window (machine/hb.hpp post/complete).  An
    ipost with no matching icomp is a leaked handle (the runtime
    diagnoses the same condition at rank return under
    KALI_CHECK_INVARIANTS); duplicates of either end are dangling-edge
    findings.  The completion's buffer fill is a `w buf:<rank>` access,
    so compute reading an in-flight irecv buffer without an ordering
    edge to the completion is an unordered-read-write.

Rules (all self-tested against tools/hb_fixtures; `--list-rules` prints
this table, docs/static-analysis.md embeds it):

  hb-format            malformed header/event lines, unknown object
                       classes, non-dense actor sequence numbers
  dangling-edge        a consumer event (recv / woken / qrun / qleave)
                       with no matching producer, or duplicate producers
                       for one edge key
  foreign-access       an actor touching another actor's clock / link /
                       ledger / ctr / epoch outside a quiesce critical
                       section (between qrun and qrel) -- the sharding
                       contract forbids it outright, conflict or not
  unordered-write      two writes to the same object not ordered by
                       happens-before (skipped for mbox: cross-sender
                       mailbox inserts commute by design)
  unordered-read-write a read and a write of the same object not ordered
                       by happens-before (mbox included: an unordered
                       read of a mailbox observes a racing insert)

Exit status: 0 when no findings, 1 when findings, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

RULES = {
    "hb-format": "malformed header or event line, unknown object, "
                 "or non-dense actor sequence numbers",
    "dangling-edge": "edge consumer (recv/woken/qrun/qleave) without a "
                     "matching producer, or duplicate producers",
    "foreign-access": "non-owner access to clock/link/ledger/ctr/epoch "
                      "outside a quiesce critical section",
    "unordered-write": "two writes to one object unordered by "
                       "happens-before (mbox exempt: inserts commute)",
    "unordered-read-write": "read and write of one object unordered by "
                            "happens-before",
}

OBJS = {"clock", "link", "ledger", "ctr", "epoch", "mbox", "buf"}

# kind -> number of argument fields after "<kind> <actor> <aseq>"
ARITY = {
    "send": 2, "recv": 2, "park": 1, "wake": 2, "woken": 1,
    "qenter": 1, "qrun": 1, "qrel": 1, "qleave": 1,
    "ipost": 1, "icomp": 1, "r": 1, "w": 1,
}


class Finding:
    def __init__(self, rule: str, where: str, msg: str) -> None:
        self.rule = rule
        self.where = where
        self.msg = msg

    def __str__(self) -> str:
        return f"{self.where}: [{self.rule}] {self.msg}"


class Event:
    __slots__ = ("kind", "actor", "aseq", "args", "line", "vc")

    def __init__(self, kind: str, actor: int, aseq: int, args: list[str],
                 line: int) -> None:
        self.kind = kind
        self.actor = actor
        self.aseq = aseq
        self.args = args
        self.line = line
        self.vc: dict[int, int] = {}


def parse(path: Path, findings: list[Finding]):
    """Parse a log into {actor: [Event, ...]} (program order), or None on
    an unrecoverable format error."""
    try:
        text = path.read_text()
    except OSError as e:
        findings.append(Finding("hb-format", str(path), f"unreadable: {e}"))
        return None
    lines = text.splitlines()
    # Header is the first substantive line (leading comments/blanks OK --
    # fixtures carry their description and HB-EXPECT declarations on top).
    head_idx = next((i for i, ln in enumerate(lines)
                     if ln.strip() and not ln.lstrip().startswith("#")),
                    None)
    if head_idx is None or not lines[head_idx].startswith("kali-hb "):
        findings.append(Finding("hb-format", f"{path}:1",
                                "missing 'kali-hb 1 <nprocs>' header"))
        return None
    head = lines[head_idx].split()
    if len(head) != 3 or head[1] != "1" or not head[2].isdigit() \
            or int(head[2]) < 1:
        findings.append(Finding("hb-format", f"{path}:{head_idx + 1}",
                                f"bad header {lines[head_idx]!r}"))
        return None
    nprocs = int(head[2])
    actors: dict[int, list[Event]] = {}
    ok = True
    for i, raw in enumerate(lines[head_idx + 1:], start=head_idx + 2):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        kind = parts[0]
        if kind not in ARITY or len(parts) != 3 + ARITY[kind]:
            findings.append(Finding("hb-format", f"{path}:{i}",
                                    f"malformed event {line!r}"))
            ok = False
            continue
        try:
            actor = int(parts[1])
            aseq = int(parts[2])
        except ValueError:
            findings.append(Finding("hb-format", f"{path}:{i}",
                                    f"non-integer actor/aseq in {line!r}"))
            ok = False
            continue
        if actor < -1 or actor >= nprocs:
            findings.append(Finding("hb-format", f"{path}:{i}",
                                    f"actor {actor} out of range "
                                    f"[-1, {nprocs})"))
            ok = False
            continue
        args = parts[3:]
        if kind in ("r", "w"):
            if ":" not in args[0]:
                findings.append(Finding("hb-format", f"{path}:{i}",
                                        f"access without <obj>:<owner>: "
                                        f"{line!r}"))
                ok = False
                continue
            obj, _, owner = args[0].partition(":")
            if obj not in OBJS:
                findings.append(Finding("hb-format", f"{path}:{i}",
                                        f"unknown object class {obj!r}"))
                ok = False
                continue
            try:
                owner_i = int(owner)
            except ValueError:
                owner_i = None
            if owner_i is None or owner_i < 0 or owner_i >= nprocs:
                findings.append(Finding("hb-format", f"{path}:{i}",
                                        f"bad owner rank in {line!r}"))
                ok = False
                continue
            args = [obj, owner]
        ev = Event(kind, actor, aseq, args, i)
        seq = actors.setdefault(actor, [])
        if aseq != len(seq):
            findings.append(Finding("hb-format", f"{path}:{i}",
                                    f"actor {actor} sequence not dense: "
                                    f"got {aseq}, expected {len(seq)}"))
            ok = False
            continue
        seq.append(ev)
    if not ok:
        return None
    return actors


def build_edges(path: Path, actors, findings: list[Finding]):
    """Cross-actor edges as (src_event, dst_event) pairs; dangling-edge
    findings for consumers with no producer and duplicated producers."""
    sends: dict[tuple[int, int], Event] = {}
    wakes: dict[tuple[int, int], Event] = {}
    qenters: dict[int, list[Event]] = {}
    qruns: dict[int, Event] = {}
    qrels: dict[int, Event] = {}
    iposts: dict[tuple[int, int], Event] = {}
    icomps: set[tuple[int, int]] = set()

    def put_unique(table, key, ev, what):
        if key in table:
            findings.append(Finding(
                "dangling-edge", f"{path}:{ev.line}",
                f"duplicate {what} for key {key} "
                f"(first at line {table[key].line})"))
        else:
            table[key] = ev

    for evs in actors.values():
        for ev in evs:
            if ev.kind == "send":
                put_unique(sends, (ev.actor, int(ev.args[1])), ev,
                           "send producer")
            elif ev.kind == "wake":
                put_unique(wakes, (int(ev.args[0]), int(ev.args[1])), ev,
                           "wake producer")
            elif ev.kind == "qenter":
                qenters.setdefault(int(ev.args[0]), []).append(ev)
            elif ev.kind == "qrun":
                put_unique(qruns, int(ev.args[0]), ev, "qrun")
            elif ev.kind == "qrel":
                put_unique(qrels, int(ev.args[0]), ev, "qrel")
            elif ev.kind == "ipost":
                put_unique(iposts, (ev.actor, int(ev.args[0])), ev,
                           "ipost producer")

    edges: list[tuple[Event, Event]] = []
    for evs in actors.values():
        for ev in evs:
            if ev.kind == "recv":
                key = (int(ev.args[0]), int(ev.args[1]))
                src = sends.get(key)
                if src is None:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"recv of (src={key[0]}, mseq={key[1]}) "
                        f"with no matching send"))
                else:
                    edges.append((src, ev))
            elif ev.kind == "woken":
                key = (ev.actor, int(ev.args[0]))
                src = wakes.get(key)
                if src is None:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"woken (rank={key[0]}, parkseq={key[1]}) "
                        f"with no matching wake"))
                else:
                    edges.append((src, ev))
            elif ev.kind == "qrun":
                gen = int(ev.args[0])
                ents = qenters.get(gen, [])
                if not ents:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"qrun(gen={gen}) with no qenter"))
                for e in ents:
                    edges.append((e, ev))
            elif ev.kind == "qleave":
                gen = int(ev.args[0])
                rel = qrels.get(gen)
                if rel is None:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"qleave(gen={gen}) with no qrel"))
                else:
                    edges.append((rel, ev))
            elif ev.kind == "icomp":
                key = (ev.actor, int(ev.args[0]))
                src = iposts.get(key)
                if src is None:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"icomp (actor={key[0]}, opid={key[1]}) "
                        f"with no matching ipost"))
                elif key in icomps:
                    findings.append(Finding(
                        "dangling-edge", f"{path}:{ev.line}",
                        f"duplicate icomp for (actor={key[0]}, "
                        f"opid={key[1]})"))
                else:
                    icomps.add(key)
                    edges.append((src, ev))
    # A posted operation never completed is a leaked handle: the in-flight
    # window never closed, so nothing downstream can be ordered after it.
    for key, ev in sorted(iposts.items(),
                          key=lambda kv: kv[1].line):
        if key not in icomps:
            findings.append(Finding(
                "dangling-edge", f"{path}:{ev.line}",
                f"ipost (actor={key[0]}, opid={key[1]}) never completed "
                f"(no matching icomp: leaked handle)"))
    return edges


def compute_vcs(actors, edges) -> None:
    """Per-event vector clocks over the union of program order and cross
    edges.  ev.vc maps actor -> count of that actor's events
    happening-before-or-equal ev; ev2 is ordered after ev1 iff
    ev2.vc.get(ev1.actor, 0) >= ev1.aseq + 1."""
    incoming: dict[Event, list[Event]] = {}
    for src, dst in edges:
        incoming.setdefault(dst, []).append(src)

    # Worklist in per-actor cursor order: an event is processable once its
    # program-order predecessor and all cross-edge sources are done.
    done: set[Event] = set()
    cursors = {a: 0 for a in actors}
    progress = True
    while progress:
        progress = False
        for a, evs in actors.items():
            while cursors[a] < len(evs):
                ev = evs[cursors[a]]
                srcs = incoming.get(ev, [])
                if any(s not in done for s in srcs):
                    break
                vc: dict[int, int] = {}
                if ev.aseq > 0:
                    vc.update(evs[ev.aseq - 1].vc)
                for s in srcs:
                    for k, v in s.vc.items():
                        if v > vc.get(k, 0):
                            vc[k] = v
                vc[a] = ev.aseq + 1
                ev.vc = vc
                done.add(ev)
                cursors[a] += 1
                progress = True
    # Any event never processed sits on a happens-before cycle -- possible
    # only for a corrupt log (dangling-edge / format findings will have
    # fired); leave its vc empty (treated as unordered, which is sound).


def ordered(e1: Event, e2: Event) -> bool:
    """True iff e1 happens-before e2 or e2 happens-before e1."""
    return (e2.vc.get(e1.actor, 0) >= e1.aseq + 1 or
            e1.vc.get(e2.actor, 0) >= e2.aseq + 1)


def check_accesses(path: Path, actors, findings: list[Finding]) -> None:
    # foreign-access: pre-compute each actor's quiesce windows as aseq
    # intervals [qrun.aseq, qrel.aseq].
    windows: dict[int, list[tuple[int, int]]] = {}
    for a, evs in actors.items():
        run_at = None
        for ev in evs:
            if ev.kind == "qrun":
                run_at = ev.aseq
            elif ev.kind == "qrel" and run_at is not None:
                windows.setdefault(a, []).append((run_at, ev.aseq))
                run_at = None
        if run_at is not None:  # qrun with no qrel: open to end of shard
            windows.setdefault(a, []).append((run_at, len(evs)))

    def in_quiesce(ev: Event) -> bool:
        return any(lo <= ev.aseq <= hi for lo, hi in windows.get(ev.actor, []))

    # Per (object, owner) key, split accesses per actor (a single actor's
    # accesses are totally ordered by program order, so conflicts only
    # arise across actors).
    writes: dict[tuple[str, int], dict[int, list[Event]]] = {}
    reads: dict[tuple[str, int], dict[int, list[Event]]] = {}
    for evs in actors.values():
        for ev in evs:
            if ev.kind not in ("r", "w"):
                continue
            obj, owner = ev.args[0], int(ev.args[1])
            if obj != "mbox" and ev.actor != owner and not in_quiesce(ev):
                findings.append(Finding(
                    "foreign-access", f"{path}:{ev.line}",
                    f"actor {ev.actor} accesses {obj}:{owner} outside a "
                    f"quiesce critical section (rank-sharding violation)"))
            table = writes if ev.kind == "w" else reads
            table.setdefault((obj, owner), {}).setdefault(
                ev.actor, []).append(ev)

    def first_unordered(la: list[Event], a: int, lb: list[Event], b: int):
        """First unordered pair between actor a's accesses `la` and actor
        b's accesses `lb` (each in program order), or None.  For a fixed
        event eb, the events of `la` not happening-before eb are the
        suffix aseq >= eb.vc[a], and within it vc[b] is non-decreasing --
        so only the suffix's first element can be unordered with eb."""
        from bisect import bisect_left
        aseqs = [ea.aseq for ea in la]
        for eb in lb:
            i = bisect_left(aseqs, eb.vc.get(a, 0))
            if i < len(la) and la[i].vc.get(b, 0) <= eb.aseq:
                return la[i], eb
        return None

    def report(rule: str, obj: str, owner: int, e1: Event, e2: Event):
        first, second = (e1, e2) if e1.line <= e2.line else (e2, e1)
        findings.append(Finding(
            rule, f"{path}:{second.line}",
            f"{second.kind} of {obj}:{owner} by actor {second.actor} "
            f"unordered with {first.kind} by actor {first.actor} "
            f"(line {first.line})"))

    keys = sorted(set(writes) | set(reads))
    for key in keys:
        obj, owner = key
        w_by = writes.get(key, {})
        r_by = reads.get(key, {})
        w_actors = sorted(w_by)
        # write/write (mbox exempt: cross-sender inserts commute)
        if obj != "mbox":
            for i, a in enumerate(w_actors):
                for b in w_actors[i + 1:]:
                    pair = first_unordered(w_by[a], a, w_by[b], b)
                    if pair:
                        report("unordered-write", obj, owner, *pair)
        # read/write (mbox included: a read racing an insert observes a
        # nondeterministic queue)
        for a in w_actors:
            for b in sorted(r_by):
                if a == b:
                    continue
                pair = first_unordered(w_by[a], a, r_by[b], b)
                if pair:
                    report("unordered-read-write", obj, owner, *pair)


def analyze(path: Path) -> list[Finding]:
    findings: list[Finding] = []
    actors = parse(path, findings)
    if actors is None:
        return findings
    edges = build_edges(path, actors, findings)
    compute_vcs(actors, edges)
    check_accesses(path, actors, findings)
    return findings


# ---------------------------------------------------------------------------
# Fixture self-test: every tools/hb_fixtures/*.hb declares its expected
# findings in `# HB-EXPECT: <rule>` comment lines (none = must pass clean).
# ---------------------------------------------------------------------------

def self_test(fixtures_dir: Path) -> int:
    failures = 0
    fixtures = sorted(fixtures_dir.glob("*.hb"))
    if not fixtures:
        print(f"self-test: no fixtures under {fixtures_dir}", file=sys.stderr)
        return 1
    for fx in fixtures:
        expected: list[str] = []
        for line in fx.read_text().splitlines():
            if line.startswith("# HB-EXPECT:"):
                expected.append(line.split(":", 1)[1].strip())
        got = sorted(f.rule for f in analyze(fx))
        if got != sorted(expected):
            failures += 1
            print(f"self-test FAIL {fx.name}: expected rules "
                  f"{sorted(expected)}, got {got}", file=sys.stderr)
            for f in analyze(fx):
                print(f"    {f}", file=sys.stderr)
    total = len(fixtures)
    if failures:
        print(f"self-test: {failures}/{total} fixtures failed",
              file=sys.stderr)
        return 1
    print(f"self-test: {total} fixtures OK")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        description="kali happens-before determinism analyzer")
    ap.add_argument("logs", nargs="*", type=Path,
                    help="HB logs (kali-hb format) to analyze")
    ap.add_argument("--self-test", action="store_true",
                    help="run the analyzer against tools/hb_fixtures")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule table (docs drift check)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    if args.self_test:
        return self_test(Path(__file__).resolve().parent / "hb_fixtures")
    if not args.logs:
        ap.print_usage(sys.stderr)
        return 2

    nfind = 0
    for log in args.logs:
        findings = analyze(log)
        for f in findings:
            print(f)
        nfind += len(findings)
    if nfind:
        print(f"check_hb: {nfind} finding(s)", file=sys.stderr)
        return 1
    print(f"check_hb: {len(args.logs)} log(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

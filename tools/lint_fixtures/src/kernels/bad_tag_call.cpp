// Fixture: integer-literal message tag at a send/recv call site in
// kernel code (second argument must be a registered kTag* constant).
#include "machine/message.hpp"

namespace kali {

struct FakeCtx {
  void send_bytes(int peer, int tag, const void* p, unsigned long n);
};

void push(FakeCtx& ctx, const void* p, unsigned long n) {
  ctx.send_bytes(0, 7, p, n);  // LINT-EXPECT: raw-tag
  ctx.send_bytes(0, kTagHaloBase, p, n);  // registered constant: clean
}

}  // namespace kali

// Miniature reserved-tag registry for the lint self-test.  The real one
// lives at src/machine/message.hpp; the linter exempts this path from
// raw-tag and harvests the k* constants as the registry symbol set.
#pragma once

namespace kali {

inline constexpr int kRuntimeTagBase = 1 << 20;
inline constexpr int kTagHaloBase = kRuntimeTagBase;

}  // namespace kali

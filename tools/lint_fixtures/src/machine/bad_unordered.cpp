// Fixture: hash containers are banned in machine/runtime code, and a
// reasoned pragma waives the ban.
#include <unordered_map>
#include <unordered_set>

namespace kali {

int count_things() {
  std::unordered_map<int, int> m;  // LINT-EXPECT: unordered-container
  // Waived on purpose: the fixture proves the pragma suppresses the rule.
  // kali-lint: allow(unordered-container)
  std::unordered_set<int> s;
  return static_cast<int>(m.size() + s.size());
}

}  // namespace kali

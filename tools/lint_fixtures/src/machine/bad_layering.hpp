// Fixture: the machine layer must not reach up into runtime.
#pragma once

#include "machine/message.hpp"
#include "runtime/bad_tag.hpp"  // LINT-EXPECT: layering
#include "support/whatever.hpp"

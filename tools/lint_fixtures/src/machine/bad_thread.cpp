// Fixture: raw host-threading primitives in machine-layer code that is
// not the fiber scheduler — each flagged, one waived.  The <condition_variable>
// include itself also trips the rule (the mailbox carries a waiver for its
// standalone recv path; nothing else may).
#include <condition_variable>  // LINT-EXPECT: raw-thread
#include <thread>  // LINT-EXPECT: raw-thread

namespace kali {

void spawn_per_rank_threads() {
  std::thread t([] {});  // LINT-EXPECT: raw-thread
  t.join();
}

thread_local int per_worker_cache = 0;  // LINT-EXPECT: raw-thread

int read_cache() {
  // Sanctioned escape hatch, reason and all:
  // kali-lint: allow(raw-thread) — harness-side watchdog, outside any rank
  static std::condition_variable watchdog_cv;
  (void)watchdog_cv;
  return per_worker_cache;
}

}  // namespace kali

// Fixture: wall-clock reads in simulator code, one flagged and one
// waived by a pragma on the line above.
#include <chrono>

namespace kali {

double leak_wall_time() {
  auto bad = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  // Deadlock-guard style waiver; never feeds simulated clocks.
  // kali-lint: allow(wall-clock)
  auto waived = std::chrono::system_clock::now();
  (void)waived;
  return std::chrono::duration<double>(bad.time_since_epoch()).count();
}

}  // namespace kali

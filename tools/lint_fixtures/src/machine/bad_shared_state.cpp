// Fixture: Processor cost-model mutators invoked outside the sanctioned
// files (context.cpp / collectives.cpp / machine.cpp / processor.hpp) --
// ad-hoc pokes at rank-sharded simulator state break the determinism
// contract the happens-before analyzer checks at run time.
#include "machine/processor.hpp"

namespace kali {

void poke(Processor& p) {
  p.realign_clock(0.5);    // LINT-EXPECT: shared-state
  p.bump_barrier_epoch();  // LINT-EXPECT: shared-state
  // kali-lint: allow(shared-state) — fixture: a reasoned waiver suppresses
  p.clear_link_state();
}

}  // namespace kali

// Fixture: runtime tag constants must derive from the registry.
#pragma once

#include "machine/message.hpp"

namespace kali {

constexpr int kTagAdHoc = 1234567;  // LINT-EXPECT: raw-tag
constexpr int kTagDerived = kTagHaloBase + 3;  // registry-derived: clean

}  // namespace kali

// Fixture: direct ctx send/recv in runtime code is flagged unless it
// lives inside the send_one/recv_one closures handed to
// detail::issue_exchange.
#include "machine/message.hpp"
#include "runtime/bad_tag.hpp"

namespace kali {

struct FakeCtx {
  void send_span(int peer, int tag, const int* data);
  void recv_into(int peer, int tag, int* data);
};

void naive_exchange(FakeCtx& ctx, const int* out, int* in) {
  ctx.send_span(1, kTagDerived, out);  // LINT-EXPECT: raw-exchange
  ctx.recv_into(1, kTagDerived, in);   // LINT-EXPECT: raw-exchange
}

void scheduled_exchange(FakeCtx& ctx, const int* out, int* in) {
  auto send_one = [&](int peer) {
    ctx.send_span(peer, kTagDerived, out);  // inside closure: clean
  };
  auto recv_one = [&](int peer) {
    ctx.recv_into(peer, kTagDerived, in);  // inside closure: clean
  };
  send_one(0);
  recv_one(0);
}

}  // namespace kali

// Fixture: application (solver) tags must be plain literals inside the
// user band [0, 1 << 20); and solvers must not include metrics headers.
#include "machine/message.hpp"
#include "metrics/stats.hpp"  // LINT-EXPECT: layering

namespace kali {

constexpr int kTagAppProbe = 17;  // user band: clean
constexpr int kTagAppShifted = 1 << 12;  // shift still evaluates: clean
constexpr int kTagAppTooHigh = 1 << 21;  // LINT-EXPECT: raw-tag

}  // namespace kali

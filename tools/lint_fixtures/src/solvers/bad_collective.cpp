// Fixture: collective/barrier calls nested under rank-dependent
// conditionals are flagged — a collective only some members enter
// deadlocks the rest.  Unconditional collectives, rank-conditioned
// point-to-point, and waived calls stay clean.
#include "machine/message.hpp"

namespace kali {

struct FakeGroup {
  int size;
};

struct FakeCtx {
  int rank();
  void send(int peer, int tag, double v);
};

void barrier(FakeCtx& ctx, const FakeGroup& g);
double allreduce_max(FakeCtx& ctx, const FakeGroup& g, double v);
void exchange_halo(FakeCtx& ctx);

void symmetric_phase(FakeCtx& ctx, const FakeGroup& g) {
  barrier(ctx, g);  // unconditional: clean
  if (ctx.rank() == 0) {
    ctx.send(1, kTagDemo, 1.0);  // point-to-point under a rank guard: clean
  }
}

void asymmetric_phase(FakeCtx& ctx, const FakeGroup& g) {
  if (ctx.rank() == 0) {
    barrier(ctx, g);  // LINT-EXPECT: collective-symmetry
  } else {
    (void)allreduce_max(ctx, g, 1.0);  // LINT-EXPECT: collective-symmetry
  }
  int rank = ctx.rank();
  if (rank % 2 == 0) exchange_halo(ctx);  // LINT-EXPECT: collective-symmetry
  for (int d = 0; d < rank; ++d) {
    exchange_halo(ctx);  // LINT-EXPECT: collective-symmetry
  }
}

void waived_phase(FakeCtx& ctx, const FakeGroup& g) {
  if (ctx.rank() < g.size) {
    // Every rank of this machine is a member; the guard is vacuous.
    // kali-lint: allow(collective-symmetry)
    barrier(ctx, g);
  }
}

}  // namespace kali

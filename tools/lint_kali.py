#!/usr/bin/env python3
"""Determinism lint for the kali tree.

The machine model's correctness claims (bit-identical clocks across runs
and thread interleavings, docs/machine-model.md) rest on invariants the
compiler never checks.  This linter enforces the written rules:

  raw-tag        Message tags in runtime/kernel code must be derived from
                 the reserved-tag registry (src/machine/message.hpp), never
                 ad-hoc integer literals; application (solver/example) tag
                 constants must stay below kRuntimeTagBase (1 << 20).
  unordered-container
                 No std::unordered_{map,set,multimap,multiset} in
                 src/machine/ or src/runtime/: hash-table iteration order
                 can feed clocks, payload order, or stats output.
  wall-clock     No wall-clock or nondeterministic randomness
                 (steady_clock/system_clock/rand()/std::random_device/...)
                 in src/machine/ or src/runtime/ simulator code paths.
  layering       Include-graph layering: machine must not include
                 runtime/kernels/solvers/metrics headers; runtime must not
                 include kernels/solvers; and so on down the layer DAG.
  raw-thread     In src/machine/, no raw host-threading primitives
                 (std::thread, std::condition_variable, thread_local)
                 outside machine/scheduler.cpp: simulated ranks are
                 cooperatively scheduled fibers, and stray OS-thread
                 machinery either breaks determinism or silently revives
                 the thread-per-rank model the scheduler replaced.
  raw-exchange   In src/runtime/, ctx.send*/recv* calls must flow through
                 detail::issue_exchange (i.e. live inside the send_one /
                 recv_one closures it dispatches), so every dense exchange
                 obeys the round-structured CommSchedule.
  collective-symmetry
                 In src/runtime/, src/kernels/, and src/solvers/, no
                 collective or barrier call (barrier/sync_clocks/
                 allreduce*/broadcast/reduce/gather/all_gather/
                 exchange_halo) nested under a rank-dependent conditional:
                 a collective only some group members enter deadlocks the
                 rest (the wait-for-graph detector catches it at run time;
                 this catches it at lint time).
  shared-state   Processor cost-model mutators and ledger accessors
                 (set_clock/realign_clock/set_*_link_free/reserve_edge/
                 compact_edge_ledgers/clear_link_state/bump_barrier_epoch/
                 out_edge_free/edge_ledger) may be called only from the
                 sanctioned machine-layer files (context.cpp,
                 collectives.cpp, machine.cpp, processor.hpp): anywhere
                 else, a rank mutating simulator state -- possibly a
                 *peer's* -- bypasses the rank-sharding contract the
                 happens-before analyzer (tools/check_hb.py) checks at
                 run time.  Name-based, so it also catches mutations of
                 foreign processors via Machine::proc(r).

A finding can be waived in place with a reasoned pragma on the same line
or the line above:

    // kali-lint: allow(wall-clock) — deadlock guard, never feeds clocks

Modes:
    lint_kali.py [--root DIR]      lint DIR/src (default: repo root)
    lint_kali.py --self-test       run over tools/lint_fixtures/ and check
                                   findings match the // LINT-EXPECT: <rule>
                                   markers exactly, line by line
    lint_kali.py --list-rules      print rule ids (docs drift check)
"""

import argparse
import os
import re
import sys

RULES = (
    "raw-tag",
    "unordered-container",
    "wall-clock",
    "raw-thread",
    "layering",
    "raw-exchange",
    "collective-symmetry",
    "shared-state",
)

# Layer DAG: which layers each layer's headers may include.  `support` is
# the shared leaf; metrics reads machine topology/config but not the
# runtime or solver layers.
LAYER_ALLOWED = {
    "machine": {"machine", "support"},
    "runtime": {"machine", "runtime", "support"},
    "kernels": {"machine", "runtime", "kernels", "support"},
    "solvers": {"machine", "runtime", "kernels", "solvers", "support"},
    "metrics": {"machine", "metrics", "support"},
    "support": {"support"},
}

ALLOW_RE = re.compile(r"kali-lint:\s*allow\(([a-z-]+)\)")
EXPECT_RE = re.compile(r"LINT-EXPECT:\s*([a-z-]+)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
TAG_DEF_RE = re.compile(r"\bconstexpr\s+int\s+(kTag\w*)\s*=\s*([^;]+);")
# A send/recv call whose tag argument (second) is a bare integer literal.
LITERAL_TAG_CALL_RE = re.compile(
    r"\.\s*(?:send|send_span|send_bytes|recv|recv_vec|recv_into|recv_message|probe)"
    r"\s*(?:<[^()]*>)?\(\s*[^,()]+,\s*\d+\s*[,)]"
)
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
RAW_THREAD_RE = re.compile(
    r"\bstd::(?:thread|jthread|condition_variable(?:_any)?)\b"
    r"|\bthread_local\b"
    r"|^\s*#\s*include\s*<(?:thread|condition_variable)>")
WALL_CLOCK_RES = (
    re.compile(r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"),
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"(?<![\w:])s?rand\s*\("),
    re.compile(r"\bgettimeofday\b"),
    re.compile(r"(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"),
)
CTX_CALL_RE = re.compile(r"\bctx_?(?:\.|->)\s*(?:send|recv)\w*\s*(?:<[^()]*>)?\(")
EXCHANGE_LAMBDA_RE = re.compile(r"\bauto\s+(send_one|recv_one)\s*=\s*\[")
# A call into the collectives layer (or a collective-shaped runtime entry
# point).  `gather` is anchored so `all_gather` is not double-counted and
# `exchange_halo` does not swallow `exchange_halo_corners` (an internal
# helper, not an entry point).
COLLECTIVE_CALL_RE = re.compile(
    r"\b(?:barrier|sync_clocks|allreduce(?:_sum|_max)?|broadcast|reduce"
    r"|gather|all_gather|exchange_halo)\s*\(")
CONDITIONAL_RE = re.compile(r"\b(?:if|while|for|switch)\s*\(")
# Member calls that mutate (or hand out mutable views of) a Processor's
# rank-sharded cost-model state.
SHARED_STATE_RE = re.compile(
    r"(?:\.|->)\s*(?:set_clock|realign_clock|set_out_link_free|"
    r"set_in_link_free|reserve_edge|compact_edge_ledgers|clear_link_state|"
    r"bump_barrier_epoch|out_edge_free|edge_ledger)\s*\(")
# The files the machine model sanctions to touch that state: the cost
# model itself, the sync_clocks barrier, the quiesce compaction leader,
# and the Processor definition.
SHARED_STATE_SANCTIONED = {
    "src/machine/context.cpp",
    "src/machine/collectives.cpp",
    "src/machine/machine.cpp",
    "src/machine/processor.hpp",
}
# Tokens that make a conditional rank-dependent: the SPMD rank, a group
# index, or a processor-grid coordinate.  Group membership alone
# (g.contains(...)) is deliberately not matched — calling a collective on a
# group one participates in is the correct pattern.
RANK_TOKEN_RE = re.compile(
    r"\brank\b|\.rank\s*\(\)|->rank\s*\(\)|\.index\s*\(\)|"
    r"\bmy_coord\b|\bview_coord\b")


class Finding:
    def __init__(self, path, line, rule, msg):
        self.path = path
        self.line = line
        self.rule = rule
        self.msg = msg

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.msg}"


def strip_code(line):
    """Drop string/char literals and line comments so patterns only match
    code.  Block comments are handled per-file in load_lines."""
    line = re.sub(r'"(?:[^"\\]|\\.)*"', '""', line)
    line = re.sub(r"'(?:[^'\\]|\\.)*'", "''", line)
    return line.split("//", 1)[0]


def load_lines(path):
    """Returns (raw_lines, code_lines) with block comments blanked in the
    code view (raw view keeps pragmas and LINT-EXPECT markers visible)."""
    with open(path, encoding="utf-8") as f:
        raw = f.read().splitlines()
    code = []
    in_block = False
    for line in raw:
        out = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = len(line)
                else:
                    in_block = False
                    i = end + 2
            else:
                start = line.find("/*", i)
                if start < 0:
                    out.append(line[i:])
                    i = len(line)
                else:
                    out.append(line[i:start])
                    in_block = True
                    i = start + 2
        code.append(strip_code("".join(out)))
    return raw, code


def layer_of(relpath):
    parts = relpath.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def registry_symbols(root):
    """Constant names defined in the reserved-tag registry."""
    path = os.path.join(root, "src", "machine", "message.hpp")
    syms = set()
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            for m in re.finditer(r"\bconstexpr\s+int\s+(k\w+)\s*=", f.read()):
                syms.add(m.group(1))
    return syms


def eval_int_expr(expr):
    """Value of a tag initializer built purely from integer literals and
    arithmetic/shift/bit operators, or None if anything else appears."""
    if not re.fullmatch(r"[0-9xXa-fA-F\s()+\-*|&<>]*", expr):
        return None
    # Reject comparison operators while letting << / >> shifts through: a
    # lone < or > (no shift partner on either side) is a comparison.
    if re.search(r"(?<![<>])<(?!<)|(?<![<>])>(?!>)", expr):
        return None
    try:
        return eval(expr, {"__builtins__": {}}, {})  # literal-only, filtered above
    except Exception:
        return None


def lint_file(root, relpath, findings):
    layer = layer_of(relpath)
    if layer is None:
        return
    path = os.path.join(root, relpath)
    raw, code = load_lines(path)
    registry = registry_symbols(root)
    is_registry = relpath.replace(os.sep, "/") == "src/machine/message.hpp"

    def allowed(idx, rule):
        """A waiver pragma covers its own line, or a flagged line below it
        separated only by comment/blank lines."""
        j = idx
        while j >= 0:
            m = ALLOW_RE.search(raw[j])
            if m and m.group(1) == rule:
                return True
            j -= 1
            if j < 0 or code[j].strip():  # previous line has real code: stop
                return False
        return False

    def report(idx, rule, msg):
        if not allowed(idx, rule):
            findings.append(Finding(relpath, idx + 1, rule, msg))

    # --- layering -----------------------------------------------------------
    # The code view blanks string literals (taking the include path with
    # them), so match the raw line — but only where the code view still
    # shows a live preprocessor directive, which skips commented-out
    # includes in both // and /* */ comments.
    for i, line in enumerate(code):
        if not line.lstrip().startswith("#"):
            continue
        m = INCLUDE_RE.match(raw[i])
        if not m:
            continue
        inc_layer = m.group(1).split("/", 1)[0]
        if inc_layer in LAYER_ALLOWED and inc_layer not in LAYER_ALLOWED[layer]:
            report(i, "layering",
                   f'{layer}/ must not include "{m.group(1)}" '
                   f"({layer} -> {inc_layer} breaks the layer DAG)")

    # --- unordered-container / wall-clock (machine + runtime only) ----------
    if layer in ("machine", "runtime"):
        for i, line in enumerate(code):
            if UNORDERED_RE.search(line):
                report(i, "unordered-container",
                       "hash containers are banned in machine/runtime: "
                       "iteration order could feed clocks, payload order, "
                       "or stats output")
            for pat in WALL_CLOCK_RES:
                if pat.search(line):
                    report(i, "wall-clock",
                           "wall-clock / nondeterministic randomness in "
                           "simulator code: clocks must be pure functions "
                           "of the simulated program")
                    break

    # --- raw-thread (machine only; the fiber scheduler itself is exempt) ----
    if layer == "machine" and \
            not relpath.replace(os.sep, "/").endswith("machine/scheduler.cpp"):
        for i, line in enumerate(code):
            if RAW_THREAD_RE.search(line):
                report(i, "raw-thread",
                       "raw host-threading primitive in the machine layer: "
                       "ranks are cooperatively scheduled fibers; worker "
                       "threads live only in machine/scheduler.cpp")

    # --- raw-tag ------------------------------------------------------------
    if not is_registry:
        for i, line in enumerate(code):
            for m in TAG_DEF_RE.finditer(line):
                name, init = m.group(1), m.group(2).strip()
                if layer in ("machine", "runtime", "kernels", "metrics"):
                    if not any(re.search(rf"\b{re.escape(s)}\b", init)
                               for s in registry):
                        report(i, "raw-tag",
                               f"{name} must be derived from the reserved-tag "
                               "registry (machine/message.hpp), not raw "
                               f"literals: `{init}`")
                else:  # solvers: user band only
                    val = eval_int_expr(init)
                    if val is None or val >= (1 << 20):
                        report(i, "raw-tag",
                               f"application tag {name} = `{init}` must be a "
                               "plain literal below kRuntimeTagBase (1 << 20)")
            if layer in ("machine", "runtime", "kernels") and \
                    LITERAL_TAG_CALL_RE.search(line):
                report(i, "raw-tag",
                       "integer-literal message tag at a send/recv call "
                       "site; use a registered kTag* constant")

    # --- collective-symmetry (layers above machine) -------------------------
    # Flag collective/barrier calls nested under rank-dependent conditionals:
    # every member of the group must reach a collective, so gating one on
    # the caller's rank/index/grid coordinate deadlocks the rest.  The
    # machine layer itself is exempt (the collectives' tree implementations
    # legitimately branch on the member index).
    if layer in ("runtime", "kernels", "solvers"):
        guard_stack = []  # brace depths at which a rank-guard opened
        pending_guard = False  # unbraced guard: covers the next code line
        depth = 0
        for i, line in enumerate(code):
            is_guard = bool(CONDITIONAL_RE.search(line) and
                            RANK_TOKEN_RE.search(line))
            if (guard_stack or pending_guard or is_guard) and \
                    COLLECTIVE_CALL_RE.search(line):
                report(i, "collective-symmetry",
                       "collective/barrier call under a rank-dependent "
                       "conditional: members skipping it deadlock the rest "
                       "of the group")
            if pending_guard:
                if "{" in line:
                    guard_stack.append(depth)
                    pending_guard = False
                elif line.strip():  # the single guarded statement
                    pending_guard = False
            if is_guard:
                if "{" in line:
                    guard_stack.append(depth)
                else:
                    pending_guard = True
            depth += line.count("{") - line.count("}")
            while guard_stack and depth <= guard_stack[-1] and "}" in line:
                guard_stack.pop()

    # --- shared-state (everywhere except the sanctioned mutator files) ------
    if relpath.replace(os.sep, "/") not in SHARED_STATE_SANCTIONED:
        for i, line in enumerate(code):
            m = SHARED_STATE_RE.search(line)
            if m:
                report(i, "shared-state",
                       "Processor cost-model mutator outside the sanctioned "
                       "files (context.cpp/collectives.cpp/machine.cpp/"
                       "processor.hpp): rank-sharded simulator state must "
                       "not be poked ad hoc")

    # --- raw-exchange (runtime only) ----------------------------------------
    if layer == "runtime":
        in_lambda_until_depth = None
        depth = 0
        for i, line in enumerate(code):
            starts_lambda = EXCHANGE_LAMBDA_RE.search(line)
            if starts_lambda and in_lambda_until_depth is None:
                in_lambda_until_depth = depth
            if in_lambda_until_depth is None and CTX_CALL_RE.search(line):
                report(i, "raw-exchange",
                       "direct ctx send/recv in runtime code: dense "
                       "exchanges must flow through detail::issue_exchange "
                       "(send_one/recv_one closures)")
            depth += line.count("{") - line.count("}")
            if in_lambda_until_depth is not None and \
                    depth <= in_lambda_until_depth and "}" in line:
                in_lambda_until_depth = None


def collect_sources(root):
    out = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for fn in sorted(filenames):
            if fn.endswith((".hpp", ".cpp", ".h", ".cc")):
                out.append(os.path.relpath(os.path.join(dirpath, fn), root))
    return sorted(out)


def run_lint(root):
    findings = []
    for rel in collect_sources(root):
        lint_file(root, rel, findings)
    return findings


def self_test(repo_root):
    root = os.path.join(repo_root, "tools", "lint_fixtures")
    findings = run_lint(root)
    actual = {(f.path.replace(os.sep, "/"), f.line, f.rule) for f in findings}
    expected = set()
    for rel in collect_sources(root):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            for i, line in enumerate(f.read().splitlines()):
                for m in EXPECT_RE.finditer(line):
                    expected.add((rel.replace(os.sep, "/"), i + 1, m.group(1)))
    ok = True
    for miss in sorted(expected - actual):
        print(f"SELF-TEST MISS: expected finding not produced: {miss}")
        ok = False
    for extra in sorted(actual - expected):
        print(f"SELF-TEST EXTRA: unexpected finding: {extra}")
        ok = False
    if ok:
        print(f"lint self-test OK ({len(expected)} expected findings, "
              f"{len(set(r for _, _, r in expected))} rules exercised)")
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()
    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test(args.root)
    findings = run_lint(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"lint FAILED: {len(findings)} finding(s)")
        return 1
    print("lint OK (rules: " + ", ".join(RULES) + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Offline communication-trace verifier for the kali machine layer.

Consumes the MessageTrace serialization (src/machine/trace.hpp write()):

    kali-trace 1 <nprocs>
    S <rank> <peer> <tag> <seq> <bytes> <epoch>
    R <rank> <peer> <tag> <seq> <bytes> <epoch>

one line per event in per-rank program order ('#' lines are comments).  For
'S' the peer is the destination and epoch is the sender's sync_clocks epoch
at send time; for 'R' the peer is the source and epoch is the *receiver's*
epoch at receive time, so a matched pair with differing epochs straddled a
barrier.

Checks, by rule id (--list-rules; docs/static-analysis.md tables this list
and scripts/check_docs.sh fails on drift):

  trace-format    header/line syntax, ranks in range, matched send/recv
                  payload sizes agree, no duplicate (src, dst, tag, seq)
  bad-tag         every sent tag lies in a registered band of the
                  reserved-tag registry (the band bases, runtime-band
                  allocation table, and collectives bounds are parsed
                  out of src/machine/message.hpp at startup, so the
                  verifier can never drift from the header)
  unmatched-send  a message was sent and never received (the online
                  counterpart is the sync_clocks/teardown leak check)
  unmatched-recv  a receive consumed a message no send produced
  epoch-straddle  a matched pair crosses a sync_clocks barrier
  fifo-overtake   per (src, dst, tag) sequence numbers must increase in
                  both the sender's and the receiver's program order
                  (MPI-1 non-overtaking, the mailbox's FIFO guarantee)

Like tools/lint_kali.py, the verifier is itself under test: --self-test
replays tools/trace_fixtures/*.trace, where each fixture's `# EXPECT:` line
names `pass` or exactly the rule it must trip, and fails on any mismatch in
either direction.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

RULES = (
    "trace-format",
    "bad-tag",
    "unmatched-send",
    "unmatched-recv",
    "epoch-straddle",
    "fifo-overtake",
)

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "trace_fixtures"

# --- reserved-tag registry, parsed from src/machine/message.hpp -------------
# The registry's single source of truth is the C++ header: the band bases,
# the KALI_RUNTIME_TAG_ALLOCS X-macro allocation table, and the
# collectives-band bounds.  Parsing them at startup (instead of keeping a
# hand-maintained Python mirror) means a new runtime-band allocation is
# picked up here automatically; the parse is deliberately rigid and fails
# loudly if the header's shape changes.

MESSAGE_HPP = (pathlib.Path(__file__).resolve().parent.parent
               / "src" / "machine" / "message.hpp")

# Constant value expressions are integer arithmetic over earlier constants:
# literals, identifiers, +, -, <<, parens.
_CONST_RE = re.compile(r"^inline constexpr int (k\w+) = ([^;]+);", re.M)
_EXPR_OK_RE = re.compile(r"^[\w\s()+\-<]+$")
_ALLOCS_RE = re.compile(
    r"#define KALI_RUNTIME_TAG_ALLOCS\(X\)((?:[^\n]*\\\n)*[^\n]*)")
_ROW_RE = re.compile(r"X\((k\w+),\s*(\d+)\)")


def _parse_registry(header: pathlib.Path):
    try:
        text = header.read_text()
    except OSError as e:
        raise SystemExit(f"check_trace: cannot read tag registry: {e}")
    consts: dict[str, int] = {}
    for name, expr in _CONST_RE.findall(text):
        expr = expr.strip()
        if not _EXPR_OK_RE.match(expr):
            raise SystemExit(
                f"{header}: constant {name} has an unparseable value "
                f"{expr!r} (extend the parser in check_trace.py)")
        try:
            consts[name] = int(eval(expr, {"__builtins__": {}}, dict(consts)))
        except Exception as e:  # undefined name, syntax, ...
            raise SystemExit(
                f"{header}: cannot evaluate {name} = {expr!r}: {e}")
    block = _ALLOCS_RE.search(text)
    if block is None:
        raise SystemExit(
            f"{header}: KALI_RUNTIME_TAG_ALLOCS(X) table not found")
    allocs = []
    for name, width in _ROW_RE.findall(block.group(1)):
        if name not in consts:
            raise SystemExit(
                f"{header}: X-macro row {name} names no defined constant")
        allocs.append((consts[name], int(width)))
    if not allocs:
        raise SystemExit(f"{header}: empty runtime-band allocation table")
    for required in ("kRuntimeTagBase", "kKernelTagBase",
                     "kCollectiveTagBase", "kCollectiveTagFirst",
                     "kCollectiveTagLast"):
        if required not in consts:
            raise SystemExit(f"{header}: missing constant {required}")
    return consts, allocs


_CONSTS, _RUNTIME_ALLOCS = _parse_registry(MESSAGE_HPP)


def is_registered_tag(tag: int) -> bool:
    """Python twin of is_registered_tag() in src/machine/message.hpp,
    driven by the constants parsed out of that header — never a mirror."""
    if tag < 0:
        return False
    if tag < _CONSTS["kRuntimeTagBase"]:
        return True  # user band: application programs own it
    if tag < _CONSTS["kKernelTagBase"]:
        return any(base <= tag < base + width
                   for base, width in _RUNTIME_ALLOCS)
    if tag < _CONSTS["kCollectiveTagBase"]:
        return True  # kernel band: parameterized allocations
    return _CONSTS["kCollectiveTagFirst"] <= tag <= _CONSTS["kCollectiveTagLast"]


# --- verifier ---------------------------------------------------------------


class Finding:
    def __init__(self, rule: str, where: str, message: str) -> None:
        assert rule in RULES, rule
        self.rule = rule
        self.where = where
        self.message = message

    def __str__(self) -> str:
        return f"{self.where}: [{self.rule}] {self.message}"


def verify(path: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []

    def bad(rule: str, lineno: int, message: str) -> None:
        findings.append(Finding(rule, f"{path}:{lineno}", message))

    lines = path.read_text().splitlines()
    nprocs = None
    # (kind, rank, peer, tag, seq, bytes, epoch, lineno), malformed excluded
    events = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if nprocs is None:
            parts = line.split()
            if len(parts) != 3 or parts[0] != "kali-trace" or parts[1] != "1":
                bad("trace-format", lineno,
                    f"expected 'kali-trace 1 <nprocs>' header, got {line!r}")
                return findings
            try:
                nprocs = int(parts[2])
            except ValueError:
                nprocs = -1
            if nprocs < 1:
                bad("trace-format", lineno, f"bad processor count {parts[2]!r}")
                return findings
            continue
        parts = line.split()
        if len(parts) != 7 or parts[0] not in ("S", "R"):
            bad("trace-format", lineno,
                "expected 'S|R <rank> <peer> <tag> <seq> <bytes> <epoch>', "
                f"got {line!r}")
            continue
        try:
            rank, peer, tag, seq, nbytes, epoch = (int(p) for p in parts[1:])
        except ValueError:
            bad("trace-format", lineno, f"non-integer field in {line!r}")
            continue
        if not (0 <= rank < nprocs) or not (0 <= peer < nprocs):
            bad("trace-format", lineno,
                f"rank/peer outside [0, {nprocs}) in {line!r}")
            continue
        if seq < 0 or nbytes < 0 or epoch < 0:
            bad("trace-format", lineno, f"negative field in {line!r}")
            continue
        events.append((parts[0], rank, peer, tag, seq, nbytes, epoch, lineno))
    if nprocs is None:
        bad("trace-format", len(lines) + 1, "missing 'kali-trace' header")
        return findings

    # Tag-registry membership, checked at the send like the online invariant.
    for kind, rank, peer, tag, _seq, _b, _e, lineno in events:
        if kind == "S" and not is_registered_tag(tag):
            bad("bad-tag", lineno,
                f"send {rank} -> {peer} uses tag {tag}, which is not inside "
                "a registered band of the reserved-tag registry")

    # Send/recv matching on the unique key (src, dst, tag, seq).
    sends = {}  # key -> (bytes, epoch, lineno)
    for kind, rank, peer, tag, seq, nbytes, epoch, lineno in events:
        if kind != "S":
            continue
        key = (rank, peer, tag, seq)
        if key in sends:
            bad("trace-format", lineno,
                f"duplicate send key (src={rank}, dst={peer}, tag={tag}, "
                f"seq={seq})")
            continue
        sends[key] = (nbytes, epoch, lineno)
    matched = set()
    for kind, rank, peer, tag, seq, nbytes, epoch, lineno in events:
        if kind != "R":
            continue
        key = (peer, rank, tag, seq)
        if key not in sends:
            bad("unmatched-recv", lineno,
                f"recv on rank {rank} of (src={peer}, tag={tag}, seq={seq}) "
                "matches no send in the trace")
            continue
        matched.add(key)
        s_bytes, s_epoch, s_lineno = sends[key]
        if nbytes != s_bytes:
            bad("trace-format", lineno,
                f"recv of (src={peer}, tag={tag}, seq={seq}) reports "
                f"{nbytes} B but the send (line {s_lineno}) reports "
                f"{s_bytes} B")
        if epoch != s_epoch:
            bad("epoch-straddle", lineno,
                f"message (src={peer}, dst={rank}, tag={tag}, seq={seq}) "
                f"sent at epoch {s_epoch} (line {s_lineno}) but received at "
                f"epoch {epoch}: it straddles a sync_clocks barrier")
    for key, (_b, _e, s_lineno) in sorted(sends.items(),
                                          key=lambda kv: kv[1][2]):
        if key not in matched:
            src, dst, tag, seq = key
            bad("unmatched-send", s_lineno,
                f"message (src={src}, dst={dst}, tag={tag}, seq={seq}) was "
                "sent but never received (leaked)")

    # FIFO non-overtaking: per (src, dst, tag), seq must increase in the
    # sender's program order and in the receiver's consumption order.
    last_seq: dict = {}
    for kind, rank, peer, tag, seq, _b, _e, lineno in events:
        chan = (kind, rank, peer, tag)
        if chan in last_seq and seq <= last_seq[chan][0]:
            prev_seq, prev_line = last_seq[chan]
            side = "sent" if kind == "S" else "consumed"
            src, dst = (rank, peer) if kind == "S" else (peer, rank)
            bad("fifo-overtake", lineno,
                f"channel (src={src}, dst={dst}, tag={tag}): seq {seq} "
                f"{side} after seq {prev_seq} (line {prev_line}) — "
                "non-overtaking order violated")
        last_seq[chan] = (seq, lineno)

    findings.sort(key=lambda f: f.where)
    return findings


# --- self-test --------------------------------------------------------------


def expected_outcome(path: pathlib.Path) -> str:
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("# EXPECT:"):
            return line[len("# EXPECT:"):].strip()
    raise SystemExit(f"{path}: fixture has no '# EXPECT:' line")


def self_test() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.trace"))
    if not fixtures:
        print(f"self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    failures = 0
    covered = set()
    for fx in fixtures:
        expect = expected_outcome(fx)
        got = {f.rule for f in verify(fx)}
        if expect == "pass":
            covered.add("pass")
            if got:
                print(f"self-test FAIL: {fx.name} expected to pass but "
                      f"tripped {sorted(got)}", file=sys.stderr)
                failures += 1
        else:
            if expect not in RULES:
                print(f"self-test FAIL: {fx.name} expects unknown rule "
                      f"{expect!r}", file=sys.stderr)
                failures += 1
                continue
            covered.add(expect)
            if got != {expect}:
                print(f"self-test FAIL: {fx.name} expected exactly "
                      f"{{{expect!r}}} but tripped {sorted(got)}",
                      file=sys.stderr)
                failures += 1
    missing = set(RULES) - covered
    if missing:
        print(f"self-test FAIL: no fixture exercises {sorted(missing)}",
              file=sys.stderr)
        failures += 1
    if "pass" not in covered:
        print("self-test FAIL: no passing fixture", file=sys.stderr)
        failures += 1
    if failures == 0:
        print(f"trace-verifier self-test OK "
              f"({len(fixtures)} fixtures, {len(RULES)} rules)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", type=pathlib.Path,
                    help="trace files to verify")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the verifier against tools/trace_fixtures/")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids, one per line")
    args = ap.parse_args(argv)
    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test()
    if not args.traces:
        ap.error("no trace files given (or use --self-test / --list-rules)")
    total = 0
    for path in args.traces:
        findings = verify(path)
        for f in findings:
            print(f, file=sys.stderr)
        total += len(findings)
        if not findings:
            print(f"{path}: OK")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

#!/usr/bin/env python3
"""Offline communication-trace verifier for the kali machine layer.

Consumes the MessageTrace serialization (src/machine/trace.hpp write()):

    kali-trace 1 <nprocs>
    S <rank> <peer> <tag> <seq> <bytes> <epoch>
    R <rank> <peer> <tag> <seq> <bytes> <epoch>

one line per event in per-rank program order ('#' lines are comments).  For
'S' the peer is the destination and epoch is the sender's sync_clocks epoch
at send time; for 'R' the peer is the source and epoch is the *receiver's*
epoch at receive time, so a matched pair with differing epochs straddled a
barrier.

Checks, by rule id (--list-rules; docs/static-analysis.md tables this list
and scripts/check_docs.sh fails on drift):

  trace-format    header/line syntax, ranks in range, matched send/recv
                  payload sizes agree, no duplicate (src, dst, tag, seq)
  bad-tag         every sent tag lies in a registered band of the
                  reserved-tag registry (mirrors is_registered_tag in
                  src/machine/message.hpp — keep the two in sync)
  unmatched-send  a message was sent and never received (the online
                  counterpart is the sync_clocks/teardown leak check)
  unmatched-recv  a receive consumed a message no send produced
  epoch-straddle  a matched pair crosses a sync_clocks barrier
  fifo-overtake   per (src, dst, tag) sequence numbers must increase in
                  both the sender's and the receiver's program order
                  (MPI-1 non-overtaking, the mailbox's FIFO guarantee)

Like tools/lint_kali.py, the verifier is itself under test: --self-test
replays tools/trace_fixtures/*.trace, where each fixture's `# EXPECT:` line
names `pass` or exactly the rule it must trip, and fails on any mismatch in
either direction.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

RULES = (
    "trace-format",
    "bad-tag",
    "unmatched-send",
    "unmatched-recv",
    "epoch-straddle",
    "fifo-overtake",
)

FIXTURE_DIR = pathlib.Path(__file__).resolve().parent / "trace_fixtures"

# --- reserved-tag registry mirror (src/machine/message.hpp) -----------------
# Keep in sync with is_registered_tag(); the docs CI job checks the C++ side.

RUNTIME_TAG_BASE = 1 << 20
KERNEL_TAG_BASE = 1 << 22
COLLECTIVE_TAG_BASE = 1 << 24
TAG_HALO_BASE = RUNTIME_TAG_BASE
TAG_REDIST_DATA = RUNTIME_TAG_BASE + 16
TAG_REMAP = RUNTIME_TAG_BASE + 17
TAG_HALO_CORNER_BASE = RUNTIME_TAG_BASE + 32
TAG_HALO_CORNER_PACK = RUNTIME_TAG_BASE + 60
TAG_INSP_REQ = RUNTIME_TAG_BASE + 64
TAG_INSP_DATA = RUNTIME_TAG_BASE + 65


def is_registered_tag(tag: int) -> bool:
    if tag < 0:
        return False
    if tag < RUNTIME_TAG_BASE:
        return True  # user band
    if tag < KERNEL_TAG_BASE:
        return (
            TAG_HALO_BASE <= tag < TAG_HALO_BASE + 12
            or tag in (TAG_REDIST_DATA, TAG_REMAP)
            or TAG_HALO_CORNER_BASE <= tag < TAG_HALO_CORNER_BASE + 27
            or tag == TAG_HALO_CORNER_PACK
            or tag in (TAG_INSP_REQ, TAG_INSP_DATA)
        )
    if tag < COLLECTIVE_TAG_BASE:
        return True  # kernel band: parameterized allocations
    return COLLECTIVE_TAG_BASE + 1 <= tag <= COLLECTIVE_TAG_BASE + 7


# --- verifier ---------------------------------------------------------------


class Finding:
    def __init__(self, rule: str, where: str, message: str) -> None:
        assert rule in RULES, rule
        self.rule = rule
        self.where = where
        self.message = message

    def __str__(self) -> str:
        return f"{self.where}: [{self.rule}] {self.message}"


def verify(path: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []

    def bad(rule: str, lineno: int, message: str) -> None:
        findings.append(Finding(rule, f"{path}:{lineno}", message))

    lines = path.read_text().splitlines()
    nprocs = None
    # (kind, rank, peer, tag, seq, bytes, epoch, lineno), malformed excluded
    events = []
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if nprocs is None:
            parts = line.split()
            if len(parts) != 3 or parts[0] != "kali-trace" or parts[1] != "1":
                bad("trace-format", lineno,
                    f"expected 'kali-trace 1 <nprocs>' header, got {line!r}")
                return findings
            try:
                nprocs = int(parts[2])
            except ValueError:
                nprocs = -1
            if nprocs < 1:
                bad("trace-format", lineno, f"bad processor count {parts[2]!r}")
                return findings
            continue
        parts = line.split()
        if len(parts) != 7 or parts[0] not in ("S", "R"):
            bad("trace-format", lineno,
                "expected 'S|R <rank> <peer> <tag> <seq> <bytes> <epoch>', "
                f"got {line!r}")
            continue
        try:
            rank, peer, tag, seq, nbytes, epoch = (int(p) for p in parts[1:])
        except ValueError:
            bad("trace-format", lineno, f"non-integer field in {line!r}")
            continue
        if not (0 <= rank < nprocs) or not (0 <= peer < nprocs):
            bad("trace-format", lineno,
                f"rank/peer outside [0, {nprocs}) in {line!r}")
            continue
        if seq < 0 or nbytes < 0 or epoch < 0:
            bad("trace-format", lineno, f"negative field in {line!r}")
            continue
        events.append((parts[0], rank, peer, tag, seq, nbytes, epoch, lineno))
    if nprocs is None:
        bad("trace-format", len(lines) + 1, "missing 'kali-trace' header")
        return findings

    # Tag-registry membership, checked at the send like the online invariant.
    for kind, rank, peer, tag, _seq, _b, _e, lineno in events:
        if kind == "S" and not is_registered_tag(tag):
            bad("bad-tag", lineno,
                f"send {rank} -> {peer} uses tag {tag}, which is not inside "
                "a registered band of the reserved-tag registry")

    # Send/recv matching on the unique key (src, dst, tag, seq).
    sends = {}  # key -> (bytes, epoch, lineno)
    for kind, rank, peer, tag, seq, nbytes, epoch, lineno in events:
        if kind != "S":
            continue
        key = (rank, peer, tag, seq)
        if key in sends:
            bad("trace-format", lineno,
                f"duplicate send key (src={rank}, dst={peer}, tag={tag}, "
                f"seq={seq})")
            continue
        sends[key] = (nbytes, epoch, lineno)
    matched = set()
    for kind, rank, peer, tag, seq, nbytes, epoch, lineno in events:
        if kind != "R":
            continue
        key = (peer, rank, tag, seq)
        if key not in sends:
            bad("unmatched-recv", lineno,
                f"recv on rank {rank} of (src={peer}, tag={tag}, seq={seq}) "
                "matches no send in the trace")
            continue
        matched.add(key)
        s_bytes, s_epoch, s_lineno = sends[key]
        if nbytes != s_bytes:
            bad("trace-format", lineno,
                f"recv of (src={peer}, tag={tag}, seq={seq}) reports "
                f"{nbytes} B but the send (line {s_lineno}) reports "
                f"{s_bytes} B")
        if epoch != s_epoch:
            bad("epoch-straddle", lineno,
                f"message (src={peer}, dst={rank}, tag={tag}, seq={seq}) "
                f"sent at epoch {s_epoch} (line {s_lineno}) but received at "
                f"epoch {epoch}: it straddles a sync_clocks barrier")
    for key, (_b, _e, s_lineno) in sorted(sends.items(),
                                          key=lambda kv: kv[1][2]):
        if key not in matched:
            src, dst, tag, seq = key
            bad("unmatched-send", s_lineno,
                f"message (src={src}, dst={dst}, tag={tag}, seq={seq}) was "
                "sent but never received (leaked)")

    # FIFO non-overtaking: per (src, dst, tag), seq must increase in the
    # sender's program order and in the receiver's consumption order.
    last_seq: dict = {}
    for kind, rank, peer, tag, seq, _b, _e, lineno in events:
        chan = (kind, rank, peer, tag)
        if chan in last_seq and seq <= last_seq[chan][0]:
            prev_seq, prev_line = last_seq[chan]
            side = "sent" if kind == "S" else "consumed"
            src, dst = (rank, peer) if kind == "S" else (peer, rank)
            bad("fifo-overtake", lineno,
                f"channel (src={src}, dst={dst}, tag={tag}): seq {seq} "
                f"{side} after seq {prev_seq} (line {prev_line}) — "
                "non-overtaking order violated")
        last_seq[chan] = (seq, lineno)

    findings.sort(key=lambda f: f.where)
    return findings


# --- self-test --------------------------------------------------------------


def expected_outcome(path: pathlib.Path) -> str:
    for line in path.read_text().splitlines():
        line = line.strip()
        if line.startswith("# EXPECT:"):
            return line[len("# EXPECT:"):].strip()
    raise SystemExit(f"{path}: fixture has no '# EXPECT:' line")


def self_test() -> int:
    fixtures = sorted(FIXTURE_DIR.glob("*.trace"))
    if not fixtures:
        print(f"self-test: no fixtures under {FIXTURE_DIR}", file=sys.stderr)
        return 1
    failures = 0
    covered = set()
    for fx in fixtures:
        expect = expected_outcome(fx)
        got = {f.rule for f in verify(fx)}
        if expect == "pass":
            covered.add("pass")
            if got:
                print(f"self-test FAIL: {fx.name} expected to pass but "
                      f"tripped {sorted(got)}", file=sys.stderr)
                failures += 1
        else:
            if expect not in RULES:
                print(f"self-test FAIL: {fx.name} expects unknown rule "
                      f"{expect!r}", file=sys.stderr)
                failures += 1
                continue
            covered.add(expect)
            if got != {expect}:
                print(f"self-test FAIL: {fx.name} expected exactly "
                      f"{{{expect!r}}} but tripped {sorted(got)}",
                      file=sys.stderr)
                failures += 1
    missing = set(RULES) - covered
    if missing:
        print(f"self-test FAIL: no fixture exercises {sorted(missing)}",
              file=sys.stderr)
        failures += 1
    if "pass" not in covered:
        print("self-test FAIL: no passing fixture", file=sys.stderr)
        failures += 1
    if failures == 0:
        print(f"trace-verifier self-test OK "
              f"({len(fixtures)} fixtures, {len(RULES)} rules)")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="*", type=pathlib.Path,
                    help="trace files to verify")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the verifier against tools/trace_fixtures/")
    ap.add_argument("--list-rules", action="store_true",
                    help="print rule ids, one per line")
    args = ap.parse_args(argv)
    if args.list_rules:
        print("\n".join(RULES))
        return 0
    if args.self_test:
        return self_test()
    if not args.traces:
        ap.error("no trace files given (or use --self-test / --list-rules)")
    total = 0
    for path in args.traces:
        findings = verify(path)
        for f in findings:
            print(f, file=sys.stderr)
        total += len(findings)
        if not findings:
            print(f"{path}: OK")
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

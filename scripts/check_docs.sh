#!/usr/bin/env bash
# Docs consistency gate, run by the CI `docs` job and the `docs_check`
# ctest entry:
#   1. every relative markdown link in README.md and docs/*.md resolves;
#   2. the reserved-tag table in docs/machine-model.md matches the
#      constants actually defined in src/machine/message.hpp and
#      src/machine/collectives.hpp — both directions, names and values;
#   3. docs/static-analysis.md documents exactly the rule ids the
#      determinism linter implements (tools/lint_kali.py --list-rules)
#      — both directions again;
#   4. docs/static-analysis.md documents exactly the rule ids the offline
#      trace verifier implements (tools/check_trace.py --list-rules);
#   5. docs/static-analysis.md documents exactly the rule ids the
#      happens-before analyzer implements (tools/check_hb.py --list-rules).
set -u
cd "$(dirname "$0")/.."
fail=0

# --- 1. relative markdown links must resolve --------------------------------
for f in README.md docs/*.md; do
  dir=$(dirname "$f")
  while IFS= read -r target; do
    target=${target%%#*}            # drop anchors
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | mailto:*) continue ;;
    esac
    if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
      echo "BROKEN LINK: $f -> $target"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

# --- 2. reserved-tag registry drift -----------------------------------------
doc=docs/machine-model.md
headers="src/machine/message.hpp src/machine/collectives.hpp"
table=$(sed -n '/BEGIN reserved-tag table/,/END reserved-tag table/p' "$doc")
if [ -z "$table" ]; then
  echo "TAG DRIFT: $doc lost its reserved-tag table markers"
  fail=1
fi

# Forward: every constant defined in the headers appears in the doc's table
# with the exact value expression from the source.
for hdr in $headers; do
  while IFS='|' read -r name value; do
    row=$(printf '%s\n' "$table" | grep -F "\`$name\`")
    if [ -z "$row" ]; then
      echo "TAG DRIFT: $name ($hdr) missing from the table in $doc"
      fail=1
    elif ! printf '%s\n' "$row" | grep -qF "\`$value\`"; then
      echo "TAG DRIFT: $name documented with a stale value in $doc ($hdr says: $value)"
      fail=1
    fi
  done < <(sed -nE 's/^inline constexpr int (k[A-Za-z0-9_]+) = ([^;]+);.*/\1|\2/p' "$hdr")
done

# Reverse: every constant named in the doc's table exists in some header.
while IFS= read -r name; do
  if ! grep -qE "constexpr int $name =" $headers; then
    echo "TAG DRIFT: $doc documents $name, which no header defines"
    fail=1
  fi
done < <(printf '%s\n' "$table" | grep -oE '`k[A-Za-z0-9_]+`' | tr -d '`' | sort -u)

# --- 3. determinism-lint rule drift -----------------------------------------
lint_doc=docs/static-analysis.md
rule_table=$(sed -n '/BEGIN lint-rule table/,/END lint-rule table/p' "$lint_doc")
if [ -z "$rule_table" ]; then
  echo "LINT DRIFT: $lint_doc lost its lint-rule table markers"
  fail=1
fi

rules=$(python3 tools/lint_kali.py --list-rules)

# Forward: every rule the linter implements is documented.
while IFS= read -r rule; do
  if ! printf '%s\n' "$rule_table" | grep -qF "\`$rule\`"; then
    echo "LINT DRIFT: rule '$rule' (lint_kali.py) missing from $lint_doc"
    fail=1
  fi
done <<< "$rules"

# Reverse: every rule named in the doc's table exists in the linter.
while IFS= read -r name; do
  if ! printf '%s\n' "$rules" | grep -qxF "$name"; then
    echo "LINT DRIFT: $lint_doc documents rule '$name', which lint_kali.py does not implement"
    fail=1
  fi
done < <(printf '%s\n' "$rule_table" | grep -oE '^\| `[a-z-]+`' | sed -E 's/^\| `([a-z-]+)`/\1/' | sort -u)

# --- 4. trace-verifier rule drift -------------------------------------------
trace_table=$(sed -n '/BEGIN trace-rule table/,/END trace-rule table/p' "$lint_doc")
if [ -z "$trace_table" ]; then
  echo "TRACE DRIFT: $lint_doc lost its trace-rule table markers"
  fail=1
fi

trace_rules=$(python3 tools/check_trace.py --list-rules)

# Forward: every rule the verifier implements is documented.
while IFS= read -r rule; do
  if ! printf '%s\n' "$trace_table" | grep -qF "\`$rule\`"; then
    echo "TRACE DRIFT: rule '$rule' (check_trace.py) missing from $lint_doc"
    fail=1
  fi
done <<< "$trace_rules"

# Reverse: every rule named in the doc's table exists in the verifier.
while IFS= read -r name; do
  if ! printf '%s\n' "$trace_rules" | grep -qxF "$name"; then
    echo "TRACE DRIFT: $lint_doc documents rule '$name', which check_trace.py does not implement"
    fail=1
  fi
done < <(printf '%s\n' "$trace_table" | grep -oE '^\| `[a-z-]+`' | sed -E 's/^\| `([a-z-]+)`/\1/' | sort -u)

# --- 5. happens-before analyzer rule drift ----------------------------------
hb_table=$(sed -n '/BEGIN hb-rule table/,/END hb-rule table/p' "$lint_doc")
if [ -z "$hb_table" ]; then
  echo "HB DRIFT: $lint_doc lost its hb-rule table markers"
  fail=1
fi

hb_rules=$(python3 tools/check_hb.py --list-rules)

# Forward: every rule the analyzer implements is documented.
while IFS= read -r rule; do
  if ! printf '%s\n' "$hb_table" | grep -qF "\`$rule\`"; then
    echo "HB DRIFT: rule '$rule' (check_hb.py) missing from $lint_doc"
    fail=1
  fi
done <<< "$hb_rules"

# Reverse: every rule named in the doc's table exists in the analyzer.
while IFS= read -r name; do
  if ! printf '%s\n' "$hb_rules" | grep -qxF "$name"; then
    echo "HB DRIFT: $lint_doc documents rule '$name', which check_hb.py does not implement"
    fail=1
  fi
done < <(printf '%s\n' "$hb_table" | grep -oE '^\| `[a-z-]+`' | sed -E 's/^\| `([a-z-]+)`/\1/' | sort -u)

if [ "$fail" -eq 0 ]; then
  echo "docs check OK (links + reserved-tag registry + lint rules + trace rules + hb rules)"
fi
exit $fail

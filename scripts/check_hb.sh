#!/usr/bin/env bash
# Happens-before determinism gate: proves the analyzer itself (self-test
# over tools/hb_fixtures/), analyzes the real happens-before log the
# comm_trace workload emits (must be clean), then seeds the known
# determinism race via the interleaving explorer and requires BOTH
# detectors to catch it: the explorer by divergent result digests, the
# analyzer by flagging the log of the racy run.  Same entry points as the
# ctest targets `hb_selftest` / `hb_check` and the CI step.
#
# Usage: scripts/check_hb.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"

python3 "${ROOT}/tools/check_hb.py" --self-test

HB="$(mktemp /tmp/kali_hb.XXXXXX)"
SEEDED="$(mktemp /tmp/kali_hb_seeded.XXXXXX)"
trap 'rm -f "${HB}" "${SEEDED}"' EXIT

# The real mixed workload's log must analyze clean.
"${BUILD}/comm_trace" /dev/null "${HB}"
python3 "${ROOT}/tools/check_hb.py" "${HB}"

# Full (unbounded is tiny here) enumeration of every micro-program must
# find bit-identical digests everywhere...
"${BUILD}/explore_scheduler"

# ...and the seeded race must be caught twice over: the explorer exits 0
# only when digests diverge, and the analyzer must FAIL its log.
"${BUILD}/explore_scheduler" --seed-bug --hb "${SEEDED}"
if python3 "${ROOT}/tools/check_hb.py" "${SEEDED}"; then
  echo "check_hb.sh: FAIL: analyzer passed the seeded-race log" >&2
  exit 1
fi
echo "check_hb.sh: OK (self-test, clean workload, seeded race caught by explorer + analyzer)"

#!/usr/bin/env bash
# Determinism lint gate: runs tools/lint_kali.py over src/ and then its
# self-test over tools/lint_fixtures/.  Same entry points as the ctest
# targets `lint_check` / `lint_selftest` and the CI `lint` job.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

python3 "${ROOT}/tools/lint_kali.py" --root "${ROOT}"
python3 "${ROOT}/tools/lint_kali.py" --self-test --root "${ROOT}"

#!/usr/bin/env bash
# Trace-verifier gate: proves the verifier itself (self-test over
# tools/trace_fixtures/), then runs the comm_trace example and verifies
# the real trace it emits.  Same entry points as the ctest targets
# `trace_selftest` / `trace_check` and the CI step.
#
# Usage: scripts/check_trace.sh [build-dir]   (default: build)
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"

python3 "${ROOT}/tools/check_trace.py" --self-test

TRACE="$(mktemp /tmp/kali_comm_trace.XXXXXX)"
trap 'rm -f "${TRACE}"' EXIT
"${BUILD}/comm_trace" "${TRACE}"
python3 "${ROOT}/tools/check_trace.py" "${TRACE}"

// Distributed arrays (the paper's `real X(0:np, 0:np) dist (block, block)`).
//
// A DistArray<T, R> is an SPMD object: every member of its ProcView holds
// the descriptor plus its own local slab (with optional halo/ghost margins
// on block-distributed dimensions).  Non-members hold only the descriptor.
//
// Slicing is the paper's key composition mechanism:
//   A.fix(2, k)           ~  u(*, *, k)   — rank drops; the processor view
//                                            is sliced to the owners
//   A.localize(0, lo, n)  ~  v(lo:hi, *)  — a single owner's block becomes
//                                            an undistributed (*) dimension
// Both return views sharing the parent's storage, so kernels called on a
// slice ("distributed procedures") operate on the original data in place.
//
// Indexing is Fortran-listing-flavoured: `A(i, j)` takes *global* indices
// and requires ownership; `A.at_halo(...)` additionally admits ghost cells.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "machine/message.hpp"   // kTagHaloBase (reserved-tag registry)
#include "machine/schedule.hpp"  // corner-mode halo issues through rounds
#include "runtime/distribution.hpp"
#include "runtime/proc_view.hpp"

namespace kali {

/// Whether a halo exchange must also fill diagonal corner ghosts.
enum class HaloCorners { kNo, kYes };

/// How corner-mode halo traffic is packed onto the wire.  kCoalesced (the
/// default) concatenates every direction piece bound for the same peer
/// into one kTagHaloCornerPack message, so a rank sends one message per
/// neighbouring peer instead of up to 3^R - 1.  kPerDirection keeps the
/// historical one-message-per-direction-code wire format (tag
/// kTagHaloCornerBase + code); it is the oracle the coalesced path is
/// tested bit-identical against.  Cell contents are identical either way.
enum class HaloWire { kCoalesced, kPerDirection };

/// Index/extent tuple for a rank-R array.  R is signed (Fortran-flavoured)
/// throughout the API; the cast keeps instantiation sites clean under
/// -Wsign-conversion.
template <int R>
using GIndex = std::array<int, static_cast<std::size_t>(R)>;

/// Strided 1-D window over local memory; what sequential kernels consume.
template <class T>
struct Strided {
  T* data = nullptr;
  std::ptrdiff_t stride = 1;
  int n = 0;

  T& operator[](int i) const { return data[stride * static_cast<std::ptrdiff_t>(i)]; }

  operator Strided<const T>() const  // NOLINT(google-explicit-constructor)
    requires(!std::is_const_v<T>)
  {
    return {data, stride, n};
  }
};

template <class T, int R>
class DistArray {
  static_assert(R >= 1 && R <= 3, "DistArray supports ranks 1..3");

  static constexpr std::size_t UR = static_cast<std::size_t>(R);

 public:
  using Extents = GIndex<R>;
  using Dists = std::array<DimDist, UR>;
  using Halos = std::array<int, UR>;

  DistArray() = default;

  /// Collective constructor: every member of `view` allocates its slab.
  /// The number of non-star dims must equal view.ndims() (paper rule);
  /// non-star dims bind to processor-grid dims in declaration order.
  DistArray(Context& ctx, const ProcView& view, Extents extents, Dists dists,
            Halos halo = {})
      : ctx_(&ctx), view_(view), extents_(extents), dists_(dists), halo_(halo) {
    int pd = 0;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (dists_[ud].kind == DistKind::kStar) {
        proc_dim_[ud] = -1;
        maps_[ud] = DimMap(dists_[ud], extents_[ud], 1);
        KALI_CHECK(halo_[ud] == 0, "halo only on distributed dims");
      } else {
        KALI_CHECK(pd < view.ndims(),
                   "more distributed dims than processor-array dims");
        proc_dim_[ud] = pd;
        maps_[ud] = DimMap(dists_[ud], extents_[ud], view.extent(pd));
        KALI_CHECK(halo_[ud] == 0 || dists_[ud].kind == DistKind::kBlock,
                   "halo requires a block distribution");
        ++pd;
      }
    }
    KALI_CHECK(pd == view.ndims(),
               "distributed dims must match processor-array dims");

    auto coord = view.coord_of(ctx.rank());
    member_ = coord.has_value();
    if (!member_) {
      return;
    }
    view_coord_ = *coord;
    std::ptrdiff_t size = 1;
    for (int d = R - 1; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      my_coord_[ud] = proc_dim_[ud] < 0
                          ? 0
                          : view_coord_[static_cast<std::size_t>(proc_dim_[ud])];
      lcount_[ud] = maps_[ud].count(my_coord_[ud]);
      strides_[ud] = size;
      size *= lcount_[ud] + 2 * halo_[ud];
    }
    store_ = std::make_shared<std::vector<T>>(static_cast<std::size_t>(size), T{});
    offset_ = 0;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      offset_ += static_cast<std::ptrdiff_t>(halo_[ud]) * strides_[ud];
    }
  }

  // ---- metadata -----------------------------------------------------------

  [[nodiscard]] bool participating() const { return member_; }
  [[nodiscard]] const ProcView& view() const { return view_; }
  [[nodiscard]] int extent(int d) const { return extents_[idx(d)]; }
  [[nodiscard]] const DimMap& map(int d) const { return maps_[idx(d)]; }
  [[nodiscard]] DistKind dist_kind(int d) const { return dists_[idx(d)].kind; }
  [[nodiscard]] int halo(int d) const { return halo_[idx(d)]; }
  [[nodiscard]] int proc_dim(int d) const { return proc_dim_[idx(d)]; }
  [[nodiscard]] Context& context() const {
    KALI_CHECK(ctx_ != nullptr, "uninitialized array");
    return *ctx_;
  }

  /// My processor coordinate along dim d's grid dimension (0 for star dims).
  [[nodiscard]] int my_coord(int d) const {
    require_member();
    return my_coord_[idx(d)];
  }

  /// Communication group over the view (collective helpers).
  [[nodiscard]] Group group() const {
    require_member();
    return view_.group(ctx_->rank());
  }

  // ---- ownership & indexing ----------------------------------------------

  [[nodiscard]] bool owns(Extents g) const {
    if (!member_) {
      return false;
    }
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (g[ud] < 0 || g[ud] >= extents_[ud]) {
        return false;
      }
      if (maps_[ud].owner(g[ud]) != my_coord_[ud]) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] T& at(Extents g) {
    return (*store_)[static_cast<std::size_t>(flat_owned(g))];
  }
  [[nodiscard]] const T& at(Extents g) const {
    return (*store_)[static_cast<std::size_t>(flat_owned(g))];
  }

  /// Read access admitting ghost cells on block dims (within halo width).
  ///
  /// Ghost cells *outside the global domain* are legal too: they are the
  /// "boundary frame" of the paper's Listing 2, where each processor's
  /// (0:m+1, 0:m+1) slab carries boundary data around the distributed
  /// interior.  Frame cells are zero-initialized, never touched by
  /// exchange_halo (no neighbour there), and writable via frame().
  [[nodiscard]] const T& at_halo(Extents g) const {
    return (*store_)[static_cast<std::size_t>(flat_halo(g))];
  }

  /// Writable access to halo/frame cells (e.g. to impose inhomogeneous
  /// Dirichlet values on the boundary frame).
  [[nodiscard]] T& frame(Extents g) {
    return (*store_)[static_cast<std::size_t>(flat_halo(g))];
  }

  // Convenience operators taking global indices.
  T& operator()(int i)
    requires(R == 1)
  {
    return at({i});
  }
  const T& operator()(int i) const
    requires(R == 1)
  {
    return at({i});
  }
  T& operator()(int i, int j)
    requires(R == 2)
  {
    return at({i, j});
  }
  const T& operator()(int i, int j) const
    requires(R == 2)
  {
    return at({i, j});
  }
  T& operator()(int i, int j, int k)
    requires(R == 3)
  {
    return at({i, j, k});
  }
  const T& operator()(int i, int j, int k) const
    requires(R == 3)
  {
    return at({i, j, k});
  }

  /// Owned extent along d for block/star dims: inclusive [lower, upper]
  /// (the paper's `lower`/`upper` intrinsics).
  [[nodiscard]] int own_lower(int d) const {
    require_member();
    const auto ud = idx(d);
    if (dists_[ud].kind == DistKind::kStar) {
      return 0;
    }
    KALI_CHECK(dists_[ud].kind == DistKind::kBlock,
               "own_lower requires block or star dist");
    return maps_[ud].block_lower(my_coord_[ud]);
  }
  [[nodiscard]] int own_upper(int d) const {
    return own_lower(d) + local_count(d) - 1;
  }
  [[nodiscard]] int local_count(int d) const {
    require_member();
    return lcount_[idx(d)];
  }

  /// All owned global indices along d, ascending (any distribution).
  [[nodiscard]] std::vector<int> owned(int d) const {
    require_member();
    const auto ud = idx(d);
    return maps_[ud].owned_indices(my_coord_[ud]);
  }

  /// Strided window over the owned elements of a 1-D array.
  [[nodiscard]] Strided<T> local_strided()
    requires(R == 1)
  {
    require_member();
    return {store_->data() + offset_, strides_[0], lcount_[0]};
  }
  [[nodiscard]] Strided<const T> local_strided() const
    requires(R == 1)
  {
    require_member();
    return {store_->data() + offset_, strides_[0], lcount_[0]};
  }

  // ---- fills ----------------------------------------------------------------

  template <class Fn>
  void fill(Fn fn) {
    if (!member_) {
      return;
    }
    for_each_owned([&](Extents g) { at(g) = fn(g); });
  }

  void fill_value(const T& v) {
    fill([&](Extents) { return v; });
  }

  /// Visit every owned element (global indices, row-major order).
  template <class Fn>
  void for_each_owned(Fn fn) const {
    if (!member_) {
      return;
    }
    std::array<std::vector<int>, UR> own;
    for (int d = 0; d < R; ++d) {
      own[static_cast<std::size_t>(d)] = owned(d);
      if (own[static_cast<std::size_t>(d)].empty()) {
        return;  // this member owns no elements (extent < nprocs overshoot)
      }
    }
    Extents g{};
    std::array<std::size_t, UR> pos{};
    for (;;) {
      for (int d = 0; d < R; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        g[ud] = own[ud][pos[ud]];
      }
      fn(g);
      int d = R - 1;
      for (; d >= 0; --d) {
        const auto ud = static_cast<std::size_t>(d);
        if (++pos[ud] < own[ud].size()) {
          break;
        }
        pos[ud] = 0;
      }
      if (d < 0) {
        return;
      }
    }
  }

  // ---- copy-in/copy-out & halo ---------------------------------------------

  /// Deep copy of the local slab (including halo margins) — the temporary a
  /// KF1 compiler introduces for the doall copy-in/copy-out semantics.
  /// Charges one op per element copied, like the explicit tmpX loop of
  /// Listings 1-2.
  [[nodiscard]] DistArray clone() const {
    DistArray c = *this;
    if (!member_) {
      return c;
    }
    std::ptrdiff_t size = 1;
    for (int d = R - 1; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      c.strides_[ud] = size;
      size *= lcount_[ud] + 2 * halo_[ud];
    }
    c.store_ = std::make_shared<std::vector<T>>(static_cast<std::size_t>(size));
    c.offset_ = 0;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      c.offset_ += static_cast<std::ptrdiff_t>(halo_[ud]) * c.strides_[ud];
    }
    // Copy the full slab (owned + halo) element-wise (layouts may differ
    // when *this is a slice of a larger array).
    std::ptrdiff_t copied = 0;
    visit_slab([&](const GIndex<R>& rel) {
      (*c.store_)[static_cast<std::size_t>(c.rel_flat(rel))] =
          (*store_)[static_cast<std::size_t>(rel_flat_of(*this, rel))];
      ++copied;
    });
    ctx_->compute(static_cast<double>(copied));
    return c;
  }

  /// clone() + exchange_halo(): the full copy-in of a stencil doall.
  [[nodiscard]] DistArray copy_in(HaloCorners corners = HaloCorners::kNo) const {
    DistArray c = clone();
    c.exchange_halo(corners);
    return c;
  }

  /// Exchange ghost margins with grid neighbours along every block dim with
  /// halo > 0.  Collective over the view.
  ///
  /// HaloCorners::kNo (default): faces cover the owned extent of the other
  /// dims; all sends are posted before any receive — one latency round,
  /// exactly the message pattern of the hand-coded Listing 2.  Sufficient
  /// for star-shaped stencils (all of the paper's algorithms).
  ///
  /// HaloCorners::kYes: diagonal corner ghosts are valid afterwards too
  /// (needed for 9-point-style stencils).  One *single scheduled exchange*
  /// whose peer list includes the diagonal grid neighbours: each direction
  /// vector delta in {-1, 0, +1}^R names one ghost region, sourced straight
  /// from the rank delta away (along the dims that have a neighbour; at a
  /// domain boundary the same-coordinate rank's frame margin is sourced
  /// instead, which is what the old serialized dimension rounds propagated
  /// into the out-of-domain corners).  Cell contents are bit-identical to
  /// the former per-dim implementation, but the messages now issue through
  /// the round-structured CommSchedule (machine/schedule.hpp) in one round
  /// trip instead of R serialized rounds — `order` selects the issue order
  /// under link contention (kPeerOrder is the naive baseline, kLockstep
  /// bounds mailbox depth).  `wire` selects the corner-mode packing: one
  /// coalesced kTagHaloCornerPack message per peer (default) or the
  /// per-direction-code oracle.  `order` and `wire` are ignored in face
  /// mode.
  void exchange_halo(HaloCorners corners = HaloCorners::kNo,
                     IssueOrder order = IssueOrder::kRoundSchedule,
                     HaloWire wire = HaloWire::kCoalesced) {
    if (!member_) {
      return;
    }
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (halo_[ud] > 0) {
        KALI_CHECK(lcount_[ud] >= halo_[ud],
                   "slab thinner than halo; increase extent or reduce procs");
      }
    }
    if (corners == HaloCorners::kYes) {
      exchange_halo_corners(order, wire);
    } else {
      for (int d = 0; d < R; ++d) {
        if (halo_[static_cast<std::size_t>(d)] > 0) {
          exchange_dim_sends(d);
        }
      }
      for (int d = 0; d < R; ++d) {
        if (halo_[static_cast<std::size_t>(d)] > 0) {
          exchange_dim_recvs(d);
        }
      }
    }
  }

  /// In-flight split-phase halo exchange (Overlap::kOn): returned by
  /// exchange_halo_begin() with all receives posted and all sends fired;
  /// finish() completes the receives and unpacks the ghost margins.
  /// Between the two calls the owner may freely compute on anything except
  /// the ghost cells (the interior of the owned slab in particular) —
  /// that work runs while the wire drains, which is the entire point.
  /// finish() must be called before the ghosts are read and before the
  /// rank program returns; a dropped exchange is a dropped handle, which
  /// the KALI_CHECK_INVARIANTS build diagnoses at end of program.
  class HaloExchange {
   public:
    HaloExchange() = default;

    /// Complete the posted receives (canonical key order, one wait point)
    /// and unpack them into the ghost margins; charges the unpack compute.
    /// Idempotent: a second call is a no-op.
    void finish() {
      if (arr_ != nullptr) {
        DistArray* a = arr_;
        arr_ = nullptr;
        a->finish_halo(*this);
      }
    }

    /// True while receives are still in flight (finish() not yet called).
    [[nodiscard]] bool active() const { return arr_ != nullptr; }

   private:
    friend class DistArray;
    struct Pend {
      int dim = 0;
      int side = 0;  ///< 0: low ghost face, 1: high ghost face
      std::vector<T> buf;
      CommHandle h;
    };
    DistArray* arr_ = nullptr;
    std::vector<Pend> pend_;
  };

  /// Post/compute/wait form of the face-mode halo exchange: posts a
  /// nonblocking receive for every incoming ghost face, then fires the same
  /// sends as exchange_halo (same tags, same payloads, same order — the
  /// message ledger is bit-identical to the blocking oracle) and returns
  /// without waiting.  Corner mode has no split-phase form (its ghost
  /// regions feed diagonal dependencies that rarely leave useful interior
  /// work); use exchange_halo(HaloCorners::kYes) there.
  [[nodiscard]] HaloExchange exchange_halo_begin() {
    HaloExchange ex;
    if (!member_) {
      return ex;
    }
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (halo_[ud] > 0) {
        KALI_CHECK(lcount_[ud] >= halo_[ud],
                   "slab thinner than halo; increase extent or reduce procs");
      }
    }
    ex.arr_ = this;
    // Post every receive first — the in-flight window opens before the
    // first send, so all wire time is eligible for hiding.
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (halo_[ud] == 0) {
        continue;
      }
      const int tag_lo = kTagHaloBase + 4 * d;
      const int tag_hi = kTagHaloBase + 4 * d + 1;
      const int left = neighbor_rank(d, -1);
      const int right = neighbor_rank(d, +1);
      std::size_t volume = static_cast<std::size_t>(halo_[ud]);
      for (int o = 0; o < R; ++o) {
        if (o != d) {
          volume *= static_cast<std::size_t>(lcount_[static_cast<std::size_t>(o)]);
        }
      }
      if (left >= 0) {
        auto& p = ex.pend_.emplace_back();
        p.dim = d;
        p.side = 0;
        p.buf.resize(volume);
        p.h = ctx_->irecv_into<T>(left, tag_lo, p.buf);
      }
      if (right >= 0) {
        auto& p = ex.pend_.emplace_back();
        p.dim = d;
        p.side = 1;
        p.buf.resize(volume);
        p.h = ctx_->irecv_into<T>(right, tag_hi, p.buf);
      }
    }
    for (int d = 0; d < R; ++d) {
      if (halo_[static_cast<std::size_t>(d)] > 0) {
        exchange_dim_sends(d);
      }
    }
    return ex;
  }

  // ---- slicing ---------------------------------------------------------------

  /// Fix dimension `dim` to global index g: u(*, *, k) etc.
  /// Collective in the descriptor sense: all callers compute the same
  /// metadata; only owners of the slice keep storage access.
  [[nodiscard]] DistArray<T, R - 1> fix(int dim, int g) const
    requires(R >= 2)
  {
    const auto ud = idx(dim);
    KALI_CHECK(g >= 0 && g < extents_[ud], "fix: index out of range");
    DistArray<T, R - 1> out;
    out.ctx_ = ctx_;
    const bool star = dists_[ud].kind == DistKind::kStar;
    const int removed_pd = proc_dim_[ud];
    if (star) {
      out.view_ = view_;
    } else {
      out.view_ = view_.fix(removed_pd, maps_[ud].owner(g));
    }
    int o = 0;
    for (int d = 0; d < R; ++d) {
      if (d == dim) {
        continue;
      }
      const auto sd = static_cast<std::size_t>(d);
      const auto so = static_cast<std::size_t>(o);
      out.extents_[so] = extents_[sd];
      out.dists_[so] = dists_[sd];
      out.halo_[so] = halo_[sd];
      out.maps_[so] = maps_[sd];
      out.proc_dim_[so] =
          (!star && proc_dim_[sd] > removed_pd) ? proc_dim_[sd] - 1 : proc_dim_[sd];
      ++o;
    }
    out.member_ = member_ && (star || maps_[ud].owner(g) == my_coord_[ud]);
    if (out.member_) {
      const auto vc = out.view_.coord_of(ctx_->rank());
      KALI_CHECK(vc.has_value(), "fix: inconsistent view membership");
      out.view_coord_ = *vc;
      o = 0;
      for (int d = 0; d < R; ++d) {
        if (d == dim) {
          continue;
        }
        const auto sd = static_cast<std::size_t>(d);
        const auto so = static_cast<std::size_t>(o);
        out.my_coord_[so] = my_coord_[sd];
        out.lcount_[so] = lcount_[sd];
        out.strides_[so] = strides_[sd];
        ++o;
      }
      out.store_ = store_;
      const int l = star ? g : maps_[ud].local(g);
      out.offset_ = offset_ + static_cast<std::ptrdiff_t>(l) * strides_[ud];
    }
    return out;
  }

  /// Restrict dim to [lo, lo+len): star dims always; block dims only when
  /// the range lies within one owner's slab, which then becomes a star dim
  /// over the correspondingly fixed processor view (Listing 8's v(lo:hi,*)).
  [[nodiscard]] DistArray localize(int dim, int lo, int len) const {
    const auto ud = idx(dim);
    KALI_CHECK(len >= 1 && lo >= 0 && lo + len <= extents_[ud],
               "localize: bad range");
    DistArray out = *this;
    if (dists_[ud].kind == DistKind::kStar) {
      out.extents_[ud] = len;
      out.maps_[ud] = DimMap(DimDist::star(), len, 1);
      if (member_) {
        out.offset_ = offset_ + static_cast<std::ptrdiff_t>(lo) * strides_[ud];
        out.lcount_[ud] = len;
      }
      return out;
    }
    KALI_CHECK(dists_[ud].kind == DistKind::kBlock,
               "localize requires star or block dim");
    KALI_CHECK(maps_[ud].single_owner_range(lo, lo + len - 1),
               "localize: range spans multiple owners");
    const int c = maps_[ud].owner(lo);
    const int removed_pd = proc_dim_[ud];
    out.view_ = view_.fix(removed_pd, c);
    out.extents_[ud] = len;
    out.dists_[ud] = DimDist::star();
    out.halo_[ud] = 0;
    out.maps_[ud] = DimMap(DimDist::star(), len, 1);
    out.proc_dim_[ud] = -1;
    for (int d = 0; d < R; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      if (d != dim && proc_dim_[sd] > removed_pd) {
        out.proc_dim_[sd] = proc_dim_[sd] - 1;
      }
    }
    out.member_ = member_ && my_coord_[ud] == c;
    if (out.member_) {
      const auto vc = out.view_.coord_of(ctx_->rank());
      KALI_CHECK(vc.has_value(), "localize: inconsistent view membership");
      out.view_coord_ = *vc;
      out.my_coord_[ud] = 0;
      out.lcount_[ud] = len;
      out.offset_ = offset_ + static_cast<std::ptrdiff_t>(maps_[ud].local(lo)) * strides_[ud];
    } else {
      out.store_.reset();
    }
    return out;
  }

 private:
  template <class U, int S>
  friend class DistArray;

  static std::size_t idx(int d) {
    KALI_CHECK(d >= 0 && d < R, "dimension out of range");
    return static_cast<std::size_t>(d);
  }

  void require_member() const {
    KALI_CHECK(member_, "operation requires view membership");
  }

  [[nodiscard]] std::ptrdiff_t flat_halo(Extents g) const {
    require_member();
    std::ptrdiff_t f = offset_;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      int rel;
      if (dists_[ud].kind == DistKind::kBlock) {
        rel = g[ud] - maps_[ud].block_lower(my_coord_[ud]);
        KALI_CHECK(rel >= -halo_[ud] && rel < lcount_[ud] + halo_[ud],
                   "at_halo: outside slab+halo");
      } else {
        KALI_CHECK(g[ud] >= 0 && g[ud] < extents_[ud] &&
                       maps_[ud].owner(g[ud]) == my_coord_[ud],
                   "at_halo: not owned");
        rel = maps_[ud].local(g[ud]);
      }
      f += static_cast<std::ptrdiff_t>(rel) * strides_[ud];
    }
    return f;
  }

  [[nodiscard]] std::ptrdiff_t flat_owned(Extents g) const {
    require_member();
    std::ptrdiff_t f = offset_;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      KALI_CHECK(g[ud] >= 0 && g[ud] < extents_[ud], "index out of range");
      KALI_CHECK(maps_[ud].owner(g[ud]) == my_coord_[ud], "index not owned");
      f += static_cast<std::ptrdiff_t>(maps_[ud].local(g[ud])) * strides_[ud];
    }
    return f;
  }

  /// Flat position of slab-relative coordinates (rel in [-halo, count+halo)).
  static std::ptrdiff_t rel_flat_of(const DistArray& a, const GIndex<R>& rel) {
    std::ptrdiff_t f = a.offset_;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      f += static_cast<std::ptrdiff_t>(rel[ud]) * a.strides_[ud];
    }
    return f;
  }
  [[nodiscard]] std::ptrdiff_t rel_flat(const GIndex<R>& rel) const {
    return rel_flat_of(*this, rel);
  }

  /// Visit all slab-relative coordinates including halo margins.
  template <class Fn>
  void visit_slab(Fn fn) const {
    GIndex<R> rel{};
    GIndex<R> lo{};
    GIndex<R> hi{};
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      lo[ud] = -halo_[ud];
      hi[ud] = lcount_[ud] + halo_[ud];  // exclusive
      rel[ud] = lo[ud];
      if (lo[ud] >= hi[ud]) {
        return;  // empty slab
      }
    }
    for (;;) {
      fn(rel);
      int d = R - 1;
      for (; d >= 0; --d) {
        const auto ud = static_cast<std::size_t>(d);
        if (++rel[ud] < hi[ud]) {
          break;
        }
        rel[ud] = lo[ud];
      }
      if (d < 0) {
        return;
      }
    }
  }

  /// Visit every slab-relative coordinate in [lo, hi) (hi exclusive) in
  /// row-major order; no-op when any extent is empty.
  template <class Fn>
  static void visit_rel_box(const GIndex<R>& lo, const GIndex<R>& hi, Fn fn) {
    GIndex<R> rel{};
    for (int d = 0; d < R; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      rel[sd] = lo[sd];
      if (lo[sd] >= hi[sd]) {
        return;
      }
    }
    for (;;) {
      fn(rel);
      int d = R - 1;
      for (; d >= 0; --d) {
        const auto sd = static_cast<std::size_t>(d);
        if (++rel[sd] < hi[sd]) {
          break;
        }
        rel[sd] = lo[sd];
      }
      if (d < 0) {
        return;
      }
    }
  }

  /// Visit the slab face of thickness `halo_[dim]` at `side` (0: low, 1:
  /// high) — `owned_side` selects owned planes (to send) vs ghost planes
  /// (to receive).  Faces cover the owned extent of the other dims (the
  /// HaloCorners::kNo message pattern).
  template <class Fn>
  void visit_face(int dim, int side, bool owned_side, Fn fn) const {
    const auto ud = static_cast<std::size_t>(dim);
    const int h = halo_[ud];
    GIndex<R> lo{};
    GIndex<R> hi{};
    for (int d = 0; d < R; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      lo[sd] = 0;
      hi[sd] = lcount_[sd];
    }
    if (owned_side) {
      lo[ud] = side == 0 ? 0 : lcount_[ud] - h;
      hi[ud] = side == 0 ? h : lcount_[ud];
    } else {
      lo[ud] = side == 0 ? -h : lcount_[ud];
      hi[ud] = side == 0 ? 0 : lcount_[ud] + h;
    }
    visit_rel_box(lo, hi, fn);
  }

  [[nodiscard]] int neighbor_rank(int dim, int delta) const {
    const auto ud = static_cast<std::size_t>(dim);
    const int pd = proc_dim_[ud];
    const int c = my_coord_[ud] + delta;
    if (c < 0 || c >= view_.extent(pd)) {
      return -1;
    }
    auto coord = view_coord_;
    coord[static_cast<std::size_t>(pd)] = c;
    return view_.rank_of(coord);
  }

  void exchange_dim_sends(int d) {
    const int tag_lo = kTagHaloBase + 4 * d;      // data travelling low->high
    const int tag_hi = kTagHaloBase + 4 * d + 1;  // data travelling high->low
    const int left = neighbor_rank(d, -1);
    const int right = neighbor_rank(d, +1);
    std::vector<T> buf;
    double packed = 0;
    // Send owned low face to left neighbour, owned high face to right.
    if (left >= 0) {
      buf.clear();
      visit_face(d, 0, /*owned_side=*/true,
                 [&](const GIndex<R>& rel) {
                   buf.push_back((*store_)[static_cast<std::size_t>(rel_flat(rel))]);
                 });
      // kali-lint: allow(raw-exchange) — bounded-degree neighbor send (≤2
      // peers per dim), not a dense exchange; no schedule needed.
      ctx_->send_span<T>(left, tag_hi, buf);
      packed += static_cast<double>(buf.size());
    }
    if (right >= 0) {
      buf.clear();
      visit_face(d, 1, /*owned_side=*/true,
                 [&](const GIndex<R>& rel) {
                   buf.push_back((*store_)[static_cast<std::size_t>(rel_flat(rel))]);
                 });
      // kali-lint: allow(raw-exchange) — bounded-degree neighbor send.
      ctx_->send_span<T>(right, tag_lo, buf);
      packed += static_cast<double>(buf.size());
    }
    ctx_->compute(packed);  // pack cost, one op per element moved
  }

  void exchange_dim_recvs(int d) {
    const int tag_lo = kTagHaloBase + 4 * d;
    const int tag_hi = kTagHaloBase + 4 * d + 1;
    const int left = neighbor_rank(d, -1);
    const int right = neighbor_rank(d, +1);
    double packed = 0;
    if (left >= 0) {
      // kali-lint: allow(raw-exchange) — bounded-degree neighbor receive.
      auto in = ctx_->recv_vec<T>(left, tag_lo);
      std::size_t k = 0;
      visit_face(d, 0, /*owned_side=*/false,
                 [&](const GIndex<R>& rel) {
                   (*store_)[static_cast<std::size_t>(rel_flat(rel))] = in[k++];
                 });
      KALI_CHECK(k == in.size(), "halo size mismatch (low)");
      packed += static_cast<double>(k);
    }
    if (right >= 0) {
      // kali-lint: allow(raw-exchange) — bounded-degree neighbor receive.
      auto in = ctx_->recv_vec<T>(right, tag_hi);
      std::size_t k = 0;
      visit_face(d, 1, /*owned_side=*/false,
                 [&](const GIndex<R>& rel) {
                   (*store_)[static_cast<std::size_t>(rel_flat(rel))] = in[k++];
                 });
      KALI_CHECK(k == in.size(), "halo size mismatch (high)");
      packed += static_cast<double>(k);
    }
    ctx_->compute(packed);  // unpack cost
  }

  /// Second half of the split-phase halo: complete every posted receive at
  /// one wait point (the completion batch applies its cost algebra in
  /// canonical (send_time, src, seq) order; see Context::wait_all), then
  /// unpack the staged faces into the ghost margins and charge the same
  /// per-element unpack cost the blocking path charges.
  void finish_halo(HaloExchange& ex) {
    std::vector<CommHandle> hs;
    hs.reserve(ex.pend_.size());
    for (auto& p : ex.pend_) {
      hs.push_back(p.h);
    }
    ctx_->wait_all(hs);
    double packed = 0;
    for (auto& p : ex.pend_) {
      std::size_t k = 0;
      visit_face(p.dim, p.side, /*owned_side=*/false,
                 [&](const GIndex<R>& rel) {
                   (*store_)[static_cast<std::size_t>(rel_flat(rel))] =
                       p.buf[k++];
                 });
      KALI_CHECK(k == p.buf.size(), "halo size mismatch (split-phase)");
      packed += static_cast<double>(k);
    }
    ex.pend_.clear();
    ctx_->compute(packed);  // unpack cost, same rate as the blocking path
  }

  /// The HaloCorners::kYes implementation: one scheduled exchange over the
  /// view covering every ghost region at once, diagonal neighbours
  /// included.
  ///
  /// Each direction vector delta in {-1, 0, +1}^R (nonzero only on dims
  /// with halo > 0) names one disjoint ghost region of the slab margin.
  /// Split delta's nonzero dims by this member's grid position:
  ///   E dims — a neighbour exists in that direction; the region's data is
  ///            that side's *owned face* of the rank one step away,
  ///   U dims — the domain boundary; the region lies outside the global
  ///            index space and carries the *frame margin* of the rank at
  ///            the same coordinate (the value the old serialized per-dim
  ///            rounds propagated into out-of-domain corners).
  /// The region's unique source is therefore the rank at coord + delta|E;
  /// regions with E empty stay untouched (pure frame).  Senders enumerate
  /// the same pairs from the other end: for each delta and each nonzero
  /// dim, the receiver either sits at coord - delta_d (E, gets my owned
  /// face) or at my own coordinate with no rank beyond it (U, gets my
  /// frame margin) — every valid combination with at least one E choice is
  /// a receiver.  Both ends enumerate delta codes ascending and issue
  /// through detail::issue_exchange, so the whole exchange is one
  /// round-scheduled trip instead of R serialized dimension rounds, and no
  /// member ever messages itself.  HaloWire::kPerDirection tags each piece
  /// with delta's base-3 code (kTagHaloCornerBase + code);
  /// HaloWire::kCoalesced concatenates a peer's pieces — in that shared
  /// ascending-code order, so no per-piece header is needed — into one
  /// kTagHaloCornerPack message per peer.
  void exchange_halo_corners(IssueOrder order, HaloWire wire) {
    struct Piece {
      GIndex<R> lo{};  ///< slab-relative box, hi exclusive
      GIndex<R> hi{};
      int tag = 0;
    };
    std::vector<std::pair<int, Piece>> out;
    std::vector<std::pair<int, Piece>> in;

    int ncodes = 1;
    for (int d = 0; d < R; ++d) {
      ncodes *= 3;
    }
    std::array<int, UR> nz{};  // nonzero dims of the current delta
    for (int code = 0; code < ncodes; ++code) {
      GIndex<R> delta{};
      int rest = code;
      int nnz = 0;
      bool eligible = true;
      for (int d = 0; d < R; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        delta[ud] = rest % 3 - 1;
        rest /= 3;
        if (delta[ud] != 0) {
          if (halo_[ud] == 0) {
            eligible = false;
            break;
          }
          nz[static_cast<std::size_t>(nnz++)] = d;
        }
      }
      if (!eligible || nnz == 0) {
        continue;
      }
      const int tag = kTagHaloCornerBase + code;

      // Receive side: source = coord + delta along E dims.
      {
        auto coord = view_coord_;
        bool any_e = false;
        bool empty = false;
        Piece p;
        p.tag = tag;
        for (int d = 0; d < R; ++d) {
          const auto ud = static_cast<std::size_t>(d);
          if (delta[ud] == 0) {
            p.lo[ud] = 0;
            p.hi[ud] = lcount_[ud];
            empty = empty || lcount_[ud] == 0;
            continue;
          }
          const int h = halo_[ud];
          p.lo[ud] = delta[ud] < 0 ? -h : lcount_[ud];
          p.hi[ud] = delta[ud] < 0 ? 0 : lcount_[ud] + h;
          if (neighbor_rank(d, delta[ud]) >= 0) {
            any_e = true;
            coord[static_cast<std::size_t>(proc_dim_[ud])] += delta[ud];
          }
        }
        if (any_e && !empty) {
          in.emplace_back(view_.rank_of(coord), p);
        }
      }

      // Send side: every valid E/U choice combination with >= 1 E choice
      // names one receiver pulling direction `delta` from this member.
      for (int mask = 0; mask < (1 << nnz); ++mask) {
        auto coord = view_coord_;
        bool valid = true;
        bool any_e = false;
        bool empty = false;
        Piece p;
        p.tag = tag;
        for (int d = 0; d < R; ++d) {
          const auto ud = static_cast<std::size_t>(d);
          if (delta[ud] == 0) {
            p.lo[ud] = 0;
            p.hi[ud] = lcount_[ud];
            empty = empty || lcount_[ud] == 0;
          }
        }
        for (int b = 0; b < nnz && valid; ++b) {
          const int d = nz[static_cast<std::size_t>(b)];
          const auto ud = static_cast<std::size_t>(d);
          const int h = halo_[ud];
          if ((mask & (1 << b)) == 0) {
            // E choice: receiver one step against delta; gets my owned face.
            valid = neighbor_rank(d, -delta[ud]) >= 0;
            coord[static_cast<std::size_t>(proc_dim_[ud])] -= delta[ud];
            p.lo[ud] = delta[ud] > 0 ? 0 : lcount_[ud] - h;
            p.hi[ud] = delta[ud] > 0 ? h : lcount_[ud];
            any_e = true;
          } else {
            // U choice: receiver at my coordinate beside the domain
            // boundary; gets my frame margin on delta's side.
            valid = neighbor_rank(d, delta[ud]) < 0;
            p.lo[ud] = delta[ud] > 0 ? lcount_[ud] : -h;
            p.hi[ud] = delta[ud] > 0 ? lcount_[ud] + h : 0;
          }
        }
        if (valid && any_e && !empty) {
          out.emplace_back(view_.rank_of(coord), p);
        }
      }
    }

    std::vector<int> members = view_.ranks();
    std::sort(members.begin(), members.end());
    std::vector<T> buf;
    double packed = 0;
    double unpacked = 0;
    auto pack_piece = [&](const Piece& p) {
      visit_rel_box(p.lo, p.hi, [&](const GIndex<R>& rel) {
        buf.push_back((*store_)[static_cast<std::size_t>(rel_flat(rel))]);
      });
    };
    auto piece_volume = [](const Piece& p) {
      std::size_t volume = 1;
      for (int d = 0; d < R; ++d) {
        const auto ud = static_cast<std::size_t>(d);
        volume *= static_cast<std::size_t>(p.hi[ud] - p.lo[ud]);
      }
      return volume;
    };
    auto unpack_piece = [&](const Piece& p, const std::vector<T>& vals,
                            std::size_t& k) {
      visit_rel_box(p.lo, p.hi, [&](const GIndex<R>& rel) {
        (*store_)[static_cast<std::size_t>(rel_flat(rel))] = vals[k++];
      });
    };

    if (wire == HaloWire::kPerDirection) {
      auto send_one = [&](int rank, const Piece& p) {
        buf.clear();
        pack_piece(p);
        ctx_->send_span<T>(rank, p.tag, std::span<const T>(buf));
        packed += static_cast<double>(buf.size());
      };
      auto recv_one = [&](int rank, const Piece& p) {
        auto vals = ctx_->recv_vec<T>(rank, p.tag);
        KALI_CHECK(vals.size() == piece_volume(p),
                   "corner halo size mismatch");
        std::size_t k = 0;
        unpack_piece(p, vals, k);
        unpacked += static_cast<double>(k);
      };
      detail::issue_exchange(
          members, ctx_->rank(), order, out, in, send_one, recv_one,
          [&] { ctx_->compute(packed); }, [&] { ctx_->compute(unpacked); });
      return;
    }

    // Coalesced wire: group each endpoint's pieces by peer, preserving the
    // ascending-code build order above.  A pair exchanges at most one piece
    // per code (distinct masks name distinct receiver coordinates), so both
    // sides agree on the concatenation order and the receiver can split the
    // pack by its known piece volumes alone.
    std::vector<std::pair<int, std::vector<Piece>>> gout;
    std::vector<std::pair<int, std::vector<Piece>>> gin;
    auto group = [](const std::vector<std::pair<int, Piece>>& flat,
                    std::vector<std::pair<int, std::vector<Piece>>>& grouped) {
      for (const auto& [rank, piece] : flat) {
        std::vector<Piece>* bucket = nullptr;
        for (auto& e : grouped) {
          if (e.first == rank) {
            bucket = &e.second;
            break;
          }
        }
        if (bucket == nullptr) {
          grouped.emplace_back(rank, std::vector<Piece>{});
          bucket = &grouped.back().second;
        }
        bucket->push_back(piece);
      }
    };
    group(out, gout);
    group(in, gin);
    auto send_one = [&](int rank, const std::vector<Piece>& pieces) {
      buf.clear();
      for (const Piece& p : pieces) {
        pack_piece(p);
      }
      ctx_->send_span<T>(rank, kTagHaloCornerPack, std::span<const T>(buf));
      packed += static_cast<double>(buf.size());
    };
    auto recv_one = [&](int rank, const std::vector<Piece>& pieces) {
      auto vals = ctx_->recv_vec<T>(rank, kTagHaloCornerPack);
      std::size_t total = 0;
      for (const Piece& p : pieces) {
        total += piece_volume(p);
      }
      KALI_CHECK(vals.size() == total, "corner halo pack size mismatch");
      std::size_t k = 0;
      for (const Piece& p : pieces) {
        unpack_piece(p, vals, k);
      }
      unpacked += static_cast<double>(k);
    };
    detail::issue_exchange(
        members, ctx_->rank(), order, gout, gin, send_one, recv_one,
        [&] { ctx_->compute(packed); }, [&] { ctx_->compute(unpacked); });
  }

  Context* ctx_ = nullptr;
  ProcView view_{};
  Extents extents_{};
  Dists dists_{};
  Halos halo_{};
  std::array<DimMap, UR> maps_{};
  std::array<int, UR> proc_dim_{};  ///< grid dim per array dim; -1 for star
  bool member_ = false;
  std::array<int, kMaxProcDims> view_coord_{};
  std::array<int, UR> my_coord_{};
  std::array<int, UR> lcount_{};
  std::array<std::ptrdiff_t, UR> strides_{};
  std::ptrdiff_t offset_ = 0;
  std::shared_ptr<std::vector<T>> store_;
};

template <class T>
using DistArray1 = DistArray<T, 1>;
template <class T>
using DistArray2 = DistArray<T, 2>;
template <class T>
using DistArray3 = DistArray<T, 3>;

}  // namespace kali

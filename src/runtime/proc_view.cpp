#include "runtime/proc_view.hpp"

#include "support/check.hpp"

namespace kali {

ProcView ProcView::grid1(int p, int base) {
  KALI_CHECK(p >= 1 && base >= 0, "grid1: bad shape");
  ProcView v;
  v.base_ = base;
  v.ndims_ = 1;
  v.extents_ = {p, 1, 1};
  v.strides_ = {1, 0, 0};
  return v;
}

ProcView ProcView::grid2(int px, int py, int base) {
  KALI_CHECK(px >= 1 && py >= 1 && base >= 0, "grid2: bad shape");
  ProcView v;
  v.base_ = base;
  v.ndims_ = 2;
  v.extents_ = {px, py, 1};
  v.strides_ = {py, 1, 0};
  return v;
}

ProcView ProcView::grid3(int px, int py, int pz, int base) {
  KALI_CHECK(px >= 1 && py >= 1 && pz >= 1 && base >= 0, "grid3: bad shape");
  ProcView v;
  v.base_ = base;
  v.ndims_ = 3;
  v.extents_ = {px, py, pz};
  v.strides_ = {py * pz, pz, 1};
  return v;
}

int ProcView::extent(int d) const {
  KALI_CHECK(d >= 0 && d < ndims_, "extent: bad dim");
  return extents_[static_cast<std::size_t>(d)];
}

int ProcView::count() const {
  if (ndims_ == 0) {
    return 0;
  }
  int n = 1;
  for (int d = 0; d < ndims_; ++d) {
    n *= extents_[static_cast<std::size_t>(d)];
  }
  return n;
}

int ProcView::rank_of(std::array<int, kMaxProcDims> coord) const {
  KALI_CHECK(ndims_ >= 1, "rank_of on empty view");
  int r = base_;
  for (int d = 0; d < ndims_; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    KALI_CHECK(coord[ud] >= 0 && coord[ud] < extents_[ud],
               "rank_of: coordinate out of range");
    r += coord[ud] * strides_[ud];
  }
  return r;
}

std::optional<std::array<int, kMaxProcDims>> ProcView::coord_of(int rank) const {
  if (ndims_ == 0) {
    return std::nullopt;
  }
  // Strides are positive and descending in row-major construction, but
  // slices can reorder them; solve greedily over dims sorted by stride.
  std::array<int, kMaxProcDims> order{};
  for (int d = 0; d < ndims_; ++d) {
    order[static_cast<std::size_t>(d)] = d;
  }
  for (int a = 0; a < ndims_; ++a) {  // insertion sort by descending stride
    for (int b = a + 1; b < ndims_; ++b) {
      if (strides_[static_cast<std::size_t>(order[static_cast<std::size_t>(b)])] >
          strides_[static_cast<std::size_t>(order[static_cast<std::size_t>(a)])]) {
        std::swap(order[static_cast<std::size_t>(a)], order[static_cast<std::size_t>(b)]);
      }
    }
  }
  int rem = rank - base_;
  std::array<int, kMaxProcDims> coord{};
  for (int idx = 0; idx < ndims_; ++idx) {
    const int d = order[static_cast<std::size_t>(idx)];
    const auto ud = static_cast<std::size_t>(d);
    const int stride = strides_[ud];
    KALI_CHECK(stride > 0, "coord_of: degenerate stride");
    const int c = rem / stride;
    if (c < 0 || c >= extents_[ud]) {
      return std::nullopt;
    }
    coord[ud] = c;
    rem -= c * stride;
  }
  if (rem != 0) {
    return std::nullopt;
  }
  return coord;
}

ProcView ProcView::fix(int dim, int index) const {
  KALI_CHECK(dim >= 0 && dim < ndims_, "fix: bad dim");
  const auto ud = static_cast<std::size_t>(dim);
  KALI_CHECK(index >= 0 && index < extents_[ud], "fix: index out of range");
  if (ndims_ == 1) {
    // Fixing the last grid dimension selects a single processor; represent
    // it as a 1-D view of one rank so membership and groups stay valid.
    return grid1(1, base_ + index * strides_[0]);
  }
  ProcView v;
  v.base_ = base_ + index * strides_[ud];
  v.ndims_ = ndims_ - 1;
  int out = 0;
  for (int d = 0; d < ndims_; ++d) {
    if (d == dim) {
      continue;
    }
    v.extents_[static_cast<std::size_t>(out)] = extents_[static_cast<std::size_t>(d)];
    v.strides_[static_cast<std::size_t>(out)] = strides_[static_cast<std::size_t>(d)];
    ++out;
  }
  for (int d = v.ndims_; d < kMaxProcDims; ++d) {
    v.extents_[static_cast<std::size_t>(d)] = 1;
    v.strides_[static_cast<std::size_t>(d)] = 0;
  }
  return v;
}

ProcView ProcView::sub(int dim, int lo, int len) const {
  KALI_CHECK(dim >= 0 && dim < ndims_, "sub: bad dim");
  const auto ud = static_cast<std::size_t>(dim);
  KALI_CHECK(lo >= 0 && len >= 1 && lo + len <= extents_[ud],
             "sub: range out of bounds");
  ProcView v = *this;
  v.base_ = base_ + lo * strides_[ud];
  v.extents_[ud] = len;
  return v;
}

std::vector<int> ProcView::ranks() const {
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(count()));
  const int n0 = ndims_ >= 1 ? extents_[0] : 0;
  const int n1 = ndims_ >= 2 ? extents_[1] : 1;
  const int n2 = ndims_ >= 3 ? extents_[2] : 1;
  for (int i = 0; i < n0; ++i) {
    for (int j = 0; j < n1; ++j) {
      for (int k = 0; k < n2; ++k) {
        out.push_back(base_ + i * strides_[0] + j * strides_[1] + k * strides_[2]);
      }
    }
  }
  return out;
}

int ProcView::linear_index_of(int rank) const {
  auto c = coord_of(rank);
  KALI_CHECK(c.has_value(), "linear_index_of: rank not in view");
  int idx = 0;
  for (int d = 0; d < ndims_; ++d) {
    idx = idx * extents_[static_cast<std::size_t>(d)] + (*c)[static_cast<std::size_t>(d)];
  }
  return idx;
}

Group ProcView::group(int self_rank) const { return Group(ranks(), self_rank); }

bool operator==(const ProcView& a, const ProcView& b) {
  if (a.ndims_ != b.ndims_ || a.base_ != b.base_) {
    return false;
  }
  for (int d = 0; d < a.ndims_; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (a.extents_[ud] != b.extents_[ud] || a.strides_[ud] != b.strides_[ud]) {
      return false;
    }
  }
  return true;
}

}  // namespace kali

// The paper's `doall ... on owner(...)` parallel loops.
//
// A doall is SPMD: every processor of the current view calls it; each
// executes exactly the invocations its on-clause assigns to it
// ("strip-mining", refs [12, 13] of the paper).  The on-clause forms match
// the listings:
//
//   doall(A, r, body)                   doall i = r  on owner(A(i))
//   doall2(A, ri, rj, body)             doall (i,j)  on owner(A(i,j))
//   doall3(A, ...)                      3-D elementwise owner
//   doall_slice_owner(A, d, r, body)    doall i = r  on owner(A(.., i, ..))
//                                       — the *set* of processors owning the
//                                       slice with dim d fixed at i, e.g.
//                                       `on owner(r(i, *))` in Listing 7
//   doall_procs(pv, body)               doall ip = 1, p  on procs(ip)
//
// Ranges are Fortran-flavoured: inclusive bounds with a stride, so the
// zebra loops `doall k = 2, nz-2, 2` translate directly.
//
// The optional `flops_per_iter` charges modeled computation for the loop
// body (the KF1 compiler knows the statement cost; here the caller states
// it).  Communication for right-hand-side reads is made explicit by the
// caller via DistArray::copy_in()/exchange_halo() — the code the compiler
// would generate for copy-in/copy-out semantics.
#pragma once

#include <vector>

#include "runtime/dist_array.hpp"

namespace kali {

/// Inclusive Fortran-style loop range with stride.
struct Range {
  int lo = 0;
  int hi = -1;  ///< inclusive; hi < lo is an empty range
  int step = 1;

  /// The single stride-validation point: contains() and the doall
  /// strip-miners (owned_in_range) all funnel through here, so a
  /// non-positive step fails loudly everywhere instead of silently
  /// selecting nothing in one place and throwing in another.
  void require_valid() const {
    KALI_CHECK(step >= 1, "Range: step must be >= 1");
  }

  [[nodiscard]] bool contains(int i) const {
    require_valid();
    return i >= lo && i <= hi && (i - lo) % step == 0;
  }
};

namespace detail {

/// Global indices of `r` that processor-coordinate-c owns along map `m`,
/// ascending.  Block distributions intersect analytically; others filter.
inline std::vector<int> owned_in_range(const DimMap& m, int c, Range r) {
  r.require_valid();
  std::vector<int> out;
  if (r.hi < r.lo) {
    return out;
  }
  if (m.kind() == DistKind::kStar) {
    for (int i = r.lo; i <= r.hi; i += r.step) {
      out.push_back(i);
    }
    return out;
  }
  if (m.kind() == DistKind::kBlock) {
    if (m.count(c) == 0) {
      return out;
    }
    const int blo = m.block_lower(c);
    const int bhi = m.block_upper(c);
    int first = r.lo;
    if (blo > first) {
      first += ((blo - first) + r.step - 1) / r.step * r.step;
    }
    const int last = std::min(r.hi, bhi);
    for (int i = first; i <= last; i += r.step) {
      out.push_back(i);
    }
    return out;
  }
  for (int i = r.lo; i <= r.hi; i += r.step) {
    if (m.owner(i) == c) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace detail

/// doall i = r on owner(A(i)).
template <class T, class Body>
void doall(const DistArray1<T>& A, Range r, Body body,
           double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is = detail::owned_in_range(A.map(0), A.my_coord(0), r);
  for (int i : is) {
    body(i);
  }
  A.context().compute(flops_per_iter * static_cast<double>(is.size()));
}

/// doall (i, j) = ri * rj on owner(A(i, j)).
template <class T, class Body>
void doall2(const DistArray2<T>& A, Range ri, Range rj, Body body,
            double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is = detail::owned_in_range(A.map(0), A.my_coord(0), ri);
  const auto js = detail::owned_in_range(A.map(1), A.my_coord(1), rj);
  for (int i : is) {
    for (int j : js) {
      body(i, j);
    }
  }
  A.context().compute(flops_per_iter * static_cast<double>(is.size()) *
                      static_cast<double>(js.size()));
}

/// doall (i, j, k) on owner(A(i, j, k)).
template <class T, class Body>
void doall3(const DistArray3<T>& A, Range ri, Range rj, Range rk, Body body,
            double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is = detail::owned_in_range(A.map(0), A.my_coord(0), ri);
  const auto js = detail::owned_in_range(A.map(1), A.my_coord(1), rj);
  const auto ks = detail::owned_in_range(A.map(2), A.my_coord(2), rk);
  for (int i : is) {
    for (int j : js) {
      for (int k : ks) {
        body(i, j, k);
      }
    }
  }
  A.context().compute(flops_per_iter * static_cast<double>(is.size()) *
                      static_cast<double>(js.size()) *
                      static_cast<double>(ks.size()));
}

// --- split-phase ring partition ----------------------------------------
//
// Companions to DistArray::exchange_halo_begin(): each doall*_ring call
// visits exactly the subset of the blocking doall's iteration space named
// by `part`, and the two parts form an exact partition — running kInterior
// then kBoundary applies the identical body to the identical index set as
// the blocking loop, so any computation with one write per index produces
// bit-identical data regardless of the split.  Only the compute *charge*
// is split in two (which can move clocks by an ulp, never values).
//
// The canonical overlap shape:
//
//   auto ex = A.exchange_halo_begin();
//   doall2_ring(A, ri, rj, margin, Ring::kInterior, body, flops);  // no ghosts
//   ex.finish();
//   doall2_ring(A, ri, rj, margin, Ring::kBoundary, body, flops);  // ghosts ok
//
// `margin` is the body's stencil reach: an interior index keeps at least
// `margin` owned cells between itself and every slab face that carries a
// halo, so the body cannot touch the ghost cells still in flight.

/// Which part of the ring partition a doall*_ring call visits.
enum class Ring {
  kInterior,  ///< ≥ margin from every halo-bearing slab face; ghost-free
  kBoundary,  ///< the rest of the owned set; run after HaloExchange::finish
};

namespace detail {

/// True when global index `i` sits at least `margin` cells inside this
/// rank's owned slab along dim `d`.  Dims with no halo (or not distributed)
/// impose no restriction — they have no in-flight ghosts to avoid.
template <class T, int R>
bool ring_interior(const DistArray<T, R>& A, int d, int i, int margin) {
  if (A.halo(d) == 0 || A.map(d).kind() == DistKind::kStar) {
    return true;
  }
  return i - A.own_lower(d) >= margin && A.own_upper(d) - i >= margin;
}

}  // namespace detail

/// doall2 restricted to one part of the ring partition (see above).
template <class T, class Body>
void doall2_ring(const DistArray2<T>& A, Range ri, Range rj, int margin,
                 Ring part, Body body, double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is = detail::owned_in_range(A.map(0), A.my_coord(0), ri);
  const auto js = detail::owned_in_range(A.map(1), A.my_coord(1), rj);
  double n = 0.0;
  for (int i : is) {
    const bool ii = detail::ring_interior(A, 0, i, margin);
    for (int j : js) {
      const bool interior = ii && detail::ring_interior(A, 1, j, margin);
      if ((part == Ring::kInterior) == interior) {
        body(i, j);
        n += 1.0;
      }
    }
  }
  A.context().compute(flops_per_iter * n);
}

/// doall3 restricted to one part of the ring partition.
template <class T, class Body>
void doall3_ring(const DistArray3<T>& A, Range ri, Range rj, Range rk,
                 int margin, Ring part, Body body,
                 double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is = detail::owned_in_range(A.map(0), A.my_coord(0), ri);
  const auto js = detail::owned_in_range(A.map(1), A.my_coord(1), rj);
  const auto ks = detail::owned_in_range(A.map(2), A.my_coord(2), rk);
  double n = 0.0;
  for (int i : is) {
    const bool ii = detail::ring_interior(A, 0, i, margin);
    for (int j : js) {
      const bool ij = ii && detail::ring_interior(A, 1, j, margin);
      for (int k : ks) {
        const bool interior = ij && detail::ring_interior(A, 2, k, margin);
        if ((part == Ring::kInterior) == interior) {
          body(i, j, k);
          n += 1.0;
        }
      }
    }
  }
  A.context().compute(flops_per_iter * n);
}

/// doall_slice_owner restricted to one part of the ring partition along
/// `fixed_dim` only: a slice is interior when its index keeps `margin`
/// owned slices on both sides.  The caller guarantees the body reads
/// ghosts only along fixed_dim (the zebra-sweep pattern — lines within one
/// parity are independent, so visiting interior lines first is exact).
template <class T, int R, class Body>
void doall_slice_ring(const DistArray<T, R>& A, int fixed_dim, Range r,
                      int margin, Ring part, Body body,
                      double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is =
      detail::owned_in_range(A.map(fixed_dim), A.my_coord(fixed_dim), r);
  double n = 0.0;
  for (int i : is) {
    const bool interior = detail::ring_interior(A, fixed_dim, i, margin);
    if ((part == Ring::kInterior) == interior) {
      body(i);
      n += 1.0;
    }
  }
  A.context().compute(flops_per_iter * n);
}

/// doall i = r on owner(A(..., i, ...)) where dim `fixed_dim` is fixed at i
/// and every other index is `*`: the on-set is the whole processor slice
/// owning that hyperplane (Listing 7's `on owner(r(i, *))`).  The body
/// typically fixes/localizes A at i and calls a parallel kernel on the
/// resulting sub-view.
template <class T, int R, class Body>
void doall_slice_owner(const DistArray<T, R>& A, int fixed_dim, Range r,
                       Body body, double flops_per_iter = 0.0) {
  if (!A.participating()) {
    return;
  }
  const auto is =
      detail::owned_in_range(A.map(fixed_dim), A.my_coord(fixed_dim), r);
  for (int i : is) {
    body(i);
  }
  A.context().compute(flops_per_iter * static_cast<double>(is.size()));
}

/// doall ip = 1, p on procs(ip): every member of `pv` runs body once with
/// its own row-major linear index (0-based here).
template <class Body>
void doall_procs(Context& ctx, const ProcView& pv, Body body) {
  if (!pv.contains(ctx.rank())) {
    return;
  }
  body(pv.linear_index_of(ctx.rank()));
}

/// Parallel reduction over owned elements selected by a range product:
/// every member gets the reduced value (replicated scalar semantics).
template <class T, class Fn>
double doall2_sum(const DistArray2<T>& A, Range ri, Range rj, Fn per_element) {
  double local = 0.0;
  doall2(A, ri, rj, [&](int i, int j) { local += per_element(i, j); }, 1.0);
  if (!A.participating()) {
    return 0.0;
  }
  Group g = A.group();
  return allreduce_sum(A.context(), g, local);
}

}  // namespace kali

// Strided copies between arrays of different extents/distributions along
// one dimension — the communication core of multigrid restriction and
// interpolation under semi-coarsening (paper §5), where coarse-grid
// ownership does not generally align with fine-grid ownership.
//
//   copy_strided_dim(ctx, src, dst, dim, s_stride, s_off, d_stride, d_off, n)
//     performs, along `dim`:  dst[d_stride*t + d_off] = src[s_stride*t + s_off]
//     for t = 0..n-1, identity on all other dimensions.
//
// Restriction injects  dst_coarse[K] = src_fine[2K]   (s_stride=2, d_stride=1);
// interpolation spreads dst_fine[2K] = src_coarse[K]  (s_stride=1, d_stride=2).
//
// Like redistribute(), every source owner bins values by destination owner;
// this handles arbitrary block misalignment between grid levels.
#pragma once

#include "runtime/io.hpp"
#include "runtime/redistribute.hpp"

namespace kali {

inline constexpr int kTagRemap = (1 << 21) + 2;

template <class T, int R>
void copy_strided_dim(Context& ctx, const DistArray<T, R>& src,
                      DistArray<T, R>& dst, int dim, int s_stride, int s_off,
                      int d_stride, int d_off, int count) {
  const auto ud = static_cast<std::size_t>(dim);
  for (int d = 0; d < R; ++d) {
    if (d != dim) {
      KALI_CHECK(src.extent(d) == dst.extent(d),
                 "copy_strided_dim: extent mismatch off-dim");
    }
  }
  KALI_CHECK(count >= 0, "copy_strided_dim: bad count");
  KALI_CHECK(count == 0 || (s_off + (count - 1) * s_stride < src.extent(dim) &&
                            d_off + (count - 1) * d_stride < dst.extent(dim)),
             "copy_strided_dim: range out of bounds");

  struct Packet {
    std::int64_t idx;  // destination linear index
    T val;
  };
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }

  std::vector<int> dst_ranks = dst.view().ranks();
  if (in_src) {
    std::vector<std::vector<Packet>> outgoing(dst_ranks.size());
    src.for_each_owned([&](GIndex<R> g) {
      const int rel = g[ud] - s_off;
      if (rel < 0 || rel % s_stride != 0 || rel / s_stride >= count) {
        return;
      }
      GIndex<R> gd = g;
      gd[ud] = d_off + (rel / s_stride) * d_stride;
      const T v = src.at(g);
      for (std::size_t pi = 0; pi < dst_ranks.size(); ++pi) {
        const auto coord = dst.view().coord_of(dst_ranks[pi]);
        bool owns = true;
        for (int d = 0; d < R && owns; ++d) {
          const int pd = dst.proc_dim(d);
          if (pd >= 0 && dst.map(d).owner(gd[static_cast<std::size_t>(d)]) !=
                             (*coord)[static_cast<std::size_t>(pd)]) {
            owns = false;
          }
        }
        if (owns) {
          outgoing[pi].push_back({linearize(dst, gd), v});
        }
      }
    });
    std::size_t moved = 0;
    for (std::size_t pi = 0; pi < dst_ranks.size(); ++pi) {
      ctx.send_span<Packet>(dst_ranks[pi], kTagRemap,
                            std::span<const Packet>(outgoing[pi]));
      moved += outgoing[pi].size();
    }
    ctx.compute(static_cast<double>(moved));
  }
  if (in_dst) {
    GIndex<R> ext{};
    for (int d = 0; d < R; ++d) {
      ext[static_cast<std::size_t>(d)] = dst.extent(d);
    }
    for (int srank : src.view().ranks()) {
      auto pkts = ctx.recv_vec<Packet>(srank, kTagRemap);
      for (const auto& pkt : pkts) {
        dst.at(detail::delinearize<R>(pkt.idx, ext)) = pkt.val;
      }
      ctx.compute(static_cast<double>(pkts.size()));
    }
  }
}

}  // namespace kali

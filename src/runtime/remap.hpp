// Strided copies between arrays of different extents/distributions along
// one dimension — the communication core of multigrid restriction and
// interpolation under semi-coarsening (paper §5), where coarse-grid
// ownership does not generally align with fine-grid ownership.
//
//   copy_strided_dim(ctx, src, dst, dim, s_stride, s_off, d_stride, d_off, n)
//     performs, along `dim`:  dst[d_stride*t + d_off] = src[s_stride*t + s_off]
//     for t = 0..n-1, identity on all other dimensions.
//
// Restriction injects  dst_coarse[K] = src_fine[2K]   (s_stride=2, d_stride=1);
// interpolation spreads dst_fine[2K] = src_coarse[K]  (s_stride=1, d_stride=2).
//
// Like redistribute(), the protocol is analytic: messages travel only
// between rank pairs that actually share elements — no counts on the wire,
// no empty-message flood, no all-pairs ownership scan.  Payloads are raw
// values: both sides enumerate their shared elements in row-major order
// (the strided dim mapping is monotone, so source order and destination
// order agree), so no per-element index metadata is needed.  A rank's
// overlap with itself is copied locally, never sent
// (MachineStats::self_msgs(kTagRemap) stays zero), and remote messages are
// issued through the round-structured schedules of machine/schedule.hpp.
//
// Two paths implement the protocol:
//
//  * Box fast path (all dims of both arrays block or star): the transfer
//    set is parameterized by t — along `dim` each rank's owned block maps
//    to a contiguous t-interval, and off-dims intersect as axis-aligned
//    boxes — so peers are enumerated in O(peers) from per-dim owner ranges
//    and payloads are contiguous slabs, with no per-element owner lookups.
//
//  * Per-element owner binning (any cyclic/block-cyclic dim): each side
//    walks its own elements once, computing the unique opposite owner in
//    O(R) per element.  Exposed as copy_strided_dim_binned(): the fallback
//    for cyclic layouts and the differential-test oracle for the box path.
#pragma once

#include <utility>
#include <vector>

#include "machine/message.hpp"  // kTagRemap (reserved-tag registry)
#include "runtime/redistribute.hpp"

namespace kali {

namespace detail {

/// Floor/ceil division for positive divisors and any-sign dividends.
inline int floor_div(int a, int b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
inline int ceil_div(int a, int b) {
  return a >= 0 ? (a + b - 1) / b : -((-a) / b);
}

/// Inclusive interval of transfer steps t; hi < lo means empty.
struct TRange {
  int lo = 0;
  int hi = -1;

  [[nodiscard]] bool empty() const { return hi < lo; }
};

/// Steps t with off + t * stride inside the global range [glo, ghi],
/// clipped to [0, tmax].
inline TRange strided_steps(int glo, int ghi, int off, int stride, int tmax) {
  TRange r;
  r.lo = std::max(0, ceil_div(glo - off, stride));
  r.hi = std::min(tmax, floor_div(ghi - off, stride));
  return r;
}

/// Shared peer-enumeration walker behind for_each_strided_peer and its
/// halo-expanded variant.  Visits every rank of box-eligible `A` whose
/// receive set intersects the transfer set (`within`'s ranges on off-dims,
/// steps `tr` through off + t * stride along `dim`), passing the rank, the
/// off-dim overlap box, and the step subrange.  O(peers), like
/// for_each_intersecting_peer; ranks whose block skips every strided step
/// (stride larger than the block) are filtered out, identically on both
/// endpoints.  With `expand_halo`, each rank's receive set is its owned
/// block expanded by A's halo margins and clipped to the global domain
/// (one extra owner coordinate per side covers the expansion — the caller
/// guarantees no halo is wider than a block); without it, exactly the
/// owned blocks.
template <class T, int R, class Fn>
void strided_peer_walk(const DistArray<T, R>& A, const Box<R>& within,
                       int dim, TRange tr, int off, int stride,
                       bool expand_halo, Fn fn) {
  const int nd = A.view().ndims();
  std::array<int, kMaxProcDims> adim{};  // grid dim -> bound array dim
  for (int d = 0; d < R; ++d) {
    if (A.proc_dim(d) >= 0) {
      adim[static_cast<std::size_t>(A.proc_dim(d))] = d;
    }
  }
  std::array<int, kMaxProcDims> clo{};
  std::array<int, kMaxProcDims> chi{};
  for (int pd = 0; pd < nd; ++pd) {
    const auto upd = static_cast<std::size_t>(pd);
    const int d = adim[upd];
    if (d == dim) {
      clo[upd] = A.map(d).owner(off + tr.lo * stride);
      chi[upd] = A.map(d).owner(off + tr.hi * stride);
    } else {
      const auto ud = static_cast<std::size_t>(d);
      clo[upd] = A.map(d).owner(within.lo[ud]);
      chi[upd] = A.map(d).owner(within.hi[ud]);
    }
    if (expand_halo && A.halo(d) > 0) {  // expansion reaches one owner more
      clo[upd] = std::max(0, clo[upd] - 1);
      chi[upd] = std::min(A.view().extent(pd) - 1, chi[upd] + 1);
    }
  }
  std::array<int, kMaxProcDims> c = clo;
  for (;;) {
    Box<R> b = within;  // star dims of A: peer holds the whole extent
    TRange t = tr;
    bool nonempty = true;
    for (int pd = 0; pd < nd && nonempty; ++pd) {
      const auto upd = static_cast<std::size_t>(pd);
      const int d = adim[upd];
      const int h = expand_halo ? A.halo(d) : 0;
      const int blo = std::max(0, A.map(d).block_lower(c[upd]) - h);
      const int bhi =
          std::min(A.extent(d) - 1, A.map(d).block_upper(c[upd]) + h);
      if (d == dim) {
        t.lo = std::max(t.lo, ceil_div(blo - off, stride));
        t.hi = std::min(t.hi, floor_div(bhi - off, stride));
        nonempty = !t.empty();
      } else {
        const auto ud = static_cast<std::size_t>(d);
        b.lo[ud] = std::max(within.lo[ud], blo);
        b.hi[ud] = std::min(within.hi[ud], bhi);
        nonempty = b.lo[ud] <= b.hi[ud];
      }
    }
    if (nonempty) {
      fn(A.view().rank_of(c), b, t);
    }
    int pd = nd - 1;
    for (; pd >= 0; --pd) {
      const auto upd = static_cast<std::size_t>(pd);
      if (++c[upd] <= chi[upd]) {
        break;
      }
      c[upd] = clo[upd];
    }
    if (pd < 0) {
      return;
    }
  }
}

/// Peer enumeration against each rank's owned blocks (the plain
/// copy_strided_dim paths — an existing halo on A is storage margin, not
/// part of the transfer).
template <class T, int R, class Fn>
void for_each_strided_peer(const DistArray<T, R>& A, const Box<R>& within,
                           int dim, TRange tr, int off, int stride, Fn fn) {
  strided_peer_walk(A, within, dim, tr, off, stride, /*expand_halo=*/false,
                    fn);
}

/// Visit the slab (off-dim box `b`, steps [t.lo, t.hi]) in row-major order
/// — the agreed wire order — passing global indices with dimension `dim`
/// mapped through off + t * stride.
template <int R, class Fn>
void for_each_strided_in_box(const Box<R>& b, TRange t, int dim, int off,
                             int stride, Fn fn) {
  const auto ud = static_cast<std::size_t>(dim);
  Box<R> e = b;
  e.lo[ud] = t.lo;
  e.hi[ud] = t.hi;
  if (e.empty()) {
    return;
  }
  for_each_in_box(e, [&](GIndex<R> g) {
    g[ud] = off + g[ud] * stride;
    fn(g);
  });
}

/// Peer enumeration against each rank's owned block *expanded by A's halo
/// margins* (clipped to the global domain) — the halo-fused remap, where a
/// receiver's ghost cells arrive in the same messages as its owned cells.
/// Requires every block of a halo dim to be at least as wide as the halo
/// (checked by the caller).
template <class T, int R, class Fn>
void for_each_strided_peer_halo(const DistArray<T, R>& A, const Box<R>& within,
                                int dim, TRange tr, int off, int stride,
                                Fn fn) {
  strided_peer_walk(A, within, dim, tr, off, stride, /*expand_halo=*/true,
                    fn);
}

/// Shared argument validation for both copy_strided_dim implementations.
template <class T, int R>
void check_strided_args(const DistArray<T, R>& src, const DistArray<T, R>& dst,
                        int dim, int s_stride, int s_off, int d_stride,
                        int d_off, int count) {
  for (int d = 0; d < R; ++d) {
    if (d != dim) {
      KALI_CHECK(src.extent(d) == dst.extent(d),
                 "copy_strided_dim: extent mismatch off-dim");
    }
  }
  KALI_CHECK(s_stride >= 1 && d_stride >= 1,
             "copy_strided_dim: strides must be positive");
  KALI_CHECK(count >= 0, "copy_strided_dim: bad count");
  KALI_CHECK(count == 0 || (s_off + (count - 1) * s_stride < src.extent(dim) &&
                            d_off + (count - 1) * d_stride < dst.extent(dim)),
             "copy_strided_dim: range out of bounds");
  KALI_CHECK(count == 0 || (s_off >= 0 && d_off >= 0),
             "copy_strided_dim: negative offset");
}

/// Shared machinery of copy_strided_dim_begin / copy_strided_dim_halo_begin
/// (the Overlap::kOn split-phase forms): post every receive nonblocking in
/// round order, fire the identical sends the blocking path fires in the
/// same round order, charge the pack compute, copy the self-overlap inside
/// the wire window, and hand back a PendingExchange whose finish() waits
/// and unpacks.  `fuse_halo` selects the halo-expanded receive boxes and
/// frame() writes of the fused variant.
template <class T, int R>
[[nodiscard]] PendingExchange strided_copy_begin(
    Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst, int dim,
    int s_stride, int s_off, int d_stride, int d_off, int count,
    IssueOrder order, bool fuse_halo) {
  const auto ud = static_cast<std::size_t>(dim);
  check_strided_args(src, dst, dim, s_stride, s_off, d_stride, d_off, count);
  KALI_CHECK(box_eligible(src) && box_eligible(dst),
             "copy_strided_dim_begin: requires block/star layouts");
  if (fuse_halo) {
    for (int d = 0; d < R; ++d) {
      const int h = dst.halo(d);
      if (h > 0) {
        const int np = dst.view().extent(dst.proc_dim(d));
        for (int c = 0; c < np; ++c) {
          KALI_CHECK(dst.map(d).count(c) >= h,
                     "copy_strided_dim_halo: halo wider than a block");
        }
      }
    }
  }
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (count == 0 || (!in_src && !in_dst)) {
    return {};
  }
  const std::vector<int> members =
      union_members(src.view().ranks(), dst.view().ranks());

  struct Slab {
    Box<R> b;  ///< off-dim overlap (dim slot unused)
    TRange t;  ///< transfer steps shared with the peer
  };
  std::vector<std::pair<int, Slab>> out;
  std::vector<std::pair<int, Slab>> in;
  std::vector<Slab> self;  // self-overlap, copied inside the wire window
  if (in_src) {
    const Box<R> mine = owned_box(src);
    const TRange tm =
        strided_steps(mine.lo[ud], mine.hi[ud], s_off, s_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      strided_peer_walk(dst, mine, dim, tm, d_off, d_stride, fuse_halo,
                        [&](int rank, const Box<R>& b, TRange t) {
                          if (rank != ctx.rank()) {
                            out.emplace_back(rank, Slab{b, t});
                          }
                        });
    }
  }
  if (in_dst) {
    Box<R> mine = owned_box(dst);
    if (fuse_halo) {
      // Receive region: owned box expanded by the halo margins, clipped to
      // the domain (exactly copy_strided_dim_halo's expanded_box).
      for (int d = 0; d < R; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        mine.lo[sd] = std::max(0, mine.lo[sd] - dst.halo(d));
        mine.hi[sd] = std::min(dst.extent(d) - 1, mine.hi[sd] + dst.halo(d));
      }
    }
    const TRange tm =
        strided_steps(mine.lo[ud], mine.hi[ud], d_off, d_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      strided_peer_walk(src, mine, dim, tm, s_off, s_stride,
                        /*expand_halo=*/false,
                        [&](int rank, const Box<R>& b, TRange t) {
                          if (rank == ctx.rank()) {
                            self.push_back(Slab{b, t});
                          } else {
                            in.emplace_back(rank, Slab{b, t});
                          }
                        });
    }
  }

  // Post every receive before the first send (round order, zero model
  // cost): the whole wire window is eligible for hiding.
  round_sort(in, members, ctx.rank(), order);
  auto stage = std::make_shared<std::vector<std::vector<T>>>(in.size());
  auto hs = std::make_shared<std::vector<CommHandle>>();
  hs->reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    Box<R> e = in[i].second.b;
    e.lo[ud] = in[i].second.t.lo;
    e.hi[ud] = in[i].second.t.hi;
    (*stage)[i].resize(static_cast<std::size_t>(e.volume()));
    hs->push_back(
        ctx.irecv_into<T>(in[i].first, kTagRemap, std::span<T>((*stage)[i])));
  }

  round_sort(out, members, ctx.rank(), order);
  std::vector<T> buf;
  double packed = 0;
  for (auto& [rank, slab] : out) {
    buf.clear();
    for_each_strided_in_box(slab.b, slab.t, dim, s_off, s_stride,
                            [&](GIndex<R> g) { buf.push_back(src.at(g)); });
    // kali-lint: allow(raw-exchange) — split-phase form: receives are already
    // posted as irecvs above, so there is no recv_one closure to pair with.
    ctx.send_span<T>(rank, kTagRemap, std::span<const T>(buf));
    packed += static_cast<double>(buf.size());
  }
  ctx.compute(packed);

  // Self-overlap copies, charged inside the wire window (the blocking path
  // charges the identical element count with the unpack at the end).
  double copied = 0;
  for (const Slab& slab : self) {
    for_each_strided_in_box(slab.b, slab.t, dim, 0, 1, [&](GIndex<R> g) {
      GIndex<R> gs = g;
      GIndex<R> gd = g;
      gs[ud] = s_off + g[ud] * s_stride;
      gd[ud] = d_off + g[ud] * d_stride;
      if (fuse_halo) {
        dst.frame(gd) = src.at(gs);
      } else {
        dst.at(gd) = src.at(gs);
      }
      copied += 1.0;
    });
  }
  ctx.compute(copied);

  auto slabs =
      std::make_shared<std::vector<std::pair<int, Slab>>>(std::move(in));
  return PendingExchange([&ctx, &dst, stage, hs, slabs, dim, ud, d_off,
                          d_stride, fuse_halo] {
    ctx.wait_all(std::span<CommHandle>(*hs));
    double unpacked = 0;
    for (std::size_t i = 0; i < slabs->size(); ++i) {
      const Slab& slab = (*slabs)[i].second;
      const std::vector<T>& vals = (*stage)[i];
      Box<R> e = slab.b;  // payload size check before unpacking
      e.lo[ud] = slab.t.lo;
      e.hi[ud] = slab.t.hi;
      KALI_CHECK(vals.size() == static_cast<std::size_t>(e.volume()),
                 "copy_strided_dim: slab size mismatch");
      std::size_t k = 0;
      for_each_strided_in_box(slab.b, slab.t, dim, d_off, d_stride,
                              [&](GIndex<R> g) {
                                if (fuse_halo) {
                                  dst.frame(g) = vals[k++];
                                } else {
                                  dst.at(g) = vals[k++];
                                }
                              });
      unpacked += static_cast<double>(k);
    }
    ctx.compute(unpacked);
  });
}

}  // namespace detail

/// Split-phase copy_strided_dim (box layouts only): sends fired, receives
/// posted, pack and self-overlap already charged inside the wire window;
/// run the work to hide, then finish().  See PendingExchange.
template <class T, int R>
[[nodiscard]] PendingExchange copy_strided_dim_begin(
    Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst, int dim,
    int s_stride, int s_off, int d_stride, int d_off, int count,
    IssueOrder order = IssueOrder::kRoundSchedule) {
  return detail::strided_copy_begin(ctx, src, dst, dim, s_stride, s_off,
                                    d_stride, d_off, count, order,
                                    /*fuse_halo=*/false);
}

/// Split-phase copy_strided_dim_halo: the fused remap+halo transfer with
/// its wait point exposed — mg2/mg3 post both level-switch remaps with
/// this and drain them together after the interleaved smoothing work.
template <class T, int R>
[[nodiscard]] PendingExchange copy_strided_dim_halo_begin(
    Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst, int dim,
    int s_stride, int s_off, int d_stride, int d_off, int count,
    IssueOrder order = IssueOrder::kRoundSchedule) {
  return detail::strided_copy_begin(ctx, src, dst, dim, s_stride, s_off,
                                    d_stride, d_off, count, order,
                                    /*fuse_halo=*/true);
}

/// The owner-binning implementation of copy_strided_dim: each side walks
/// its own elements once, computing the unique opposite owner per element.
/// Handles every distribution kind; used directly by copy_strided_dim for
/// cyclic/block-cyclic layouts and kept callable as the differential-test
/// oracle for the box fast path.
template <class T, int R>
void copy_strided_dim_binned(Context& ctx, const DistArray<T, R>& src,
                             DistArray<T, R>& dst, int dim, int s_stride,
                             int s_off, int d_stride, int d_off, int count,
                             IssueOrder order = IssueOrder::kRoundSchedule) {
  detail::check_strided_args(src, dst, dim, s_stride, s_off, d_stride, d_off,
                             count);
  const auto ud = static_cast<std::size_t>(dim);
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if ((!in_src && !in_dst) || count == 0) {
    return;
  }
  const std::vector<int> members =
      detail::union_members(src.view().ranks(), dst.view().ranks());

  std::vector<std::pair<int, std::vector<T>>> out;
  std::vector<std::pair<int, std::vector<GIndex<R>>>> in;
  double unpacked = 0;
  if (in_src) {
    const std::vector<int> dst_ranks = dst.view().ranks();
    const std::size_t self_di =
        in_dst ? static_cast<std::size_t>(dst.view().linear_index_of(ctx.rank()))
               : dst_ranks.size();  // sentinel: matches no bin
    std::vector<std::vector<T>> bins(dst_ranks.size());
    src.for_each_owned([&](GIndex<R> g) {
      const int rel = g[ud] - s_off;
      if (rel < 0 || rel % s_stride != 0 || rel / s_stride >= count) {
        return;
      }
      GIndex<R> gd = g;
      gd[ud] = d_off + (rel / s_stride) * d_stride;
      const std::size_t di = detail::owner_index(dst, gd);
      if (di != self_di) {
        bins[di].push_back(src.at(g));
      }
    });
    for (std::size_t pi = 0; pi < bins.size(); ++pi) {
      if (!bins[pi].empty()) {
        out.emplace_back(dst_ranks[pi], std::move(bins[pi]));
      }
    }
  }
  if (in_dst) {
    // Expected elements per source rank, derived from my own slab in the
    // same row-major order the sender packs.
    const std::vector<int> src_ranks = src.view().ranks();
    std::vector<std::vector<GIndex<R>>> expect(src_ranks.size());
    dst.for_each_owned([&](GIndex<R> g) {
      const int rel = g[ud] - d_off;
      if (rel < 0 || rel % d_stride != 0 || rel / d_stride >= count) {
        return;
      }
      GIndex<R> gs = g;
      gs[ud] = s_off + (rel / d_stride) * s_stride;
      expect[detail::owner_index(src, gs)].push_back(g);
    });
    for (std::size_t pi = 0; pi < expect.size(); ++pi) {
      if (expect[pi].empty()) {
        continue;
      }
      if (src_ranks[pi] == ctx.rank()) {
        // Self-overlap: both owners are this rank — local copy.
        for (const GIndex<R>& g : expect[pi]) {
          GIndex<R> gs = g;
          gs[ud] = s_off + ((g[ud] - d_off) / d_stride) * s_stride;
          dst.at(g) = src.at(gs);
        }
        unpacked += static_cast<double>(expect[pi].size());
        continue;
      }
      in.emplace_back(src_ranks[pi], std::move(expect[pi]));
    }
  }
  double packed = 0;
  auto send_one = [&](int rank, const std::vector<T>& vals) {
    ctx.send_span<T>(rank, kTagRemap, std::span<const T>(vals));
    packed += static_cast<double>(vals.size());
  };
  auto recv_one = [&](int rank, const std::vector<GIndex<R>>& idxs) {
    auto vals = ctx.recv_vec<T>(rank, kTagRemap);
    KALI_CHECK(vals.size() == idxs.size(),
               "copy_strided_dim: bin size mismatch");
    for (std::size_t k = 0; k < vals.size(); ++k) {
      dst.at(idxs[k]) = vals[k];
    }
    unpacked += static_cast<double>(vals.size());
  };
  detail::issue_exchange(
      members, ctx.rank(), order, out, in, send_one, recv_one,
      [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
}

/// Overlap::kOn routes box-eligible layouts through the split-phase form
/// (copy_strided_dim_begin + finish back to back): identical messages and
/// results, pack and self-overlap hidden in the wire window.  Cyclic
/// layouts fall back to the blocking binned path either way.
template <class T, int R>
void copy_strided_dim(Context& ctx, const DistArray<T, R>& src,
                      DistArray<T, R>& dst, int dim, int s_stride, int s_off,
                      int d_stride, int d_off, int count,
                      IssueOrder order = IssueOrder::kRoundSchedule,
                      Overlap overlap = Overlap::kOff) {
  const auto ud = static_cast<std::size_t>(dim);
  detail::check_strided_args(src, dst, dim, s_stride, s_off, d_stride, d_off,
                             count);
  if (count == 0) {
    return;
  }

  if (!detail::box_eligible(src) || !detail::box_eligible(dst)) {
    copy_strided_dim_binned(ctx, src, dst, dim, s_stride, s_off, d_stride,
                            d_off, count, order);
    return;
  }
  if (overlap == Overlap::kOn) {
    copy_strided_dim_begin(ctx, src, dst, dim, s_stride, s_off, d_stride,
                           d_off, count, order)
        .finish();
    return;
  }

  // ---- box fast path: contiguous slab exchange ---------------------------
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }
  const std::vector<int> members =
      detail::union_members(src.view().ranks(), dst.view().ranks());

  struct Slab {
    detail::Box<R> b;  ///< off-dim overlap (dim slot unused)
    detail::TRange t;  ///< transfer steps shared with the peer
  };

  std::vector<std::pair<int, Slab>> out;
  std::vector<std::pair<int, Slab>> in;
  double unpacked = 0;
  if (in_src) {
    const detail::Box<R> mine = detail::owned_box(src);
    const detail::TRange tm = detail::strided_steps(
        mine.lo[ud], mine.hi[ud], s_off, s_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      detail::for_each_strided_peer(
          dst, mine, dim, tm, d_off, d_stride,
          [&](int rank, const detail::Box<R>& b, detail::TRange t) {
            if (rank != ctx.rank()) {  // self-overlap copied on recv side
              out.emplace_back(rank, Slab{b, t});
            }
          });
    }
  }
  if (in_dst) {
    const detail::Box<R> mine = detail::owned_box(dst);
    const detail::TRange tm = detail::strided_steps(
        mine.lo[ud], mine.hi[ud], d_off, d_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      detail::for_each_strided_peer(
          src, mine, dim, tm, s_off, s_stride,
          [&](int rank, const detail::Box<R>& b, detail::TRange t) {
            if (rank == ctx.rank()) {
              // Self-overlap: both owners are this rank — local copy.
              detail::for_each_strided_in_box(
                  b, t, dim, 0, 1, [&](GIndex<R> g) {
                    GIndex<R> gs = g;
                    GIndex<R> gd = g;
                    gs[ud] = s_off + g[ud] * s_stride;
                    gd[ud] = d_off + g[ud] * d_stride;
                    dst.at(gd) = src.at(gs);
                    unpacked += 1.0;
                  });
            } else {
              in.emplace_back(rank, Slab{b, t});
            }
          });
    }
  }
  std::vector<T> buf;
  double packed = 0;
  auto send_one = [&](int rank, const Slab& slab) {
    buf.clear();
    detail::for_each_strided_in_box(
        slab.b, slab.t, dim, s_off, s_stride,
        [&](GIndex<R> g) { buf.push_back(src.at(g)); });
    ctx.send_span<T>(rank, kTagRemap, std::span<const T>(buf));
    packed += static_cast<double>(buf.size());
  };
  auto recv_one = [&](int rank, const Slab& slab) {
    auto vals = ctx.recv_vec<T>(rank, kTagRemap);
    detail::Box<R> e = slab.b;  // payload size check before unpacking
    e.lo[ud] = slab.t.lo;
    e.hi[ud] = slab.t.hi;
    KALI_CHECK(vals.size() == static_cast<std::size_t>(e.volume()),
               "copy_strided_dim: slab size mismatch");
    std::size_t k = 0;
    detail::for_each_strided_in_box(
        slab.b, slab.t, dim, d_off, d_stride,
        [&](GIndex<R> g) { dst.at(g) = vals[k++]; });
    unpacked += static_cast<double>(k);
  };
  detail::issue_exchange(
      members, ctx.rank(), order, out, in, send_one, recv_one,
      [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
}

/// copy_strided_dim + dst.exchange_halo() fused into one scheduled exchange
/// — the batched multigrid level switch.  Receive boxes are dst's owned box
/// *expanded by its halo margins* (clipped to the global domain), so every
/// ghost cell whose global index lies in the strided image arrives in the
/// same messages as the owned cells: one redistribution per level switch
/// instead of a remap round followed by a halo round, roughly halving the
/// level-switch message count.
///
/// Semantics: identical to `copy_strided_dim(...); dst.exchange_halo();` on
/// a freshly constructed dst (which is how multigrid uses it — mg2/mg3's
/// interpolation temporaries).  Ghost cells *outside* the strided image are
/// left untouched, where the separate halo exchange would copy the
/// neighbour's current (for a fresh array: zero) values; out-of-domain
/// frame cells are never written.  Requires block/star layouts on both
/// arrays and halos no wider than dst's thinnest block.
template <class T, int R>
void copy_strided_dim_halo(Context& ctx, const DistArray<T, R>& src,
                           DistArray<T, R>& dst, int dim, int s_stride,
                           int s_off, int d_stride, int d_off, int count,
                           IssueOrder order = IssueOrder::kRoundSchedule,
                           Overlap overlap = Overlap::kOff) {
  if (overlap == Overlap::kOn) {
    copy_strided_dim_halo_begin(ctx, src, dst, dim, s_stride, s_off, d_stride,
                                d_off, count, order)
        .finish();
    return;
  }
  const auto ud = static_cast<std::size_t>(dim);
  detail::check_strided_args(src, dst, dim, s_stride, s_off, d_stride, d_off,
                             count);
  KALI_CHECK(detail::box_eligible(src) && detail::box_eligible(dst),
             "copy_strided_dim_halo: requires block/star layouts");
  for (int d = 0; d < R; ++d) {
    const int h = dst.halo(d);
    if (h > 0) {
      const int np = dst.view().extent(dst.proc_dim(d));
      for (int c = 0; c < np; ++c) {
        KALI_CHECK(dst.map(d).count(c) >= h,
                   "copy_strided_dim_halo: halo wider than a block");
      }
    }
  }
  if (count == 0) {
    return;
  }
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }
  const std::vector<int> members =
      detail::union_members(src.view().ranks(), dst.view().ranks());

  // dst's receive region: owned box expanded by the halo margins, clipped
  // to the domain (frame cells are never exchanged).
  auto expanded_box = [&](const DistArray<T, R>& A) {
    detail::Box<R> b = detail::owned_box(A);
    for (int d = 0; d < R; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      b.lo[sd] = std::max(0, b.lo[sd] - A.halo(d));
      b.hi[sd] = std::min(A.extent(d) - 1, b.hi[sd] + A.halo(d));
    }
    return b;
  };

  struct Slab {
    detail::Box<R> b;  ///< off-dim overlap (dim slot unused)
    detail::TRange t;  ///< transfer steps shared with the peer
  };

  std::vector<std::pair<int, Slab>> out;
  std::vector<std::pair<int, Slab>> in;
  double unpacked = 0;
  if (in_src) {
    const detail::Box<R> mine = detail::owned_box(src);
    const detail::TRange tm = detail::strided_steps(
        mine.lo[ud], mine.hi[ud], s_off, s_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      detail::for_each_strided_peer_halo(
          dst, mine, dim, tm, d_off, d_stride,
          [&](int rank, const detail::Box<R>& b, detail::TRange t) {
            if (rank != ctx.rank()) {  // self-overlap copied on recv side
              out.emplace_back(rank, Slab{b, t});
            }
          });
    }
  }
  if (in_dst) {
    const detail::Box<R> mine = expanded_box(dst);
    const detail::TRange tm = detail::strided_steps(
        mine.lo[ud], mine.hi[ud], d_off, d_stride, count - 1);
    if (!mine.empty() && !tm.empty()) {
      detail::for_each_strided_peer(
          src, mine, dim, tm, s_off, s_stride,
          [&](int rank, const detail::Box<R>& b, detail::TRange t) {
            if (rank == ctx.rank()) {
              // Self-overlap: both owners are this rank — local copy
              // (ghost targets included, written through frame()).
              detail::for_each_strided_in_box(
                  b, t, dim, 0, 1, [&](GIndex<R> g) {
                    GIndex<R> gs = g;
                    GIndex<R> gd = g;
                    gs[ud] = s_off + g[ud] * s_stride;
                    gd[ud] = d_off + g[ud] * d_stride;
                    dst.frame(gd) = src.at(gs);
                    unpacked += 1.0;
                  });
            } else {
              in.emplace_back(rank, Slab{b, t});
            }
          });
    }
  }
  std::vector<T> buf;
  double packed = 0;
  auto send_one = [&](int rank, const Slab& slab) {
    buf.clear();
    detail::for_each_strided_in_box(
        slab.b, slab.t, dim, s_off, s_stride,
        [&](GIndex<R> g) { buf.push_back(src.at(g)); });
    ctx.send_span<T>(rank, kTagRemap, std::span<const T>(buf));
    packed += static_cast<double>(buf.size());
  };
  auto recv_one = [&](int rank, const Slab& slab) {
    auto vals = ctx.recv_vec<T>(rank, kTagRemap);
    detail::Box<R> e = slab.b;  // payload size check before unpacking
    e.lo[ud] = slab.t.lo;
    e.hi[ud] = slab.t.hi;
    KALI_CHECK(vals.size() == static_cast<std::size_t>(e.volume()),
               "copy_strided_dim_halo: slab size mismatch");
    std::size_t k = 0;
    detail::for_each_strided_in_box(
        slab.b, slab.t, dim, d_off, d_stride,
        [&](GIndex<R> g) { dst.frame(g) = vals[k++]; });
    unpacked += static_cast<double>(k);
  };
  detail::issue_exchange(
      members, ctx.rank(), order, out, in, send_one, recv_one,
      [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
}

}  // namespace kali

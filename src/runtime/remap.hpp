// Strided copies between arrays of different extents/distributions along
// one dimension — the communication core of multigrid restriction and
// interpolation under semi-coarsening (paper §5), where coarse-grid
// ownership does not generally align with fine-grid ownership.
//
//   copy_strided_dim(ctx, src, dst, dim, s_stride, s_off, d_stride, d_off, n)
//     performs, along `dim`:  dst[d_stride*t + d_off] = src[s_stride*t + s_off]
//     for t = 0..n-1, identity on all other dimensions.
//
// Restriction injects  dst_coarse[K] = src_fine[2K]   (s_stride=2, d_stride=1);
// interpolation spreads dst_fine[2K] = src_coarse[K]  (s_stride=1, d_stride=2).
//
// Like redistribute(), the protocol is analytic: each source owner computes
// the unique destination owner of every transferred element in O(R) (one
// owner() per dim), each destination owner computes the unique source owner
// of every element it expects, and messages travel only between rank pairs
// that actually share elements — no counts on the wire, no empty-message
// flood, no all-pairs ownership scan.  Payloads are raw values: both sides
// enumerate their shared elements in row-major order (the strided dim
// mapping is monotone, so source order and destination order agree), so no
// per-element index metadata is needed.
#pragma once

#include "machine/message.hpp"  // kTagRemap (reserved-tag registry)
#include "runtime/redistribute.hpp"

namespace kali {

template <class T, int R>
void copy_strided_dim(Context& ctx, const DistArray<T, R>& src,
                      DistArray<T, R>& dst, int dim, int s_stride, int s_off,
                      int d_stride, int d_off, int count) {
  const auto ud = static_cast<std::size_t>(dim);
  for (int d = 0; d < R; ++d) {
    if (d != dim) {
      KALI_CHECK(src.extent(d) == dst.extent(d),
                 "copy_strided_dim: extent mismatch off-dim");
    }
  }
  KALI_CHECK(count >= 0, "copy_strided_dim: bad count");
  KALI_CHECK(count == 0 || (s_off + (count - 1) * s_stride < src.extent(dim) &&
                            d_off + (count - 1) * d_stride < dst.extent(dim)),
             "copy_strided_dim: range out of bounds");

  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }

  if (in_src) {
    const std::vector<int> dst_ranks = dst.view().ranks();
    std::vector<std::vector<T>> bins(dst_ranks.size());
    src.for_each_owned([&](GIndex<R> g) {
      const int rel = g[ud] - s_off;
      if (rel < 0 || rel % s_stride != 0 || rel / s_stride >= count) {
        return;
      }
      GIndex<R> gd = g;
      gd[ud] = d_off + (rel / s_stride) * d_stride;
      bins[detail::owner_index(dst, gd)].push_back(src.at(g));
    });
    double moved = 0;
    for (std::size_t pi = 0; pi < bins.size(); ++pi) {
      if (!bins[pi].empty()) {
        ctx.send_span<T>(dst_ranks[pi], kTagRemap,
                         std::span<const T>(bins[pi]));
        moved += static_cast<double>(bins[pi].size());
      }
    }
    ctx.compute(moved);
  }
  if (in_dst) {
    // Expected elements per source rank, derived from my own slab in the
    // same row-major order the sender packs.
    const std::vector<int> src_ranks = src.view().ranks();
    std::vector<std::vector<GIndex<R>>> expect(src_ranks.size());
    dst.for_each_owned([&](GIndex<R> g) {
      const int rel = g[ud] - d_off;
      if (rel < 0 || rel % d_stride != 0 || rel / d_stride >= count) {
        return;
      }
      GIndex<R> gs = g;
      gs[ud] = s_off + (rel / d_stride) * s_stride;
      expect[detail::owner_index(src, gs)].push_back(g);
    });
    double unpacked = 0;
    for (std::size_t pi = 0; pi < expect.size(); ++pi) {
      if (expect[pi].empty()) {
        continue;
      }
      auto vals = ctx.recv_vec<T>(src_ranks[pi], kTagRemap);
      KALI_CHECK(vals.size() == expect[pi].size(),
                 "copy_strided_dim: bin size mismatch");
      for (std::size_t k = 0; k < vals.size(); ++k) {
        dst.at(expect[pi][k]) = vals[k];
      }
      unpacked += static_cast<double>(vals.size());
    }
    ctx.compute(unpacked);
  }
}

}  // namespace kali

#include "runtime/distribution.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace kali {

std::string to_string(DistKind k) {
  switch (k) {
    case DistKind::kStar:
      return "*";
    case DistKind::kBlock:
      return "block";
    case DistKind::kCyclic:
      return "cyclic";
    case DistKind::kBlockCyclic:
      return "block_cyclic";
  }
  return "?";
}

DimMap::DimMap(DimDist dist, int extent, int nprocs)
    : dist_(dist), extent_(extent), nprocs_(nprocs) {
  KALI_CHECK(extent >= 0, "negative extent");
  KALI_CHECK(nprocs >= 1, "nprocs must be positive");
  KALI_CHECK(dist.block >= 1, "block length must be positive");
  if (dist_.kind == DistKind::kBlock) {
    block_ = (extent_ + nprocs_ - 1) / nprocs_;
  }
}

int DimMap::owner(int g) const {
  KALI_CHECK(g >= 0 && g < extent_, "owner: index out of range");
  switch (dist_.kind) {
    case DistKind::kStar:
      return 0;
    case DistKind::kBlock:
      return g / block_;
    case DistKind::kCyclic:
      return g % nprocs_;
    case DistKind::kBlockCyclic:
      return (g / dist_.block) % nprocs_;
  }
  KALI_FAIL("bad kind");
}

int DimMap::local(int g) const {
  KALI_CHECK(g >= 0 && g < extent_, "local: index out of range");
  switch (dist_.kind) {
    case DistKind::kStar:
      return g;
    case DistKind::kBlock:
      return g - (g / block_) * block_;
    case DistKind::kCyclic:
      return g / nprocs_;
    case DistKind::kBlockCyclic: {
      const int b = dist_.block;
      return (g / (b * nprocs_)) * b + g % b;
    }
  }
  KALI_FAIL("bad kind");
}

int DimMap::global(int c, int l) const {
  KALI_CHECK(c >= 0 && c < nprocs_, "global: bad proc coord");
  KALI_CHECK(l >= 0 && l < count(c), "global: bad local index");
  switch (dist_.kind) {
    case DistKind::kStar:
      return l;
    case DistKind::kBlock:
      return c * block_ + l;
    case DistKind::kCyclic:
      return l * nprocs_ + c;
    case DistKind::kBlockCyclic: {
      const int b = dist_.block;
      return (l / b) * b * nprocs_ + c * b + l % b;
    }
  }
  KALI_FAIL("bad kind");
}

int DimMap::count(int c) const {
  KALI_CHECK(c >= 0 && c < nprocs_, "count: bad proc coord");
  switch (dist_.kind) {
    case DistKind::kStar:
      return extent_;
    case DistKind::kBlock:
      return std::clamp(extent_ - c * block_, 0, block_);
    case DistKind::kCyclic: {
      return (extent_ - c + nprocs_ - 1) / nprocs_;
    }
    case DistKind::kBlockCyclic: {
      const int b = dist_.block;
      const int full = extent_ / (b * nprocs_);
      const int rem = extent_ - full * b * nprocs_;
      return full * b + std::clamp(rem - c * b, 0, b);
    }
  }
  KALI_FAIL("bad kind");
}

int DimMap::block_lower(int c) const {
  KALI_CHECK(dist_.kind == DistKind::kBlock, "lower() requires block dist");
  KALI_CHECK(c >= 0 && c < nprocs_, "lower: bad proc coord");
  return c * block_;
}

int DimMap::block_upper(int c) const {
  KALI_CHECK(dist_.kind == DistKind::kBlock, "upper() requires block dist");
  return block_lower(c) + count(c) - 1;
}

std::vector<int> DimMap::owned_indices(int c) const {
  const int n = count(c);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int l = 0; l < n; ++l) {
    out.push_back(global(c, l));
  }
  return out;
}

bool DimMap::single_owner_range(int lo, int hi) const {
  KALI_CHECK(lo <= hi, "empty range");
  if (dist_.kind == DistKind::kStar) {
    return true;
  }
  if (dist_.kind == DistKind::kBlock) {
    return owner(lo) == owner(hi);
  }
  const int own = owner(lo);
  for (int g = lo + 1; g <= hi; ++g) {
    if (owner(g) != own) {
      return false;
    }
  }
  return true;
}

}  // namespace kali

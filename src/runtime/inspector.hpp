// Inspector/executor gather for irregular read patterns.
//
// The paper (§2) notes that when the compiler cannot analyse an access
// pattern statically, it "must generate runtime code which will gather such
// information on the fly" (ref [17]; C. Koelbel's thesis — the PARTI/Kali
// scheme).  GatherPlan is that runtime code: an *inspector* pass records
// which global indices each processor wants, builds a reusable
// communication schedule, and the *executor* replays it cheaply every
// iteration.
#pragma once

#include <span>
#include <vector>

#include "runtime/dist_array.hpp"

namespace kali {

inline constexpr int kTagInspReq = (1 << 22);
inline constexpr int kTagInspData = (1 << 22) + 1;

class GatherPlan {
 public:
  GatherPlan() = default;

  /// Inspector: collective over A's view.  `wants` lists the global indices
  /// this member will read (duplicates allowed, any order).
  template <class T>
  static GatherPlan build(const DistArray1<T>& A, std::span<const int> wants) {
    GatherPlan plan;
    if (!A.participating()) {
      return plan;
    }
    Context& ctx = A.context();
    plan.self_rank_ = ctx.rank();
    plan.peers_ = A.view().ranks();
    plan.n_wants_ = wants.size();

    const std::size_t np = plan.peers_.size();
    std::vector<std::vector<int>> requests(np);   // indices I ask from peer
    std::vector<std::vector<std::size_t>> slots(np);  // their spots in `wants`
    for (std::size_t w = 0; w < wants.size(); ++w) {
      const int g = wants[w];
      KALI_CHECK(g >= 0 && g < A.extent(0), "gather index out of range");
      const int owner_coord = A.map(0).owner(g);
      const int owner = A.view().rank_of({owner_coord, 0, 0});
      const std::size_t pi = plan.peer_index(owner);
      requests[pi].push_back(g);
      slots[pi].push_back(w);
    }
    ctx.compute(static_cast<double>(wants.size()));  // inspector index math

    // Exchange request lists pairwise (self handled locally).
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (plan.peers_[pi] == plan.self_rank_) {
        continue;
      }
      ctx.send_span<int>(plan.peers_[pi], kTagInspReq,
                         std::span<const int>(requests[pi]));
    }
    plan.send_indices_.assign(np, {});
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (plan.peers_[pi] == plan.self_rank_) {
        plan.send_indices_[pi] = requests[pi];  // local "sends" to myself
      } else {
        plan.send_indices_[pi] = ctx.recv_vec<int>(plan.peers_[pi], kTagInspReq);
      }
    }
    plan.recv_slots_ = std::move(slots);
    return plan;
  }

  /// Executor: fetch the values for the recorded indices; out[i] corresponds
  /// to wants[i] of the inspector call.  Reusable across iterations as long
  /// as A's distribution is unchanged (values may change freely).
  template <class T>
  std::vector<T> execute(const DistArray1<T>& A) const {
    std::vector<T> out(n_wants_);
    if (!A.participating()) {
      return out;
    }
    Context& ctx = A.context();
    const std::size_t np = peers_.size();
    std::vector<T> buf;
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (peers_[pi] == self_rank_) {
        continue;
      }
      buf.clear();
      for (int g : send_indices_[pi]) {
        buf.push_back(A.at({g}));
      }
      ctx.send_span<T>(peers_[pi], kTagInspData, std::span<const T>(buf));
      ctx.compute(static_cast<double>(buf.size()));
    }
    for (std::size_t pi = 0; pi < np; ++pi) {
      const auto& spots = recv_slots_[pi];
      if (peers_[pi] == self_rank_) {
        for (std::size_t k = 0; k < spots.size(); ++k) {
          out[spots[k]] = A.at({send_indices_[pi][k]});
        }
        ctx.compute(static_cast<double>(spots.size()));
        continue;
      }
      auto vals = ctx.recv_vec<T>(peers_[pi], kTagInspData);
      KALI_CHECK(vals.size() == spots.size(), "executor size mismatch");
      for (std::size_t k = 0; k < spots.size(); ++k) {
        out[spots[k]] = vals[k];
      }
      ctx.compute(static_cast<double>(spots.size()));
    }
    return out;
  }

  [[nodiscard]] std::size_t want_count() const { return n_wants_; }

  /// Total values this member must ship to peers per execution (diagnostic).
  [[nodiscard]] std::size_t send_volume() const {
    std::size_t n = 0;
    for (std::size_t pi = 0; pi < peers_.size(); ++pi) {
      if (peers_[pi] != self_rank_) {
        n += send_indices_[pi].size();
      }
    }
    return n;
  }

 private:
  [[nodiscard]] std::size_t peer_index(int rank) const {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (peers_[i] == rank) {
        return i;
      }
    }
    KALI_FAIL("rank not in view");
  }

  int self_rank_ = -1;
  std::size_t n_wants_ = 0;
  std::vector<int> peers_;
  std::vector<std::vector<int>> send_indices_;        // per peer: globals to send
  std::vector<std::vector<std::size_t>> recv_slots_;  // per peer: slots in wants
};

}  // namespace kali

// Inspector/executor gather for irregular read patterns.
//
// The paper (§2) notes that when the compiler cannot analyse an access
// pattern statically, it "must generate runtime code which will gather such
// information on the fly" (ref [17]; C. Koelbel's thesis — the PARTI/Kali
// scheme).  GatherPlan is that runtime code: an *inspector* pass records
// which global indices each processor wants, builds a reusable
// communication schedule, and the *executor* replays it cheaply every
// iteration.  Both passes are pairwise exchanges over the view's ranks,
// issued through detail::issue_exchange like every other dense exchange in
// the runtime (round-structured by default); their tags are registered in
// the runtime band of machine/message.hpp.
//
// Pairs with nothing to say are skipped entirely: the inspector
// all_gathers a tiny presence matrix (one byte per peer pair) so both
// sides of every empty request list agree to drop the request *and* data
// messages for that pair — irregular patterns with locality then cost
// O(active pairs) messages instead of O(P²).  The per-tag send/recv
// ledgers (MachineStats::sent_msgs/recv_msgs) are how the tests prove the
// skip drops only messages that would have carried nothing.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "machine/collectives.hpp"
#include "machine/schedule.hpp"
#include "runtime/dist_array.hpp"

namespace kali {

class GatherPlan {
 public:
  GatherPlan() = default;

  /// Inspector: collective over A's view.  `wants` lists the global indices
  /// this member will read (duplicates allowed, any order).
  template <class T>
  static GatherPlan build(const DistArray1<T>& A, std::span<const int> wants,
                          IssueOrder order = IssueOrder::kRoundSchedule) {
    GatherPlan plan;
    if (!A.participating()) {
      return plan;
    }
    Context& ctx = A.context();
    plan.self_rank_ = ctx.rank();
    plan.peers_ = A.view().ranks();
    plan.n_wants_ = wants.size();

    const std::size_t np = plan.peers_.size();
    std::vector<std::vector<int>> requests(np);   // indices I ask from peer
    std::vector<std::vector<std::size_t>> slots(np);  // their spots in `wants`
    for (std::size_t w = 0; w < wants.size(); ++w) {
      const int g = wants[w];
      KALI_CHECK(g >= 0 && g < A.extent(0), "gather index out of range");
      const int owner_coord = A.map(0).owner(g);
      const int owner = A.view().rank_of({owner_coord, 0, 0});
      const std::size_t pi = plan.peer_index(owner);
      requests[pi].push_back(g);
      slots[pi].push_back(w);
    }
    ctx.compute(static_cast<double>(wants.size()));  // inspector index math

    // Presence matrix: one byte per peer saying "I will request from you",
    // all_gathered in view order (Group preserves it, so matrix row j is
    // member j's row).  One tiny collective buys both endpoints of every
    // empty pair certain agreement to skip it — without it each pair would
    // have to exchange its emptiness, which is the message we are deleting.
    std::vector<std::uint8_t> presence(np, 0);
    for (std::size_t pi = 0; pi < np; ++pi) {
      presence[pi] =
          (plan.peers_[pi] != plan.self_rank_ && !requests[pi].empty()) ? 1
                                                                        : 0;
    }
    const Group g(plan.peers_, plan.self_rank_);
    const std::vector<std::uint8_t> matrix = all_gather(
        ctx, g, std::span<const std::uint8_t>(presence), order);
    const std::size_t my_pi = static_cast<std::size_t>(g.index());

    // Exchange the non-empty request lists pairwise (self handled locally),
    // issued through the shared schedule dispatch.
    plan.send_indices_.assign(np, {});
    const std::vector<int> members = detail::union_members(plan.peers_, {});
    std::vector<std::pair<int, std::size_t>> out;
    std::vector<std::pair<int, std::size_t>> in;
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (plan.peers_[pi] == plan.self_rank_) {
        plan.send_indices_[pi] = requests[pi];  // local "sends" to myself
        continue;
      }
      if (presence[pi] != 0) {
        out.emplace_back(plan.peers_[pi], pi);
      }
      if (matrix[pi * np + my_pi] != 0) {
        in.emplace_back(plan.peers_[pi], pi);
      }
    }
    auto send_one = [&](int rank, std::size_t pi) {
      ctx.send_span<int>(rank, kTagInspReq,
                         std::span<const int>(requests[pi]));
    };
    auto recv_one = [&](int rank, std::size_t pi) {
      plan.send_indices_[pi] = ctx.recv_vec<int>(rank, kTagInspReq);
    };
    detail::issue_exchange(
        members, plan.self_rank_, order, out, in, send_one, recv_one, [] {},
        [] {});
    plan.recv_slots_ = std::move(slots);
    return plan;
  }

  /// Executor: fetch the values for the recorded indices; out[i] corresponds
  /// to wants[i] of the inspector call.  Reusable across iterations as long
  /// as A's distribution is unchanged (values may change freely).
  template <class T>
  std::vector<T> execute(const DistArray1<T>& A,
                         IssueOrder order = IssueOrder::kRoundSchedule) const {
    std::vector<T> result(n_wants_);
    if (!A.participating()) {
      return result;
    }
    Context& ctx = A.context();
    const std::size_t np = peers_.size();

    // Self-requests are local copies, charged like a peer unpack.
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (peers_[pi] != self_rank_) {
        continue;
      }
      const auto& spots = recv_slots_[pi];
      for (std::size_t k = 0; k < spots.size(); ++k) {
        result[spots[k]] = A.at({send_indices_[pi][k]});
      }
      ctx.compute(static_cast<double>(spots.size()));
    }

    // Only pairs with traffic: send_indices_[pi] is non-empty exactly when
    // peer pi's request list reached us in the inspector (their presence
    // bit), and recv_slots_[pi] exactly when we requested from pi — the two
    // sides of each skipped pair agreed on emptiness at plan build.
    const std::vector<int> members = detail::union_members(peers_, {});
    std::vector<std::pair<int, std::size_t>> out;
    std::vector<std::pair<int, std::size_t>> in;
    for (std::size_t pi = 0; pi < np; ++pi) {
      if (peers_[pi] == self_rank_) {
        continue;
      }
      if (!send_indices_[pi].empty()) {
        out.emplace_back(peers_[pi], pi);
      }
      if (!recv_slots_[pi].empty()) {
        in.emplace_back(peers_[pi], pi);
      }
    }
    std::vector<T> buf;
    double packed = 0;
    double unpacked = 0;
    auto send_one = [&](int rank, std::size_t pi) {
      buf.clear();
      for (int g : send_indices_[pi]) {
        buf.push_back(A.at({g}));
      }
      ctx.send_span<T>(rank, kTagInspData, std::span<const T>(buf));
      packed += static_cast<double>(buf.size());
    };
    auto recv_one = [&](int rank, std::size_t pi) {
      auto vals = ctx.recv_vec<T>(rank, kTagInspData);
      const auto& spots = recv_slots_[pi];
      KALI_CHECK(vals.size() == spots.size(), "executor size mismatch");
      for (std::size_t k = 0; k < spots.size(); ++k) {
        result[spots[k]] = vals[k];
      }
      unpacked += static_cast<double>(spots.size());
    };
    detail::issue_exchange(
        members, self_rank_, order, out, in, send_one, recv_one,
        [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
    return result;
  }

  [[nodiscard]] std::size_t want_count() const { return n_wants_; }

  /// Total values this member must ship to peers per execution (diagnostic).
  [[nodiscard]] std::size_t send_volume() const {
    std::size_t n = 0;
    for (std::size_t pi = 0; pi < peers_.size(); ++pi) {
      if (peers_[pi] != self_rank_) {
        n += send_indices_[pi].size();
      }
    }
    return n;
  }

 private:
  [[nodiscard]] std::size_t peer_index(int rank) const {
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if (peers_[i] == rank) {
        return i;
      }
    }
    KALI_FAIL("rank not in view");
  }

  int self_rank_ = -1;
  std::size_t n_wants_ = 0;
  std::vector<int> peers_;
  std::vector<std::vector<int>> send_indices_;        // per peer: globals to send
  std::vector<std::vector<std::size_t>> recv_slots_;  // per peer: slots in wants
};

}  // namespace kali

// Gather/scatter helpers between distributed arrays and the view root —
// used by tests and benches to verify distributed results against
// sequential references.
#pragma once

#include <cstdint>

#include "runtime/dist_array.hpp"

namespace kali {

namespace detail {
template <class T>
struct IdxVal {
  std::int64_t idx;
  T val;
};

/// Inverse of linearize() for a given extent tuple (row-major).
template <int R>
GIndex<R> delinearize(std::int64_t f, const GIndex<R>& ext) {
  GIndex<R> g{};
  for (int d = R - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    g[ud] = static_cast<int>(f % ext[ud]);
    f /= ext[ud];
  }
  return g;
}
}  // namespace detail

/// Row-major linearization of a global index.
template <class T, int R>
std::int64_t linearize(const DistArray<T, R>& A,
                       typename DistArray<T, R>::Extents g) {
  std::int64_t f = 0;
  for (int d = 0; d < R; ++d) {
    f = f * A.extent(d) + g[static_cast<std::size_t>(d)];
  }
  return f;
}

namespace detail {

/// This member's owned elements as (linear index, value) packets — the
/// contribution both collection helpers send.
template <class T, int R>
std::vector<IdxVal<T>> pack_owned(const DistArray<T, R>& A) {
  std::vector<IdxVal<T>> mine;
  A.for_each_owned([&](GIndex<R> g) {
    mine.push_back({linearize(A, g), A.at(g)});
  });
  return mine;
}

/// Scatter gathered (linear index, value) packets into a dense row-major
/// global array.  Replicated (star) dims contribute duplicates; values must
/// agree (they do for coherently-written arrays), so later packets simply
/// overwrite earlier ones.
template <class T, int R>
std::vector<T> scatter_idxval(const DistArray<T, R>& A,
                              const std::vector<IdxVal<T>>& all) {
  std::int64_t total = 1;
  for (int d = 0; d < R; ++d) {
    total *= A.extent(d);
  }
  std::vector<T> out(static_cast<std::size_t>(total), T{});
  for (const auto& iv : all) {
    out[static_cast<std::size_t>(iv.idx)] = iv.val;
  }
  return out;
}

}  // namespace detail

/// Collect the full global contents on the view's root member (linear index
/// 0).  Returns the row-major array there; an empty vector elsewhere.
/// Collective over the view.  Replicated (star) dims are contributed by all
/// owners; values must agree (they do for coherently-written arrays).
template <class T, int R>
std::vector<T> gather_global(const DistArray<T, R>& A) {
  if (!A.participating()) {
    return {};
  }
  Context& ctx = A.context();
  const std::vector<detail::IdxVal<T>> mine = detail::pack_owned(A);
  Group grp = A.group();
  auto all = gather(ctx, grp, 0, std::span<const detail::IdxVal<T>>(mine));
  if (grp.index() != 0) {
    return {};
  }
  return detail::scatter_idxval(A, all);
}

/// Replicate the full global contents on every member.  Built on the
/// round-scheduled all_gather collective (one dense pairwise exchange)
/// rather than the old gather-to-root + broadcast ladder, so the root is
/// never a serialization hot spot and, under link contention, every round
/// is a perfect matching.
template <class T, int R>
std::vector<T> gather_all(const DistArray<T, R>& A,
                          IssueOrder order = IssueOrder::kRoundSchedule) {
  if (!A.participating()) {
    return {};
  }
  Context& ctx = A.context();
  const std::vector<detail::IdxVal<T>> mine = detail::pack_owned(A);
  Group grp = A.group();
  const auto all = all_gather(
      ctx, grp, std::span<const detail::IdxVal<T>>(mine), order);
  return detail::scatter_idxval(A, all);
}

}  // namespace kali

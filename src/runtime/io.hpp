// Gather/scatter helpers between distributed arrays and the view root —
// used by tests and benches to verify distributed results against
// sequential references.
#pragma once

#include <cstdint>

#include "runtime/dist_array.hpp"

namespace kali {

namespace detail {
template <class T>
struct IdxVal {
  std::int64_t idx;
  T val;
};

/// Inverse of linearize() for a given extent tuple (row-major).
template <int R>
GIndex<R> delinearize(std::int64_t f, const GIndex<R>& ext) {
  GIndex<R> g{};
  for (int d = R - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    g[ud] = static_cast<int>(f % ext[ud]);
    f /= ext[ud];
  }
  return g;
}
}  // namespace detail

/// Row-major linearization of a global index.
template <class T, int R>
std::int64_t linearize(const DistArray<T, R>& A,
                       typename DistArray<T, R>::Extents g) {
  std::int64_t f = 0;
  for (int d = 0; d < R; ++d) {
    f = f * A.extent(d) + g[static_cast<std::size_t>(d)];
  }
  return f;
}

/// Collect the full global contents on the view's root member (linear index
/// 0).  Returns the row-major array there; an empty vector elsewhere.
/// Collective over the view.  Replicated (star) dims are contributed by all
/// owners; values must agree (they do for coherently-written arrays).
template <class T, int R>
std::vector<T> gather_global(const DistArray<T, R>& A) {
  if (!A.participating()) {
    return {};
  }
  Context& ctx = A.context();
  std::vector<detail::IdxVal<T>> mine;
  A.for_each_owned([&](GIndex<R> g) {
    mine.push_back({linearize(A, g), A.at(g)});
  });
  Group grp = A.group();
  auto all = gather(ctx, grp, 0, std::span<const detail::IdxVal<T>>(mine));
  if (grp.index() != 0) {
    return {};
  }
  std::int64_t total = 1;
  for (int d = 0; d < R; ++d) {
    total *= A.extent(d);
  }
  std::vector<T> out(static_cast<std::size_t>(total), T{});
  for (const auto& iv : all) {
    out[static_cast<std::size_t>(iv.idx)] = iv.val;
  }
  return out;
}

/// Gather on root and broadcast so every member holds the full array.
template <class T, int R>
std::vector<T> gather_all(const DistArray<T, R>& A) {
  std::vector<T> full = gather_global(A);
  if (!A.participating()) {
    return full;
  }
  std::int64_t total = 1;
  for (int d = 0; d < R; ++d) {
    total *= A.extent(d);
  }
  full.resize(static_cast<std::size_t>(total));
  broadcast(A.context(), A.group(), 0, std::span<T>(full));
  return full;
}

}  // namespace kali

// Redistribution between arbitrary distributions of the same global array
// — the communication behind "a variety of distribution patterns can be
// tried by simple modifications of this program" (paper §2) and behind
// transpose-style tensor product algorithms (distributed FFT, ADI direction
// switch).
//
// Protocol: no counts are exchanged and no empty messages are sent.  Both
// sides of every transfer derive the pairing analytically from the
// replicated descriptors — the sender knows which destination ranks need a
// piece of its slab, and each receiver knows which source ranks hold a
// piece of *its* slab, so a message travels exactly between the rank pairs
// whose owned index sets intersect.  Payloads carry raw values only: sender
// and receiver enumerate the shared index set in the same row-major global
// order, so no per-element index metadata is needed on the wire.
//
// Two paths implement that protocol:
//
//  * Box intersection (block/star dims only): each rank's owned index set
//    is an axis-aligned box, so the (src-rank, dst-rank) overlap is itself
//    a box computed directly from the DimMap descriptors in O(1) per dim.
//    Peers are enumerated from per-dim owner-coordinate ranges — O(peers),
//    independent of both the element count and the machine size — and
//    payloads are packed as contiguous row-major slabs.
//
//  * Per-dim owner binning (any cyclic/block-cyclic dim): each side walks
//    its own elements once, computing the unique opposite owner rank in
//    O(R) per element (owner() per dim + one rank_of), and bins values by
//    peer.  O(local n + peers) — never the O(local n × P) all-pairs
//    ownership scan of the original implementation.
//
// A rank's overlap with *itself* never touches the network: all paths peel
// the self-intersection off into a direct local copy (one op per element)
// before any message is issued — a self-message would charge send/recv
// overhead plus wire latency for data the rank already owns, and
// MachineStats::self_msgs(kTagRedistData) lets tests assert none slip
// through.
//
// Remote messages are issued through the round-structured schedules of
// machine/schedule.hpp (XOR pairwise exchange for power-of-two
// communicators, latin-square ordering otherwise), so each round is a
// perfect matching over the union of the two views and, with
// MachineConfig::link_contention, no injection or ejection link is
// oversubscribed.  IssueOrder::kPeerOrder preserves the raw enumeration
// order as the naive baseline bench_redistribute compares against;
// IssueOrder::kLockstep walks the same rounds but completes each round's
// send/recv pair before advancing, bounding in-flight mailbox memory to a
// small constant per port instead of O(P) posted slabs.
//
// The original implementation (per-element {index, value} packets, full
// P_src × P_dst message flood including empty messages) is retained as
// redistribute_reference(): it is the oracle for differential tests and the
// baseline bench_redistribute measures the new protocol against.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "machine/message.hpp"  // kTagRedistData (reserved-tag registry)
#include "runtime/dist_array.hpp"
#include "runtime/io.hpp"  // linearize / delinearize
#include "machine/schedule.hpp"

namespace kali {

/// Handle of an in-flight split-phase exchange returned by the _begin forms
/// (redistribute_begin, copy_strided_dim_begin, copy_strided_dim_halo_begin):
/// every send is on the wire, every receive is posted nonblocking, and the
/// pack compute plus the self-overlap local copy have already been charged
/// inside the wire window.  Run whatever local work should hide the wire,
/// then finish() — one wait point that completes the receives in canonical
/// (send_time, src, seq) order and unpacks (charging the same unpack compute
/// the blocking path charges).  The source array, destination array, and
/// Context must outlive the handle.  Dropping an active handle leaks the
/// posted operations, which the KALI_CHECK_INVARIANTS build diagnoses when
/// the rank program returns.
class PendingExchange {
 public:
  PendingExchange() = default;

  /// Internal: built by the _begin functions with their completion closure.
  explicit PendingExchange(std::function<void()> fin) : fin_(std::move(fin)) {}

  /// Complete the posted receives and unpack.  Idempotent.
  void finish() {
    if (fin_) {
      std::function<void()> f = std::move(fin_);
      fin_ = nullptr;
      f();
    }
  }

  /// True while receives are still in flight (finish() not yet called).
  [[nodiscard]] bool active() const { return static_cast<bool>(fin_); }

 private:
  std::function<void()> fin_;
};

namespace detail {

/// Row-major linear index (within A.view().ranks()) of the rank owning g,
/// computable by any processor, member or not — descriptors are replicated.
/// Ownership is unique: every grid dimension of the view is bound to
/// exactly one distributed array dimension.  One owner() per dim — the
/// O(R) inner step of the binning path.
template <class T, int R>
std::size_t owner_index(const DistArray<T, R>& A, GIndex<R> g) {
  std::array<int, kMaxProcDims> coord{};
  for (int d = 0; d < R; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (A.proc_dim(d) >= 0) {
      coord[static_cast<std::size_t>(A.proc_dim(d))] = A.map(d).owner(g[ud]);
    }
  }
  std::size_t lin = 0;
  for (int pd = 0; pd < A.view().ndims(); ++pd) {
    lin = lin * static_cast<std::size_t>(A.view().extent(pd)) +
          static_cast<std::size_t>(coord[static_cast<std::size_t>(pd)]);
  }
  return lin;
}

/// Inclusive per-dimension index box; hi < lo along any dim means empty.
template <int R>
struct Box {
  GIndex<R> lo{};
  GIndex<R> hi{};

  [[nodiscard]] bool empty() const {
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (hi[ud] < lo[ud]) {
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::int64_t volume() const {
    std::int64_t v = 1;
    for (int d = 0; d < R; ++d) {
      const auto ud = static_cast<std::size_t>(d);
      if (hi[ud] < lo[ud]) {
        return 0;
      }
      v *= hi[ud] - lo[ud] + 1;
    }
    return v;
  }
};

/// Componentwise intersection; empty iff the boxes are disjoint (or either
/// input was already empty).
template <int R>
Box<R> intersect(const Box<R>& a, const Box<R>& b) {
  Box<R> r;
  for (int d = 0; d < R; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    r.lo[ud] = std::max(a.lo[ud], b.lo[ud]);
    r.hi[ud] = std::min(a.hi[ud], b.hi[ud]);
  }
  return r;
}

/// Visit every global index of a (nonempty) box in row-major order — the
/// wire order both endpoints of a slab transfer agree on.
template <int R, class Fn>
void for_each_in_box(const Box<R>& b, Fn fn) {
  GIndex<R> g = b.lo;
  for (;;) {
    fn(g);
    int d = R - 1;
    for (; d >= 0; --d) {
      const auto ud = static_cast<std::size_t>(d);
      if (++g[ud] <= b.hi[ud]) {
        break;
      }
      g[ud] = b.lo[ud];
    }
    if (d < 0) {
      return;
    }
  }
}

/// True when every dimension of A is block or star, i.e. every rank's owned
/// index set is an axis-aligned box.
template <class T, int R>
bool box_eligible(const DistArray<T, R>& A) {
  for (int d = 0; d < R; ++d) {
    if (A.dist_kind(d) != DistKind::kBlock && A.dist_kind(d) != DistKind::kStar) {
      return false;
    }
  }
  return true;
}

/// The calling member's owned box (block/star dims; paper's lower/upper).
template <class T, int R>
Box<R> owned_box(const DistArray<T, R>& A) {
  Box<R> b;
  for (int d = 0; d < R; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    b.lo[ud] = A.own_lower(d);
    b.hi[ud] = A.own_upper(d);
  }
  return b;
}

/// Visit every rank of box-eligible `A` whose owned box intersects `within`,
/// passing the rank and the (nonempty) intersection box.  Runs in O(peers):
/// per grid dimension only the owner coordinates of `within`'s bounds are
/// enumerated, and every enumerated coordinate is a true peer (a block
/// owner between owner(lo) and owner(hi) always owns part of [lo, hi]).
template <class T, int R, class Fn>
void for_each_intersecting_peer(const DistArray<T, R>& A, const Box<R>& within,
                                Fn fn) {
  const int nd = A.view().ndims();
  std::array<int, kMaxProcDims> adim{};  // grid dim -> bound array dim
  for (int d = 0; d < R; ++d) {
    if (A.proc_dim(d) >= 0) {
      adim[static_cast<std::size_t>(A.proc_dim(d))] = d;
    }
  }
  std::array<int, kMaxProcDims> clo{};
  std::array<int, kMaxProcDims> chi{};
  for (int pd = 0; pd < nd; ++pd) {
    const auto upd = static_cast<std::size_t>(pd);
    const int d = adim[upd];
    clo[upd] = A.map(d).owner(within.lo[static_cast<std::size_t>(d)]);
    chi[upd] = A.map(d).owner(within.hi[static_cast<std::size_t>(d)]);
  }
  std::array<int, kMaxProcDims> c = clo;
  for (;;) {
    Box<R> b = within;  // star dims of A: peer holds the whole extent
    for (int pd = 0; pd < nd; ++pd) {
      const auto upd = static_cast<std::size_t>(pd);
      const int d = adim[upd];
      const auto ud = static_cast<std::size_t>(d);
      b.lo[ud] = std::max(within.lo[ud], A.map(d).block_lower(c[upd]));
      b.hi[ud] = std::min(within.hi[ud], A.map(d).block_upper(c[upd]));
    }
    fn(A.view().rank_of(c), b);
    int pd = nd - 1;
    for (; pd >= 0; --pd) {
      const auto upd = static_cast<std::size_t>(pd);
      if (++c[upd] <= chi[upd]) {
        break;
      }
      c[upd] = clo[upd];
    }
    if (pd < 0) {
      return;
    }
  }
}

}  // namespace detail

template <class T, int R>
[[nodiscard]] PendingExchange redistribute_begin(
    Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst,
    IssueOrder order = IssueOrder::kRoundSchedule);

/// Copy src's contents into dst (same global extents, any distributions /
/// views — the views may even be disjoint rank sets).  Collective over the
/// union of both views' members.  Remote messages are issued in
/// round-schedule order by default; kPeerOrder keeps the raw enumeration
/// order (the naive baseline under link contention).
///
/// Overlap::kOn routes box-eligible layouts through the split-phase form
/// (redistribute_begin + finish back to back): same messages, tags,
/// payloads, and results, but the pack compute and the self-overlap copy
/// land inside the wire window, so their time is hidden.  Callers with
/// real work to hide call redistribute_begin()/finish() around it instead.
/// Layouts with a cyclic dim have no split-phase form and stay blocking.
template <class T, int R>
void redistribute(Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst,
                  IssueOrder order = IssueOrder::kRoundSchedule,
                  Overlap overlap = Overlap::kOff) {
  for (int d = 0; d < R; ++d) {
    KALI_CHECK(src.extent(d) == dst.extent(d), "redistribute: extent mismatch");
  }
  if (overlap == Overlap::kOn && detail::box_eligible(src) &&
      detail::box_eligible(dst)) {
    redistribute_begin(ctx, src, dst, order).finish();
    return;
  }
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }
  const std::vector<int> members =
      detail::union_members(src.view().ranks(), dst.view().ranks());

  if (detail::box_eligible(src) && detail::box_eligible(dst)) {
    // ---- box-intersection fast path: contiguous slab exchange -----------
    if (in_src && in_dst) {
      // Self-overlap stays off the network: direct local copy.
      const detail::Box<R> shared =
          detail::intersect(detail::owned_box(src), detail::owned_box(dst));
      if (!shared.empty()) {
        detail::for_each_in_box(shared, [&](GIndex<R> g) { dst.at(g) = src.at(g); });
        ctx.compute(static_cast<double>(shared.volume()));
      }
    }
    std::vector<std::pair<int, detail::Box<R>>> out;
    std::vector<std::pair<int, detail::Box<R>>> in;
    if (in_src) {
      const detail::Box<R> mine = detail::owned_box(src);
      if (!mine.empty()) {
        detail::for_each_intersecting_peer(
            dst, mine, [&](int rank, const detail::Box<R>& b) {
              if (rank != ctx.rank()) {
                out.emplace_back(rank, b);
              }
            });
      }
    }
    if (in_dst) {
      const detail::Box<R> mine = detail::owned_box(dst);
      if (!mine.empty()) {
        detail::for_each_intersecting_peer(
            src, mine, [&](int rank, const detail::Box<R>& b) {
              if (rank != ctx.rank()) {
                in.emplace_back(rank, b);
              }
            });
      }
    }
    std::vector<T> buf;
    double packed = 0;
    double unpacked = 0;
    auto send_one = [&](int rank, const detail::Box<R>& b) {
      buf.clear();
      buf.reserve(static_cast<std::size_t>(b.volume()));
      detail::for_each_in_box(b, [&](GIndex<R> g) { buf.push_back(src.at(g)); });
      ctx.send_span<T>(rank, kTagRedistData, std::span<const T>(buf));
      packed += static_cast<double>(buf.size());
    };
    auto recv_one = [&](int rank, const detail::Box<R>& b) {
      auto vals = ctx.recv_vec<T>(rank, kTagRedistData);
      KALI_CHECK(vals.size() == static_cast<std::size_t>(b.volume()),
                 "redistribute: slab size mismatch");
      std::size_t k = 0;
      detail::for_each_in_box(b, [&](GIndex<R> g) { dst.at(g) = vals[k++]; });
      unpacked += static_cast<double>(k);
    };
    detail::issue_exchange(
        members, ctx.rank(), order, out, in, send_one, recv_one,
        [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
    return;
  }

  // ---- general path: per-dim owner binning ------------------------------
  // Sender and receiver each walk their own elements once (row-major), so
  // the per-peer value sequences agree element-for-element without any
  // index metadata or count exchange.  Elements whose destination owner is
  // the sender itself are never binned: the receiver side copies them
  // straight from the local source slab.
  std::vector<std::pair<int, std::vector<T>>> out;
  std::vector<std::pair<int, std::vector<GIndex<R>>>> in;
  double unpacked = 0;
  if (in_src) {
    const std::vector<int> dst_ranks = dst.view().ranks();
    const std::size_t self_di =
        in_dst ? static_cast<std::size_t>(dst.view().linear_index_of(ctx.rank()))
               : dst_ranks.size();  // sentinel: matches no bin
    std::vector<std::vector<T>> bins(dst_ranks.size());
    src.for_each_owned([&](GIndex<R> g) {
      const std::size_t di = detail::owner_index(dst, g);
      if (di != self_di) {
        bins[di].push_back(src.at(g));
      }
    });
    for (std::size_t pi = 0; pi < bins.size(); ++pi) {
      if (!bins[pi].empty()) {
        out.emplace_back(dst_ranks[pi], std::move(bins[pi]));
      }
    }
  }
  if (in_dst) {
    const std::vector<int> src_ranks = src.view().ranks();
    std::vector<std::vector<GIndex<R>>> expect(src_ranks.size());
    dst.for_each_owned([&](GIndex<R> g) {
      expect[detail::owner_index(src, g)].push_back(g);
    });
    for (std::size_t pi = 0; pi < expect.size(); ++pi) {
      if (expect[pi].empty()) {
        continue;
      }
      if (src_ranks[pi] == ctx.rank()) {
        // Self-overlap: both owners are this rank — local copy.
        for (const GIndex<R>& g : expect[pi]) {
          dst.at(g) = src.at(g);
        }
        unpacked += static_cast<double>(expect[pi].size());
        continue;
      }
      in.emplace_back(src_ranks[pi], std::move(expect[pi]));
    }
  }
  double packed = 0;
  auto send_one = [&](int rank, const std::vector<T>& vals) {
    ctx.send_span<T>(rank, kTagRedistData, std::span<const T>(vals));
    packed += static_cast<double>(vals.size());
  };
  auto recv_one = [&](int rank, const std::vector<GIndex<R>>& idxs) {
    auto vals = ctx.recv_vec<T>(rank, kTagRedistData);
    KALI_CHECK(vals.size() == idxs.size(), "redistribute: bin size mismatch");
    for (std::size_t k = 0; k < vals.size(); ++k) {
      dst.at(idxs[k]) = vals[k];
    }
    unpacked += static_cast<double>(vals.size());
  };
  detail::issue_exchange(
      members, ctx.rank(), order, out, in, send_one, recv_one,
      [&] { ctx.compute(packed); }, [&] { ctx.compute(unpacked); });
}

/// Split-phase redistribute, the Overlap::kOn machinery: posts a
/// nonblocking receive for every incoming slab (round order, zero model
/// cost), fires the identical sends the blocking path fires in the same
/// round order, charges the pack compute, and performs the self-overlap
/// local copy inside the wire window — then returns with the receives in
/// flight.  finish() completes them at one wait point and unpacks.  Box
/// layouts only (block/star on every dim of both arrays); see
/// redistribute() for the blocking oracle this is proven against.
template <class T, int R>
[[nodiscard]] PendingExchange redistribute_begin(Context& ctx,
                                                 const DistArray<T, R>& src,
                                                 DistArray<T, R>& dst,
                                                 IssueOrder order) {
  for (int d = 0; d < R; ++d) {
    KALI_CHECK(src.extent(d) == dst.extent(d), "redistribute: extent mismatch");
  }
  KALI_CHECK(detail::box_eligible(src) && detail::box_eligible(dst),
             "redistribute_begin: requires block/star layouts");
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return {};
  }
  const std::vector<int> members =
      detail::union_members(src.view().ranks(), dst.view().ranks());

  std::vector<std::pair<int, detail::Box<R>>> out;
  std::vector<std::pair<int, detail::Box<R>>> in;
  if (in_src) {
    const detail::Box<R> mine = detail::owned_box(src);
    if (!mine.empty()) {
      detail::for_each_intersecting_peer(
          dst, mine, [&](int rank, const detail::Box<R>& b) {
            if (rank != ctx.rank()) {
              out.emplace_back(rank, b);
            }
          });
    }
  }
  if (in_dst) {
    const detail::Box<R> mine = detail::owned_box(dst);
    if (!mine.empty()) {
      detail::for_each_intersecting_peer(
          src, mine, [&](int rank, const detail::Box<R>& b) {
            if (rank != ctx.rank()) {
              in.emplace_back(rank, b);
            }
          });
    }
  }

  // Post every receive before the first send: the whole wire window is
  // eligible for hiding.  shared_ptr storage because the completion
  // closure must be copyable (std::function) and owns the staging.
  detail::round_sort(in, members, ctx.rank(), order);
  auto stage = std::make_shared<std::vector<std::vector<T>>>(in.size());
  auto hs = std::make_shared<std::vector<CommHandle>>();
  hs->reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    (*stage)[i].resize(static_cast<std::size_t>(in[i].second.volume()));
    hs->push_back(ctx.irecv_into<T>(in[i].first, kTagRedistData,
                                    std::span<T>((*stage)[i])));
  }

  detail::round_sort(out, members, ctx.rank(), order);
  std::vector<T> buf;
  double packed = 0;
  for (auto& [rank, b] : out) {
    buf.clear();
    buf.reserve(static_cast<std::size_t>(b.volume()));
    detail::for_each_in_box(b, [&](GIndex<R> g) { buf.push_back(src.at(g)); });
    // kali-lint: allow(raw-exchange) — split-phase form: receives are already
    // posted as irecvs above, so there is no recv_one closure to pair with.
    ctx.send_span<T>(rank, kTagRedistData, std::span<const T>(buf));
    packed += static_cast<double>(buf.size());
  }
  ctx.compute(packed);

  // Self-overlap local copy, charged inside the wire window (the blocking
  // path charges the identical element count; only its clock slot moves).
  if (in_src && in_dst) {
    const detail::Box<R> shared =
        detail::intersect(detail::owned_box(src), detail::owned_box(dst));
    if (!shared.empty()) {
      detail::for_each_in_box(shared,
                              [&](GIndex<R> g) { dst.at(g) = src.at(g); });
      ctx.compute(static_cast<double>(shared.volume()));
    }
  }

  auto slabs = std::make_shared<std::vector<std::pair<int, detail::Box<R>>>>(
      std::move(in));
  return PendingExchange([&ctx, &dst, stage, hs, slabs] {
    ctx.wait_all(std::span<CommHandle>(*hs));
    double unpacked = 0;
    for (std::size_t i = 0; i < slabs->size(); ++i) {
      const detail::Box<R>& b = (*slabs)[i].second;
      const std::vector<T>& vals = (*stage)[i];
      KALI_CHECK(vals.size() == static_cast<std::size_t>(b.volume()),
                 "redistribute: slab size mismatch");
      std::size_t k = 0;
      detail::for_each_in_box(b, [&](GIndex<R> g) { dst.at(g) = vals[k++]; });
      unpacked += static_cast<double>(k);
    }
    ctx.compute(unpacked);
  });
}

/// The original "runtime resolution" implementation: every source member
/// tests every owned element against every destination rank (O(local n × P))
/// and sends per-element {index, value} packets to *all* destination ranks,
/// empty lists included.  Kept, unoptimized, as the oracle for differential
/// tests and as the baseline of bench_redistribute — do not use in new code.
/// The one fix it shares with redistribute(): a rank's packets to *itself*
/// are applied locally instead of round-tripping through the mailbox.
template <class T, int R>
void redistribute_reference(Context& ctx, const DistArray<T, R>& src,
                            DistArray<T, R>& dst) {
  GIndex<R> ext{};
  for (int d = 0; d < R; ++d) {
    KALI_CHECK(src.extent(d) == dst.extent(d), "redistribute: extent mismatch");
    ext[static_cast<std::size_t>(d)] = src.extent(d);
  }
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }

  struct Packet {
    std::int64_t idx;
    T val;
  };
  std::vector<int> peers = dst.view().ranks();
  std::vector<std::vector<Packet>> outgoing;
  std::vector<Packet> self_pkts;
  if (in_src) {
    outgoing.assign(peers.size(), {});
    src.for_each_owned([&](GIndex<R> g) {
      const std::int64_t f = linearize(src, g);
      for (std::size_t pi = 0; pi < peers.size(); ++pi) {
        const auto coord = dst.view().coord_of(peers[pi]);
        bool owns = true;
        for (int d = 0; d < R && owns; ++d) {
          const int pd = dst.proc_dim(d);
          if (pd >= 0 &&
              dst.map(d).owner(g[static_cast<std::size_t>(d)]) !=
                  (*coord)[static_cast<std::size_t>(pd)]) {
            owns = false;
          }
        }
        if (owns) {
          outgoing[pi].push_back({f, src.at(g)});
        }
      }
    });
    for (std::size_t pi = 0; pi < peers.size(); ++pi) {
      if (peers[pi] == ctx.rank()) {
        self_pkts = std::move(outgoing[pi]);
        continue;
      }
      // kali-lint: allow(raw-exchange) — redistribute_reference is the
      // deliberately-naive all-pairs oracle/baseline; scheduling it would
      // destroy the very behaviour the differential tests benchmark.
      ctx.send_span<Packet>(peers[pi], kTagRedistData,
                            std::span<const Packet>(outgoing[pi]));
    }
    ctx.compute(static_cast<double>([&] {
      std::size_t n = self_pkts.size();
      for (const auto& v : outgoing) {
        n += v.size();
      }
      return n;
    }()));
  }
  if (in_dst) {
    for (int srank : src.view().ranks()) {
      if (srank == ctx.rank()) {
        for (const auto& p : self_pkts) {
          dst.at(detail::delinearize<R>(p.idx, ext)) = p.val;
        }
        ctx.compute(static_cast<double>(self_pkts.size()));
        continue;
      }
      // kali-lint: allow(raw-exchange) — reference-oracle receive (above).
      auto pkts = ctx.recv_vec<Packet>(srank, kTagRedistData);
      for (const auto& p : pkts) {
        dst.at(detail::delinearize<R>(p.idx, ext)) = p.val;
      }
      ctx.compute(static_cast<double>(pkts.size()));
    }
  }
}

}  // namespace kali

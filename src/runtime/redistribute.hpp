// Redistribution between arbitrary distributions of the same global array
// — the communication behind "a variety of distribution patterns can be
// tried by simple modifications of this program" (paper §2) and behind
// transpose-style tensor product algorithms (distributed FFT).
//
// Implementation: every source owner bins its elements by destination
// owner, counts are exchanged pairwise, then payloads; receivers scatter
// into their slabs.  This is the general "runtime resolution" path; block
// cases could use box intersection, but the general path keeps one code
// path for every (dist, view) combination at the modest cost of O(local n)
// index arithmetic.
#pragma once

#include <cstdint>

#include "runtime/dist_array.hpp"
#include "runtime/io.hpp"  // linearize

namespace kali {

inline constexpr int kTagRedistCount = (1 << 21);
inline constexpr int kTagRedistData = (1 << 21) + 1;

namespace detail {

/// Owner machine-rank of a global index under array `A`'s descriptor
/// (computable by any processor, member or not).
template <class T, int R>
int owner_rank(const DistArray<T, R>& A, GIndex<R> g) {
  std::array<int, kMaxProcDims> coord{};
  for (int d = 0; d < R; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (A.proc_dim(d) >= 0) {
      coord[static_cast<std::size_t>(A.proc_dim(d))] = A.map(d).owner(g[ud]);
    }
  }
  return A.view().rank_of(coord);
}

template <int R>
GIndex<R> delinearize(std::int64_t f, const GIndex<R>& ext) {
  GIndex<R> g{};
  for (int d = R - 1; d >= 0; --d) {
    const auto ud = static_cast<std::size_t>(d);
    g[ud] = static_cast<int>(f % ext[ud]);
    f /= ext[ud];
  }
  return g;
}

}  // namespace detail

/// Copy src's contents into dst (same global extents, any distributions /
/// views).  Collective over the union of both views' members.
/// For star (replicated) dims in dst, every replica receives a copy.
template <class T, int R>
void redistribute(Context& ctx, const DistArray<T, R>& src, DistArray<T, R>& dst) {
  GIndex<R> ext{};
  for (int d = 0; d < R; ++d) {
    KALI_CHECK(src.extent(d) == dst.extent(d), "redistribute: extent mismatch");
    ext[static_cast<std::size_t>(d)] = src.extent(d);
  }
  const bool in_src = src.participating();
  const bool in_dst = dst.participating();
  if (!in_src && !in_dst) {
    return;
  }

  // Destination replicas: for star dims in dst, all members along the
  // orthogonal grid dims need the element.  Enumerate destination ranks per
  // element via the dst view with star dims free.
  std::vector<int> dst_ranks_all = dst.view().ranks();

  // --- source side: bin owned elements by destination rank -------------
  struct Packet {
    std::int64_t idx;
    T val;
  };
  // Star dims in src mean several members own the same element; they all
  // send it and receivers overwrite with identical values — harmless, and
  // it keeps a single code path for every distribution combination.
  std::vector<std::vector<Packet>> outgoing;
  std::vector<int> peers;  // destination ranks, aligned with outgoing
  if (in_src) {
    peers = dst_ranks_all;
    outgoing.assign(peers.size(), {});
    src.for_each_owned([&](GIndex<R> g) {
      const std::int64_t f = linearize(src, g);
      // All dst replicas that own g:
      for (std::size_t pi = 0; pi < peers.size(); ++pi) {
        const int rank = peers[pi];
        const auto coord = dst.view().coord_of(rank);
        bool owns = true;
        for (int d = 0; d < R && owns; ++d) {
          const int pd = dst.proc_dim(d);
          if (pd >= 0 &&
              dst.map(d).owner(g[static_cast<std::size_t>(d)]) !=
                  (*coord)[static_cast<std::size_t>(pd)]) {
            owns = false;
          }
        }
        if (owns) {
          outgoing[pi].push_back({f, src.at(g)});
        }
      }
    });
  }

  // Every src member sends a (possibly empty) packet list to every dst
  // rank; every dst member receives one list from every src rank.
  if (in_src) {
    for (std::size_t pi = 0; pi < peers.size(); ++pi) {
      ctx.send_span<Packet>(peers[pi], kTagRedistData,
                            std::span<const Packet>(outgoing[pi]));
    }
    ctx.compute(static_cast<double>([&] {
      std::size_t n = 0;
      for (const auto& v : outgoing) {
        n += v.size();
      }
      return n;
    }()));
  }
  if (in_dst) {
    for (int srank : src.view().ranks()) {
      auto pkts = ctx.recv_vec<Packet>(srank, kTagRedistData);
      for (const auto& p : pkts) {
        dst.at(detail::delinearize<R>(p.idx, ext)) = p.val;
      }
      ctx.compute(static_cast<double>(pkts.size()));
    }
  }
}

}  // namespace kali

// Processor arrays and their slices (the paper's `processors procs(p, p)`).
//
// A ProcView is a shaped window onto the machine's flat rank space: a base
// rank plus (extent, stride) per dimension, up to 3 dimensions.  Slicing a
// view (`procs(ip, *)`, `procs(*, jp)`) produces another view — this is the
// mechanism by which "a slice of the processor array is passed along with a
// slice of the data array" to a parallel subroutine (paper, section 2).
//
// The full machine is the "real estate agent": exactly one root grid is made
// from the machine, and every other view is a slice of it.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "machine/group.hpp"

namespace kali {

class Context;

inline constexpr int kMaxProcDims = 3;

class ProcView {
 public:
  /// Empty view (no processors); default-constructed arrays use this.
  ProcView() = default;

  /// 1-D view of `p` consecutive ranks starting at `base`.
  static ProcView grid1(int p, int base = 0);

  /// 2-D row-major view: rank = base + i * py + j.
  static ProcView grid2(int px, int py, int base = 0);

  /// 3-D row-major view: rank = base + (i * py + j) * pz + k.
  static ProcView grid3(int px, int py, int pz, int base = 0);

  [[nodiscard]] int ndims() const { return ndims_; }
  [[nodiscard]] int extent(int d) const;
  [[nodiscard]] int count() const;

  /// Machine rank of the processor at `coord` (size must equal ndims()).
  [[nodiscard]] int rank_of(std::array<int, kMaxProcDims> coord) const;
  [[nodiscard]] int rank_of1(int i) const { return rank_of({i, 0, 0}); }
  [[nodiscard]] int rank_of2(int i, int j) const { return rank_of({i, j, 0}); }

  /// Coordinates of `rank` within this view, or nullopt if not a member.
  [[nodiscard]] std::optional<std::array<int, kMaxProcDims>> coord_of(int rank) const;

  [[nodiscard]] bool contains(int rank) const { return coord_of(rank).has_value(); }

  /// Fix dimension `dim` to `index`: rank drops by one (procs(ip, *) etc.).
  [[nodiscard]] ProcView fix(int dim, int index) const;

  /// Contiguous sub-range [lo, lo+len) along `dim`, same rank.
  [[nodiscard]] ProcView sub(int dim, int lo, int len) const;

  /// All member ranks in row-major coordinate order.
  [[nodiscard]] std::vector<int> ranks() const;

  /// Row-major linear index of `rank` within the view (must be a member).
  [[nodiscard]] int linear_index_of(int rank) const;

  /// Communication group over this view's members (self must be a member).
  [[nodiscard]] Group group(int self_rank) const;

  friend bool operator==(const ProcView& a, const ProcView& b);

 private:
  int base_ = 0;
  int ndims_ = 0;
  std::array<int, kMaxProcDims> extents_{};
  std::array<int, kMaxProcDims> strides_{};
};

}  // namespace kali

// Data distribution patterns (the paper's `dist (block, block)` clauses).
//
// A DimDist describes how one array dimension maps onto one processor-grid
// dimension: kStar leaves it undistributed (every member holds the whole
// extent — the `*` of the paper), kBlock gives each processor a contiguous
// slab, kCyclic deals elements round-robin ("especially useful in numerical
// linear algebra"), kBlockCyclic generalizes both.
//
// DimMap binds a pattern to a concrete (extent, nprocs) pair and provides
// the index algebra the KF1 compiler would generate: owner-of-global,
// global<->local translation, per-processor counts, and the paper's
// `lower`/`upper` intrinsic functions for block distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace kali {

enum class DistKind : std::uint8_t { kStar, kBlock, kCyclic, kBlockCyclic };

struct DimDist {
  DistKind kind = DistKind::kStar;
  int block = 1;  ///< block length for kBlockCyclic

  static DimDist star() { return {DistKind::kStar, 1}; }
  static DimDist block_dist() { return {DistKind::kBlock, 1}; }
  static DimDist cyclic() { return {DistKind::kCyclic, 1}; }
  static DimDist block_cyclic(int b) { return {DistKind::kBlockCyclic, b}; }
};

[[nodiscard]] std::string to_string(DistKind k);

/// Index algebra for one distributed dimension.
class DimMap {
 public:
  DimMap() = default;
  DimMap(DimDist dist, int extent, int nprocs);

  [[nodiscard]] DistKind kind() const { return dist_.kind; }
  [[nodiscard]] int extent() const { return extent_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }

  /// Processor coordinate owning global index g (0 for kStar).
  [[nodiscard]] int owner(int g) const;

  /// Local index of global g on its owner (g itself for kStar).
  [[nodiscard]] int local(int g) const;

  /// Global index of local l on processor coordinate c.
  [[nodiscard]] int global(int c, int l) const;

  /// Number of elements processor coordinate c owns.
  [[nodiscard]] int count(int c) const;

  /// First owned global index for block distributions (paper's `lower`).
  [[nodiscard]] int block_lower(int c) const;

  /// Last owned global index, inclusive (paper's `upper`).
  [[nodiscard]] int block_upper(int c) const;

  /// All global indices owned by c, ascending (any distribution kind).
  [[nodiscard]] std::vector<int> owned_indices(int c) const;

  /// True if [lo, hi] lies within a single owner's elements.
  [[nodiscard]] bool single_owner_range(int lo, int hi) const;

 private:
  DimDist dist_{};
  int extent_ = 0;
  int nprocs_ = 1;
  int block_ = 0;  ///< ceil(extent/nprocs) for kBlock; dist_.block*nprocs period otherwise
};

}  // namespace kali

// Model problems and shared numerics for the solver layer.
//
// The paper's running PDE (section 4):  a u_xx + b u_yy + c u = F  on the
// unit square (and its 3-D Poisson-like analogue in section 5), with
// homogeneous Dirichlet boundaries.  We manufacture exact solutions from
// sine modes so every solver can be validated against discretization-level
// accuracy.
#pragma once

#include <cmath>
#include <numbers>

#include "runtime/dist_array.hpp"
#include "runtime/doall.hpp"

namespace kali {

/// 2-D constant-coefficient operator  axx u_xx + ayy u_yy + sigma u  on a
/// uniform grid with spacings (hx, hy).
struct Op2 {
  double axx = 1.0;
  double ayy = 1.0;
  double sigma = 0.0;
  double hx = 1.0;
  double hy = 1.0;

  [[nodiscard]] double cx() const { return axx / (hx * hx); }
  [[nodiscard]] double cy() const { return ayy / (hy * hy); }
  [[nodiscard]] double diag() const { return sigma - 2.0 * cx() - 2.0 * cy(); }
};

/// 3-D analogue on spacings (hx, hy, hz).
struct Op3 {
  double axx = 1.0;
  double ayy = 1.0;
  double azz = 1.0;
  double sigma = 0.0;
  double hx = 1.0;
  double hy = 1.0;
  double hz = 1.0;

  [[nodiscard]] double cx() const { return axx / (hx * hx); }
  [[nodiscard]] double cy() const { return ayy / (hy * hy); }
  [[nodiscard]] double cz() const { return azz / (hz * hz); }
  [[nodiscard]] double diag() const {
    return sigma - 2.0 * (cx() + cy() + cz());
  }
  /// The plane operator seen by zebra relaxation on a z-plane.
  [[nodiscard]] Op2 plane_op() const {
    return Op2{axx, ayy, sigma - 2.0 * cz(), hx, hy};
  }
};

/// Manufactured smooth solution sin(pi x) sin(pi y) and the matching F.
inline double exact2(double x, double y) {
  return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y);
}
inline double rhs2(const Op2& op, double x, double y) {
  const double pi2 = std::numbers::pi * std::numbers::pi;
  return (-(op.axx + op.ayy) * pi2 + op.sigma) * exact2(x, y);
}

inline double exact3(double x, double y, double z) {
  return std::sin(std::numbers::pi * x) * std::sin(std::numbers::pi * y) *
         std::sin(std::numbers::pi * z);
}
inline double rhs3(const Op3& op, double x, double y, double z) {
  const double pi2 = std::numbers::pi * std::numbers::pi;
  return (-(op.axx + op.ayy + op.azz) * pi2 + op.sigma) * exact3(x, y, z);
}

/// Discrete L2 norm over a range product of a 2-D array (replicated result).
template <class T>
double norm2(const DistArray2<T>& a, Range ri, Range rj) {
  const double s =
      doall2_sum(a, ri, rj, [&](int i, int j) { return a(i, j) * a(i, j); });
  return std::sqrt(s);
}

}  // namespace kali

// ADI (Alternating Direction Implicit) iteration — paper §4, Listings 7-8.
//
// We use the Douglas/approximate-factorization residual form: implicit
// pseudo-time stepping of u_t = L u - f with the factored left-hand side,
// which keeps exactly the listings' structure while being an
// unconditionally convergent iteration for the model operator L = L1 + L2
// (L1 = a dxx + c/2, L2 = b dyy + c/2, both negative semi-definite):
//
//   r = tau * (L u - f)               -- resid (Jacobi-like communication)
//   (I - tau L2) v = r                -- tridiagonal solves in y direction
//   (I - tau L1) w = v                -- tridiagonal solves in x direction
//   u = u + w
//
// Listing 7 (adi):  each y-line/x-line solve is a call to the parallel
// constant-coefficient solver tric on a slice u(i,*) / v(*,j) over the
// processor row/column owning it.
//
// Listing 8 (madi): each processor row localizes its slab v(lo:hi, *) and
// calls the pipelined mtri so the log(p) tree phases of consecutive lines
// overlap — "better speed-ups with the pipelined version".
//
// Transpose variant: instead of distributed line solves, the direction
// switch is a data redistribution — r is remapped to dist (block, *) so
// every y-line solve is a purely local Thomas sweep, then to (*, block)
// for the x-direction, then back to (block, block).  This is the paper's
// "variety of distribution patterns can be tried by simple modifications"
// made concrete, and it exercises redistribute()'s box-intersection slab
// exchange on every iteration.
//
// Arrays hold the n x n interior with a zero Dirichlet ghost frame
// (dist (block, block) over procs(px, py), halo 1).
#pragma once

#include "runtime/dist_array.hpp"
#include "solvers/model.hpp"

namespace kali {

struct AdiOptions {
  Op2 op;             ///< operator coefficients a, b, c and spacings
  double tau = 0.05;  ///< pseudo-timestep of the factored iteration
  bool pipelined = false;  ///< Listing 8 (mtri) instead of Listing 7 (tric)
  bool transpose = false;  ///< direction switch by redistribution: remap to
                           ///< (block, *) / (*, block) so every line solve is
                           ///< local (overrides `pipelined`); requires the
                           ///< view to be a contiguous rank range
  /// kOn overlaps communication with compute: the residual's halo exchange
  /// runs split-phase (interior stencil between post and wait, boundary
  /// ring after), and in transpose mode the three redistributions hide
  /// their pack and self-overlap copies inside the wire window.  Results
  /// are bit-identical to kOff — same messages, same values; only clocks
  /// and the overlap counters move (tests/test_async.cpp).
  Overlap overlap = Overlap::kOff;
};

/// One ADI iteration; u and f are (block, block) over a 2-D view with
/// halo >= 1 on both dims.  Collective over the view.
void adi_iterate(const AdiOptions& opts, DistArray2<double>& u,
                 const DistArray2<double>& f);

/// ||f - L u||_2 over the interior (replicated on all members).
double adi_residual_norm(const Op2& op, const DistArray2<double>& u,
                         const DistArray2<double>& f);

/// Run `iters` iterations; returns the final residual norm.
double adi_solve(const AdiOptions& opts, DistArray2<double>& u,
                 const DistArray2<double>& f, int iters);

/// A reasonable default pseudo-timestep for the model operator on an n x n
/// interior grid (balances low and high frequency damping).
double adi_default_tau(const Op2& op, int n);

}  // namespace kali

// Three-dimensional multigrid with zebra plane relaxation and
// z-semicoarsening — the paper's mg3 (Listing 9) with intrp3 (Listing 10)
// and rest3/resid3.
//
// Arrays are boundary-inclusive, u(0:nx, 0:ny, 0:nz), dist (*, block, block)
// over procs(px, py) with halo (0, 1, 1).  The zebra relaxation visits even
// z-planes then odd z-planes; each plane solve is itself a tensor product
// multigrid algorithm: a call to mg2 on the plane slice u(*, *, k), which
// inherits the one-dimensional processor view procs(*, kp) — exactly the
// composition the paper's section 5 is about.
#pragma once

#include "runtime/dist_array.hpp"
#include "solvers/mg2.hpp"
#include "solvers/model.hpp"

namespace kali {

struct Mg3Options {
  int plane_cycles = 1;    ///< mg2 V-cycles per plane solve
  int gamma = 1;           ///< coarse-grid visits per cycle (1 = V, 2 = W)
  bool post_zebra = true;  ///< zebra sweep after the coarse correction
  Mg2Options plane_mg2{};  ///< settings for the inner mg2
  /// Batch each z-level switch's interpolation remap and the following halo
  /// exchange into one scheduled redistribution (see Mg2Options).
  bool fused_level_remap = true;
  /// Issue order for level-switch remap/redistribute messages.
  IssueOrder remap_order = IssueOrder::kRoundSchedule;
  /// kOn overlaps communication with compute (see Mg2Options::overlap): the
  /// residuals run their halo exchange split-phase with the interior
  /// stencil planes between post and wait, the fused restriction posts both
  /// z-level remaps before draining either, and the interpolation remap
  /// hides pack and self-overlap inside the wire window.  Results are
  /// bit-identical to kOff.  The inner plane solver's overlap is set
  /// separately via plane_mg2.overlap.
  Overlap overlap = Overlap::kOff;
};

/// One V-cycle on A u = f.  Collective over u's 2-D view.
void mg3_cycle(const Op3& op, DistArray3<double>& u, const DistArray3<double>& f,
               const Mg3Options& opts = {});

/// ||f - A u||_2 over interior points (replicated on all members).
double mg3_residual_norm(const Op3& op, const DistArray3<double>& u,
                         const DistArray3<double>& f);

/// Zebra plane half-sweep (parity 0: even planes, 1: odd planes); exposed
/// for tests and the smoother ablation bench.
void mg3_zebra_sweep(const Op3& op, DistArray3<double>& u,
                     const DistArray3<double>& f, int parity,
                     const Mg3Options& opts);

}  // namespace kali

#include "solvers/mg2.hpp"

#include <cmath>

#include "kernels/thomas.hpp"
#include "machine/context.hpp"
#include "runtime/doall.hpp"
#include "runtime/remap.hpp"
#include "support/check.hpp"

namespace kali {

namespace detail {
bool coarsenable(int npts, int nprocs) {
  DimMap m(DimDist::block_dist(), npts, nprocs);
  return m.count(nprocs - 1) >= 1;
}
}  // namespace detail

void mg2_zebra_sweep(const Op2& op, DistArray2<double>& u,
                     const DistArray2<double>& f, int parity,
                     Overlap overlap) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const int nx = u.extent(0) - 1;
  const int ny = u.extent(1) - 1;
  const double cx = op.cx(), cy = op.cy(), dg = op.diag();

  const int first = parity == 0 ? 2 : 1;
  const Range lines{first, ny - 1, 2};
  std::vector<double> rhs(static_cast<std::size_t>(nx - 1));
  std::vector<double> sol(rhs.size());
  auto solve_line = [&](int j) {
    // Line system along x:  cx u(i-1,j) + dg u(i,j) + cx u(i+1,j) = rhs.
    for (int i = 1; i <= nx - 1; ++i) {
      rhs[static_cast<std::size_t>(i - 1)] =
          f(i, j) - cy * (u.at_halo({i, j - 1}) + u.at_halo({i, j + 1}));
    }
    thomas_solve_const(cx, dg, cx, rhs, sol);
    for (int i = 1; i <= nx - 1; ++i) {
      u(i, j) = sol[static_cast<std::size_t>(i - 1)];
    }
    ctx.compute((kThomasFlopsPerRow + 4.0) * (nx - 1));
  };
  // Lines of the other colour feed the right-hand side; this colour's
  // lines never read each other, so the solve order is free.
  if (overlap == Overlap::kOn) {
    auto ex = u.exchange_halo_begin();
    doall_slice_ring(u, 1, lines, 1, Ring::kInterior, solve_line);
    ex.finish();
    doall_slice_ring(u, 1, lines, 1, Ring::kBoundary, solve_line);
  } else {
    u.exchange_halo();
    doall_slice_owner(u, 1, lines, solve_line);
  }
}

namespace {

/// r = f - A u on interior points (r's boundary stays zero).  Does u's
/// copy-in itself; Overlap::kOn runs the halo split-phase with the interior
/// stencil between post and wait.
void resid2(const Op2& op, const DistArray2<double>& u,
            const DistArray2<double>& f, DistArray2<double>& r,
            Overlap overlap) {
  const int nx = f.extent(0) - 1, ny = f.extent(1) - 1;
  const double cx = op.cx(), cy = op.cy(), dg = op.diag();
  auto uin = u.clone();
  auto body = [&](int i, int j) {
    const double au = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                      cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                      dg * uin.at_halo({i, j});
    r(i, j) = f(i, j) - au;
  };
  if (overlap == Overlap::kOn) {
    auto ex = uin.exchange_halo_begin();
    doall2_ring(uin, Range{1, nx - 1}, Range{1, ny - 1}, 1, Ring::kInterior,
                body, 10.0);
    ex.finish();
    doall2_ring(uin, Range{1, nx - 1}, Range{1, ny - 1}, 1, Ring::kBoundary,
                body, 10.0);
  } else {
    uin.exchange_halo();
    doall2(r, Range{1, nx - 1}, Range{1, ny - 1}, body, 10.0);
  }
}

}  // namespace

double mg2_residual_norm(const Op2& op, const DistArray2<double>& u,
                         const DistArray2<double>& f) {
  if (!u.participating()) {
    return 0.0;
  }
  auto uin = u.copy_in();
  const int nx = f.extent(0) - 1, ny = f.extent(1) - 1;
  const double cx = op.cx(), cy = op.cy(), dg = op.diag();
  const double s =
      doall2_sum(u, Range{1, nx - 1}, Range{1, ny - 1}, [&](int i, int j) {
        const double au = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                          cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                          dg * uin.at_halo({i, j});
        const double res = f(i, j) - au;
        return res * res;
      });
  return std::sqrt(s);
}

void mg2_cycle(const Op2& op, DistArray2<double>& u, const DistArray2<double>& f,
               const Mg2Options& opts) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const ProcView& pv = u.view();
  const int nx = u.extent(0) - 1;
  const int ny = u.extent(1) - 1;

  // perform zebra relaxation on even lines, then odd lines
  mg2_zebra_sweep(op, u, f, 0, opts.overlap);
  mg2_zebra_sweep(op, u, f, 1, opts.overlap);

  if (ny <= 2) {
    // Coarsest grid: the zebra sweep solves the single interior line
    // exactly; a few extra sweeps polish the x-y coupling.
    for (int s = 0; s < opts.coarsest_sweeps; ++s) {
      mg2_zebra_sweep(op, u, f, 1, opts.overlap);
    }
    return;
  }

  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::star(), DimDist::block_dist()};
  const int nyc = ny / 2;

  if (!detail::coarsenable(nyc + 1, pv.extent(0)) && pv.count() > 1) {
    // Block misalignment would leave a processor without rows: agglomerate
    // the correction problem A v = r onto one processor and run the
    // remaining levels there (standard practice on distributed memory).
    D2 r(ctx, pv, {nx + 1, ny + 1}, dists, {0, 1});
    resid2(op, u, f, r, opts.overlap);
    ProcView pv1 = ProcView::grid1(1, pv.rank_of1(0));
    const typename D2::Dists dists1{DimDist::star(), DimDist::block_dist()};
    D2 r1(ctx, pv1, {nx + 1, ny + 1}, dists1);
    redistribute(ctx, r, r1, opts.remap_order, opts.overlap);
    D2 v1(ctx, pv1, {nx + 1, ny + 1}, dists1, {0, 1});
    if (v1.participating()) {
      mg2_cycle(op, v1, r1, opts);
    }
    D2 v(ctx, pv, {nx + 1, ny + 1}, dists);
    redistribute(ctx, v1, v, opts.remap_order, opts.overlap);
    doall2(
        u, Range{1, nx - 1}, Range{1, ny - 1},
        [&](int i, int j) { u(i, j) += v(i, j); }, 1.0);
    return;
  }

  D2 r(ctx, pv, {nx + 1, ny + 1}, dists, {0, 1});
  resid2(op, u, f, r, opts.overlap);

  // rest2: full weighting in y at even fine lines, injected to coarse.
  D2 g(ctx, pv, {nx + 1, nyc + 1}, dists);
  if (opts.fused_level_remap) {
    // Fused path (mirror of the interpolation side below): split the fine
    // residual by line parity onto the coarse layout first, then weight on
    // the coarse side.  re(K) = r(2K) and ro(K) = r(2K+1); the weighting
    // stencil needs ro at K-1 and K, so ro travels through
    // copy_strided_dim_halo, which delivers those ghosts inside the remap
    // messages — no fine-grid halo exchange of r and no full-size gtmp.
    // g(i,K) = 0.25 r(2K-1) + 0.5 r(2K) + 0.25 r(2K+1) in the same
    // operation order as the unfused path, so the solution is bit-identical.
    D2 re(ctx, pv, {nx + 1, nyc + 1}, dists);
    D2 ro(ctx, pv, {nx + 1, nyc + 1}, dists, {0, 1});
    if (opts.overlap == Overlap::kOn) {
      // Pipeline the two level remaps: post re's receives and sends, then
      // ro's — re's wire drains while ro packs and both self-overlaps
      // copy — and drain them back to back.  Per (src, dst) lane the
      // kTagRemap messages still travel and match in re-then-ro order.
      auto ex_re =
          copy_strided_dim_begin(ctx, r, re, 1, /*s_stride=*/2, /*s_off=*/0,
                                 /*d_stride=*/1, /*d_off=*/0, nyc + 1,
                                 opts.remap_order);
      auto ex_ro = copy_strided_dim_halo_begin(
          ctx, r, ro, 1, /*s_stride=*/2, /*s_off=*/1,
          /*d_stride=*/1, /*d_off=*/0, nyc, opts.remap_order);
      ex_re.finish();
      ex_ro.finish();
    } else {
      copy_strided_dim(ctx, r, re, 1, /*s_stride=*/2, /*s_off=*/0,
                       /*d_stride=*/1, /*d_off=*/0, nyc + 1, opts.remap_order);
      copy_strided_dim_halo(ctx, r, ro, 1, /*s_stride=*/2, /*s_off=*/1,
                            /*d_stride=*/1, /*d_off=*/0, nyc,
                            opts.remap_order);
    }
    doall2(
        g, Range{1, nx - 1}, Range{1, nyc - 1},
        [&](int i, int K) {
          g(i, K) = 0.25 * ro.at_halo({i, K - 1}) + 0.5 * re(i, K) +
                    0.25 * ro.at_halo({i, K});
        },
        4.0);
  } else {
    r.exchange_halo();
    D2 gtmp(ctx, pv, {nx + 1, ny + 1}, dists);
    doall2(
        gtmp, Range{1, nx - 1}, Range{2, ny - 2, 2},
        [&](int i, int j) {
          gtmp(i, j) = 0.25 * r.at_halo({i, j - 1}) + 0.5 * r.at_halo({i, j}) +
                       0.25 * r.at_halo({i, j + 1});
        },
        4.0);
    copy_strided_dim(ctx, gtmp, g, 1, /*s_stride=*/2, /*s_off=*/0,
                     /*d_stride=*/1, /*d_off=*/0, nyc + 1, opts.remap_order);
  }

  D2 v(ctx, pv, {nx + 1, nyc + 1}, dists, {0, 1});
  Op2 coarse = op;
  coarse.hy = 2.0 * op.hy;
  mg2_cycle(coarse, v, g, opts);

  // intrp2: linear interpolation in y (Listing 10's 2-D analogue).  The
  // fused path delivers vtmp's even-line ghosts in the remap messages
  // themselves — one redistribution per level switch instead of a remap
  // round plus a halo round.
  D2 vtmp(ctx, pv, {nx + 1, ny + 1}, dists, {0, 1});
  auto even_update = [&](int i, int j) { u(i, j) += vtmp(i, j); };
  if (opts.fused_level_remap) {
    copy_strided_dim_halo(ctx, v, vtmp, 1, /*s_stride=*/1, /*s_off=*/0,
                          /*d_stride=*/2, /*d_off=*/0, nyc + 1,
                          opts.remap_order, opts.overlap);
    doall2(u, Range{1, nx - 1}, Range{2, ny - 2, 2}, even_update, 1.0);
  } else if (opts.overlap == Overlap::kOn) {
    // The even-line correction reads only vtmp's owned cells, so it rides
    // inside the separate halo exchange's wire window.
    copy_strided_dim(ctx, v, vtmp, 1, /*s_stride=*/1, /*s_off=*/0,
                     /*d_stride=*/2, /*d_off=*/0, nyc + 1, opts.remap_order,
                     opts.overlap);
    auto ex = vtmp.exchange_halo_begin();
    doall2(u, Range{1, nx - 1}, Range{2, ny - 2, 2}, even_update, 1.0);
    ex.finish();
  } else {
    copy_strided_dim(ctx, v, vtmp, 1, /*s_stride=*/1, /*s_off=*/0,
                     /*d_stride=*/2, /*d_off=*/0, nyc + 1, opts.remap_order);
    vtmp.exchange_halo();
    doall2(u, Range{1, nx - 1}, Range{2, ny - 2, 2}, even_update, 1.0);
  }
  doall2(
      u, Range{1, nx - 1}, Range{1, ny - 1, 2},
      [&](int i, int j) {
        u(i, j) += 0.5 * (vtmp.at_halo({i, j - 1}) + vtmp.at_halo({i, j + 1}));
      },
      3.0);
}

}  // namespace kali

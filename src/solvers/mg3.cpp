#include "solvers/mg3.hpp"

#include <cmath>

#include "machine/context.hpp"
#include "runtime/doall.hpp"
#include "runtime/remap.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

/// r = f - A u on interior points; r's boundary planes stay zero.  Does u's
/// copy-in itself: with Overlap::kOn the halo exchange runs split-phase, the
/// interior stencil cells hiding the wire, with the boundary ring after the
/// wait.
void resid3(const Op3& op, const DistArray3<double>& u,
            const DistArray3<double>& f, DistArray3<double>& r,
            Overlap overlap) {
  const int nx = f.extent(0) - 1, ny = f.extent(1) - 1, nz = f.extent(2) - 1;
  const double cx = op.cx(), cy = op.cy(), cz = op.cz(), dg = op.diag();
  auto uin = u.clone();
  auto body = [&](int i, int j, int k) {
    const double au =
        cx * (uin.at_halo({i - 1, j, k}) + uin.at_halo({i + 1, j, k})) +
        cy * (uin.at_halo({i, j - 1, k}) + uin.at_halo({i, j + 1, k})) +
        cz * (uin.at_halo({i, j, k - 1}) + uin.at_halo({i, j, k + 1})) +
        dg * uin.at_halo({i, j, k});
    r(i, j, k) = f(i, j, k) - au;
  };
  if (overlap == Overlap::kOn) {
    auto ex = uin.exchange_halo_begin();
    doall3_ring(uin, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1}, 1,
                Ring::kInterior, body, 14.0);
    ex.finish();
    doall3_ring(uin, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1}, 1,
                Ring::kBoundary, body, 14.0);
  } else {
    uin.exchange_halo();
    doall3(r, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1}, body, 14.0);
  }
}

}  // namespace

void mg3_zebra_sweep(const Op3& op, DistArray3<double>& u,
                     const DistArray3<double>& f, int parity,
                     const Mg3Options& opts) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const int nx = u.extent(0) - 1, ny = u.extent(1) - 1, nz = u.extent(2) - 1;

  // perform zebra relaxation on planes of this parity:
  //   call resid3(r, u, f; procs)
  //   doall k on owner(u(*, *, k)):  call mg2(u(*,*,k), r(*,*,k); ...)
  using D3 = DistArray3<double>;
  const typename D3::Dists dists3{DimDist::star(), DimDist::block_dist(),
                                  DimDist::block_dist()};
  D3 r(ctx, u.view(), {nx + 1, ny + 1, nz + 1}, dists3, {0, 1, 0});
  resid3(op, u, f, r, opts.overlap);

  const Op2 pop = op.plane_op();
  const int first = parity == 0 ? 2 : 1;
  doall_slice_owner(u, 2, Range{first, nz - 1, 2}, [&](int k) {
    auto uplane = u.fix(2, k);
    auto rplane = r.fix(2, k);
    // Correction form: the plane equation for the update delta is
    // A_plane delta = r|plane (off-plane couplings are already in r).
    DistArray2<double> delta(ctx, uplane.view(), {nx + 1, ny + 1},
                             {DimDist::star(), DimDist::block_dist()}, {0, 1});
    for (int cyc = 0; cyc < opts.plane_cycles; ++cyc) {
      mg2_cycle(pop, delta, rplane, opts.plane_mg2);
    }
    doall2(
        uplane, Range{1, nx - 1}, Range{1, ny - 1},
        [&](int i, int j) { uplane(i, j) += delta(i, j); }, 1.0);
  });
}

double mg3_residual_norm(const Op3& op, const DistArray3<double>& u,
                         const DistArray3<double>& f) {
  if (!u.participating()) {
    return 0.0;
  }
  auto uin = u.copy_in();
  const int nx = f.extent(0) - 1, ny = f.extent(1) - 1, nz = f.extent(2) - 1;
  const double cx = op.cx(), cy = op.cy(), cz = op.cz(), dg = op.diag();
  double local = 0.0;
  doall3(
      u, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1},
      [&](int i, int j, int k) {
        const double au =
            cx * (uin.at_halo({i - 1, j, k}) + uin.at_halo({i + 1, j, k})) +
            cy * (uin.at_halo({i, j - 1, k}) + uin.at_halo({i, j + 1, k})) +
            cz * (uin.at_halo({i, j, k - 1}) + uin.at_halo({i, j, k + 1})) +
            dg * uin.at_halo({i, j, k});
        const double res = f(i, j, k) - au;
        local += res * res;
      },
      15.0);
  Group g = u.group();
  return std::sqrt(allreduce_sum(u.context(), g, local));
}

void mg3_cycle(const Op3& op, DistArray3<double>& u, const DistArray3<double>& f,
               const Mg3Options& opts) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const ProcView& pv = u.view();
  const int nx = u.extent(0) - 1, ny = u.extent(1) - 1, nz = u.extent(2) - 1;

  // perform zebra relaxation on even planes, then odd planes
  mg3_zebra_sweep(op, u, f, 0, opts);
  mg3_zebra_sweep(op, u, f, 1, opts);

  // recursively solve the z-semicoarsened coarse grid problem
  if (nz <= 2) {
    return;  // the plane solve above already handled the single plane
  }
  const int nzc = nz / 2;

  using D3 = DistArray3<double>;
  const typename D3::Dists dists3{DimDist::star(), DimDist::block_dist(),
                                  DimDist::block_dist()};

  if (!detail::coarsenable(nzc + 1, pv.extent(1)) && pv.extent(1) > 1) {
    // Agglomerate the correction problem onto the first processor column
    // (z becomes single-owner; y stays distributed) and continue there.
    D3 r(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists3);
    resid3(op, u, f, r, opts.overlap);
    ProcView pvz = pv.sub(1, 0, 1);
    D3 r1(ctx, pvz, {nx + 1, ny + 1, nz + 1}, dists3);
    redistribute(ctx, r, r1, opts.remap_order, opts.overlap);
    D3 v1(ctx, pvz, {nx + 1, ny + 1, nz + 1}, dists3, {0, 1, 1});
    if (v1.participating()) {
      for (int c = 0; c < opts.gamma; ++c) {
        mg3_cycle(op, v1, r1, opts);
      }
    }
    D3 v(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists3);
    redistribute(ctx, v1, v, opts.remap_order, opts.overlap);
    doall3(
        u, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1},
        [&](int i, int j, int k) { u(i, j, k) += v(i, j, k); }, 1.0);
    return;
  }
  D3 r(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists3, {0, 0, 1});
  resid3(op, u, f, r, opts.overlap);

  // rest3: full weighting in z at even fine planes, injected to coarse.
  D3 g(ctx, pv, {nx + 1, ny + 1, nzc + 1}, dists3);
  if (opts.fused_level_remap) {
    // Fused path (mirror of intrp3 below): split the fine residual by plane
    // parity onto the coarse layout, then weight on the coarse side.
    // re(K) = r(2K), ro(K) = r(2K+1); ro rides copy_strided_dim_halo so the
    // stencil's K-1/K ghosts arrive inside the remap messages — no fine-grid
    // halo exchange of r and no full-size gtmp.  The weighting runs in the
    // unfused path's operation order, so the solution is bit-identical.
    D3 re(ctx, pv, {nx + 1, ny + 1, nzc + 1}, dists3);
    D3 ro(ctx, pv, {nx + 1, ny + 1, nzc + 1}, dists3, {0, 0, 1});
    if (opts.overlap == Overlap::kOn) {
      // Pipeline the two level remaps: post re's then ro's messages before
      // draining either.  Lane FIFO keeps each (src, dst, kTagRemap) lane's
      // re slab ahead of its ro slab, matching the blocking order.
      auto ex_re =
          copy_strided_dim_begin(ctx, r, re, 2, /*s_stride=*/2, /*s_off=*/0,
                                 /*d_stride=*/1, /*d_off=*/0, nzc + 1,
                                 opts.remap_order);
      auto ex_ro = copy_strided_dim_halo_begin(
          ctx, r, ro, 2, /*s_stride=*/2, /*s_off=*/1,
          /*d_stride=*/1, /*d_off=*/0, nzc, opts.remap_order);
      ex_re.finish();
      ex_ro.finish();
    } else {
      copy_strided_dim(ctx, r, re, 2, /*s_stride=*/2, /*s_off=*/0,
                       /*d_stride=*/1, /*d_off=*/0, nzc + 1, opts.remap_order);
      copy_strided_dim_halo(ctx, r, ro, 2, /*s_stride=*/2, /*s_off=*/1,
                            /*d_stride=*/1, /*d_off=*/0, nzc, opts.remap_order);
    }
    doall3(
        g, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nzc - 1},
        [&](int i, int j, int K) {
          g(i, j, K) = 0.25 * ro.at_halo({i, j, K - 1}) + 0.5 * re(i, j, K) +
                       0.25 * ro.at_halo({i, j, K});
        },
        4.0);
  } else {
    r.exchange_halo();
    D3 gtmp(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists3);
    doall3(
        gtmp, Range{1, nx - 1}, Range{1, ny - 1}, Range{2, nz - 2, 2},
        [&](int i, int j, int k) {
          gtmp(i, j, k) = 0.25 * r.at_halo({i, j, k - 1}) +
                          0.5 * r.at_halo({i, j, k}) +
                          0.25 * r.at_halo({i, j, k + 1});
        },
        4.0);
    copy_strided_dim(ctx, gtmp, g, 2, /*s_stride=*/2, /*s_off=*/0,
                     /*d_stride=*/1, /*d_off=*/0, nzc + 1, opts.remap_order);
  }

  D3 v(ctx, pv, {nx + 1, ny + 1, nzc + 1}, dists3, {0, 1, 1});
  Op3 coarse = op;
  coarse.hz = 2.0 * op.hz;
  for (int c = 0; c < opts.gamma; ++c) {
    mg3_cycle(coarse, v, g, opts);
  }

  // intrp3 (Listing 10): modify even planes, then odd planes.  The fused
  // path delivers vtmp's even-plane ghosts in the remap messages — one
  // redistribution per level switch instead of remap + halo rounds.
  D3 vtmp(ctx, pv, {nx + 1, ny + 1, nz + 1}, dists3, {0, 0, 1});
  auto even_update = [&](int i, int j, int k) { u(i, j, k) += vtmp(i, j, k); };
  if (opts.fused_level_remap) {
    copy_strided_dim_halo(ctx, v, vtmp, 2, /*s_stride=*/1, /*s_off=*/0,
                          /*d_stride=*/2, /*d_off=*/0, nzc + 1,
                          opts.remap_order, opts.overlap);
    doall3(u, Range{1, nx - 1}, Range{1, ny - 1}, Range{2, nz - 2, 2},
           even_update, 1.0);
  } else if (opts.overlap == Overlap::kOn) {
    copy_strided_dim(ctx, v, vtmp, 2, /*s_stride=*/1, /*s_off=*/0,
                     /*d_stride=*/2, /*d_off=*/0, nzc + 1, opts.remap_order,
                     opts.overlap);
    // The even-plane correction reads only owned vtmp cells, so it can run
    // while the z-halo is in flight; the odd planes (which read the ghosts)
    // follow the wait.
    auto ex = vtmp.exchange_halo_begin();
    doall3(u, Range{1, nx - 1}, Range{1, ny - 1}, Range{2, nz - 2, 2},
           even_update, 1.0);
    ex.finish();
  } else {
    copy_strided_dim(ctx, v, vtmp, 2, /*s_stride=*/1, /*s_off=*/0,
                     /*d_stride=*/2, /*d_off=*/0, nzc + 1, opts.remap_order);
    vtmp.exchange_halo();
    doall3(u, Range{1, nx - 1}, Range{1, ny - 1}, Range{2, nz - 2, 2},
           even_update, 1.0);
  }
  doall3(
      u, Range{1, nx - 1}, Range{1, ny - 1}, Range{1, nz - 1, 2},
      [&](int i, int j, int k) {
        u(i, j, k) += 0.5 * (vtmp.at_halo({i, j, k - 1}) + vtmp.at_halo({i, j, k + 1}));
      },
      3.0);

  if (opts.post_zebra) {
    mg3_zebra_sweep(op, u, f, 0, opts);
    mg3_zebra_sweep(op, u, f, 1, opts);
  }
}

}  // namespace kali

// Two-dimensional multigrid with zebra line relaxation and y-semicoarsening
// — the paper's mg2 (Listing 11), used standalone and as the plane solver
// inside mg3.
//
// Arrays are boundary-inclusive, u(0:nx, 0:ny), dist (*, block) over a 1-D
// processor view with halo 1 on the y dimension; boundary values are held
// at zero (homogeneous Dirichlet).  nx and ny must be powers of two.
//
// One cycle =
//   zebra relaxation on even lines   (tridiagonal solves along x: seqtri)
//   zebra relaxation on odd lines
//   coarse grid correction on the y-semicoarsened grid (recursive), via
//     rest2 (full weighting in y) and intrp2 (linear interpolation in y,
//     Listing 10's 2-D analogue)
// Recursion stops when the coarse grid would leave a processor without
// rows; the coarsest level compensates with extra zebra sweeps.
#pragma once

#include "runtime/dist_array.hpp"
#include "solvers/model.hpp"

namespace kali {

struct Mg2Options {
  int coarsest_sweeps = 4;  ///< extra zebra sweeps when recursion stops
  /// Batch each level switch's interpolation remap and the following halo
  /// exchange into one scheduled redistribution (copy_strided_dim_halo),
  /// roughly halving the level-switch message count.  Off reproduces the
  /// separate remap + halo rounds — bit-identical results either way (kept
  /// for differential tests and benching).
  bool fused_level_remap = true;
  /// Issue order for level-switch remap/redistribute messages (all level
  /// switches go through the CommSchedule rounds; kLockstep additionally
  /// caps resident mailbox memory at depth).
  IssueOrder remap_order = IssueOrder::kRoundSchedule;
  /// kOn overlaps communication with compute: the zebra sweeps run their
  /// halo exchange split-phase (interior lines solved between post and
  /// wait, boundary lines after), the residual does the same, the fused
  /// restriction posts both level-switch remaps before draining either,
  /// and the interpolation remap hides its pack and self-overlap copies
  /// inside the wire window.  Results are bit-identical to kOff — same
  /// messages, same values; only clocks and the overlap counters move
  /// (tests/test_async.cpp).
  Overlap overlap = Overlap::kOff;
};

/// One V-cycle on A u = f for the operator `op` (hx, hy are this level's
/// spacings).  Collective over u's view.
void mg2_cycle(const Op2& op, DistArray2<double>& u, const DistArray2<double>& f,
               const Mg2Options& opts = {});

/// ||f - A u||_2 over interior points (replicated on all members).
double mg2_residual_norm(const Op2& op, const DistArray2<double>& u,
                         const DistArray2<double>& f);

/// One zebra half-sweep (parity 0: even lines, 1: odd lines).  Lines of
/// one parity are mutually independent (each reads only the other colour),
/// so Overlap::kOn solves the interior lines while the halo drains and the
/// two boundary lines after the wait — bit-identical to the blocking sweep.
void mg2_zebra_sweep(const Op2& op, DistArray2<double>& u,
                     const DistArray2<double>& f, int parity,
                     Overlap overlap = Overlap::kOff);

namespace detail {
/// True if a block distribution of `npts` points over `nprocs` leaves every
/// processor at least one point (so halos stay well-formed).
bool coarsenable(int npts, int nprocs);
}  // namespace detail

}  // namespace kali

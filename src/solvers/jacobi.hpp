// The paper's running example, three ways (Listings 1-3):
//
//   jacobi_seq  — sequential Fortran style (Listing 1)
//   jacobi_mp   — hand-written message passing node program (Listing 2):
//                 plain local (m+2)^2 arrays, explicit guarded send/recv of
//                 the four edges each iteration
//   jacobi_kf1  — KF1 constructs (Listing 3): a distributed array with a
//                 (block, block) clause and a doall on owner(X(i,j)); the
//                 copy-in/copy-out temporary and all communication are
//                 produced by the runtime
//
// All three compute bit-identical iterates of
//   X(i,j) = 0.25*(X(i+1,j) + X(i-1,j) + X(i,j+1) + X(i,j-1)) - f(i,j)
// over the n x n interior with a zero boundary frame, so E1 can compare
// simulated time, message counts, and source-code length on equal numerics.
#pragma once

#include <functional>
#include <vector>

#include "machine/context.hpp"
#include "runtime/proc_view.hpp"

namespace kali {

/// Modeled flops per stencil update (4 adds, 1 multiply, 1 subtract).
inline constexpr double kJacobiFlopsPerPoint = 6.0;

/// Right-hand side supplier: f(i, j) for interior indices 0..n-1.
using JacobiRhs = std::function<double(int, int)>;

/// Listing 1.  Runs on the calling processor only; returns the interior
/// after `iters` iterations, row-major n x n.
std::vector<double> jacobi_seq(Context& ctx, int n, const JacobiRhs& f,
                               int iters);

/// Listing 2.  SPMD over the p x p view `procs`; n must be divisible by p.
/// Returns the gathered interior on the view's first processor (empty
/// elsewhere).  Pass collect = false to skip the verification gather (for
/// timing runs that should measure only the iteration itself).
std::vector<double> jacobi_mp(Context& ctx, const ProcView& procs, int n,
                              const JacobiRhs& f, int iters,
                              bool collect = true);

/// Listing 3.  Same contract as jacobi_mp, via the KF1 runtime constructs.
std::vector<double> jacobi_kf1(Context& ctx, const ProcView& procs, int n,
                               const JacobiRhs& f, int iters,
                               bool collect = true);

}  // namespace kali

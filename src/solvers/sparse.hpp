// Distributed general sparse matrices — the paper's stated next step:
//
//   §6: "the usability and generality of programming constructs ... will be
//   determined largely by their success on more complex problems, such as
//   those involving adaptive or irregular grids and general sparse
//   matrices.  We are addressing these issues in the Kali project as well."
//
// This module is that Kali companion work (refs [2], [17]: Koelbel/Saltz
// runtime scheduling) built on this repository's constructs: rows are
// block-distributed; the irregular column accesses of y = A x are served by
// a GatherPlan built once by the inspector and replayed by the executor
// every iteration — the schedule-reuse idea the PARTI/Kali line pioneered.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "runtime/dist_array.hpp"
#include "runtime/inspector.hpp"

namespace kali {

/// One sparse row: (column, value) pairs, any order, no duplicates.
using SparseRowFn =
    std::function<std::vector<std::pair<int, double>>(int global_row)>;

/// Square sparse matrix with rows distributed like a 1-D block template.
class DistCsrMatrix {
 public:
  /// Collective over `tmpl`'s view: each member assembles its owned rows
  /// and the inspector builds the gather schedule for the column pattern.
  DistCsrMatrix(const DistArray1<double>& tmpl, const SparseRowFn& rows);

  /// y = A x.  x and y must share the template's extent/distribution/view.
  /// Executor-only: no index arithmetic or schedule traffic is repeated.
  void multiply(const DistArray1<double>& x, DistArray1<double>& y) const;

  [[nodiscard]] int extent() const { return n_; }
  [[nodiscard]] std::size_t local_nonzeros() const { return vals_.size(); }

  /// Values this member fetches from peers per multiply (schedule volume).
  [[nodiscard]] std::size_t gather_volume() const { return plan_.send_volume(); }

  /// Local diagonal entries by owned-row order (for Jacobi-type smoothers).
  [[nodiscard]] const std::vector<double>& diagonal() const { return diag_; }

 private:
  int n_ = 0;
  ProcView view_;
  std::vector<int> row_ptr_;   // CSR over owned rows
  std::vector<int> cols_;      // global column ids
  std::vector<double> vals_;
  std::vector<double> diag_;
  GatherPlan plan_;            // inspector result for `cols_`
};

/// Weighted Jacobi iteration x += omega D^{-1} (b - A x); returns the final
/// residual 2-norm.  Collective.
double sparse_jacobi(const DistCsrMatrix& A, const DistArray1<double>& b,
                     DistArray1<double>& x, int iters, double omega = 0.8);

/// Conjugate gradients for SPD A; returns the iteration count used
/// (<= max_iters) after reaching ||r|| <= rtol * ||b||.  Collective.
int sparse_cg(const DistCsrMatrix& A, const DistArray1<double>& b,
              DistArray1<double>& x, double rtol, int max_iters);

}  // namespace kali

// Listing 2: the hand-written message-passing Jacobi node program.
//
// This is deliberately written the way a 1989 programmer would: raw local
// arrays with a ghost frame, explicitly guarded sends and receives of the
// four edges, manual index arithmetic.  It is the baseline against which E1
// compares the KF1 version's performance and E7 its length.
#include <vector>

#include "machine/collectives.hpp"
#include "solvers/jacobi.hpp"
#include "support/check.hpp"

namespace kali {

namespace {
constexpr int kTagN = 100;  // edge travelling north (to smaller ip)
constexpr int kTagS = 101;
constexpr int kTagW = 102;
constexpr int kTagE = 103;
}  // namespace

std::vector<double> jacobi_mp(Context& ctx, const ProcView& procs, int n,
                              const JacobiRhs& f, int iters, bool collect) {
  KALI_CHECK(procs.ndims() == 2, "jacobi_mp: need a 2-D processor array");
  const int p = procs.extent(0);
  KALI_CHECK(procs.extent(1) == p, "jacobi_mp: processor array must be square");
  KALI_CHECK(n % p == 0, "jacobi_mp: n must divide by p");
  if (!procs.contains(ctx.rank())) {
    return {};
  }
  const auto coord = *procs.coord_of(ctx.rank());
  const int ip = coord[0], jp = coord[1];
  const int m = n / p;
  const int mp = m + 2;  // local array (0:m+1, 0:m+1)

  std::vector<double> x(static_cast<std::size_t>(mp * mp), 0.0);
  std::vector<double> tmp(x.size(), 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(m * m));
  auto X = [&](int i, int j) -> double& {
    return x[static_cast<std::size_t>(i * mp + j)];
  };
  auto T = [&](int i, int j) -> double& {
    return tmp[static_cast<std::size_t>(i * mp + j)];
  };
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      rhs[static_cast<std::size_t>(i * m + j)] = f(ip * m + i, jp * m + j);
    }
  }

  std::vector<double> edge(static_cast<std::size_t>(m));
  for (int it = 0; it < iters; ++it) {
    // copy interior of solution array into the temporary array
    for (int i = 1; i <= m; ++i) {
      for (int j = 1; j <= m; ++j) {
        T(i, j) = X(i, j);
      }
    }
    ctx.compute(static_cast<double>(m) * m);

    // send edge values to North, South, West and East neighbours
    if (ip > 0) {
      for (int j = 1; j <= m; ++j) {
        edge[static_cast<std::size_t>(j - 1)] = X(1, j);
      }
      ctx.send_span<double>(procs.rank_of2(ip - 1, jp), kTagN, edge);
    }
    if (ip < p - 1) {
      for (int j = 1; j <= m; ++j) {
        edge[static_cast<std::size_t>(j - 1)] = X(m, j);
      }
      ctx.send_span<double>(procs.rank_of2(ip + 1, jp), kTagS, edge);
    }
    if (jp > 0) {
      for (int i = 1; i <= m; ++i) {
        edge[static_cast<std::size_t>(i - 1)] = X(i, 1);
      }
      ctx.send_span<double>(procs.rank_of2(ip, jp - 1), kTagW, edge);
    }
    if (jp < p - 1) {
      for (int i = 1; i <= m; ++i) {
        edge[static_cast<std::size_t>(i - 1)] = X(i, m);
      }
      ctx.send_span<double>(procs.rank_of2(ip, jp + 1), kTagE, edge);
    }
    ctx.compute(4.0 * m);  // edge packing

    // receive edge values from neighbours (into the temporary's frame)
    if (ip < p - 1) {
      ctx.recv_into<double>(procs.rank_of2(ip + 1, jp), kTagN, edge);
      for (int j = 1; j <= m; ++j) {
        T(m + 1, j) = edge[static_cast<std::size_t>(j - 1)];
      }
    }
    if (ip > 0) {
      ctx.recv_into<double>(procs.rank_of2(ip - 1, jp), kTagS, edge);
      for (int j = 1; j <= m; ++j) {
        T(0, j) = edge[static_cast<std::size_t>(j - 1)];
      }
    }
    if (jp < p - 1) {
      ctx.recv_into<double>(procs.rank_of2(ip, jp + 1), kTagW, edge);
      for (int i = 1; i <= m; ++i) {
        T(i, m + 1) = edge[static_cast<std::size_t>(i - 1)];
      }
    }
    if (jp > 0) {
      ctx.recv_into<double>(procs.rank_of2(ip, jp - 1), kTagE, edge);
      for (int i = 1; i <= m; ++i) {
        T(i, 0) = edge[static_cast<std::size_t>(i - 1)];
      }
    }
    ctx.compute(4.0 * m);  // edge unpacking

    // update solution array X
    for (int i = 1; i <= m; ++i) {
      for (int j = 1; j <= m; ++j) {
        X(i, j) = 0.25 * (T(i + 1, j) + T(i - 1, j) + T(i, j + 1) + T(i, j - 1)) -
                  rhs[static_cast<std::size_t>((i - 1) * m + (j - 1))];
      }
    }
    ctx.compute(kJacobiFlopsPerPoint * m * m);
  }

  if (!collect) {
    return {};
  }
  // Gather the interior on processor (0, 0) for verification.
  std::vector<double> mine(static_cast<std::size_t>(m * m));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      mine[static_cast<std::size_t>(i * m + j)] = X(i + 1, j + 1);
    }
  }
  Group g = procs.group(ctx.rank());
  auto blocks = gather(ctx, g, 0, std::span<const double>(mine));
  if (g.index() != 0) {
    return {};
  }
  std::vector<double> full(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int q = 0; q < p * p; ++q) {
    const int qi = q / p, qj = q % p;
    const double* blk = blocks.data() + static_cast<std::ptrdiff_t>(q) * m * m;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        full[static_cast<std::size_t>((qi * m + i) * n + qj * m + j)] =
            blk[i * m + j];
      }
    }
  }
  return full;
}

}  // namespace kali

#include "solvers/adi_var.hpp"

#include <cmath>
#include <numbers>

#include "kernels/mtri.hpp"
#include "kernels/tri.hpp"
#include "machine/context.hpp"
#include "runtime/doall.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

/// L u at interior point (i, j) given halo'd u.
double apply_op(const AdiVarWorkspace& ws, const DistArray2<double>& uin,
                int i, int j) {
  const double cai = ws.ca(i, j);
  const double cbi = ws.cb(i, j);
  const double diag = ws.cc(i, j) - 2.0 * cai - 2.0 * cbi;
  return cai * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
         cbi * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
         diag * uin.at_halo({i, j});
}

}  // namespace

AdiVarWorkspace::AdiVarWorkspace(const AdiVarOptions& opts,
                                 const DistArray2<double>& u)
    : opts_(opts) {
  KALI_CHECK(opts.a && opts.b && opts.c, "adi_var: coefficient fns required");
  Context& ctx = u.context();
  const int nx = u.extent(0), ny = u.extent(1);
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  ca = D2(ctx, u.view(), {nx, ny}, dists);
  cb = D2(ctx, u.view(), {nx, ny}, dists);
  cc = D2(ctx, u.view(), {nx, ny}, dists);
  const double hx2 = opts.hx * opts.hx, hy2 = opts.hy * opts.hy;
  ca.fill([&](std::array<int, 2> g) {
    return opts_.a((g[0] + 1) * opts_.hx, (g[1] + 1) * opts_.hy) / hx2;
  });
  cb.fill([&](std::array<int, 2> g) {
    return opts_.b((g[0] + 1) * opts_.hx, (g[1] + 1) * opts_.hy) / hy2;
  });
  cc.fill([&](std::array<int, 2> g) {
    return opts_.c((g[0] + 1) * opts_.hx, (g[1] + 1) * opts_.hy);
  });
  ctx.compute(6.0 * ca.local_count(0) * ca.local_count(1));
}

double adi_var_residual_norm(const AdiVarWorkspace& ws,
                             const DistArray2<double>& u,
                             const DistArray2<double>& f) {
  if (!u.participating()) {
    return 0.0;
  }
  auto uin = u.copy_in();
  const int nx = f.extent(0), ny = f.extent(1);
  const double s =
      doall2_sum(u, Range{0, nx - 1}, Range{0, ny - 1}, [&](int i, int j) {
        const double res = f(i, j) - apply_op(ws, uin, i, j);
        return res * res;
      });
  return std::sqrt(s);
}

void adi_var_iterate(const AdiVarWorkspace& ws, DistArray2<double>& u,
                     const DistArray2<double>& f) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const double tau = ws.options().tau;
  const int nx = u.extent(0), ny = u.extent(1);
  KALI_CHECK(u.halo(0) >= 1 && u.halo(1) >= 1, "adi_var: u needs halo 1");

  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 r(ctx, u.view(), {nx, ny}, dists);
  D2 v(ctx, u.view(), {nx, ny}, dists);
  D2 w(ctx, u.view(), {nx, ny}, dists);

  // r = tau (L u - f).
  auto uin = u.copy_in();
  doall2(
      r, Range{0, nx - 1}, Range{0, ny - 1},
      [&](int i, int j) { r(i, j) = tau * (apply_op(ws, uin, i, j) - f(i, j)); },
      12.0);

  // (I - tau L2) coefficients along y: L2 = b dyy + c/2 (per-row values).
  D2 blo(ctx, u.view(), {nx, ny}, dists);
  D2 bdi(ctx, u.view(), {nx, ny}, dists);
  doall2(
      blo, Range{0, nx - 1}, Range{0, ny - 1},
      [&](int i, int j) {
        blo(i, j) = -tau * ws.cb(i, j);
        bdi(i, j) = 1.0 + 2.0 * tau * ws.cb(i, j) - 0.5 * tau * ws.cc(i, j);
      },
      5.0);
  // (I - tau L1) along x.
  D2 alo(ctx, u.view(), {nx, ny}, dists);
  D2 adi(ctx, u.view(), {nx, ny}, dists);
  doall2(
      alo, Range{0, nx - 1}, Range{0, ny - 1},
      [&](int i, int j) {
        alo(i, j) = -tau * ws.ca(i, j);
        adi(i, j) = 1.0 + 2.0 * tau * ws.ca(i, j) - 0.5 * tau * ws.cc(i, j);
      },
      5.0);

  if (!ws.options().pipelined) {
    // Listing 7 structure with the general solver: tri per line.
    doall_slice_owner(r, 0, Range{0, nx - 1}, [&](int i) {
      auto b1 = blo.fix(0, i);
      auto a1 = bdi.fix(0, i);
      auto r1 = r.fix(0, i);
      auto v1 = v.fix(0, i);
      tri(b1, a1, b1, r1, v1);
    });
    doall_slice_owner(v, 1, Range{0, ny - 1}, [&](int j) {
      auto b1 = alo.fix(1, j);
      auto a1 = adi.fix(1, j);
      auto v1 = v.fix(1, j);
      auto w1 = w.fix(1, j);
      tri(b1, a1, b1, v1, w1);
    });
  } else {
    // Listing 8 structure: every processor row/column pipelines its slab.
    {
      const int lo = r.own_lower(0);
      const int cnt = r.local_count(0);
      auto bs = blo.localize(0, lo, cnt);
      auto as = bdi.localize(0, lo, cnt);
      auto rs = r.localize(0, lo, cnt);
      auto vs = v.localize(0, lo, cnt);
      mtri(bs, as, bs, rs, vs, /*system_dim=*/0);
    }
    {
      const int lo = v.own_lower(1);
      const int cnt = v.local_count(1);
      auto bs = alo.localize(1, lo, cnt);
      auto as = adi.localize(1, lo, cnt);
      auto vs = v.localize(1, lo, cnt);
      auto wsl = w.localize(1, lo, cnt);
      mtri(bs, as, bs, vs, wsl, /*system_dim=*/1);
    }
  }

  doall2(
      u, Range{0, nx - 1}, Range{0, ny - 1},
      [&](int i, int j) { u(i, j) += w(i, j); }, 1.0);
}

double adi_var_default_tau(const AdiVarWorkspace& ws) {
  // Extremes of the coefficient fields over the local block, reduced over
  // the view: tau* = 2 / sqrt(lmin * lmax).
  const DistArray2<double>& ca = ws.ca;
  double cmax = 0.0;
  ca.for_each_owned([&](std::array<int, 2> g) {
    cmax = std::max({cmax, ca.at(g), ws.cb.at(g)});
  });
  Group g = ca.group();
  cmax = allreduce_max(ca.context(), g, cmax);
  const double pi2 = std::numbers::pi * std::numbers::pi;
  const double lmin = pi2;  // smooth-mode estimate for unit-order a, b
  const double lmax = 4.0 * cmax;
  return 2.0 / std::sqrt(lmin * lmax);
}

}  // namespace kali

// Variable-coefficient ADI — the paper's §4 remark made concrete:
// "Programming ADI with variable coefficients is not much different,
// except that there are a number of additional details not germane to
// this paper."
//
// Solves  a(x,y) u_xx + b(x,y) u_yy + c(x,y) u = F  with the same factored
// residual iteration as solvers/adi.hpp, except that the tridiagonal line
// systems now carry per-row coefficients, so each line solve calls the
// general `tri` (Listing 4) instead of the constant-coefficient `tric` —
// and the pipelined variant calls the general `mtri` (Listing 6).
#pragma once

#include <functional>

#include "runtime/dist_array.hpp"

namespace kali {

/// Pointwise coefficient field evaluated at grid coordinates (x, y).
using CoefFn = std::function<double(double, double)>;

struct AdiVarOptions {
  CoefFn a;            ///< u_xx coefficient (positive)
  CoefFn b;            ///< u_yy coefficient (positive)
  CoefFn c;            ///< zeroth-order coefficient (non-positive)
  double tau = 0.05;   ///< pseudo-timestep
  bool pipelined = false;
  double hx = 1.0;     ///< grid spacings (interior-point convention)
  double hy = 1.0;
};

/// Precomputed coefficient arrays for a given grid/distribution; build once
/// and reuse across iterations ("setup" in a production solver).
class AdiVarWorkspace {
 public:
  /// Collective over u's view; u supplies extents/distribution template.
  AdiVarWorkspace(const AdiVarOptions& opts, const DistArray2<double>& u);

  [[nodiscard]] const AdiVarOptions& options() const { return opts_; }

  // Operator coefficient fields at each interior point.
  DistArray2<double> ca;  ///< a(x,y) / hx^2
  DistArray2<double> cb;  ///< b(x,y) / hy^2
  DistArray2<double> cc;  ///< c(x,y)

 private:
  AdiVarOptions opts_;
};

/// One iteration of the factored residual scheme; u needs halo 1 on both
/// dims.  Collective over the view.
void adi_var_iterate(const AdiVarWorkspace& ws, DistArray2<double>& u,
                     const DistArray2<double>& f);

/// ||f - L u||_2 over the interior (replicated).
double adi_var_residual_norm(const AdiVarWorkspace& ws,
                             const DistArray2<double>& u,
                             const DistArray2<double>& f);

/// Heuristic pseudo-timestep (uses the coefficient extremes over the grid).
double adi_var_default_tau(const AdiVarWorkspace& ws);

}  // namespace kali

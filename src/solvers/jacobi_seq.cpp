// Listing 1: the sequential Jacobi iteration.
#include <vector>

#include "solvers/jacobi.hpp"
#include "support/check.hpp"

namespace kali {

std::vector<double> jacobi_seq(Context& ctx, int n, const JacobiRhs& f,
                               int iters) {
  KALI_CHECK(n >= 1, "jacobi: bad size");
  // X(0:np, 0:np) with np = n+1: interior 1..n, zero boundary ring.
  const int np = n + 2;
  std::vector<double> x(static_cast<std::size_t>(np * np), 0.0);
  std::vector<double> rhs(static_cast<std::size_t>(n * n));
  auto X = [&](int i, int j) -> double& {
    return x[static_cast<std::size_t>(i * np + j)];
  };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      rhs[static_cast<std::size_t>(i * n + j)] = f(i, j);
    }
  }
  std::vector<double> tmp = x;
  auto T = [&](int i, int j) -> double& {
    return tmp[static_cast<std::size_t>(i * np + j)];
  };
  for (int it = 0; it < iters; ++it) {
    // copy solution into a temporary array
    tmp = x;
    ctx.compute(static_cast<double>(n) * n);
    // update solution array
    for (int i = 1; i <= n; ++i) {
      for (int j = 1; j <= n; ++j) {
        X(i, j) = 0.25 * (T(i + 1, j) + T(i - 1, j) + T(i, j + 1) + T(i, j - 1)) -
                  rhs[static_cast<std::size_t>((i - 1) * n + (j - 1))];
      }
    }
    ctx.compute(kJacobiFlopsPerPoint * n * n);
  }
  std::vector<double> out(static_cast<std::size_t>(n * n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      out[static_cast<std::size_t>(i * n + j)] = X(i + 1, j + 1);
    }
  }
  return out;
}

}  // namespace kali

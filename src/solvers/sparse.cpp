#include "solvers/sparse.hpp"

#include <cmath>

#include "machine/collectives.hpp"
#include "machine/context.hpp"
#include "support/check.hpp"

namespace kali {

DistCsrMatrix::DistCsrMatrix(const DistArray1<double>& tmpl,
                             const SparseRowFn& rows)
    : n_(tmpl.extent(0)), view_(tmpl.view()) {
  KALI_CHECK(tmpl.dist_kind(0) == DistKind::kBlock,
             "sparse: rows must be block distributed");
  if (!tmpl.participating()) {
    return;
  }
  Context& ctx = tmpl.context();
  const int lo = tmpl.own_lower(0);
  const int m = tmpl.local_count(0);
  row_ptr_.reserve(static_cast<std::size_t>(m) + 1);
  diag_.assign(static_cast<std::size_t>(m), 0.0);
  row_ptr_.push_back(0);
  for (int l = 0; l < m; ++l) {
    const int i = lo + l;
    for (const auto& [col, val] : rows(i)) {
      KALI_CHECK(col >= 0 && col < n_, "sparse: column out of range");
      cols_.push_back(col);
      vals_.push_back(val);
      if (col == i) {
        diag_[static_cast<std::size_t>(l)] = val;
      }
    }
    row_ptr_.push_back(static_cast<int>(cols_.size()));
  }
  ctx.compute(static_cast<double>(cols_.size()));  // assembly pass
  // Inspector: the gather schedule for exactly this column pattern.
  plan_ = GatherPlan::build(tmpl, cols_);
}

void DistCsrMatrix::multiply(const DistArray1<double>& x,
                             DistArray1<double>& y) const {
  KALI_CHECK(x.extent(0) == n_ && y.extent(0) == n_, "sparse: extent mismatch");
  if (!x.participating()) {
    return;
  }
  Context& ctx = x.context();
  // Executor: fetch the operand values in column order.
  const std::vector<double> xv = plan_.execute(x);
  auto ys = y.local_strided();
  const int m = static_cast<int>(row_ptr_.size()) - 1;
  KALI_CHECK(ys.n == m, "sparse: result layout mismatch");
  for (int l = 0; l < m; ++l) {
    double acc = 0.0;
    for (int k = row_ptr_[static_cast<std::size_t>(l)];
         k < row_ptr_[static_cast<std::size_t>(l) + 1]; ++k) {
      acc += vals_[static_cast<std::size_t>(k)] * xv[static_cast<std::size_t>(k)];
    }
    ys[l] = acc;
  }
  ctx.compute(2.0 * static_cast<double>(vals_.size()));
}

namespace {

double dot(Context& ctx, const Group& g, const DistArray1<double>& a,
           const DistArray1<double>& b) {
  auto as = a.local_strided();
  auto bs = b.local_strided();
  double local = 0.0;
  for (int l = 0; l < as.n; ++l) {
    local += as[l] * bs[l];
  }
  ctx.compute(2.0 * as.n);
  return allreduce_sum(ctx, g, local);
}

}  // namespace

double sparse_jacobi(const DistCsrMatrix& A, const DistArray1<double>& b,
                     DistArray1<double>& x, int iters, double omega) {
  if (!x.participating()) {
    return 0.0;
  }
  Context& ctx = x.context();
  Group g = x.group();
  DistArray1<double> ax = x.clone();
  const auto& diag = A.diagonal();
  for (int it = 0; it < iters; ++it) {
    A.multiply(x, ax);
    auto xs = x.local_strided();
    auto axs = ax.local_strided();
    auto bs = b.local_strided();
    for (int l = 0; l < xs.n; ++l) {
      KALI_CHECK(diag[static_cast<std::size_t>(l)] != 0.0,
                 "sparse_jacobi: zero diagonal");
      xs[l] += omega * (bs[l] - axs[l]) / diag[static_cast<std::size_t>(l)];
    }
    ctx.compute(3.0 * xs.n);
  }
  A.multiply(x, ax);
  auto axs = ax.local_strided();
  auto bs = b.local_strided();
  double local = 0.0;
  for (int l = 0; l < axs.n; ++l) {
    const double r = bs[l] - axs[l];
    local += r * r;
  }
  ctx.compute(2.0 * axs.n);
  return std::sqrt(allreduce_sum(ctx, g, local));
}

int sparse_cg(const DistCsrMatrix& A, const DistArray1<double>& b,
              DistArray1<double>& x, double rtol, int max_iters) {
  if (!x.participating()) {
    return 0;
  }
  Context& ctx = x.context();
  Group g = x.group();

  DistArray1<double> r = b.clone();
  DistArray1<double> p = b.clone();
  DistArray1<double> ap = b.clone();
  // r = b - A x.
  A.multiply(x, ap);
  {
    auto rs = r.local_strided();
    auto aps = ap.local_strided();
    auto bs = b.local_strided();
    for (int l = 0; l < rs.n; ++l) {
      rs[l] = bs[l] - aps[l];
    }
    ctx.compute(static_cast<double>(rs.n));
  }
  {
    auto ps = p.local_strided();
    auto rs = r.local_strided();
    for (int l = 0; l < ps.n; ++l) {
      ps[l] = rs[l];
    }
  }
  const double bnorm = std::sqrt(dot(ctx, g, b, b));
  double rr = dot(ctx, g, r, r);
  const double stop = rtol * (bnorm > 0.0 ? bnorm : 1.0);
  int it = 0;
  while (it < max_iters && std::sqrt(rr) > stop) {
    A.multiply(p, ap);
    const double pap = dot(ctx, g, p, ap);
    KALI_CHECK(pap > 0.0, "sparse_cg: matrix not positive definite");
    const double alpha = rr / pap;
    auto xs = x.local_strided();
    auto ps = p.local_strided();
    auto rs = r.local_strided();
    auto aps = ap.local_strided();
    for (int l = 0; l < xs.n; ++l) {
      xs[l] += alpha * ps[l];
      rs[l] -= alpha * aps[l];
    }
    ctx.compute(4.0 * xs.n);
    const double rr_new = dot(ctx, g, r, r);
    const double beta = rr_new / rr;
    for (int l = 0; l < ps.n; ++l) {
      ps[l] = rs[l] + beta * ps[l];
    }
    ctx.compute(2.0 * ps.n);
    rr = rr_new;
    ++it;
  }
  return it;
}

}  // namespace kali

#include "solvers/adi.hpp"

#include <cmath>
#include <vector>

#include "kernels/mtri.hpp"
#include "kernels/thomas.hpp"
#include "kernels/tri.hpp"
#include "runtime/doall.hpp"
#include "runtime/redistribute.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

/// r = tau * (L u - f): the pseudo-time defect of u_t = L u - f, whose
/// steady state is L u = f.  (L is negative definite, so the increment
/// carries this sign; see the header comment.)  Does u's copy-in itself:
/// with Overlap::kOn the halo exchange runs split-phase, the interior
/// stencil rows hiding the wire, with the boundary ring after the wait.
void residual_scaled(const Op2& op, double tau, const DistArray2<double>& u,
                     const DistArray2<double>& f, DistArray2<double>& r,
                     Overlap overlap) {
  const int nx = f.extent(0), ny = f.extent(1);
  const double cx = op.cx(), cy = op.cy(), dg = op.diag();
  auto uin = u.clone();
  auto body = [&](int i, int j) {
    const double lu = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                      cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                      dg * uin.at_halo({i, j});
    r(i, j) = tau * (lu - f(i, j));
  };
  if (overlap == Overlap::kOn) {
    auto ex = uin.exchange_halo_begin();
    doall2_ring(uin, Range{0, nx - 1}, Range{0, ny - 1}, 1, Ring::kInterior,
                body, 10.0);
    ex.finish();
    doall2_ring(uin, Range{0, nx - 1}, Range{0, ny - 1}, 1, Ring::kBoundary,
                body, 10.0);
  } else {
    uin.exchange_halo();
    doall2(r, Range{0, nx - 1}, Range{0, ny - 1}, body, 10.0);
  }
}

/// The view's members as a 1-D line view (transpose mode redistributes
/// between 2-D (block, block) and 1-D (block, *) / (*, block) layouts over
/// the same processors, which requires the ranks to be contiguous).
ProcView row_major_line(const ProcView& pv) {
  const std::vector<int> ranks = pv.ranks();
  ProcView line = ProcView::grid1(static_cast<int>(ranks.size()), ranks.front());
  KALI_CHECK(line.ranks() == ranks,
             "adi transpose: view must be a contiguous rank range");
  return line;
}

}  // namespace

double adi_residual_norm(const Op2& op, const DistArray2<double>& u,
                         const DistArray2<double>& f) {
  if (!u.participating()) {
    return 0.0;
  }
  auto uin = u.copy_in();
  const int nx = f.extent(0), ny = f.extent(1);
  const double cx = op.cx(), cy = op.cy(), dg = op.diag();
  const double s = doall2_sum(u, Range{0, nx - 1}, Range{0, ny - 1}, [&](int i, int j) {
    const double lu = cx * (uin.at_halo({i - 1, j}) + uin.at_halo({i + 1, j})) +
                      cy * (uin.at_halo({i, j - 1}) + uin.at_halo({i, j + 1})) +
                      dg * uin.at_halo({i, j});
    const double res = f(i, j) - lu;
    return res * res;
  });
  return std::sqrt(s);
}

void adi_iterate(const AdiOptions& opts, DistArray2<double>& u,
                 const DistArray2<double>& f) {
  if (!u.participating()) {
    return;
  }
  Context& ctx = u.context();
  const Op2& op = opts.op;
  const double tau = opts.tau;
  const int nx = u.extent(0), ny = u.extent(1);
  KALI_CHECK(u.halo(0) >= 1 && u.halo(1) >= 1, "adi: u needs halo 1");

  // dynamic real r(...), v(...), w(...) dist (block, block)
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 r(ctx, u.view(), {nx, ny}, dists);
  D2 w(ctx, u.view(), {nx, ny}, dists);

  residual_scaled(op, tau, u, f, r, opts.overlap);

  // Tridiagonal coefficients of (I - tau L2) and (I - tau L1).
  const double oy = -tau * op.cy();
  const double dy = 1.0 + 2.0 * tau * op.cy() - tau * op.sigma / 2.0;
  const double ox = -tau * op.cx();
  const double dx = 1.0 + 2.0 * tau * op.cx() - tau * op.sigma / 2.0;

  if (opts.transpose) {
    // Direction switch by redistribution: remap r to (block, *) so every
    // y-line is a local Thomas sweep, transpose-redistribute to (*, block)
    // for the x-lines, then land back in (block, block).  All three
    // redistributions are box-intersection slab exchanges, issued through
    // the round-structured schedule (machine/schedule.hpp) with each
    // rank's self-overlap copied locally, never sent.
    const ProcView line = row_major_line(u.view());
    const typename D2::Dists row_dists{DimDist::block_dist(), DimDist::star()};
    const typename D2::Dists col_dists{DimDist::star(), DimDist::block_dist()};
    D2 rrows(ctx, line, {nx, ny}, row_dists);
    D2 vcols(ctx, line, {nx, ny}, col_dists);

    // Each line is fully read into fline before its solution is written, so
    // both sweeps can land in place — two transposed temporaries suffice.
    redistribute(ctx, r, rrows, IssueOrder::kRoundSchedule, opts.overlap);
    std::vector<double> fline(static_cast<std::size_t>(ny));
    std::vector<double> xline(static_cast<std::size_t>(ny));
    for (int i : rrows.owned(0)) {
      for (int j = 0; j < ny; ++j) {
        fline[static_cast<std::size_t>(j)] = rrows(i, j);
      }
      thomas_solve_const(oy, dy, oy, fline, xline);
      ctx.compute(kThomasFlopsPerRow * ny);
      for (int j = 0; j < ny; ++j) {
        rrows(i, j) = xline[static_cast<std::size_t>(j)];
      }
    }
    redistribute(ctx, rrows, vcols, IssueOrder::kRoundSchedule, opts.overlap);
    fline.resize(static_cast<std::size_t>(nx));
    xline.resize(static_cast<std::size_t>(nx));
    for (int j : vcols.owned(1)) {
      for (int i = 0; i < nx; ++i) {
        fline[static_cast<std::size_t>(i)] = vcols(i, j);
      }
      thomas_solve_const(ox, dx, ox, fline, xline);
      ctx.compute(kThomasFlopsPerRow * nx);
      for (int i = 0; i < nx; ++i) {
        vcols(i, j) = xline[static_cast<std::size_t>(i)];
      }
    }
    redistribute(ctx, vcols, w, IssueOrder::kRoundSchedule, opts.overlap);
  } else if (!opts.pipelined) {
    // Listing 7: perform tridiagonal solves in the y direction ...
    D2 v(ctx, u.view(), {nx, ny}, dists);
    doall_slice_owner(r, 0, Range{0, nx - 1}, [&](int i) {
      auto ri = r.fix(0, i);
      auto vi = v.fix(0, i);
      tric(oy, dy, oy, ri, vi);
    });
    // ... and in the x direction.
    doall_slice_owner(v, 1, Range{0, ny - 1}, [&](int j) {
      auto vj = v.fix(1, j);
      auto wj = w.fix(1, j);
      tric(ox, dx, ox, vj, wj);
    });
  } else {
    // Listing 8: every processor row pipelines its slab of y solves ...
    D2 v(ctx, u.view(), {nx, ny}, dists);
    {
      const int lo = r.own_lower(0);
      const int cnt = r.local_count(0);
      auto rs = r.localize(0, lo, cnt);
      auto vs = v.localize(0, lo, cnt);
      mtri_const(oy, dy, oy, rs, vs, /*system_dim=*/0);
    }
    // ... and every processor column its slab of x solves.
    {
      const int lo = v.own_lower(1);
      const int cnt = v.local_count(1);
      auto vs = v.localize(1, lo, cnt);
      auto ws = w.localize(1, lo, cnt);
      mtri_const(ox, dx, ox, vs, ws, /*system_dim=*/1);
    }
  }

  doall2(
      u, Range{0, nx - 1}, Range{0, ny - 1},
      [&](int i, int j) { u(i, j) += w(i, j); }, 1.0);
}

double adi_solve(const AdiOptions& opts, DistArray2<double>& u,
                 const DistArray2<double>& f, int iters) {
  for (int it = 0; it < iters; ++it) {
    adi_iterate(opts, u, f);
  }
  return adi_residual_norm(opts.op, u, f);
}

double adi_default_tau(const Op2& op, int n) {
  // Balance the damping of the smoothest mode (1 - tau * lmin) against the
  // factored denominator's effect on the stiffest (1 - 4 / (tau * lmax)):
  // tau* = 2 / sqrt(lmin * lmax).
  const double pi2 = std::numbers::pi * std::numbers::pi;
  const double ax = std::min(op.axx, op.ayy);
  const double lmin = pi2 * ax + std::abs(op.sigma) * 0.5;
  const double lmax = 4.0 * std::max(op.cx(), op.cy());
  (void)n;
  return 2.0 / std::sqrt(lmin * lmax);
}

}  // namespace kali

// Listing 3: the Jacobi iteration in KF1 constructs.
//
// Next to jacobi_mp.cpp this is the paper's whole argument in one file: the
// algorithm reads like the sequential version — a distribution clause, a
// copy-in, and an owner-computes doall replace all of Listing 2's plumbing.
#include "runtime/doall.hpp"
#include "runtime/io.hpp"
#include "solvers/jacobi.hpp"
#include "support/check.hpp"

namespace kali {

std::vector<double> jacobi_kf1(Context& ctx, const ProcView& procs, int n,
                               const JacobiRhs& f, int iters, bool collect) {
  KALI_CHECK(procs.ndims() == 2, "jacobi_kf1: need a 2-D processor array");
  if (!procs.contains(ctx.rank())) {
    return {};
  }
  // real X(n, n), f(n, n) dist (block, block)  — interior points, with the
  // zero boundary in the ghost frame exactly as in Listing 2.
  using D2 = DistArray2<double>;
  const typename D2::Dists dists{DimDist::block_dist(), DimDist::block_dist()};
  D2 x(ctx, procs, {n, n}, dists, {1, 1});
  D2 rhs(ctx, procs, {n, n}, dists);
  rhs.fill([&](std::array<int, 2> g) { return f(g[0], g[1]); });

  for (int it = 0; it < iters; ++it) {
    auto in = x.copy_in();  // the doall's copy-in/copy-out temporary
    doall2(
        x, Range{0, n - 1}, Range{0, n - 1},
        [&](int i, int j) {
          x(i, j) = 0.25 * (in.at_halo({i + 1, j}) + in.at_halo({i - 1, j}) +
                            in.at_halo({i, j + 1}) + in.at_halo({i, j - 1})) -
                    rhs(i, j);
        },
        kJacobiFlopsPerPoint);
  }
  return collect ? gather_global(x) : std::vector<double>{};
}

}  // namespace kali

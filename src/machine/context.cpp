#include "machine/context.hpp"

#include <algorithm>

namespace kali {

void Context::compute(double flops) {
  KALI_CHECK(flops >= 0, "flops must be non-negative");
  self_->counters().flops += flops;
  const double dt = flops * config().flop_time;
  self_->counters().compute_time += dt;
  self_->set_clock(self_->clock() + dt);
}

void Context::charge_seconds(double seconds) {
  KALI_CHECK(seconds >= 0, "time must be non-negative");
  self_->counters().compute_time += seconds;
  self_->set_clock(self_->clock() + seconds);
}

void Context::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  KALI_CHECK(dst >= 0 && dst < nprocs(), "send: bad destination rank");
  auto& cnt = self_->counters();
  cnt.overhead_time += config().send_overhead;
  self_->set_clock(self_->clock() + config().send_overhead);

  Message m;
  m.src = rank();
  m.tag = tag;
  m.send_time = self_->clock();
  m.payload.assign(data.begin(), data.end());
  if (config().link_contention) {
    // Single-port injection: the message enters the network only once the
    // outgoing link is free, then occupies it for its full wire time.  The
    // sender's CPU is released after the software overhead (DMA).
    const double start = std::max(m.send_time, self_->out_link_free());
    if (start > m.send_time) {
      cnt.link_wait_time += start - m.send_time;
      cnt.contended_msgs += 1;
    }
    m.send_time = start;
    self_->set_out_link_free(
        start + static_cast<double>(m.payload.size()) * config().byte_time);
  }
  cnt.msgs_sent += 1;
  cnt.bytes_sent += m.payload.size();
  if (dst == rank()) {
    cnt.self_msgs_by_tag[tag] += 1;
  }
  machine_->proc(dst).mailbox().push(std::move(m));
}

Message Context::recv_message(int src, int tag) {
  Message m = self_->mailbox().recv(src, tag, config().recv_timeout_wall);
  auto& cnt = self_->counters();
  const double bytes_time =
      static_cast<double>(m.size_bytes()) * config().byte_time;
  const double nominal = m.send_time + machine_->wire_latency(m.src, rank());
  double arrival;
  if (config().link_contention) {
    // Single-port ejection: the first byte can reach this node at `nominal`,
    // but the incoming link carries one message at a time.  Contention is
    // resolved in receive (program) order — deterministic because the
    // ejection clock belongs to this thread alone.
    const double start = std::max(nominal, self_->in_link_free());
    if (start > nominal) {
      cnt.link_wait_time += start - nominal;
      cnt.contended_msgs += 1;
    }
    arrival = start + bytes_time;
    self_->set_in_link_free(arrival);
  } else {
    arrival = nominal + bytes_time;
  }
  const double before = self_->clock();
  const double ready = std::max(before, arrival);
  cnt.wait_time += ready - before;
  cnt.overhead_time += config().recv_overhead;
  self_->set_clock(ready + config().recv_overhead);
  cnt.msgs_recv += 1;
  cnt.bytes_recv += m.size_bytes();
  return m;
}

}  // namespace kali

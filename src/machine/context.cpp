#include "machine/context.hpp"

#include <algorithm>

#include "machine/hb.hpp"
#include "machine/topology.hpp"
#include "machine/trace.hpp"

namespace kali {

void Context::compute(double flops) {
  KALI_CHECK(flops >= 0, "flops must be non-negative");
  self_->counters().flops += flops;
  const double dt = flops * config().flop_time;
  self_->counters().compute_time += dt;
  self_->set_clock(self_->clock() + dt);
}

void Context::charge_seconds(double seconds) {
  KALI_CHECK(seconds >= 0, "time must be non-negative");
  self_->counters().compute_time += seconds;
  self_->set_clock(self_->clock() + seconds);
}

void Context::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  KALI_CHECK(dst >= 0 && dst < nprocs(), "send: bad destination rank");
  KALI_INVARIANT(is_registered_tag(tag),
                 "send: tag " + std::to_string(tag) +
                     " is not inside a registered band of the reserved-tag "
                     "registry (machine/message.hpp)");
  auto& cnt = self_->counters();
  cnt.overhead_time += config().send_overhead;
  self_->set_clock(self_->clock() + config().send_overhead);

  Message m;
  m.src = rank();
  m.tag = tag;
  m.send_time = self_->clock();
  m.seq = cnt.msgs_sent;
  m.epoch = self_->barrier_epoch();
  m.payload.assign(data.begin(), data.end());
  const double wire =
      static_cast<double>(m.payload.size()) * config().byte_time;
  switch (config().link_contention) {
    case LinkContention::kNone:
      break;
    case LinkContention::kPorts: {
      // Single-port injection: the message enters the network only once
      // the outgoing link is free, then occupies it for its full wire
      // time.  The sender's CPU is released after the software overhead
      // (DMA).
      const double start = std::max(m.send_time, self_->out_link_free());
      if (start > m.send_time) {
        cnt.link_wait_time += start - m.send_time;
        cnt.contended_msgs += 1;
      }
      m.send_time = start;
      self_->set_out_link_free(start + wire);
      break;
    }
    case LinkContention::kStoreForward: {
      // Multi-port injection: the first edge of the route — this node's
      // link toward the first hop — is owned by the sending rank, so
      // sends sharing a first hop serialize here.  Self-sends have no
      // edges and stay pure software.
      if (dst != rank()) {
        const int n0 =
            first_hop(config().topology, nprocs(), rank(), dst);
        const std::int64_t e0 = edge_id(rank(), n0);
        double& free_at = self_->out_edge_free()[e0];
        const double start = std::max(m.send_time, free_at);
        if (start > m.send_time) {
          cnt.edge_wait_time += start - m.send_time;
          cnt.contended_msgs += 1;
        }
        m.send_time = start;
        free_at = start + wire;
        cnt.edge_msgs[e0] += 1;
      }
      break;
    }
  }
  cnt.msgs_sent += 1;
  cnt.bytes_sent += m.payload.size();
  cnt.sent_by_tag[tag] += 1;
  if (dst == rank()) {
    cnt.self_msgs_by_tag[tag] += 1;
  }
  if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
    // Rank-sharded cost-model state this send mutated, recorded before the
    // push's send edge so the analyzer orders them against the receiver.
    hb->write(rank(), HbObj::kClock, rank());
    hb->write(rank(), HbObj::kCtr, rank());
    if (config().link_contention == LinkContention::kPorts ||
        (config().link_contention == LinkContention::kStoreForward &&
         dst != rank())) {
      hb->write(rank(), HbObj::kLink, rank());
    }
  }
  if (MessageTrace* t = machine_->message_trace()) {
    t->record_send(rank(), dst, tag, m.seq, m.payload.size(), m.epoch);
  }
  machine_->proc(dst).mailbox().push(std::move(m));
}

Message Context::recv_message(int src, int tag) {
  Message m = self_->mailbox().recv(src, tag, config().recv_timeout_wall,
                                    machine_->deadlock_detector(), rank());
  // The trace logs the *receiver's* epoch (not the message's stamp), so the
  // offline verifier can flag barrier straddling by comparing the matched
  // send/recv pair's epochs.
  if (MessageTrace* t = machine_->message_trace()) {
    t->record_recv(rank(), m.src, m.tag, m.seq, m.size_bytes(),
                   self_->barrier_epoch());
  }
  // A message sent before a sync_clocks barrier but received after it
  // carries a pre-barrier timestamp into a phase whose clocks were aligned
  // (and whose link state was cleared) at the barrier — silently poisoning
  // the measurement.  Senders stamp their barrier count; it must match.
  KALI_INVARIANT(m.epoch == self_->barrier_epoch(),
                 "recv: message from rank " + std::to_string(m.src) +
                     " illegally straddles a sync_clocks barrier (sent at "
                     "epoch " + std::to_string(m.epoch) + ", received at " +
                     std::to_string(self_->barrier_epoch()) + ")");
  auto& cnt = self_->counters();
  const double wire =
      static_cast<double>(m.size_bytes()) * config().byte_time;
  double arrival;
  switch (config().link_contention) {
    case LinkContention::kNone:
      arrival = m.send_time + machine_->wire_latency(m.src, rank()) + wire;
      break;
    case LinkContention::kPorts: {
      // Single-port ejection: the first byte can reach this node at
      // `nominal`, but the incoming link carries one message at a time.
      // Contention is resolved in receive (program) order — deterministic
      // because the ejection clock belongs to this rank alone.
      const double nominal =
          m.send_time + machine_->wire_latency(m.src, rank());
      const double start = std::max(nominal, self_->in_link_free());
      if (start > nominal) {
        cnt.link_wait_time += start - nominal;
        cnt.contended_msgs += 1;
      }
      arrival = start + wire;
      self_->set_in_link_free(arrival);
      break;
    }
    case LinkContention::kStoreForward: {
      // Replay the route hop by hop: the sender already reserved the first
      // edge (m.send_time is the post-queue injection start), and every
      // later edge is resolved here against this receiver's ledger, in
      // (send_time, src, seq) order.  Each hop stores the whole message
      // before forwarding, so every edge costs a full wire time; interior
      // forwarding adds per_hop.  Self-sends and neighbor messages have no
      // later edges — the closed form below covers them without
      // materializing the path.
      double t = m.send_time + config().latency + wire;
      if (machine_->hops(m.src, rank()) > 1) {
        const std::vector<int> path = machine_->route(m.src, rank());
        for (std::size_t i = 1; i + 1 < path.size(); ++i) {
          t += config().per_hop;
          const std::int64_t e = edge_id(path[i], path[i + 1]);
          const double queued =
              self_->reserve_edge(e, m.send_time, m.src, m.seq, t, wire);
          if (queued > 0.0) {
            cnt.edge_wait_time += queued;
            cnt.contended_msgs += 1;
          }
          t += queued + wire;
          cnt.edge_msgs[e] += 1;
        }
      }
      arrival = t;
      break;
    }
    default:
      KALI_FAIL("unknown link contention model");
  }
  const double before = self_->clock();
  const double ready = std::max(before, arrival);
  cnt.wait_time += ready - before;
  cnt.overhead_time += config().recv_overhead;
  self_->set_clock(ready + config().recv_overhead);
  cnt.msgs_recv += 1;
  cnt.bytes_recv += m.size_bytes();
  cnt.recv_by_tag[m.tag] += 1;
  if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
    // After the match edge recorded in Mailbox::recv: the receive-side
    // clock/counter advance, plus the contention state it resolved
    // against (ejection port under kPorts, interior-edge ledger under
    // store-and-forward with hops > 1).
    hb->write(rank(), HbObj::kClock, rank());
    hb->write(rank(), HbObj::kCtr, rank());
    if (config().link_contention == LinkContention::kPorts) {
      hb->write(rank(), HbObj::kLink, rank());
    } else if (config().link_contention == LinkContention::kStoreForward &&
               machine_->hops(m.src, rank()) > 1) {
      hb->write(rank(), HbObj::kLedger, rank());
    }
  }
  return m;
}

}  // namespace kali

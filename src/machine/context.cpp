#include "machine/context.hpp"

#include <algorithm>

namespace kali {

void Context::compute(double flops) {
  KALI_CHECK(flops >= 0, "flops must be non-negative");
  self_->counters().flops += flops;
  const double dt = flops * config().flop_time;
  self_->counters().compute_time += dt;
  self_->set_clock(self_->clock() + dt);
}

void Context::charge_seconds(double seconds) {
  KALI_CHECK(seconds >= 0, "time must be non-negative");
  self_->counters().compute_time += seconds;
  self_->set_clock(self_->clock() + seconds);
}

void Context::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  KALI_CHECK(dst >= 0 && dst < nprocs(), "send: bad destination rank");
  auto& cnt = self_->counters();
  cnt.overhead_time += config().send_overhead;
  self_->set_clock(self_->clock() + config().send_overhead);

  Message m;
  m.src = rank();
  m.tag = tag;
  m.send_time = self_->clock();
  m.payload.assign(data.begin(), data.end());
  cnt.msgs_sent += 1;
  cnt.bytes_sent += m.payload.size();
  machine_->proc(dst).mailbox().push(std::move(m));
}

Message Context::recv_message(int src, int tag) {
  Message m = self_->mailbox().recv(src, tag, config().recv_timeout_wall);
  auto& cnt = self_->counters();
  const double arrival = m.send_time + machine_->wire_latency(m.src, rank()) +
                         static_cast<double>(m.size_bytes()) * config().byte_time;
  const double before = self_->clock();
  const double ready = std::max(before, arrival);
  cnt.wait_time += ready - before;
  cnt.overhead_time += config().recv_overhead;
  self_->set_clock(ready + config().recv_overhead);
  cnt.msgs_recv += 1;
  cnt.bytes_recv += m.size_bytes();
  return m;
}

}  // namespace kali

#include "machine/context.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "machine/hb.hpp"
#include "machine/topology.hpp"
#include "machine/trace.hpp"

namespace kali {

void Context::compute(double flops) {
  KALI_CHECK(flops >= 0, "flops must be non-negative");
  self_->counters().flops += flops;
  const double dt = flops * config().flop_time;
  self_->counters().compute_time += dt;
  self_->set_clock(self_->clock() + dt);
}

void Context::charge_seconds(double seconds) {
  KALI_CHECK(seconds >= 0, "time must be non-negative");
  self_->counters().compute_time += seconds;
  self_->set_clock(self_->clock() + seconds);
}

void Context::send_bytes(int dst, int tag, std::span<const std::byte> data) {
  KALI_CHECK(dst >= 0 && dst < nprocs(), "send: bad destination rank");
  KALI_INVARIANT(is_registered_tag(tag),
                 "send: tag " + std::to_string(tag) +
                     " is not inside a registered band of the reserved-tag "
                     "registry (machine/message.hpp)");
  auto& cnt = self_->counters();
  cnt.overhead_time += config().send_overhead;
  self_->set_clock(self_->clock() + config().send_overhead);

  Message m;
  m.src = rank();
  m.tag = tag;
  m.send_time = self_->clock();
  m.seq = cnt.msgs_sent;
  m.epoch = self_->barrier_epoch();
  m.payload.assign(data.begin(), data.end());
  const double wire =
      static_cast<double>(m.payload.size()) * config().byte_time;
  switch (config().link_contention) {
    case LinkContention::kNone:
      break;
    case LinkContention::kPorts: {
      // Single-port injection: the message enters the network only once
      // the outgoing link is free, then occupies it for its full wire
      // time.  The sender's CPU is released after the software overhead
      // (DMA).
      const double start = std::max(m.send_time, self_->out_link_free());
      if (start > m.send_time) {
        cnt.link_wait_time += start - m.send_time;
        cnt.contended_msgs += 1;
      }
      m.send_time = start;
      self_->set_out_link_free(start + wire);
      break;
    }
    case LinkContention::kStoreForward: {
      // Multi-port injection: the first edge of the route — this node's
      // link toward the first hop — is owned by the sending rank, so
      // sends sharing a first hop serialize here.  Self-sends have no
      // edges and stay pure software.
      if (dst != rank()) {
        const int n0 =
            first_hop(config().topology, nprocs(), rank(), dst);
        const std::int64_t e0 = edge_id(rank(), n0);
        double& free_at = self_->out_edge_free()[e0];
        const double start = std::max(m.send_time, free_at);
        if (start > m.send_time) {
          cnt.edge_wait_time += start - m.send_time;
          cnt.contended_msgs += 1;
        }
        m.send_time = start;
        free_at = start + wire;
        cnt.edge_msgs[e0] += 1;
      }
      break;
    }
  }
  cnt.msgs_sent += 1;
  cnt.bytes_sent += m.payload.size();
  cnt.sent_by_tag[tag] += 1;
  if (dst == rank()) {
    cnt.self_msgs_by_tag[tag] += 1;
  }
  if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
    // Rank-sharded cost-model state this send mutated, recorded before the
    // push's send edge so the analyzer orders them against the receiver.
    hb->write(rank(), HbObj::kClock, rank());
    hb->write(rank(), HbObj::kCtr, rank());
    if (config().link_contention == LinkContention::kPorts ||
        (config().link_contention == LinkContention::kStoreForward &&
         dst != rank())) {
      hb->write(rank(), HbObj::kLink, rank());
    }
  }
  if (MessageTrace* t = machine_->message_trace()) {
    t->record_send(rank(), dst, tag, m.seq, m.payload.size(), m.epoch);
  }
  machine_->proc(dst).mailbox().push(std::move(m));
}

Message Context::recv_message(int src, int tag) {
#if defined(KALI_CHECK_INVARIANTS)
  // A blocking recv matching a lane with a posted-but-incomplete irecv
  // would steal that operation's message — overtaking it in FIFO order.
  for (const auto& op : self_->mailbox().pending_ops()) {
    KALI_INVARIANT(op.tag != tag || (src != kAnySource && op.src != src),
                   "recv: blocking receive on (src=" + std::to_string(src) +
                       ", tag=" + std::to_string(tag) +
                       ") would overtake a pending nonblocking receive on "
                       "the same lane");
  }
#endif
  Message m = self_->mailbox().recv(src, tag, config().recv_timeout_wall,
                                    machine_->deadlock_detector(), rank());
  finish_receive(m);
  return m;
}

double Context::finish_receive(Message& m) {
  // The trace logs the *receiver's* epoch (not the message's stamp), so the
  // offline verifier can flag barrier straddling by comparing the matched
  // send/recv pair's epochs.
  if (MessageTrace* t = machine_->message_trace()) {
    t->record_recv(rank(), m.src, m.tag, m.seq, m.size_bytes(),
                   self_->barrier_epoch());
  }
  // A message sent before a sync_clocks barrier but received after it
  // carries a pre-barrier timestamp into a phase whose clocks were aligned
  // (and whose link state was cleared) at the barrier — silently poisoning
  // the measurement.  Senders stamp their barrier count; it must match.
  KALI_INVARIANT(m.epoch == self_->barrier_epoch(),
                 "recv: message from rank " + std::to_string(m.src) +
                     " illegally straddles a sync_clocks barrier (sent at "
                     "epoch " + std::to_string(m.epoch) + ", received at " +
                     std::to_string(self_->barrier_epoch()) + ")");
  auto& cnt = self_->counters();
  const double wire =
      static_cast<double>(m.size_bytes()) * config().byte_time;
  double arrival;
  switch (config().link_contention) {
    case LinkContention::kNone:
      arrival = m.send_time + machine_->wire_latency(m.src, rank()) + wire;
      break;
    case LinkContention::kPorts: {
      // Single-port ejection: the first byte can reach this node at
      // `nominal`, but the incoming link carries one message at a time.
      // Contention is resolved in receive (program) order — deterministic
      // because the ejection clock belongs to this rank alone.
      const double nominal =
          m.send_time + machine_->wire_latency(m.src, rank());
      const double start = std::max(nominal, self_->in_link_free());
      if (start > nominal) {
        cnt.link_wait_time += start - nominal;
        cnt.contended_msgs += 1;
      }
      arrival = start + wire;
      self_->set_in_link_free(arrival);
      break;
    }
    case LinkContention::kStoreForward: {
      // Replay the route hop by hop: the sender already reserved the first
      // edge (m.send_time is the post-queue injection start), and every
      // later edge is resolved here against this receiver's ledger, in
      // (send_time, src, seq) order.  Each hop stores the whole message
      // before forwarding, so every edge costs a full wire time; interior
      // forwarding adds per_hop.  Self-sends and neighbor messages have no
      // later edges — the closed form below covers them without
      // materializing the path.
      double t = m.send_time + config().latency + wire;
      if (machine_->hops(m.src, rank()) > 1) {
        const std::vector<int> path = machine_->route(m.src, rank());
        for (std::size_t i = 1; i + 1 < path.size(); ++i) {
          t += config().per_hop;
          const std::int64_t e = edge_id(path[i], path[i + 1]);
          const double queued =
              self_->reserve_edge(e, m.send_time, m.src, m.seq, t, wire);
          if (queued > 0.0) {
            cnt.edge_wait_time += queued;
            cnt.contended_msgs += 1;
          }
          t += queued + wire;
          cnt.edge_msgs[e] += 1;
        }
      }
      arrival = t;
      break;
    }
    default:
      KALI_FAIL("unknown link contention model");
  }
  const double before = self_->clock();
  const double ready = std::max(before, arrival);
  cnt.wait_time += ready - before;
  cnt.overhead_time += config().recv_overhead;
  self_->set_clock(ready + config().recv_overhead);
  cnt.msgs_recv += 1;
  cnt.bytes_recv += m.size_bytes();
  cnt.recv_by_tag[m.tag] += 1;
  if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
    // After the match edge recorded in Mailbox::recv: the receive-side
    // clock/counter advance, plus the contention state it resolved
    // against (ejection port under kPorts, interior-edge ledger under
    // store-and-forward with hops > 1).
    hb->write(rank(), HbObj::kClock, rank());
    hb->write(rank(), HbObj::kCtr, rank());
    if (config().link_contention == LinkContention::kPorts) {
      hb->write(rank(), HbObj::kLink, rank());
    } else if (config().link_contention == LinkContention::kStoreForward &&
               machine_->hops(m.src, rank()) > 1) {
      hb->write(rank(), HbObj::kLedger, rank());
    }
  }
  return arrival;
}

CommHandle Context::irecv_bytes(int src, int tag, std::span<std::byte> out) {
  // kAnySource would make the operation's match depend on host push order.
  KALI_CHECK(src >= 0 && src < nprocs(),
             "irecv: bad source rank (kAnySource is not allowed on "
             "nonblocking receives)");
  // Posting is free in the model (like handing a buffer to the NIC); the
  // receive's whole cost is charged at the completing wait point.
  const std::uint64_t id = self_->mailbox().post_op(
      src, tag, out.data(), out.size(), self_->clock());
  if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
    hb->post(rank(), id);
  }
  return CommHandle(this, id);
}

std::vector<std::uint64_t> Context::with_lane_predecessors(
    std::uint64_t id) const {
  const auto& ops = self_->mailbox().pending_ops();
  const PendingOp* target = nullptr;
  for (const auto& op : ops) {
    if (op.id == id) {
      target = &op;
      break;
    }
  }
  if (target == nullptr) {
    return {};  // already complete
  }
  std::vector<std::uint64_t> ids;
  for (const auto& op : ops) {
    if (op.src == target->src && op.tag == target->tag && op.id <= id) {
      ids.push_back(op.id);
    }
  }
  return ids;
}

void Context::complete_ops(std::vector<std::uint64_t> ids) {
  if (ids.empty()) {
    return;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  Mailbox& mb = self_->mailbox();
  // Group the operations by (src, tag) lane, preserving post order within
  // each lane (the table is id-ordered).  std::map keeps the lane iteration
  // order a pure function of the program.
  std::map<std::pair<int, int>, std::vector<PendingOp>> lanes;
  for (const auto& op : mb.pending_ops()) {
    if (std::binary_search(ids.begin(), ids.end(), op.id)) {
      lanes[{op.src, op.tag}].push_back(op);
    }
  }
  // Phase 1: park until every lane holds enough queued matches.  Each park
  // is a scheduler yield point publishing its wait-for edge, exactly like
  // a blocking recv on that lane.
  for (const auto& [lane, ops] : lanes) {
    mb.await_matches(lane.first, lane.second, ops.size(),
                     config().recv_timeout_wall, machine_->deadlock_detector(),
                     rank());
  }
  // Phase 2: pop each lane FIFO (the j-th posted operation takes the j-th
  // queued match), then apply the receive-side cost algebra over the whole
  // batch in ascending (send_time, src, seq) of the matched messages — the
  // edge ledgers' canonical serialization key — so completion order is a
  // pure function of the program, never of host arrival order.
  struct Completion {
    PendingOp op;
    Message msg;
  };
  std::vector<Completion> batch;
  for (const auto& [lane, ops] : lanes) {
    for (const auto& op : ops) {
      auto m = mb.try_pop(lane.first, lane.second);
      KALI_CHECK(m.has_value(),
                 "nonblocking completion lost its matched message");
      batch.push_back({op, std::move(*m)});
      mb.erase_op(op.id);
    }
  }
  std::sort(batch.begin(), batch.end(),
            [](const Completion& a, const Completion& b) {
              if (a.msg.send_time != b.msg.send_time) {
                return a.msg.send_time < b.msg.send_time;
              }
              if (a.msg.src != b.msg.src) {
                return a.msg.src < b.msg.src;
              }
              return a.msg.seq < b.msg.seq;
            });
  for (auto& c : batch) {
    KALI_CHECK(c.msg.size_bytes() == c.op.bytes,
               "irecv size mismatch: posted " + std::to_string(c.op.bytes) +
                   " bytes, message carries " +
                   std::to_string(c.msg.size_bytes()));
    const double before = self_->clock();
    const double arrival = finish_receive(c.msg);
    if (c.op.bytes > 0) {
      std::memcpy(c.op.dest, c.msg.payload.data(), c.op.bytes);
    }
    // Overlap ledger: the in-flight window ran from the post to the
    // modeled arrival; whatever of it this rank's clock had already
    // covered when the completion ran was spent on other work — wire time
    // hidden behind local progress instead of sat out in wait_time.
    auto& cnt = self_->counters();
    const double window = std::max(0.0, arrival - c.op.post_clock);
    const double hidden =
        std::clamp(std::min(before, arrival) - c.op.post_clock, 0.0, window);
    cnt.overlap_wire_time += window;
    cnt.overlap_hidden_time += hidden;
    if (HbLog* hb = machine_->hb_log(); hb != nullptr) {
      // The completion's memcpy is the machine's write into the posted
      // buffer; foreign accesses between ipost and icomp are the in-flight
      // races the analyzer flags.
      hb->write(rank(), HbObj::kBuf, rank());
      hb->complete(rank(), c.op.id);
    }
  }
}

void Context::wait(CommHandle& h) {
  KALI_CHECK(h.ctx_ == nullptr || h.ctx_ == this,
             "wait: handle belongs to another rank's context");
  if (h.op_ != 0) {
    complete_ops(with_lane_predecessors(h.op_));
    h.op_ = 0;
  }
}

bool Context::test(CommHandle& h) {
  KALI_CHECK(h.ctx_ == nullptr || h.ctx_ == this,
             "test: handle belongs to another rank's context");
  if (h.op_ == 0) {
    return true;
  }
  std::vector<std::uint64_t> ids = with_lane_predecessors(h.op_);
  if (ids.empty()) {  // erased from the table: already completed elsewhere
    h.op_ = 0;
    return true;
  }
  const PendingOp* target = nullptr;
  for (const auto& op : self_->mailbox().pending_ops()) {
    if (op.id == h.op_) {
      target = &op;
      break;
    }
  }
  KALI_CHECK(target != nullptr, "test: operation vanished from the table");
  // Opportunistic: complete only if the whole lane prefix can complete now.
  if (self_->mailbox().match_count(target->src, target->tag) < ids.size()) {
    return false;
  }
  complete_ops(std::move(ids));
  h.op_ = 0;
  return true;
}

void Context::wait_all(std::span<CommHandle> hs) {
  std::vector<std::uint64_t> ids;
  for (CommHandle& h : hs) {
    KALI_CHECK(h.ctx_ == nullptr || h.ctx_ == this,
               "wait_all: handle belongs to another rank's context");
    if (h.op_ != 0) {
      auto lane = with_lane_predecessors(h.op_);
      ids.insert(ids.end(), lane.begin(), lane.end());
    }
  }
  complete_ops(std::move(ids));
  for (CommHandle& h : hs) {
    h.op_ = 0;
  }
}

}  // namespace kali

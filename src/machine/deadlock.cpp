#include "machine/deadlock.hpp"

#include <sstream>

#include "support/check.hpp"

namespace kali {

namespace {

std::string src_label(int src) {
  return src == kAnySource ? std::string("any") : std::to_string(src);
}

}  // namespace

std::string describe_pending(const Mailbox& mb, int owner_rank,
                             std::uint32_t max_epoch) {
  std::string out;
  for (const auto& pm : mb.snapshot()) {
    if (pm.epoch > max_epoch) {
      continue;
    }
    out += "    " + std::to_string(pm.src) + " -> " +
           std::to_string(owner_rank) + " tag " + std::to_string(pm.tag) +
           " (" + tag_name(pm.tag) + ", " + std::to_string(pm.bytes) +
           " B, epoch " + std::to_string(pm.epoch) + ")\n";
  }
  return out;
}

std::size_t stale_pending(const Mailbox& mb, std::uint32_t max_epoch) {
  std::size_t n = 0;
  for (const auto& pm : mb.snapshot()) {
    if (pm.epoch <= max_epoch) {
      ++n;
    }
  }
  return n;
}

DeadlockDetector::DeadlockDetector(std::vector<Mailbox*> mailboxes)
    : mailboxes_(std::move(mailboxes)), ranks_(mailboxes_.size()) {}

void DeadlockDetector::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& r : ranks_) {
    r = RankState{};
  }
}

void DeadlockDetector::enter_wait(int rank, int src, int tag) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& rs = ranks_[static_cast<std::size_t>(rank)];
  rs.state = State::kWaiting;
  rs.want_src = src;
  rs.want_tag = tag;
  check_locked();
}

void DeadlockDetector::leave_wait(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].state = State::kRunning;
}

void DeadlockDetector::mark_done(int rank) {
  std::lock_guard<std::mutex> lk(mu_);
  ranks_[static_cast<std::size_t>(rank)].state = State::kDone;
  check_locked();
}

void DeadlockDetector::check_locked() {
  const int n = static_cast<int>(ranks_.size());
  // Seed the live set: running ranks can still send, and a waiter whose
  // match is already queued will pop it and run again.  Done ranks are not
  // live — they will never send another message.
  std::vector<bool> live(static_cast<std::size_t>(n), false);
  bool any_waiting = false;
  for (int r = 0; r < n; ++r) {
    const auto& rs = ranks_[static_cast<std::size_t>(r)];
    if (rs.state == State::kRunning) {
      live[static_cast<std::size_t>(r)] = true;
    } else if (rs.state == State::kWaiting) {
      any_waiting = true;
      if (mailboxes_[static_cast<std::size_t>(r)]->probe(rs.want_src,
                                                         rs.want_tag)) {
        live[static_cast<std::size_t>(r)] = true;
      }
    }
  }
  if (!any_waiting) {
    return;
  }
  // Propagate: a waiter is live if the rank it expects could still feed it
  // (for kAnySource, if any other rank could).  A source outside [0, n) can
  // never send, so such a waiter stays dead unless its match is queued.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int r = 0; r < n; ++r) {
      const auto& rs = ranks_[static_cast<std::size_t>(r)];
      if (live[static_cast<std::size_t>(r)] || rs.state != State::kWaiting) {
        continue;
      }
      bool feedable = false;
      if (rs.want_src == kAnySource) {
        for (int q = 0; q < n; ++q) {
          if (q != r && live[static_cast<std::size_t>(q)]) {
            feedable = true;
            break;
          }
        }
      } else if (rs.want_src >= 0 && rs.want_src < n) {
        feedable = live[static_cast<std::size_t>(rs.want_src)];
      }
      if (feedable) {
        live[static_cast<std::size_t>(r)] = true;
        changed = true;
      }
    }
  }
  std::vector<bool> stuck(static_cast<std::size_t>(n), false);
  bool any_stuck = false;
  for (int r = 0; r < n; ++r) {
    if (ranks_[static_cast<std::size_t>(r)].state == State::kWaiting &&
        !live[static_cast<std::size_t>(r)]) {
      stuck[static_cast<std::size_t>(r)] = true;
      any_stuck = true;
    }
  }
  if (any_stuck) {
    throw Error(dump_locked(stuck));
  }
}

std::string DeadlockDetector::dump_locked(
    const std::vector<bool>& stuck) const {
  std::ostringstream os;
  int nstuck = 0;
  for (bool s : stuck) {
    nstuck += s ? 1 : 0;
  }
  os << "deadlock detected by the wait-for-graph check: " << nstuck
     << " rank(s) blocked in recv with no rank or in-flight message able to "
        "satisfy them\n";
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    const auto& rs = ranks_[r];
    os << "  rank " << r << ": ";
    switch (rs.state) {
      case State::kRunning:
        os << "running\n";
        continue;
      case State::kDone:
        os << "done (program finished; will never send again)\n";
        continue;
      case State::kWaiting:
        os << (stuck[r] ? "STUCK" : "waiting") << " in recv(src="
           << src_label(rs.want_src) << ", tag=" << rs.want_tag << " "
           << tag_name(rs.want_tag) << ")\n";
        break;
    }
    const std::string pending = describe_pending(*mailboxes_[r],
                                                 static_cast<int>(r));
    if (pending.empty()) {
      os << "    mailbox empty\n";
    } else {
      os << pending;
    }
  }
  os << "  (the wall-clock recv timeout remains as a fallback; set "
        "MachineConfig::deadlock_detection = false to rely on it alone)";
  return os.str();
}

}  // namespace kali

// Stackful user-level execution contexts for the cooperative scheduler
// (machine/scheduler.hpp): a fixed population of fibers, each a ucontext
// with a slab-allocated stack, multiplexed onto host worker threads.
//
// This file provides mechanics only — stack allocation, context creation,
// and the annotated switch primitive (ASan fake-stack handoff and TSan
// fiber handoff, compiled in only under the matching sanitizer).  All
// scheduling policy (run queue, parking, wall-clock timeouts, quiesce)
// lives in FiberScheduler; nothing here ever feeds a simulated clock.
#pragma once

#include <ucontext.h>

#include <cstddef>

namespace kali {

// Sanitizer detection: GCC defines __SANITIZE_*__, clang uses __has_feature.
#if defined(__SANITIZE_ADDRESS__)
#define KALI_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define KALI_FIBER_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define KALI_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define KALI_FIBER_TSAN 1
#endif
#endif

/// One anonymous mapping holding every fiber stack of a machine run.
///
/// The mapping is MAP_NORESERVE so a 64k-rank population costs virtual
/// address space only — pages materialize lazily as each fiber's program
/// actually recurses.  For small populations (<= kGuardMaxStacks) each
/// stack additionally gets a PROT_NONE guard page below it, turning an
/// overflow into a fault instead of a silent scribble over the neighbour;
/// above that limit the guards are dropped, because each one splits the
/// mapping into further VMAs and the kernel's default vm.max_map_count
/// (~65530) would be exceeded long before 64k ranks.
class FiberStackArena {
 public:
  /// Populations up to this size get per-stack guard pages.
  static constexpr int kGuardMaxStacks = 4096;

  FiberStackArena(int nstacks, std::size_t stack_bytes);
  ~FiberStackArena();
  FiberStackArena(const FiberStackArena&) = delete;
  FiberStackArena& operator=(const FiberStackArena&) = delete;

  /// Lowest address of stack i (grows downward from bottom + bytes).
  [[nodiscard]] void* stack_bottom(int i) const;
  [[nodiscard]] std::size_t stack_bytes() const { return stack_bytes_; }
  [[nodiscard]] bool guarded() const { return guarded_; }

  /// True while the canary word written at the lowest bytes of stack i is
  /// intact.  A false return means the fiber's frames reached the very
  /// bottom of its stack — an overflow the guard page would have trapped,
  /// detectable after the fact even in guardless (large-population)
  /// arenas.  The scheduler checks this every time a fiber switches out
  /// and turns a corruption into a diagnosed abort instead of a silent
  /// scribble over the neighbouring stack.
  [[nodiscard]] bool canary_ok(int i) const;

 private:
  char* base_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t stride_ = 0;
  std::size_t page_ = 0;
  std::size_t stack_bytes_ = 0;
  int nstacks_ = 0;
  bool guarded_ = false;
};

/// One switchable execution context: either a worker thread's native
/// context (init_host) or a suspended fiber on an arena stack
/// (init_fiber).  Plain struct-of-state; fiber_switch does the work.
class FiberContext {
 public:
  FiberContext() = default;
  FiberContext(const FiberContext&) = delete;
  FiberContext& operator=(const FiberContext&) = delete;
  ~FiberContext();

  /// Adopt the calling thread's native context (TSan: its implicit fiber).
  /// The ucontext itself is filled in by the first fiber_switch away.
  void init_host();

  /// Build a suspended context that will run entry(arg) on
  /// [stack_bottom, stack_bottom + stack_bytes) when first switched to.
  /// entry must never return — it ends in a final fiber_switch with
  /// from_dying = true.
  void init_fiber(void* stack_bottom, std::size_t stack_bytes,
                  void (*entry)(void*), void* arg);

  /// Release sanitizer bookkeeping (TSan fiber object).  Must not be
  /// called on the currently running context.
  void destroy();

  /// Stack bounds of the context we were last resumed from, captured at
  /// each resume point — the switch-back target's stack for the ASan
  /// annotations (a fiber may be resumed by a different worker each time).
  [[nodiscard]] const void* peer_bottom() const { return peer_bottom_; }
  [[nodiscard]] std::size_t peer_size() const { return peer_size_; }
  void set_asan_bounds(const void* bottom, std::size_t size) {
    asan_bottom_ = bottom;
    asan_size_ = size;
  }

  /// Trampoline body: entry annotations, then the entry function.  Only
  /// ever called once, on the fiber's own stack, by the makecontext
  /// trampoline.
  [[noreturn]] void run_from_trampoline();

 private:
  friend void fiber_switch(FiberContext& from, FiberContext& to,
                           bool from_dying);
  friend void fiber_entry_annotations(FiberContext& self);

  ucontext_t uc_{};
  void (*entry_)(void*) = nullptr;
  void* arg_ = nullptr;
  // Sanitizer bookkeeping; dormant (but harmless) in plain builds.
  const void* asan_bottom_ = nullptr;  ///< this context's own stack
  std::size_t asan_size_ = 0;
  const void* peer_bottom_ = nullptr;  ///< resumer's stack, last capture
  std::size_t peer_size_ = 0;
  void* tsan_fiber_ = nullptr;
  bool owns_tsan_fiber_ = false;
};

/// Switch from `from` (the currently running context) into `to` (a
/// suspended one).  Returns when something later switches back into
/// `from`.  With from_dying the switch is final: `from`'s sanitizer state
/// is torn down and control never returns (the caller must not touch its
/// stack again).
void fiber_switch(FiberContext& from, FiberContext& to,
                  bool from_dying = false);

/// Must be the first call of every fiber entry function: completes the
/// sanitizer switch protocol and captures the resuming worker's stack
/// bounds.  (Called by the trampoline; exposed for documentation/tests.)
void fiber_entry_annotations(FiberContext& self);

}  // namespace kali

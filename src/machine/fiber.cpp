#include "machine/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>

#include "support/check.hpp"

#if defined(KALI_FIBER_ASAN) || defined(KALI_FIBER_TSAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(KALI_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace kali {

namespace {

// Stack-bottom canary: frames never legitimately write the lowest bytes of
// their stack (the stack grows down from bottom + bytes), so any change
// here means an overflow reached the bottom.
constexpr std::uint64_t kStackCanary = 0x4b414c4946494252ULL;  // "KALIFIBR"

}  // namespace

// ---------------------------------------------------------------------------
// FiberStackArena
// ---------------------------------------------------------------------------

FiberStackArena::FiberStackArena(int nstacks, std::size_t stack_bytes) {
  KALI_CHECK(nstacks >= 1, "fiber arena needs at least one stack");
  KALI_CHECK(stack_bytes >= 16 * 1024, "fiber stack too small to be usable");
  page_ = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  stack_bytes_ = (stack_bytes + page_ - 1) & ~(page_ - 1);
  nstacks_ = nstacks;
  guarded_ = nstacks <= kGuardMaxStacks;
  stride_ = stack_bytes_ + (guarded_ ? page_ : 0);
  map_bytes_ = stride_ * static_cast<std::size_t>(nstacks) +
               (guarded_ ? page_ : 0);  // trailing guard above the last stack
  void* p = mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  KALI_CHECK(p != MAP_FAILED, "fiber arena: mmap of stack slab failed");
  base_ = static_cast<char*>(p);
  if (guarded_) {
    // Layout: [guard][stack 0][guard][stack 1]...[stack n-1][guard].
    for (int i = 0; i <= nstacks; ++i) {
      char* g = base_ + static_cast<std::size_t>(i) * stride_;
      KALI_CHECK(mprotect(g, page_, PROT_NONE) == 0,
                 "fiber arena: mprotect guard page failed");
    }
  }
  for (int i = 0; i < nstacks; ++i) {
    std::memcpy(stack_bottom(i), &kStackCanary, sizeof(kStackCanary));
  }
}

bool FiberStackArena::canary_ok(int i) const {
  std::uint64_t word = 0;
  std::memcpy(&word, stack_bottom(i), sizeof(word));
  return word == kStackCanary;
}

FiberStackArena::~FiberStackArena() {
  if (base_ != nullptr) {
    munmap(base_, map_bytes_);
  }
}

void* FiberStackArena::stack_bottom(int i) const {
  KALI_CHECK(i >= 0 && i < nstacks_, "fiber arena: stack index out of range");
  const std::size_t off =
      static_cast<std::size_t>(i) * stride_ + (guarded_ ? page_ : 0);
  return base_ + off;
}

// ---------------------------------------------------------------------------
// FiberContext + fiber_switch
// ---------------------------------------------------------------------------

FiberContext::~FiberContext() { destroy(); }

void FiberContext::init_host() {
#if defined(KALI_FIBER_TSAN)
  tsan_fiber_ = __tsan_get_current_fiber();
  owns_tsan_fiber_ = false;  // the thread's implicit fiber — never destroyed
#endif
}

void FiberContext::destroy() {
#if defined(KALI_FIBER_TSAN)
  if (owns_tsan_fiber_ && tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(tsan_fiber_);
  }
#endif
  tsan_fiber_ = nullptr;
  owns_tsan_fiber_ = false;
}

void fiber_entry_annotations(FiberContext& self) {
#if defined(KALI_FIBER_ASAN)
  // First entry: no fake stack of our own to restore (nullptr); capture the
  // resuming worker's stack bounds for the switch back.
  __sanitizer_finish_switch_fiber(nullptr, &self.peer_bottom_,
                                  &self.peer_size_);
#else
  (void)self;
#endif
}

void FiberContext::run_from_trampoline() {
  fiber_entry_annotations(*this);
  entry_(arg_);
  // entry never returns: it ends in fiber_switch(..., from_dying = true).
  // Reaching the end of a makecontext function with no uc_link aborts the
  // process, so the contract is load-bearing, not stylistic.
  KALI_CHECK(false, "fiber entry function returned instead of switching out");
  __builtin_unreachable();
}

namespace {

// makecontext only passes ints, so the FiberContext pointer travels as two
// 32-bit halves through the trampoline.
extern "C" void kali_fiber_trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  reinterpret_cast<FiberContext*>(bits)->run_from_trampoline();
}

}  // namespace

void FiberContext::init_fiber(void* stack_bottom, std::size_t stack_bytes,
                              void (*entry)(void*), void* arg) {
  entry_ = entry;
  arg_ = arg;
  asan_bottom_ = stack_bottom;
  asan_size_ = stack_bytes;
  KALI_CHECK(getcontext(&uc_) == 0, "fiber: getcontext failed");
  uc_.uc_stack.ss_sp = stack_bottom;
  uc_.uc_stack.ss_size = stack_bytes;
  uc_.uc_link = nullptr;
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&uc_, reinterpret_cast<void (*)()>(&kali_fiber_trampoline), 2,
              static_cast<unsigned>(bits >> 32),
              static_cast<unsigned>(bits & 0xffffffffu));
#if defined(KALI_FIBER_TSAN)
  tsan_fiber_ = __tsan_create_fiber(0);
  owns_tsan_fiber_ = true;
#endif
}

void fiber_switch(FiberContext& from, FiberContext& to, bool from_dying) {
#if defined(KALI_FIBER_ASAN)
  // The save handle lives on the suspended stack at its suspension point:
  // start_switch detaches `from`'s fake stack into it, and the matching
  // finish below — which runs only when something switches back into
  // `from` — reattaches it.  A dying fiber passes nullptr so ASan frees
  // its fake stack instead of leaking one per simulated rank.
  void* fake_stack_save = nullptr;
  __sanitizer_start_switch_fiber(from_dying ? nullptr : &fake_stack_save,
                                 to.asan_bottom_, to.asan_size_);
#else
  (void)from_dying;
#endif
#if defined(KALI_FIBER_TSAN)
  __tsan_switch_to_fiber(to.tsan_fiber_, 0);
#endif
  swapcontext(&from.uc_, &to.uc_);
  // Control returns here when `from` is next resumed (possibly on a
  // different worker thread).
#if defined(KALI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(fake_stack_save, &from.peer_bottom_,
                                  &from.peer_size_);
#endif
}

}  // namespace kali

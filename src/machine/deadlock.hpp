// Wait-for-graph deadlock detection for blocking matched receives.
//
// Every rank that blocks in Mailbox::recv publishes a wait edge
// (waiter -> expected (src, tag)) before sleeping.  Each registration (and
// each rank retiring via mark_done) runs a satisfiability check: a waiting
// rank is *live* if a matching message is already queued in its mailbox, or
// if some rank that could still produce one is live.  If any waiter ends up
// outside the live set, the waiters form a closed wait-for graph no in-flight
// message can break — a certain deadlock — and the detector throws a full
// diagnostic dump (per-rank state, expected source/tag with registry names,
// mailbox contents) the instant the set closes, instead of letting the run
// sit out the wall-clock recv timeout (which remains the fallback for stalls
// the graph cannot prove, e.g. a live peer that simply never sends).
//
// Soundness rests on two properties of the machine layer:
//  * pushes are synchronous — Context::send_bytes deposits directly into the
//    destination mailbox, so "in flight" means "queued in the mailbox" and
//    Mailbox::probe sees every message that exists;
//  * mailboxes are single-consumer — only the owning rank pops, and it is
//    never popping while registered as waiting, so a probe observed under
//    the detector lock cannot be invalidated by a concurrent pop.
//
// Lock order: detector mutex, then mailbox mutex (inside probe/snapshot).
// Mailbox::recv never calls into the detector while holding its own lock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/mailbox.hpp"

namespace kali {

/// One line per queued message: "src -> owner tag <name> (<bytes> B, epoch
/// <e>)".  Messages with epoch > max_epoch are omitted (post-barrier early
/// arrivals are not leaks of the phase being checked).  Empty string if
/// nothing qualifies.
[[nodiscard]] std::string describe_pending(
    const Mailbox& mb, int owner_rank,
    std::uint32_t max_epoch = UINT32_MAX);

/// Number of queued messages with epoch <= max_epoch: the sent-but-never-
/// received count the leak checks assert to be zero at sync_clocks (epoch
/// filter skips messages a faster peer already sent into the *next* phase)
/// and at machine teardown (max_epoch = UINT32_MAX: everything is a leak).
[[nodiscard]] std::size_t stale_pending(const Mailbox& mb,
                                        std::uint32_t max_epoch);

class DeadlockDetector {
 public:
  /// One mailbox per rank, indexed by rank.  Pointers must outlive the
  /// detector (Machine owns both).
  explicit DeadlockDetector(std::vector<Mailbox*> mailboxes);

  /// Forget all wait state (call before each Machine::run).
  void reset();

  /// Rank `rank` is about to block waiting for (src, tag).  Runs the
  /// wait-for-graph check; throws kali::Error with the diagnostic dump if
  /// this registration closes a deadlocked set.
  void enter_wait(int rank, int src, int tag);

  /// Rank `rank` woke up (it will re-check its mailbox and either pop or
  /// re-register).  Must be called before the rank pops, so a rank is never
  /// simultaneously "waiting" and consuming.
  void leave_wait(int rank);

  /// Rank `rank` finished its program and will never send again.  Runs the
  /// check: waiters expecting this rank may have just become unsatisfiable.
  void mark_done(int rank);

 private:
  enum class State : std::uint8_t { kRunning, kWaiting, kDone };

  struct RankState {
    State state = State::kRunning;
    int want_src = 0;
    int want_tag = 0;
  };

  /// Throws if the current wait-for graph contains a closed stuck set.
  void check_locked();

  [[nodiscard]] std::string dump_locked(
      const std::vector<bool>& stuck) const;

  std::vector<Mailbox*> mailboxes_;
  std::vector<RankState> ranks_;
  std::mutex mu_;
};

}  // namespace kali

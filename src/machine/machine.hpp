// The virtual loosely coupled machine: N processors with private address
// spaces, point-to-point messaging, and a deterministic simulated clock.
//
// Machine::run executes an SPMD program: the same callable on every
// processor, exactly like the node program of a 1989 hypercube (or an MPI
// rank today).  Each simulated rank is a cooperatively scheduled fiber on
// a fixed worker pool (machine/scheduler.hpp) — not an OS thread — so P
// scales to tens of thousands of ranks.  Memory isolation is by
// construction: processors share no data except through Context::send/recv.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "machine/config.hpp"
#include "machine/deadlock.hpp"
#include "machine/processor.hpp"
#include "machine/stats.hpp"

namespace kali {

class Context;
class FiberScheduler;
class HbLog;
class MessageTrace;

class Machine {
 public:
  explicit Machine(int nprocs, MachineConfig cfg = {});

  [[nodiscard]] int size() const { return static_cast<int>(procs_.size()); }
  [[nodiscard]] const MachineConfig& config() const { return cfg_; }

  /// Run `program` on every processor — one fiber each, multiplexed onto
  /// MachineConfig::sim_workers host threads — and wait for completion.
  /// If any processor throws, all others are aborted and the first
  /// exception is rethrown on the caller's thread.
  void run(const std::function<void(Context&)>& program);

  /// Machine-global edge-ledger compaction (the between-barriers pruning
  /// of store-and-forward ledgers).  Collective: every rank must call it,
  /// from inside a run; use the compact_edge_ledgers(Context&) wrapper in
  /// machine/collectives.hpp.  Zero simulated cost.
  void quiesce_compact();

  /// Hop count between two ranks under the configured topology.
  [[nodiscard]] int hops(int a, int b) const;

  /// Effective one-message cut-through wire latency between two ranks.
  [[nodiscard]] double wire_latency(int a, int b) const;

  /// Deterministic node path a message follows from `a` to `b` under the
  /// configured topology (see topology.hpp route()).  Both endpoints of a
  /// transfer reconstruct the same path — the store-and-forward model's
  /// edge occupancy is derived from it.
  [[nodiscard]] std::vector<int> route(int a, int b) const;

  Processor& proc(int rank);

  /// Snapshot of all counters/clocks (call between runs, not during).
  [[nodiscard]] MachineStats stats() const;

  /// Zero all clocks and counters (e.g. after a warm-up phase).
  void reset_stats();

  /// The wait-for-graph deadlock detector, or nullptr when
  /// MachineConfig::deadlock_detection is off (recvs then rely on the
  /// wall-clock timeout alone).
  [[nodiscard]] DeadlockDetector* deadlock_detector() {
    return detector_.get();
  }

  /// Attach a message-event trace (machine/trace.hpp MessageTrace) that
  /// every send/recv of subsequent runs is recorded into, or nullptr to
  /// detach.  The trace must be sized for this machine and outlive the
  /// runs; it is harness-side observability only (never feeds clocks).
  void attach_message_trace(MessageTrace* t) { trace_ = t; }
  [[nodiscard]] MessageTrace* message_trace() const { return trace_; }

  /// Attach a happens-before event log (machine/hb.hpp HbLog) that
  /// subsequent runs record synchronization and shared-state access events
  /// into, or nullptr to detach.  Sized for at least this machine; must
  /// outlive the runs.  Recording additionally requires
  /// MachineConfig::hb_instrumentation (on by default).  Harness-side
  /// observability only — never feeds clocks, payloads, or stats.
  void attach_hb_log(HbLog* log) { hb_ = log; }
  /// The log runs will record into: the attached log when instrumentation
  /// is enabled, else nullptr.
  [[nodiscard]] HbLog* hb_log() const {
    return cfg_.hb_instrumentation ? hb_ : nullptr;
  }

 private:
  MachineConfig cfg_;
  std::vector<std::unique_ptr<Processor>> procs_;
  std::unique_ptr<DeadlockDetector> detector_;
  MessageTrace* trace_ = nullptr;
  HbLog* hb_ = nullptr;
  FiberScheduler* active_sched_ = nullptr;  ///< non-null only inside run()
};

}  // namespace kali

// Step/processor activity tracing, used to regenerate the paper's Figure 3
// (data-flow graph activity) and Figure 5 (mapping onto the processor array),
// plus the message-event trace the offline protocol verifier
// (tools/check_trace.py) consumes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace kali {

/// A (step x processor) character matrix.  Thread-safe marking; rendering is
/// done after the run.  '.' means idle.
class ActivityTrace {
 public:
  ActivityTrace() = default;
  ActivityTrace(int nsteps, int nprocs) { resize(nsteps, nprocs); }

  void resize(int nsteps, int nprocs);
  void mark(int step, int proc, char symbol);

  [[nodiscard]] int nsteps() const { return nsteps_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] char at(int step, int proc) const;

  /// Number of processors marked non-idle at `step`.
  [[nodiscard]] int active_count(int step) const;

  /// Number of processors marked with `symbol` at `step`.
  [[nodiscard]] int count(int step, char symbol) const;

  /// Render like Figure 5: one row per step, one column per processor.
  [[nodiscard]] std::string render(const std::vector<std::string>& step_labels = {}) const;

 private:
  int nsteps_ = 0;
  int nprocs_ = 0;
  std::vector<char> cells_;
  mutable std::mutex mu_;
};

/// Message-event trace: every send and receive of a run, recorded in
/// program order per rank.  Attach via Machine::attach_message_trace; the
/// offline verifier (tools/check_trace.py) replays the write() output and
/// checks FIFO non-overtaking, tag-registry membership, and send/recv match
/// counts.
///
/// Lock-free by sharding: each rank appends only to its own event vector
/// (sends land in the sender's shard, receives in the receiver's), and the
/// worker-pool join at the end of Machine::run publishes everything before
/// write()/events() run on the caller's thread.  Purely harness-side
/// observability — the recorded metadata never feeds simulated clocks.
/// Per-rank program order is host-schedule-independent, so the write()
/// output is byte-identical across runs and worker counts (the
/// scheduler-determinism tests assert this).
class MessageTrace {
 public:
  struct Event {
    char kind = '?';  ///< 'S' (send) or 'R' (recv)
    int peer = -1;    ///< destination for sends, source for receives
    int tag = 0;
    std::uint64_t seq = 0;    ///< sender-local sequence number
    std::uint64_t bytes = 0;  ///< payload size
    /// sync_clocks epoch of the *recording* rank: the sender's at send
    /// time, the receiver's at receive time — a matched pair disagreeing
    /// straddled a barrier (the verifier's epoch-straddle rule).
    std::uint32_t epoch = 0;
  };

  explicit MessageTrace(int nprocs)
      : events_(static_cast<std::size_t>(nprocs)) {}

  /// Record rank -> dst (called from rank's own thread, at send time).
  void record_send(int rank, int dst, int tag, std::uint64_t seq,
                   std::uint64_t bytes, std::uint32_t epoch) {
    events_[static_cast<std::size_t>(rank)].push_back(
        {'S', dst, tag, seq, bytes, epoch});
  }

  /// Record src -> rank (called from rank's own thread, at receive time).
  void record_recv(int rank, int src, int tag, std::uint64_t seq,
                   std::uint64_t bytes, std::uint32_t epoch) {
    events_[static_cast<std::size_t>(rank)].push_back(
        {'R', src, tag, seq, bytes, epoch});
  }

  [[nodiscard]] int nprocs() const { return static_cast<int>(events_.size()); }
  [[nodiscard]] const std::vector<Event>& events(int rank) const {
    return events_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::size_t total_events() const;
  void clear();

  /// Serialize for tools/check_trace.py: a `kali-trace 1 <nprocs>` header,
  /// then one line per event in per-rank program order, ranks ascending:
  ///   S <rank> <peer> <tag> <seq> <bytes> <epoch>
  ///   R <rank> <peer> <tag> <seq> <bytes> <epoch>
  void write(std::ostream& os) const;

 private:
  std::vector<std::vector<Event>> events_;  // shard per rank, no locks
};

}  // namespace kali

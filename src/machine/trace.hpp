// Step/processor activity tracing, used to regenerate the paper's Figure 3
// (data-flow graph activity) and Figure 5 (mapping onto the processor array).
#pragma once

#include <mutex>
#include <string>
#include <vector>

namespace kali {

/// A (step x processor) character matrix.  Thread-safe marking; rendering is
/// done after the run.  '.' means idle.
class ActivityTrace {
 public:
  ActivityTrace() = default;
  ActivityTrace(int nsteps, int nprocs) { resize(nsteps, nprocs); }

  void resize(int nsteps, int nprocs);
  void mark(int step, int proc, char symbol);

  [[nodiscard]] int nsteps() const { return nsteps_; }
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] char at(int step, int proc) const;

  /// Number of processors marked non-idle at `step`.
  [[nodiscard]] int active_count(int step) const;

  /// Number of processors marked with `symbol` at `step`.
  [[nodiscard]] int count(int step, char symbol) const;

  /// Render like Figure 5: one row per step, one column per processor.
  [[nodiscard]] std::string render(const std::vector<std::string>& step_labels = {}) const;

 private:
  int nsteps_ = 0;
  int nprocs_ = 0;
  std::vector<char> cells_;
  mutable std::mutex mu_;
};

}  // namespace kali

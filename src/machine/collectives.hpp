// Tree-based collectives over a Group, built purely from point-to-point
// messages — exactly what a KF1 compiler would emit for replicated control
// flow on a loosely coupled machine.
//
// All members of the group must call the same collective in the same order
// (standard SPMD discipline).  Tags live in the collectives band of the
// reserved-tag registry (machine/message.hpp), so user, runtime, and kernel
// point-to-point traffic can never collide with them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "machine/context.hpp"
#include "machine/group.hpp"
#include "machine/message.hpp"   // kCollectiveTagBase (reserved-tag registry)
#include "machine/schedule.hpp"  // CommSchedule rounds for all_gather

namespace kali {

inline constexpr int kTagReduceUp = kCollectiveTagBase + 1;
inline constexpr int kTagBcastDown = kCollectiveTagBase + 2;
inline constexpr int kTagGather = kCollectiveTagBase + 3;
inline constexpr int kTagBarrierUp = kCollectiveTagBase + 4;
inline constexpr int kTagBarrierDown = kCollectiveTagBase + 5;
inline constexpr int kTagGatherCounts = kCollectiveTagBase + 6;
inline constexpr int kTagAllGather = kCollectiveTagBase + 7;
// The registry (message.hpp) pins the collectives-band allocation to
// [kCollectiveTagFirst, kCollectiveTagLast]; extending the block above
// means widening those bounds first.
static_assert(kTagReduceUp == kCollectiveTagFirst &&
                  kTagAllGather == kCollectiveTagLast,
              "collectives tag block drifted from the reserved-tag registry");

namespace detail {
inline int tree_parent(int i) { return (i - 1) / 2; }
inline int tree_child(int i, int which) { return 2 * i + 1 + which; }

/// Members of the (binary heap) subtree rooted at `i` in an `n`-member
/// tree, sorted ascending — the order in which gather's up-sweep messages
/// lay out their per-member counts and payload segments.
inline std::vector<int> tree_subtree_sorted(int i, int n) {
  std::vector<int> out;
  std::vector<int> stack{i};
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    if (v < n) {
      out.push_back(v);
      stack.push_back(tree_child(v, 0));
      stack.push_back(tree_child(v, 1));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}
}  // namespace detail

/// Synchronize all group members (empty-payload reduce + broadcast).
void barrier(Context& ctx, const Group& g);

/// Broadcast `data` from the member at `root_index` to all members.
template <class T>
void broadcast(Context& ctx, const Group& g, int root_index, std::span<T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "broadcast: bad root");
  // Re-index the tree so the root is node 0.
  auto pos = [&](int i) { return (i - root_index + g.size()) % g.size(); };
  auto unpos = [&](int i) { return (i + root_index) % g.size(); };
  const int me = pos(g.index());
  if (me != 0) {
    ctx.recv_into(g.rank_at(unpos(detail::tree_parent(me))), kTagBcastDown,
                  data);
  }
  for (int which = 0; which < 2; ++which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      ctx.send_span(g.rank_at(unpos(c)), kTagBcastDown,
                    std::span<const T>(data.data(), data.size()));
    }
  }
}

/// Element-wise tree reduction of `data` into the member at `root_index`.
/// On return, only the root's `data` holds the reduced values.
template <class T, class Op>
void reduce(Context& ctx, const Group& g, int root_index, std::span<T> data, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "reduce: bad root");
  auto pos = [&](int i) { return (i - root_index + g.size()) % g.size(); };
  auto unpos = [&](int i) { return (i + root_index) % g.size(); };
  const int me = pos(g.index());
  for (int which = 1; which >= 0; --which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      std::vector<T> incoming = ctx.recv_vec<T>(g.rank_at(unpos(c)), kTagReduceUp);
      KALI_CHECK(incoming.size() == data.size(), "reduce size mismatch");
      for (std::size_t k = 0; k < data.size(); ++k) {
        data[k] = op(data[k], incoming[k]);
      }
      ctx.compute(static_cast<double>(data.size()));
    }
  }
  if (me != 0) {
    ctx.send_span(g.rank_at(unpos(detail::tree_parent(me))), kTagReduceUp,
                  std::span<const T>(data.data(), data.size()));
  }
}

/// Reduce to member 0, then broadcast: all members end with the result.
template <class T, class Op>
void allreduce(Context& ctx, const Group& g, std::span<T> data, Op op) {
  reduce(ctx, g, 0, data, op);
  broadcast(ctx, g, 0, data);
}

template <class T>
T allreduce_sum(Context& ctx, const Group& g, T value) {
  allreduce(ctx, g, std::span<T>(&value, 1), [](T a, T b) { return a + b; });
  return value;
}

template <class T>
T allreduce_max(Context& ctx, const Group& g, T value) {
  allreduce(ctx, g, std::span<T>(&value, 1),
            [](T a, T b) { return a > b ? a : b; });
  return value;
}

/// Gather variable-length contributions to `root_index`.  Returns, on the
/// root only, the concatenation in group order; elsewhere an empty vector.
///
/// Tree-structured like reduce: each node merges its children's subtrees
/// and forwards one (counts, payload) message pair to its parent, so the
/// root drains two children in O(log P) depth instead of paying P - 1
/// serial receive latencies.  Counts travel as an explicit header because
/// contributions are variable-length and heap subtrees interleave member
/// indices — the root needs them to reassemble group order.
template <class T>
std::vector<T> gather(Context& ctx, const Group& g, int root_index,
                      std::span<const T> mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "gather: bad root");
  if (g.size() == 1) {
    return std::vector<T>(mine.begin(), mine.end());
  }
  // Re-index the tree so the root is node 0.
  auto pos = [&](int i) { return (i - root_index + g.size()) % g.size(); };
  auto unpos = [&](int i) { return (i + root_index) % g.size(); };
  const int me = pos(g.index());

  // This subtree's contributions: member (pos-)indices sorted ascending,
  // one count per member, payload segments concatenated in the same order.
  std::vector<int> members{me};
  std::vector<std::int64_t> counts{static_cast<std::int64_t>(mine.size())};
  std::vector<T> data(mine.begin(), mine.end());
  for (int which = 1; which >= 0; --which) {
    const int c = detail::tree_child(me, which);
    if (c >= g.size()) {
      continue;
    }
    const int crank = g.rank_at(unpos(c));
    const std::vector<int> csub = detail::tree_subtree_sorted(c, g.size());
    const auto ccounts = ctx.recv_vec<std::int64_t>(crank, kTagGatherCounts);
    const auto cdata = ctx.recv_vec<T>(crank, kTagGather);
    KALI_CHECK(ccounts.size() == csub.size(), "gather: counts mismatch");
    // Merge the child's sorted run into ours, member by member.
    std::vector<int> m2;
    std::vector<std::int64_t> c2;
    std::vector<T> d2;
    m2.reserve(members.size() + csub.size());
    c2.reserve(members.size() + csub.size());
    d2.reserve(data.size() + cdata.size());
    std::size_t ai = 0, bi = 0, aoff = 0, boff = 0;
    while (ai < members.size() || bi < csub.size()) {
      const bool take_mine =
          bi == csub.size() ||
          (ai < members.size() && members[ai] < csub[bi]);
      if (take_mine) {
        const auto n = static_cast<std::size_t>(counts[ai]);
        m2.push_back(members[ai]);
        c2.push_back(counts[ai]);
        d2.insert(d2.end(), data.begin() + static_cast<std::ptrdiff_t>(aoff),
                  data.begin() + static_cast<std::ptrdiff_t>(aoff + n));
        aoff += n;
        ++ai;
      } else {
        const auto n = static_cast<std::size_t>(ccounts[bi]);
        m2.push_back(csub[bi]);
        c2.push_back(ccounts[bi]);
        d2.insert(d2.end(), cdata.begin() + static_cast<std::ptrdiff_t>(boff),
                  cdata.begin() + static_cast<std::ptrdiff_t>(boff + n));
        boff += n;
        ++bi;
      }
    }
    members = std::move(m2);
    counts = std::move(c2);
    data = std::move(d2);
    ctx.compute(static_cast<double>(data.size()));  // merge copy cost
  }
  if (me != 0) {
    const int prank = g.rank_at(unpos(detail::tree_parent(me)));
    ctx.send_span<std::int64_t>(prank, kTagGatherCounts,
                                std::span<const std::int64_t>(counts));
    ctx.send_span<T>(prank, kTagGather, std::span<const T>(data));
    return {};
  }
  // Root: `members` now covers every pos index 0..n-1; re-emit segments in
  // group order (pos order is group order rotated by root_index).
  std::vector<std::size_t> offset(members.size() + 1, 0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    offset[i + 1] = offset[i] + static_cast<std::size_t>(counts[i]);
  }
  std::vector<T> out;
  out.reserve(data.size());
  for (int j = 0; j < g.size(); ++j) {
    const auto p = static_cast<std::size_t>(pos(j));
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(offset[p]),
               data.begin() + static_cast<std::ptrdiff_t>(offset[p + 1]));
  }
  return out;
}

namespace detail {

/// Tree-structured all_gather for tiny payloads: gather everything to
/// member 0 through the binary tree, then broadcast the total count and
/// the concatenation back down.  O(log n) message latencies on the
/// critical path versus the dense exchange's n-1 serialized rounds —
/// the win for latency-bound payloads; for large ones the root's 2x
/// bandwidth funnel loses, which is why the hybrid crossover exists.
template <class T>
std::vector<T> all_gather_tree(Context& ctx, const Group& g,
                               std::span<const T> mine) {
  std::vector<T> all = gather(ctx, g, 0, mine);
  std::uint64_t total =
      g.index() == 0 ? static_cast<std::uint64_t>(all.size()) : 0;
  broadcast(ctx, g, 0, std::span<std::uint64_t>(&total, 1));
  all.resize(static_cast<std::size_t>(total));
  broadcast(ctx, g, 0, std::span<T>(all.data(), all.size()));
  return all;
}

}  // namespace detail

/// All-gather variable-length contributions: every member returns the
/// concatenation of all members' `mine` spans in group order.
///
/// A *hybrid* collective.  The default (bandwidth-bound) algorithm is a
/// dense pairwise exchange (every ordered pair of members carries one
/// message) issued through the round-structured CommSchedule of
/// machine/schedule.hpp: each round is a perfect matching, so under
/// MachineConfig::link_contention no injection or ejection link is
/// oversubscribed and the exchange completes in ~n-1 wire slots instead of
/// the ~2(n-1) that rank-order issue costs.  Tiny payloads (group-max
/// contribution <= MachineConfig::allgather_tree_max_bytes, agreed by a
/// scalar allreduce so every member deterministically picks the same
/// algorithm) instead ride a binary gather + broadcast tree: O(n)
/// messages instead of n(n-1), cutting the network load and aggregate
/// overhead a quadratic message count costs when each payload fits in one
/// packet (e.g. per-iteration residual norms) — at the price of the
/// tree's deeper critical path.  Setting the crossover to 0 pins the
/// dense path and skips the agreement round entirely.
/// `order` selects the dense path's issue order (kPeerOrder is the naive
/// rank-order baseline; kLockstep bounds in-flight mailbox memory to O(1)
/// per port).  No counts travel on the wire (messages are self-sizing) and
/// no member ever sends to itself, whichever algorithm runs.
template <class T>
std::vector<T> all_gather(Context& ctx, const Group& g, std::span<const T> mine,
                          IssueOrder order = IssueOrder::kRoundSchedule) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (g.size() == 1) {
    return std::vector<T>(mine.begin(), mine.end());
  }
  const std::size_t cutoff = ctx.config().allgather_tree_max_bytes;
  if (cutoff > 0) {
    const auto max_bytes = allreduce_max(
        ctx, g, static_cast<std::uint64_t>(mine.size_bytes()));
    if (max_bytes <= cutoff) {
      return detail::all_gather_tree(ctx, g, mine);
    }
  }
  // The schedule's communicator: the group's ranks, sorted so both
  // endpoints of every transfer derive the same round numbering.
  const std::vector<int> members = detail::union_members(g.ranks(), {});
  // Per-peer segment slots, keyed by group index (= output order).
  std::vector<std::vector<T>> segs(static_cast<std::size_t>(g.size()));
  std::vector<std::pair<int, int>> out;  // (machine rank, peer group index)
  std::vector<std::pair<int, int>> in;
  out.reserve(static_cast<std::size_t>(g.size() - 1));
  in.reserve(static_cast<std::size_t>(g.size() - 1));
  for (int i = 0; i < g.size(); ++i) {
    if (i == g.index()) {
      continue;
    }
    out.emplace_back(g.rank_at(i), i);
    in.emplace_back(g.rank_at(i), i);
  }
  double merged = static_cast<double>(mine.size());  // own segment copy
  auto send_one = [&](int rank, int) {
    // Contributions are sent as-is; no packing pass is needed.
    ctx.send_span<T>(rank, kTagAllGather, mine);
  };
  auto recv_one = [&](int rank, int gi) {
    auto& seg = segs[static_cast<std::size_t>(gi)];
    seg = ctx.recv_vec<T>(rank, kTagAllGather);
    merged += static_cast<double>(seg.size());
  };
  detail::issue_exchange(
      members, ctx.rank(), order, out, in, send_one, recv_one, [] {},
      [&] { ctx.compute(merged); });  // concatenation copy cost
  segs[static_cast<std::size_t>(g.index())].assign(mine.begin(), mine.end());
  std::vector<T> result;
  std::size_t total = 0;
  for (const auto& seg : segs) {
    total += seg.size();
  }
  result.reserve(total);
  for (const auto& seg : segs) {
    result.insert(result.end(), seg.begin(), seg.end());
  }
  return result;
}

/// Align the simulated clocks of all members to their maximum (a barrier in
/// model time).  Returns the aligned clock value.
double sync_clocks(Context& ctx, const Group& g);

/// Compact every processor's store-and-forward edge ledgers without a
/// barrier in *model* time: a machine-global host-side quiesce (every rank
/// must call this, like a collective over the whole machine — subgroups are
/// not supported) during which the prefix of each ledger that can no longer
/// affect any future reservation is collapsed to a scalar (see EdgeLedger).
/// Zero simulated cost: clocks, stats, traces, and results are bit-identical
/// with or without it.  Call it periodically inside long phases that never
/// sync_clocks (whose barrier already clears ledgers outright) to keep
/// ledger memory bounded instead of O(messages).
void compact_edge_ledgers(Context& ctx);

}  // namespace kali

// Tree-based collectives over a Group, built purely from point-to-point
// messages — exactly what a KF1 compiler would emit for replicated control
// flow on a loosely coupled machine.
//
// All members of the group must call the same collective in the same order
// (standard SPMD discipline).  Tags live in the collectives band of the
// reserved-tag registry (machine/message.hpp), so user, runtime, and kernel
// point-to-point traffic can never collide with them.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "machine/context.hpp"
#include "machine/group.hpp"
#include "machine/message.hpp"  // kCollectiveTagBase (reserved-tag registry)

namespace kali {

inline constexpr int kTagReduceUp = kCollectiveTagBase + 1;
inline constexpr int kTagBcastDown = kCollectiveTagBase + 2;
inline constexpr int kTagGather = kCollectiveTagBase + 3;
inline constexpr int kTagBarrierUp = kCollectiveTagBase + 4;
inline constexpr int kTagBarrierDown = kCollectiveTagBase + 5;

namespace detail {
inline int tree_parent(int i) { return (i - 1) / 2; }
inline int tree_child(int i, int which) { return 2 * i + 1 + which; }
}  // namespace detail

/// Synchronize all group members (empty-payload reduce + broadcast).
void barrier(Context& ctx, const Group& g);

/// Broadcast `data` from the member at `root_index` to all members.
template <class T>
void broadcast(Context& ctx, const Group& g, int root_index, std::span<T> data) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "broadcast: bad root");
  // Re-index the tree so the root is node 0.
  auto pos = [&](int i) { return (i - root_index + g.size()) % g.size(); };
  auto unpos = [&](int i) { return (i + root_index) % g.size(); };
  const int me = pos(g.index());
  if (me != 0) {
    ctx.recv_into(g.rank_at(unpos(detail::tree_parent(me))), kTagBcastDown,
                  data);
  }
  for (int which = 0; which < 2; ++which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      ctx.send_span(g.rank_at(unpos(c)), kTagBcastDown,
                    std::span<const T>(data.data(), data.size()));
    }
  }
}

/// Element-wise tree reduction of `data` into the member at `root_index`.
/// On return, only the root's `data` holds the reduced values.
template <class T, class Op>
void reduce(Context& ctx, const Group& g, int root_index, std::span<T> data, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "reduce: bad root");
  auto pos = [&](int i) { return (i - root_index + g.size()) % g.size(); };
  auto unpos = [&](int i) { return (i + root_index) % g.size(); };
  const int me = pos(g.index());
  for (int which = 1; which >= 0; --which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      std::vector<T> incoming = ctx.recv_vec<T>(g.rank_at(unpos(c)), kTagReduceUp);
      KALI_CHECK(incoming.size() == data.size(), "reduce size mismatch");
      for (std::size_t k = 0; k < data.size(); ++k) {
        data[k] = op(data[k], incoming[k]);
      }
      ctx.compute(static_cast<double>(data.size()));
    }
  }
  if (me != 0) {
    ctx.send_span(g.rank_at(unpos(detail::tree_parent(me))), kTagReduceUp,
                  std::span<const T>(data.data(), data.size()));
  }
}

/// Reduce to member 0, then broadcast: all members end with the result.
template <class T, class Op>
void allreduce(Context& ctx, const Group& g, std::span<T> data, Op op) {
  reduce(ctx, g, 0, data, op);
  broadcast(ctx, g, 0, data);
}

template <class T>
T allreduce_sum(Context& ctx, const Group& g, T value) {
  allreduce(ctx, g, std::span<T>(&value, 1), [](T a, T b) { return a + b; });
  return value;
}

template <class T>
T allreduce_max(Context& ctx, const Group& g, T value) {
  allreduce(ctx, g, std::span<T>(&value, 1),
            [](T a, T b) { return a > b ? a : b; });
  return value;
}

/// Gather variable-length contributions to `root_index`.  Returns, on the
/// root only, the concatenation in group order; elsewhere an empty vector.
template <class T>
std::vector<T> gather(Context& ctx, const Group& g, int root_index,
                      std::span<const T> mine) {
  static_assert(std::is_trivially_copyable_v<T>);
  KALI_CHECK(root_index >= 0 && root_index < g.size(), "gather: bad root");
  if (g.index() != root_index) {
    ctx.send_span(g.rank_at(root_index), kTagGather, mine);
    return {};
  }
  std::vector<T> out(mine.begin(), mine.end());
  std::vector<std::vector<T>> parts(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) {
    if (i == root_index) {
      continue;
    }
    parts[static_cast<std::size_t>(i)] =
        ctx.recv_vec<T>(g.rank_at(i), kTagGather);
  }
  out.clear();
  for (int i = 0; i < g.size(); ++i) {
    if (i == root_index) {
      out.insert(out.end(), mine.begin(), mine.end());
    } else {
      const auto& p = parts[static_cast<std::size_t>(i)];
      out.insert(out.end(), p.begin(), p.end());
    }
  }
  return out;
}

/// Align the simulated clocks of all members to their maximum (a barrier in
/// model time).  Returns the aligned clock value.
double sync_clocks(Context& ctx, const Group& g);

}  // namespace kali

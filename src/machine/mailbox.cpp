#include "machine/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "machine/deadlock.hpp"
#include "support/check.hpp"

namespace kali {

void Mailbox::push(Message m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(m));
    peak_pending_ = std::max(peak_pending_, queue_.size());
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::try_pop_locked(int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && it->tag == tag) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Mailbox::has_match_locked(int src, int tag) const {
  for (const auto& m : queue_) {
    if ((src == kAnySource || m.src == src) && m.tag == tag) {
      return true;
    }
  }
  return false;
}

Message Mailbox::recv(int src, int tag, double timeout_wall_seconds,
                      DeadlockDetector* detector, int self_rank) {
  // Fallback deadlock guard on the host clock only: the deadline never
  // feeds simulated clocks, payloads, or stats — a correct program never
  // hits it, and with the wait-for-graph detector on, neither do most
  // incorrect ones (provable deadlocks abort instantly via the detector;
  // the timeout catches only open-ended stalls the graph cannot prove).
  // kali-lint: allow(wall-clock) — wall-clock timeout is the guard's point.
  using WallClock = std::chrono::steady_clock;
  const auto deadline = WallClock::now() +
                        std::chrono::duration_cast<WallClock::duration>(
                            std::chrono::duration<double>(timeout_wall_seconds));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (auto m = try_pop_locked(src, tag)) {
        return std::move(*m);
      }
    }
    // Publish the wait edge with no mailbox lock held (the detector takes
    // its own lock first, then probes mailboxes: single fixed lock order).
    // May throw the deadlock diagnostic if this edge closes a stuck set.
    if (detector != nullptr) {
      detector->enter_wait(self_rank, src, tag);
    }
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Re-check under the lock: a push between the pop attempt above and
      // here would otherwise be slept through until the next notify.
      if (!aborted_ && !has_match_locked(src, tag)) {
        timed_out =
            cv_.wait_until(lk, deadline) == std::cv_status::timeout;
      }
    }
    // Deregister before looping back to pop: the detector's soundness
    // argument needs "registered waiting" and "consuming" to be disjoint.
    if (detector != nullptr) {
      detector->leave_wait(self_rank);
    }
    if (timed_out) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!aborted_ && !has_match_locked(src, tag)) {
        throw Error("recv timed out waiting for src=" + std::to_string(src) +
                    " tag=" + std::to_string(tag) +
                    " (likely deadlock; wait-for-graph detection " +
                    (detector != nullptr ? "did not trip" : "is disabled") +
                    ")");
      }
    }
  }
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<std::mutex> lk(mu_);
  return has_match_locked(src, tag);
}

std::vector<PendingMessage> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PendingMessage> out;
  out.reserve(queue_.size());
  for (const auto& m : queue_) {
    out.push_back({m.src, m.tag, m.size_bytes(), m.epoch});
  }
  return out;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t Mailbox::max_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_pending_;
}

void Mailbox::reset_peak() {
  std::lock_guard<std::mutex> lk(mu_);
  peak_pending_ = 0;
}

}  // namespace kali

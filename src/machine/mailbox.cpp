#include "machine/mailbox.hpp"

#include <algorithm>
#include <chrono>

#include "support/check.hpp"

namespace kali {

void Mailbox::push(Message m) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(m));
    peak_pending_ = std::max(peak_pending_, queue_.size());
  }
  cv_.notify_all();
}

std::optional<Message> Mailbox::try_pop_locked(int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && it->tag == tag) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

Message Mailbox::recv(int src, int tag, double timeout_wall_seconds) {
  std::unique_lock<std::mutex> lk(mu_);
  // Deadlock guard on the host clock only: the deadline never feeds
  // simulated clocks, payloads, or stats — a correct program never hits it.
  // kali-lint: allow(wall-clock) — wall-clock timeout is the guard's point.
  using WallClock = std::chrono::steady_clock;
  const auto deadline = WallClock::now() +
                        std::chrono::duration_cast<WallClock::duration>(
                            std::chrono::duration<double>(timeout_wall_seconds));
  for (;;) {
    if (aborted_) {
      throw Error("recv aborted: a peer processor failed");
    }
    if (auto m = try_pop_locked(src, tag)) {
      return std::move(*m);
    }
    if (cv_.wait_until(lk, deadline) == std::cv_status::timeout) {
      throw Error("recv timed out waiting for src=" + std::to_string(src) +
                  " tag=" + std::to_string(tag) + " (likely deadlock)");
    }
  }
}

bool Mailbox::probe(int src, int tag) {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& m : queue_) {
    if ((src == kAnySource || m.src == src) && m.tag == tag) {
      return true;
    }
  }
  return false;
}

void Mailbox::abort() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

std::size_t Mailbox::max_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_pending_;
}

void Mailbox::reset_peak() {
  std::lock_guard<std::mutex> lk(mu_);
  peak_pending_ = 0;
}

}  // namespace kali

#include "machine/mailbox.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "machine/deadlock.hpp"
#include "machine/hb.hpp"
#include "machine/scheduler.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

[[noreturn]] void throw_recv_timeout(int src, int tag,
                                     const DeadlockDetector* detector) {
  throw Error("recv timed out waiting for src=" + std::to_string(src) +
              " tag=" + std::to_string(tag) +
              " (likely deadlock; wait-for-graph detection " +
              (detector != nullptr ? "did not trip" : "is disabled") + ")");
}

}  // namespace

void Mailbox::push(Message m) {
  if (sched_ != nullptr) {
    if (HbLog* hb = sched_->hb_log(); hb != nullptr) {
      // Recorded from the sending fiber (actor m.src) into its own shard.
      // The push is both the synchronization edge to the matching recv and
      // a write to the destination's mailbox object (cross-sender inserts
      // commute — see HbObj::kMbox).
      hb->send(m.src, owner_rank_, m.seq);
      hb->write(m.src, HbObj::kMbox, owner_rank_);
    }
  }
  bool wake_owner = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    // Does this message satisfy the owner fiber's published wait?  Consume
    // the publication under the lock so exactly one push wakes one park.
    if (waiting_active_ && m.tag == waiting_tag_ &&
        (waiting_src_ == kAnySource || m.src == waiting_src_)) {
      waiting_active_ = false;
      wake_owner = true;
    }
    queue_.push_back(std::move(m));
    peak_pending_ = std::max(peak_pending_, queue_.size());
  }
  if (wake_owner) {
    // Outside the mailbox lock: lock order is mailbox, then scheduler.
    sched_->wake(owner_rank_);
  }
  cv_.notify_all();  // standalone (non-fiber) waiters, if any
}

std::optional<Message> Mailbox::try_pop_locked(int src, int tag) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAnySource || it->src == src) && it->tag == tag) {
      Message m = std::move(*it);
      queue_.erase(it);
      return m;
    }
  }
  return std::nullopt;
}

bool Mailbox::has_match_locked(int src, int tag) const {
  for (const auto& m : queue_) {
    if ((src == kAnySource || m.src == src) && m.tag == tag) {
      return true;
    }
  }
  return false;
}

std::size_t Mailbox::match_count_locked(int src, int tag) const {
  std::size_t n = 0;
  for (const auto& m : queue_) {
    if ((src == kAnySource || m.src == src) && m.tag == tag) {
      ++n;
    }
  }
  return n;
}

std::size_t Mailbox::match_count(int src, int tag) const {
  std::lock_guard<std::mutex> lk(mu_);
  return match_count_locked(src, tag);
}

std::optional<Message> Mailbox::try_pop(int src, int tag) {
  std::optional<Message> m;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (aborted_) {
      throw Error("recv aborted: a peer processor failed");
    }
    m = try_pop_locked(src, tag);
  }
  if (m.has_value() && sched_ != nullptr) {
    if (HbLog* hb = sched_->hb_log(); hb != nullptr) {
      hb->match(owner_rank_, m->src, m->seq);
      hb->write(owner_rank_, HbObj::kMbox, owner_rank_);
    }
  }
  return m;
}

void Mailbox::attach_scheduler(FiberScheduler* sched, int owner_rank) {
  std::lock_guard<std::mutex> lk(mu_);
  sched_ = sched;
  owner_rank_ = owner_rank;
  waiting_active_ = false;
}

Message Mailbox::recv_fiber(int src, int tag, double timeout_wall_seconds,
                            DeadlockDetector* detector, int self_rank) {
  FiberScheduler* sched = sched_;
  for (;;) {
    if (sched->aborted()) {
      // Scheduler-level abort (e.g. a diagnosed stack overflow) may not
      // have marked the mailboxes; without this check a parked recv would
      // re-park forever against a pool that is shutting down.
      throw Error("recv aborted: the scheduler is shutting down");
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (auto m = try_pop_locked(src, tag)) {
        if (HbLog* hb = sched->hb_log(); hb != nullptr) {
          hb->match(owner_rank_, m->src, m->seq);
          hb->write(owner_rank_, HbObj::kMbox, owner_rank_);
        }
        return std::move(*m);
      }
    }
    // Publish the wait edge with no mailbox lock held (the detector takes
    // its own lock first, then probes mailboxes: single fixed lock order).
    // May throw the deadlock diagnostic if this edge closes a stuck set.
    if (detector != nullptr) {
      detector->enter_wait(self_rank, src, tag);
    }
    // Announce the park, then publish the wake condition under the mailbox
    // lock.  A push that lands in the window between the unlock below and
    // the suspension finds the fiber kParking and flags it — the scheduler
    // requeues it right after the switch, so the wake is never lost.
    sched->prepare_park(timeout_wall_seconds);
    bool parked = true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (aborted_ || has_match_locked(src, tag)) {
        parked = false;  // already satisfiable: don't suspend
      } else {
        waiting_src_ = src;
        waiting_tag_ = tag;
        waiting_active_ = true;
      }
    }
    bool timed_out = false;
    if (parked) {
      timed_out = sched->commit_park();
    } else {
      sched->cancel_park();
    }
    // Deregister before looping back to pop: the detector's soundness
    // argument needs "registered waiting" and "consuming" to be disjoint.
    if (detector != nullptr) {
      detector->leave_wait(self_rank);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      // A timeout or abort wake may leave the publication unconsumed.
      waiting_active_ = false;
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (timed_out && !has_match_locked(src, tag)) {
        throw_recv_timeout(src, tag, detector);
      }
    }
  }
}

void Mailbox::await_matches_fiber(int src, int tag, std::size_t n,
                                  double timeout_wall_seconds,
                                  DeadlockDetector* detector, int self_rank) {
  FiberScheduler* sched = sched_;
  for (;;) {
    if (sched->aborted()) {
      throw Error("recv aborted: the scheduler is shutting down");
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (match_count_locked(src, tag) >= n) {
        return;
      }
    }
    // Publish the wait edge exactly like a blocking recv: waiting for the
    // k-th message of a lane is a genuine wait-for-graph edge on (src, tag).
    if (detector != nullptr) {
      detector->enter_wait(self_rank, src, tag);
    }
    sched->prepare_park(timeout_wall_seconds);
    bool parked = true;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (aborted_ || match_count_locked(src, tag) >= n) {
        parked = false;
      } else {
        // Each push consumes the publication and wakes the owner once; the
        // loop re-parks until the lane is deep enough.
        waiting_src_ = src;
        waiting_tag_ = tag;
        waiting_active_ = true;
      }
    }
    bool timed_out = false;
    if (parked) {
      timed_out = sched->commit_park();
    } else {
      sched->cancel_park();
    }
    if (detector != nullptr) {
      detector->leave_wait(self_rank);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      waiting_active_ = false;
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (timed_out && match_count_locked(src, tag) < n) {
        throw_recv_timeout(src, tag, detector);
      }
    }
  }
}

void Mailbox::await_matches(int src, int tag, std::size_t n,
                            double timeout_wall_seconds,
                            DeadlockDetector* detector, int self_rank) {
  if (n == 0) {
    return;
  }
  if (sched_ != nullptr && FiberScheduler::current() == sched_) {
    await_matches_fiber(src, tag, n, timeout_wall_seconds, detector,
                        self_rank);
    return;
  }
  // Standalone condition-variable path, mirroring recv()'s fallback.
  // kali-lint: allow(wall-clock) — wall-clock timeout is the guard's point.
  using WallClock = std::chrono::steady_clock;
  const auto deadline = WallClock::now() +
                        std::chrono::duration_cast<WallClock::duration>(
                            std::chrono::duration<double>(timeout_wall_seconds));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (match_count_locked(src, tag) >= n) {
        return;
      }
    }
    if (detector != nullptr) {
      detector->enter_wait(self_rank, src, tag);
    }
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (!aborted_ && match_count_locked(src, tag) < n) {
        timed_out =
            cv_.wait_until(lk, deadline) == std::cv_status::timeout;
      }
    }
    if (detector != nullptr) {
      detector->leave_wait(self_rank);
    }
    if (timed_out) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!aborted_ && match_count_locked(src, tag) < n) {
        throw_recv_timeout(src, tag, detector);
      }
    }
  }
}

std::uint64_t Mailbox::post_op(int src, int tag, std::byte* dest,
                               std::size_t bytes, double post_clock) {
  const std::uint64_t id = next_op_id_++;
  pending_ops_.push_back({id, src, tag, dest, bytes, post_clock});
  return id;
}

void Mailbox::erase_op(std::uint64_t id) {
  for (auto it = pending_ops_.begin(); it != pending_ops_.end(); ++it) {
    if (it->id == id) {
      pending_ops_.erase(it);
      return;
    }
  }
  KALI_FAIL("erase_op: unknown nonblocking operation id");
}

bool Mailbox::op_pending(std::uint64_t id) const {
  for (const auto& op : pending_ops_) {
    if (op.id == id) {
      return true;
    }
  }
  return false;
}

std::string Mailbox::describe_pending_ops(int owner) const {
  std::string out;
  for (const auto& op : pending_ops_) {
    out += "  rank " + std::to_string(owner) + ": irecv(src=" +
           std::to_string(op.src) + ", tag=" + std::to_string(op.tag) + ", " +
           std::to_string(op.bytes) +
           " bytes) posted and never completed (dropped handle?)\n";
  }
  return out;
}

Message Mailbox::recv(int src, int tag, double timeout_wall_seconds,
                      DeadlockDetector* detector, int self_rank) {
  if (sched_ != nullptr && FiberScheduler::current() == sched_) {
    return recv_fiber(src, tag, timeout_wall_seconds, detector, self_rank);
  }
  // Standalone condition-variable path (no machine / no fiber scheduler).
  // Fallback deadlock guard on the host clock only: the deadline never
  // feeds simulated clocks, payloads, or stats — a correct program never
  // hits it, and with the wait-for-graph detector on, neither do most
  // incorrect ones (provable deadlocks abort instantly via the detector;
  // the timeout catches only open-ended stalls the graph cannot prove).
  // kali-lint: allow(wall-clock) — wall-clock timeout is the guard's point.
  using WallClock = std::chrono::steady_clock;
  const auto deadline = WallClock::now() +
                        std::chrono::duration_cast<WallClock::duration>(
                            std::chrono::duration<double>(timeout_wall_seconds));
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      if (aborted_) {
        throw Error("recv aborted: a peer processor failed");
      }
      if (auto m = try_pop_locked(src, tag)) {
        return std::move(*m);
      }
    }
    if (detector != nullptr) {
      detector->enter_wait(self_rank, src, tag);
    }
    bool timed_out = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Re-check under the lock: a push between the pop attempt above and
      // here would otherwise be slept through until the next notify.
      if (!aborted_ && !has_match_locked(src, tag)) {
        timed_out =
            cv_.wait_until(lk, deadline) == std::cv_status::timeout;
      }
    }
    if (detector != nullptr) {
      detector->leave_wait(self_rank);
    }
    if (timed_out) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!aborted_ && !has_match_locked(src, tag)) {
        throw_recv_timeout(src, tag, detector);
      }
    }
  }
}

bool Mailbox::probe(int src, int tag) const {
  std::lock_guard<std::mutex> lk(mu_);
  return has_match_locked(src, tag);
}

std::vector<PendingMessage> Mailbox::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<PendingMessage> out;
  out.reserve(queue_.size());
  for (const auto& m : queue_) {
    out.push_back({m.src, m.tag, m.size_bytes(), m.epoch});
  }
  return out;
}

void Mailbox::abort() {
  bool wake_owner = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    aborted_ = true;
    if (waiting_active_) {
      waiting_active_ = false;
      wake_owner = true;
    }
  }
  if (wake_owner) {
    sched_->wake(owner_rank_);
  }
  cv_.notify_all();
}

std::size_t Mailbox::pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

double Mailbox::min_pending_send_time() const {
  std::lock_guard<std::mutex> lk(mu_);
  double t = std::numeric_limits<double>::infinity();
  for (const auto& m : queue_) {
    t = std::min(t, m.send_time);
  }
  return t;
}

std::size_t Mailbox::max_pending() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_pending_;
}

void Mailbox::reset_peak() {
  std::lock_guard<std::mutex> lk(mu_);
  peak_pending_ = 0;
}

}  // namespace kali

// Aggregated machine statistics, collected after a run.
#pragma once

#include <vector>

#include "machine/processor.hpp"

namespace kali {

struct MachineStats {
  std::vector<ProcCounters> per_proc;
  std::vector<double> clocks;  ///< final simulated clock per processor

  /// Simulated makespan: the slowest processor's clock.
  [[nodiscard]] double max_clock() const;

  /// Totals across processors.
  [[nodiscard]] ProcCounters totals() const;

  /// Fraction of (nprocs * makespan) spent in modeled computation.
  /// This is the "how busy are the processors" number behind Figure 3/5
  /// and the pipelining discussion in sections 3-4 of the paper.
  [[nodiscard]] double compute_utilization() const;
};

}  // namespace kali

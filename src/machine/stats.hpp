// Aggregated machine statistics, collected after a run.
#pragma once

#include <vector>

#include "machine/processor.hpp"

namespace kali {

struct MachineStats {
  std::vector<ProcCounters> per_proc;
  std::vector<double> clocks;  ///< final simulated clock per processor

  /// Simulated makespan: the slowest processor's clock.
  [[nodiscard]] double max_clock() const;

  /// Totals across processors.
  [[nodiscard]] ProcCounters totals() const;

  /// Fraction of (nprocs * makespan) spent in modeled computation.
  /// This is the "how busy are the processors" number behind Figure 3/5
  /// and the pipelining discussion in sections 3-4 of the paper.
  [[nodiscard]] double compute_utilization() const;

  /// Messages any rank sent to itself on `tag`, summed over processors.
  /// The runtime's redistribute/remap layers must keep this at zero on
  /// their reserved tags (a self-message pays full messaging cost for data
  /// the rank already owns).
  [[nodiscard]] std::uint64_t self_msgs(int tag) const;

  /// Self-messages across all tags.
  [[nodiscard]] std::uint64_t self_msgs_total() const;

  /// Total simulated time messages spent queued on busy links
  /// (MachineConfig::link_contention); zero when contention is off.
  [[nodiscard]] double link_wait_time() const;

  /// Messages that found an injection or ejection link busy.
  [[nodiscard]] std::uint64_t contended_msgs() const;
};

}  // namespace kali

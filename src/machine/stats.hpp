// Aggregated machine statistics, collected after a run.
#pragma once

#include <map>
#include <vector>

#include "machine/processor.hpp"

namespace kali {

struct MachineStats {
  std::vector<ProcCounters> per_proc;
  std::vector<double> clocks;  ///< final simulated clock per processor
  /// Peak queued-message count of each processor's mailbox.  Unlike every
  /// other field this reflects host interleaving, not simulated time —
  /// assert bounds on it, never exact values.
  std::vector<std::size_t> mailbox_peaks;

  /// Simulated makespan: the slowest processor's clock.
  [[nodiscard]] double max_clock() const;

  /// Totals across processors.
  [[nodiscard]] ProcCounters totals() const;

  /// Fraction of (nprocs * makespan) spent in modeled computation.
  /// This is the "how busy are the processors" number behind Figure 3/5
  /// and the pipelining discussion in sections 3-4 of the paper.
  [[nodiscard]] double compute_utilization() const;

  /// Messages any rank sent to itself on `tag`, summed over processors.
  /// The runtime's redistribute/remap layers must keep this at zero on
  /// their reserved tags (a self-message pays full messaging cost for data
  /// the rank already owns).
  [[nodiscard]] std::uint64_t self_msgs(int tag) const;

  /// Self-messages across all tags.
  [[nodiscard]] std::uint64_t self_msgs_total() const;

  /// Messages sent on `tag`, summed over processors (matched-send ledger).
  [[nodiscard]] std::uint64_t sent_msgs(int tag) const;

  /// Messages received on `tag`, summed over processors.
  [[nodiscard]] std::uint64_t recv_msgs(int tag) const;

  /// Per-tag send/recv imbalance: tag -> (sent - received), only tags with
  /// a nonzero difference.  After a drained run every entry is a leaked
  /// (sent-but-never-received) message — or, negative, a receive of a
  /// message from a previous accounting era (impossible within one run).
  [[nodiscard]] std::map<int, std::int64_t> unmatched_by_tag() const;

  /// Total simulated time messages spent queued on busy node ports
  /// (LinkContention::kPorts); zero when contention is off.
  [[nodiscard]] double link_wait_time() const;

  /// Total simulated time messages spent queued on busy topology edges
  /// (LinkContention::kStoreForward); zero in the other tiers.
  [[nodiscard]] double edge_wait_time() const;

  /// Busy-port/edge encounters across all messages.
  [[nodiscard]] std::uint64_t contended_msgs() const;

  /// Total post-to-arrival window time of nonblocking receives, summed over
  /// processors; zero for purely blocking runs (see
  /// ProcCounters::overlap_wire_time).
  [[nodiscard]] double overlap_wire_time() const;

  /// The portion of overlap_wire_time the receivers spent on other work
  /// instead of idling — wire time actually hidden behind local progress.
  [[nodiscard]] double overlap_hidden_time() const;

  /// overlap_hidden_time / overlap_wire_time: the fraction of in-flight
  /// wire time hidden behind compute (0 when no nonblocking receives ran).
  /// The per-case column BENCH_scaling.json records.
  [[nodiscard]] double overlap_ratio() const;

  /// Heaviest store-and-forward load on any single directed topology edge:
  /// the message count of the busiest edge, merged across processors.
  /// Zero unless the store-and-forward tier ran.
  [[nodiscard]] std::uint64_t max_edge_load() const;

  /// Largest mailbox_peaks entry: the worst in-flight buffering any
  /// processor needed.  Host-interleaving dependent (see mailbox_peaks).
  [[nodiscard]] std::size_t max_mailbox_depth() const;
};

}  // namespace kali

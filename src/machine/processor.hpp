// Per-processor state: mailbox, simulated clock, link-port clocks, the
// store-and-forward edge state, and activity counters.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "machine/mailbox.hpp"
#include "support/check.hpp"

namespace kali {

/// Activity counters, all in simulated seconds unless noted.
struct ProcCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double flops = 0.0;
  double compute_time = 0.0;   ///< time spent in modeled computation
  double overhead_time = 0.0;  ///< send/recv per-message software overhead
  double wait_time = 0.0;      ///< idle time waiting for message arrival
  double link_wait_time = 0.0;       ///< time messages queued on busy ports
  double edge_wait_time = 0.0;       ///< time queued on busy topology edges
  std::uint64_t contended_msgs = 0;  ///< busy-port/edge encounters

  /// Communication/computation overlap ledger, filled only by nonblocking
  /// completions (Context::irecv + wait).  For each completed operation the
  /// in-flight window is the modeled time from its post to its message's
  /// arrival; `overlap_wire_time` accumulates the windows and
  /// `overlap_hidden_time` the portion of each window this rank spent doing
  /// other work (compute, sends, earlier completions) instead of idling —
  /// i.e. wire time actually hidden behind local progress.  Blocking
  /// receives leave both at zero, so overlap_hidden / overlap_wire is the
  /// overlap_ratio the scaling bench records (BENCH_scaling.json).
  double overlap_hidden_time = 0.0;  ///< in-flight wire time hidden by work
  double overlap_wire_time = 0.0;    ///< total post-to-arrival window time

  /// Matched send/recv ledgers, by tag: how many messages this rank sent on
  /// each tag, and how many it received.  Summed machine-wide
  /// (MachineStats::sent_msgs / recv_msgs / unmatched_by_tag) the two must
  /// balance per tag once a phase drains — the "LeakSanitizer for
  /// messages" the sync_clocks and teardown leak checks enforce, and the
  /// ground truth tests use to prove a message-dropping optimization
  /// dropped only messages nobody would have received.
  std::map<int, std::uint64_t> sent_by_tag;
  std::map<int, std::uint64_t> recv_by_tag;

  /// Messages this rank sent to itself, by tag.  A self-message still pays
  /// send/recv overhead plus wire latency in the cost model, so runtime
  /// layers must copy locally instead; this map is how tests assert they do
  /// (see MachineStats::self_msgs).
  std::map<int, std::uint64_t> self_msgs_by_tag;

  /// Store-and-forward edge loads: messages this processor resolved onto
  /// each directed topology edge (edge_id from topology.hpp).  The sender
  /// accounts the injection edge and the receiver every later hop, so each
  /// message/edge transit is counted exactly once machine-wide; summed in
  /// MachineStats and surfaced as max_edge_load().
  std::map<std::int64_t, std::uint64_t> edge_msgs;

  ProcCounters& operator+=(const ProcCounters& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    flops += o.flops;
    compute_time += o.compute_time;
    overhead_time += o.overhead_time;
    wait_time += o.wait_time;
    link_wait_time += o.link_wait_time;
    edge_wait_time += o.edge_wait_time;
    contended_msgs += o.contended_msgs;
    overlap_hidden_time += o.overlap_hidden_time;
    overlap_wire_time += o.overlap_wire_time;
    for (const auto& [tag, n] : o.sent_by_tag) {
      sent_by_tag[tag] += n;
    }
    for (const auto& [tag, n] : o.recv_by_tag) {
      recv_by_tag[tag] += n;
    }
    for (const auto& [tag, n] : o.self_msgs_by_tag) {
      self_msgs_by_tag[tag] += n;
    }
    for (const auto& [edge, n] : o.edge_msgs) {
      edge_msgs[edge] += n;
    }
    return *this;
  }
};

/// One store-and-forward reservation of a directed edge, recorded in the
/// resolving processor's per-edge ledger.  Entries are totally ordered by
/// the key (send_time, src, seq) — the canonical serialization order, which
/// unlike arrival order is a pure function of the simulated program.
struct EdgeReservation {
  double send_time = 0.0;  ///< network-entry time of the message (key major)
  int src = -1;            ///< sending rank (key tiebreak)
  std::uint64_t seq = 0;   ///< sender-local message number (key minor)
  double finish = 0.0;     ///< when the message clears the edge
  /// Running max of `finish` over this and every smaller-key entry, so a
  /// new reservation reads its queueing bound in O(log n) instead of
  /// rescanning the prefix.
  double prefix_max = 0.0;

  [[nodiscard]] bool key_less(double t, int s, std::uint64_t q) const {
    if (send_time != t) {
      return send_time < t;
    }
    if (src != s) {
      return src < s;
    }
    return seq < q;
  }
};

/// The per-edge reservation ledger, compactable between barriers.  A
/// machine-global quiesce (Machine::quiesce_compact) establishes a floor F
/// such that no future reservation anywhere can carry send_time < F; every
/// entry below the floor then sorts strictly before all future keys, so the
/// whole prefix collapses into one scalar — its prefix_max — and the entry
/// storage stops growing O(messages) across long unbarriered phases.
struct EdgeLedger {
  /// prefix_max of the collapsed (pruned) prefix: the busy-until bound a
  /// reservation at the front of `entries` queues behind.  0 until the
  /// first compaction, exactly like an empty ledger.
  double collapsed_busy = 0.0;
  /// Compaction floor: every retained or future entry has send_time >= this.
  /// Reservations below it would sort into the collapsed prefix, which no
  /// longer exists — reserve_edge rejects them (KALI_CHECK_INVARIANTS).
  double floor = 0.0;
  /// Live reservations, sorted by (send_time, src, seq).
  std::vector<EdgeReservation> entries;
};

/// One virtual processor.  Owned by Machine; user code touches it only
/// through Context.  Not copyable (it holds a live mailbox).
class Processor {
 public:
  explicit Processor(int rank) : rank_(rank) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] double clock() const { return clock_; }
  void set_clock(double t) {
    KALI_INVARIANT(t >= clock_,
                   "processor clock moved backwards within a phase");
    clock_ = t;
  }

  /// Set the clock without the monotonicity guard.  The one sanctioned
  /// backwards move: sync_clocks aligns every member to the maximum of
  /// the clocks *at barrier entry*, excluding the barrier's own allreduce
  /// traffic from the measurement — which may pull this member's clock
  /// back below where that traffic advanced it.  Everything else must go
  /// through set_clock.
  void realign_clock(double t) { clock_ = t; }

  // Busy-until clocks of the two directed links attaching this node to the
  // network (LinkContention::kPorts).  The injection link is advanced by
  // this processor's own sends, the ejection link as it processes receives
  // — both only ever touched by the owning rank's fiber, which keeps
  // contention resolution deterministic.  Within a phase the busy-until times only
  // ever advance (clear_link_state resets them at barriers); a backwards
  // move would let a later message overtake an earlier one on the port.
  [[nodiscard]] double out_link_free() const { return out_link_free_; }
  void set_out_link_free(double t) {
    KALI_INVARIANT(t >= out_link_free_,
                   "injection-port clock moved backwards within a phase");
    out_link_free_ = t;
  }
  [[nodiscard]] double in_link_free() const { return in_link_free_; }
  void set_in_link_free(double t) {
    KALI_INVARIANT(t >= in_link_free_,
                   "ejection-port clock moved backwards within a phase");
    in_link_free_ = t;
  }

  // Count of sync_clocks barriers this processor has passed.  Messages are
  // stamped with the sender's epoch; the KALI_CHECK_INVARIANTS build
  // rejects receives whose stamp differs from the receiver's epoch (the
  // message straddled a barrier, carrying a pre-barrier timestamp into the
  // next measured phase — see Message::epoch).
  [[nodiscard]] std::uint32_t barrier_epoch() const { return barrier_epoch_; }
  void bump_barrier_epoch() { ++barrier_epoch_; }

  // --- store-and-forward state (LinkContention::kStoreForward) -----------
  //
  // Interior edge clocks are conceptually shared between all messages whose
  // routes cross them, but execution contexts may not share mutable clock
  // state without making contention resolution a host-scheduling race.  The
  // model therefore shards every edge resource by the rank that resolves it:
  //
  //  * out_edge_free_ — busy-until clocks of this node's outgoing neighbor
  //    links, advanced at *send* time by the owning fiber only.  Messages
  //    from one sender serialize on each first-hop edge they share.
  //
  //  * edge_ledger_ — reservations for every later hop of every message
  //    this processor *receives*, resolved at receive time from the
  //    message's route.  Messages converging on one receiver queue on the
  //    interior edges they share (tree saturation toward a hot node);
  //    messages to different receivers use independent ledger copies of an
  //    edge — the deterministic approximation that keeps ranks race-free.
  //
  // Within a ledger, entries are kept sorted by (send_time, src, seq) and
  // a message queues only behind smaller-key reservations, so it never
  // waits for canonically *later* traffic whatever order this receiver
  // posts its receives in.  Receive order still bounds what is visible:
  // only messages this receiver has already resolved are in the ledger,
  // so when a canonically earlier message happens to be resolved second,
  // the pair simply does not contend.  Both directions are deterministic —
  // program order, never host scheduling, decides.
  [[nodiscard]] std::map<std::int64_t, double>& out_edge_free() {
    return out_edge_free_;
  }
  [[nodiscard]] std::map<std::int64_t, EdgeLedger>& edge_ledger() {
    return edge_ledger_;
  }

  /// Reserve `edge` in this processor's ledger for a message keyed
  /// (send_time, src, seq) that can reach the edge at `t_in` and occupies
  /// it for `wire` seconds.  Returns the queueing delay (start - t_in).
  /// Keys mostly arrive in increasing order (receives follow the schedule),
  /// so the sorted-insert append path makes this O(log n) lookup + O(1)
  /// amortized maintenance; an out-of-order insert rebuilds the prefix
  /// maxima of the tail it displaces.
  double reserve_edge(std::int64_t edge, double send_time, int src,
                      std::uint64_t seq, double t_in, double wire) {
    EdgeLedger& led = edge_ledger_[edge];
    // A key below the compaction floor would sort into the collapsed
    // prefix, whose individual entries no longer exist to queue behind —
    // the floor proof (Machine::quiesce_compact) says this cannot happen.
    KALI_INVARIANT(send_time >= led.floor,
                   "edge reservation keyed before the compaction floor: "
                   "quiesce_compact's floor bound was violated");
    std::vector<EdgeReservation>& ledger = led.entries;
    auto pos = std::lower_bound(
        ledger.begin(), ledger.end(), 0,
        [&](const EdgeReservation& e, int) {
          return e.key_less(send_time, src, seq);
        });
    // The ledger's total order is only total if keys never repeat: one
    // reservation per (send_time, src, seq) per edge.  A duplicate means a
    // message was resolved twice (or two messages share a sender sequence
    // number) — either way the serialization order is no longer a pure
    // function of the program.
    KALI_INVARIANT(pos == ledger.end() || pos->send_time != send_time ||
                       pos->src != src || pos->seq != seq,
                   "edge ledger key (send_time, src, seq) not strictly "
                   "ordered: duplicate reservation");
    const double busy_until =
        pos == ledger.begin() ? led.collapsed_busy : std::prev(pos)->prefix_max;
    const double start = std::max(t_in, busy_until);
    pos = ledger.insert(pos, {send_time, src, seq, start + wire, 0.0});
    double run = busy_until;
    for (auto it = pos; it != ledger.end(); ++it) {
      run = std::max(run, it->finish);
      it->prefix_max = run;
    }
    return start - t_in;
  }

  /// Collapse every ledger prefix keyed strictly below `floor` into its
  /// scalar prefix_max (see EdgeLedger).  Called only from inside a
  /// machine-global quiesce, where the floor bound is established; clocks
  /// computed after compaction are bit-identical to the uncompacted run
  /// because a collapsed entry's only downstream influence was its
  /// contribution to the prefix maxima, which collapsed_busy preserves.
  void compact_edge_ledgers(double floor) {
    for (auto& [edge, led] : edge_ledger_) {
      auto cut = std::lower_bound(
          led.entries.begin(), led.entries.end(), floor,
          [](const EdgeReservation& e, double f) { return e.send_time < f; });
      if (cut != led.entries.begin()) {
        led.collapsed_busy =
            std::max(led.collapsed_busy, std::prev(cut)->prefix_max);
        led.entries.erase(led.entries.begin(), cut);
      }
      led.floor = std::max(led.floor, floor);
    }
  }

  /// Total live (uncollapsed) edge-ledger entries across all edges — the
  /// quantity compaction bounds; regression-tested against O(M) growth.
  [[nodiscard]] std::size_t edge_ledger_entries() const {
    std::size_t n = 0;
    for (const auto& [edge, led] : edge_ledger_) {
      n += led.entries.size();
    }
    return n;
  }

  /// Forget all link/edge occupancy — the barrier semantics of
  /// sync_clocks: traffic before (and of) the barrier must not leak busy
  /// time into the next measured phase.  Clocks restart at zero, not at
  /// the barrier time: post-barrier events all happen later anyway
  /// (equivalent), while a message still in flight *across* the barrier
  /// must not be charged phantom queueing against a port nothing else
  /// ever used.
  void clear_link_state() {
    out_link_free_ = 0.0;
    in_link_free_ = 0.0;
    out_edge_free_.clear();
    edge_ledger_.clear();
  }

  Mailbox& mailbox() { return mailbox_; }
  ProcCounters& counters() { return counters_; }
  [[nodiscard]] const ProcCounters& counters() const { return counters_; }

  void reset() {
    clock_ = 0.0;
    clear_link_state();
    counters_ = ProcCounters{};
    barrier_epoch_ = 0;
    mailbox_.reset_peak();
    mailbox_.clear_pending_ops();
  }

 private:
  int rank_;
  std::uint32_t barrier_epoch_ = 0;  // sync_clocks count (own fiber only)
  double clock_ = 0.0;  // simulated seconds; touched only by its own fiber
  double out_link_free_ = 0.0;  // injection link busy-until (own fiber only)
  double in_link_free_ = 0.0;   // ejection link busy-until (own fiber only)
  std::map<std::int64_t, double> out_edge_free_;  // own fiber only
  std::map<std::int64_t, EdgeLedger> edge_ledger_;  // ditto
  ProcCounters counters_;
  Mailbox mailbox_;
};

}  // namespace kali

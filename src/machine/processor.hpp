// Per-processor state: mailbox, simulated clock, link-port clocks, and
// activity counters.
#pragma once

#include <cstdint>
#include <map>

#include "machine/mailbox.hpp"

namespace kali {

/// Activity counters, all in simulated seconds unless noted.
struct ProcCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double flops = 0.0;
  double compute_time = 0.0;   ///< time spent in modeled computation
  double overhead_time = 0.0;  ///< send/recv per-message software overhead
  double wait_time = 0.0;      ///< idle time waiting for message arrival
  double link_wait_time = 0.0;       ///< time messages queued on busy links
  std::uint64_t contended_msgs = 0;  ///< messages that found a link busy

  /// Messages this rank sent to itself, by tag.  A self-message still pays
  /// send/recv overhead plus wire latency in the cost model, so runtime
  /// layers must copy locally instead; this map is how tests assert they do
  /// (see MachineStats::self_msgs).
  std::map<int, std::uint64_t> self_msgs_by_tag;

  ProcCounters& operator+=(const ProcCounters& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    flops += o.flops;
    compute_time += o.compute_time;
    overhead_time += o.overhead_time;
    wait_time += o.wait_time;
    link_wait_time += o.link_wait_time;
    contended_msgs += o.contended_msgs;
    for (const auto& [tag, n] : o.self_msgs_by_tag) {
      self_msgs_by_tag[tag] += n;
    }
    return *this;
  }
};

/// One virtual processor.  Owned by Machine; user code touches it only
/// through Context.  Not copyable (it holds a live mailbox).
class Processor {
 public:
  explicit Processor(int rank) : rank_(rank) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] double clock() const { return clock_; }
  void set_clock(double t) { clock_ = t; }

  // Busy-until clocks of the two directed links attaching this node to the
  // network (MachineConfig::link_contention).  The injection link is
  // advanced by this processor's own sends, the ejection link as it
  // processes receives — both only ever touched by the owning thread, which
  // keeps contention resolution deterministic.
  [[nodiscard]] double out_link_free() const { return out_link_free_; }
  void set_out_link_free(double t) { out_link_free_ = t; }
  [[nodiscard]] double in_link_free() const { return in_link_free_; }
  void set_in_link_free(double t) { in_link_free_ = t; }

  Mailbox& mailbox() { return mailbox_; }
  ProcCounters& counters() { return counters_; }
  [[nodiscard]] const ProcCounters& counters() const { return counters_; }

  void reset() {
    clock_ = 0.0;
    out_link_free_ = 0.0;
    in_link_free_ = 0.0;
    counters_ = ProcCounters{};
  }

 private:
  int rank_;
  double clock_ = 0.0;  // simulated seconds; touched only by its own thread
  double out_link_free_ = 0.0;  // injection link busy-until (own thread only)
  double in_link_free_ = 0.0;   // ejection link busy-until (own thread only)
  ProcCounters counters_;
  Mailbox mailbox_;
};

}  // namespace kali

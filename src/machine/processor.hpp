// Per-processor state: mailbox, simulated clock, and activity counters.
#pragma once

#include <cstdint>

#include "machine/mailbox.hpp"

namespace kali {

/// Activity counters, all in simulated seconds unless noted.
struct ProcCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_recv = 0;
  std::uint64_t bytes_recv = 0;
  double flops = 0.0;
  double compute_time = 0.0;   ///< time spent in modeled computation
  double overhead_time = 0.0;  ///< send/recv per-message software overhead
  double wait_time = 0.0;      ///< idle time waiting for message arrival

  ProcCounters& operator+=(const ProcCounters& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_recv += o.msgs_recv;
    bytes_recv += o.bytes_recv;
    flops += o.flops;
    compute_time += o.compute_time;
    overhead_time += o.overhead_time;
    wait_time += o.wait_time;
    return *this;
  }
};

/// One virtual processor.  Owned by Machine; user code touches it only
/// through Context.  Not copyable (it holds a live mailbox).
class Processor {
 public:
  explicit Processor(int rank) : rank_(rank) {}
  Processor(const Processor&) = delete;
  Processor& operator=(const Processor&) = delete;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] double clock() const { return clock_; }
  void set_clock(double t) { clock_ = t; }

  Mailbox& mailbox() { return mailbox_; }
  ProcCounters& counters() { return counters_; }
  [[nodiscard]] const ProcCounters& counters() const { return counters_; }

  void reset() {
    clock_ = 0.0;
    counters_ = ProcCounters{};
  }

 private:
  int rank_;
  double clock_ = 0.0;  // simulated seconds; touched only by its own thread
  ProcCounters counters_;
  Mailbox mailbox_;
};

}  // namespace kali

// Round-structured communication schedules for all-to-all style exchanges
// — the ordering layer between the senders of dense exchanges (the
// redistribution engine, the corner-mode halo exchange, the collectives
// layer's all_gather — they compute *what* travels between each rank pair)
// and the machine (which, with MachineConfig::link_contention, serializes
// each node's injection and ejection links).
//
// A CommSchedule partitions the ordered rank pairs of an n-member
// communicator into rounds, each round a perfect matching: every member
// sends to at most one partner and receives from at most one partner per
// round, so no link is oversubscribed.  Two classical constructions:
//
//  * n a power of two — XOR / pairwise exchange: in round r, member i
//    partners i ^ (r+1).  n-1 rounds; on a hypercube, round r's pairs
//    differ in exactly the bits of r+1, so rounds also spread across
//    physical dimensions.
//
//  * otherwise — latin-square (1-factorization) ordering: in round r,
//    member i partners (r - i) mod n.  n rounds; members for which
//    2i = r (mod n) sit the round out.
//
// Both constructions are involutions per round (my round-r partner's
// round-r partner is me) and cover every ordered pair exactly once, so a
// sender issuing in round order and a receiver posting receives in round
// order agree on a common global order without any extra synchronization:
// round r's messages are injected while round r-1's drain, links stay
// conflict-free, and the all-to-all completes in (n-1) wire slots instead
// of the ~2(n-1) that naive per-peer issue order costs under contention
// (every member hammering the same low-ranked ejection ports first).
//
// redistribute() / copy_strided_dim() collect their per-peer messages and
// pass them through round_sort() before issuing; IssueOrder::kPeerOrder
// preserves the raw enumeration order (the pre-scheduling behaviour, kept
// for benchmarking the difference).
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "machine/trace.hpp"
#include "support/check.hpp"

namespace kali {

/// Whether a runtime exchange overlaps its wire time with local work.
/// kOff is the blocking oracle every call site defaults to; kOn routes the
/// exchange through the nonblocking machine layer (Context::isend/irecv):
/// receives are posted up front, sends fire, local work that does not touch
/// in-flight data runs while the wire drains, and completion happens at an
/// explicit wait point in the canonical (send_time, src, seq) order.  The
/// two paths move the same messages on the same tags with the same payloads
/// — only simulated clocks (and the overlap counters) differ, so results
/// stay bit-identical to the oracle (tests/test_async.cpp).
enum class Overlap {
  kOff,  ///< blocking exchange (the oracle)
  kOn,   ///< split-phase post/compute/wait via isend/irecv
};

/// How a runtime exchange orders its per-peer messages.
enum class IssueOrder {
  kRoundSchedule,  ///< round-structured (default; contention-safe)
  kPeerOrder,      ///< raw peer-enumeration order (naive baseline)
  /// Round-structured *and barriered by data flow*: each member sends to
  /// and then receives from its round partner before advancing, instead of
  /// posting every send up front.  Same messages, same payloads, same
  /// results — and in a dense pairwise exchange (every member both sends
  /// and receives most rounds, e.g. a transpose) the per-round receive
  /// keeps members within a round or two of each other, so in-flight
  /// mailbox memory stays a small constant per port rather than O(P)
  /// slabs (see Mailbox::max_pending).  The bound is a property of the
  /// exchange shape, not a hard flow control: a member with nothing to
  /// receive (a pure source in a funnel-shaped redistribution) never
  /// blocks and degenerates to posting its sends up front.  Deadlock-free
  /// by induction over rounds: every round is a perfect matching and both
  /// partners send (non-blocking) before they receive.
  kLockstep,
};

/// Round/partner algebra of an n-member all-to-all schedule.  Members are
/// dense indices 0..n-1 (a communicator's linearized ranks, not machine
/// ranks).
class CommSchedule {
 public:
  explicit CommSchedule(int nranks) : n_(nranks) {
    KALI_CHECK(nranks >= 1, "schedule needs at least one member");
    pow2_ = nranks >= 2 && (nranks & (nranks - 1)) == 0;
  }

  [[nodiscard]] int nranks() const { return n_; }

  /// Number of rounds: n-1 for powers of two, n otherwise (latin-square
  /// rounds where 2i = r (mod n) idle member i), 0 for a singleton.
  [[nodiscard]] int rounds() const {
    if (n_ == 1) {
      return 0;
    }
    return pow2_ ? n_ - 1 : n_;
  }

  /// Member i's partner in `round`; equal to i when i idles that round.
  [[nodiscard]] int partner(int round, int i) const {
    KALI_CHECK(round >= 0 && round < rounds(), "round out of range");
    KALI_CHECK(i >= 0 && i < n_, "member out of range");
    if (pow2_) {
      return i ^ (round + 1);
    }
    return ((round - i) % n_ + n_) % n_;
  }

  /// The unique round in which members i and j (i != j) are partners.
  [[nodiscard]] int round_of(int i, int j) const {
    KALI_CHECK(i >= 0 && i < n_ && j >= 0 && j < n_ && i != j,
               "round_of needs two distinct members");
    return pow2_ ? (i ^ j) - 1 : (i + j) % n_;
  }

 private:
  int n_;
  bool pow2_ = false;
};

/// Member i's partners in round order — the issue order for i's sends and
/// the posting order for its receives.  Idle rounds are skipped, so the
/// result is a permutation of every other member.
inline std::vector<int> round_order(const CommSchedule& s, int i) {
  std::vector<int> peers;
  peers.reserve(static_cast<std::size_t>(s.nranks() - 1));
  for (int r = 0; r < s.rounds(); ++r) {
    const int p = s.partner(r, i);
    if (p != i) {
      peers.push_back(p);
    }
  }
  return peers;
}

/// Fill `t` with the schedule as a (round x member) activity matrix: 'x'
/// where a member exchanges that round, '.' where it idles — Figure-5-style
/// rendering of the matchings, and the form tests assert on.  (ActivityTrace
/// owns a mutex, so it is filled in place rather than returned.)
inline void schedule_trace(const CommSchedule& s, ActivityTrace& t) {
  t.resize(s.rounds(), s.nranks());
  for (int r = 0; r < s.rounds(); ++r) {
    for (int i = 0; i < s.nranks(); ++i) {
      if (s.partner(r, i) != i) {
        t.mark(r, i, 'x');
      }
    }
  }
}

namespace detail {

/// Sorted union of two rank sets: the common communicator both endpoints of
/// a redistribution derive the schedule from.
inline std::vector<int> union_members(std::vector<int> a,
                                      const std::vector<int>& b) {
  a.insert(a.end(), b.begin(), b.end());
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  return a;
}

/// Dense index of `rank` within sorted `members`.
inline int member_index(std::span<const int> members, int rank) {
  const auto it = std::lower_bound(members.begin(), members.end(), rank);
  KALI_CHECK(it != members.end() && *it == rank,
             "rank not a member of the schedule");
  return static_cast<int>(it - members.begin());
}

/// Reorder per-peer messages (machine rank, payload) into round order for
/// `self_rank` within the sorted communicator `members`.  kPeerOrder leaves
/// the enumeration order untouched.  Self-messages must have been peeled
/// off into local copies before this point.
template <class Payload>
void round_sort(std::vector<std::pair<int, Payload>>& msgs,
                std::span<const int> members, int self_rank, IssueOrder order) {
  if (order == IssueOrder::kPeerOrder || msgs.size() < 2) {
    return;
  }
  const CommSchedule sched(static_cast<int>(members.size()));
  const int me = member_index(members, self_rank);
  std::stable_sort(msgs.begin(), msgs.end(),
                   [&](const auto& a, const auto& b) {
                     return sched.round_of(me, member_index(members, a.first)) <
                            sched.round_of(me, member_index(members, b.first));
                   });
}

/// Drive an exchange in lockstep round order (IssueOrder::kLockstep): walk
/// the schedule's rounds and, for each, send this member's outgoing payload
/// to its round partner (if any) and then receive the partner's incoming
/// one (if any) before moving on.  `out` and `in` hold (machine rank,
/// payload) entries, self-messages already peeled off; `send_one(rank,
/// payload)` must issue the message and `recv_one(rank, payload)` must
/// block until it is consumed.  Every ordered pair of members meets in
/// exactly one round, so the sorted union communicator gives both endpoints
/// the same round for each transfer without any extra synchronization.
template <class Out, class In, class SendFn, class RecvFn>
void lockstep_rounds(std::span<const int> members, int self_rank,
                     std::vector<std::pair<int, Out>>& out,
                     std::vector<std::pair<int, In>>& in, SendFn&& send_one,
                     RecvFn&& recv_one) {
  const CommSchedule sched(static_cast<int>(members.size()));
  const int me = member_index(members, self_rank);
  for (int r = 0; r < sched.rounds(); ++r) {
    const int p = sched.partner(r, me);
    if (p == me) {
      continue;
    }
    const int prank = members[static_cast<std::size_t>(p)];
    for (auto& [rank, payload] : out) {
      if (rank == prank) {
        send_one(rank, payload);
      }
    }
    for (auto& [rank, payload] : in) {
      if (rank == prank) {
        recv_one(rank, payload);
      }
    }
  }
}

/// The one issue-order dispatch shared by every dense exchange
/// (redistribute box/general, copy_strided_dim box/binned/halo-fused,
/// corner-mode halo exchange, collectives all_gather).  One-shot
/// orders sort and fire all sends, charge the pack compute, then drain all
/// receives and charge the unpack compute — the exact operation sequence
/// of the pre-lockstep implementations, so their clocks stay
/// bit-compatible.  Lockstep interleaves per round and charges both
/// computes at the end.  `charge_sends`/`charge_recvs` are thunks so each
/// caller keeps its own accounting; on a member with nothing to send or
/// receive the corresponding steps are no-ops (compute(0) included).
template <class Out, class In, class SendFn, class RecvFn, class ChargeS,
          class ChargeR>
void issue_exchange(std::span<const int> members, int self_rank,
                    IssueOrder order, std::vector<std::pair<int, Out>>& out,
                    std::vector<std::pair<int, In>>& in, SendFn&& send_one,
                    RecvFn&& recv_one, ChargeS&& charge_sends,
                    ChargeR&& charge_recvs) {
  if (order == IssueOrder::kLockstep) {
    lockstep_rounds(members, self_rank, out, in, send_one, recv_one);
    charge_sends();
    charge_recvs();
    return;
  }
  round_sort(out, members, self_rank, order);
  for (auto& [rank, payload] : out) {
    send_one(rank, payload);
  }
  charge_sends();
  round_sort(in, members, self_rank, order);
  for (auto& [rank, payload] : in) {
    recv_one(rank, payload);
  }
  charge_recvs();
}

}  // namespace detail

}  // namespace kali

// Collective phase measurement inside SPMD programs.
//
// Machine::reset_stats() may only be used between runs (from the host
// thread).  Inside a program, a phase is measured collectively: clocks are
// aligned at the start (a cost-free "timer barrier"), each member snapshots
// its own counters, and at the end the group-maximum clock and the summed
// counter deltas are reduced.  The measurement traffic itself never
// contaminates the reported interval.
#pragma once

#include <cstdint>

#include "machine/collectives.hpp"

namespace kali {

struct PhaseStats {
  double makespan = 0.0;  ///< simulated seconds, slowest member
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  double flops = 0.0;
  double compute_time = 0.0;  ///< summed over members

  /// Fraction of (members x makespan) spent computing.
  [[nodiscard]] double utilization(int members) const {
    return makespan > 0.0 ? compute_time / (makespan * members) : 0.0;
  }
};

class PhaseTimer {
 public:
  /// Collective over `g`: aligns clocks and snapshots this member's
  /// counters.  All members must construct and finish in lockstep.
  PhaseTimer(Context& ctx, const Group& g)
      : ctx_(&ctx), group_(g), start_clock_(sync_clocks(ctx, g)) {
    before_ = ctx.proc().counters();
  }

  /// Collective: returns the phase stats (identical on every member).
  PhaseStats finish() {
    // Snapshot by value first: the measurement collectives below would
    // otherwise count themselves.
    const ProcCounters now = ctx_->proc().counters();
    const double end = allreduce_max(*ctx_, group_, ctx_->clock());
    std::uint64_t counts[2] = {now.msgs_sent - before_.msgs_sent,
                               now.bytes_sent - before_.bytes_sent};
    allreduce(*ctx_, group_, std::span<std::uint64_t>(counts, 2),
              [](std::uint64_t a, std::uint64_t b) { return a + b; });
    double sums[2] = {now.flops - before_.flops,
                      now.compute_time - before_.compute_time};
    allreduce(*ctx_, group_, std::span<double>(sums, 2),
              [](double a, double b) { return a + b; });
    PhaseStats s;
    s.makespan = end - start_clock_;
    s.msgs = counts[0];
    s.bytes = counts[1];
    s.flops = sums[0];
    s.compute_time = sums[1];
    return s;
  }

 private:
  Context* ctx_;
  Group group_;
  double start_clock_;
  ProcCounters before_;
};

}  // namespace kali

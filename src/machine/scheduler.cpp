// The worker pool behind FiberScheduler.  This is the one machine-layer
// file allowed to touch host threading primitives (std::thread,
// condition_variable, thread_local) — the determinism lint's raw-thread
// rule exempts exactly this file, so every other machine source is
// provably free of host-threading assumptions.
#include "machine/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "machine/fiber.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

// Harness-side deadlines only (recv fallback timeout, quiesce mismatch
// guard); never feeds a simulated clock.
// kali-lint: allow(wall-clock)
using WallClock = std::chrono::steady_clock;

/// Park/wake state machine.  Transitions:
///   kReady --worker picks--> kRunning
///   kRunning --prepare_park--> kParking (--cancel_park--> kRunning)
///   kParking --worker, post-switch--> kParked
///   kParking --waker--> kWakeRequested --worker, post-switch--> kReady
///   kParked --waker / deadline sweep--> kReady (+ ready-queue push)
///   kRunning --entry returns--> kFinished
enum class FiberState : unsigned char {
  kReady,
  kRunning,
  kParking,
  kParked,
  kWakeRequested,
  kFinished,
};

struct FiberRecord {
  FiberContext ctx;
  std::atomic<FiberState> state{FiberState::kReady};
  FiberScheduler::Impl* impl = nullptr;
  int rank = 0;
  /// Written by the owning fiber before its kParking release-store; read
  /// by the deadline sweep only after observing kParked under the
  /// scheduler mutex, so no lock is needed on the write side.
  WallClock::time_point deadline{};
  /// Set by the deadline sweep (under the mutex, before the ready push);
  /// consumed by the fiber right after it resumes.
  bool timed_out = false;
};

struct WorkerRecord {
  FiberContext ctx;
};

thread_local FiberScheduler* tls_sched = nullptr;
thread_local WorkerRecord* tls_worker = nullptr;
thread_local FiberRecord* tls_fiber = nullptr;

std::size_t default_stack_bytes() {
#if defined(KALI_FIBER_ASAN) || defined(KALI_FIBER_TSAN)
  return std::size_t{1} << 20;  // instrumented frames are much fatter
#else
  return std::size_t{256} << 10;
#endif
}

int default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void fiber_entry(void* arg);

}  // namespace

struct FiberScheduler::Impl {
  int nfibers;
  int nworkers;
  double park_timeout;
  FiberStackArena arena;
  std::vector<std::unique_ptr<FiberRecord>> fibers;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;  // FIFO run queue, seeded ranks ascending
  int running = 0;        // fibers currently on a worker (or in transit)
  int finished = 0;
  bool started = false;
  bool aborted = false;
  std::exception_ptr first_error;  // defensive: body should catch its own

  // Quiesce rendezvous: arrivals park until the generation advances; the
  // last arrival releases everyone after running the critical section.
  int q_arrived = 0;
  unsigned long long q_gen = 0;
  std::vector<int> q_parked;

  const std::function<void(int)>* body = nullptr;

  Impl(int nf, int nw, double timeout, std::size_t stack_bytes)
      : nfibers(nf),
        nworkers(nw > 0 ? nw : default_workers()),
        park_timeout(timeout),
        arena(nf, stack_bytes != 0 ? stack_bytes : default_stack_bytes()) {
    fibers.reserve(static_cast<std::size_t>(nf));
    for (int r = 0; r < nf; ++r) {
      auto f = std::make_unique<FiberRecord>();
      f->impl = this;
      f->rank = r;
      f->ctx.init_fiber(arena.stack_bottom(r), arena.stack_bytes(),
                        &fiber_entry, f.get());
      fibers.push_back(std::move(f));
    }
  }

  FiberRecord& fiber(int rank) {
    return *fibers[static_cast<std::size_t>(rank)];
  }

  /// CAS a parked (or parking) fiber runnable.  Caller holds mu for the
  /// ready-queue push.
  void wake_locked(FiberRecord& f) {
    for (;;) {
      FiberState s = f.state.load(std::memory_order_acquire);
      if (s == FiberState::kParked) {
        if (f.state.compare_exchange_weak(s, FiberState::kReady,
                                          std::memory_order_acq_rel)) {
          ready.push_back(f.rank);
          cv.notify_one();
          return;
        }
      } else if (s == FiberState::kParking) {
        // The fiber is between announcing the park and the switch; flag
        // it and its worker requeues it right after the swap.
        if (f.state.compare_exchange_weak(s, FiberState::kWakeRequested,
                                          std::memory_order_acq_rel)) {
          return;
        }
      } else {
        return;  // ready/running/wake-requested/finished: nothing to do
      }
    }
  }

  void resume(WorkerRecord& w, FiberRecord& f) {
    f.state.store(FiberState::kRunning, std::memory_order_release);
    tls_fiber = &f;
    fiber_switch(w.ctx, f.ctx);
    tls_fiber = nullptr;
  }

  /// Classify why the fiber switched back, under mu.
  void post_switch_locked(FiberRecord& f) {
    FiberState s = f.state.load(std::memory_order_acquire);
    if (s == FiberState::kFinished) {
      f.ctx.destroy();  // TSan fiber teardown — never from the fiber itself
      ++finished;
      if (finished == nfibers) {
        cv.notify_all();
      }
      return;
    }
    FiberState expect = FiberState::kParking;
    if (f.state.compare_exchange_strong(expect, FiberState::kParked,
                                        std::memory_order_acq_rel)) {
      if (q_arrived > 0) {
        cv.notify_all();  // a quiesce leader may be counting parked peers
      }
      return;
    }
    KALI_CHECK(expect == FiberState::kWakeRequested,
               "fiber in impossible state after switching out");
    f.state.store(FiberState::kReady, std::memory_order_release);
    ready.push_back(f.rank);
    cv.notify_one();
  }

  /// Full stall: nothing ready, nothing running, some fibers unfinished —
  /// each of those is parked with a deadline.  Wait out the earliest
  /// (ties break to the lowest rank: ascending scan, strict <) and wake
  /// it with timed_out set; the fiber decides whether that is an error.
  void stall_sweep(std::unique_lock<std::mutex>& lk) {
    FiberRecord* cand = nullptr;
    for (auto& up : fibers) {
      FiberRecord* f = up.get();
      if (f->state.load(std::memory_order_acquire) != FiberState::kParked) {
        continue;
      }
      if (cand == nullptr || f->deadline < cand->deadline) {
        cand = f;
      }
    }
    if (cand == nullptr) {
      // A woken fiber is between its state CAS and its ready push.
      cv.wait(lk);
      return;
    }
    if (WallClock::now() < cand->deadline) {
      cv.wait_until(lk, cand->deadline);
      return;
    }
    FiberState expect = FiberState::kParked;
    if (cand->state.compare_exchange_strong(expect, FiberState::kReady,
                                            std::memory_order_acq_rel)) {
      cand->timed_out = true;
      ready.push_back(cand->rank);
      cv.notify_all();
    }
  }

  void worker_main(FiberScheduler* self) {
    WorkerRecord w;
    w.ctx.init_host();
    tls_sched = self;
    tls_worker = &w;
    std::unique_lock<std::mutex> lk(mu);
    while (finished < nfibers) {
      if (!ready.empty()) {
        FiberRecord& f = fiber(ready.front());
        ready.pop_front();
        ++running;
        lk.unlock();
        resume(w, f);
        lk.lock();
        // Order matters: classify the fiber before dropping `running`, so
        // peers never observe a stall while a park is still in transit.
        post_switch_locked(f);
        --running;
        continue;
      }
      if (running > 0) {
        cv.wait(lk);
        continue;
      }
      stall_sweep(lk);
    }
    lk.unlock();
    cv.notify_all();
    tls_worker = nullptr;
    tls_sched = nullptr;
  }
};

namespace {

void fiber_entry(void* arg) {
  auto* f = static_cast<FiberRecord*>(arg);
  FiberScheduler::Impl* im = f->impl;
  try {
    (*im->body)(f->rank);
  } catch (...) {
    // Machine::run's per-rank body catches everything itself; this is the
    // safety net for standalone scheduler use.
    {
      std::lock_guard<std::mutex> lk(im->mu);
      if (!im->first_error) {
        im->first_error = std::current_exception();
      }
      im->aborted = true;
      for (auto& up : im->fibers) {
        im->wake_locked(*up);
      }
      im->cv.notify_all();
    }
  }
  f->state.store(FiberState::kFinished, std::memory_order_release);
  WorkerRecord* w = tls_worker;
  w->ctx.set_asan_bounds(f->ctx.peer_bottom(), f->ctx.peer_size());
  fiber_switch(f->ctx, w->ctx, /*from_dying=*/true);
  // Unreachable: the dying switch never returns.
}

}  // namespace

FiberScheduler::FiberScheduler(int nfibers, int workers,
                               double park_timeout_seconds,
                               std::size_t stack_bytes) {
  KALI_CHECK(nfibers >= 1, "scheduler needs at least one fiber");
  impl_ = std::make_unique<Impl>(nfibers, workers, park_timeout_seconds,
                                 stack_bytes);
}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::run(const std::function<void(int)>& body) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    KALI_CHECK(!im.started, "FiberScheduler::run is single-shot");
    im.started = true;
    im.body = &body;
    for (int r = 0; r < im.nfibers; ++r) {
      im.ready.push_back(r);  // deterministic seed: ranks ascending
    }
  }
  const int w = std::min(im.nworkers, im.nfibers);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    workers.emplace_back([this, &im] { im.worker_main(this); });
  }
  for (auto& t : workers) {
    t.join();
  }
  im.body = nullptr;
  if (im.first_error) {
    std::rethrow_exception(im.first_error);
  }
}

void FiberScheduler::prepare_park(double timeout_seconds) {
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr && f->impl == impl_.get(),
             "prepare_park outside a fiber of this scheduler");
  f->deadline = WallClock::now() +
                std::chrono::duration_cast<WallClock::duration>(
                    std::chrono::duration<double>(timeout_seconds));
  f->timed_out = false;
  f->state.store(FiberState::kParking, std::memory_order_release);
}

bool FiberScheduler::commit_park() {
  FiberRecord* f = tls_fiber;
  WorkerRecord* w = tls_worker;
  KALI_CHECK(f != nullptr && w != nullptr, "commit_park outside a fiber");
  w->ctx.set_asan_bounds(f->ctx.peer_bottom(), f->ctx.peer_size());
  fiber_switch(f->ctx, w->ctx);
  // Resumed — possibly on a different worker thread (tls_worker moved on).
  return f->timed_out;
}

void FiberScheduler::cancel_park() {
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr, "cancel_park outside a fiber");
  // kParking normally; kWakeRequested if a wake hit the announce window —
  // either way the fiber is running and the waker's effect (a pushed
  // message, the abort flag) is visible to the caller's re-check.
  f->state.exchange(FiberState::kRunning, std::memory_order_acq_rel);
}

void FiberScheduler::quiesce(const std::function<void()>& on_last) {
  Impl& im = *impl_;
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr && f->impl == &im, "quiesce outside a fiber");
  std::unique_lock<std::mutex> lk(im.mu);
  if (im.aborted) {
    throw Error("quiesce aborted: a peer processor failed");
  }
  const unsigned long long gen = im.q_gen;
  ++im.q_arrived;
  if (im.q_arrived < im.nfibers) {
    im.q_parked.push_back(f->rank);
    lk.unlock();
    prepare_park(im.park_timeout);
    const bool timed_out = commit_park();
    lk.lock();
    if (im.aborted) {
      throw Error("quiesce aborted: a peer processor failed");
    }
    if (im.q_gen != gen) {
      return;  // released (a racing late timeout wake is benign)
    }
    KALI_CHECK(timed_out, "quiesce fiber woke without release or timeout");
    throw Error(
        "quiesce timed out: a machine-global quiesce (edge-ledger "
        "compaction) was not entered by every rank — collective mismatch");
  }
  // Last arrival: wait until every peer is observably suspended.  The
  // kParking release-store / kParked CAS / acquire-load chain makes each
  // peer's rank-sharded writes visible before on_last reads them.
  im.cv.wait(lk, [&] {
    if (im.aborted) {
      return true;
    }
    for (int r : im.q_parked) {
      if (im.fiber(r).state.load(std::memory_order_acquire) !=
          FiberState::kParked) {
        return false;
      }
    }
    return true;
  });
  if (im.aborted) {
    throw Error("quiesce aborted: a peer processor failed");
  }
  lk.unlock();
  on_last();  // peers suspended: cross-rank state is safe to touch
  lk.lock();
  ++im.q_gen;
  im.q_arrived = 0;
  for (int r : im.q_parked) {
    FiberRecord& pf = im.fiber(r);
    FiberState expect = FiberState::kParked;
    const bool ok = pf.state.compare_exchange_strong(
        expect, FiberState::kReady, std::memory_order_acq_rel);
    KALI_CHECK(ok, "quiesce peer disappeared before release");
    im.ready.push_back(r);
  }
  im.q_parked.clear();
  im.cv.notify_all();
}

void FiberScheduler::wake(int rank) {
  Impl& im = *impl_;
  KALI_CHECK(rank >= 0 && rank < im.nfibers, "wake: rank out of range");
  std::lock_guard<std::mutex> lk(im.mu);
  im.wake_locked(im.fiber(rank));
}

void FiberScheduler::abort() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  im.aborted = true;
  for (auto& up : im.fibers) {
    im.wake_locked(*up);
  }
  im.cv.notify_all();
}

bool FiberScheduler::aborted() const {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  return im.aborted;
}

int FiberScheduler::nfibers() const { return impl_->nfibers; }

FiberScheduler* FiberScheduler::current() {
  return tls_fiber != nullptr ? tls_sched : nullptr;
}

int FiberScheduler::current_rank() {
  return tls_fiber != nullptr ? tls_fiber->rank : -1;
}

}  // namespace kali

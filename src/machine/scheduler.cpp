// The worker pool behind FiberScheduler.  This is the one machine-layer
// file allowed to touch host threading primitives (std::thread,
// condition_variable, thread_local) — the determinism lint's raw-thread
// rule exempts exactly this file, so every other machine source is
// provably free of host-threading assumptions.
#include "machine/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "machine/fiber.hpp"
#include "machine/hb.hpp"
#include "support/check.hpp"

namespace kali {

namespace {

// Harness-side deadlines only (recv fallback timeout, quiesce mismatch
// guard); never feeds a simulated clock.
// kali-lint: allow(wall-clock)
using WallClock = std::chrono::steady_clock;

/// Park/wake state machine.  Transitions:
///   kReady --worker picks--> kRunning
///   kRunning --prepare_park--> kParking (--cancel_park--> kRunning)
///   kParking --worker, post-switch--> kParked
///   kParking --waker--> kWakeRequested --worker, post-switch--> kReady
///   kParked --waker / deadline sweep--> kReady (+ ready-queue push)
///   kRunning --entry returns--> kFinished
enum class FiberState : unsigned char {
  kReady,
  kRunning,
  kParking,
  kParked,
  kWakeRequested,
  kFinished,
};

struct FiberRecord {
  FiberContext ctx;
  std::atomic<FiberState> state{FiberState::kReady};
  FiberScheduler::Impl* impl = nullptr;
  int rank = 0;
  /// Written by the owning fiber before its kParking release-store; read
  /// by the deadline sweep only after observing kParked under the
  /// scheduler mutex, so no lock is needed on the write side.  Seconds on
  /// the scheduler clock (Impl::now_s — real steady clock or the
  /// injected fake).
  double deadline = 0.0;
  /// Set by the deadline sweep (under the mutex, before the ready push);
  /// consumed by the fiber right after it resumes.
  bool timed_out = false;
  /// Park counter: bumped by prepare_park before the kParking
  /// release-store, so (rank, park_seq) names one specific park — the
  /// happens-before log pairs each wake with the park it released by it.
  /// Readable by wakers after an acquire-load of `state`.
  std::uint64_t park_seq = 0;
  /// True while the current park is a quiesce-rendezvous park: its resume
  /// is ordered by the quiesce release edge, not a wake event, so
  /// commit_park must not record a `woken` event for it.
  bool quiesce_park = false;
};

struct WorkerRecord {
  FiberContext ctx;
};

thread_local FiberScheduler* tls_sched = nullptr;
thread_local WorkerRecord* tls_worker = nullptr;
thread_local FiberRecord* tls_fiber = nullptr;

std::size_t default_stack_bytes() {
#if defined(KALI_FIBER_ASAN) || defined(KALI_FIBER_TSAN)
  return std::size_t{1} << 20;  // instrumented frames are much fatter
#else
  return std::size_t{256} << 10;
#endif
}

int default_workers() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void fiber_entry(void* arg);

}  // namespace

struct FiberScheduler::Impl {
  int nfibers;
  int nworkers;
  double park_timeout;
  FiberStackArena arena;
  std::vector<std::unique_ptr<FiberRecord>> fibers;

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> ready;  // FIFO run queue, seeded ranks ascending
  int running = 0;        // fibers currently on a worker (or in transit)
  int finished = 0;
  bool started = false;
  // Atomic so lock-free paths (prepare_park, Mailbox's re-check loop) can
  // observe an abort without taking mu; still only written under mu.
  std::atomic<bool> aborted{false};
  std::exception_ptr first_error;  // defensive: body should catch its own

  // Harness seams, all fixed before run(): dispatch hook (interleaving
  // explorer), clock override (fake-clock tests), happens-before log.
  SchedulerHook* hook = nullptr;
  double (*clock_fn)() = nullptr;
  HbLog* hb = nullptr;
  const WallClock::time_point epoch0 = WallClock::now();

  /// Seconds on the scheduler clock: the injected fake when set, else the
  /// real steady clock relative to construction.
  [[nodiscard]] double now_s() const {
    if (clock_fn != nullptr) {
      return clock_fn();
    }
    return std::chrono::duration<double>(WallClock::now() - epoch0).count();
  }

  /// Actor id for happens-before events recorded from the calling
  /// context: the running fiber's rank, or the machine context (always
  /// under mu) when no fiber is on this thread.
  [[nodiscard]] static int hb_actor() {
    return tls_fiber != nullptr ? tls_fiber->rank : HbLog::kMachineActor;
  }

  // Quiesce rendezvous: arrivals park until the generation advances; the
  // last arrival releases everyone after running the critical section.
  int q_arrived = 0;
  unsigned long long q_gen = 0;
  std::vector<int> q_parked;

  const std::function<void(int)>* body = nullptr;

  Impl(int nf, int nw, double timeout, std::size_t stack_bytes)
      : nfibers(nf),
        nworkers(nw > 0 ? nw : default_workers()),
        park_timeout(timeout),
        arena(nf, stack_bytes != 0 ? stack_bytes : default_stack_bytes()) {
    fibers.reserve(static_cast<std::size_t>(nf));
    for (int r = 0; r < nf; ++r) {
      auto f = std::make_unique<FiberRecord>();
      f->impl = this;
      f->rank = r;
      f->ctx.init_fiber(arena.stack_bottom(r), arena.stack_bytes(),
                        &fiber_entry, f.get());
      fibers.push_back(std::move(f));
    }
  }

  FiberRecord& fiber(int rank) {
    return *fibers[static_cast<std::size_t>(rank)];
  }

  /// CAS a parked (or parking) fiber runnable.  Caller holds mu for the
  /// ready-queue push.
  void wake_locked(FiberRecord& f) {
    for (;;) {
      FiberState s = f.state.load(std::memory_order_acquire);
      if (s == FiberState::kParked) {
        if (f.state.compare_exchange_weak(s, FiberState::kReady,
                                          std::memory_order_acq_rel)) {
          if (hb != nullptr) {
            hb->wake(hb_actor(), f.rank, f.park_seq);
          }
          ready.push_back(f.rank);
          cv.notify_one();
          return;
        }
      } else if (s == FiberState::kParking) {
        // The fiber is between announcing the park and the switch; flag
        // it and its worker requeues it right after the swap.
        if (f.state.compare_exchange_weak(s, FiberState::kWakeRequested,
                                          std::memory_order_acq_rel)) {
          if (hb != nullptr) {
            hb->wake(hb_actor(), f.rank, f.park_seq);
          }
          return;
        }
      } else {
        return;  // ready/running/wake-requested/finished: nothing to do
      }
    }
  }

  void resume(WorkerRecord& w, FiberRecord& f) {
    f.state.store(FiberState::kRunning, std::memory_order_release);
    tls_fiber = &f;
    fiber_switch(w.ctx, f.ctx);
    tls_fiber = nullptr;
  }

  /// Classify why the fiber switched back, under mu.
  void post_switch_locked(FiberRecord& f) {
    if (!arena.canary_ok(f.rank)) {
      // The fiber's frames reached the very bottom of its stack.  In a
      // guarded arena the guard page usually faults first; this check is
      // the backstop that still diagnoses the overflow in guardless
      // (large-population) arenas, or when a big frame stepped over the
      // guard.  Abort the run with the actionable error.
      if (!first_error) {
        first_error = std::make_exception_ptr(Error(
            "fiber stack overflow: rank " + std::to_string(f.rank) +
            " overran its " + std::to_string(arena.stack_bytes()) +
            "-byte stack (bottom canary destroyed); raise "
            "MachineConfig::fiber_stack_bytes"));
      }
      aborted.store(true, std::memory_order_release);
      for (auto& up : fibers) {
        wake_locked(*up);
      }
      cv.notify_all();
    }
    FiberState s = f.state.load(std::memory_order_acquire);
    if (s == FiberState::kFinished) {
      f.ctx.destroy();  // TSan fiber teardown — never from the fiber itself
      ++finished;
      if (finished == nfibers) {
        cv.notify_all();
      }
      return;
    }
    FiberState expect = FiberState::kParking;
    if (f.state.compare_exchange_strong(expect, FiberState::kParked,
                                        std::memory_order_acq_rel)) {
      if (q_arrived > 0) {
        cv.notify_all();  // a quiesce leader may be counting parked peers
      }
      return;
    }
    KALI_CHECK(expect == FiberState::kWakeRequested,
               "fiber in impossible state after switching out");
    f.state.store(FiberState::kReady, std::memory_order_release);
    ready.push_back(f.rank);
    cv.notify_one();
  }

  /// Full stall: nothing ready, nothing running, some fibers unfinished —
  /// each of those is parked with a deadline.  Wait out the earliest
  /// (ties break to the lowest rank: ascending scan, strict <) and wake
  /// it with timed_out set; the fiber decides whether that is an error.
  void stall_sweep(std::unique_lock<std::mutex>& lk) {
    FiberRecord* cand = nullptr;
    for (auto& up : fibers) {
      FiberRecord* f = up.get();
      if (f->state.load(std::memory_order_acquire) != FiberState::kParked) {
        continue;
      }
      if (cand == nullptr || f->deadline < cand->deadline) {
        cand = f;
      }
    }
    if (cand == nullptr) {
      // A woken fiber is between its state CAS and its ready push.
      cv.wait(lk);
      return;
    }
    const double now = now_s();
    if (now < cand->deadline) {
      if (clock_fn != nullptr) {
        // Injected clock: no condvar deadline maps onto it, so poll —
        // the clock only advances when some fiber advances it, and every
        // fiber transition notifies cv anyway.  The tiny wait bounds the
        // spin if the clock is advanced from outside the scheduler.
        cv.wait_for(lk, std::chrono::milliseconds(1));
      } else {
        cv.wait_for(lk, std::chrono::duration<double>(cand->deadline - now));
      }
      return;
    }
    FiberState expect = FiberState::kParked;
    if (cand->state.compare_exchange_strong(expect, FiberState::kReady,
                                            std::memory_order_acq_rel)) {
      if (hb != nullptr) {
        hb->wake(HbLog::kMachineActor, cand->rank, cand->park_seq);
      }
      cand->timed_out = true;
      ready.push_back(cand->rank);
      cv.notify_all();
    }
  }

  void worker_main(FiberScheduler* self) {
    WorkerRecord w;
    w.ctx.init_host();
    tls_sched = self;
    tls_worker = &w;
    std::unique_lock<std::mutex> lk(mu);
    while (finished < nfibers) {
      if (!ready.empty()) {
        std::size_t pick = 0;
        if (hook != nullptr) {
          // Explorer seam: the hook chooses among the runnable fibers
          // (called under mu; see SchedulerHook).  Invoked even for
          // singleton ready sets so a replaying hook sees a stable
          // step numbering.
          const std::vector<int> snapshot(ready.begin(), ready.end());
          pick = hook->pick_next(snapshot);
          if (pick >= snapshot.size()) {
            pick = 0;
          }
        }
        FiberRecord& f = fiber(ready[pick]);
        ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
        ++running;
        lk.unlock();
        resume(w, f);
        lk.lock();
        // Order matters: classify the fiber before dropping `running`, so
        // peers never observe a stall while a park is still in transit.
        post_switch_locked(f);
        --running;
        continue;
      }
      if (running > 0) {
        cv.wait(lk);
        continue;
      }
      stall_sweep(lk);
    }
    lk.unlock();
    cv.notify_all();
    tls_worker = nullptr;
    tls_sched = nullptr;
  }
};

namespace {

void fiber_entry(void* arg) {
  auto* f = static_cast<FiberRecord*>(arg);
  FiberScheduler::Impl* im = f->impl;
  try {
    (*im->body)(f->rank);
  } catch (...) {
    // Machine::run's per-rank body catches everything itself; this is the
    // safety net for standalone scheduler use.
    {
      std::lock_guard<std::mutex> lk(im->mu);
      if (!im->first_error) {
        im->first_error = std::current_exception();
      }
      im->aborted = true;
      for (auto& up : im->fibers) {
        im->wake_locked(*up);
      }
      im->cv.notify_all();
    }
  }
  f->state.store(FiberState::kFinished, std::memory_order_release);
  WorkerRecord* w = tls_worker;
  w->ctx.set_asan_bounds(f->ctx.peer_bottom(), f->ctx.peer_size());
  fiber_switch(f->ctx, w->ctx, /*from_dying=*/true);
  // Unreachable: the dying switch never returns.
}

}  // namespace

FiberScheduler::FiberScheduler(int nfibers, int workers,
                               double park_timeout_seconds,
                               std::size_t stack_bytes) {
  KALI_CHECK(nfibers >= 1, "scheduler needs at least one fiber");
  impl_ = std::make_unique<Impl>(nfibers, workers, park_timeout_seconds,
                                 stack_bytes);
}

FiberScheduler::~FiberScheduler() = default;

void FiberScheduler::run(const std::function<void(int)>& body) {
  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lk(im.mu);
    KALI_CHECK(!im.started, "FiberScheduler::run is single-shot");
    im.started = true;
    im.body = &body;
    for (int r = 0; r < im.nfibers; ++r) {
      im.ready.push_back(r);  // deterministic seed: ranks ascending
    }
  }
  const int w = std::min(im.nworkers, im.nfibers);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    workers.emplace_back([this, &im] { im.worker_main(this); });
  }
  for (auto& t : workers) {
    t.join();
  }
  im.body = nullptr;
  if (im.first_error) {
    std::rethrow_exception(im.first_error);
  }
}

void FiberScheduler::prepare_park(double timeout_seconds) {
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr && f->impl == impl_.get(),
             "prepare_park outside a fiber of this scheduler");
  Impl& im = *impl_;
  f->deadline = im.now_s() + timeout_seconds;
  f->timed_out = false;
  ++f->park_seq;
  if (im.hb != nullptr) {
    im.hb->park(f->rank, f->park_seq);
  }
  f->state.store(FiberState::kParking, std::memory_order_release);
}

bool FiberScheduler::commit_park() {
  FiberRecord* f = tls_fiber;
  WorkerRecord* w = tls_worker;
  KALI_CHECK(f != nullptr && w != nullptr, "commit_park outside a fiber");
  w->ctx.set_asan_bounds(f->ctx.peer_bottom(), f->ctx.peer_size());
  fiber_switch(f->ctx, w->ctx);
  // Resumed — possibly on a different worker thread (tls_worker moved on).
  Impl& im = *impl_;
  if (im.hb != nullptr && !f->quiesce_park) {
    // Quiesce parks are ordered by the release edge (qrel -> qleave), not
    // a wake; recording `woken` for them would dangle.
    im.hb->woken(f->rank, f->park_seq);
  }
  return f->timed_out;
}

bool FiberScheduler::cancel_park() {
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr, "cancel_park outside a fiber");
  // kParking normally; kWakeRequested if a wake hit the announce window —
  // either way the fiber is running and the waker's effect (a pushed
  // message, the abort flag) is visible to the caller's re-check.
  const FiberState prev =
      f->state.exchange(FiberState::kRunning, std::memory_order_acq_rel);
  const bool consumed = prev == FiberState::kWakeRequested;
  Impl& im = *impl_;
  if (consumed && im.hb != nullptr) {
    // The waker already logged `wake (rank, park_seq)`; consume it here so
    // the edge pairs up even though no suspension happened.
    im.hb->woken(f->rank, f->park_seq);
  }
  return consumed;
}

void FiberScheduler::quiesce(const std::function<void()>& on_last) {
  Impl& im = *impl_;
  FiberRecord* f = tls_fiber;
  KALI_CHECK(f != nullptr && f->impl == &im, "quiesce outside a fiber");
  std::unique_lock<std::mutex> lk(im.mu);
  if (im.aborted) {
    throw Error("quiesce aborted: a peer processor failed");
  }
  const unsigned long long gen = im.q_gen;
  if (im.hb != nullptr) {
    im.hb->quiesce_enter(f->rank, gen);
  }
  ++im.q_arrived;
  if (im.q_arrived < im.nfibers) {
    im.q_parked.push_back(f->rank);
    lk.unlock();
    f->quiesce_park = true;
    prepare_park(im.park_timeout);
    const bool timed_out = commit_park();
    f->quiesce_park = false;
    lk.lock();
    if (im.aborted) {
      throw Error("quiesce aborted: a peer processor failed");
    }
    if (im.q_gen != gen) {
      if (im.hb != nullptr) {
        im.hb->quiesce_leave(f->rank, gen);
      }
      return;  // released (a racing late timeout wake is benign)
    }
    KALI_CHECK(timed_out, "quiesce fiber woke without release or timeout");
    throw Error(
        "quiesce timed out: a machine-global quiesce (edge-ledger "
        "compaction) was not entered by every rank — collective mismatch");
  }
  // Last arrival: wait until every peer is observably suspended.  The
  // kParking release-store / kParked CAS / acquire-load chain makes each
  // peer's rank-sharded writes visible before on_last reads them.
  im.cv.wait(lk, [&] {
    if (im.aborted) {
      return true;
    }
    for (int r : im.q_parked) {
      if (im.fiber(r).state.load(std::memory_order_acquire) !=
          FiberState::kParked) {
        return false;
      }
    }
    return true;
  });
  if (im.aborted) {
    throw Error("quiesce aborted: a peer processor failed");
  }
  if (im.hb != nullptr) {
    // qenter(gen) of every actor happens-before qrun(gen): the leader saw
    // each peer kParked (acquire) after its qenter.
    im.hb->quiesce_run(f->rank, gen);
  }
  lk.unlock();
  on_last();  // peers suspended: cross-rank state is safe to touch
  lk.lock();
  if (im.hb != nullptr) {
    // qrel(gen) happens-before every qleave(gen): peers resume only after
    // the release CAS below.
    im.hb->quiesce_release(f->rank, gen);
  }
  ++im.q_gen;
  im.q_arrived = 0;
  for (int r : im.q_parked) {
    FiberRecord& pf = im.fiber(r);
    FiberState expect = FiberState::kParked;
    const bool ok = pf.state.compare_exchange_strong(
        expect, FiberState::kReady, std::memory_order_acq_rel);
    KALI_CHECK(ok, "quiesce peer disappeared before release");
    im.ready.push_back(r);
  }
  im.q_parked.clear();
  if (im.hb != nullptr) {
    im.hb->quiesce_leave(f->rank, gen);
  }
  im.cv.notify_all();
}

void FiberScheduler::wake(int rank) {
  Impl& im = *impl_;
  KALI_CHECK(rank >= 0 && rank < im.nfibers, "wake: rank out of range");
  std::lock_guard<std::mutex> lk(im.mu);
  im.wake_locked(im.fiber(rank));
}

void FiberScheduler::abort() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  im.aborted = true;
  for (auto& up : im.fibers) {
    im.wake_locked(*up);
  }
  im.cv.notify_all();
}

bool FiberScheduler::aborted() const {
  // Lock-free: Mailbox's recv loop polls this between park attempts.
  return impl_->aborted.load(std::memory_order_acquire);
}

int FiberScheduler::nfibers() const { return impl_->nfibers; }

void FiberScheduler::set_hook(SchedulerHook* hook) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  KALI_CHECK(!im.started, "set_hook: scheduler already started");
  im.hook = hook;
}

void FiberScheduler::set_clock(double (*now_seconds)()) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  KALI_CHECK(!im.started, "set_clock: scheduler already started");
  im.clock_fn = now_seconds;
}

void FiberScheduler::attach_hb_log(HbLog* log) {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> lk(im.mu);
  KALI_CHECK(!im.started, "attach_hb_log: scheduler already started");
  if (log != nullptr) {
    KALI_CHECK(log->nprocs() >= im.nfibers,
               "attach_hb_log: log sized for fewer ranks than fibers");
  }
  im.hb = log;
}

HbLog* FiberScheduler::hb_log() const { return impl_->hb; }

FiberScheduler* FiberScheduler::current() {
  return tls_fiber != nullptr ? tls_sched : nullptr;
}

int FiberScheduler::current_rank() {
  return tls_fiber != nullptr ? tls_fiber->rank : -1;
}

}  // namespace kali

// Happens-before event log: the raw material for the offline determinism
// analyzer (tools/check_hb.py).
//
// The runtime's determinism contract says every piece of simulated state is
// rank-sharded and every cross-rank effect flows through a synchronization
// event the model fixes the order of (a mailbox push matched by a recv, a
// park released by a wake, a quiesce rendezvous).  TSan cannot check that
// contract: a mutex orders two accesses *physically* without fixing their
// *logical* order, so a determinism race — results that depend on which
// fiber the host happened to run first — is invisible to it.  HbLog records
// the synchronization events and the shared-state accesses; check_hb.py
// rebuilds the happens-before partial order with vector clocks and flags
// conflicting accesses it does not cover.
//
// Sharding follows the MessageTrace idiom: one event vector per recording
// execution context, appended lock-free because each shard has exactly one
// writer.  Shards 0..nprocs-1 belong to the rank fibers (a rank's events
// are recorded only from its own fiber, wherever that fiber is scheduled);
// shard nprocs belongs to the scheduler's machine context (actor -1: the
// stall sweep and other non-fiber actors), whose events are only ever
// recorded under the scheduler mutex.  An event's position in its shard is
// its actor-local sequence number — program order per actor comes free.
//
// Recording is enabled by attaching a log (Machine::attach_hb_log) and
// gated by MachineConfig::hb_instrumentation; detached runs pay one
// pointer-null check per site.  The log is harness observability only: it
// never feeds clocks, payloads, or stats.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

namespace kali {

/// Which piece of rank-sharded simulator state an access event touches.
/// `kMbox` is special: mailbox queue inserts commute by design (cross-sender
/// arrival order never feeds clocks — only the nondeterministic
/// mailbox_peaks diagnostic), so the analyzer checks mailbox accesses for
/// read-vs-write conflicts only.
enum class HbObj : unsigned char {
  kClock,   ///< Processor simulated clock
  kLink,    ///< port busy-until clocks and first-hop edge free times
  kLedger,  ///< store-and-forward edge ledgers
  kCtr,     ///< ProcCounters
  kEpoch,   ///< sync_clocks barrier epoch
  kMbox,    ///< mailbox queue contents
  kBuf,     ///< a nonblocking receive's destination buffer (in-flight window)
};

class HbLog {
 public:
  /// Actor id of the scheduler's machine context (stall sweep wakes).
  static constexpr int kMachineActor = -1;

  explicit HbLog(int nprocs);

  // --- synchronization events (each induces a happens-before edge) ---

  /// Message deposited into `dst`'s mailbox; `mseq` is the sender-local
  /// sequence number, so (actor, mseq) names the edge to the matching recv.
  void send(int actor, int dst, std::uint64_t mseq);
  /// Matching pop on the receiving side: edge source is (src, mseq).
  void match(int actor, int src, std::uint64_t mseq);

  /// Park/wake protocol: `park_seq` is the per-fiber park counter, so
  /// (target, park_seq) pairs one wake with the one park it released.
  void park(int actor, std::uint64_t park_seq);
  void wake(int actor, int target, std::uint64_t park_seq);
  void woken(int actor, std::uint64_t park_seq);

  /// Nonblocking-operation window: `post(actor, opid)` marks the posting of
  /// an irecv (the destination buffer is handed to the machine) and
  /// `complete(actor, opid)` its completion at a wait point (the buffer is
  /// filled and returned).  `opid` is the rank-local operation id, so
  /// (actor, opid) pairs each post with exactly one completion — the
  /// analyzer flags an unpaired or doubled id as a dangling edge (a dropped
  /// handle is visible in the log).  Both events live on the posting
  /// actor's shard; compute accesses to the buffer from any other actor
  /// between the pair are exactly the unordered in-flight accesses the
  /// analyzer exists to catch (HbObj::kBuf).
  void post(int actor, std::uint64_t opid);
  void complete(int actor, std::uint64_t opid);

  /// Quiesce rendezvous, generation `gen`: every enter(gen) happens-before
  /// run(gen); release(gen) happens-before every leave(gen).
  void quiesce_enter(int actor, std::uint64_t gen);
  void quiesce_run(int actor, std::uint64_t gen);
  void quiesce_release(int actor, std::uint64_t gen);
  void quiesce_leave(int actor, std::uint64_t gen);

  // --- shared-state access events ---
  void read(int actor, HbObj obj, int owner);
  void write(int actor, HbObj obj, int owner);

  /// Serialize: `kali-hb 1 <nprocs>` header, then one line per event in
  /// per-actor program order (kind, actor, actor-local seq, arguments).
  void write_log(std::ostream& os) const;

  void clear();
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] std::size_t total_events() const;

 private:
  enum class Kind : unsigned char {
    kSend,
    kMatch,
    kPark,
    kWake,
    kWoken,
    kQEnter,
    kQRun,
    kQRelease,
    kQLeave,
    kRead,
    kWrite,
    kIPost,
    kIComp,
  };

  struct Event {
    Kind kind;
    HbObj obj;       // kRead/kWrite only
    int peer;        // dst / src / wake target / access owner
    std::uint64_t n; // mseq / park_seq / gen
  };

  std::vector<Event>& shard(int actor);
  void push(int actor, Event e) { shard(actor).push_back(e); }

  int nprocs_;
  /// [0, nprocs): rank fibers; [nprocs]: the machine context (actor -1).
  std::vector<std::vector<Event>> shards_;
};

}  // namespace kali

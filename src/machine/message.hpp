// Message representation for the virtual machine's point-to-point channels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kali {

/// A message in flight.  `send_time` is the sender's simulated clock at the
/// moment the message entered the network; the receiver uses it to advance
/// its own clock causally (recv >= send + latency + bytes * byte_time).
struct Message {
  int src = -1;
  int tag = 0;
  double send_time = 0.0;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace kali

// Message representation for the virtual machine's point-to-point channels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace kali {

// ---------------------------------------------------------------------------
// Reserved message-tag registry.
//
// Every layer that sends point-to-point traffic draws its tags from a
// disjoint band, so no composition of user code, runtime-generated
// communication, kernel-library pipelines, and collectives can ever match a
// foreign message:
//
//   [0,      1<<20)   user / application programs (e.g. jacobi_mp's edge
//                     exchange) — the SPMD program's own tags
//   [1<<20,  1<<22)   runtime-generated communication (halo exchange,
//                     redistribute, remap); bases below
//   [1<<22,  1<<24)   kernel library (tri_pipeline's kTagTriBase at 1<<23,
//                     baselines' carry/scatter tags)
//   [1<<24,  ...  )   collectives (collectives.hpp derives kTagReduceUp etc.
//                     from kCollectiveTagBase)
//
// New reserved tags must be registered here, not defined ad hoc inside the
// user band.
// ---------------------------------------------------------------------------

/// First tag above the user band; application code must stay below this.
inline constexpr int kRuntimeTagBase = 1 << 20;

/// First tag of the kernel-library band.
inline constexpr int kKernelTagBase = 1 << 22;

/// First tag of the collectives band (see collectives.hpp).
inline constexpr int kCollectiveTagBase = 1 << 24;

// Runtime band allocations ---------------------------------------------------

/// Halo exchange, face mode (HaloCorners::kNo): 4 tags per array dimension
/// (low/high faces × send direction), dims 0..2 — occupies [base, base + 12).
inline constexpr int kTagHaloBase = kRuntimeTagBase;

/// redistribute() slab/bin payloads (runtime/redistribute.hpp).
inline constexpr int kTagRedistData = kRuntimeTagBase + 16;

/// copy_strided_dim() packets (runtime/remap.hpp), including the halo-fused
/// variant copy_strided_dim_halo().
inline constexpr int kTagRemap = kRuntimeTagBase + 17;

/// Halo exchange, corner mode (HaloCorners::kYes): the single scheduled
/// exchange tags each message with its direction vector delta in
/// {-1, 0, +1}^R, indexed as sum over dims of (delta_d + 1) * 3^d — occupies
/// [base, base + 27) for ranks up to 3.
inline constexpr int kTagHaloCornerBase = kRuntimeTagBase + 32;

/// Halo exchange, corner mode, coalesced wire format (HaloWire::kCoalesced):
/// all direction pieces bound for one peer travel as a single packed
/// message, concatenated in ascending direction-code order.  The
/// per-direction tags above remain the oracle path (HaloWire::kPerDirection).
inline constexpr int kTagHaloCornerPack = kRuntimeTagBase + 60;

/// Inspector/executor gather (runtime/inspector.hpp): request-index lists.
inline constexpr int kTagInspReq = kRuntimeTagBase + 64;

/// Inspector/executor gather: executor value payloads.
inline constexpr int kTagInspData = kRuntimeTagBase + 65;

/// Runtime-band allocation table: X(constant, width) for every allocation
/// registered above, in ascending base order.  The single source of truth
/// for band membership — is_registered_tag and tag_name expand it, and
/// tools/check_trace.py parses these rows (together with the constant
/// definitions above) so the offline trace verifier can never drift from
/// the runtime registry.  Register new runtime tags by adding a constant
/// above AND a row here.
#define KALI_RUNTIME_TAG_ALLOCS(X) \
  X(kTagHaloBase, 12)              \
  X(kTagRedistData, 1)             \
  X(kTagRemap, 1)                  \
  X(kTagHaloCornerBase, 27)       \
  X(kTagHaloCornerPack, 1)        \
  X(kTagInspReq, 1)               \
  X(kTagInspData, 1)

// Kernel band allocations --------------------------------------------------

/// Pipelined tridiagonal solver (kernels/tri_pipeline.hpp): per-system
/// pair/solution tags kTagTriBase + 2 * sys_tag (+1).
inline constexpr int kTagTriBase = 1 << 23;

/// Baseline kernels (kernels/baselines.cpp): carry/back/scatter tags —
/// occupies [base, base + 3), at the three-quarter point of the kernel
/// band, clear of tri_pipeline's parameterized block above kTagTriBase.
inline constexpr int kTagBaselineBase = 3 << 22;

// Collectives band allocation -----------------------------------------------

/// Bounds of the collectives-band block actually allocated:
/// kTagReduceUp (base + 1) .. kTagAllGather (base + 7).  The constants
/// themselves live in collectives.hpp (a higher layer this header cannot
/// include); a static_assert there pins them inside these bounds.
inline constexpr int kCollectiveTagFirst = kCollectiveTagBase + 1;
inline constexpr int kCollectiveTagLast = kCollectiveTagBase + 7;

/// True iff `tag` lies inside a registered band allocation.  The user band
/// is free-form (application programs own it wholesale); the runtime band
/// admits only the allocations registered above; the kernel band is owned
/// by the kernel library (its allocations are parameterized, e.g. tri's
/// per-system tags, so sub-band checking lives with the owners); the
/// collectives band admits the kTagReduceUp..kTagAllGather block that
/// collectives.hpp derives from kCollectiveTagBase.  Enforced at every
/// send under the KALI_CHECK_INVARIANTS build mode.
[[nodiscard]] inline bool is_registered_tag(int tag) {
  if (tag < 0) {
    return false;
  }
  if (tag < kRuntimeTagBase) {
    return true;  // user band: application programs own it
  }
  if (tag < kKernelTagBase) {
#define KALI_TAG_IN_ALLOC(name, width)         \
  if (tag >= (name) && tag < (name) + (width)) { \
    return true;                               \
  }
    KALI_RUNTIME_TAG_ALLOCS(KALI_TAG_IN_ALLOC)
#undef KALI_TAG_IN_ALLOC
    return false;
  }
  if (tag < kCollectiveTagBase) {
    return true;  // kernel band: parameterized allocations (tri sys tags)
  }
  return tag >= kCollectiveTagFirst && tag <= kCollectiveTagLast;
}

/// Human-readable name of a tag for diagnostics (deadlock dumps, leak
/// reports): the registry constant plus an offset where the allocation is a
/// block, the band name otherwise.  Collectives names are spelled out here
/// although the constants live in collectives.hpp (a higher layer this
/// header cannot include) — keep them in sync with the
/// kTagReduceUp..kTagAllGather block.
[[nodiscard]] inline std::string tag_name(int tag) {
  const auto with_offset = [&](const char* base_name, int base) {
    std::string s = base_name;
    if (tag != base) {
      s += "+" + std::to_string(tag - base);
    }
    return s;
  };
  if (tag < 0) {
    return "invalid(" + std::to_string(tag) + ")";
  }
  if (tag < kRuntimeTagBase) {
    return "user:" + std::to_string(tag);
  }
  if (tag < kKernelTagBase) {
#define KALI_TAG_NAME_ALLOC(name, width)                                 \
  if (tag >= (name) && tag < (name) + (width)) {                         \
    return (width) == 1 ? std::string(#name) : with_offset(#name, name); \
  }
    KALI_RUNTIME_TAG_ALLOCS(KALI_TAG_NAME_ALLOC)
#undef KALI_TAG_NAME_ALLOC
    return "runtime:" + std::to_string(tag - kRuntimeTagBase);
  }
  if (tag < kCollectiveTagBase) {
    if (tag >= kTagBaselineBase && tag < kTagBaselineBase + 3) {
      return with_offset("kTagBaselineBase", kTagBaselineBase);
    }
    if (tag >= kTagTriBase) {
      return with_offset("kTagTriBase", kTagTriBase);
    }
    return "kernel:" + std::to_string(tag - kKernelTagBase);
  }
  switch (tag - kCollectiveTagBase) {
    case 1: return "kTagReduceUp";
    case 2: return "kTagBcastDown";
    case 3: return "kTagGather";
    case 4: return "kTagBarrierUp";
    case 5: return "kTagBarrierDown";
    case 6: return "kTagGatherCounts";
    case 7: return "kTagAllGather";
    default: return "collective:" + std::to_string(tag - kCollectiveTagBase);
  }
}

/// A message in flight.  `send_time` is the sender's simulated clock at the
/// moment the message entered the network (post injection queueing when
/// link contention is on); the receiver uses it to advance its own clock
/// causally (recv >= send + latency + bytes * byte_time).  `seq` is the
/// sender-local message sequence number: (send_time, src, seq) is the
/// total order in which the store-and-forward model serializes messages on
/// shared interior edges — a deterministic key, unlike arrival order.  The
/// path itself is not carried: routing is dimension-ordered (topology.hpp
/// route()), so the receiver reconstructs it from (src, dst) alone.
/// `epoch` counts the sync_clocks barriers the sender had passed at send
/// time; the KALI_CHECK_INVARIANTS build rejects messages received on the
/// far side of a barrier from where they were sent (such a straddler
/// carries a pre-barrier timestamp into a freshly measured phase).
struct Message {
  int src = -1;
  int tag = 0;
  double send_time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t epoch = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace kali

// Message representation for the virtual machine's point-to-point channels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace kali {

// ---------------------------------------------------------------------------
// Reserved message-tag registry.
//
// Every layer that sends point-to-point traffic draws its tags from a
// disjoint band, so no composition of user code, runtime-generated
// communication, kernel-library pipelines, and collectives can ever match a
// foreign message:
//
//   [0,      1<<20)   user / application programs (e.g. jacobi_mp's edge
//                     exchange) — the SPMD program's own tags
//   [1<<20,  1<<22)   runtime-generated communication (halo exchange,
//                     redistribute, remap); bases below
//   [1<<22,  1<<24)   kernel library (tri_pipeline's kTagTriBase at 1<<23,
//                     baselines' carry/scatter tags)
//   [1<<24,  ...  )   collectives (collectives.hpp derives kTagReduceUp etc.
//                     from kCollectiveTagBase)
//
// New reserved tags must be registered here, not defined ad hoc inside the
// user band.
// ---------------------------------------------------------------------------

/// First tag above the user band; application code must stay below this.
inline constexpr int kRuntimeTagBase = 1 << 20;

/// First tag of the kernel-library band.
inline constexpr int kKernelTagBase = 1 << 22;

/// First tag of the collectives band (see collectives.hpp).
inline constexpr int kCollectiveTagBase = 1 << 24;

// Runtime band allocations ---------------------------------------------------

/// Halo exchange, face mode (HaloCorners::kNo): 4 tags per array dimension
/// (low/high faces × send direction), dims 0..2 — occupies [base, base + 12).
inline constexpr int kTagHaloBase = kRuntimeTagBase;

/// redistribute() slab/bin payloads (runtime/redistribute.hpp).
inline constexpr int kTagRedistData = kRuntimeTagBase + 16;

/// copy_strided_dim() packets (runtime/remap.hpp), including the halo-fused
/// variant copy_strided_dim_halo().
inline constexpr int kTagRemap = kRuntimeTagBase + 17;

/// Halo exchange, corner mode (HaloCorners::kYes): the single scheduled
/// exchange tags each message with its direction vector delta in
/// {-1, 0, +1}^R, indexed as sum over dims of (delta_d + 1) * 3^d — occupies
/// [base, base + 27) for ranks up to 3.
inline constexpr int kTagHaloCornerBase = kRuntimeTagBase + 32;

/// A message in flight.  `send_time` is the sender's simulated clock at the
/// moment the message entered the network (post injection queueing when
/// link contention is on); the receiver uses it to advance its own clock
/// causally (recv >= send + latency + bytes * byte_time).  `seq` is the
/// sender-local message sequence number: (send_time, src, seq) is the
/// total order in which the store-and-forward model serializes messages on
/// shared interior edges — a deterministic key, unlike arrival order.  The
/// path itself is not carried: routing is dimension-ordered (topology.hpp
/// route()), so the receiver reconstructs it from (src, dst) alone.
struct Message {
  int src = -1;
  int tag = 0;
  double send_time = 0.0;
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;

  [[nodiscard]] std::size_t size_bytes() const { return payload.size(); }
};

}  // namespace kali

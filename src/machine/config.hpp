// Cost-model and topology configuration for the virtual loosely coupled
// machine.
//
// The paper targets 1989 distributed-memory machines (hypercube/mesh class,
// e.g. Intel iPSC).  Since no such hardware (nor MPI) is available here, the
// machine layer simulates one: every virtual processor carries a simulated
// clock advanced by a LogP-style model.  Defaults below approximate a 1989
// hypercube node: ~10 MFLOPS, ~100 us message latency, ~2.5 MB/s links.
#pragma once

namespace kali {

enum class Topology {
  kComplete,   ///< every pair one hop (idealized crossbar)
  kRing,       ///< 1-D ring, hop count = cyclic distance
  kMesh2D,     ///< near-square 2-D mesh, hop count = Manhattan distance
  kHypercube,  ///< hop count = Hamming distance of ranks
};

struct MachineConfig {
  // --- computation ---
  double flop_time = 1.0e-7;  ///< seconds per flop (10 MFLOPS)

  // --- communication (Hockney/LogP-style) ---
  double send_overhead = 10.0e-6;  ///< sender busy time per message
  double recv_overhead = 10.0e-6;  ///< receiver busy time per message
  double latency = 80.0e-6;        ///< alpha: first-hop wire latency
  double per_hop = 10.0e-6;        ///< extra latency per additional hop
  double byte_time = 0.4e-6;       ///< beta: seconds per payload byte

  // --- link contention (single-port / postal model) ---
  /// When true, the two directed edges attaching each node to the network
  /// (its injection link and its ejection link) serialize: a link carries
  /// one message at a time, occupied for `byte_time` per payload byte, and
  /// later messages queue behind a busy-until clock (kept per port in
  /// Processor).  Intermediate hops of the configured topology still add
  /// `per_hop` latency but are cut-through, not serialized — the standard
  /// model under which round-structured all-to-all schedules (each round a
  /// perfect matching, runtime/schedule.hpp) are optimal and naive per-peer
  /// issue order creates ejection-port hot spots.  Off, links are
  /// infinitely parallel and message timing is exactly the pre-contention
  /// model: payloads, message counts, and results are identical either
  /// way; only clocks (and the link-wait counters in MachineStats) change.
  bool link_contention = false;

  Topology topology = Topology::kHypercube;

  // --- harness behaviour (not part of the cost model) ---
  /// Wall-clock seconds a blocking recv waits before failing.  This is a
  /// deadlock guard for the test-suite; a correct program never hits it.
  double recv_timeout_wall = 60.0;
};

}  // namespace kali

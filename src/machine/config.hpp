// Cost-model and topology configuration for the virtual loosely coupled
// machine.
//
// The paper targets 1989 distributed-memory machines (hypercube/mesh class,
// e.g. Intel iPSC).  Since no such hardware (nor MPI) is available here, the
// machine layer simulates one: every virtual processor carries a simulated
// clock advanced by a LogP-style model.  Defaults below approximate a 1989
// hypercube node: ~10 MFLOPS, ~100 us message latency, ~2.5 MB/s links.
#pragma once

namespace kali {

enum class Topology {
  kComplete,   ///< every pair one hop (idealized crossbar)
  kRing,       ///< 1-D ring, hop count = cyclic distance
  kMesh2D,     ///< near-square 2-D mesh, hop count = Manhattan distance
  kHypercube,  ///< hop count = Hamming distance of ranks
};

struct MachineConfig {
  // --- computation ---
  double flop_time = 1.0e-7;  ///< seconds per flop (10 MFLOPS)

  // --- communication (Hockney/LogP-style) ---
  double send_overhead = 10.0e-6;  ///< sender busy time per message
  double recv_overhead = 10.0e-6;  ///< receiver busy time per message
  double latency = 80.0e-6;        ///< alpha: first-hop wire latency
  double per_hop = 10.0e-6;        ///< extra latency per additional hop
  double byte_time = 0.4e-6;       ///< beta: seconds per payload byte

  Topology topology = Topology::kHypercube;

  // --- harness behaviour (not part of the cost model) ---
  /// Wall-clock seconds a blocking recv waits before failing.  This is a
  /// deadlock guard for the test-suite; a correct program never hits it.
  double recv_timeout_wall = 60.0;
};

}  // namespace kali

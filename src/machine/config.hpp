// Cost-model and topology configuration for the virtual loosely coupled
// machine.
//
// The paper targets 1989 distributed-memory machines (hypercube/mesh class,
// e.g. Intel iPSC).  Since no such hardware (nor MPI) is available here, the
// machine layer simulates one: every virtual processor carries a simulated
// clock advanced by a LogP-style model.  Defaults below approximate a 1989
// hypercube node: ~10 MFLOPS, ~100 us message latency, ~2.5 MB/s links.
#pragma once

#include <cstddef>

namespace kali {

class SchedulerHook;

enum class Topology {
  kComplete,   ///< every pair one hop (idealized crossbar)
  kRing,       ///< 1-D ring, hop count = cyclic distance
  kMesh2D,     ///< near-square 2-D mesh, hop count = Manhattan distance
  kHypercube,  ///< hop count = Hamming distance of ranks
};

/// How much of the interconnect serializes (the three-tier contention
/// story).  Each tier changes *clocks only*: payload routing, message
/// counts, and program results are bit-identical across all three.
enum class LinkContention {
  /// Links are infinitely parallel; message timing is the pure
  /// alpha/beta/per-hop formula.  The pre-contention model, reproduced
  /// bit-for-bit.
  kNone,
  /// Single-port (postal) model: the two directed links attaching each
  /// node to the network (injection and ejection) carry one message at a
  /// time, occupied for `byte_time` per payload byte, with busy-until
  /// clocks kept per port in Processor.  Interior hops of the topology
  /// still add `per_hop` latency but are cut-through, never serialized.
  kPorts,
  /// Store-and-forward: every directed edge of the configured topology
  /// (the neighbor links route() traverses) is a serializable resource.
  /// A message occupies each edge on its path for its full wire time
  /// before the next hop begins, so an uncontended h-hop message costs
  /// h wire times instead of one — the pre-wormhole 1989 machine — and
  /// congested interior edges (mesh bisection, hypercube dimension links)
  /// queue messages deterministically.  See context.hpp for the clock
  /// algebra and the determinism design.
  kStoreForward,
};

struct MachineConfig {
  // --- computation ---
  double flop_time = 1.0e-7;  ///< seconds per flop (10 MFLOPS)

  // --- communication (Hockney/LogP-style) ---
  double send_overhead = 10.0e-6;  ///< sender busy time per message
  double recv_overhead = 10.0e-6;  ///< receiver busy time per message
  double latency = 80.0e-6;        ///< alpha: first-hop wire latency
  double per_hop = 10.0e-6;        ///< extra latency per additional hop
  double byte_time = 0.4e-6;       ///< beta: seconds per payload byte

  // --- link contention ---
  /// Which parts of the interconnect serialize (see LinkContention).
  /// kPorts is the standard model under which round-structured all-to-all
  /// schedules (each round a perfect matching, machine/schedule.hpp) are
  /// optimal and naive per-peer issue order creates ejection-port hot
  /// spots; kStoreForward extends the queueing to every interior topology
  /// edge, where naive issue order additionally oversubscribes bisection
  /// links.  Whatever the tier, payloads, message counts, and results are
  /// identical; only clocks (and the wait counters in MachineStats) change.
  LinkContention link_contention = LinkContention::kNone;

  Topology topology = Topology::kHypercube;

  // --- collectives tuning ---
  /// Hybrid all_gather crossover: when the group-maximum contribution is at
  /// most this many bytes, all_gather rides a binary gather + broadcast
  /// tree — O(P) messages instead of the dense exchange's P(P-1), so tiny
  /// payloads (residual norms, measurement sweeps) stop paying a
  /// quadratic message count for data that fits in one packet.  The tree
  /// trades critical path for that load: its chained levels lose on
  /// makespan, so bandwidth-bound payloads stay on the dense pairwise
  /// rounds (where the tree would also funnel the whole result through a
  /// root bottleneck).  Members agree on the algorithm via a scalar
  /// allreduce of their contribution sizes.  0 disables the tree path
  /// *and* the agreement round: pure dense rounds, bit-identical to the
  /// pre-hybrid clocks.
  std::size_t allgather_tree_max_bytes = 1024;

  // --- simulation host execution (not part of the cost model) ---
  /// Host worker threads the fiber scheduler multiplexes the simulated
  /// ranks onto (machine/scheduler.hpp).  0 = one per hardware thread.
  /// Any value produces bit-identical clocks, stats, and traces — the
  /// per-rank sharding of all simulated state guarantees it, and the
  /// scheduler-determinism tests assert it for {1, 4, hardware}.
  int sim_workers = 0;

  /// Bytes of stack per simulated rank's fiber.  0 = build default
  /// (256 KiB, or 1 MiB under a sanitizer).  Populations of at most 4096
  /// ranks also get a guard page under each stack; larger ones drop the
  /// guards to stay inside the kernel's VMA budget (machine/fiber.hpp).
  std::size_t fiber_stack_bytes = 0;

  // --- harness behaviour (not part of the cost model) ---
  /// Wall-clock seconds a blocking recv waits before failing.  This is the
  /// *fallback* deadlock guard; a correct program never hits it, and with
  /// `deadlock_detection` on (the default), neither do most incorrect ones.
  double recv_timeout_wall = 60.0;

  /// Wait-for-graph deadlock detection (machine/deadlock.hpp): every rank
  /// blocking in recv publishes a wait edge, and a closed wait-for graph
  /// with no satisfying in-flight message aborts the run instantly with a
  /// per-rank diagnostic instead of sitting out recv_timeout_wall.  Purely
  /// a harness feature: it never touches simulated clocks, payloads, or
  /// stats.  Disable to fall back to the wall-clock timeout alone.
  bool deadlock_detection = true;

  /// Scheduler dispatch hook (machine/scheduler.hpp, SchedulerHook): when
  /// set, every worker dispatch decision is delegated to it.  The seam the
  /// interleaving explorer (tools/explore_scheduler) drives; must outlive
  /// Machine::run.  Harness-only: a correct program's results are
  /// bit-identical under any hook.
  SchedulerHook* sim_hook = nullptr;

  /// Replacement wall-clock source for the scheduler's park deadlines and
  /// stall sweep (seconds, monotone non-decreasing).  Lets tests drive the
  /// recv/quiesce timeout paths with a fake clock instead of sitting out
  /// real seconds.  Never feeds simulated clocks.  nullptr = real steady
  /// clock.
  double (*sim_clock)() = nullptr;

  /// Record happens-before events (machine/hb.hpp) into a log attached via
  /// Machine::attach_hb_log.  On by default — with no log attached the
  /// cost is one null check per event site; turn off to silence recording
  /// even with a log attached.
  bool hb_instrumentation = true;
};

}  // namespace kali

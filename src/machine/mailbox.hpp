// Per-processor mailbox: blocking matched receive over (source, tag).
//
// Semantics mirror MPI-1 blocking point-to-point: messages between a fixed
// (src, dst, tag) triple are non-overtaking (FIFO); recv may use kAnySource.
//
// Blocking has two implementations behind one recv():
//  * Fiber path (the machine's execution model): when a FiberScheduler is
//    attached and the caller is one of its fibers, an unmatched recv parks
//    the calling fiber — a yield point, not a blocked host thread — and a
//    matching push (or abort, or the wall-clock deadline sweep) makes it
//    runnable again.
//  * Condition-variable path: kept for standalone Mailbox use (its own unit
//    tests drive it from raw host threads, with no machine around).
#pragma once

// Standalone-use fallback only; machine runs block via the fiber scheduler.
// kali-lint: allow(raw-thread)
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "machine/message.hpp"

namespace kali {

inline constexpr int kAnySource = -1;

class DeadlockDetector;
class FiberScheduler;

/// Snapshot row of one queued (sent-but-not-yet-received) message, for the
/// deadlock detector's diagnostic dump and the leak checks.
struct PendingMessage {
  int src = -1;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint32_t epoch = 0;
};

class Mailbox {
 public:
  /// Deposit a message (called from the sender's execution context).
  void push(Message m);

  /// Blocking matched receive.  When `detector` is set, the wait is
  /// published as a wait-for-graph edge for `self_rank` before blocking, so
  /// a certain deadlock aborts instantly with a diagnostic instead of
  /// sitting out the wall-clock timeout (which remains the fallback).
  /// Throws kali::Error on detection, on timeout, or if the machine aborted
  /// because a peer processor failed.
  Message recv(int src, int tag, double timeout_wall_seconds,
               DeadlockDetector* detector = nullptr, int self_rank = -1);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int src, int tag) const;

  /// Copy of the queued messages' metadata (src, tag, size, epoch), in
  /// queue order.  Diagnostics and leak accounting only.
  [[nodiscard]] std::vector<PendingMessage> snapshot() const;

  /// Wake all waiters with an "aborted" error (peer processor failed).
  void abort();

  /// Bind this mailbox to its owning rank's fiber scheduler for the
  /// duration of a Machine::run (nullptr to detach).  While attached, a
  /// recv called on one of `sched`'s fibers parks the fiber instead of
  /// blocking the host thread, and push() wakes the parked owner.
  void attach_scheduler(FiberScheduler* sched, int owner_rank);

  /// Number of queued (undelivered) messages.
  [[nodiscard]] std::size_t pending() const;

  /// Smallest simulated send_time among the queued messages (+inf when
  /// empty).  Feeds the edge-ledger compaction floor: a queued message's
  /// future receive replays route edges keyed by this send_time
  /// (machine/collectives.hpp compact_edge_ledgers).
  [[nodiscard]] double min_pending_send_time() const;

  /// High-water mark of pending(): the peak in-flight buffering this
  /// mailbox ever held.  Lockstep round execution (IssueOrder::kLockstep)
  /// exists to bound this by a small constant instead of O(P) for dense
  /// pairwise exchanges (see the kLockstep doc for the funnel-shaped
  /// caveat).  The peak depends on host scheduling of the fibers (unlike
  /// the simulated clocks), so tests may only assert bounds on it, never
  /// exact values.
  [[nodiscard]] std::size_t max_pending() const;

  /// Reset the high-water mark (used by Machine::reset_stats between runs).
  void reset_peak();

 private:
  Message recv_fiber(int src, int tag, double timeout_wall_seconds,
                     DeadlockDetector* detector, int self_rank);
  std::optional<Message> try_pop_locked(int src, int tag);
  [[nodiscard]] bool has_match_locked(int src, int tag) const;

  mutable std::mutex mu_;
  // kali-lint: allow(raw-thread) — standalone (schedulerless) recv path only
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t peak_pending_ = 0;
  bool aborted_ = false;

  // Fiber integration (valid while attached during a Machine::run).
  FiberScheduler* sched_ = nullptr;
  int owner_rank_ = -1;
  // The owner fiber's published wait: set under mu_ before it parks,
  // consumed under mu_ by the matching push (exactly one waker per park).
  bool waiting_active_ = false;
  int waiting_src_ = 0;
  int waiting_tag_ = 0;
};

}  // namespace kali

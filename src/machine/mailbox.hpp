// Per-processor mailbox: blocking matched receive over (source, tag).
//
// Semantics mirror MPI-1 blocking point-to-point: messages between a fixed
// (src, dst, tag) triple are non-overtaking (FIFO); recv may use kAnySource.
//
// Blocking has two implementations behind one recv():
//  * Fiber path (the machine's execution model): when a FiberScheduler is
//    attached and the caller is one of its fibers, an unmatched recv parks
//    the calling fiber — a yield point, not a blocked host thread — and a
//    matching push (or abort, or the wall-clock deadline sweep) makes it
//    runnable again.
//  * Condition-variable path: kept for standalone Mailbox use (its own unit
//    tests drive it from raw host threads, with no machine around).
#pragma once

// Standalone-use fallback only; machine runs block via the fiber scheduler.
// kali-lint: allow(raw-thread)
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "machine/message.hpp"

namespace kali {

inline constexpr int kAnySource = -1;

class DeadlockDetector;
class FiberScheduler;

/// Snapshot row of one queued (sent-but-not-yet-received) message, for the
/// deadlock detector's diagnostic dump and the leak checks.
struct PendingMessage {
  int src = -1;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint32_t epoch = 0;
};

/// One posted-but-incomplete nonblocking receive (Context::irecv).  The
/// operation table lives in the mailbox because completion consumes its
/// queue, but unlike the queue it is touched only by the owner rank's fiber
/// — posting, testing, waiting and completing all run on that fiber — so it
/// needs no lock (see Mailbox's fiber-integration comment).
struct PendingOp {
  std::uint64_t id = 0;        ///< rank-local operation id (1-based, never reused)
  int src = -1;                ///< matched source rank (kAnySource not allowed)
  int tag = 0;
  std::byte* dest = nullptr;   ///< caller-owned destination buffer
  std::size_t bytes = 0;       ///< expected payload size
  double post_clock = 0.0;     ///< owner's simulated clock at post time
};

class Mailbox {
 public:
  /// Deposit a message (called from the sender's execution context).
  void push(Message m);

  /// Blocking matched receive.  When `detector` is set, the wait is
  /// published as a wait-for-graph edge for `self_rank` before blocking, so
  /// a certain deadlock aborts instantly with a diagnostic instead of
  /// sitting out the wall-clock timeout (which remains the fallback).
  /// Throws kali::Error on detection, on timeout, or if the machine aborted
  /// because a peer processor failed.
  Message recv(int src, int tag, double timeout_wall_seconds,
               DeadlockDetector* detector = nullptr, int self_rank = -1);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int src, int tag) const;

  /// Pop the first queued match without blocking (nullopt if none).
  /// Records the HB match edge exactly like a blocking recv's pop — this is
  /// the consuming half of a nonblocking completion (Context::wait).
  std::optional<Message> try_pop(int src, int tag);

  /// Number of queued messages matching (src, tag).
  [[nodiscard]] std::size_t match_count(int src, int tag) const;

  /// Park the calling fiber until at least `n` messages matching (src, tag)
  /// are queued — the wait point of nonblocking completion.  Same
  /// park/wake/detector/timeout protocol as a blocking recv, but with a
  /// queue-depth predicate instead of a pop: nothing is consumed.  Falls
  /// back to the condition-variable path when no fiber scheduler is
  /// attached (standalone use).  Throws like recv().
  void await_matches(int src, int tag, std::size_t n,
                     double timeout_wall_seconds,
                     DeadlockDetector* detector = nullptr, int self_rank = -1);

  // --- nonblocking-operation table (owner fiber only; no lock) ---

  /// Register a posted irecv; returns its rank-local operation id.
  std::uint64_t post_op(int src, int tag, std::byte* dest, std::size_t bytes,
                        double post_clock);

  /// The posted-but-incomplete operations, in post (= id) order.
  [[nodiscard]] const std::vector<PendingOp>& pending_ops() const {
    return pending_ops_;
  }

  /// Remove a completed operation from the table.
  void erase_op(std::uint64_t id);

  /// True while `id` names a posted-but-incomplete operation.  Completed
  /// (erased) ids never come back — ids are monotone — so "not found"
  /// means "already complete".
  [[nodiscard]] bool op_pending(std::uint64_t id) const;

  /// Diagnostic dump of the incomplete operations ("rank R: irecv(src=S,
  /// tag=T, N bytes) posted and never completed" lines), for the
  /// dropped-handle leak check at end of program (Machine::run).
  [[nodiscard]] std::string describe_pending_ops(int owner) const;

  /// Drop all pending operations (Machine::run teardown: a failed run must
  /// not poison the table for the next one).
  void clear_pending_ops() { pending_ops_.clear(); }

  /// Copy of the queued messages' metadata (src, tag, size, epoch), in
  /// queue order.  Diagnostics and leak accounting only.
  [[nodiscard]] std::vector<PendingMessage> snapshot() const;

  /// Wake all waiters with an "aborted" error (peer processor failed).
  void abort();

  /// Bind this mailbox to its owning rank's fiber scheduler for the
  /// duration of a Machine::run (nullptr to detach).  While attached, a
  /// recv called on one of `sched`'s fibers parks the fiber instead of
  /// blocking the host thread, and push() wakes the parked owner.
  void attach_scheduler(FiberScheduler* sched, int owner_rank);

  /// Number of queued (undelivered) messages.
  [[nodiscard]] std::size_t pending() const;

  /// Smallest simulated send_time among the queued messages (+inf when
  /// empty).  Feeds the edge-ledger compaction floor: a queued message's
  /// future receive replays route edges keyed by this send_time
  /// (machine/collectives.hpp compact_edge_ledgers).
  [[nodiscard]] double min_pending_send_time() const;

  /// High-water mark of pending(): the peak in-flight buffering this
  /// mailbox ever held.  Lockstep round execution (IssueOrder::kLockstep)
  /// exists to bound this by a small constant instead of O(P) for dense
  /// pairwise exchanges (see the kLockstep doc for the funnel-shaped
  /// caveat).  The peak depends on host scheduling of the fibers (unlike
  /// the simulated clocks), so tests may only assert bounds on it, never
  /// exact values.
  [[nodiscard]] std::size_t max_pending() const;

  /// Reset the high-water mark (used by Machine::reset_stats between runs).
  void reset_peak();

 private:
  Message recv_fiber(int src, int tag, double timeout_wall_seconds,
                     DeadlockDetector* detector, int self_rank);
  void await_matches_fiber(int src, int tag, std::size_t n,
                           double timeout_wall_seconds,
                           DeadlockDetector* detector, int self_rank);
  std::optional<Message> try_pop_locked(int src, int tag);
  [[nodiscard]] bool has_match_locked(int src, int tag) const;
  [[nodiscard]] std::size_t match_count_locked(int src, int tag) const;

  mutable std::mutex mu_;
  // kali-lint: allow(raw-thread) — standalone (schedulerless) recv path only
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t peak_pending_ = 0;
  bool aborted_ = false;

  // Fiber integration (valid while attached during a Machine::run).
  FiberScheduler* sched_ = nullptr;
  int owner_rank_ = -1;
  // The owner fiber's published wait: set under mu_ before it parks,
  // consumed under mu_ by the matching push (exactly one waker per park).
  bool waiting_active_ = false;
  int waiting_src_ = 0;
  int waiting_tag_ = 0;

  // Nonblocking-operation table (owner fiber only — never locked; see
  // PendingOp).  Ids are monotone so table order is post order.
  std::vector<PendingOp> pending_ops_;
  std::uint64_t next_op_id_ = 1;
};

}  // namespace kali

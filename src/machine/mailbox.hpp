// Per-processor mailbox: blocking matched receive over (source, tag).
//
// Semantics mirror MPI-1 blocking point-to-point: messages between a fixed
// (src, dst, tag) triple are non-overtaking (FIFO); recv may use kAnySource.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "machine/message.hpp"

namespace kali {

inline constexpr int kAnySource = -1;

class Mailbox {
 public:
  /// Deposit a message (called from the sender's thread).
  void push(Message m);

  /// Blocking matched receive.  Throws kali::Error on wall-clock timeout
  /// (deadlock guard) or if the machine aborted because a peer threw.
  Message recv(int src, int tag, double timeout_wall_seconds);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int src, int tag);

  /// Wake all waiters with an "aborted" error (peer processor failed).
  void abort();

  /// Number of queued (undelivered) messages.
  [[nodiscard]] std::size_t pending() const;

  /// High-water mark of pending(): the peak in-flight buffering this
  /// mailbox ever held.  Lockstep round execution (IssueOrder::kLockstep)
  /// exists to bound this by a small constant instead of O(P) for dense
  /// pairwise exchanges (see the kLockstep doc for the funnel-shaped
  /// caveat).  The peak depends on host thread interleaving (unlike the
  /// simulated clocks), so tests may only assert bounds on it, never
  /// exact values.
  [[nodiscard]] std::size_t max_pending() const;

  /// Reset the high-water mark (used by Machine::reset_stats between runs).
  void reset_peak();

 private:
  std::optional<Message> try_pop_locked(int src, int tag);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t peak_pending_ = 0;
  bool aborted_ = false;
};

}  // namespace kali

// Per-processor mailbox: blocking matched receive over (source, tag).
//
// Semantics mirror MPI-1 blocking point-to-point: messages between a fixed
// (src, dst, tag) triple are non-overtaking (FIFO); recv may use kAnySource.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "machine/message.hpp"

namespace kali {

inline constexpr int kAnySource = -1;

class DeadlockDetector;

/// Snapshot row of one queued (sent-but-not-yet-received) message, for the
/// deadlock detector's diagnostic dump and the leak checks.
struct PendingMessage {
  int src = -1;
  int tag = 0;
  std::size_t bytes = 0;
  std::uint32_t epoch = 0;
};

class Mailbox {
 public:
  /// Deposit a message (called from the sender's thread).
  void push(Message m);

  /// Blocking matched receive.  When `detector` is set, the wait is
  /// published as a wait-for-graph edge for `self_rank` before blocking, so
  /// a certain deadlock aborts instantly with a diagnostic instead of
  /// sitting out the wall-clock timeout (which remains the fallback).
  /// Throws kali::Error on detection, on timeout, or if the machine aborted
  /// because a peer threw.
  Message recv(int src, int tag, double timeout_wall_seconds,
               DeadlockDetector* detector = nullptr, int self_rank = -1);

  /// Non-blocking probe: true if a matching message is queued.
  [[nodiscard]] bool probe(int src, int tag) const;

  /// Copy of the queued messages' metadata (src, tag, size, epoch), in
  /// queue order.  Diagnostics and leak accounting only.
  [[nodiscard]] std::vector<PendingMessage> snapshot() const;

  /// Wake all waiters with an "aborted" error (peer processor failed).
  void abort();

  /// Number of queued (undelivered) messages.
  [[nodiscard]] std::size_t pending() const;

  /// High-water mark of pending(): the peak in-flight buffering this
  /// mailbox ever held.  Lockstep round execution (IssueOrder::kLockstep)
  /// exists to bound this by a small constant instead of O(P) for dense
  /// pairwise exchanges (see the kLockstep doc for the funnel-shaped
  /// caveat).  The peak depends on host thread interleaving (unlike the
  /// simulated clocks), so tests may only assert bounds on it, never
  /// exact values.
  [[nodiscard]] std::size_t max_pending() const;

  /// Reset the high-water mark (used by Machine::reset_stats between runs).
  void reset_peak();

 private:
  std::optional<Message> try_pop_locked(int src, int tag);
  [[nodiscard]] bool has_match_locked(int src, int tag) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  std::size_t peak_pending_ = 0;
  bool aborted_ = false;
};

}  // namespace kali

#include "machine/stats.hpp"

#include <algorithm>

namespace kali {

double MachineStats::max_clock() const {
  double m = 0.0;
  for (double c : clocks) {
    m = std::max(m, c);
  }
  return m;
}

ProcCounters MachineStats::totals() const {
  ProcCounters t;
  for (const auto& c : per_proc) {
    t += c;
  }
  return t;
}

double MachineStats::compute_utilization() const {
  const double makespan = max_clock();
  if (makespan <= 0.0 || per_proc.empty()) {
    return 0.0;
  }
  double busy = 0.0;
  for (const auto& c : per_proc) {
    busy += c.compute_time;
  }
  return busy / (makespan * static_cast<double>(per_proc.size()));
}

}  // namespace kali

#include "machine/stats.hpp"

#include <algorithm>

namespace kali {

double MachineStats::max_clock() const {
  double m = 0.0;
  for (double c : clocks) {
    m = std::max(m, c);
  }
  return m;
}

ProcCounters MachineStats::totals() const {
  ProcCounters t;
  for (const auto& c : per_proc) {
    t += c;
  }
  return t;
}

std::uint64_t MachineStats::self_msgs(int tag) const {
  std::uint64_t n = 0;
  for (const auto& c : per_proc) {
    const auto it = c.self_msgs_by_tag.find(tag);
    if (it != c.self_msgs_by_tag.end()) {
      n += it->second;
    }
  }
  return n;
}

std::uint64_t MachineStats::self_msgs_total() const {
  std::uint64_t n = 0;
  for (const auto& c : per_proc) {
    for (const auto& [tag, k] : c.self_msgs_by_tag) {
      n += k;
    }
  }
  return n;
}

std::uint64_t MachineStats::sent_msgs(int tag) const {
  std::uint64_t n = 0;
  for (const auto& c : per_proc) {
    const auto it = c.sent_by_tag.find(tag);
    if (it != c.sent_by_tag.end()) {
      n += it->second;
    }
  }
  return n;
}

std::uint64_t MachineStats::recv_msgs(int tag) const {
  std::uint64_t n = 0;
  for (const auto& c : per_proc) {
    const auto it = c.recv_by_tag.find(tag);
    if (it != c.recv_by_tag.end()) {
      n += it->second;
    }
  }
  return n;
}

std::map<int, std::int64_t> MachineStats::unmatched_by_tag() const {
  std::map<int, std::int64_t> diff;
  for (const auto& c : per_proc) {
    for (const auto& [tag, n] : c.sent_by_tag) {
      diff[tag] += static_cast<std::int64_t>(n);
    }
    for (const auto& [tag, n] : c.recv_by_tag) {
      diff[tag] -= static_cast<std::int64_t>(n);
    }
  }
  std::erase_if(diff, [](const auto& kv) { return kv.second == 0; });
  return diff;
}

double MachineStats::link_wait_time() const {
  double t = 0.0;
  for (const auto& c : per_proc) {
    t += c.link_wait_time;
  }
  return t;
}

double MachineStats::edge_wait_time() const {
  double t = 0.0;
  for (const auto& c : per_proc) {
    t += c.edge_wait_time;
  }
  return t;
}

std::uint64_t MachineStats::max_edge_load() const {
  std::map<std::int64_t, std::uint64_t> merged;
  for (const auto& c : per_proc) {
    for (const auto& [edge, n] : c.edge_msgs) {
      merged[edge] += n;
    }
  }
  std::uint64_t m = 0;
  for (const auto& [edge, n] : merged) {
    m = std::max(m, n);
  }
  return m;
}

std::size_t MachineStats::max_mailbox_depth() const {
  std::size_t m = 0;
  for (std::size_t p : mailbox_peaks) {
    m = std::max(m, p);
  }
  return m;
}

std::uint64_t MachineStats::contended_msgs() const {
  std::uint64_t n = 0;
  for (const auto& c : per_proc) {
    n += c.contended_msgs;
  }
  return n;
}

double MachineStats::overlap_wire_time() const {
  double t = 0.0;
  for (const auto& c : per_proc) {
    t += c.overlap_wire_time;
  }
  return t;
}

double MachineStats::overlap_hidden_time() const {
  double t = 0.0;
  for (const auto& c : per_proc) {
    t += c.overlap_hidden_time;
  }
  return t;
}

double MachineStats::overlap_ratio() const {
  const double wire = overlap_wire_time();
  if (wire <= 0.0) {
    return 0.0;
  }
  return overlap_hidden_time() / wire;
}

double MachineStats::compute_utilization() const {
  const double makespan = max_clock();
  if (makespan <= 0.0 || per_proc.empty()) {
    return 0.0;
  }
  double busy = 0.0;
  for (const auto& c : per_proc) {
    busy += c.compute_time;
  }
  return busy / (makespan * static_cast<double>(per_proc.size()));
}

}  // namespace kali

#include "machine/collectives.hpp"

#include <algorithm>

#include "machine/deadlock.hpp"
#include "machine/hb.hpp"
#include "support/check.hpp"

namespace kali {

void barrier(Context& ctx, const Group& g) {
  const int me = g.index();
  char token = 0;
  for (int which = 1; which >= 0; --which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      (void)ctx.recv<char>(g.rank_at(c), kTagBarrierUp);
    }
  }
  if (me != 0) {
    ctx.send(g.rank_at(detail::tree_parent(me)), kTagBarrierUp, token);
    token = ctx.recv<char>(g.rank_at(detail::tree_parent(me)), kTagBarrierDown);
  }
  for (int which = 0; which < 2; ++which) {
    const int c = detail::tree_child(me, which);
    if (c < g.size()) {
      ctx.send(g.rank_at(c), kTagBarrierDown, token);
    }
  }
}

double sync_clocks(Context& ctx, const Group& g) {
  // A *measurement* barrier: every member's clock is set to the maximum of
  // the clocks at entry.  The synchronization traffic itself is excluded
  // from the model (clocks may be pulled back to the aligned value), so
  // phases bracketed by sync_clocks are measured exactly.  That exclusion
  // must cover link state too: the barrier's own allreduce messages (and
  // any traffic before it) advanced this member's port clocks and edge
  // ledgers, and leaving them advanced would leak busy time into the next
  // measured phase under contention.
  const double aligned = allreduce_max(ctx, g, ctx.clock());
  ctx.proc().realign_clock(aligned);  // sanctioned pull-back: see Processor
  ctx.proc().clear_link_state();
  if (HbLog* hb = ctx.machine().hb_log(); hb != nullptr) {
    // Own-shard state the barrier rewrote: the pulled-back clock, the
    // cleared port clocks, and the emptied edge ledgers.  (The leak probe
    // below reads this member's own mailbox concurrently with possible
    // next-phase pushes from faster peers — benign by the epoch filter —
    // so that read is deliberately not recorded.)
    hb->write(ctx.rank(), HbObj::kClock, ctx.rank());
    hb->write(ctx.rank(), HbObj::kLink, ctx.rank());
    hb->write(ctx.rank(), HbObj::kLedger, ctx.rank());
  }
  // Message-leak check: when the group spans the machine, the allreduce is
  // a full synchronization, so every message of the ending phase addressed
  // to this member has been pushed by now — anything still queued that was
  // stamped with this phase's epoch was sent and never received (a faster
  // peer may already have sent into the *next* phase with a bumped epoch;
  // the filter skips those).  A subgroup barrier proves nothing about
  // non-members' traffic, so the check only arms machine-wide.
  KALI_INVARIANT(
      g.size() < ctx.nprocs() ||
          stale_pending(ctx.proc().mailbox(), ctx.proc().barrier_epoch()) ==
              0,
      "message leak at sync_clocks: sent this phase but never received:\n" +
          describe_pending(ctx.proc().mailbox(), ctx.rank(),
                           ctx.proc().barrier_epoch()));
  // Invariant-mode bookkeeping: messages are stamped with the sender's
  // barrier count so a message sent before this barrier and received after
  // it is caught at the recv (see Message::epoch).  Bumped last, after the
  // barrier's own allreduce traffic has fully drained on this member.
  ctx.proc().bump_barrier_epoch();
  if (HbLog* hb = ctx.machine().hb_log(); hb != nullptr) {
    hb->write(ctx.rank(), HbObj::kEpoch, ctx.rank());
  }
  return aligned;
}

void compact_edge_ledgers(Context& ctx) {
  // Host-side rendezvous, not a model barrier: the fiber scheduler parks
  // every rank, the last arriver computes the machine-wide floor and prunes
  // all ledgers, then everyone resumes with clocks untouched.
  ctx.machine().quiesce_compact();
}

}  // namespace kali

#include "machine/hb.hpp"

#include <ostream>

#include "support/check.hpp"

namespace kali {

namespace {

const char* obj_name(HbObj o) {
  switch (o) {
    case HbObj::kClock:
      return "clock";
    case HbObj::kLink:
      return "link";
    case HbObj::kLedger:
      return "ledger";
    case HbObj::kCtr:
      return "ctr";
    case HbObj::kEpoch:
      return "epoch";
    case HbObj::kMbox:
      return "mbox";
    case HbObj::kBuf:
      return "buf";
  }
  return "?";
}

}  // namespace

HbLog::HbLog(int nprocs) : nprocs_(nprocs) {
  KALI_CHECK(nprocs >= 1, "HbLog needs at least one rank");
  shards_.resize(static_cast<std::size_t>(nprocs) + 1);
}

std::vector<HbLog::Event>& HbLog::shard(int actor) {
  KALI_CHECK(actor >= kMachineActor && actor < nprocs_,
             "HbLog: actor out of range");
  const std::size_t i = actor == kMachineActor
                            ? static_cast<std::size_t>(nprocs_)
                            : static_cast<std::size_t>(actor);
  return shards_[i];
}

void HbLog::send(int actor, int dst, std::uint64_t mseq) {
  push(actor, {Kind::kSend, HbObj::kClock, dst, mseq});
}

void HbLog::match(int actor, int src, std::uint64_t mseq) {
  push(actor, {Kind::kMatch, HbObj::kClock, src, mseq});
}

void HbLog::park(int actor, std::uint64_t park_seq) {
  push(actor, {Kind::kPark, HbObj::kClock, 0, park_seq});
}

void HbLog::wake(int actor, int target, std::uint64_t park_seq) {
  push(actor, {Kind::kWake, HbObj::kClock, target, park_seq});
}

void HbLog::woken(int actor, std::uint64_t park_seq) {
  push(actor, {Kind::kWoken, HbObj::kClock, 0, park_seq});
}

void HbLog::post(int actor, std::uint64_t opid) {
  push(actor, {Kind::kIPost, HbObj::kClock, 0, opid});
}

void HbLog::complete(int actor, std::uint64_t opid) {
  push(actor, {Kind::kIComp, HbObj::kClock, 0, opid});
}

void HbLog::quiesce_enter(int actor, std::uint64_t gen) {
  push(actor, {Kind::kQEnter, HbObj::kClock, 0, gen});
}

void HbLog::quiesce_run(int actor, std::uint64_t gen) {
  push(actor, {Kind::kQRun, HbObj::kClock, 0, gen});
}

void HbLog::quiesce_release(int actor, std::uint64_t gen) {
  push(actor, {Kind::kQRelease, HbObj::kClock, 0, gen});
}

void HbLog::quiesce_leave(int actor, std::uint64_t gen) {
  push(actor, {Kind::kQLeave, HbObj::kClock, 0, gen});
}

void HbLog::read(int actor, HbObj obj, int owner) {
  push(actor, {Kind::kRead, obj, owner, 0});
}

void HbLog::write(int actor, HbObj obj, int owner) {
  push(actor, {Kind::kWrite, obj, owner, 0});
}

void HbLog::write_log(std::ostream& os) const {
  os << "kali-hb 1 " << nprocs_ << "\n";
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const int actor =
        s == static_cast<std::size_t>(nprocs_) ? kMachineActor
                                               : static_cast<int>(s);
    std::uint64_t aseq = 0;
    for (const Event& e : shards_[s]) {
      switch (e.kind) {
        case Kind::kSend:
          os << "send " << actor << ' ' << aseq << ' ' << e.peer << ' '
             << e.n;
          break;
        case Kind::kMatch:
          os << "recv " << actor << ' ' << aseq << ' ' << e.peer << ' '
             << e.n;
          break;
        case Kind::kPark:
          os << "park " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kWake:
          os << "wake " << actor << ' ' << aseq << ' ' << e.peer << ' '
             << e.n;
          break;
        case Kind::kWoken:
          os << "woken " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kQEnter:
          os << "qenter " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kQRun:
          os << "qrun " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kQRelease:
          os << "qrel " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kQLeave:
          os << "qleave " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kRead:
          os << "r " << actor << ' ' << aseq << ' ' << obj_name(e.obj)
             << ':' << e.peer;
          break;
        case Kind::kWrite:
          os << "w " << actor << ' ' << aseq << ' ' << obj_name(e.obj)
             << ':' << e.peer;
          break;
        case Kind::kIPost:
          os << "ipost " << actor << ' ' << aseq << ' ' << e.n;
          break;
        case Kind::kIComp:
          os << "icomp " << actor << ' ' << aseq << ' ' << e.n;
          break;
      }
      os << "\n";
      ++aseq;
    }
  }
}

void HbLog::clear() {
  for (auto& s : shards_) {
    s.clear();
  }
}

std::size_t HbLog::total_events() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    n += s.size();
  }
  return n;
}

}  // namespace kali

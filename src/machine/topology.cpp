#include "machine/topology.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "support/check.hpp"

namespace kali {

int mesh_rows(int nprocs) {
  KALI_CHECK(nprocs >= 1, "nprocs must be positive");
  int r = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (r > 1 && nprocs % r != 0) {
    --r;
  }
  return r;
}

int diameter(Topology topo, int nprocs) {
  KALI_CHECK(nprocs >= 1, "nprocs must be positive");
  if (nprocs == 1) {
    return 0;
  }
  switch (topo) {
    case Topology::kComplete:
      return 1;
    case Topology::kRing:
      return nprocs / 2;
    case Topology::kMesh2D: {
      const int rows = mesh_rows(nprocs);
      const int cols = nprocs / rows;
      return (rows - 1) + (cols - 1);
    }
    case Topology::kHypercube:
      // Ranks need not be a power of two; the widest label pair decides.
      return std::popcount(static_cast<std::uint32_t>(
          std::bit_ceil(static_cast<std::uint32_t>(nprocs)) - 1u));
  }
  KALI_FAIL("unknown topology");
}

int hop_count(Topology topo, int nprocs, int a, int b) {
  KALI_CHECK(a >= 0 && a < nprocs && b >= 0 && b < nprocs,
             "rank out of range");
  if (a == b) {
    return 0;
  }
  switch (topo) {
    case Topology::kComplete:
      return 1;
    case Topology::kRing: {
      const int d = std::abs(a - b);
      return std::min(d, nprocs - d);
    }
    case Topology::kMesh2D: {
      const int rows = mesh_rows(nprocs);
      const int cols = nprocs / rows;
      // Ranks beyond rows*cols (when nprocs is prime-ish) fold onto the
      // last row; hop counts remain well-defined.
      auto coord = [&](int r) {
        const int rr = std::min(r / cols, rows - 1);
        const int cc = r - rr * cols;
        return std::pair<int, int>(rr, cc);
      };
      const auto [ar, ac] = coord(a);
      const auto [br, bc] = coord(b);
      return std::abs(ar - br) + std::abs(ac - bc);
    }
    case Topology::kHypercube:
      return std::popcount(static_cast<std::uint32_t>(a) ^
                           static_cast<std::uint32_t>(b));
  }
  KALI_FAIL("unknown topology");
}

}  // namespace kali

#include "machine/topology.hpp"

#include <bit>
#include <cmath>
#include <cstdlib>

#include "support/check.hpp"

namespace kali {

int mesh_rows(int nprocs) {
  KALI_CHECK(nprocs >= 1, "nprocs must be positive");
  int r = static_cast<int>(std::sqrt(static_cast<double>(nprocs)));
  while (r > 1 && nprocs % r != 0) {
    --r;
  }
  return r;
}

std::pair<int, int> mesh_coord(int nprocs, int rank) {
  const int rows = mesh_rows(nprocs);
  const int cols = nprocs / rows;
  // mesh_rows always divides nprocs, so the grid is exact: every rank has a
  // unique in-range coordinate and no fold/clamp is ever needed.
  KALI_CHECK(rows * cols == nprocs, "mesh factorization must be exact");
  return {rank / cols, rank % cols};
}

int diameter(Topology topo, int nprocs) {
  KALI_CHECK(nprocs >= 1, "nprocs must be positive");
  if (nprocs == 1) {
    return 0;
  }
  switch (topo) {
    case Topology::kComplete:
      return 1;
    case Topology::kRing:
      return nprocs / 2;
    case Topology::kMesh2D: {
      const int rows = mesh_rows(nprocs);
      const int cols = nprocs / rows;
      return (rows - 1) + (cols - 1);
    }
    case Topology::kHypercube:
      // Ranks need not be a power of two; the widest label pair decides.
      return std::popcount(static_cast<std::uint32_t>(
          std::bit_ceil(static_cast<std::uint32_t>(nprocs)) - 1u));
  }
  KALI_FAIL("unknown topology");
}

int hop_count(Topology topo, int nprocs, int a, int b) {
  KALI_CHECK(a >= 0 && a < nprocs && b >= 0 && b < nprocs,
             "rank out of range");
  if (a == b) {
    return 0;
  }
  switch (topo) {
    case Topology::kComplete:
      return 1;
    case Topology::kRing: {
      const int d = std::abs(a - b);
      return std::min(d, nprocs - d);
    }
    case Topology::kMesh2D: {
      const auto [ar, ac] = mesh_coord(nprocs, a);
      const auto [br, bc] = mesh_coord(nprocs, b);
      return std::abs(ar - br) + std::abs(ac - bc);
    }
    case Topology::kHypercube:
      return std::popcount(static_cast<std::uint32_t>(a) ^
                           static_cast<std::uint32_t>(b));
  }
  KALI_FAIL("unknown topology");
}

int first_hop(Topology topo, int nprocs, int a, int b) {
  KALI_CHECK(a >= 0 && a < nprocs && b >= 0 && b < nprocs,
             "rank out of range");
  KALI_CHECK(a != b, "first_hop needs distinct ranks");
  switch (topo) {
    case Topology::kComplete:
      return b;
    case Topology::kRing: {
      const int fwd = ((b - a) % nprocs + nprocs) % nprocs;
      const int step = fwd <= nprocs - fwd ? 1 : nprocs - 1;
      return (a + step) % nprocs;
    }
    case Topology::kMesh2D: {
      const int cols = nprocs / mesh_rows(nprocs);
      const auto [r, c] = mesh_coord(nprocs, a);
      const auto [br, bc] = mesh_coord(nprocs, b);
      if (c != bc) {
        return r * cols + c + (bc > c ? 1 : -1);
      }
      return (r + (br > r ? 1 : -1)) * cols + c;
    }
    case Topology::kHypercube: {
      const auto diff = static_cast<std::uint32_t>(a ^ b);
      return a ^ static_cast<int>(diff & (~diff + 1u));  // lowest set bit
    }
  }
  KALI_FAIL("unknown topology");
}

std::vector<int> route(Topology topo, int nprocs, int a, int b) {
  KALI_CHECK(a >= 0 && a < nprocs && b >= 0 && b < nprocs,
             "rank out of range");
  std::vector<int> path{a};
  if (a == b) {
    return path;
  }
  switch (topo) {
    case Topology::kComplete:
      path.push_back(b);
      return path;
    case Topology::kRing: {
      // Shorter arc; the tie at nprocs / 2 goes clockwise (increasing).
      const int fwd = ((b - a) % nprocs + nprocs) % nprocs;
      const int step = fwd <= nprocs - fwd ? 1 : nprocs - 1;
      for (int v = a; v != b;) {
        v = (v + step) % nprocs;
        path.push_back(v);
      }
      return path;
    }
    case Topology::kMesh2D: {
      // X-Y routing: correct the column first, then the row.
      const int cols = nprocs / mesh_rows(nprocs);
      auto [r, c] = mesh_coord(nprocs, a);
      const auto [br, bc] = mesh_coord(nprocs, b);
      while (c != bc) {
        c += bc > c ? 1 : -1;
        path.push_back(r * cols + c);
      }
      while (r != br) {
        r += br > r ? 1 : -1;
        path.push_back(r * cols + c);
      }
      return path;
    }
    case Topology::kHypercube: {
      // e-cube routing: fix differing bits from LSB up.  Intermediate
      // labels of an incomplete hypercube may exceed nprocs - 1; they name
      // links in the label lattice, consistent with the Hamming hop count.
      const auto diff = static_cast<std::uint32_t>(a ^ b);
      int v = a;
      for (int bit = 0; bit < 32; ++bit) {
        if (diff & (1u << bit)) {
          v ^= static_cast<int>(1u << bit);
          path.push_back(v);
        }
      }
      return path;
    }
  }
  KALI_FAIL("unknown topology");
}

}  // namespace kali

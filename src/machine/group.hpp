// A communication group: an ordered set of machine ranks plus the calling
// processor's position in it.  Collectives are defined over groups; the
// runtime layer builds groups from processor-array views (ProcView).
#pragma once

#include <algorithm>
#include <vector>

#include "support/check.hpp"

namespace kali {

class Group {
 public:
  /// Build a group.  `self_rank` must be a member.
  Group(std::vector<int> ranks, int self_rank) : ranks_(std::move(ranks)) {
    KALI_CHECK(!ranks_.empty(), "group must be non-empty");
    auto it = std::find(ranks_.begin(), ranks_.end(), self_rank);
    KALI_CHECK(it != ranks_.end(), "calling rank is not a group member");
    index_ = static_cast<int>(it - ranks_.begin());
  }

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] int index() const { return index_; }  ///< my position
  [[nodiscard]] int rank_at(int i) const {
    KALI_CHECK(i >= 0 && i < size(), "group index out of range");
    return ranks_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int self() const { return rank_at(index_); }
  [[nodiscard]] const std::vector<int>& ranks() const { return ranks_; }

  [[nodiscard]] bool contains(int rank) const {
    return std::find(ranks_.begin(), ranks_.end(), rank) != ranks_.end();
  }

 private:
  std::vector<int> ranks_;
  int index_ = 0;
};

}  // namespace kali

// Interconnect hop-count models.
//
// The cost model charges `latency + per_hop * (hops - 1)` per message, so a
// topology only needs to supply pairwise hop counts.  Store-and-forward
// per-hop costs were significant on 1989 machines (pre-wormhole routing).
#pragma once

#include "machine/config.hpp"

namespace kali {

/// Hop count between ranks `a` and `b` among `nprocs` processors.
/// For kMesh2D the machine is folded into a near-square grid; for
/// kHypercube ranks are compared bitwise (nprocs need not be a power of 2:
/// the Hamming distance of the rank labels is used as-is).
int hop_count(Topology topo, int nprocs, int a, int b);

/// Rows of the near-square factorization used by kMesh2D (exposed for tests).
int mesh_rows(int nprocs);

/// Network diameter: the largest hop count between any two of `nprocs`
/// ranks.  Used by the performance predictor to bound the per-message
/// latency of all-to-all exchanges, where the worst-separated pair sets the
/// wire term.
int diameter(Topology topo, int nprocs);

}  // namespace kali

// Interconnect hop-count and routing models.
//
// The cut-through cost model charges `latency + per_hop * (hops - 1)` per
// message, so it only needs pairwise hop counts.  The store-and-forward
// contention model (LinkContention::kStoreForward) additionally needs the
// actual path: route() returns the deterministic dimension-ordered route a
// message follows, and every directed edge on it is a serializable resource
// with its own busy-until clock.  Store-and-forward per-hop costs were
// significant on 1989 machines (pre-wormhole routing).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "machine/config.hpp"

namespace kali {

/// Hop count between ranks `a` and `b` among `nprocs` processors.
/// For kMesh2D the machine is a near-square rows x cols grid with
/// rows * cols == nprocs (mesh_rows guarantees the factorization); for
/// kHypercube ranks are compared bitwise (nprocs need not be a power of 2:
/// the Hamming distance of the rank labels is used as-is).
int hop_count(Topology topo, int nprocs, int a, int b);

/// Rows of the near-square factorization used by kMesh2D (exposed for tests).
int mesh_rows(int nprocs);

/// (row, col) of `rank` in the kMesh2D grid of `nprocs` processors —
/// the single coordinate map shared by hop_count and route.
std::pair<int, int> mesh_coord(int nprocs, int rank);

/// Network diameter: the largest hop count between any two of `nprocs`
/// ranks.  Used by the performance predictor to bound the per-message
/// latency of all-to-all exchanges, where the worst-separated pair sets the
/// wire term.
int diameter(Topology topo, int nprocs);

/// The deterministic route a message takes from `a` to `b`: the full node
/// sequence [a, ..., b], of length hop_count(a, b) + 1 (just [a] when
/// a == b).  Routing is dimension-ordered, so it depends only on the
/// endpoints — both ends of a transfer can reconstruct it independently:
///  * kComplete — the dedicated link [a, b] (crossbar);
///  * kRing     — around the shorter arc, clockwise (increasing ranks) on
///                the tie at nprocs / 2;
///  * kMesh2D   — X-Y routing: correct the column first, then the row;
///  * kHypercube — e-cube routing: fix differing bits from least to most
///                significant.  For non-power-of-two sizes intermediate
///                labels may name absent nodes (the label lattice matches
///                hop_count's Hamming metric); they serve only to identify
///                edges, never to address processors.
std::vector<int> route(Topology topo, int nprocs, int a, int b);

/// First intermediate node of route(topo, nprocs, a, b) in O(1), without
/// materializing the path — the send hot path only needs the injection
/// edge (a, first_hop).  Requires a != b.
int first_hop(Topology topo, int nprocs, int a, int b);

/// Stable identifier of the directed edge u -> v, the key of the
/// store-and-forward busy clocks and ledgers.  Node labels fit in 32 bits.
inline std::int64_t edge_id(int u, int v) {
  return (static_cast<std::int64_t>(u) << 32) |
         static_cast<std::int64_t>(static_cast<std::uint32_t>(v));
}

}  // namespace kali

#include "machine/machine.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <mutex>

#include "machine/context.hpp"
#include "machine/hb.hpp"
#include "machine/scheduler.hpp"
#include "machine/topology.hpp"
#include "support/check.hpp"

namespace kali {

Machine::Machine(int nprocs, MachineConfig cfg) : cfg_(cfg) {
  KALI_CHECK(nprocs >= 1, "machine needs at least one processor");
  procs_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    procs_.push_back(std::make_unique<Processor>(r));
  }
  if (cfg_.deadlock_detection) {
    std::vector<Mailbox*> mailboxes;
    mailboxes.reserve(procs_.size());
    for (auto& p : procs_) {
      mailboxes.push_back(&p->mailbox());
    }
    detector_ = std::make_unique<DeadlockDetector>(std::move(mailboxes));
  }
}

Processor& Machine::proc(int rank) {
  KALI_CHECK(rank >= 0 && rank < size(), "rank out of range");
  return *procs_[static_cast<std::size_t>(rank)];
}

int Machine::hops(int a, int b) const {
  return hop_count(cfg_.topology, size(), a, b);
}

double Machine::wire_latency(int a, int b) const {
  const int h = hops(a, b);
  if (h <= 0) {
    return cfg_.latency;  // self-sends still traverse the software stack
  }
  return cfg_.latency + cfg_.per_hop * (h - 1);
}

std::vector<int> Machine::route(int a, int b) const {
  return kali::route(cfg_.topology, size(), a, b);
}

void Machine::run(const std::function<void(Context&)>& program) {
  const int p = size();
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  if (detector_) {
    detector_->reset();
  }
  // One fiber per rank on a fixed worker pool; an unmatched recv parks
  // its fiber (mailbox.cpp recv_fiber) instead of blocking a host thread.
  FiberScheduler sched(p, cfg_.sim_workers, cfg_.recv_timeout_wall,
                       cfg_.fiber_stack_bytes);
  if (cfg_.sim_hook != nullptr) {
    sched.set_hook(cfg_.sim_hook);
  }
  if (cfg_.sim_clock != nullptr) {
    sched.set_clock(cfg_.sim_clock);
  }
  if (HbLog* hb = hb_log(); hb != nullptr) {
    sched.attach_hb_log(hb);
  }
  for (auto& q : procs_) {
    q->mailbox().attach_scheduler(&sched, q->rank());
  }
  active_sched_ = &sched;
  std::exception_ptr sched_error;
  try {
    sched.run([&](int r) {
      Context ctx(*this, *procs_[static_cast<std::size_t>(r)]);
      try {
        program(ctx);
#if defined(KALI_CHECK_INVARIANTS)
        // Dropped-handle leak check: a nonblocking receive posted and never
        // completed when the rank program returns means a handle went out
        // of scope without wait() — its matched message (if any) would rot
        // in the queue and its buffer was never filled.
        {
          const std::string leaked =
              procs_[static_cast<std::size_t>(r)]->mailbox().describe_pending_ops(r);
          if (!leaked.empty()) {
            throw Error(
                "nonblocking operation never completed: the rank program "
                "returned with pending handles (every irecv handle must be "
                "waited):\n" +
                leaked);
          }
        }
#endif
        // Retire this rank in the wait-for graph: peers still waiting on
        // it may have just become unsatisfiable, which mark_done detects
        // (the throw lands in the catch below like any program error).
        if (detector_) {
          detector_->mark_done(r);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
        failed.store(true);
        // Wake every blocked peer so the whole run unwinds promptly —
        // mailboxes first (parked recvs), then the scheduler (quiesce
        // parks and any park still in flight).
        for (auto& q : procs_) {
          q->mailbox().abort();
        }
        sched.abort();
      }
    });
  } catch (...) {
    // The scheduler itself failed (e.g. a fiber stack overflow it
    // diagnosed at a switch-out).  Detach below, then rethrow this FIRST:
    // ranks that died secondarily ("recv aborted") must not mask the
    // root cause.
    sched_error = std::current_exception();
  }
  active_sched_ = nullptr;
  for (auto& q : procs_) {
    q->mailbox().attach_scheduler(nullptr, -1);
    // A failed or non-invariant run may leave incomplete nonblocking
    // operations behind; drop them so they cannot poison a later run.
    q->mailbox().clear_pending_ops();
  }
  if (sched_error) {
    std::rethrow_exception(sched_error);
  }
  if (failed.load()) {
    std::rethrow_exception(first_error);
  }
#if defined(KALI_CHECK_INVARIANTS)
  // Message-leak check at teardown: the program finished everywhere, so
  // anything still queued was sent and never received — a protocol bug the
  // matched-pair design of every runtime exchange rules out.  (sync_clocks
  // runs the same check per phase, epoch-filtered; see collectives.cpp.)
  std::string leaks;
  for (const auto& q : procs_) {
    leaks += describe_pending(q->mailbox(), q->rank());
  }
  if (!leaks.empty()) {
    throw Error(
        "message leak at machine teardown: sent but never received:\n" +
        leaks);
  }
#endif
}

MachineStats Machine::stats() const {
  MachineStats s;
  s.per_proc.reserve(procs_.size());
  s.clocks.reserve(procs_.size());
  s.mailbox_peaks.reserve(procs_.size());
  for (const auto& p : procs_) {
    s.per_proc.push_back(p->counters());
    s.clocks.push_back(p->clock());
    s.mailbox_peaks.push_back(p->mailbox().max_pending());
  }
  return s;
}

void Machine::reset_stats() {
  for (auto& p : procs_) {
    p->reset();
  }
}

void Machine::quiesce_compact() {
  KALI_CHECK(active_sched_ != nullptr,
             "compact_edge_ledgers: no machine run in progress");
  active_sched_->quiesce([this] {
    // Every fiber but this one is suspended, so all rank-sharded state is
    // safe to read.  Floor F: no future edge reservation anywhere can
    // carry a key with send_time < F — new sends are stamped at or above
    // the sender's clock (clocks never move backwards inside a phase, and
    // sync_clocks realigns upward), and a queued message's future receive
    // replays its recorded send_time.
    HbLog* hb = hb_log();
    const int actor = FiberScheduler::current_rank();
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& q : procs_) {
      if (hb != nullptr) {
        // Cross-rank reads, sanctioned by the quiesce: they sit between
        // the leader's qrun and qrel events, so the analyzer sees them
        // ordered against every peer's own accesses.
        hb->read(actor, HbObj::kClock, q->rank());
        hb->read(actor, HbObj::kMbox, q->rank());
      }
      floor = std::min(floor, q->clock());
      floor = std::min(floor, q->mailbox().min_pending_send_time());
    }
    for (auto& q : procs_) {
      if (hb != nullptr) {
        hb->write(actor, HbObj::kLedger, q->rank());
      }
      q->compact_edge_ledgers(floor);
    }
  });
}

}  // namespace kali

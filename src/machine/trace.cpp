#include "machine/trace.hpp"

#include <cstddef>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace kali {
namespace {

std::size_t cell(int row, int ncols, int col) {
  return static_cast<std::size_t>(row) * static_cast<std::size_t>(ncols) +
         static_cast<std::size_t>(col);
}

}  // namespace

void ActivityTrace::resize(int nsteps, int nprocs) {
  std::lock_guard<std::mutex> lk(mu_);
  nsteps_ = nsteps;
  nprocs_ = nprocs;
  cells_.assign(static_cast<std::size_t>(nsteps) * static_cast<std::size_t>(nprocs), '.');
}

void ActivityTrace::mark(int step, int proc, char symbol) {
  std::lock_guard<std::mutex> lk(mu_);
  KALI_CHECK(step >= 0 && step < nsteps_ && proc >= 0 && proc < nprocs_,
             "trace mark out of range");
  cells_[cell(step, nprocs_, proc)] = symbol;
}

char ActivityTrace::at(int step, int proc) const {
  std::lock_guard<std::mutex> lk(mu_);
  KALI_CHECK(step >= 0 && step < nsteps_ && proc >= 0 && proc < nprocs_,
             "trace read out of range");
  return cells_[cell(step, nprocs_, proc)];
}

int ActivityTrace::count(int step, char symbol) const {
  std::lock_guard<std::mutex> lk(mu_);
  KALI_CHECK(step >= 0 && step < nsteps_, "step out of range");
  int n = 0;
  for (int p = 0; p < nprocs_; ++p) {
    if (cells_[cell(step, nprocs_, p)] == symbol) {
      ++n;
    }
  }
  return n;
}

int ActivityTrace::active_count(int step) const {
  std::lock_guard<std::mutex> lk(mu_);
  KALI_CHECK(step >= 0 && step < nsteps_, "step out of range");
  int n = 0;
  for (int p = 0; p < nprocs_; ++p) {
    if (cells_[cell(step, nprocs_, p)] != '.') {
      ++n;
    }
  }
  return n;
}

std::string ActivityTrace::render(const std::vector<std::string>& step_labels) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::ostringstream os;
  os << "          procs: ";
  for (int p = 0; p < nprocs_; ++p) {
    os << (p % 10);
  }
  os << '\n';
  for (int s = 0; s < nsteps_; ++s) {
    std::string label =
        s < static_cast<int>(step_labels.size()) ? step_labels[static_cast<std::size_t>(s)] : ("step " + std::to_string(s));
    label.resize(16, ' ');
    os << label << ' ';
    for (int p = 0; p < nprocs_; ++p) {
      os << cells_[cell(s, nprocs_, p)];
    }
    os << '\n';
  }
  return os.str();
}

std::size_t MessageTrace::total_events() const {
  std::size_t n = 0;
  for (const auto& shard : events_) {
    n += shard.size();
  }
  return n;
}

void MessageTrace::clear() {
  for (auto& shard : events_) {
    shard.clear();
  }
}

void MessageTrace::write(std::ostream& os) const {
  os << "kali-trace 1 " << nprocs() << '\n';
  for (int r = 0; r < nprocs(); ++r) {
    for (const auto& e : events(r)) {
      os << e.kind << ' ' << r << ' ' << e.peer << ' ' << e.tag << ' '
         << e.seq << ' ' << e.bytes << ' ' << e.epoch << '\n';
    }
  }
}

}  // namespace kali

// Context: a processor's handle to the machine from inside an SPMD program.
//
// All communication and all simulated-time accounting flows through this
// class.  The cost model:
//   send:  clock += send_overhead;  message timestamped with clock
//   recv:  arrival = send_time + latency_eff + bytes * byte_time
//          clock   = max(clock, arrival) + recv_overhead
//   compute(f): clock += f * flop_time
// which makes the final per-processor clocks a causally consistent schedule
// of the program on the modeled hardware, independent of host scheduling.
//
// With LinkContention::kPorts the wire term additionally serializes on each
// node's injection and ejection links (single-port model):
//   send:  send_time = max(clock, out_link_free);
//          out_link_free = send_time + bytes * byte_time
//   recv:  start = max(send_time + latency_eff, in_link_free)
//          arrival = start + bytes * byte_time;  in_link_free = arrival
// Both port clocks are owned by their processor's fiber, so contention
// resolution stays deterministic (ejection conflicts resolve in receive
// order).
//
// With LinkContention::kStoreForward every directed edge of route(src, dst)
// serializes instead, and each hop stores the whole message before
// forwarding it (wire = bytes * byte_time):
//   send:  send_time = max(clock, out_edge_free[first edge]);
//          out_edge_free[first edge] = send_time + wire
//   recv:  t = send_time + latency + wire            // first edge
//          for each interior/final edge e:           // receiver's ledger
//            t += per_hop;  t = max(t, busy(e)) + wire
//   arrival = t
// so an uncontended h-hop message costs latency + (h-1) per_hop +
// h * wire.  busy(e) considers only ledger entries with a smaller
// (send_time, src, seq) key, and the ledger is sharded per resolving
// rank — the sender owns its first-hop edges, the receiver everything
// after — so resolution never races host scheduling: repeated runs produce
// bit-identical clocks.  The sharding is the model's approximation: edges
// shared by messages converging on one receiver queue (tree saturation),
// while messages to different receivers occupy independent copies of an
// edge.  Whatever the tier, payload routing is unchanged — only clocks
// move.
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "machine/machine.hpp"
#include "support/check.hpp"

namespace kali {

class Context {
 public:
  Context(Machine& m, Processor& p) : machine_(&m), self_(&p) {}

  [[nodiscard]] int rank() const { return self_->rank(); }
  [[nodiscard]] int nprocs() const { return machine_->size(); }
  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] const MachineConfig& config() const { return machine_->config(); }
  [[nodiscard]] Processor& proc() { return *self_; }

  // --- simulated time ---
  [[nodiscard]] double clock() const { return self_->clock(); }

  /// Charge `flops` floating point operations of modeled computation.
  void compute(double flops);

  /// Charge raw modeled seconds of computation (non-flop work).
  void charge_seconds(double seconds);

  // --- raw messaging ---
  void send_bytes(int dst, int tag, std::span<const std::byte> data);
  Message recv_message(int src, int tag);

  // --- typed messaging (trivially copyable payloads) ---
  template <class T>
  void send(int dst, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(&value), sizeof(T)));
  }

  template <class T>
  T recv(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() == sizeof(T), "typed recv size mismatch");
    T value;
    std::memcpy(&value, m.payload.data(), sizeof(T));
    return value;
  }

  template <class T>
  void send_span(int dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dst, tag,
               std::span<const std::byte>(reinterpret_cast<const std::byte*>(values.data()),
                                          values.size_bytes()));
  }

  template <class T>
  std::vector<T> recv_vec(int src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() % sizeof(T) == 0, "span recv size mismatch");
    std::vector<T> out(m.size_bytes() / sizeof(T));
    if (!out.empty()) {  // empty payloads are legal; memcpy(null, ..) is not
      std::memcpy(out.data(), m.payload.data(), m.size_bytes());
    }
    return out;
  }

  template <class T>
  void recv_into(int src, int tag, std::span<T> out) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m = recv_message(src, tag);
    KALI_CHECK(m.size_bytes() == out.size_bytes(), "recv_into size mismatch");
    if (!out.empty()) {
      std::memcpy(out.data(), m.payload.data(), m.size_bytes());
    }
  }

 private:
  Machine* machine_;
  Processor* self_;
};

}  // namespace kali
